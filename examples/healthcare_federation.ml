(* Cross-enterprise healthcare federation (the XSPA-profile scenario the
   paper cites): two hospitals federate, access control is RBAC-based with
   separation-of-duty, a Chinese-Wall meta-policy guards insurers' data,
   and permitted responses must be encrypted.

   Run with:  dune exec examples/healthcare_federation.exe *)

module Value = Dacs_policy.Value
module Policy = Dacs_policy.Policy
module Obligation = Dacs_policy.Obligation
module Decision = Dacs_policy.Decision
module Net = Dacs_net.Net
module Service = Dacs_ws.Service
module Rbac = Dacs_rbac.Rbac
module Compile = Dacs_rbac.Compile
open Dacs_core

let ok = function Ok v -> v | Error e -> failwith e

let () =
  let net = Net.create () in
  let services = Service.create (Dacs_net.Rpc.create net) in

  (* --- RBAC model shared by the federation ---------------------------- *)
  let m = Rbac.empty in
  let m = List.fold_left Rbac.add_role m [ "clerk"; "nurse"; "doctor"; "chief"; "billing" ] in
  let m = ok (Rbac.add_inheritance m ~senior:"doctor" ~junior:"nurse") in
  let m = ok (Rbac.add_inheritance m ~senior:"chief" ~junior:"doctor") in
  let m = ok (Rbac.grant_permission m "nurse" { Rbac.action = "read"; resource = "vitals" }) in
  let m = ok (Rbac.grant_permission m "doctor" { Rbac.action = "read"; resource = "ehr" }) in
  let m = ok (Rbac.grant_permission m "doctor" { Rbac.action = "write"; resource = "ehr" }) in
  let m = ok (Rbac.grant_permission m "billing" { Rbac.action = "read"; resource = "invoices" }) in
  (* Static SoD: treatment and billing must not mix. *)
  let m = ok (Rbac.add_ssd m ~name:"care-vs-billing" ~roles:[ "doctor"; "billing" ] ~cardinality:2) in
  let m = ok (Rbac.assign_user m "dr-grey" "chief") in
  let m = ok (Rbac.assign_user m "nurse-joy" "nurse") in
  let m = ok (Rbac.assign_user m "mr-banks" "billing") in
  (match Rbac.assign_user m "dr-grey" "billing" with
  | Error e -> Printf.printf "SoD check works: %s\n" e
  | Ok _ -> print_endline "BUG: SoD violated");

  (* Compile the RBAC state into an engine policy with an encryption
     obligation on top. *)
  let base = Compile.to_policy ~id:"federation-rbac" m in
  let policy =
    Policy.Inline_policy
      { base with Policy.obligations = [ Obligation.encrypt_response ~strength:256 ] }
  in

  (* --- two hospitals, one PDP each, sharing the compiled policy -------- *)
  let general = Domain.create services ~name:"general-hospital" () in
  let clinic = Domain.create services ~name:"lakeside-clinic" () in
  let vo = Vo.form services ~name:"health-net" [ general; clinic ] in
  Vo.publish_policy vo policy;
  Net.run net;

  let ehr_pep = Domain.expose_resource general ~resource:"ehr" ~content:"ehr-record-42" () in
  let vitals_pep = Domain.expose_resource clinic ~resource:"vitals" ~content:"bp-120-80" () in

  let client_of domain user =
    Vo.client_for vo ~domain ~user (Compile.subject_for_user m user)
  in
  let dr_grey = client_of clinic "dr-grey" in
  let nurse_joy = client_of general "nurse-joy" in
  let mr_banks = client_of general "mr-banks" in

  let show who what = function
    | Ok (Wire.Granted { encrypted; _ }) ->
      Printf.printf "%-10s %-14s -> GRANTED%s\n" who what (if encrypted then " (encrypted)" else "")
    | Ok (Wire.Denied reason) -> Printf.printf "%-10s %-14s -> DENIED (%s)\n" who what reason
    | Error e -> Printf.printf "%-10s %-14s -> ERROR (%s)\n" who what (Service.error_to_string e)
  in
  (* Cross-domain requests: the chief from the clinic reads the general
     hospital's EHR; the nurse tries the same and is denied. *)
  Client.request dr_grey ~pep:(Pep.node ehr_pep) ~action:"read" (show "dr-grey" "ehr/read");
  Client.request nurse_joy ~pep:(Pep.node ehr_pep) ~action:"read" (show "nurse-joy" "ehr/read");
  Client.request nurse_joy ~pep:(Pep.node vitals_pep) ~action:"read" (show "nurse-joy" "vitals/read");
  Client.request mr_banks ~pep:(Pep.node ehr_pep) ~action:"read" (show "mr-banks" "ehr/read");
  Net.run net;

  (* --- Chinese-Wall meta-policy over insurer datasets ------------------- *)
  print_newline ();
  let history = Vo.merged_audit vo in
  let wall =
    Meta_policy.Chinese_wall
      [
        {
          Meta_policy.class_name = "insurers";
          datasets =
            [ ("acme-insurance", [ "acme-claims" ]); ("umbrella-corp", [ "umbrella-claims" ]) ];
        };
      ]
  in
  Audit.record history
    {
      Audit.at = Net.now net;
      domain = "general-hospital";
      subject = "mr-banks";
      resource = "acme-claims";
      action = "read";
      decision = Decision.Permit;
      provenance = None;
    };
  (match Meta_policy.check wall ~history ~subject:"mr-banks" ~resource:"umbrella-claims" with
  | Error reason -> Printf.printf "Chinese wall works: %s\n" reason
  | Ok () -> print_endline "BUG: wall breached");

  (* Conflict analysis across the two hospitals' local drafts. *)
  let draft_a =
    Dacs_policy.Policy.make ~id:"general-draft" ~issuer:"general-hospital"
      [
        Dacs_policy.Rule.permit
          ~target:
            Dacs_policy.Target.(
              any |> subject_is "role" "billing" |> resource_is "resource-id" "invoices")
          "billing-ok";
      ]
  in
  let draft_b =
    Dacs_policy.Policy.make ~id:"clinic-draft" ~issuer:"lakeside-clinic"
      [
        Dacs_policy.Rule.deny
          ~target:
            Dacs_policy.Target.(
              any |> subject_is "role" "billing" |> resource_is "resource-id" "invoices")
          "billing-never";
      ]
  in
  List.iter
    (fun c ->
      Printf.printf "conflict: %s/%s vs %s/%s on (%s) — deny-overrides resolves to %s\n"
        c.Conflict.permit.Conflict.policy_id c.Conflict.permit.Conflict.rule_id
        c.Conflict.deny.Conflict.policy_id c.Conflict.deny.Conflict.rule_id c.Conflict.witness
        (Decision.decision_to_string (Conflict.resolution Dacs_policy.Combine.Deny_overrides c)))
    (Conflict.find_between draft_a draft_b)
