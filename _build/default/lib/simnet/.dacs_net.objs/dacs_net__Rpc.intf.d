lib/simnet/rpc.mli: Net
