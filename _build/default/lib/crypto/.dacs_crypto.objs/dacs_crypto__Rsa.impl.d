lib/crypto/rsa.ml: Bignum Char Dacs_xml Prime Rng Sha256 String
