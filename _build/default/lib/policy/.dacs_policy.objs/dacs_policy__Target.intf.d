lib/policy/target.mli: Context Expr Format Value
