(** Service descriptions with attached security-policy assertions.

    The paper (§3.1): the Web-Services profile of XACML "defines policy
    assertions that can be used for specifying authorisation and privacy
    requirements ... specified at the Web Service side using the WS-Policy
    framework."  A description advertises a service's operations and what
    a caller must bring: subject attributes, a capability from a given
    issuer, message signing, or response encryption.  Clients can fetch
    descriptions from a description registry and pre-check their own
    request before paying for a round trip that a PEP would refuse. *)

type operation = {
  op_name : string;
  input : string;  (** request element name *)
  output : string;  (** response element name *)
}

type assertion =
  | Requires_subject_attribute of string  (** e.g. ["role"] *)
  | Requires_capability_from of string  (** capability-service issuer name *)
  | Requires_signed_messages
  | Responses_encrypted

val assertion_to_string : assertion -> string

type t = {
  service : string;
  endpoint : Dacs_net.Net.node_id;
  operations : operation list;
  assertions : assertion list;
}

val to_xml : t -> Dacs_xml.Xml.t
val of_xml : Dacs_xml.Xml.t -> (t, string) result

val unmet :
  t ->
  subject_attributes:string list ->
  capabilities_from:string list ->
  will_sign:bool ->
  assertion list
(** Which of the description's requirements the caller cannot satisfy
    ([Responses_encrypted] is informational and never unmet). *)

(** {1 Description registry} *)

type registry

val create_registry : Service.t -> node:Dacs_net.Net.node_id -> registry
(** Serves ["wsdl-publish"] (self-descriptions only, like discovery) and
    ["wsdl-query"] ([<DescriptionQuery Service="..."/>]). *)

val registry_node : registry -> Dacs_net.Net.node_id
val lookup : registry -> service:string -> t option
val publish_local : registry -> t -> unit

val fetch :
  Service.t ->
  registry:Dacs_net.Net.node_id ->
  caller:Dacs_net.Net.node_id ->
  service:string ->
  ((t, string) result -> unit) ->
  unit
(** Client-side query over the network. *)
