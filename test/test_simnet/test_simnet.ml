(* Tests for dacs_net: engine ordering, link model, faults, stats, RPC. *)

open Dacs_net

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string
let float_ = Alcotest.float 1e-9

(* --- engine -------------------------------------------------------------- *)

let test_engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:3.0 (fun () -> log := "c" :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := "a" :: !log);
  Engine.schedule e ~delay:2.0 (fun () -> log := "b" :: !log);
  Engine.run e;
  check (Alcotest.list string_) "timestamp order" [ "a"; "b"; "c" ] (List.rev !log);
  check float_ "clock at last event" 3.0 (Engine.now e)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  check (Alcotest.list int_) "ties in scheduling order" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:1.0 (fun () ->
      log := "outer" :: !log;
      Engine.schedule e ~delay:1.0 (fun () -> log := "inner" :: !log));
  Engine.run e;
  check (Alcotest.list string_) "nested" [ "outer"; "inner" ] (List.rev !log);
  check float_ "time" 2.0 (Engine.now e)

let test_engine_until () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    Engine.schedule e ~delay:1.0 tick
  in
  Engine.schedule e ~delay:1.0 tick;
  Engine.run ~until:5.5 e;
  check int_ "five ticks" 5 !count;
  check float_ "clock clamped" 5.5 (Engine.now e);
  check bool_ "still pending" true (Engine.pending e > 0)

let test_engine_step () =
  let e = Engine.create () in
  check bool_ "empty step" false (Engine.step e);
  Engine.schedule e ~delay:1.0 ignore;
  check bool_ "one step" true (Engine.step e);
  check bool_ "drained" false (Engine.step e)

let test_engine_negative_delay () =
  let e = Engine.create () in
  (try
     Engine.schedule e ~delay:(-1.0) ignore;
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  Engine.schedule e ~delay:1.0 (fun () ->
      try
        Engine.schedule_at e ~at:0.5 ignore;
        Alcotest.fail "expected Invalid_argument for past time"
      with Invalid_argument _ -> ());
  Engine.run e

let test_engine_many_events_order () =
  (* Heap stress: 1000 events with random-ish times must fire sorted. *)
  let e = Engine.create () in
  let rng = Dacs_crypto.Rng.create 99L in
  let last = ref (-1.0) in
  let monotone = ref true in
  for _ = 1 to 1000 do
    Engine.schedule e ~delay:(Dacs_crypto.Rng.float rng 100.0) (fun () ->
        if Engine.now e < !last then monotone := false;
        last := Engine.now e)
  done;
  Engine.run e;
  check bool_ "monotone delivery" true !monotone

(* --- net ------------------------------------------------------------------ *)

let make_pair () =
  let net = Net.create () in
  Net.add_node net "a";
  Net.add_node net "b";
  net

let test_net_delivery_latency () =
  let net = make_pair () in
  Net.set_latency net "a" "b" 0.25;
  let got = ref None in
  Net.set_handler net "b" (fun m -> got := Some (m.Net.payload, Net.now net));
  Net.send net ~src:"a" ~dst:"b" ~category:"test" "hello";
  Net.run net;
  match !got with
  | Some (payload, at) ->
    check string_ "payload" "hello" payload;
    check float_ "arrives after latency" 0.25 at
  | None -> Alcotest.fail "message not delivered"

let test_net_default_latency () =
  let net = make_pair () in
  Net.set_default_latency net 0.1;
  check float_ "default" 0.1 (Net.latency net "a" "b");
  Net.set_latency net "a" "b" 0.7;
  check float_ "override" 0.7 (Net.latency net "b" "a") (* symmetric *)

let test_net_bandwidth_model () =
  let net = make_pair () in
  Net.set_latency net "a" "b" 0.1;
  Net.set_bytes_per_second net (Some 1000.0);
  let at = ref 0.0 in
  Net.set_handler net "b" (fun _ -> at := Net.now net);
  Net.send net ~src:"a" ~dst:"b" ~category:"t" (String.make 100 'x');
  Net.run net;
  check float_ "latency + size/rate" 0.2 !at

let test_net_crash_drops () =
  let net = make_pair () in
  let got = ref 0 in
  Net.set_handler net "b" (fun _ -> incr got);
  Net.crash net "b";
  Net.send net ~src:"a" ~dst:"b" ~category:"t" "x";
  Net.run net;
  check int_ "crashed receiver drops" 0 !got;
  check int_ "counted dropped" 1 (Net.dropped_count net);
  Net.recover net "b";
  Net.send net ~src:"a" ~dst:"b" ~category:"t" "x";
  Net.run net;
  check int_ "delivered after recover" 1 !got

let test_net_crashed_sender_silent () =
  let net = make_pair () in
  let got = ref 0 in
  Net.set_handler net "b" (fun _ -> incr got);
  Net.crash net "a";
  Net.send net ~src:"a" ~dst:"b" ~category:"t" "x";
  Net.run net;
  check int_ "no delivery" 0 !got;
  check int_ "not even counted as sent" 0 (Net.total_sent net).Net.count

let test_net_crash_in_flight () =
  (* A message already in flight is lost if the receiver crashes before
     delivery. *)
  let net = make_pair () in
  let got = ref 0 in
  Net.set_handler net "b" (fun _ -> incr got);
  Net.set_latency net "a" "b" 1.0;
  Net.send net ~src:"a" ~dst:"b" ~category:"t" "x";
  Engine.schedule (Net.engine net) ~delay:0.5 (fun () -> Net.crash net "b");
  Net.run net;
  check int_ "lost in flight" 0 !got

let test_net_partition_and_heal () =
  let net = make_pair () in
  Net.add_node net "c";
  let got = ref [] in
  Net.set_handler net "b" (fun m -> got := m.Net.payload :: !got);
  Net.partition net [ "a" ] [ "b" ];
  Net.send net ~src:"a" ~dst:"b" ~category:"t" "blocked";
  Net.run net;
  check int_ "partitioned" 0 (List.length !got);
  (* c can still reach b *)
  Net.send net ~src:"c" ~dst:"b" ~category:"t" "ok";
  Net.run net;
  check (Alcotest.list string_) "third party unaffected" [ "ok" ] !got;
  Net.heal net;
  Net.send net ~src:"a" ~dst:"b" ~category:"t" "after-heal";
  Net.run net;
  check (Alcotest.list string_) "healed" [ "after-heal"; "ok" ] !got

let test_net_drop_rate () =
  let net = make_pair () in
  let got = ref 0 in
  Net.set_handler net "b" (fun _ -> incr got);
  Net.set_drop_rate net 0.5;
  for _ = 1 to 200 do
    Net.send net ~src:"a" ~dst:"b" ~category:"t" "x"
  done;
  Net.run net;
  (* With p=0.5 over 200 trials, 60..140 is a > 6-sigma window. *)
  check bool_ "roughly half lost" true (!got > 60 && !got < 140);
  check int_ "sent+dropped consistent" 200 (!got + Net.dropped_count net)

let test_net_stats () =
  let net = make_pair () in
  Net.set_handler net "b" ignore;
  Net.send net ~src:"a" ~dst:"b" ~category:"query" "12345";
  Net.send net ~src:"a" ~dst:"b" ~category:"query" "678";
  Net.send net ~src:"b" ~dst:"a" ~category:"reply" "ab";
  Net.run net;
  let stats = Net.stats_by_category net in
  check int_ "two categories" 2 (List.length stats);
  (match List.assoc_opt "query" stats with
  | Some s ->
    check int_ "query count" 2 s.Net.count;
    check int_ "query bytes" 8 s.Net.bytes
  | None -> Alcotest.fail "missing query stats");
  check int_ "total sent" 3 (Net.total_sent net).Net.count;
  check int_ "total delivered" 3 (Net.total_delivered net).Net.count;
  Net.reset_stats net;
  check int_ "reset" 0 (Net.total_sent net).Net.count

let test_net_trace () =
  let net = make_pair () in
  Net.set_handler net "b" ignore;
  Net.set_handler net "a" ignore;
  Net.set_tracing net true;
  Net.send net ~src:"a" ~dst:"b" ~category:"one" "x";
  Net.run net;
  Net.send net ~src:"b" ~dst:"a" ~category:"two" "y";
  Net.run net;
  let tr = Net.trace net in
  check (Alcotest.list string_) "sequence" [ "one"; "two" ]
    (List.map (fun e -> e.Net.t_category) tr);
  Net.clear_trace net;
  check int_ "cleared" 0 (List.length (Net.trace net))

let test_net_unknown_node () =
  let net = make_pair () in
  try
    Net.send net ~src:"a" ~dst:"nope" ~category:"t" "x";
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_net_unpartition_selective () =
  (* unpartition removes exactly one group pair, leaving others alone —
     heal would wipe both. *)
  let net = make_pair () in
  Net.add_node net "c";
  let got = ref [] in
  List.iter (fun n -> Net.set_handler net n (fun m -> got := m.Net.payload :: !got)) [ "b"; "c" ];
  Net.partition net [ "a" ] [ "b" ];
  Net.partition net [ "a" ] [ "c" ];
  Net.unpartition net [ "b" ] [ "a" ] (* reversed order must also match *);
  Net.send net ~src:"a" ~dst:"b" ~category:"t" "to-b";
  Net.send net ~src:"a" ~dst:"c" ~category:"t" "to-c";
  Net.run net;
  check (Alcotest.list string_) "b reachable, c still cut" [ "to-b" ] (List.rev !got)

let test_net_latency_override_roundtrip () =
  let net = make_pair () in
  Net.set_default_latency net 0.01;
  check bool_ "no override initially" true (Net.latency_override net "a" "b" = None);
  Net.set_latency net "a" "b" 0.9;
  check bool_ "override visible symmetrically" true (Net.latency_override net "b" "a" = Some 0.9);
  Net.clear_latency net "a" "b";
  check bool_ "cleared" true (Net.latency_override net "a" "b" = None);
  check float_ "back to default" 0.01 (Net.latency net "a" "b")

(* --- rpc ---------------------------------------------------------------------- *)

let make_rpc () =
  let net = Net.create () in
  Net.add_node net "client";
  Net.add_node net "server";
  (net, Rpc.create net)

let test_rpc_roundtrip () =
  let net, rpc = make_rpc () in
  Rpc.serve rpc ~node:"server" ~service:"echo" (fun ~caller body reply ->
      check string_ "caller" "client" caller;
      reply ("echo:" ^ body));
  let result = ref None in
  Rpc.call rpc ~src:"client" ~dst:"server" ~service:"echo" "hi" (fun r -> result := Some r);
  Net.run net;
  check bool_ "ok reply" true (!result = Some (Ok "echo:hi"))

let test_rpc_payload_with_separators () =
  (* Bodies containing the frame separator must survive. *)
  let net, rpc = make_rpc () in
  Rpc.serve rpc ~node:"server" ~service:"echo" (fun ~caller:_ body reply -> reply body);
  let result = ref None in
  let nasty = "a|b||c|<xml attr=\"1|2\"/>" in
  Rpc.call rpc ~src:"client" ~dst:"server" ~service:"echo" nasty (fun r -> result := Some r);
  Net.run net;
  check bool_ "separator-safe" true (!result = Some (Ok nasty))

let test_rpc_timeout_on_crash () =
  let net, rpc = make_rpc () in
  Rpc.serve rpc ~node:"server" ~service:"echo" (fun ~caller:_ body reply -> reply body);
  Net.crash net "server";
  let result = ref None in
  Rpc.call rpc ~src:"client" ~dst:"server" ~service:"echo" ~timeout:2.0 "hi" (fun r ->
      result := Some r);
  Net.run net;
  check bool_ "timeout" true (!result = Some (Error Rpc.Timeout));
  check int_ "no pending calls leak" 0 (Rpc.calls_in_flight rpc)

let test_rpc_no_such_service () =
  let net, rpc = make_rpc () in
  (* The server node must dispatch rpc frames even with no services: a
     service registration for another name sets up dispatch. *)
  Rpc.serve rpc ~node:"server" ~service:"other" (fun ~caller:_ _ reply -> reply "x");
  let result = ref None in
  Rpc.call rpc ~src:"client" ~dst:"server" ~service:"missing" "hi" (fun r -> result := Some r);
  Net.run net;
  check bool_ "no such service" true (!result = Some (Error (Rpc.No_such_service "missing")))

let test_rpc_late_reply_ignored () =
  let net, rpc = make_rpc () in
  (* Reply deferred beyond the timeout: the caller sees Timeout, the late
     reply is dropped, and the continuation fires exactly once. *)
  Rpc.serve rpc ~node:"server" ~service:"slow" (fun ~caller:_ body reply ->
      Engine.schedule (Net.engine net) ~delay:5.0 (fun () -> reply body));
  let fires = ref 0 in
  let result = ref None in
  Rpc.call rpc ~src:"client" ~dst:"server" ~service:"slow" ~timeout:1.0 "hi" (fun r ->
      incr fires;
      result := Some r);
  Net.run net;
  check int_ "exactly one continuation" 1 !fires;
  check bool_ "timeout" true (!result = Some (Error Rpc.Timeout))

let test_rpc_nested_call () =
  (* A service that itself calls another service before replying —
     the shape of a PDP consulting a PIP. *)
  let net, rpc = make_rpc () in
  Net.add_node net "pip";
  Rpc.serve rpc ~node:"pip" ~service:"attributes" (fun ~caller:_ _ reply -> reply "role=doctor");
  Rpc.serve rpc ~node:"server" ~service:"decide" (fun ~caller:_ body reply ->
      Rpc.call rpc ~src:"server" ~dst:"pip" ~service:"attributes" "alice" (function
        | Ok attrs -> reply (body ^ "+" ^ attrs)
        | Error _ -> reply "error"));
  let result = ref None in
  Rpc.call rpc ~src:"client" ~dst:"server" ~service:"decide" "req" (fun r -> result := Some r);
  Net.run net;
  check bool_ "nested" true (!result = Some (Ok "req+role=doctor"))

let test_rpc_concurrent_calls () =
  let net, rpc = make_rpc () in
  Rpc.serve rpc ~node:"server" ~service:"echo" (fun ~caller:_ body reply -> reply body);
  let replies = ref [] in
  for i = 1 to 10 do
    Rpc.call rpc ~src:"client" ~dst:"server" ~service:"echo" (string_of_int i) (function
      | Ok r -> replies := r :: !replies
      | Error _ -> ())
  done;
  Net.run net;
  check int_ "all replied" 10 (List.length !replies);
  check (Alcotest.list string_) "correlated correctly"
    (List.map string_of_int [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ])
    (List.sort (fun a b -> compare (int_of_string a) (int_of_string b)) !replies)


let test_rpc_service_name_with_separator () =
  (* A service whose *name* contains the frame separator must round-trip:
     historically "a|b" mis-framed and the call never matched the
     registration. *)
  let net, rpc = make_rpc () in
  Rpc.serve rpc ~node:"server" ~service:"weird|name" (fun ~caller:_ body reply ->
      reply ("got:" ^ body));
  let result = ref None in
  Rpc.call rpc ~src:"client" ~dst:"server" ~service:"weird|name" "x|y" (fun r -> result := Some r);
  Net.run net;
  check bool_ "pipe-named service answers" true (!result = Some (Ok "got:x|y"))

(* --- rpc wire format (satellite: QCheck round-trip) ----------------------- *)

let frame_roundtrip_tests =
  let open QCheck in
  (* Adversarial strings: plenty of '|', '%', empty chunks. *)
  let nasty_string =
    let gen =
      Gen.(
        map (String.concat "")
          (list_size (int_bound 8) (oneofl [ "|"; "%"; "%7C"; "a"; "xml<>&"; ""; "Q|1|"; "%25" ])))
    in
    make gen ~print:Print.string
  in
  [
    Test.make ~name:"rpc frame: request round-trips adversarial service/body" ~count:500
      (triple small_nat nasty_string nasty_string) (fun (id, service, body) ->
        Rpc.decode (Rpc.encode_request id service body) = Some (Rpc.Request (id, service, body)));
    Test.make ~name:"rpc frame: reply and error round-trip" ~count:300
      (pair small_nat nasty_string) (fun (id, body) ->
        Rpc.decode (Rpc.encode_reply id body) = Some (Rpc.Reply (id, body))
        && Rpc.decode (Rpc.encode_error id body) = Some (Rpc.Error_frame (id, body)));
    (* Batch envelopes: the B/BT multi-part frames the tier and the
       attribute fetcher ride on.  Empty part lists and parts that are
       themselves empty strings are legal payloads. *)
    Test.make ~name:"rpc frame: batch request round-trips (incl. empty parts)" ~count:500
      (triple small_nat nasty_string (list_of_size (Gen.int_bound 6) nasty_string))
      (fun (id, service, parts) ->
        Rpc.decode (Rpc.encode_batch_request id service parts)
        = Some (Rpc.Batch_request (id, service, parts)));
    Test.make ~name:"rpc frame: traced batch request round-trips" ~count:500
      (pair (triple small_nat nasty_string nasty_string) (list_of_size (Gen.int_bound 6) nasty_string))
      (fun ((id, service, trace), parts) ->
        Rpc.decode (Rpc.encode_traced_batch_request id service ~trace parts)
        = Some (Rpc.Traced_batch_request { id; service; trace; parts }));
    Test.make ~name:"rpc frame: parts codec round-trips" ~count:500
      (list_of_size (Gen.int_bound 8) nasty_string) (fun parts ->
        Rpc.decode_parts (Rpc.encode_parts parts) = Some parts);
  ]

(* Negative-path fuzz: random byte mutations of valid frames must come
   back as decode errors (None) or as some other well-formed frame —
   never as an exception.  The mutations are drawn from the generated
   ints, so a crashing mutation shrinks to a minimal one. *)
let frame_fuzz_tests =
  let open QCheck in
  let mutate ops s =
    List.fold_left
      (fun s (kind, pos, byte) ->
        let n = String.length s in
        if n = 0 then String.make 1 (Char.chr (byte land 0xff))
        else
          let pos = pos mod (n + 1) in
          let b = Bytes.of_string s in
          match kind mod 3 with
          | 0 ->
            (* flip *)
            let pos = pos mod n in
            Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 + (byte land 0xfe))));
            Bytes.to_string b
          | 1 ->
            (* insert *)
            String.sub s 0 pos ^ String.make 1 (Char.chr (byte land 0xff)) ^ String.sub s pos (n - pos)
          | _ ->
            (* delete *)
            if pos >= n then String.sub s 0 (n - 1)
            else String.sub s 0 pos ^ String.sub s (pos + 1) (n - pos - 1))
      s ops
  in
  let arb_mutations = list_of_size Gen.(int_range 1 6) (triple small_nat small_nat small_nat) in
  let total_decode s =
    match Rpc.decode s with
    | Some _ | None -> (
      match Rpc.decode_parts s with Some _ | None -> true)
    | exception e -> Test.fail_reportf "decode raised %s on %S" (Printexc.to_string e) s
  in
  [
    Test.make ~name:"rpc fuzz: mutated batch frames never raise" ~count:1000
      (pair (triple small_nat small_string (list_of_size (Gen.int_bound 4) small_string)) arb_mutations)
      (fun ((id, service, parts), ops) ->
        total_decode (mutate ops (Rpc.encode_batch_request id service parts)));
    Test.make ~name:"rpc fuzz: mutated traced batch frames never raise" ~count:1000
      (pair (triple small_nat small_string (list_of_size (Gen.int_bound 4) small_string)) arb_mutations)
      (fun ((id, service, parts), ops) ->
        total_decode (mutate ops (Rpc.encode_traced_batch_request id service ~trace:"t|1" parts)));
    Test.make ~name:"rpc fuzz: mutated request/reply frames never raise" ~count:1000
      (pair (pair small_nat small_string) arb_mutations)
      (fun ((id, body), ops) ->
        total_decode (mutate ops (Rpc.encode_request id "svc" body))
        && total_decode (mutate ops (Rpc.encode_reply id body)));
    Test.make ~name:"rpc fuzz: arbitrary bytes never raise" ~count:1000
      (string_gen Gen.char) total_decode;
  ]

(* Hand-picked malformed part encodings: every way a length prefix can
   lie about the bytes that follow. *)
let test_decode_parts_negative () =
  let rejects label s =
    check bool_ (Printf.sprintf "%s (%S) rejected" label s) true (Rpc.decode_parts s = None)
  in
  rejects "bare colon" ":";
  rejects "length overruns buffer" "5:abc";
  rejects "negative length" "-1:x";
  rejects "length not a number" "abc:x";
  rejects "missing colon" "5abc";
  rejects "trailing garbage after last part" "1:a,";
  rejects "second part truncated" "1:a,9:bc";
  rejects "overflowing length prefix" "99999999999999999999:x";
  (* Exactness at the boundary: a prefix consuming the rest is fine,
     one byte more is not. *)
  check bool_ "exact length accepted" true (Rpc.decode_parts "3:abc" = Some [ "abc" ]);
  check bool_ "one past the end rejected" true (Rpc.decode_parts "4:abc" = None);
  check bool_ "empty part round-trips" true (Rpc.decode_parts (Rpc.encode_parts [ "" ]) = Some [ "" ]);
  check bool_ "empty list round-trips" true
    (Rpc.decode_parts (Rpc.encode_parts []) = Some []);
  check bool_ "batch of empty parts round-trips" true
    (Rpc.decode (Rpc.encode_batch_request 7 "s" [ ""; "" ])
    = Some (Rpc.Batch_request (7, "s", [ ""; "" ])))

(* --- rpc resilience -------------------------------------------------------- *)

let test_rpc_retry_recovers () =
  (* Server down for the first attempts, back before they run out. *)
  let net, rpc = make_rpc () in
  Rpc.serve rpc ~node:"server" ~service:"echo" (fun ~caller:_ body reply -> reply body);
  Net.crash net "server";
  Engine.schedule (Net.engine net) ~delay:1.5 (fun () -> Net.recover net "server");
  let retry = { Rpc.attempts = 5; base_delay = 0.5; multiplier = 2.0; max_delay = 4.0; jitter = 0.0 } in
  let events = ref [] in
  let result = ref None in
  Rpc.call_resilient rpc ~src:"client" ~dst:"server" ~service:"echo" ~timeout:0.4 ~retry
    ~notify:(fun e -> events := e :: !events)
    "hi"
    (fun r -> result := Some r);
  Net.run net;
  check bool_ "eventually ok" true (!result = Some (Ok "hi"));
  let retries = List.length (List.filter (function Rpc.Retrying _ -> true | _ -> false) !events) in
  check bool_ "took at least one retry" true (retries >= 1);
  check int_ "bus counted the retries" retries (Rpc.resilience_stats rpc).Rpc.retries

let test_rpc_retry_exhausted () =
  let net, rpc = make_rpc () in
  Rpc.serve rpc ~node:"server" ~service:"echo" (fun ~caller:_ body reply -> reply body);
  Net.crash net "server";
  let retry = { Rpc.no_retry with attempts = 3; base_delay = 0.1 } in
  let result = ref None in
  Rpc.call_resilient rpc ~src:"client" ~dst:"server" ~service:"echo" ~timeout:0.2 ~retry "hi"
    (fun r -> result := Some r);
  Net.run net;
  check bool_ "all attempts failed" true (!result = Some (Error Rpc.Timeout));
  check int_ "two retries counted" 2 (Rpc.resilience_stats rpc).Rpc.retries

let test_rpc_no_such_service_not_retried () =
  let net, rpc = make_rpc () in
  Rpc.serve rpc ~node:"server" ~service:"other" (fun ~caller:_ _ reply -> reply "x");
  let result = ref None in
  Rpc.call_resilient rpc ~src:"client" ~dst:"server" ~service:"missing"
    ~retry:{ Rpc.no_retry with attempts = 4 } "hi" (fun r -> result := Some r);
  Net.run net;
  check bool_ "fails fast" true (!result = Some (Error (Rpc.No_such_service "missing")));
  check int_ "no retries burned" 0 (Rpc.resilience_stats rpc).Rpc.retries

let test_rpc_backoff_is_deterministic () =
  (* Same seed => identical jittered backoff delays. *)
  let delays_for seed =
    let net = Net.create ~seed () in
    Net.add_node net "client";
    Net.add_node net "server";
    let rpc = Rpc.create net in
    Rpc.serve rpc ~node:"server" ~service:"echo" (fun ~caller:_ body reply -> reply body);
    Net.crash net "server";
    let retry =
      { Rpc.attempts = 4; base_delay = 0.2; multiplier = 2.0; max_delay = 10.0; jitter = 0.5 }
    in
    let delays = ref [] in
    Rpc.call_resilient rpc ~src:"client" ~dst:"server" ~service:"echo" ~timeout:0.1 ~retry
      ~notify:(function Rpc.Retrying { delay; _ } -> delays := delay :: !delays | _ -> ())
      "hi" ignore;
    Net.run net;
    List.rev !delays
  in
  let a = delays_for 42L and b = delays_for 42L and c = delays_for 43L in
  check int_ "three backoffs" 3 (List.length a);
  check bool_ "same seed, same jitter" true (a = b);
  check bool_ "different seed, different jitter" true (a <> c)

let test_rpc_breaker_lifecycle () =
  let net, rpc = make_rpc () in
  Rpc.set_breaker rpc (Some { Rpc.failure_threshold = 2; cooldown = 5.0 });
  Rpc.serve rpc ~node:"server" ~service:"echo" (fun ~caller:_ body reply -> reply body);
  Net.crash net "server";
  let results = ref [] in
  let call_at at =
    Engine.schedule_at (Net.engine net) ~at (fun () ->
        Rpc.call_resilient rpc ~src:"client" ~dst:"server" ~service:"echo" ~timeout:1.0 "x"
          (fun r -> results := (Net.now net, r) :: !results))
  in
  call_at 0.1;
  (* trips at failure 2 *)
  call_at 2.0;
  (* rejected while open (opened ~3.0, cooldown till ~8.0) *)
  call_at 4.0;
  (* half-open probe after cooldown; server still down -> reopens *)
  call_at 9.0;
  (* recover, then a successful probe closes it *)
  Engine.schedule_at (Net.engine net) ~at:15.0 (fun () -> Net.recover net "server");
  call_at 16.0;
  Net.run net;
  let outcomes = List.rev_map snd !results in
  check
    (Alcotest.list bool_)
    "timeout, timeout(trip), rejected, probe-timeout, ok"
    [ true; true; true; true; false ]
    (List.map (function Error _ -> true | Ok _ -> false) outcomes);
  check bool_ "breaker rejection seen" true
    (List.exists (fun r -> r = Error (Rpc.Circuit_open "server")) outcomes);
  check string_ "closed after success" "closed"
    (Rpc.breaker_state_to_string (Rpc.breaker_state rpc "server"));
  let s = Rpc.resilience_stats rpc in
  check bool_ "trips counted" true (s.Rpc.breaker_trips >= 2);
  check int_ "rejections counted" 1 s.Rpc.breaker_rejections

(* --- sequence rendering ---------------------------------------------------- *)

let test_sequence_render () =
  let net = make_pair () in
  Net.set_handler net "b" ignore;
  Net.set_handler net "a" ignore;
  Net.set_tracing net true;
  Net.send net ~src:"a" ~dst:"b" ~category:"ping" "x";
  Net.run net;
  Net.send net ~src:"b" ~dst:"a" ~category:"pong" "y";
  Net.run net;
  let out = Sequence.render (Net.trace net) in
  let lines = String.split_on_char '\n' out in
  check int_ "header + 2 messages + trailing" 4 (List.length lines);
  let contains s sub =
    let ns = String.length s and nn = String.length sub in
    let rec go i = i + nn <= ns && (String.sub s i nn = sub || go (i + 1)) in
    nn = 0 || go 0
  in
  check bool_ "participants in header" true
    (contains (List.nth lines 0) "a" && contains (List.nth lines 0) "b");
  check bool_ "forward arrow" true (contains (List.nth lines 1) ">");
  check bool_ "backward arrow" true (contains (List.nth lines 2) "<");
  check bool_ "categories shown" true (contains out "ping" && contains out "pong")

let test_sequence_participants () =
  let net = make_pair () in
  Net.add_node net "c";
  List.iter (fun n -> Net.set_handler net n ignore) [ "a"; "b"; "c" ];
  Net.set_tracing net true;
  Net.send net ~src:"c" ~dst:"a" ~category:"t" "x";
  Net.run net;
  Net.send net ~src:"a" ~dst:"b" ~category:"t" "x";
  Net.run net;
  check (Alcotest.list string_) "first-appearance order" [ "c"; "a"; "b" ]
    (Sequence.participants_of (Net.trace net));
  check string_ "empty trace" "(no messages)\n" (Sequence.render [])

let () =
  Alcotest.run "dacs_net"
    [
      ( "engine",
        [
          Alcotest.test_case "event order" `Quick test_engine_order;
          Alcotest.test_case "fifo ties" `Quick test_engine_fifo_ties;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "single step" `Quick test_engine_step;
          Alcotest.test_case "negative delay" `Quick test_engine_negative_delay;
          Alcotest.test_case "heap stress order" `Quick test_engine_many_events_order;
        ] );
      ( "net",
        [
          Alcotest.test_case "delivery with latency" `Quick test_net_delivery_latency;
          Alcotest.test_case "default/override latency" `Quick test_net_default_latency;
          Alcotest.test_case "bandwidth model" `Quick test_net_bandwidth_model;
          Alcotest.test_case "crash drops" `Quick test_net_crash_drops;
          Alcotest.test_case "crashed sender silent" `Quick test_net_crashed_sender_silent;
          Alcotest.test_case "crash while in flight" `Quick test_net_crash_in_flight;
          Alcotest.test_case "partition and heal" `Quick test_net_partition_and_heal;
          Alcotest.test_case "drop rate" `Quick test_net_drop_rate;
          Alcotest.test_case "stats by category" `Quick test_net_stats;
          Alcotest.test_case "trace" `Quick test_net_trace;
          Alcotest.test_case "unknown node" `Quick test_net_unknown_node;
          Alcotest.test_case "selective unpartition" `Quick test_net_unpartition_selective;
          Alcotest.test_case "latency override save/restore" `Quick
            test_net_latency_override_roundtrip;
        ] );
      ( "sequence",
        [
          Alcotest.test_case "render" `Quick test_sequence_render;
          Alcotest.test_case "participants" `Quick test_sequence_participants;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "roundtrip" `Quick test_rpc_roundtrip;
          Alcotest.test_case "separator-safe payloads" `Quick test_rpc_payload_with_separators;
          Alcotest.test_case "timeout on crash" `Quick test_rpc_timeout_on_crash;
          Alcotest.test_case "no such service" `Quick test_rpc_no_such_service;
          Alcotest.test_case "late reply ignored" `Quick test_rpc_late_reply_ignored;
          Alcotest.test_case "nested call" `Quick test_rpc_nested_call;
          Alcotest.test_case "concurrent calls" `Quick test_rpc_concurrent_calls;
          Alcotest.test_case "service name with separator" `Quick
            test_rpc_service_name_with_separator;
        ] );
      ( "rpc-frames",
        List.map QCheck_alcotest.to_alcotest (frame_roundtrip_tests @ frame_fuzz_tests)
        @ [ Alcotest.test_case "malformed part encodings rejected" `Quick test_decode_parts_negative ]
      );
      ( "rpc-resilience",
        [
          Alcotest.test_case "retry recovers after restart" `Quick test_rpc_retry_recovers;
          Alcotest.test_case "retry exhausted" `Quick test_rpc_retry_exhausted;
          Alcotest.test_case "no-such-service fails fast" `Quick
            test_rpc_no_such_service_not_retried;
          Alcotest.test_case "deterministic jittered backoff" `Quick
            test_rpc_backoff_is_deterministic;
          Alcotest.test_case "breaker open/half-open/close" `Quick test_rpc_breaker_lifecycle;
        ] );
    ]
