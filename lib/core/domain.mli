(** An administrative domain: the unit of autonomy in Fig. 1.

    Bundles one organisation's certificate authority, identity provider,
    policy administration / information / decision points and any number
    of enforcement points guarding exposed resources.  Node names follow
    the pattern [<domain>.pap], [<domain>.pdp], etc. *)

type t

val create : Dacs_ws.Service.t -> name:string -> ?seed:int64 -> ?attr_cache_ttl:float -> unit -> t
(** Creates the component nodes and services.  Keys are generated
    deterministically from [seed] (default: derived from the name).
    [attr_cache_ttl] enables the domain PDP's attribute cache with
    batched PIP resolution (see {!Pdp_service.create}). *)

val name : t -> string
val services : t -> Dacs_ws.Service.t

val ca_cert : t -> Dacs_crypto.Cert.t
val ca_key : t -> Dacs_crypto.Rsa.private_key
val audit : t -> Audit.t

val pap : t -> Pap.t
val pip : t -> Pip.t
val pdp : t -> Pdp_service.t
val idp : t -> Idp.t

val pap_node : t -> Dacs_net.Net.node_id
val pdp_node : t -> Dacs_net.Net.node_id
val pip_node : t -> Dacs_net.Net.node_id
val idp_node : t -> Dacs_net.Net.node_id

(** {1 Policy administration} *)

val set_local_policy : t -> Dacs_policy.Policy.child -> unit
(** Install the domain's own policy.  If a VO-wide policy has been
    received by syndication, the stored root combines both
    (deny-overrides), so local restrictions always apply — the domain
    autonomy requirement of §3.2. *)

val local_policy : t -> Dacs_policy.Policy.child option

val set_rbac : t -> Dacs_rbac.Rbac.t -> unit
(** Install an RBAC model as the domain's local policy: compiles it to a
    role-based policy (see {!Dacs_rbac.Compile.to_policy}), publishes it,
    and registers every assigned user's id and authorised roles at the
    domain IdP/PIP so pull-mode PDPs can resolve role attributes. *)

val allow_policy_updates_from : t -> Dacs_net.Net.node_id list -> unit
(** Regenerate the PAP's admin policy to permit remote [policy-update]
    calls from the given nodes (the PAP is guarded by the same policy
    machinery as any resource). *)

(** {1 Hierarchical caching} *)

val attach_l2 : t -> ?max_entries:int -> ttl:float -> unit -> Cache_hierarchy.L2.t
(** Stand up the domain's shared decision cache on node [<domain>.l2]:
    every PEP of the domain (current and future) consults it between its
    private L1 and the decision tier, and every invalidation round that
    reaches it also purges the PEPs' L1s (full or by key), so no cache
    level outlives a revocation.  Idempotent: a second call returns the
    existing cache. *)

val l2 : t -> Cache_hierarchy.L2.t option

(** {1 Offline mode} *)

val attach_offline : t -> key:string -> unit -> Offline.t
(** Stand up the domain's offline replica on node [<domain>.offline]:
    every PEP of the domain (current and future) gains the [offline]
    rung of the decision ladder, the replica serves {!Offline.service_name}
    for log anti-entropy, the current combined policy (and every later
    republish) is mirrored into the log, and retroactive invalidations
    from deny-wins replay purge the domain L2 and all PEP L1s by request
    key.  [key] is the mesh-wide HMAC key shared by replicas that sync.
    Idempotent: a second call returns the existing replica. *)

val offline : t -> Offline.t option

val offline_node : t -> Dacs_net.Net.node_id option
(** The replica's node, once {!attach_offline} has run. *)

(** {1 Users and resources} *)

val register_user : t -> user:string -> (string * Dacs_policy.Value.t) list -> unit
(** Registers the user at the IdP and mirrors the attributes into the
    domain PIP (so PDPs can pull them). *)

val expose_resource :
  t ->
  resource:string ->
  ?content:string ->
  ?cache:Decision_cache.t ->
  ?pdps:Dacs_net.Net.node_id list ->
  ?call_timeout:float ->
  unit ->
  Pep.t
(** A pull-mode PEP on node [<domain>.pep.<resource>], wired to the
    domain PDP (or the explicit [pdps] failover list). *)

val peps : t -> Pep.t list
val find_pep : t -> resource:string -> Pep.t option
