(* Tests for dacs_core components: wire formats, audit, decision cache,
   PAP, PIP, PDP service, capability service, IdP, PEP modes, client,
   delegation, negotiation, conflict analysis, meta-policies. *)

module Xml = Dacs_xml.Xml
module Value = Dacs_policy.Value
module Context = Dacs_policy.Context
module Decision = Dacs_policy.Decision
module Policy = Dacs_policy.Policy
module Rule = Dacs_policy.Rule
module Expr = Dacs_policy.Expr
module Target = Dacs_policy.Target
module Combine = Dacs_policy.Combine
module Obligation = Dacs_policy.Obligation
module Net = Dacs_net.Net
module Service = Dacs_ws.Service
open Dacs_core

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let fresh () =
  let net = Net.create () in
  let services = Service.create (Dacs_net.Rpc.create net) in
  (net, services)

let add_node net id =
  Net.add_node net id;
  id

(* A simple policy permitting doctors to read the given resource. *)
let doctor_policy ?(id = "p") resource =
  Policy.Inline_policy
    (Policy.make ~id ~issuer:"domain-a" ~rule_combining:Combine.First_applicable
       [
         Rule.permit
           ~target:
             Target.(
               any |> subject_is "role" "doctor" |> resource_is "resource-id" resource
               |> action_is "action-id" "read")
           "permit-doctor-read";
         Rule.deny "default-deny";
       ])

let doctor_subject user = [ ("subject-id", Value.String user); ("role", Value.String "doctor") ]

(* --- wire ------------------------------------------------------------- *)

let test_wire_access_request () =
  let body = Wire.access_request ~subject:(doctor_subject "alice") ~action:"read" in
  match Wire.parse_access_request body with
  | Ok (subject, action) ->
    check string_ "action" "read" action;
    check int_ "attrs" 2 (List.length subject);
    check bool_ "subject-id" true (List.assoc_opt "subject-id" subject = Some (Value.String "alice"))
  | Error e -> Alcotest.fail e

let test_wire_authz_roundtrip () =
  let ctx = Context.make ~subject:(doctor_subject "alice") () in
  (match Wire.parse_authz_query (Wire.authz_query ctx) with
  | Ok ctx' -> check bool_ "ctx" true (Context.equal ctx ctx')
  | Error e -> Alcotest.fail e);
  let result = Decision.with_obligations Decision.permit [ Obligation.audit ] in
  match Wire.parse_authz_response (Wire.authz_response result) with
  | Ok r ->
    check bool_ "decision" true (Decision.is_permit r);
    check int_ "obligations" 1 (List.length r.Decision.obligations)
  | Error e -> Alcotest.fail e

let test_wire_attribute_roundtrip () =
  let q = Wire.attribute_query ~category:Context.Subject ~attribute_id:"role" ~subject:"alice" in
  (match Wire.parse_attribute_query q with
  | Ok (c, id, s) ->
    check bool_ "category" true (c = Context.Subject);
    check string_ "id" "role" id;
    check string_ "subject" "alice" s
  | Error e -> Alcotest.fail e);
  match Wire.parse_attribute_result (Wire.attribute_result [ Value.String "doctor"; Value.Int 3 ]) with
  | Ok bag -> check int_ "bag" 2 (List.length bag)
  | Error e -> Alcotest.fail e

let test_wire_policy_roundtrip () =
  let child = doctor_policy "r1" in
  (match Wire.parse_policy_response (Wire.policy_response ~version:7 (Some child)) with
  | Ok (7, Some c) -> check string_ "id" "p" (Policy.child_id c)
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.fail e);
  (match Wire.parse_policy_response (Wire.policy_response ~version:7 None) with
  | Ok (7, None) -> ()
  | _ -> Alcotest.fail "expected current marker");
  match Wire.parse_policy_update (Wire.policy_update ~version:3 child) with
  | Ok (3, c) -> check string_ "id" "p" (Policy.child_id c)
  | _ -> Alcotest.fail "update roundtrip failed"

let test_wire_capability_roundtrip () =
  let body =
    Wire.capability_request ~subject:(doctor_subject "alice")
      ~pairs:[ ("r1", "read"); ("r2", "write") ]
  in
  match Wire.parse_capability_request body with
  | Ok (subject, pairs) ->
    check int_ "subject" 2 (List.length subject);
    check int_ "pairs" 2 (List.length pairs);
    check bool_ "pair content" true (List.mem ("r2", "write") pairs)
  | Error e -> Alcotest.fail e

let test_wire_outcomes () =
  (match Wire.parse_access_outcome (Wire.access_granted ~content:"data" ()) with
  | Ok (Wire.Granted { content; encrypted }) ->
    check string_ "content" "data" content;
    check bool_ "plain" false encrypted
  | _ -> Alcotest.fail "expected granted");
  match Wire.parse_access_outcome (Wire.access_denied ~reason:"nope") with
  | Ok (Wire.Denied reason) -> check string_ "reason" "nope" reason
  | _ -> Alcotest.fail "expected denied"

(* --- audit -------------------------------------------------------------- *)

let entry ?(at = 0.0) ?(domain = "d") subject resource decision =
  { Audit.at; domain; subject; resource; action = "read"; decision; provenance = None }

let test_audit_basics () =
  let log = Audit.create () in
  Audit.record log (entry ~at:1.0 "alice" "r1" Decision.Permit);
  Audit.record log (entry ~at:2.0 "alice" "r2" Decision.Deny);
  Audit.record log (entry ~at:3.0 "bob" "r1" Decision.Permit);
  check int_ "size" 3 (Audit.size log);
  check (Alcotest.list string_) "permitted" [ "r1" ] (Audit.permitted_resources log ~subject:"alice");
  check int_ "by subject" 2 (List.length (Audit.by_subject log "alice"));
  check int_ "find denies" 1 (List.length (Audit.find log ~decision:Decision.Deny ()));
  check int_ "find resource" 2 (List.length (Audit.find log ~resource:"r1" ()));
  Audit.clear log;
  check int_ "cleared" 0 (Audit.size log)

let test_audit_merge_ordering () =
  let a = Audit.create () and b = Audit.create () in
  Audit.record a (entry ~at:5.0 ~domain:"a" "u" "r1" Decision.Permit);
  Audit.record a (entry ~at:1.0 ~domain:"a" "u" "r2" Decision.Permit);
  Audit.record b (entry ~at:3.0 ~domain:"b" "u" "r3" Decision.Permit);
  let merged = Audit.merge [ a; b ] in
  check (Alcotest.list (Alcotest.float 0.001)) "time ordered" [ 1.0; 3.0; 5.0 ]
    (List.map (fun e -> e.Audit.at) (Audit.entries merged))

(* --- decision cache -------------------------------------------------------- *)

let test_cache_hit_miss_expiry () =
  let c = Decision_cache.create ~ttl:10.0 () in
  check bool_ "miss" true (Decision_cache.get c ~now:0.0 ~key:"k" = None);
  Decision_cache.put c ~now:0.0 ~key:"k" Decision.permit;
  (match Decision_cache.get c ~now:5.0 ~key:"k" with
  | Some r -> check bool_ "hit" true (Decision.is_permit r)
  | None -> Alcotest.fail "expected hit");
  check bool_ "expired" true (Decision_cache.get c ~now:10.1 ~key:"k" = None);
  let s = Decision_cache.stats c in
  check int_ "hits" 1 s.Decision_cache.hits;
  check int_ "misses" 2 s.Decision_cache.misses;
  check int_ "expiries" 1 s.Decision_cache.expiries

let test_cache_eviction () =
  let c = Decision_cache.create ~max_entries:2 ~ttl:100.0 () in
  Decision_cache.put c ~now:0.0 ~key:"a" Decision.permit;
  Decision_cache.put c ~now:1.0 ~key:"b" Decision.permit;
  Decision_cache.put c ~now:2.0 ~key:"c" Decision.permit;
  check int_ "bounded" 2 (Decision_cache.size c);
  (* The oldest key was evicted. *)
  check bool_ "a gone" true (Decision_cache.get c ~now:3.0 ~key:"a" = None);
  check bool_ "c present" true (Decision_cache.get c ~now:3.0 ~key:"c" <> None);
  check int_ "evictions" 1 (Decision_cache.stats c).Decision_cache.evictions

let test_cache_refresh_not_evicted () =
  (* Regression: re-putting a live key used to leave a stale queue entry
     behind; the next capacity eviction then removed the *refreshed* key
     instead of the oldest live one. *)
  let c = Decision_cache.create ~max_entries:2 ~ttl:100.0 () in
  Decision_cache.put c ~now:0.0 ~key:"a" Decision.permit;
  Decision_cache.put c ~now:1.0 ~key:"b" Decision.permit;
  Decision_cache.put c ~now:2.0 ~key:"a" Decision.deny;
  (* refresh, still 2 entries *)
  check int_ "refresh keeps size" 2 (Decision_cache.size c);
  Decision_cache.put c ~now:3.0 ~key:"c" Decision.permit;
  check int_ "bounded" 2 (Decision_cache.size c);
  check bool_ "b (oldest live) evicted" true (Decision_cache.get c ~now:4.0 ~key:"b" = None);
  (match Decision_cache.get c ~now:4.0 ~key:"a" with
  | Some r -> check bool_ "refreshed entry survives with new value" true (Decision.is_deny r)
  | None -> Alcotest.fail "refreshed key was evicted prematurely");
  check bool_ "c present" true (Decision_cache.get c ~now:4.0 ~key:"c" <> None);
  check int_ "one eviction" 1 (Decision_cache.stats c).Decision_cache.evictions

let test_cache_stale_lookup () =
  let c = Decision_cache.create ~ttl:10.0 () in
  Decision_cache.put c ~now:0.0 ~key:"k" Decision.permit;
  (match Decision_cache.lookup c ~now:5.0 ~max_stale:0.0 ~key:"k" with
  | Decision_cache.Fresh r -> check bool_ "fresh hit" true (Decision.is_permit r)
  | _ -> Alcotest.fail "expected Fresh");
  (* Expired by 3 s, within a 5 s stale window: served as stale, retained. *)
  (match Decision_cache.lookup c ~now:13.0 ~max_stale:5.0 ~key:"k" with
  | Decision_cache.Stale { result; age } ->
    check bool_ "stale value" true (Decision.is_permit result);
    check (Alcotest.float 1e-9) "age past expiry" 3.0 age
  | _ -> Alcotest.fail "expected Stale");
  check int_ "stale serve counted" 1 (Decision_cache.stats c).Decision_cache.stale_hits;
  check int_ "entry retained for future stale serves" 1 (Decision_cache.size c);
  (* Beyond the bound the entry is gone for good. *)
  check bool_ "absent past window" true
    (Decision_cache.lookup c ~now:20.0 ~max_stale:4.0 ~key:"k" = Decision_cache.Absent);
  check int_ "expiry counted" 1 (Decision_cache.stats c).Decision_cache.expiries;
  check int_ "removed" 0 (Decision_cache.size c)

let test_cache_invalidation () =
  let c = Decision_cache.create ~ttl:100.0 () in
  Decision_cache.put c ~now:0.0 ~key:"a" Decision.permit;
  Decision_cache.put c ~now:0.0 ~key:"b" Decision.deny;
  Decision_cache.invalidate c ~key:"a";
  check bool_ "a gone" true (Decision_cache.get c ~now:1.0 ~key:"a" = None);
  check bool_ "b stays" true (Decision_cache.get c ~now:1.0 ~key:"b" <> None);
  Decision_cache.invalidate_all c;
  check int_ "flushed" 0 (Decision_cache.size c)

let test_cache_key_stability () =
  let ctx1 = Context.make ~subject:(doctor_subject "alice") ~action:[ ("action-id", Value.String "read") ] () in
  let ctx2 = Context.make ~action:[ ("action-id", Value.String "read") ] ~subject:(doctor_subject "alice") () in
  check string_ "same key" (Decision_cache.request_key ctx1) (Decision_cache.request_key ctx2);
  let ctx3 = Context.make ~subject:(doctor_subject "bob") () in
  check bool_ "different key" true (Decision_cache.request_key ctx1 <> Decision_cache.request_key ctx3)

(* --- pap ------------------------------------------------------------------- *)

let test_pap_query_versions () =
  let net, services = fresh () in
  let pap_node = add_node net "pap" in
  let client = add_node net "pdp" in
  let pap = Pap.create services ~node:pap_node ~name:"pap" ~root:(doctor_policy "r") () in
  check int_ "initial version" 1 (Pap.version pap);
  let got = ref None in
  Service.call services ~src:client ~dst:pap_node ~service:"policy-query"
    (Wire.policy_query ~scope:"" ~known_version:0)
    (fun r -> got := Some r);
  Net.run net;
  (match !got with
  | Some (Ok body) -> (
    match Wire.parse_policy_response body with
    | Ok (1, Some _) -> ()
    | _ -> Alcotest.fail "expected full policy")
  | _ -> Alcotest.fail "no reply");
  (* Known version up to date: small None reply. *)
  Service.call services ~src:client ~dst:pap_node ~service:"policy-query"
    (Wire.policy_query ~scope:"" ~known_version:1)
    (fun r -> got := Some r);
  Net.run net;
  match !got with
  | Some (Ok body) -> (
    match Wire.parse_policy_response body with
    | Ok (1, None) -> check int_ "queries served" 2 (Pap.queries_served pap)
    | _ -> Alcotest.fail "expected current marker")
  | _ -> Alcotest.fail "no reply"

let admin_policy_for nodes =
  Policy.Inline_policy
    (Policy.make ~id:"admin" ~rule_combining:Combine.First_applicable
       [
         Rule.permit ~condition:(Expr.one_of (Expr.subject_attr "subject-id") nodes) "allow";
         Rule.deny "deny";
       ])

let test_pap_remote_update_access_control () =
  let net, services = fresh () in
  let pap_node = add_node net "pap" in
  let admin = add_node net "admin" in
  let rogue = add_node net "rogue" in
  let pap =
    Pap.create services ~node:pap_node ~name:"pap" ~admin_policy:(admin_policy_for [ "admin" ])
      ~root:(doctor_policy "r") ()
  in
  let send_update src k =
    Service.call services ~src ~dst:pap_node ~service:"policy-update"
      (Wire.policy_update ~version:9 (doctor_policy ~id:"p2" "r2"))
      k
  in
  let outcome = ref None in
  send_update admin (fun r -> outcome := Some r);
  Net.run net;
  check bool_ "admin accepted" true (match !outcome with Some (Ok _) -> true | _ -> false);
  check int_ "version bumped" 2 (Pap.version pap);
  check int_ "accepted count" 1 (Pap.updates_accepted pap);
  send_update rogue (fun r -> outcome := Some r);
  Net.run net;
  (match !outcome with
  | Some (Error (Service.Fault f)) -> check string_ "refusal" "policy update not authorised" f.Dacs_ws.Soap.reason
  | _ -> Alcotest.fail "expected a fault");
  check int_ "rejected count" 1 (Pap.updates_rejected pap);
  check int_ "version unchanged" 2 (Pap.version pap)

let test_pap_syndication_cascade () =
  (* Fig. 5: global PAP -> two regional PAPs -> one leaf PAP. *)
  let net, services = fresh () in
  let global = Pap.create services ~node:(add_node net "g") ~name:"g" () in
  let make_child name parent =
    let pap =
      Pap.create services ~node:(add_node net name) ~name
        ~admin_policy:(admin_policy_for [ Pap.node parent ])
        ()
    in
    Pap.subscribe_local parent ~child:(Pap.node pap);
    pap
  in
  let region_a = make_child "ra" global in
  let region_b = make_child "rb" global in
  let leaf = make_child "leaf" region_a in
  Pap.publish global (doctor_policy "r");
  Net.run net;
  check bool_ "region a updated" true (Pap.current region_a <> None);
  check bool_ "region b updated" true (Pap.current region_b <> None);
  check bool_ "leaf updated through the hierarchy" true (Pap.current leaf <> None)

let test_pap_update_filter_blocks () =
  let net, services = fresh () in
  let parent = Pap.create services ~node:(add_node net "parent") ~name:"parent" () in
  let child =
    Pap.create services ~node:(add_node net "child") ~name:"child"
      ~admin_policy:(admin_policy_for [ "parent" ])
      ()
  in
  Pap.subscribe_local parent ~child:"child";
  (* The child only accepts policies whose id starts with "approved". *)
  Pap.set_update_filter child (fun c -> String.length (Policy.child_id c) >= 8 && String.sub (Policy.child_id c) 0 8 = "approved");
  Pap.publish parent (doctor_policy ~id:"rogue-policy" "r");
  Net.run net;
  check bool_ "filtered out" true (Pap.current child = None);
  Pap.publish parent (doctor_policy ~id:"approved-1" "r");
  Net.run net;
  check bool_ "accepted" true (Pap.current child <> None)

let test_pap_lookup () =
  let _net, services = fresh () in
  let net2 = Service.net services in
  let pap =
    Pap.create services ~node:(add_node net2 "pap") ~name:"pap"
      ~root:
        (Policy.Inline_set
           (Policy.make_set ~id:"root" [ doctor_policy ~id:"child-a" "r1"; doctor_policy ~id:"child-b" "r2" ]))
      ()
  in
  check bool_ "root" true (Pap.lookup pap "root" <> None);
  check bool_ "child" true (Pap.lookup pap "child-a" <> None);
  check bool_ "missing" true (Pap.lookup pap "nope" = None)

(* --- pip ------------------------------------------------------------------------ *)

let test_pip_lookup_service () =
  let net, services = fresh () in
  let pip_node = add_node net "pip" in
  let caller = add_node net "pdp" in
  let pip = Pip.create services ~node:pip_node ~name:"pip" in
  Pip.set_subject_attribute pip ~subject:"alice" ~id:"role" [ Value.String "doctor" ];
  Pip.set_environment pip ~id:"load" (fun () -> [ Value.Int 42 ]);
  let got = ref None in
  Service.call services ~src:caller ~dst:pip_node ~service:"attribute-query"
    (Wire.attribute_query ~category:Context.Subject ~attribute_id:"role" ~subject:"alice")
    (fun r -> got := Some r);
  Net.run net;
  (match !got with
  | Some (Ok body) -> (
    match Wire.parse_attribute_result body with
    | Ok [ Value.String "doctor" ] -> ()
    | _ -> Alcotest.fail "wrong attribute value")
  | _ -> Alcotest.fail "no reply");
  check int_ "served" 1 (Pip.lookups_served pip);
  (* Environment + unknown lookups. *)
  check bool_ "environment" true
    (Pip.lookup pip ~category:Context.Environment ~id:"load" ~subject:"" = [ Value.Int 42 ]);
  check bool_ "unknown empty" true (Pip.lookup pip ~category:Context.Subject ~id:"x" ~subject:"bob" = []);
  (* Revocation. *)
  Pip.remove_subject_attribute pip ~subject:"alice" ~id:"role";
  check bool_ "revoked" true (Pip.lookup pip ~category:Context.Subject ~id:"role" ~subject:"alice" = [])

(* --- pdp service ------------------------------------------------------------------- *)

let role_condition_policy resource =
  (* Requires the subject's role attribute, which only the PIP knows. *)
  Policy.Inline_policy
    (Policy.make ~id:"p" ~rule_combining:Combine.First_applicable
       [
         Rule.permit
           ~target:Target.(any |> resource_is "resource-id" resource)
           ~condition:(Expr.Apply ("string-is-in", [ Expr.str "doctor"; Expr.subject_attr "role" ]))
           "permit";
         Rule.deny "deny";
       ])

let authz_call services ~src ~dst ctx k =
  Service.call services ~src ~dst ~service:"authz-query" (Wire.authz_query ctx) (fun r ->
      match r with
      | Ok body -> k (Wire.parse_authz_response body)
      | Error e -> k (Error (Service.error_to_string e)))

let test_pdp_service_basic () =
  let net, services = fresh () in
  let pdp_node = add_node net "pdp" in
  let pep = add_node net "pep" in
  let _pdp =
    Pdp_service.create services ~node:pdp_node ~name:"pdp" ~root:(doctor_policy "r") ()
  in
  let ctx =
    Context.make ~subject:(doctor_subject "alice")
      ~resource:[ ("resource-id", Value.String "r") ]
      ~action:[ ("action-id", Value.String "read") ]
      ()
  in
  let got = ref None in
  authz_call services ~src:pep ~dst:pdp_node ctx (fun r -> got := Some r);
  Net.run net;
  match !got with
  | Some (Ok r) -> check bool_ "permit" true (Decision.is_permit r)
  | _ -> Alcotest.fail "no decision"

let test_pdp_service_pip_fetch () =
  let net, services = fresh () in
  let pdp_node = add_node net "pdp" in
  let pip_node = add_node net "pip" in
  let pep = add_node net "pep" in
  let pip = Pip.create services ~node:pip_node ~name:"pip" in
  Pip.set_subject_attribute pip ~subject:"alice" ~id:"role" [ Value.String "doctor" ];
  let pdp =
    Pdp_service.create services ~node:pdp_node ~name:"pdp" ~root:(role_condition_policy "r")
      ~pips:[ pip_node ] ()
  in
  (* The request context has no role attribute: the PDP must fetch it. *)
  let ctx =
    Context.make
      ~subject:[ ("subject-id", Value.String "alice") ]
      ~resource:[ ("resource-id", Value.String "r") ]
      ~action:[ ("action-id", Value.String "read") ]
      ()
  in
  let got = ref None in
  authz_call services ~src:pep ~dst:pdp_node ctx (fun r -> got := Some r);
  Net.run net;
  (match !got with
  | Some (Ok r) -> check bool_ "permit via PIP" true (Decision.is_permit r)
  | _ -> Alcotest.fail "no decision");
  check bool_ "pip fetches counted" true ((Pdp_service.stats pdp).Pdp_service.pip_fetches > 0);
  (* Unknown subject: PIP has nothing, decision falls through to deny. *)
  let ctx2 =
    Context.make
      ~subject:[ ("subject-id", Value.String "mallory") ]
      ~resource:[ ("resource-id", Value.String "r") ]
      ()
  in
  let got2 = ref None in
  authz_call services ~src:pep ~dst:pdp_node ctx2 (fun r -> got2 := Some r);
  Net.run net;
  match !got2 with
  | Some (Ok r) -> check bool_ "deny" true (Decision.is_deny r)
  | _ -> Alcotest.fail "no decision"

let test_pdp_service_policy_fetch_and_ttl () =
  let net, services = fresh () in
  let pap_node = add_node net "pap" in
  let pdp_node = add_node net "pdp" in
  let pep = add_node net "pep" in
  let _pap = Pap.create services ~node:pap_node ~name:"pap" ~root:(doctor_policy "r") () in
  let pdp =
    Pdp_service.create services ~node:pdp_node ~name:"pdp" ~pap:pap_node
      ~refresh:(Pdp_service.Ttl 10.0) ()
  in
  let ctx =
    Context.make ~subject:(doctor_subject "alice")
      ~resource:[ ("resource-id", Value.String "r") ]
      ~action:[ ("action-id", Value.String "read") ]
      ()
  in
  let decide k = authz_call services ~src:pep ~dst:pdp_node ctx k in
  let got = ref None in
  decide (fun r -> got := Some r);
  Net.run net;
  (match !got with
  | Some (Ok r) -> check bool_ "permit after fetch" true (Decision.is_permit r)
  | _ -> Alcotest.fail "no decision");
  check int_ "one pap fetch" 1 (Pdp_service.stats pdp).Pdp_service.pap_fetches;
  check int_ "version" 1 (Pdp_service.policy_version pdp);
  (* Within the TTL no new fetch happens. *)
  decide (fun r -> got := Some r);
  Net.run net;
  check int_ "still one fetch" 1 (Pdp_service.stats pdp).Pdp_service.pap_fetches;
  (* After the TTL the PDP revalidates; the PAP answers "current". *)
  Dacs_net.Engine.schedule (Net.engine net) ~delay:11.0 (fun () -> decide (fun r -> got := Some r));
  Net.run net;
  check int_ "revalidated" 2 (Pdp_service.stats pdp).Pdp_service.pap_fetches;
  check int_ "current marker" 1 (Pdp_service.stats pdp).Pdp_service.pap_refresh_hits

let test_pdp_service_no_policy () =
  let net, services = fresh () in
  let pdp_node = add_node net "pdp" in
  let pep = add_node net "pep" in
  let _pdp = Pdp_service.create services ~node:pdp_node ~name:"pdp" () in
  let got = ref None in
  authz_call services ~src:pep ~dst:pdp_node (Context.make ()) (fun r -> got := Some r);
  Net.run net;
  match !got with
  | Some (Ok { Decision.decision = Decision.Indeterminate _; _ }) -> ()
  | _ -> Alcotest.fail "expected indeterminate"

(* --- capability service / idp -------------------------------------------------------- *)

let test_capability_issue_and_verify () =
  let _net, services = fresh () in
  let net = Service.net services in
  let keys = Dacs_crypto.Rsa.generate (Dacs_crypto.Rng.create 7L) ~bits:512 in
  let cas =
    Capability_service.create services ~node:(add_node net "cas") ~issuer:"cas" ~keypair:keys
      ~root:(doctor_policy "r") ()
  in
  let a = Capability_service.issue cas ~subject:(doctor_subject "alice") ~pairs:[ ("r", "read"); ("r", "write") ] in
  check bool_ "signed ok" true (Dacs_saml.Assertion.verify (Capability_service.public_key cas) a);
  check bool_ "read permitted" true (Dacs_saml.Assertion.permits a ~resource:"r" ~action:"read");
  check bool_ "write denied" false (Dacs_saml.Assertion.permits a ~resource:"r" ~action:"write");
  check int_ "issued" 1 (Capability_service.issued_count cas)

let test_capability_revocation () =
  let _net, services = fresh () in
  let net = Service.net services in
  let keys = Dacs_crypto.Rsa.generate (Dacs_crypto.Rng.create 8L) ~bits:512 in
  let cas =
    Capability_service.create services ~node:(add_node net "cas") ~issuer:"cas" ~keypair:keys
      ~root:(doctor_policy "r") ()
  in
  let a = Capability_service.issue cas ~subject:(doctor_subject "alice") ~pairs:[ ("r", "read") ] in
  check bool_ "not revoked" false (Capability_service.is_revoked cas ~assertion_id:a.Dacs_saml.Assertion.id);
  Capability_service.revoke cas ~assertion_id:a.Dacs_saml.Assertion.id;
  check bool_ "revoked" true (Capability_service.is_revoked cas ~assertion_id:a.Dacs_saml.Assertion.id)

let test_idp () =
  let net, services = fresh () in
  let keys = Dacs_crypto.Rsa.generate (Dacs_crypto.Rng.create 9L) ~bits:512 in
  let idp = Idp.create services ~node:(add_node net "idp") ~issuer:"idp.a" ~keypair:keys () in
  Idp.register_user idp ~user:"alice" (doctor_subject "alice");
  check bool_ "knows" true (Idp.knows idp ~user:"alice");
  (match Idp.issue idp ~user:"alice" with
  | Some a ->
    check bool_ "verifies" true (Dacs_saml.Assertion.verify (Idp.public_key idp) a);
    check int_ "attrs" 2 (List.length (Dacs_saml.Assertion.attributes a))
  | None -> Alcotest.fail "expected an assertion");
  check bool_ "unknown" true (Idp.issue idp ~user:"bob" = None);
  (* Network path. *)
  let caller = add_node net "c" in
  let got = ref None in
  Service.call services ~src:caller ~dst:"idp" ~service:"attribute-assertion"
    (Xml.element "AttributeAssertionRequest" ~attrs:[ ("Subject", "alice") ])
    (fun r -> got := Some r);
  Net.run net;
  match !got with
  | Some (Ok body) -> check bool_ "assertion over wire" true (Result.is_ok (Dacs_saml.Assertion.of_xml body))
  | _ -> Alcotest.fail "no reply"

(* --- pep: pull mode ---------------------------------------------------------------------- *)

let pull_setup ?cache ?(pdps = 1) () =
  let net, services = fresh () in
  let pdp_nodes =
    List.init pdps (fun i ->
        let node = add_node net (Printf.sprintf "pdp%d" i) in
        ignore (Pdp_service.create services ~node ~name:node ~root:(doctor_policy "r") ());
        node)
  in
  let pep_node = add_node net "pep" in
  let pep =
    Pep.create services ~node:pep_node ~domain:"a" ~resource:"r" ~content:"the-content"
      (Pep.Pull { pdps = pdp_nodes; cache; call_timeout = 0.5 })
  in
  let client = Client.create services ~node:(add_node net "client") ~subject:(doctor_subject "alice") in
  (net, services, pep, client, pdp_nodes)

let test_pep_pull_grant_and_deny () =
  let net, _services, pep, client, _ = pull_setup () in
  let got = ref None in
  Client.request client ~pep:"pep" ~action:"read" (fun r -> got := Some r);
  Net.run net;
  (match !got with
  | Some (Ok (Wire.Granted { content; _ })) -> check string_ "content" "the-content" content
  | _ -> Alcotest.fail "expected grant");
  (* Write denied. *)
  Client.request client ~pep:"pep" ~action:"write" (fun r -> got := Some r);
  Net.run net;
  (match !got with
  | Some (Ok (Wire.Denied _)) -> ()
  | _ -> Alcotest.fail "expected deny");
  let s = Pep.stats pep in
  check int_ "requests" 2 s.Pep.requests;
  check int_ "granted" 1 s.Pep.granted;
  check int_ "denied" 1 s.Pep.denied;
  check int_ "pdp calls" 2 s.Pep.pdp_calls;
  (* Audit trail. *)
  check int_ "audit entries" 2 (Audit.size (Pep.audit pep))

let test_pep_pull_cache () =
  let cache = Decision_cache.create ~ttl:60.0 () in
  let net, _services, pep, client, _ = pull_setup ~cache () in
  let run_request () =
    let got = ref None in
    Client.request client ~pep:"pep" ~action:"read" (fun r -> got := Some r);
    Net.run net;
    match !got with
    | Some (Ok (Wire.Granted _)) -> ()
    | _ -> Alcotest.fail "expected grant"
  in
  run_request ();
  run_request ();
  run_request ();
  let s = Pep.stats pep in
  check int_ "single PDP call" 1 s.Pep.pdp_calls;
  check int_ "two cache hits" 2 s.Pep.cache_hits

let test_pep_pull_failover () =
  let net, _services, pep, client, pdp_nodes = pull_setup ~pdps:3 () in
  (* Crash the first two PDPs: the request must still succeed. *)
  Net.crash net (List.nth pdp_nodes 0);
  Net.crash net (List.nth pdp_nodes 1);
  let got = ref None in
  Client.request client ~pep:"pep" ~action:"read" ~timeout:10.0 (fun r -> got := Some r);
  Net.run net;
  (match !got with
  | Some (Ok (Wire.Granted _)) -> ()
  | other ->
    Alcotest.failf "expected grant, got %s"
      (match other with
      | Some (Ok (Wire.Denied r)) -> "denied: " ^ r
      | Some (Ok (Wire.Granted _)) -> "granted"
      | Some (Error e) -> Service.error_to_string e
      | None -> "nothing"));
  check int_ "two failovers" 2 (Pep.stats pep).Pep.failovers;
  check int_ "three attempts" 3 (Pep.stats pep).Pep.pdp_calls

let test_pep_pull_all_pdps_down () =
  let net, _services, pep, client, pdp_nodes = pull_setup ~pdps:2 () in
  List.iter (Net.crash net) pdp_nodes;
  let got = ref None in
  Client.request client ~pep:"pep" ~action:"read" ~timeout:10.0 (fun r -> got := Some r);
  Net.run net;
  (match !got with
  | Some (Ok (Wire.Denied reason)) ->
    check bool_ "fails closed with reason" true
      (String.length reason > 0)
  | _ -> Alcotest.fail "expected deny (fail closed)");
  check int_ "denied" 1 (Pep.stats pep).Pep.denied

let test_pep_obligations_encrypt () =
  (* A policy that obliges the PEP to encrypt the response. *)
  let net, services = fresh () in
  let pdp_node = add_node net "pdp" in
  let policy =
    Policy.Inline_policy
      (Policy.make ~id:"p" ~rule_combining:Combine.First_applicable
         ~obligations:[ Obligation.encrypt_response ~strength:128 ]
         [ Rule.permit "allow" ])
  in
  ignore (Pdp_service.create services ~node:pdp_node ~name:"pdp" ~root:policy ());
  let pep_node = add_node net "pep" in
  ignore
    (Pep.create services ~node:pep_node ~domain:"a" ~resource:"r" ~content:"secret"
       ~encryption_key:(Dacs_crypto.Stream_cipher.derive_key "k")
       (Pep.Pull { pdps = [ pdp_node ]; cache = None; call_timeout = 0.5 }));
  let client = Client.create services ~node:(add_node net "client") ~subject:(doctor_subject "alice") in
  let got = ref None in
  Client.request client ~pep:pep_node ~action:"read" (fun r -> got := Some r);
  Net.run net;
  match !got with
  | Some (Ok (Wire.Granted { content; encrypted })) ->
    check bool_ "encrypted" true encrypted;
    check bool_ "content hidden" true (content <> "secret");
    (* The client can decrypt with the shared key. *)
    let cipher = Dacs_crypto.Encoding.base64_decode content in
    check bool_ "decrypts" true
      (Dacs_crypto.Stream_cipher.decrypt ~key:(Dacs_crypto.Stream_cipher.derive_key "k") cipher
      = Some "secret")
  | _ -> Alcotest.fail "expected encrypted grant"

let test_pep_unknown_obligation_fails_closed () =
  let net, services = fresh () in
  let pdp_node = add_node net "pdp" in
  let policy =
    Policy.Inline_policy
      (Policy.make ~id:"p"
         ~obligations:[ Obligation.make ~fulfill_on:Obligation.Permit "urn:dacs:obligation:mystery" ]
         [ Rule.permit "allow" ])
  in
  ignore (Pdp_service.create services ~node:pdp_node ~name:"pdp" ~root:policy ());
  let pep_node = add_node net "pep" in
  ignore
    (Pep.create services ~node:pep_node ~domain:"a" ~resource:"r"
       (Pep.Pull { pdps = [ pdp_node ]; cache = None; call_timeout = 0.5 }));
  let client = Client.create services ~node:(add_node net "client") ~subject:(doctor_subject "alice") in
  let got = ref None in
  Client.request client ~pep:pep_node ~action:"read" (fun r -> got := Some r);
  Net.run net;
  match !got with
  | Some (Ok (Wire.Denied _)) -> ()
  | _ -> Alcotest.fail "a PEP that cannot fulfil an obligation must not grant"

(* --- pep: push mode -------------------------------------------------------------------------- *)

let push_setup ?(revocation = false) () =
  let net, services = fresh () in
  let keys = Dacs_crypto.Rsa.generate (Dacs_crypto.Rng.create 11L) ~bits:512 in
  let cas =
    Capability_service.create services ~node:(add_node net "cas") ~issuer:"cas" ~keypair:keys
      ~root:(doctor_policy "r") ()
  in
  let pep_node = add_node net "pep" in
  let trusted_issuer issuer = if issuer = "cas" then Some (Capability_service.public_key cas) else None in
  let pep =
    Pep.create services ~node:pep_node ~domain:"a" ~resource:"r" ~content:"pushed-content"
      (Pep.Push
         {
           trusted_issuer;
           check_revocation = (if revocation then Some "cas" else None);
           local_pdp = None;
         })
  in
  let client = Client.create services ~node:(add_node net "client") ~subject:(doctor_subject "alice") in
  (net, services, cas, pep, client)

let test_pep_push_happy_path () =
  let net, _services, _cas, pep, client = push_setup () in
  let got = ref None in
  Client.request_with_capability client ~capability_service:"cas" ~pep:"pep" ~resource:"r"
    ~action:"read" (fun r -> got := Some r);
  Net.run net;
  (match !got with
  | Some (Ok (Wire.Granted { content; _ })) -> check string_ "content" "pushed-content" content
  | _ -> Alcotest.fail "expected grant");
  check int_ "one capability request" 1 (Client.capability_requests_made client);
  (* Second access reuses the cached capability. *)
  Client.request_with_capability client ~capability_service:"cas" ~pep:"pep" ~resource:"r"
    ~action:"read" (fun r -> got := Some r);
  Net.run net;
  check int_ "capability reused" 1 (Client.capability_requests_made client);
  check int_ "two grants" 2 (Pep.stats pep).Pep.granted

let test_pep_push_without_assertion () =
  let net, _services, _cas, pep, client = push_setup () in
  let got = ref None in
  (* A plain request without a capability header. *)
  Client.request client ~pep:"pep" ~action:"read" (fun r -> got := Some r);
  Net.run net;
  (match !got with
  | Some (Ok (Wire.Denied _)) -> ()
  | _ -> Alcotest.fail "expected deny");
  check int_ "rejection counted" 1 (Pep.stats pep).Pep.assertion_rejections

let test_pep_push_capability_scope () =
  let net, _services, _cas, _pep, client = push_setup () in
  (* Capability is issued for read; only write is denied by the CAS's
     policy, so the decision statement says Deny and the PEP refuses. *)
  let got = ref None in
  Client.request_with_capability client ~capability_service:"cas" ~pep:"pep" ~resource:"r"
    ~action:"write" (fun r -> got := Some r);
  Net.run net;
  match !got with
  | Some (Ok (Wire.Denied _)) -> ()
  | _ -> Alcotest.fail "expected deny for uncovered action"

let test_pep_push_revocation () =
  let net, _services, cas, pep, client = push_setup ~revocation:true () in
  let got = ref None in
  Client.request_with_capability client ~capability_service:"cas" ~pep:"pep" ~resource:"r"
    ~action:"read" (fun r -> got := Some r);
  Net.run net;
  (match !got with
  | Some (Ok (Wire.Granted _)) -> ()
  | _ -> Alcotest.fail "expected grant before revocation");
  check int_ "revocation checked" 1 (Pep.stats pep).Pep.revocation_checks;
  (* Revoke all issued assertions, then replay the cached capability. *)
  for i = 1 to Capability_service.issued_count cas do
    Capability_service.revoke cas ~assertion_id:(Printf.sprintf "cap-cas-%d" i)
  done;
  Client.request_with_capability client ~capability_service:"cas" ~pep:"pep" ~resource:"r"
    ~action:"read" (fun r -> got := Some r);
  Net.run net;
  match !got with
  | Some (Ok (Wire.Denied _)) -> ()
  | _ -> Alcotest.fail "expected deny after revocation"

let test_pep_push_local_final_say () =
  (* The capability service permits, but the resource provider's local PDP
     denies: the paper's "resource providers may impose their own
     restrictions". *)
  let net, services = fresh () in
  let keys = Dacs_crypto.Rsa.generate (Dacs_crypto.Rng.create 12L) ~bits:512 in
  let cas =
    Capability_service.create services ~node:(add_node net "cas") ~issuer:"cas" ~keypair:keys
      ~root:(doctor_policy "r") ()
  in
  let local_pdp_node = add_node net "local-pdp" in
  let deny_all = Policy.Inline_policy (Policy.make ~id:"deny" [ Rule.deny "d" ]) in
  let local_pdp = Pdp_service.create services ~node:local_pdp_node ~name:"local" ~root:deny_all () in
  let pep_node = add_node net "pep" in
  ignore
    (Pep.create services ~node:pep_node ~domain:"a" ~resource:"r"
       (Pep.Push
          {
            trusted_issuer =
              (fun issuer -> if issuer = "cas" then Some (Capability_service.public_key cas) else None);
            check_revocation = None;
            local_pdp = Some local_pdp;
          }));
  let client = Client.create services ~node:(add_node net "client") ~subject:(doctor_subject "alice") in
  let got = ref None in
  Client.request_with_capability client ~capability_service:"cas" ~pep:pep_node ~resource:"r"
    ~action:"read" (fun r -> got := Some r);
  Net.run net;
  match !got with
  | Some (Ok (Wire.Denied _)) -> ()
  | _ -> Alcotest.fail "local PDP must have the final say"

let test_pep_agent_mode () =
  let net, services = fresh () in
  let pep_node = add_node net "pep" in
  (* Agent mode: the PDP is embedded; no authz-query traffic at all. *)
  let embedded =
    Pdp_service.create services ~node:pep_node ~name:"embedded" ~root:(doctor_policy "r") ()
  in
  ignore
    (Pep.create services ~node:pep_node ~domain:"a" ~resource:"r" ~content:"agent-content"
       (Pep.Agent embedded));
  let client = Client.create services ~node:(add_node net "client") ~subject:(doctor_subject "alice") in
  let got = ref None in
  Client.request client ~pep:pep_node ~action:"read" (fun r -> got := Some r);
  Net.run net;
  (match !got with
  | Some (Ok (Wire.Granted { content; _ })) -> check string_ "content" "agent-content" content
  | _ -> Alcotest.fail "expected grant");
  (* No authz-query messages were sent. *)
  check bool_ "no remote decision traffic" true
    (List.assoc_opt "authz-query" (Net.stats_by_category net) = None)

(* --- delegation --------------------------------------------------------------------------------- *)

let test_delegation_chains () =
  let d = Delegation.create ~roots:[ "root-a" ] in
  check bool_ "root has authority" true (Delegation.authority_for d ~issuer:"root-a" ~resource:"x" ~now:0.0);
  check bool_ "stranger lacks it" false (Delegation.authority_for d ~issuer:"b" ~resource:"x" ~now:0.0);
  let g1 =
    Delegation.grant d ~can_redelegate:true ~delegator:"root-a" ~delegate:"b" ~scope:"res/"
      ~now:0.0 ~expires:100.0 ()
  in
  check bool_ "grant ok" true (Result.is_ok g1);
  check bool_ "b authorised in scope" true
    (Delegation.authority_for d ~issuer:"b" ~resource:"res/1" ~now:10.0);
  check bool_ "b not outside scope" false
    (Delegation.authority_for d ~issuer:"b" ~resource:"other" ~now:10.0);
  check bool_ "b not after expiry" false
    (Delegation.authority_for d ~issuer:"b" ~resource:"res/1" ~now:100.5);
  (* Re-delegation b -> c. *)
  let g2 =
    Delegation.grant d ~delegator:"b" ~delegate:"c" ~scope:"res/sub/" ~now:10.0 ~expires:50.0 ()
  in
  check bool_ "redelegation ok" true (Result.is_ok g2);
  check bool_ "c authorised" true (Delegation.authority_for d ~issuer:"c" ~resource:"res/sub/x" ~now:20.0);
  (match Delegation.chain_for d ~issuer:"c" ~resource:"res/sub/x" ~now:20.0 with
  | Some chain -> check int_ "chain length" 2 (List.length chain)
  | None -> Alcotest.fail "expected a chain");
  (* c cannot re-delegate (grant was not redelegable). *)
  check bool_ "c cannot delegate" true
    (Result.is_error
       (Delegation.grant d ~delegator:"c" ~delegate:"e" ~scope:"res/sub/" ~now:20.0 ~expires:50.0 ()))

let test_delegation_revocation_cascades () =
  let d = Delegation.create ~roots:[ "root" ] in
  let g1 =
    match
      Delegation.grant d ~can_redelegate:true ~delegator:"root" ~delegate:"b" ~scope:"" ~now:0.0
        ~expires:100.0 ()
    with
    | Ok g -> g
    | Error e -> Alcotest.fail e
  in
  ignore (Delegation.grant d ~delegator:"b" ~delegate:"c" ~scope:"" ~now:0.0 ~expires:100.0 ());
  check bool_ "c authorised" true (Delegation.authority_for d ~issuer:"c" ~resource:"x" ~now:1.0);
  check bool_ "revoked" true (Delegation.revoke d ~grant_id:g1.Delegation.id);
  (* Revoking the first link severs the whole chain. *)
  check bool_ "b cut" false (Delegation.authority_for d ~issuer:"b" ~resource:"x" ~now:1.0);
  check bool_ "c cut too" false (Delegation.authority_for d ~issuer:"c" ~resource:"x" ~now:1.0);
  check bool_ "unknown revoke" false (Delegation.revoke d ~grant_id:"nope")

let test_delegation_filters_policies () =
  let d = Delegation.create ~roots:[ "domain-a" ] in
  ignore (Delegation.grant d ~delegator:"domain-a" ~delegate:"domain-b" ~scope:"shared/" ~now:0.0 ~expires:100.0 ());
  let policy issuer resource id =
    Policy.Inline_policy
      (Policy.make ~id ~issuer ~target:Target.(any |> resource_is "resource-id" resource) [ Rule.permit "r" ])
  in
  let set =
    Policy.make_set ~id:"s"
      [
        policy "domain-a" "anything" "own";
        policy "domain-b" "shared/doc" "delegated-ok";
        policy "domain-b" "private/doc" "overreach";
        policy "domain-c" "shared/doc" "stranger";
      ]
  in
  let filtered, dropped = Delegation.filter_authorized d ~now:1.0 set in
  check int_ "kept" 2 (List.length filtered.Policy.children);
  check (Alcotest.list string_) "dropped" [ "overreach"; "stranger" ] (List.sort compare dropped)

(* --- negotiation ----------------------------------------------------------------------------------- *)

let test_negotiation_immediate () =
  (* Freely released credential satisfies the target in one round. *)
  let client = { Negotiation.party_name = "c"; credentials = [ Negotiation.unprotected "id-card" ] } in
  let server = { Negotiation.party_name = "s"; credentials = [] } in
  let outcome = Negotiation.negotiate ~client ~server ~target:[ [ "id-card" ] ] () in
  check bool_ "success" true outcome.Negotiation.success;
  check int_ "one round" 1 outcome.Negotiation.rounds

let test_negotiation_iterative () =
  (* Client releases its clearance only after seeing the server's
     accreditation, which the server releases only after the client's
     membership card: three escalating exchanges. *)
  let client =
    {
      Negotiation.party_name = "c";
      credentials =
        [
          Negotiation.unprotected "membership";
          Negotiation.protected_by "clearance" [ "accreditation" ];
        ];
    }
  in
  let server =
    {
      Negotiation.party_name = "s";
      credentials = [ Negotiation.protected_by "accreditation" [ "membership" ] ];
    }
  in
  let outcome = Negotiation.negotiate ~client ~server ~target:[ [ "clearance" ] ] () in
  check bool_ "success" true outcome.Negotiation.success;
  check bool_ "multiple rounds" true (outcome.Negotiation.rounds >= 2);
  check (Alcotest.list string_) "client disclosed" [ "membership"; "clearance" ]
    outcome.Negotiation.disclosed_by_client;
  check (Alcotest.list string_) "server disclosed" [ "accreditation" ]
    outcome.Negotiation.disclosed_by_server

let test_negotiation_deadlock () =
  (* Mutual suspicion: each waits for the other. *)
  let client =
    { Negotiation.party_name = "c"; credentials = [ Negotiation.protected_by "a" [ "b" ] ] }
  in
  let server =
    { Negotiation.party_name = "s"; credentials = [ Negotiation.protected_by "b" [ "a" ] ] }
  in
  let outcome = Negotiation.negotiate ~client ~server ~target:[ [ "a" ] ] () in
  check bool_ "failure" false outcome.Negotiation.success;
  check bool_ "terminates quickly" true (outcome.Negotiation.rounds <= 2)

let test_negotiation_alternatives () =
  (* The target accepts either of two credentials. *)
  let client = { Negotiation.party_name = "c"; credentials = [ Negotiation.unprotected "visa" ] } in
  let server = { Negotiation.party_name = "s"; credentials = [] } in
  let outcome = Negotiation.negotiate ~client ~server ~target:[ [ "passport" ]; [ "visa" ] ] () in
  check bool_ "alternative satisfied" true outcome.Negotiation.success;
  check bool_ "unsatisfiable" false
    (Negotiation.negotiate ~client ~server ~target:[] ()).Negotiation.success

(* --- conflict analysis ------------------------------------------------------------------------------- *)

let permit_rule subject_role resource =
  Rule.permit
    ~target:Target.(any |> subject_is "role" subject_role |> resource_is "resource-id" resource)
    ("permit-" ^ subject_role ^ "-" ^ resource)

let deny_rule subject_role resource =
  Rule.deny
    ~target:Target.(any |> subject_is "role" subject_role |> resource_is "resource-id" resource)
    ("deny-" ^ subject_role ^ "-" ^ resource)

let test_conflict_detection () =
  let pa = Policy.make ~id:"pa" ~issuer:"domain-a" [ permit_rule "doctor" "charts" ] in
  let pb = Policy.make ~id:"pb" ~issuer:"domain-b" [ deny_rule "doctor" "charts" ] in
  let conflicts = Conflict.find_between pa pb in
  check int_ "one conflict" 1 (List.length conflicts);
  let c = List.hd conflicts in
  check bool_ "cross policy" true c.Conflict.cross_policy;
  check bool_ "cross authority" true c.Conflict.cross_authority;
  check bool_ "permit first (document order)" true c.Conflict.permit_first;
  check string_ "permit side" "pa" c.Conflict.permit.Conflict.policy_id;
  check bool_ "witness mentions the role" true
    (let w = c.Conflict.witness in
     let rec contains i = i + 6 <= String.length w && (String.sub w i 6 = "doctor" || contains (i + 1)) in
     contains 0)

let test_conflict_no_false_positive () =
  (* Different roles / different resources cannot both apply. *)
  let pa = Policy.make ~id:"pa" [ permit_rule "doctor" "charts" ] in
  let pb = Policy.make ~id:"pb" [ deny_rule "nurse" "charts" ] in
  check int_ "different roles" 0 (List.length (Conflict.find_between pa pb));
  let pc = Policy.make ~id:"pc" [ deny_rule "doctor" "labs" ] in
  check int_ "different resources" 0 (List.length (Conflict.find_between pa pc));
  (* Same effect never conflicts. *)
  let pd = Policy.make ~id:"pd" [ permit_rule "doctor" "charts" ] in
  check int_ "same effect" 0 (List.length (Conflict.find_between pa pd))

let test_conflict_wildcard_overlaps () =
  (* A deny-all rule conflicts with any permit. *)
  let pa = Policy.make ~id:"pa" [ permit_rule "doctor" "charts" ] in
  let pb = Policy.make ~id:"pb" [ Rule.deny "deny-all" ] in
  check int_ "wildcard overlap" 1 (List.length (Conflict.find_between pa pb))

let test_conflict_in_set () =
  let set =
    Policy.make_set ~id:"s"
      [
        Policy.Inline_policy (Policy.make ~id:"pa" ~issuer:"a" [ permit_rule "doctor" "charts" ]);
        Policy.Inline_set
          (Policy.make_set ~id:"inner"
             [ Policy.Inline_policy (Policy.make ~id:"pb" ~issuer:"b" [ deny_rule "doctor" "charts" ]) ]);
      ]
  in
  check int_ "found through nesting" 1 (List.length (Conflict.find_in_set set))

let test_conflict_resolutions () =
  let pa = Policy.make ~id:"pa" [ permit_rule "doctor" "charts" ] in
  let pb = Policy.make ~id:"pb" [ deny_rule "doctor" "charts" ] in
  let c = List.hd (Conflict.find_between pa pb) in
  check bool_ "deny-overrides" true (Conflict.resolution Combine.Deny_overrides c = Decision.Deny);
  check bool_ "permit-overrides" true (Conflict.resolution Combine.Permit_overrides c = Decision.Permit);
  check bool_ "first-applicable follows order" true
    (Conflict.resolution Combine.First_applicable c = Decision.Permit);
  check bool_ "only-one errors" true
    (match Conflict.resolution Combine.Only_one_applicable c with
    | Decision.Indeterminate _ -> true
    | _ -> false)

(* --- meta policies -------------------------------------------------------------------------------------- *)

let test_chinese_wall () =
  let history = Audit.create () in
  let wall =
    Meta_policy.Chinese_wall
      [
        {
          Meta_policy.class_name = "banks";
          datasets = [ ("bank-a", [ "a-books"; "a-forecast" ]); ("bank-b", [ "b-books" ]) ];
        };
      ]
  in
  let check_access resource =
    Meta_policy.check wall ~history ~subject:"analyst" ~resource
  in
  (* First touch is free. *)
  check bool_ "first access ok" true (check_access "a-books" = Ok ());
  Audit.record history (entry "analyst" "a-books" Decision.Permit);
  (* Same dataset fine; competitor dataset walled off. *)
  check bool_ "same dataset ok" true (check_access "a-forecast" = Ok ());
  check bool_ "competitor blocked" true (Result.is_error (check_access "b-books"));
  (* Unrelated resource unaffected. *)
  check bool_ "outside classes ok" true (check_access "weather" = Ok ());
  (* A different subject is unaffected. *)
  check bool_ "other subject ok" true
    (Meta_policy.check wall ~history ~subject:"other" ~resource:"b-books" = Ok ())

let test_dynamic_resource_sod () =
  let history = Audit.create () in
  let sod =
    Meta_policy.Dynamic_resource_sod
      { name = "no-both"; resources = [ "submit"; "approve" ]; limit = 2 }
  in
  check bool_ "first ok" true (Meta_policy.check sod ~history ~subject:"u" ~resource:"submit" = Ok ());
  Audit.record history (entry "u" "submit" Decision.Permit);
  check bool_ "second blocked" true
    (Result.is_error (Meta_policy.check sod ~history ~subject:"u" ~resource:"approve"));
  check bool_ "same resource again ok" true
    (Meta_policy.check sod ~history ~subject:"u" ~resource:"submit" = Ok ())

let test_meta_guard () =
  let history = Audit.create () in
  Audit.record history (entry "u" "submit" Decision.Permit);
  let sod =
    Meta_policy.Dynamic_resource_sod { name = "c"; resources = [ "submit"; "approve" ]; limit = 2 }
  in
  let guarded =
    Meta_policy.guard [ sod ] ~history ~subject:"u" ~resource:"approve" Decision.permit
  in
  check bool_ "permit downgraded" true (Decision.is_deny guarded);
  (* Deny passes through untouched. *)
  let denied = Meta_policy.guard [ sod ] ~history ~subject:"u" ~resource:"approve" Decision.deny in
  check bool_ "deny unchanged" true (Decision.is_deny denied);
  (* Unrelated resource untouched. *)
  let ok = Meta_policy.guard [ sod ] ~history ~subject:"u" ~resource:"other" Decision.permit in
  check bool_ "permit kept" true (Decision.is_permit ok)


(* --- remaining edges ------------------------------------------------------------ *)

let test_client_drop_capabilities () =
  let net, services = fresh () in
  let keys = Dacs_crypto.Rsa.generate (Dacs_crypto.Rng.create 13L) ~bits:512 in
  Net.add_node net "cas";
  let cas =
    Capability_service.create services ~node:"cas" ~issuer:"cas" ~keypair:keys
      ~root:(doctor_policy "r") ()
  in
  Net.add_node net "pep";
  ignore
    (Pep.create services ~node:"pep" ~domain:"d" ~resource:"r"
       (Pep.Push
          {
            trusted_issuer =
              (fun i -> if i = "cas" then Some (Capability_service.public_key cas) else None);
            check_revocation = None;
            local_pdp = None;
          }));
  Net.add_node net "client";
  let client = Client.create services ~node:"client" ~subject:(doctor_subject "alice") in
  let go () =
    Client.request_with_capability client ~capability_service:"cas" ~pep:"pep" ~resource:"r"
      ~action:"read" (fun _ -> ());
    Net.run net
  in
  go ();
  go ();
  check int_ "cached" 1 (Client.capability_requests_made client);
  Client.drop_capabilities client;
  go ();
  check int_ "re-issued after drop" 2 (Client.capability_requests_made client)

let test_capability_expiry_forces_reissue () =
  let net, services = fresh () in
  let keys = Dacs_crypto.Rsa.generate (Dacs_crypto.Rng.create 14L) ~bits:512 in
  Net.add_node net "cas";
  let cas =
    Capability_service.create services ~node:"cas" ~issuer:"cas" ~keypair:keys
      ~root:(doctor_policy "r") ~validity:5.0 ()
  in
  Net.add_node net "pep";
  ignore
    (Pep.create services ~node:"pep" ~domain:"d" ~resource:"r"
       (Pep.Push
          {
            trusted_issuer =
              (fun i -> if i = "cas" then Some (Capability_service.public_key cas) else None);
            check_revocation = None;
            local_pdp = None;
          }));
  Net.add_node net "client";
  let client = Client.create services ~node:"client" ~subject:(doctor_subject "alice") in
  let outcomes = ref [] in
  let request_at t =
    Dacs_net.Engine.schedule (Net.engine net) ~delay:t (fun () ->
        Client.request_with_capability client ~capability_service:"cas" ~pep:"pep" ~resource:"r"
          ~action:"read" (fun r -> outcomes := r :: !outcomes))
  in
  request_at 0.5;
  request_at 1.0;  (* reuse *)
  request_at 10.0; (* expired: must re-issue and still succeed *)
  Net.run net;
  check int_ "three grants" 3
    (List.length (List.filter (function Ok (Wire.Granted _) -> true | _ -> false) !outcomes));
  check int_ "two issuances" 2 (Client.capability_requests_made client)

let test_pep_mode_getters () =
  let net, services = fresh () in
  Net.add_node net "pep";
  Net.add_node net "pdp";
  let pull =
    Pep.create services ~node:"pep" ~domain:"d" ~resource:"r"
      (Pep.Pull { pdps = [ "pdp" ]; cache = None; call_timeout = 1.0 })
  in
  check (Alcotest.list string_) "pull list" [ "pdp" ] (Pep.pull_pdps pull);
  Pep.set_pull_pdps pull [ "a"; "b" ];
  check (Alcotest.list string_) "updated" [ "a"; "b" ] (Pep.pull_pdps pull);
  Net.add_node net "pep2";
  let embedded = Pdp_service.create services ~node:"pep2" ~name:"e" ~root:(doctor_policy "r") () in
  let agent = Pep.create services ~node:"pep2" ~domain:"d" ~resource:"r" (Pep.Agent embedded) in
  check (Alcotest.list string_) "agent has none" [] (Pep.pull_pdps agent);
  (* set_pull_pdps on a non-pull PEP is a no-op, not an error. *)
  Pep.set_pull_pdps agent [ "x" ];
  check (Alcotest.list string_) "still none" [] (Pep.pull_pdps agent)

let test_lifecycle_drafts_listing () =
  let net, services = fresh () in
  Net.add_node net "pap";
  let pap = Pap.create services ~node:"pap" ~name:"p" () in
  let lc =
    Lifecycle.create ~pap ~approvers:[] ~now:(fun () -> Net.now net) ()
  in
  let d1 = Lifecycle.submit lc ~author:"a" (doctor_policy "r1") in
  let d2 = Lifecycle.submit lc ~author:"b" (doctor_policy ~id:"p2" "r2") in
  check int_ "two drafts" 2 (List.length (Lifecycle.drafts lc));
  check bool_ "both draft state" true
    (List.for_all (fun (_, st) -> st = Lifecycle.Draft) (Lifecycle.drafts lc));
  check bool_ "unknown draft" true (Lifecycle.state_of lc ~draft:"nope" = None);
  check bool_ "review unknown" true (Result.is_error (Lifecycle.review lc ~draft:"nope" ()));
  ignore (d1, d2)

let () =
  Alcotest.run "dacs_core"
    [
      ( "wire",
        [
          Alcotest.test_case "access request" `Quick test_wire_access_request;
          Alcotest.test_case "authz roundtrip" `Quick test_wire_authz_roundtrip;
          Alcotest.test_case "attribute roundtrip" `Quick test_wire_attribute_roundtrip;
          Alcotest.test_case "policy roundtrip" `Quick test_wire_policy_roundtrip;
          Alcotest.test_case "capability roundtrip" `Quick test_wire_capability_roundtrip;
          Alcotest.test_case "outcomes" `Quick test_wire_outcomes;
        ] );
      ( "audit",
        [
          Alcotest.test_case "basics" `Quick test_audit_basics;
          Alcotest.test_case "merge ordering" `Quick test_audit_merge_ordering;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss/expiry" `Quick test_cache_hit_miss_expiry;
          Alcotest.test_case "eviction" `Quick test_cache_eviction;
          Alcotest.test_case "refresh does not evict live key" `Quick
            test_cache_refresh_not_evicted;
          Alcotest.test_case "stale lookup window" `Quick test_cache_stale_lookup;
          Alcotest.test_case "invalidation" `Quick test_cache_invalidation;
          Alcotest.test_case "key stability" `Quick test_cache_key_stability;
        ] );
      ( "pap",
        [
          Alcotest.test_case "query versions" `Quick test_pap_query_versions;
          Alcotest.test_case "remote update access control" `Quick test_pap_remote_update_access_control;
          Alcotest.test_case "syndication cascade" `Quick test_pap_syndication_cascade;
          Alcotest.test_case "update filter" `Quick test_pap_update_filter_blocks;
          Alcotest.test_case "lookup" `Quick test_pap_lookup;
        ] );
      ("pip", [ Alcotest.test_case "lookups" `Quick test_pip_lookup_service ]);
      ( "pdp-service",
        [
          Alcotest.test_case "basic decision" `Quick test_pdp_service_basic;
          Alcotest.test_case "PIP attribute fetch" `Quick test_pdp_service_pip_fetch;
          Alcotest.test_case "policy fetch and TTL" `Quick test_pdp_service_policy_fetch_and_ttl;
          Alcotest.test_case "no policy" `Quick test_pdp_service_no_policy;
        ] );
      ( "capability",
        [
          Alcotest.test_case "issue and verify" `Quick test_capability_issue_and_verify;
          Alcotest.test_case "revocation" `Quick test_capability_revocation;
          Alcotest.test_case "idp" `Quick test_idp;
        ] );
      ( "pep-pull",
        [
          Alcotest.test_case "grant and deny" `Quick test_pep_pull_grant_and_deny;
          Alcotest.test_case "decision cache" `Quick test_pep_pull_cache;
          Alcotest.test_case "failover" `Quick test_pep_pull_failover;
          Alcotest.test_case "all PDPs down fails closed" `Quick test_pep_pull_all_pdps_down;
          Alcotest.test_case "encrypt obligation" `Quick test_pep_obligations_encrypt;
          Alcotest.test_case "unknown obligation fails closed" `Quick test_pep_unknown_obligation_fails_closed;
        ] );
      ( "pep-push",
        [
          Alcotest.test_case "happy path with reuse" `Quick test_pep_push_happy_path;
          Alcotest.test_case "no assertion denied" `Quick test_pep_push_without_assertion;
          Alcotest.test_case "capability scope" `Quick test_pep_push_capability_scope;
          Alcotest.test_case "revocation" `Quick test_pep_push_revocation;
          Alcotest.test_case "local PDP final say" `Quick test_pep_push_local_final_say;
          Alcotest.test_case "agent mode" `Quick test_pep_agent_mode;
        ] );
      ( "edges",
        [
          Alcotest.test_case "drop capabilities" `Quick test_client_drop_capabilities;
          Alcotest.test_case "capability expiry re-issues" `Quick test_capability_expiry_forces_reissue;
          Alcotest.test_case "PEP mode getters" `Quick test_pep_mode_getters;
          Alcotest.test_case "lifecycle drafts listing" `Quick test_lifecycle_drafts_listing;
        ] );
      ( "delegation",
        [
          Alcotest.test_case "chains" `Quick test_delegation_chains;
          Alcotest.test_case "revocation cascades" `Quick test_delegation_revocation_cascades;
          Alcotest.test_case "policy filtering" `Quick test_delegation_filters_policies;
        ] );
      ( "negotiation",
        [
          Alcotest.test_case "immediate" `Quick test_negotiation_immediate;
          Alcotest.test_case "iterative" `Quick test_negotiation_iterative;
          Alcotest.test_case "deadlock" `Quick test_negotiation_deadlock;
          Alcotest.test_case "alternatives" `Quick test_negotiation_alternatives;
        ] );
      ( "conflict",
        [
          Alcotest.test_case "detection" `Quick test_conflict_detection;
          Alcotest.test_case "no false positives" `Quick test_conflict_no_false_positive;
          Alcotest.test_case "wildcard overlap" `Quick test_conflict_wildcard_overlaps;
          Alcotest.test_case "nested sets" `Quick test_conflict_in_set;
          Alcotest.test_case "resolutions" `Quick test_conflict_resolutions;
        ] );
      ( "meta-policy",
        [
          Alcotest.test_case "Chinese wall" `Quick test_chinese_wall;
          Alcotest.test_case "dynamic resource SoD" `Quick test_dynamic_resource_sod;
          Alcotest.test_case "guard" `Quick test_meta_guard;
        ] );
    ]
