let genesis = Sha256.digest "dacs:chain:genesis"

let extend ~prev payload = Sha256.digest (prev ^ payload)

let chain ~prev payloads =
  List.rev
    (fst
       (List.fold_left
          (fun (acc, prev) payload ->
            let d = extend ~prev payload in
            (d :: acc, d))
          ([], prev) payloads))

let verify ~prev segment =
  let rec go i prev = function
    | [] -> Ok prev
    | (payload, claimed) :: rest ->
      let d = extend ~prev payload in
      if String.equal d claimed then go (i + 1) d rest else Error i
  in
  go 0 prev segment

let short digest =
  let n = min 6 (String.length digest) in
  Encoding.hex_encode (String.sub digest 0 n)
