(** Policy Decision Point: the evaluation engine of Fig. 4.

    Wraps a root policy (set) with a PIP attribute resolver and a policy
    reference resolver, and counts evaluation traffic for the experiment
    harness. *)

type stats = {
  evaluations : int;
  permits : int;
  denies : int;
  not_applicables : int;
  indeterminates : int;
  pip_lookups : int;  (** resolver consultations for missing attributes *)
}

type t

val create :
  ?pip:(Context.category -> string -> Value.bag option) ->
  ?resolve_ref:Policy.ref_resolver ->
  Policy.child ->
  t
(** A PDP answering from a single root policy/policy set. *)

val root : t -> Policy.child
val set_root : t -> Policy.child -> unit
(** Swap the policy tree (e.g. after a PAP update). *)

val evaluate : t -> Context.t -> Decision.result

val stats : t -> stats
val reset_stats : t -> unit
