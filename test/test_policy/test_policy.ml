(* Tests for dacs_policy: values, contexts, expressions, targets, rules,
   combining algorithms, policies/sets, XML round-trips, validation, PDP. *)

open Dacs_policy

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let decision_testable =
  Alcotest.testable
    (fun fmt d -> Format.pp_print_string fmt (Decision.decision_to_string d))
    Decision.equal_decision

let check_decision msg expected (result : Decision.result) =
  check decision_testable msg expected result.Decision.decision

(* --- values ---------------------------------------------------------- *)

let test_value_types () =
  check string_ "int" "integer" (Value.type_name (Value.type_of (Value.Int 3)));
  check string_ "uri" "anyURI" (Value.type_name (Value.type_of (Value.Uri "urn:x")));
  check bool_ "same name roundtrip" true
    (List.for_all
       (fun dt -> Value.data_type_of_name (Value.type_name dt) = Some dt)
       [ Value.String_t; Value.Int_t; Value.Bool_t; Value.Double_t; Value.Time_t; Value.Uri_t ])

let test_value_equal () =
  check bool_ "equal" true (Value.equal (Value.Int 3) (Value.Int 3));
  check bool_ "not equal" false (Value.equal (Value.Int 3) (Value.Int 4));
  check bool_ "cross type" false (Value.equal (Value.Int 3) (Value.String "3"))

let test_value_compare () =
  check bool_ "lt" true (Value.compare_same_type (Value.Int 1) (Value.Int 2) = Ok (-1));
  check bool_ "bool unordered" true
    (Result.is_error (Value.compare_same_type (Value.Bool true) (Value.Bool false)));
  check bool_ "mismatch" true
    (Result.is_error (Value.compare_same_type (Value.Int 1) (Value.String "x")))

let test_value_parse () =
  check bool_ "int ok" true (Value.of_string Value.Int_t "42" = Ok (Value.Int 42));
  check bool_ "int bad" true (Result.is_error (Value.of_string Value.Int_t "x"));
  check bool_ "bool" true (Value.of_string Value.Bool_t "true" = Ok (Value.Bool true));
  check bool_ "bool bad" true (Result.is_error (Value.of_string Value.Bool_t "yes"));
  check bool_ "double" true (Value.of_string Value.Double_t "2.5" = Ok (Value.Double 2.5))

let test_value_bags () =
  let b1 = Value.[ String "a"; String "b"; String "a" ] in
  let b2 = Value.[ String "a"; String "a"; String "b" ] in
  check bool_ "multiset equal" true (Value.bag_equal b1 b2);
  check bool_ "multiset not equal" false (Value.bag_equal b1 Value.[ String "a"; String "b" ]);
  check bool_ "contains" true (Value.bag_contains b1 (Value.String "b"));
  check int_ "intersection" 3 (List.length (Value.bag_intersection b1 b2));
  check int_ "union dedups" 2 (List.length (Value.bag_union b1 b2));
  check bool_ "subset" true (Value.bag_subset Value.[ String "a" ] b1);
  check bool_ "not subset" false (Value.bag_subset Value.[ String "z" ] b1)

(* --- context ----------------------------------------------------------- *)

let ctx =
  Context.make
    ~subject:[ ("subject-id", Value.String "alice"); ("role", Value.String "doctor"); ("role", Value.String "researcher") ]
    ~resource:[ ("resource-id", Value.String "patient-records") ]
    ~action:[ ("action-id", Value.String "read") ]
    ~environment:[ ("time", Value.Time 120.0) ]
    ()

let test_context_bags () =
  check int_ "two roles" 2 (List.length (Context.bag ctx Context.Subject "role"));
  check int_ "missing empty" 0 (List.length (Context.bag ctx Context.Subject "nope"));
  check bool_ "subject id" true (Context.subject_id ctx = Some "alice");
  check bool_ "resource id" true (Context.resource_id ctx = Some "patient-records");
  check bool_ "action id" true (Context.action_id ctx = Some "read")

let test_context_merge () =
  let extra = Context.make ~subject:[ ("clearance", Value.Int 3) ] () in
  let merged = Context.merge ctx extra in
  check int_ "original kept" 2 (List.length (Context.bag merged Context.Subject "role"));
  check int_ "new added" 1 (List.length (Context.bag merged Context.Subject "clearance"))

let test_context_xml_roundtrip () =
  let xml = Context.to_xml ctx in
  match Context.of_xml xml with
  | Ok ctx' -> check bool_ "roundtrip" true (Context.equal ctx ctx')
  | Error e -> Alcotest.fail e

let test_context_xml_errors () =
  check bool_ "wrong root" true (Result.is_error (Context.of_xml (Dacs_xml.Xml.element "Nope")));
  let bad = Dacs_xml.Xml.of_string "<Request><Subject><Attribute AttributeId=\"a\" DataType=\"bogus\">x</Attribute></Subject></Request>" in
  check bool_ "bad data type" true (Result.is_error (Context.of_xml bad))

(* --- expressions ---------------------------------------------------------- *)

let eval_bool e =
  match Expr.eval_condition ctx e with
  | Ok b -> b
  | Error err -> Alcotest.failf "unexpected error: %s" (Expr.error_to_string err)

let eval_err e =
  match Expr.eval_condition ctx e with
  | Ok b -> Alcotest.failf "expected an error, got %b" b
  | Error err -> err

let test_expr_equality_functions () =
  check bool_ "string-equal true" true
    (eval_bool (Expr.Apply ("string-equal", [ Expr.str "a"; Expr.str "a" ])));
  check bool_ "string-equal false" false
    (eval_bool (Expr.Apply ("string-equal", [ Expr.str "a"; Expr.str "b" ])));
  check bool_ "integer-equal" true
    (eval_bool (Expr.Apply ("integer-equal", [ Expr.int 3; Expr.int 3 ])));
  check bool_ "type mismatch errors" true
    ((eval_err (Expr.Apply ("integer-equal", [ Expr.int 3; Expr.str "3" ]))).Expr.code
    = Expr.Processing)

let test_expr_comparisons () =
  check bool_ "gt" true (eval_bool (Expr.Apply ("integer-greater-than", [ Expr.int 5; Expr.int 3 ])));
  check bool_ "lt" false (eval_bool (Expr.Apply ("integer-less-than", [ Expr.int 5; Expr.int 3 ])));
  check bool_ "string lt" true
    (eval_bool (Expr.Apply ("string-less-than", [ Expr.str "abc"; Expr.str "abd" ])));
  check bool_ "time gte" true
    (eval_bool (Expr.Apply ("time-greater-than-or-equal", [ Expr.time 5.0; Expr.time 5.0 ])))

let test_expr_arithmetic () =
  let run e =
    match Expr.eval ctx e with
    | Ok [ v ] -> v
    | Ok _ -> Alcotest.fail "expected a single value"
    | Error err -> Alcotest.failf "unexpected error: %s" (Expr.error_to_string err)
  in
  check bool_ "add" true (run (Expr.Apply ("integer-add", [ Expr.int 1; Expr.int 2; Expr.int 3 ])) = Value.Int 6);
  check bool_ "sub" true (run (Expr.Apply ("integer-subtract", [ Expr.int 5; Expr.int 3 ])) = Value.Int 2);
  check bool_ "mul" true (run (Expr.Apply ("integer-multiply", [ Expr.int 4; Expr.int 5 ])) = Value.Int 20);
  check bool_ "div" true (run (Expr.Apply ("integer-divide", [ Expr.int 7; Expr.int 2 ])) = Value.Int 3);
  check bool_ "mod" true (run (Expr.Apply ("integer-mod", [ Expr.int 7; Expr.int 2 ])) = Value.Int 1);
  check bool_ "abs" true (run (Expr.Apply ("integer-abs", [ Expr.int (-4) ])) = Value.Int 4);
  check bool_ "to-double" true
    (run (Expr.Apply ("integer-to-double", [ Expr.int 2 ])) = Value.Double 2.0);
  check bool_ "div by zero" true
    ((eval_err (Expr.Apply ("integer-divide", [ Expr.int 1; Expr.int 0 ]))).Expr.code = Expr.Processing)

let test_expr_logic () =
  check bool_ "and true" true (eval_bool (Expr.Apply ("and", [ Expr.bool true; Expr.bool true ])));
  check bool_ "and false" false (eval_bool (Expr.Apply ("and", [ Expr.bool true; Expr.bool false ])));
  check bool_ "and empty" true (eval_bool (Expr.Apply ("and", [])));
  check bool_ "or empty" false (eval_bool (Expr.Apply ("or", [])));
  check bool_ "or" true (eval_bool (Expr.Apply ("or", [ Expr.bool false; Expr.bool true ])));
  check bool_ "not" false (eval_bool (Expr.Apply ("not", [ Expr.bool true ])));
  check bool_ "n-of 2 of 3" true
    (eval_bool (Expr.Apply ("n-of", [ Expr.int 2; Expr.bool true; Expr.bool false; Expr.bool true ])))

let test_expr_logic_short_circuit () =
  (* "and" stops at the first false: the erroring argument after it is
     never evaluated. *)
  let err_arg = Expr.Apply ("integer-divide", [ Expr.int 1; Expr.int 0 ]) in
  check bool_ "and short-circuits" false
    (eval_bool (Expr.Apply ("and", [ Expr.bool false; err_arg ])));
  check bool_ "or short-circuits" true
    (eval_bool (Expr.Apply ("or", [ Expr.bool true; err_arg ])))

let test_expr_strings () =
  check bool_ "concat" true
    (eval_bool
       (Expr.Apply
          ( "string-equal",
            [ Expr.Apply ("string-concatenate", [ Expr.str "foo"; Expr.str "bar" ]); Expr.str "foobar" ] )));
  check bool_ "starts-with" true
    (eval_bool (Expr.Apply ("string-starts-with", [ Expr.str "foo"; Expr.str "foobar" ])));
  check bool_ "ends-with" true
    (eval_bool (Expr.Apply ("string-ends-with", [ Expr.str "bar"; Expr.str "foobar" ])));
  check bool_ "contains" true
    (eval_bool (Expr.Apply ("string-contains", [ Expr.str "oob"; Expr.str "foobar" ])));
  check bool_ "lower-case" true
    (eval_bool
       (Expr.Apply
          ( "string-equal",
            [ Expr.Apply ("string-normalize-to-lower-case", [ Expr.str "AbC" ]); Expr.str "abc" ] )))

let test_expr_regexp () =
  check bool_ "match" true
    (eval_bool (Expr.Apply ("regexp-string-match", [ Expr.str "^doc.*"; Expr.str "doctor" ])));
  check bool_ "no match" false
    (eval_bool (Expr.Apply ("regexp-string-match", [ Expr.str "^nurse"; Expr.str "doctor" ])));
  check bool_ "bad regexp errors" true
    ((eval_err (Expr.Apply ("regexp-string-match", [ Expr.str "("; Expr.str "x" ]))).Expr.code
    = Expr.Processing)

let test_expr_time_in_range () =
  check bool_ "in range" true
    (eval_bool (Expr.Apply ("time-in-range", [ Expr.time 5.0; Expr.time 0.0; Expr.time 10.0 ])));
  check bool_ "out of range" false
    (eval_bool (Expr.Apply ("time-in-range", [ Expr.time 15.0; Expr.time 0.0; Expr.time 10.0 ])))

let test_expr_designators () =
  (* Multi-valued attribute needs a bag reduction. *)
  check bool_ "is-in over roles" true
    (eval_bool (Expr.Apply ("string-is-in", [ Expr.str "doctor"; Expr.subject_attr "role" ])));
  check bool_ "bag size" true
    (eval_bool
       (Expr.Apply
          ( "integer-equal",
            [ Expr.Apply ("string-bag-size", [ Expr.subject_attr "role" ]); Expr.int 2 ] )));
  (* one-and-only on a two-element bag errors *)
  check bool_ "one-and-only fails on bag" true
    ((eval_err
        (Expr.Apply
           ( "string-equal",
             [ Expr.Apply ("string-one-and-only", [ Expr.subject_attr "role" ]); Expr.str "doctor" ] )))
       .Expr.code
    = Expr.Processing)

let test_expr_missing_attribute () =
  (* Absent + must_be_present = Missing_attribute (→ Indeterminate). *)
  let e = Expr.Apply ("string-bag-size", [ Expr.subject_attr ~must_be_present:true "nope" ]) in
  check bool_ "missing" true ((eval_err (Expr.Apply ("integer-equal", [ e; Expr.int 0 ]))).Expr.code = Expr.Missing_attribute);
  (* Absent without must_be_present = empty bag. *)
  check bool_ "empty bag ok" true
    (eval_bool
       (Expr.Apply
          ( "integer-equal",
            [ Expr.Apply ("string-bag-size", [ Expr.subject_attr "nope" ]); Expr.int 0 ] )))

let test_expr_resolver () =
  (* A PIP resolver supplies what the context lacks. *)
  let resolve category id =
    if category = Context.Subject && id = "clearance" then Some [ Value.Int 4 ] else None
  in
  let e =
    Expr.Apply
      ( "integer-greater-than",
        [ Expr.Apply ("integer-one-and-only", [ Expr.subject_attr "clearance" ]); Expr.int 2 ] )
  in
  (match Expr.eval_condition ~resolve ctx e with
  | Ok b -> check bool_ "resolved" true b
  | Error err -> Alcotest.failf "unexpected: %s" (Expr.error_to_string err));
  (* Without the resolver the attribute is missing. *)
  match Expr.eval_condition ctx e with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error _ -> ()

let test_expr_set_functions () =
  let bag_a = Expr.Apply ("string-bag", [ Expr.str "a"; Expr.str "b" ]) in
  let bag_b = Expr.Apply ("string-bag", [ Expr.str "b"; Expr.str "c" ]) in
  check bool_ "at-least-one" true
    (eval_bool (Expr.Apply ("string-at-least-one-member-of", [ bag_a; bag_b ])));
  check bool_ "subset false" false (eval_bool (Expr.Apply ("string-subset", [ bag_a; bag_b ])));
  check bool_ "set-equals self" true (eval_bool (Expr.Apply ("string-set-equals", [ bag_a; bag_a ])));
  check bool_ "intersection size" true
    (eval_bool
       (Expr.Apply
          ( "integer-equal",
            [
              Expr.Apply ("string-bag-size", [ Expr.Apply ("string-intersection", [ bag_a; bag_b ]) ]);
              Expr.int 1;
            ] )))

let test_expr_higher_order () =
  check bool_ "any-of true" true
    (eval_bool
       (Expr.Apply ("any-of", [ Expr.Function_ref "string-equal"; Expr.str "doctor"; Expr.subject_attr "role" ])));
  check bool_ "any-of false" false
    (eval_bool
       (Expr.Apply ("any-of", [ Expr.Function_ref "string-equal"; Expr.str "nurse"; Expr.subject_attr "role" ])));
  check bool_ "all-of" false
    (eval_bool
       (Expr.Apply ("all-of", [ Expr.Function_ref "string-equal"; Expr.str "doctor"; Expr.subject_attr "role" ])));
  let bag_a = Expr.Apply ("string-bag", [ Expr.str "x"; Expr.str "doctor" ]) in
  check bool_ "any-of-any" true
    (eval_bool
       (Expr.Apply ("any-of-any", [ Expr.Function_ref "string-equal"; bag_a; Expr.subject_attr "role" ])));
  check bool_ "all-of-any" true
    (eval_bool
       (Expr.Apply
          ( "all-of-any",
            [
              Expr.Function_ref "string-equal";
              Expr.Apply ("string-bag", [ Expr.str "doctor"; Expr.str "researcher" ]);
              Expr.subject_attr "role";
            ] )));
  check bool_ "any-of-all" true
    (eval_bool
       (Expr.Apply
          ( "any-of-all",
            [
              Expr.Function_ref "string-less-than";
              Expr.Apply ("string-bag", [ Expr.str "aaa"; Expr.str "zzz" ]);
              Expr.Apply ("string-bag", [ Expr.str "bbb"; Expr.str "ccc" ]);
            ] )))

let test_expr_map () =
  let e =
    Expr.Apply
      ( "string-is-in",
        [
          Expr.str "DOCTOR";
          Expr.Apply
            ( "map",
              [
                Expr.Function_ref "string-normalize-to-lower-case";
                Expr.Apply ("string-bag", [ Expr.str "DOCTOR" ]);
              ] );
        ] )
  in
  (* map lower-cases, so "DOCTOR" is no longer in the bag *)
  check bool_ "map applied" false (eval_bool e)

let test_expr_function_ref_misuse () =
  check bool_ "bare function ref" true
    ((eval_err (Expr.Function_ref "string-equal")).Expr.code = Expr.Syntax);
  check bool_ "unknown function" true
    ((eval_err (Expr.Apply ("frobnicate", []))).Expr.code = Expr.Syntax);
  check bool_ "ho without ref" true
    ((eval_err (Expr.Apply ("any-of", [ Expr.str "x"; Expr.str "y"; Expr.str "z" ]))).Expr.code
    = Expr.Syntax)

let test_expr_one_of_helper () =
  check bool_ "one_of hit" true (eval_bool (Expr.one_of (Expr.subject_attr "role") [ "nurse"; "doctor" ]));
  check bool_ "one_of miss" false (eval_bool (Expr.one_of (Expr.subject_attr "role") [ "nurse"; "admin" ]))

let test_expr_validate () =
  check int_ "clean" 0 (List.length (Expr.validate (Expr.Apply ("and", [ Expr.bool true ]))));
  check bool_ "unknown fn" true (Expr.validate (Expr.Apply ("nope", [])) <> []);
  check bool_ "bad arity" true (Expr.validate (Expr.Apply ("not", [ Expr.bool true; Expr.bool true ])) <> []);
  check bool_ "misplaced ref" true (Expr.validate (Expr.Apply ("and", [ Expr.Function_ref "not" ])) <> []);
  check int_ "ref ok in ho position" 0
    (List.length
       (Expr.validate
          (Expr.Apply ("any-of", [ Expr.Function_ref "string-equal"; Expr.str "x"; Expr.subject_attr "role" ]))))

let test_expr_registry () =
  check bool_ "known" true (Expr.known_function "string-equal");
  check bool_ "unknown" false (Expr.known_function "frobnicate");
  check bool_ "many functions" true (List.length (Expr.function_names ()) > 80);
  check bool_ "arity fixed" true (Expr.function_arity "not" = Some (Some 1));
  check bool_ "arity variadic" true (Expr.function_arity "and" = Some None);
  check bool_ "arity unknown" true (Expr.function_arity "nope" = None)

(* --- targets ------------------------------------------------------------------ *)

let test_target_any () =
  check bool_ "any matches" true (Target.evaluate ctx Target.any = Target.Match)

let test_target_sections () =
  let t = Target.for_action "read" in
  check bool_ "action matches" true (Target.evaluate ctx t = Target.Match);
  let t = Target.for_action "write" in
  check bool_ "action mismatch" true (Target.evaluate ctx t = Target.No_match);
  let t = Target.for_subject_role "doctor" in
  check bool_ "role in bag matches" true (Target.evaluate ctx t = Target.Match)

let test_target_conjunction () =
  (* One clause requiring both role=doctor and role=admin: the bag has
     doctor but not admin, so the clause fails. *)
  let t =
    Target.make
      ~subjects:
        [ [ Target.match_string Context.Subject "role" "doctor"; Target.match_string Context.Subject "role" "admin" ] ]
      ()
  in
  check bool_ "conjunction fails" true (Target.evaluate ctx t = Target.No_match);
  (* Two separate clauses (disjunction): doctor matches. *)
  let t =
    Target.make
      ~subjects:
        [
          [ Target.match_string Context.Subject "role" "admin" ];
          [ Target.match_string Context.Subject "role" "doctor" ];
        ]
      ()
  in
  check bool_ "disjunction matches" true (Target.evaluate ctx t = Target.Match)

let test_target_multi_section () =
  let t = Target.(any |> subject_is "role" "doctor" |> action_is "action-id" "read") in
  check bool_ "both sections" true (Target.evaluate ctx t = Target.Match);
  let t = Target.(any |> subject_is "role" "doctor" |> action_is "action-id" "write") in
  check bool_ "one section fails" true (Target.evaluate ctx t = Target.No_match)

let test_target_unknown_function () =
  let t =
    Target.make
      ~subjects:[ [ { Target.fn = "bogus"; value = Value.String "x"; category = Context.Subject; attribute_id = "role" } ] ]
      ()
  in
  match Target.evaluate ctx t with
  | Target.Indeterminate_match _ -> ()
  | _ -> Alcotest.fail "expected indeterminate"

let test_target_resolver () =
  let resolve category id =
    if category = Context.Subject && id = "org" then Some [ Value.String "hospital-a" ] else None
  in
  let t = Target.(any |> subject_is "org" "hospital-a") in
  check bool_ "without resolver no match" true (Target.evaluate ctx t = Target.No_match);
  check bool_ "with resolver match" true (Target.evaluate ~resolve ctx t = Target.Match)

(* --- rules ----------------------------------------------------------------------- *)

let test_rule_plain () =
  let r = Rule.permit "r1" in
  check_decision "permit" Decision.Permit (Rule.evaluate ctx r);
  let r = Rule.deny "r2" in
  check_decision "deny" Decision.Deny (Rule.evaluate ctx r)

let test_rule_target () =
  let r = Rule.permit ~target:(Target.for_action "write") "r" in
  check_decision "target mismatch" Decision.Not_applicable (Rule.evaluate ctx r)

let test_rule_condition () =
  let cond = Expr.Apply ("string-is-in", [ Expr.str "doctor"; Expr.subject_attr "role" ]) in
  let r = Rule.permit ~condition:cond "r" in
  check_decision "condition true" Decision.Permit (Rule.evaluate ctx r);
  let cond = Expr.Apply ("string-is-in", [ Expr.str "nurse"; Expr.subject_attr "role" ]) in
  let r = Rule.permit ~condition:cond "r" in
  check_decision "condition false" Decision.Not_applicable (Rule.evaluate ctx r)

let test_rule_condition_error () =
  let cond = Expr.Apply ("integer-divide", [ Expr.int 1; Expr.int 0 ]) in
  let r = Rule.permit ~condition:(Expr.Apply ("integer-equal", [ cond; Expr.int 1 ])) "r" in
  check_decision "condition error" (Decision.Indeterminate "") (Rule.evaluate ctx r)

(* --- combining algorithms ----------------------------------------------------------- *)

let const_child label result =
  {
    Combine.label;
    applicability = (fun () -> Target.Match);
    evaluate = (fun () -> result);
  }

let na_child label =
  {
    Combine.label;
    applicability = (fun () -> Target.No_match);
    evaluate = (fun () -> Decision.not_applicable);
  }

let test_deny_overrides () =
  let c = Combine.combine Combine.Deny_overrides in
  check_decision "deny wins" Decision.Deny
    (c [ const_child "a" Decision.permit; const_child "b" Decision.deny ]);
  check_decision "permit when no deny" Decision.Permit
    (c [ const_child "a" Decision.permit; na_child "b" ]);
  check_decision "indeterminate is potential deny" (Decision.Indeterminate "")
    (c [ const_child "a" (Decision.indeterminate "boom"); const_child "b" Decision.permit ]);
  check_decision "all NA" Decision.Not_applicable (c [ na_child "a"; na_child "b" ]);
  check_decision "empty" Decision.Not_applicable (c [])

let test_deny_overrides_short_circuit () =
  let evaluated = ref [] in
  let child label result =
    {
      Combine.label;
      applicability = (fun () -> Target.Match);
      evaluate =
        (fun () ->
          evaluated := label :: !evaluated;
          result);
    }
  in
  let r =
    Combine.combine Combine.Deny_overrides
      [ child "a" Decision.deny; child "b" Decision.permit ]
  in
  check_decision "deny" Decision.Deny r;
  check (Alcotest.list string_) "b never evaluated" [ "a" ] (List.rev !evaluated)

let test_permit_overrides () =
  let c = Combine.combine Combine.Permit_overrides in
  check_decision "permit wins" Decision.Permit
    (c [ const_child "a" Decision.deny; const_child "b" Decision.permit ]);
  check_decision "deny when no permit" Decision.Deny
    (c [ const_child "a" Decision.deny; na_child "b" ]);
  check_decision "indeterminate beats deny" (Decision.Indeterminate "")
    (c [ const_child "a" (Decision.indeterminate "x"); const_child "b" Decision.deny ]);
  check_decision "permit beats indeterminate" Decision.Permit
    (c [ const_child "a" (Decision.indeterminate "x"); const_child "b" Decision.permit ])

let test_first_applicable () =
  let c = Combine.combine Combine.First_applicable in
  check_decision "first decides" Decision.Deny
    (c [ na_child "a"; const_child "b" Decision.deny; const_child "c" Decision.permit ]);
  check_decision "indeterminate stops" (Decision.Indeterminate "")
    (c [ const_child "a" (Decision.indeterminate "x"); const_child "b" Decision.permit ]);
  check_decision "all NA" Decision.Not_applicable (c [ na_child "a" ])

let test_only_one_applicable () =
  let c = Combine.combine Combine.Only_one_applicable in
  check_decision "single applicable" Decision.Permit
    (c [ na_child "a"; const_child "b" Decision.permit ]);
  check_decision "two applicable is an error" (Decision.Indeterminate "")
    (c [ const_child "a" Decision.permit; const_child "b" Decision.permit ]);
  check_decision "none applicable" Decision.Not_applicable (c [ na_child "a"; na_child "b" ]);
  let bad_target =
    {
      Combine.label = "x";
      applicability = (fun () -> Target.Indeterminate_match "boom");
      evaluate = (fun () -> Decision.permit);
    }
  in
  check_decision "indeterminate applicability" (Decision.Indeterminate "") (c [ bad_target ])

let test_ordered_variants_match () =
  let children = [ const_child "a" Decision.permit; const_child "b" Decision.deny ] in
  check bool_ "ordered deny = deny" true
    (Decision.equal_decision
       (Combine.combine Combine.Ordered_deny_overrides children).Decision.decision
       (Combine.combine Combine.Deny_overrides children).Decision.decision);
  check bool_ "names roundtrip" true
    (List.for_all (fun a -> Combine.of_name (Combine.name a) = Some a) Combine.all)

(* --- policies ------------------------------------------------------------------------ *)

let doctor_read_policy =
  Policy.make ~id:"doctor-read" ~rule_combining:Combine.First_applicable
    [
      Rule.permit
        ~target:Target.(any |> subject_is "role" "doctor" |> action_is "action-id" "read")
        "permit-doctor-read";
      Rule.deny "default-deny";
    ]

let test_policy_eval () =
  check_decision "doctor read permitted" Decision.Permit (Policy.evaluate ctx doctor_read_policy);
  let nurse_ctx =
    Context.make
      ~subject:[ ("subject-id", Value.String "bob"); ("role", Value.String "nurse") ]
      ~resource:[ ("resource-id", Value.String "patient-records") ]
      ~action:[ ("action-id", Value.String "read") ]
      ()
  in
  check_decision "nurse denied" Decision.Deny (Policy.evaluate nurse_ctx doctor_read_policy)

let test_policy_target_gates_rules () =
  let p =
    Policy.make ~id:"p" ~target:(Target.for_action "write") [ Rule.permit "r" ]
  in
  check_decision "policy NA" Decision.Not_applicable (Policy.evaluate ctx p)

let test_policy_obligations () =
  let p =
    Policy.make ~id:"p"
      ~obligations:[ Obligation.audit; Obligation.make ~fulfill_on:Obligation.Deny "urn:deny-ob" ]
      [ Rule.permit "r" ]
  in
  let r = Policy.evaluate ctx p in
  check_decision "permit" Decision.Permit r;
  check int_ "only permit obligations" 1 (List.length r.Decision.obligations);
  check string_ "audit" "urn:dacs:obligation:audit" (List.hd r.Decision.obligations).Obligation.id

let test_policy_set_nesting () =
  let inner_deny = Policy.make ~id:"deny-all" [ Rule.deny "d" ] in
  let set =
    Policy.make_set ~id:"root" ~policy_combining:Combine.Deny_overrides
      [
        Policy.Inline_policy doctor_read_policy;
        Policy.Inline_set
          (Policy.make_set ~id:"inner" ~target:(Target.for_action "write")
             [ Policy.Inline_policy inner_deny ]);
      ]
  in
  (* The inner set's target is write, so for a read request only
     doctor-read applies. *)
  check_decision "nested" Decision.Permit (Policy.evaluate_set ctx set)

let test_policy_refs () =
  let lookup = function
    | "doctor-read" -> Some (Policy.Inline_policy doctor_read_policy)
    | "looping" -> Some (Policy.Policy_ref "looping")
    | _ -> None
  in
  let set = Policy.make_set ~id:"root" [ Policy.Policy_ref "doctor-read" ] in
  check_decision "resolved ref" Decision.Permit
    (Policy.evaluate_set ~resolve_ref:lookup ctx set);
  check_decision "unresolved ref" (Decision.Indeterminate "")
    (Policy.evaluate_set ctx set);
  let missing = Policy.make_set ~id:"root" [ Policy.Policy_ref "nope" ] in
  check_decision "missing ref" (Decision.Indeterminate "")
    (Policy.evaluate_set ~resolve_ref:lookup ctx missing);
  let loop = Policy.make_set ~id:"root" [ Policy.Policy_ref "looping" ] in
  check_decision "ref-to-ref rejected" (Decision.Indeterminate "")
    (Policy.evaluate_set ~resolve_ref:lookup ctx loop)

let test_policy_rule_counts () =
  check int_ "rule count" 2 (Policy.rule_count doctor_read_policy);
  let set =
    Policy.make_set ~id:"s"
      [
        Policy.Inline_policy doctor_read_policy;
        Policy.Inline_set (Policy.make_set ~id:"s2" [ Policy.Inline_policy doctor_read_policy ]);
      ]
  in
  check int_ "recursive count" 4 (Policy.set_rule_count set)

(* --- xml round-trips ------------------------------------------------------------------- *)

let complex_policy =
  Policy.make ~id:"complex" ~version:3 ~description:"a complex policy" ~issuer:"domain-a"
    ~target:Target.(any |> resource_is "resource-id" "patient-records")
    ~rule_combining:Combine.Permit_overrides
    ~obligations:[ Obligation.encrypt_response ~strength:128 ]
    [
      Rule.permit ~description:"doctors read"
        ~target:Target.(any |> subject_is "role" "doctor")
        ~condition:
          (Expr.Apply
             ( "time-in-range",
               [
                 Expr.Apply ("time-one-and-only", [ Expr.environment_attr ~must_be_present:true "time" ]);
                 Expr.time 0.0;
                 Expr.time 86400.0;
               ] ))
        "r1";
      Rule.deny "r2";
    ]

let test_xml_policy_roundtrip () =
  let xml = Xacml_xml.policy_to_xml complex_policy in
  match Xacml_xml.policy_of_xml xml with
  | Error e -> Alcotest.fail e
  | Ok p ->
    check string_ "id" "complex" p.Policy.id;
    check int_ "version" 3 p.Policy.version;
    check string_ "issuer" "domain-a" p.Policy.issuer;
    check bool_ "combining" true (p.Policy.rule_combining = Combine.Permit_overrides);
    check int_ "rules" 2 (List.length p.Policy.rules);
    check int_ "obligations" 1 (List.length p.Policy.obligations);
    (* Semantics preserved: same decision on the same request. *)
    check bool_ "same decision" true
      (Decision.equal_decision
         (Policy.evaluate ctx complex_policy).Decision.decision
         (Policy.evaluate ctx p).Decision.decision)

let test_xml_set_roundtrip () =
  let set =
    Policy.make_set ~id:"root" ~description:"top" ~policy_combining:Combine.Only_one_applicable
      [
        Policy.Inline_policy complex_policy;
        Policy.Policy_ref "external-policy";
        Policy.Inline_set (Policy.make_set ~id:"nested" [ Policy.Inline_policy doctor_read_policy ]);
      ]
  in
  let s = Xacml_xml.child_to_string (Policy.Inline_set set) in
  match Xacml_xml.child_of_string s with
  | Error e -> Alcotest.fail e
  | Ok (Policy.Inline_set set') ->
    check string_ "id" "root" set'.Policy.set_id;
    check int_ "children" 3 (List.length set'.Policy.children);
    check bool_ "ref preserved" true
      (List.exists (function Policy.Policy_ref "external-policy" -> true | _ -> false) set'.Policy.children)
  | Ok _ -> Alcotest.fail "expected a set"

let test_xml_expr_roundtrip () =
  let e =
    Expr.Apply
      ( "any-of",
        [ Expr.Function_ref "string-equal"; Expr.str "doctor"; Expr.subject_attr ~must_be_present:true "role" ] )
  in
  match Xacml_xml.expr_of_xml (Xacml_xml.expr_to_xml e) with
  | Error err -> Alcotest.fail err
  | Ok e' -> check bool_ "same" true (e = e')

let test_xml_result_roundtrip () =
  let r =
    Decision.with_obligations Decision.permit [ Obligation.encrypt_response ~strength:256 ]
  in
  (match Xacml_xml.result_of_string (Xacml_xml.result_to_string r) with
  | Error e -> Alcotest.fail e
  | Ok r' ->
    check_decision "decision" Decision.Permit r';
    check int_ "obligations" 1 (List.length r'.Decision.obligations));
  (* Indeterminate keeps its status message. *)
  let r = Decision.indeterminate "something broke" in
  match Xacml_xml.result_of_string (Xacml_xml.result_to_string r) with
  | Ok { Decision.decision = Decision.Indeterminate m; _ } ->
    check string_ "status" "something broke" m
  | _ -> Alcotest.fail "expected indeterminate"

let test_xml_errors () =
  check bool_ "garbage" true (Result.is_error (Xacml_xml.child_of_string "not xml"));
  check bool_ "wrong element" true (Result.is_error (Xacml_xml.child_of_string "<Wat/>"));
  check bool_ "bad combining" true
    (Result.is_error (Xacml_xml.child_of_string "<Policy PolicyId=\"p\" RuleCombiningAlgId=\"bogus\"/>"));
  check bool_ "missing id" true
    (Result.is_error (Xacml_xml.child_of_string "<Policy RuleCombiningAlgId=\"deny-overrides\"/>"))

(* --- validation -------------------------------------------------------------------------- *)

let test_validate_ok () =
  check int_ "complex policy clean" 0 (List.length (Validate.check_policy complex_policy));
  check bool_ "is_valid" true (Validate.is_valid (Policy.Inline_policy complex_policy))

let test_validate_catches () =
  let dup = Policy.make ~id:"p" [ Rule.permit "r"; Rule.deny "r" ] in
  check bool_ "duplicate rule ids" true (Validate.check_policy dup <> []);
  let empty = Policy.make ~id:"p" [] in
  check bool_ "no rules" true (Validate.check_policy empty <> []);
  let bad_combining = Policy.make ~id:"p" ~rule_combining:Combine.Only_one_applicable [ Rule.permit "r" ] in
  check bool_ "bad combining" true (Validate.check_policy bad_combining <> []);
  let bad_expr = Policy.make ~id:"p" [ Rule.permit ~condition:(Expr.Apply ("nope", [])) "r" ] in
  check bool_ "unknown function" true (Validate.check_policy bad_expr <> []);
  let bad_match =
    Policy.make ~id:"p"
      ~target:
        (Target.make
           ~subjects:[ [ { Target.fn = "nope"; value = Value.String "x"; category = Context.Subject; attribute_id = "a" } ] ]
           ())
      [ Rule.permit "r" ]
  in
  check bool_ "unknown match fn" true (Validate.check_policy bad_match <> []);
  let dup_set =
    Policy.make_set ~id:"s" [ Policy.Inline_policy dup; Policy.Inline_policy dup ]
  in
  check bool_ "set reports recursively and dups" true (List.length (Validate.check_set dup_set) >= 3)


let test_shadowed_rules () =
  (* default-deny style: permit rule, then wildcard deny, then a dead rule. *)
  let p =
    Policy.make ~id:"p" ~rule_combining:Combine.First_applicable
      [
        Rule.permit ~target:(Target.for_action "read") "read-ok";
        Rule.deny "catch-all";
        Rule.permit ~target:(Target.for_action "write") "never-reached";
        Rule.deny ~target:(Target.for_action "read") "also-dead";
      ]
  in
  check (Alcotest.list (Alcotest.pair string_ string_)) "dead rules found"
    [ ("catch-all", "never-reached"); ("read-ok", "also-dead") ]
    (Validate.shadowed_rules p);
  (* Exact-duplicate targets shadow too. *)
  let dup =
    Policy.make ~id:"p" ~rule_combining:Combine.First_applicable
      [
        Rule.permit ~target:(Target.for_action "read") "first";
        Rule.deny ~target:(Target.for_action "read") "second";
      ]
  in
  check int_ "duplicate target shadowed" 1 (List.length (Validate.shadowed_rules dup));
  (* A condition keeps later rules reachable. *)
  let guarded =
    Policy.make ~id:"p" ~rule_combining:Combine.First_applicable
      [
        Rule.permit ~condition:(Expr.bool true) "guarded";
        Rule.deny "reachable";
      ]
  in
  check int_ "condition blocks the lint" 0 (List.length (Validate.shadowed_rules guarded));
  (* Other combining algorithms are exempt. *)
  let deny_overrides = { p with Policy.rule_combining = Combine.Deny_overrides } in
  check int_ "only first-applicable" 0 (List.length (Validate.shadowed_rules deny_overrides))

(* --- pdp ------------------------------------------------------------------------------------ *)

let test_pdp_stats () =
  let pdp = Pdp.create (Policy.Inline_policy doctor_read_policy) in
  ignore (Pdp.evaluate pdp ctx);
  let nurse_ctx =
    Context.make
      ~subject:[ ("role", Value.String "nurse") ]
      ~action:[ ("action-id", Value.String "read") ]
      ()
  in
  ignore (Pdp.evaluate pdp nurse_ctx);
  let s = Pdp.stats pdp in
  check int_ "evaluations" 2 s.Pdp.evaluations;
  check int_ "permits" 1 s.Pdp.permits;
  check int_ "denies" 1 s.Pdp.denies;
  Pdp.reset_stats pdp;
  check int_ "reset" 0 (Pdp.stats pdp).Pdp.evaluations

let test_pdp_pip_counted () =
  let policy =
    Policy.make ~id:"p" ~rule_combining:Combine.First_applicable
      [
        Rule.permit
          ~condition:(Expr.Apply ("string-is-in", [ Expr.str "gold"; Expr.subject_attr "tier" ]))
          "r";
        Rule.deny "d";
      ]
  in
  let pip category id =
    if category = Context.Subject && id = "tier" then Some [ Value.String "gold" ] else None
  in
  let pdp = Pdp.create ~pip (Policy.Inline_policy policy) in
  let r = Pdp.evaluate pdp (Context.make ~subject:[ ("subject-id", Value.String "u") ] ()) in
  check_decision "pip supplied permit" Decision.Permit r;
  check bool_ "pip lookups counted" true ((Pdp.stats pdp).Pdp.pip_lookups > 0)

let test_pdp_set_root () =
  let pdp = Pdp.create (Policy.Inline_policy doctor_read_policy) in
  check_decision "initial" Decision.Permit (Pdp.evaluate pdp ctx);
  Pdp.set_root pdp (Policy.Inline_policy (Policy.make ~id:"deny" [ Rule.deny "d" ]));
  check_decision "after swap" Decision.Deny (Pdp.evaluate pdp ctx)


module Astring_find = struct
  let find needle haystack =
    let nh = String.length haystack and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
    nn = 0 || go 0
end

(* --- variables ------------------------------------------------------------------------------ *)

let clearance_policy =
  (* A variable used by two rules: subject clearance as an integer. *)
  Policy.make ~id:"vars" ~rule_combining:Combine.First_applicable
    ~variables:
      [
        ( "clearance",
          Expr.Apply ("integer-one-and-only", [ Expr.subject_attr ~must_be_present:true "clearance" ]) );
        ("is-senior", Expr.Apply ("integer-greater-than", [ Expr.Variable_ref "clearance"; Expr.int 5 ]));
      ]
    [
      Rule.permit
        ~condition:(Expr.Variable_ref "is-senior")
        "senior-full-access";
      Rule.permit
        ~condition:(Expr.Apply ("integer-greater-than", [ Expr.Variable_ref "clearance"; Expr.int 2 ]))
        ~target:(Target.for_action "read")
        "cleared-read";
      Rule.deny "default-deny";
    ]

let ctx_with_clearance n action =
  Context.make
    ~subject:[ ("subject-id", Value.String "u"); ("clearance", Value.Int n) ]
    ~action:[ ("action-id", Value.String action) ]
    ()

let test_variables_evaluation () =
  check_decision "senior writes" Decision.Permit
    (Policy.evaluate (ctx_with_clearance 7 "write") clearance_policy);
  check_decision "mid-clearance reads" Decision.Permit
    (Policy.evaluate (ctx_with_clearance 4 "read") clearance_policy);
  check_decision "mid-clearance cannot write" Decision.Deny
    (Policy.evaluate (ctx_with_clearance 4 "write") clearance_policy);
  check_decision "low clearance denied" Decision.Deny
    (Policy.evaluate (ctx_with_clearance 1 "read") clearance_policy)

let test_variables_undefined_is_indeterminate () =
  let p =
    Policy.make ~id:"p" ~rule_combining:Combine.First_applicable
      [ Rule.permit ~condition:(Expr.Variable_ref "ghost") "r" ]
  in
  check_decision "undefined variable" (Decision.Indeterminate "") (Policy.evaluate ctx p)

let test_variables_xml_roundtrip () =
  match Xacml_xml.policy_of_xml (Xacml_xml.policy_to_xml clearance_policy) with
  | Error e -> Alcotest.fail e
  | Ok p ->
    check int_ "definitions preserved" 2 (List.length p.Policy.variables);
    check bool_ "same decisions" true
      (List.for_all
         (fun (n, action) ->
           Decision.equal_decision
             (Policy.evaluate (ctx_with_clearance n action) clearance_policy).Decision.decision
             (Policy.evaluate (ctx_with_clearance n action) p).Decision.decision)
         [ (7, "write"); (4, "read"); (4, "write"); (1, "read") ])

let test_variables_validation () =
  check int_ "clearance policy clean" 0 (List.length (Validate.check_policy clearance_policy));
  let cyclic =
    Policy.make ~id:"p"
      ~variables:[ ("a", Expr.Variable_ref "b"); ("b", Expr.Variable_ref "a") ]
      [ Rule.permit "r" ]
  in
  check bool_ "cycle reported" true
    (List.exists
       (fun pr -> Astring_find.find "cycle" (Validate.problem_to_string pr))
       (Validate.check_policy cyclic));
  let undefined =
    Policy.make ~id:"p" [ Rule.permit ~condition:(Expr.Variable_ref "nope") "r" ]
  in
  check bool_ "undefined reported" true
    (List.exists
       (fun pr -> Astring_find.find "undefined" (Validate.problem_to_string pr))
       (Validate.check_policy undefined));
  let dup =
    Policy.make ~id:"p"
      ~variables:[ ("a", Expr.bool true); ("a", Expr.bool false) ]
      [ Rule.permit "r" ]
  in
  check bool_ "duplicate reported" true
    (List.exists
       (fun pr -> Astring_find.find "duplicate variable" (Validate.problem_to_string pr))
       (Validate.check_policy dup));
  (* A cyclic policy still evaluates (to Indeterminate), never loops. *)
  check_decision "cycle evaluates safely" (Decision.Indeterminate "")
    (Policy.evaluate ctx
       (Policy.make ~id:"p" ~rule_combining:Combine.First_applicable
          ~variables:[ ("a", Expr.Variable_ref "a") ]
          [ Rule.permit ~condition:(Expr.Variable_ref "a") "r" ]))

(* --- target index ------------------------------------------------------------------------------- *)

let resource_rule effect i =
  let mk = match effect with Rule.Permit -> Rule.permit | Rule.Deny -> Rule.deny in
  mk
    ~target:Target.(any |> resource_is "resource-id" (Printf.sprintf "res%d" i))
    (Printf.sprintf "rule-%d" i)

let indexed_policy =
  Policy.make ~id:"big" ~rule_combining:Combine.First_applicable
    (List.init 100 (fun i -> resource_rule (if i mod 3 = 0 then Rule.Deny else Rule.Permit) i)
    @ [ Rule.deny "fallback-deny" ])

let resource_ctx i =
  Context.make ~subject:[ ("subject-id", Value.String "alice"); ("role", Value.String "doctor") ]
    ~resource:[ ("resource-id", Value.String (Printf.sprintf "res%d" i)) ]
    ~action:[ ("action-id", Value.String "read") ]
    ()

let test_index_equivalence () =
  let idx = Index.build indexed_policy in
  check int_ "rule count" 101 (Index.rule_count idx);
  check int_ "buckets" 100 (Index.bucket_count idx);
  List.iter
    (fun i ->
      check decision_testable
        (Printf.sprintf "res%d same decision" i)
        (Policy.evaluate (resource_ctx i) indexed_policy).Decision.decision
        (Index.evaluate (resource_ctx i) idx).Decision.decision)
    [ 0; 1; 2; 50; 99; 1000 (* unknown resource -> fallback deny *) ]

let test_index_selectivity () =
  let idx = Index.build indexed_policy in
  (* A request for one resource considers its bucket plus the fallback. *)
  check int_ "two candidates" 2 (Index.candidate_count idx (resource_ctx 5));
  (* No resource-id: the pre-filter cannot prune. *)
  check int_ "no pruning without resource-id" 101
    (Index.candidate_count idx (Context.make ~subject:[ ("subject-id", Value.String "a") ] ()))

let test_index_respects_document_order () =
  (* Two rules for the same resource with opposite effects: first-applicable
     must pick the first, in both evaluation paths. *)
  let p =
    Policy.make ~id:"p" ~rule_combining:Combine.First_applicable
      [
        Rule.deny ~target:Target.(any |> resource_is "resource-id" "x") "deny-first";
        Rule.permit ~target:Target.(any |> resource_is "resource-id" "x") "permit-second";
      ]
  in
  let ctx =
    Context.make ~resource:[ ("resource-id", Value.String "x") ] ()
  in
  let idx = Index.build p in
  check_decision "linear" Decision.Deny (Policy.evaluate ctx p);
  check_decision "indexed" Decision.Deny (Index.evaluate ctx idx)

let prop_index_equivalent =
  (* Random policies over a small resource pool: indexed and linear
     evaluation always agree. *)
  let gen =
    QCheck.Gen.(
      let rule =
        map2
          (fun effect i ->
            let mk = if effect then Rule.permit else Rule.deny in
            mk
              ~target:Target.(any |> resource_is "resource-id" (Printf.sprintf "res%d" i))
              (Printf.sprintf "r-%d-%b" i effect))
          bool (0 -- 5)
      in
      let unconstrained = map (fun b -> if b then Rule.permit "free-permit" else Rule.deny "free-deny") bool in
      list_size (1 -- 12) (frequency [ (4, rule); (1, unconstrained) ]) >>= fun rules ->
      oneofl Combine.[ Deny_overrides; Permit_overrides; First_applicable ] >>= fun alg ->
      (* De-duplicate rule ids (validation aside, duplicate ids are fine for evaluation). *)
      let rules = List.mapi (fun i r -> { r with Rule.id = Printf.sprintf "%s-%d" r.Rule.id i }) rules in
      return (Policy.make ~id:"gen" ~rule_combining:alg rules))
  in
  QCheck.Test.make ~name:"indexed evaluation = linear evaluation" ~count:300
    (QCheck.make ~print:(fun p -> Xacml_xml.child_to_string (Policy.Inline_policy p)) gen)
    (fun p ->
      let idx = Index.build p in
      List.for_all
        (fun i ->
          Decision.equal_decision
            (Policy.evaluate (resource_ctx i) p).Decision.decision
            (Index.evaluate (resource_ctx i) idx).Decision.decision)
        [ 0; 1; 2; 3; 4; 5; 99 ])


(* --- explanation ------------------------------------------------------------------------------- *)

let test_explain_structure () =
  let tree, result = Explain.explain ctx (Policy.Inline_policy doctor_read_policy) in
  check bool_ "same decision" true
    (Decision.equal_decision result.Decision.decision
       (Policy.evaluate ctx doctor_read_policy).Decision.decision);
  check string_ "policy label" "policy doctor-read" tree.Explain.label;
  check int_ "both rules explained" 2 (List.length tree.Explain.children);
  let rendered = Explain.to_string tree in
  check bool_ "mentions rule" true (Astring_find.find "permit-doctor-read" rendered);
  check bool_ "mentions outcome" true (Astring_find.find "Permit" rendered)

let test_explain_skips_unmatched () =
  (* When the policy target misses, no rule nodes are produced. *)
  let p = Policy.make ~id:"p" ~target:(Target.for_action "write") [ Rule.permit "r" ] in
  let tree, result = Explain.explain ctx (Policy.Inline_policy p) in
  check bool_ "not applicable" true (result.Decision.decision = Decision.Not_applicable);
  check int_ "no children" 0 (List.length tree.Explain.children);
  check bool_ "explains why" true (Astring_find.find "no match" tree.Explain.detail)

let test_explain_condition_detail () =
  let p =
    Policy.make ~id:"p" ~rule_combining:Combine.First_applicable
      [
        Rule.permit
          ~condition:(Expr.Apply ("string-is-in", [ Expr.str "nurse"; Expr.subject_attr "role" ]))
          "needs-nurse";
        Rule.deny "fallback";
      ]
  in
  let tree, _ = Explain.explain ctx (Policy.Inline_policy p) in
  match tree.Explain.children with
  | first :: _ ->
    check bool_ "condition shown false" true (Astring_find.find "condition = false" first.Explain.detail)
  | [] -> Alcotest.fail "expected rule nodes"

let test_explain_nested_sets_and_refs () =
  let lookup = function
    | "doctor-read" -> Some (Policy.Inline_policy doctor_read_policy)
    | _ -> None
  in
  let set =
    Policy.make_set ~id:"root"
      [ Policy.Policy_ref "doctor-read"; Policy.Policy_ref "missing" ]
  in
  let tree, result = Explain.explain ~resolve_ref:lookup ctx (Policy.Inline_set set) in
  check int_ "two reference nodes" 2 (List.length tree.Explain.children);
  (match tree.Explain.children with
  | [ resolved; missing ] ->
    check bool_ "resolved has inner node" true (resolved.Explain.children <> []);
    check bool_ "missing is unresolvable" true
      (Astring_find.find "unresolvable" missing.Explain.detail)
  | _ -> Alcotest.fail "unexpected shape");
  ignore result


(* --- property tests ---------------------------------------------------------------------------- *)

let gen_effect = QCheck.Gen.oneofl [ Rule.Permit; Rule.Deny ]

let gen_rule =
  QCheck.Gen.(
    map2
      (fun effect n -> Rule.make effect (Printf.sprintf "r%d" n))
      gen_effect (0 -- 1000))

let gen_policy =
  QCheck.Gen.(
    map2
      (fun rules alg ->
        Policy.make ~id:"gen"
          ~rule_combining:alg
          (List.mapi (fun i r -> { r with Rule.id = Printf.sprintf "r%d" i }) rules))
      (list_size (1 -- 8) gen_rule)
      (oneofl Combine.[ Deny_overrides; Permit_overrides; First_applicable ]))

let arb_policy =
  QCheck.make
    ~print:(fun p -> Xacml_xml.child_to_string (Policy.Inline_policy p))
    gen_policy

let prop_xml_roundtrip_preserves_decision =
  QCheck.Test.make ~name:"XML roundtrip preserves decisions" ~count:200 arb_policy (fun p ->
      match Xacml_xml.policy_of_xml (Xacml_xml.policy_to_xml p) with
      | Error _ -> false
      | Ok p' ->
        Decision.equal_decision
          (Policy.evaluate ctx p).Decision.decision
          (Policy.evaluate ctx p').Decision.decision)

let prop_explain_agrees =
  QCheck.Test.make ~name:"explain returns the engine's decision" ~count:200 arb_policy (fun p ->
      let _, explained = Explain.explain ctx (Policy.Inline_policy p) in
      Decision.equal_decision explained.Decision.decision
        (Policy.evaluate ctx p).Decision.decision)

let prop_deny_overrides_never_permits_when_deny_present =
  QCheck.Test.make ~name:"deny-overrides never permits past a deny" ~count:200 arb_policy (fun p ->
      let p = { p with Policy.rule_combining = Combine.Deny_overrides } in
      let has_deny = List.exists (fun r -> r.Rule.effect = Rule.Deny) p.Policy.rules in
      let d = (Policy.evaluate ctx p).Decision.decision in
      (not has_deny) || d = Decision.Deny)

let prop_permit_overrides_dual =
  QCheck.Test.make ~name:"permit-overrides permits when any permit rule applies" ~count:200
    arb_policy (fun p ->
      let p = { p with Policy.rule_combining = Combine.Permit_overrides } in
      let has_permit = List.exists (fun r -> r.Rule.effect = Rule.Permit) p.Policy.rules in
      let d = (Policy.evaluate ctx p).Decision.decision in
      (not has_permit) || d = Decision.Permit)

let prop_first_applicable_is_first_rule =
  QCheck.Test.make ~name:"first-applicable = first rule (no targets/conditions)" ~count:200
    arb_policy (fun p ->
      let p = { p with Policy.rule_combining = Combine.First_applicable } in
      match p.Policy.rules with
      | [] -> true
      | first :: _ ->
        (Policy.evaluate ctx p).Decision.decision = Rule.effect_decision first.Rule.effect)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_xml_roundtrip_preserves_decision;
      prop_explain_agrees;
      prop_deny_overrides_never_permits_when_deny_present;
      prop_permit_overrides_dual;
      prop_first_applicable_is_first_rule;
    ]

let () =
  Alcotest.run "dacs_policy"
    [
      ( "value",
        [
          Alcotest.test_case "types" `Quick test_value_types;
          Alcotest.test_case "equality" `Quick test_value_equal;
          Alcotest.test_case "comparison" `Quick test_value_compare;
          Alcotest.test_case "parsing" `Quick test_value_parse;
          Alcotest.test_case "bags" `Quick test_value_bags;
        ] );
      ( "context",
        [
          Alcotest.test_case "bags" `Quick test_context_bags;
          Alcotest.test_case "merge" `Quick test_context_merge;
          Alcotest.test_case "XML roundtrip" `Quick test_context_xml_roundtrip;
          Alcotest.test_case "XML errors" `Quick test_context_xml_errors;
        ] );
      ( "expr",
        [
          Alcotest.test_case "equality functions" `Quick test_expr_equality_functions;
          Alcotest.test_case "comparisons" `Quick test_expr_comparisons;
          Alcotest.test_case "arithmetic" `Quick test_expr_arithmetic;
          Alcotest.test_case "logic" `Quick test_expr_logic;
          Alcotest.test_case "logic short-circuit" `Quick test_expr_logic_short_circuit;
          Alcotest.test_case "strings" `Quick test_expr_strings;
          Alcotest.test_case "regexp" `Quick test_expr_regexp;
          Alcotest.test_case "time-in-range" `Quick test_expr_time_in_range;
          Alcotest.test_case "designators and bags" `Quick test_expr_designators;
          Alcotest.test_case "missing attributes" `Quick test_expr_missing_attribute;
          Alcotest.test_case "PIP resolver" `Quick test_expr_resolver;
          Alcotest.test_case "set functions" `Quick test_expr_set_functions;
          Alcotest.test_case "higher-order" `Quick test_expr_higher_order;
          Alcotest.test_case "map" `Quick test_expr_map;
          Alcotest.test_case "function ref misuse" `Quick test_expr_function_ref_misuse;
          Alcotest.test_case "one_of helper" `Quick test_expr_one_of_helper;
          Alcotest.test_case "static validation" `Quick test_expr_validate;
          Alcotest.test_case "registry" `Quick test_expr_registry;
        ] );
      ( "target",
        [
          Alcotest.test_case "any" `Quick test_target_any;
          Alcotest.test_case "sections" `Quick test_target_sections;
          Alcotest.test_case "conjunction vs disjunction" `Quick test_target_conjunction;
          Alcotest.test_case "multiple sections" `Quick test_target_multi_section;
          Alcotest.test_case "unknown function" `Quick test_target_unknown_function;
          Alcotest.test_case "resolver" `Quick test_target_resolver;
        ] );
      ( "rule",
        [
          Alcotest.test_case "plain effects" `Quick test_rule_plain;
          Alcotest.test_case "target gating" `Quick test_rule_target;
          Alcotest.test_case "conditions" `Quick test_rule_condition;
          Alcotest.test_case "condition errors" `Quick test_rule_condition_error;
        ] );
      ( "combine",
        [
          Alcotest.test_case "deny-overrides" `Quick test_deny_overrides;
          Alcotest.test_case "deny-overrides short-circuit" `Quick test_deny_overrides_short_circuit;
          Alcotest.test_case "permit-overrides" `Quick test_permit_overrides;
          Alcotest.test_case "first-applicable" `Quick test_first_applicable;
          Alcotest.test_case "only-one-applicable" `Quick test_only_one_applicable;
          Alcotest.test_case "ordered variants" `Quick test_ordered_variants_match;
        ] );
      ( "policy",
        [
          Alcotest.test_case "evaluation" `Quick test_policy_eval;
          Alcotest.test_case "target gates rules" `Quick test_policy_target_gates_rules;
          Alcotest.test_case "obligations filtered by effect" `Quick test_policy_obligations;
          Alcotest.test_case "nested sets" `Quick test_policy_set_nesting;
          Alcotest.test_case "policy references" `Quick test_policy_refs;
          Alcotest.test_case "rule counts" `Quick test_policy_rule_counts;
        ] );
      ( "xml",
        [
          Alcotest.test_case "policy roundtrip" `Quick test_xml_policy_roundtrip;
          Alcotest.test_case "set roundtrip" `Quick test_xml_set_roundtrip;
          Alcotest.test_case "expr roundtrip" `Quick test_xml_expr_roundtrip;
          Alcotest.test_case "result roundtrip" `Quick test_xml_result_roundtrip;
          Alcotest.test_case "errors" `Quick test_xml_errors;
        ] );
      ( "variables",
        [
          Alcotest.test_case "evaluation" `Quick test_variables_evaluation;
          Alcotest.test_case "undefined is indeterminate" `Quick test_variables_undefined_is_indeterminate;
          Alcotest.test_case "XML roundtrip" `Quick test_variables_xml_roundtrip;
          Alcotest.test_case "validation" `Quick test_variables_validation;
        ] );
      ( "index",
        [
          Alcotest.test_case "equivalence" `Quick test_index_equivalence;
          Alcotest.test_case "selectivity" `Quick test_index_selectivity;
          Alcotest.test_case "document order" `Quick test_index_respects_document_order;
          QCheck_alcotest.to_alcotest prop_index_equivalent;
        ] );
      ( "explain",
        [
          Alcotest.test_case "structure" `Quick test_explain_structure;
          Alcotest.test_case "unmatched target" `Quick test_explain_skips_unmatched;
          Alcotest.test_case "condition detail" `Quick test_explain_condition_detail;
          Alcotest.test_case "nested sets and references" `Quick test_explain_nested_sets_and_refs;
        ] );
      ( "validate",
        [
          Alcotest.test_case "clean policies" `Quick test_validate_ok;
          Alcotest.test_case "catches problems" `Quick test_validate_catches;
          Alcotest.test_case "shadowed rules" `Quick test_shadowed_rules;
        ] );
      ( "pdp",
        [
          Alcotest.test_case "stats" `Quick test_pdp_stats;
          Alcotest.test_case "PIP lookups" `Quick test_pdp_pip_counted;
          Alcotest.test_case "root swap" `Quick test_pdp_set_root;
        ]
        @ props );
    ]
