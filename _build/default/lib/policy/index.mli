(** Target index: sub-linear policy evaluation for large rule sets.

    Large multi-domain policy stores (§3.1 — "scale to large user and
    resource bases") make a linear rule scan the PDP bottleneck.  This
    index buckets a policy's rules by the [resource-id]/[action-id]
    string-equality constraints in their targets, so evaluation touches
    only the rules that could possibly apply, preserving document order
    and therefore exactly the combining-algorithm semantics.

    Rules whose targets do not constrain resource/action by string
    equality land in a fallback bucket that is always scanned. *)

type t

val build : Policy.t -> t
(** Index one policy's rules. *)

val evaluate : ?resolve:Expr.resolver -> Context.t -> t -> Decision.result
(** Same result as {!Policy.evaluate} on the underlying policy, for any
    request. *)

val candidate_count : t -> Context.t -> int
(** How many rules evaluation would consider for this request (the
    selectivity measure reported by the index experiment). *)

val rule_count : t -> int
val bucket_count : t -> int
