test/test_extensions.mli:
