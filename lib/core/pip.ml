module Service = Dacs_ws.Service
module Context = Dacs_policy.Context
module Value = Dacs_policy.Value
module Metrics = Dacs_telemetry.Metrics

type t = {
  services : Service.t;
  node : Dacs_net.Net.node_id;
  subject_attrs : (string * string, Value.bag) Hashtbl.t;  (* (subject, id) *)
  environment : (string, unit -> Value.bag) Hashtbl.t;
  mutable subscribers : Dacs_net.Net.node_id list;  (* PDP attribute caches *)
  c_lookups : Metrics.counter;
  c_invalidations : Metrics.counter;
}

let node t = t.node

let subscribers t = t.subscribers

let set_subject_attribute t ~subject ~id bag = Hashtbl.replace t.subject_attrs (subject, id) bag

let add_subject_attribute t ~subject ~id v =
  let prev = Option.value (Hashtbl.find_opt t.subject_attrs (subject, id)) ~default:[] in
  Hashtbl.replace t.subject_attrs (subject, id) (prev @ [ v ])

let remove_subject_attribute t ~subject ~id =
  Hashtbl.remove t.subject_attrs (subject, id);
  (* Revocation is the one mutation that must not wait out a TTL: push an
     explicit invalidation to every subscribed attribute cache. *)
  List.iter
    (fun dst ->
      Metrics.inc t.c_invalidations;
      Service.call t.services ~src:t.node ~dst ~service:"attribute-invalidate"
        (Wire.attribute_invalidate ~subject ~attribute_id:id)
        (fun _ -> ()))
    t.subscribers

let set_environment t ~id f = Hashtbl.replace t.environment id f

let lookup t ~category ~id ~subject =
  match category with
  | Context.Subject ->
    Option.value (Hashtbl.find_opt t.subject_attrs (subject, id)) ~default:[]
  | Context.Environment -> (
    match Hashtbl.find_opt t.environment id with Some f -> f () | None -> [])
  | Context.Resource | Context.Action -> []

let create services ~node ~name:_ =
  let t =
    {
      services;
      node;
      subject_attrs = Hashtbl.create 64;
      environment = Hashtbl.create 8;
      subscribers = [];
      c_lookups =
        Metrics.counter (Service.metrics services) ~help:"Attribute lookups served"
          ~labels:[ ("node", node) ] "pip_lookups_total";
      c_invalidations =
        Metrics.counter (Service.metrics services)
          ~help:"Attribute invalidations pushed to subscribed caches"
          ~labels:[ ("node", node) ] "pip_invalidations_sent_total";
    }
  in
  (* Batched attribute queries arrive as multi-part B/BT frames whose
     parts are ordinary AttributeQuery bodies: the RPC layer dispatches
     each part here, so one handler serves both shapes. *)
  Service.serve services ~node ~service:"attribute-query" (fun ~caller:_ ~headers:_ body reply ->
      Metrics.inc t.c_lookups;
      match Wire.parse_attribute_query body with
      | Error e -> reply (Dacs_ws.Soap.fault_body { Dacs_ws.Soap.code = "soap:Sender"; reason = e })
      | Ok (category, id, subject) -> reply (Wire.attribute_result (lookup t ~category ~id ~subject)));
  Service.serve services ~node ~service:"attribute-subscribe"
    (fun ~caller ~headers:_ body reply ->
      match Wire.parse_attribute_subscribe body with
      | Error e -> reply (Dacs_ws.Soap.fault_body { Dacs_ws.Soap.code = "soap:Sender"; reason = e })
      | Ok () ->
        if not (List.mem caller t.subscribers) then t.subscribers <- caller :: t.subscribers;
        reply (Dacs_xml.Xml.element "SubscribeAck"));
  t

let lookups_served t = Metrics.counter_value t.c_lookups
