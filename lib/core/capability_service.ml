module Service = Dacs_ws.Service
module Context = Dacs_policy.Context
module Value = Dacs_policy.Value
module Policy = Dacs_policy.Policy
module Decision = Dacs_policy.Decision
module Assertion = Dacs_saml.Assertion
module Metrics = Dacs_telemetry.Metrics

type format =
  | Saml
  | X509_attribute_cert

type t = {
  format : format;
  services : Dacs_ws.Service.t;
  node : Dacs_net.Net.node_id;
  issuer : string;
  keypair : Dacs_crypto.Rsa.keypair;
  mutable root : Policy.child option;
  validity : float;
  revoked : (string, unit) Hashtbl.t;
  (* Stats live in the bus-wide registry like every other component's;
     the issued counter doubles as the assertion id sequence. *)
  c_issued : Metrics.counter;
  c_revocation_checks : Metrics.counter;
}

let node t = t.node
let format t = t.format
let issuer t = t.issuer
let public_key t = t.keypair.Dacs_crypto.Rsa.public

let set_policy t root = t.root <- Some root

let now t = Dacs_net.Net.now (Service.net t.services)

let decide t ~subject ~resource ~action =
  match t.root with
  | None -> Decision.Indeterminate "capability service has no policy"
  | Some root ->
    let ctx =
      Context.make ~subject
        ~resource:[ ("resource-id", Value.String resource) ]
        ~action:[ ("action-id", Value.String action) ]
        ~environment:[ ("time", Value.Time (now t)) ]
        ()
    in
    (Policy.evaluate_child ctx root).Decision.decision

let issue t ~subject ~pairs =
  Metrics.inc t.c_issued;
  let subject_name =
    match List.assoc_opt "subject-id" subject with
    | Some v -> Value.to_string v
    | None -> "anonymous"
  in
  let statements =
    Assertion.Attribute_statement subject
    :: List.map
         (fun (resource, action) ->
           Assertion.Authz_decision_statement
             { resource; action; decision = decide t ~subject ~resource ~action })
         pairs
  in
  let unsigned =
    Assertion.make
      ~id:(Printf.sprintf "cap-%s-%d" t.issuer (Metrics.counter_value t.c_issued))
      ~issuer:t.issuer ~subject:subject_name ~issued_at:(now t) ~validity:t.validity statements
  in
  Assertion.sign t.keypair.Dacs_crypto.Rsa.private_ unsigned

let revoke t ~assertion_id = Hashtbl.replace t.revoked assertion_id ()

let is_revoked t ~assertion_id = Hashtbl.mem t.revoked assertion_id

let issued_count t = Metrics.counter_value t.c_issued
let revocation_checks_served t = Metrics.counter_value t.c_revocation_checks

let create services ~node ~issuer ~keypair ?root ?(validity = 300.0) ?(format = Saml) () =
  let t =
    {
      format;
      services;
      node;
      issuer;
      keypair;
      root;
      validity;
      revoked = Hashtbl.create 16;
      c_issued =
        Metrics.counter (Service.metrics services) ~labels:[ ("node", node) ]
          ~help:"Capability assertions issued" "cas_issued_total";
      c_revocation_checks =
        Metrics.counter (Service.metrics services) ~labels:[ ("node", node) ]
          ~help:"Revocation-status queries served" "cas_revocation_checks_total";
    }
  in
  Service.serve services ~node ~service:"capability-request"
    (fun ~caller:_ ~headers:_ body reply ->
      match Wire.parse_capability_request body with
      | Error e -> reply (Dacs_ws.Soap.fault_body { Dacs_ws.Soap.code = "soap:Sender"; reason = e })
      | Ok (subject, pairs) ->
        let assertion = issue t ~subject ~pairs in
        reply
          (match t.format with
          | Saml -> Assertion.to_xml assertion
          | X509_attribute_cert -> Dacs_saml.Attribute_cert.to_xml assertion));
  Service.serve services ~node ~service:"revocation-check" (fun ~caller:_ ~headers:_ body reply ->
      Metrics.inc t.c_revocation_checks;
      match Wire.parse_revocation_check body with
      | Error e -> reply (Dacs_ws.Soap.fault_body { Dacs_ws.Soap.code = "soap:Sender"; reason = e })
      | Ok assertion_id -> reply (Wire.revocation_status ~revoked:(is_revoked t ~assertion_id)));
  t
