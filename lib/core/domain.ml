module Service = Dacs_ws.Service
module Rsa = Dacs_crypto.Rsa
module Cert = Dacs_crypto.Cert
module Policy = Dacs_policy.Policy
module Rule = Dacs_policy.Rule
module Expr = Dacs_policy.Expr
module Combine = Dacs_policy.Combine
module Value = Dacs_policy.Value

type t = {
  name : string;
  services : Service.t;
  ca : Rsa.keypair;
  ca_cert : Cert.t;
  audit : Audit.t;
  pap : Pap.t;
  pip : Pip.t;
  pdp : Pdp_service.t;
  idp : Idp.t;
  mutable local : Policy.child option;
  mutable vo_policy : Policy.child option;
  mutable peps : Pep.t list;
  mutable l2 : Cache_hierarchy.L2.t option;
  mutable offline : Offline.t option;
}

let name t = t.name
let services t = t.services
let ca_cert t = t.ca_cert
let ca_key t = t.ca.Rsa.private_
let audit t = t.audit
let pap t = t.pap
let pip t = t.pip
let pdp t = t.pdp
let idp t = t.idp

let pap_node t = Pap.node t.pap
let pdp_node t = Pdp_service.node t.pdp
let pip_node t = Pip.node t.pip
let idp_node t = Idp.node t.idp

(* The stored root combines the domain's own policy with any syndicated
   VO policy under deny-overrides: the VO can grant nothing the domain
   forbids, and vice versa. *)
let combined t =
  match (t.local, t.vo_policy) with
  | None, None -> None
  | Some p, None | None, Some p -> Some p
  | Some local, Some vo ->
    Some
      (Policy.Inline_set
         (Policy.make_set
            ~id:(t.name ^ "-combined")
            ~policy_combining:Combine.Deny_overrides [ local; vo ]))

let republish t =
  match combined t with
  | None -> ()
  | Some root ->
    Pap.publish t.pap root;
    (* Decisions cached under the old policy are purged by change-impact
       region: only entries the publish can affect drop (the region of a
       first publish is Unbounded, which is the old full flush).  The L2
       purge fans out to any subscribed child caches and — via the
       region hook below — to the PEPs' L1s in the same round. *)
    let region = Pap.last_region t.pap in
    (match t.l2 with
    | Some l2 -> Cache_hierarchy.L2.invalidate_region l2 region
    | None -> List.iter (fun pep -> ignore (Pep.invalidate_region pep region)) t.peps);
    (* The offline replica mirrors the served root, so a partitioned PEP
       decides under the same policy the live tier would have used. *)
    Option.iter (fun o -> Offline.publish o root) t.offline

let set_local_policy t child =
  t.local <- Some child;
  republish t

let local_policy t = t.local

let allow_policy_updates_from t nodes =
  let admin =
    Policy.Inline_policy
      (Policy.make
         ~id:(t.name ^ "-pap-admin")
         ~issuer:t.name ~rule_combining:Combine.First_applicable
         [
           Rule.permit
             ~condition:(Expr.one_of (Expr.subject_attr "subject-id") nodes)
             "permit-admins";
           Rule.deny "deny-others";
         ])
  in
  Pap.set_admin_policy t.pap admin

let register_user t ~user attrs =
  Idp.register_user t.idp ~user attrs;
  List.iter
    (fun (id, v) ->
      if id <> "subject-id" then Pip.add_subject_attribute t.pip ~subject:user ~id v)
    attrs

let set_rbac t model =
  List.iter
    (fun user ->
      Idp.register_user t.idp ~user (Dacs_rbac.Compile.subject_for_user model user);
      Pip.set_subject_attribute t.pip ~subject:user ~id:"role"
        (List.map (fun r -> Value.String r) (Dacs_rbac.Rbac.authorized_roles model user)))
    (Dacs_rbac.Rbac.users model);
  set_local_policy t
    (Policy.Inline_policy (Dacs_rbac.Compile.to_policy ~id:(t.name ^ "-rbac") model))

let seed_of_name name =
  (* Stable per-name seed so domains are reproducible without coordination. *)
  let digest = Dacs_crypto.Sha256.digest name in
  let v = ref 0L in
  String.iteri
    (fun i c -> if i < 8 then v := Int64.logor !v (Int64.shift_left (Int64.of_int (Char.code c)) (8 * i)))
    digest;
  !v

let l2 t = t.l2

let attach_l2 t ?max_entries ~ttl () =
  match t.l2 with
  | Some l2 -> l2
  | None ->
    let net = Service.net t.services in
    let node = t.name ^ ".l2" in
    Dacs_net.Net.add_node net node;
    let l2 = Cache_hierarchy.L2.create t.services ~node ?max_entries ~ttl () in
    (* Every invalidation round that reaches the domain cache also purges
       the PEPs' private L1s, so no cache level outlives a revocation. *)
    Cache_hierarchy.L2.set_on_invalidate l2 (fun key ->
        match key with
        | None -> List.iter Pep.invalidate_cache t.peps
        | Some key -> List.iter (fun pep -> Pep.invalidate_key pep ~key) t.peps);
    Cache_hierarchy.L2.set_on_region l2 (fun region ->
        List.iter (fun pep -> ignore (Pep.invalidate_region pep region)) t.peps);
    List.iter (fun pep -> Pep.set_l2 pep (Some node)) t.peps;
    t.l2 <- Some l2;
    l2

let offline t = t.offline
let offline_node t = Option.map (fun _ -> t.name ^ ".offline") t.offline

let attach_offline t ~key () =
  match t.offline with
  | Some o -> o
  | None ->
    let net = Service.net t.services in
    let node = t.name ^ ".offline" in
    Dacs_net.Net.add_node net node;
    let o =
      Offline.create
        ~metrics:(Service.metrics t.services)
        ~audit:t.audit
        ~now:(fun () -> Dacs_net.Net.now net)
        ~key ~author:t.name ()
    in
    Offline.serve o t.services ~node;
    (* A replayed contradiction purges every cache level by request key,
       exactly like a keyed invalidation round. *)
    Offline.on_invalidate o (fun key ->
        Option.iter (fun l2 -> Cache_hierarchy.L2.invalidate l2 ~key) t.l2;
        List.iter (fun pep -> Pep.invalidate_key pep ~key) t.peps);
    (match combined t with Some root -> Offline.publish o root | None -> ());
    List.iter (fun pep -> Pep.set_offline_replica pep (Some o)) t.peps;
    t.offline <- Some o;
    o

let create services ~name ?seed ?attr_cache_ttl () =
  let seed = Option.value seed ~default:(seed_of_name name) in
  let rng = Dacs_crypto.Rng.create seed in
  let ca = Rsa.generate rng ~bits:512 in
  let ca_cert =
    Cert.self_signed ca ~subject:("cn=ca," ^ name) ~serial:1 ~not_before:0.0 ~not_after:1e12
  in
  let idp_keys = Rsa.generate rng ~bits:512 in
  let net = Service.net services in
  let node suffix =
    let id = name ^ "." ^ suffix in
    Dacs_net.Net.add_node net id;
    id
  in
  let pap = Pap.create services ~node:(node "pap") ~name:(name ^ "-pap") () in
  let pip = Pip.create services ~node:(node "pip") ~name:(name ^ "-pip") in
  let pdp =
    Pdp_service.create services ~node:(node "pdp") ~name:(name ^ "-pdp") ~pap:(Pap.node pap)
      ~pips:[ Pip.node pip ] ?attr_cache_ttl ()
  in
  let idp = Idp.create services ~node:(node "idp") ~issuer:("idp." ^ name) ~keypair:idp_keys () in
  let t =
    {
      name;
      services;
      ca;
      ca_cert;
      audit = Audit.create ();
      pap;
      pip;
      pdp;
      idp;
      local = None;
      vo_policy = None;
      peps = [];
      l2 = None;
      offline = None;
    }
  in
  (* Syndicated updates land as the VO component of the combined root. *)
  Pap.set_update_transform t.pap (fun incoming ->
      t.vo_policy <- Some incoming;
      match combined t with Some c -> c | None -> incoming);
  t

let expose_resource t ~resource ?content ?cache ?pdps ?(call_timeout = 1.0) () =
  let net = Service.net t.services in
  let node = Printf.sprintf "%s.pep.%s" t.name resource in
  Dacs_net.Net.add_node net node;
  let pdps = Option.value pdps ~default:[ pdp_node t ] in
  let pep =
    Pep.create t.services ~node ~domain:t.name ~resource ?content ~audit:t.audit
      ~encryption_key:(Dacs_crypto.Stream_cipher.derive_key (t.name ^ "/" ^ resource))
      (Pep.Pull { pdps; cache; call_timeout })
  in
  Option.iter (fun l2 -> Pep.set_l2 pep (Some (Cache_hierarchy.L2.node l2))) t.l2;
  Option.iter (fun o -> Pep.set_offline_replica pep (Some o)) t.offline;
  t.peps <- pep :: t.peps;
  pep

let peps t = List.rev t.peps

let find_pep t ~resource = List.find_opt (fun p -> Pep.resource p = resource) t.peps
