(** Compile an RBAC state into policies for the evaluation engine.

    Two encodings, matching the paper's scalability comparison (§3.1):
    attribute/role-based policies whose size grows with the number of
    {e roles}, versus identity-based ACL policies whose size grows with
    the number of {e users}. *)

val to_policy : ?id:string -> Rbac.t -> Dacs_policy.Policy.t
(** Role-based encoding: one permit rule per (role, permission) pair,
    matching requests whose subject ["role"] attribute names a role that
    (directly or by inheritance) grants the permission; a trailing
    deny-all rule.  Uses first-applicable combining. *)

val to_identity_policy : ?id:string -> Rbac.t -> Dacs_policy.Policy.t
(** Identity-based (ACL) encoding: one permit rule per (user, permission)
    pair, matching on ["subject-id"].  Exists as the baseline the paper
    argues against for large user bases. *)

val subject_for_user : Rbac.t -> Rbac.user -> (string * Dacs_policy.Value.t) list
(** Subject attributes describing the user (its id and authorised roles),
    ready for {!Dacs_policy.Context.make}. *)
