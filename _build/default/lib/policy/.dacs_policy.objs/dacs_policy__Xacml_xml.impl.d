lib/policy/xacml_xml.ml: Combine Context Dacs_xml Decision Expr List Obligation Option Policy Printf Result Rule Target Value
