(* Quickstart: write a policy, stand up one domain, make two requests.

   Run with:  dune exec examples/quickstart.exe *)

module Value = Dacs_policy.Value
module Policy = Dacs_policy.Policy
module Rule = Dacs_policy.Rule
module Target = Dacs_policy.Target
module Combine = Dacs_policy.Combine
module Net = Dacs_net.Net
module Service = Dacs_ws.Service
open Dacs_core

let () =
  (* 1. The simulated network and the SOAP service layer on top of it. *)
  let net = Net.create () in
  let services = Service.create (Dacs_net.Rpc.create net) in

  (* 2. One administrative domain: this creates its CA, IdP, PAP, PIP and
        PDP components on their own nodes. *)
  let domain = Domain.create services ~name:"acme" () in

  (* 3. A policy: doctors may read the patient-records service, everything
        else is denied. *)
  let policy =
    Policy.Inline_policy
      (Policy.make ~id:"acme-policy" ~issuer:"acme" ~rule_combining:Combine.First_applicable
         [
           Rule.permit
             ~description:"doctors may read patient records"
             ~target:
               Target.(
                 any
                 |> subject_is "role" "doctor"
                 |> resource_is "resource-id" "patient-records"
                 |> action_is "action-id" "read")
             "permit-doctor-read";
           Rule.deny "default-deny";
         ])
  in
  Domain.set_local_policy domain policy;

  (* 4. Expose a resource behind a pull-mode PEP. *)
  let pep = Domain.expose_resource domain ~resource:"patient-records" ~content:"<records/>" () in

  (* 5. Two clients. *)
  Net.add_node net "alice-laptop";
  Net.add_node net "bob-laptop";
  let alice =
    Client.create services ~node:"alice-laptop"
      ~subject:[ ("subject-id", Value.String "alice"); ("role", Value.String "doctor") ]
  in
  let bob =
    Client.create services ~node:"bob-laptop"
      ~subject:[ ("subject-id", Value.String "bob"); ("role", Value.String "janitor") ]
  in

  let show who outcome =
    match outcome with
    | Ok (Wire.Granted { content; _ }) -> Printf.printf "%-6s -> GRANTED  (content: %s)\n" who content
    | Ok (Wire.Denied reason) -> Printf.printf "%-6s -> DENIED   (%s)\n" who reason
    | Error e -> Printf.printf "%-6s -> ERROR    (%s)\n" who (Service.error_to_string e)
  in

  Client.request alice ~pep:(Pep.node pep) ~action:"read" (show "alice");
  Client.request bob ~pep:(Pep.node pep) ~action:"read" (show "bob");

  (* 6. Run the simulation to completion and inspect the audit log. *)
  Net.set_tracing net true;
  Net.run net;
  Printf.printf "\naudit log of domain %s:\n" (Domain.name domain);
  List.iter
    (fun e ->
      Printf.printf "  t=%.3f %s %s %s -> %s\n" e.Audit.at e.Audit.subject e.Audit.action
        e.Audit.resource
        (Dacs_policy.Decision.decision_to_string e.Audit.decision))
    (Audit.entries (Domain.audit domain));
  let sent = Net.total_sent net in
  Printf.printf "\nnetwork: %d messages, %d bytes\n" sent.Net.count sent.Net.bytes;

  (* 7. The paper's Fig. 3 message sequence, straight from the trace
        (tracing was enabled just before the run, so this shows the
        messages delivered during step 6). *)
  print_newline ();
  print_string (Dacs_net.Sequence.render (Net.trace net))
