(** Probabilistic primality testing and random prime generation. *)

val is_probably_prime : ?rounds:int -> Rng.t -> Bignum.t -> bool
(** Trial division by small primes followed by [rounds] Miller–Rabin
    witnesses (default 20).  Composites pass with probability at most
    4{^-rounds}. *)

val generate : Rng.t -> bits:int -> Bignum.t
(** A random probable prime with exactly [bits] bits (top bit set).
    [bits] must be at least 8. *)

val small_primes : int list
(** The primes below 1000, used for sieving. *)
