lib/simnet/sequence.mli: Net
