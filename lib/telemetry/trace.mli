(** Distributed tracing over the simulated fabric.

    A trace is a tree of spans — one per hop of an authorisation flow
    (client call, PEP enforcement, PDP evaluation, PIP/PAP fetch) —
    linked by parent ids and stamped with virtual-clock times, so a
    single request in the Fig. 2 (push) or Fig. 3 (pull) sequence renders
    as one coherent tree with exact per-hop latencies.

    Trace and span ids are minted from the id source given at {!create}
    (in DACS: the engine's seeded RNG), so a given seed yields
    byte-identical traces.  Tracing is {e disabled} by default and, while
    disabled, mints no ids and records nothing — enabling it never
    perturbs the RNG sequence of an untraced run.

    The tracer also carries the {e ambient context}: the span under which
    the currently executing callback logically runs.  The RPC layer
    brackets every handler and continuation with {!set_current}, which is
    what stitches asynchronous hops into one tree. *)

type t

type context = { trace_id : int64; span_id : int64 }

type status = Span_ok | Span_error of string

type span

val create : now:(unit -> float) -> next_id:(unit -> int64) -> unit -> t

val set_enabled : t -> bool -> unit
val enabled : t -> bool

(** {1 Ambient context} *)

val current : t -> context option
val set_current : t -> context option -> unit

(** {1 Span lifecycle} *)

val start_span : t -> ?parent:context -> string -> span
(** [parent] defaults to the ambient context (a fresh root trace when
    there is none).  While the tracer is disabled this returns an inert
    span: no ids are minted and nothing is recorded. *)

val context : span -> context

val annotate : span -> string -> string -> unit
(** Attach a key:value annotation (insertion order preserved). *)

val set_status : span -> status -> unit
(** Default status is [Span_ok]. *)

val add_event : t -> span -> string -> unit
(** Timestamped point event inside the span (e.g. ["cache-hit"]). *)

val finish : t -> span -> unit
(** Stamp the end time.  Idempotent; the first finish wins. *)

val record : t -> string -> unit
(** Timestamped event attached to the ambient span, or to the trace-global
    event log when no span is current — how fault-window openings and
    breaker transitions land in the story of a run. *)

(** {1 Inspection} *)

type span_view = {
  v_trace_id : int64;
  v_span_id : int64;
  v_parent : int64 option;
  v_name : string;
  v_start : float;
  v_end : float option;
  v_status : status;
  v_attrs : (string * string) list;
  v_events : (float * string) list;
}

val spans : t -> span_view list
(** All recorded spans in start order. *)

val span_count : t -> int
val trace_ids : t -> int64 list
(** Distinct trace ids in order of first appearance. *)

val global_events : t -> (float * string) list

val critical_path : ?trace_id:int64 -> t -> span_view list
(** The chain of spans that bounded a trace's end-to-end latency: from
    the root span, repeatedly descend into the child that finished last.
    [trace_id] defaults to the first recorded trace; [[]] when the trace
    has no spans.  Unfinished spans count as ending at their start. *)

val clear : t -> unit
(** Drop recorded spans and events (registration state and the enabled
    flag survive). *)

(** {1 Context propagation} *)

val context_to_string : context -> string
(** ["<trace-hex>-<span-hex>"], safe inside an RPC frame. *)

val context_of_string : string -> context option

(** {1 Rendering} *)

val render_tree : ?trace_id:int64 -> t -> string
(** ASCII span tree (all traces, or just [trace_id]): one line per span
    with start offset, duration and annotations, nested children, inline
    events, and the trace-global event log at the end.  Deterministic for
    a given seed. *)
