(* Little-endian limbs in base 2^26.  The invariant is that the highest
   limb is non-zero; zero is the empty array.  Base 2^26 keeps every
   intermediate product (limb*limb plus carries) well under 2^62, so plain
   native ints suffice throughout. *)

let limb_bits = 26
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t = int array

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int i =
  if i < 0 then invalid_arg "Bignum.of_int: negative";
  let rec limbs i = if i = 0 then [] else (i land limb_mask) :: limbs (i lsr limb_bits) in
  Array.of_list (limbs i)

let to_int_opt a =
  let n = Array.length a in
  if n * limb_bits <= 62 then begin
    let v = ref 0 in
    for i = n - 1 downto 0 do
      v := (!v lsl limb_bits) lor a.(i)
    done;
    Some !v
  end
  else begin
    (* May still fit if the top limb is small. *)
    let v = ref 0 and ok = ref true in
    for i = n - 1 downto 0 do
      if !v > (max_int - a.(i)) lsr limb_bits then ok := false
      else v := (!v lsl limb_bits) lor a.(i)
    done;
    if !ok then Some !v else None
  end

let is_zero a = Array.length a = 0
let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let is_even a = Array.length a = 0 || a.(0) land 1 = 0

let bits_of_limb v =
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let num_bits a =
  let n = Array.length a in
  if n = 0 then 0 else ((n - 1) * limb_bits) + bits_of_limb a.(n - 1)

let testbit a i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let out = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    out.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  out.(n) <- !carry;
  normalize out

let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Bignum.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  normalize out

let mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let t = out.(i + j) + (ai * b.(j)) + !carry in
        out.(i + j) <- t land limb_mask;
        carry := t lsr limb_bits
      done;
      (* Propagate the final carry (it can span several limbs only when
         out.(i+lb) was already populated by earlier rows). *)
      let j = ref (i + lb) in
      while !carry <> 0 do
        let t = out.(!j) + !carry in
        out.(!j) <- t land limb_mask;
        carry := t lsr limb_bits;
        incr j
      done
    done;
    normalize out
  end

let shift_left (a : t) bits : t =
  if bits < 0 then invalid_arg "Bignum.shift_left";
  if is_zero a || bits = 0 then a
  else begin
    let limbs = bits / limb_bits and off = bits mod limb_bits in
    let la = Array.length a in
    let out = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl off in
      out.(i + limbs) <- out.(i + limbs) lor (v land limb_mask);
      out.(i + limbs + 1) <- v lsr limb_bits
    done;
    normalize out
  end

let shift_right (a : t) bits : t =
  if bits < 0 then invalid_arg "Bignum.shift_right";
  if is_zero a || bits = 0 then a
  else begin
    let limbs = bits / limb_bits and off = bits mod limb_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let n = la - limbs in
      let out = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limbs) lsr off in
        let hi = if off > 0 && i + limbs + 1 < la then (a.(i + limbs + 1) lsl (limb_bits - off)) land limb_mask else 0 in
        out.(i) <- lo lor hi
      done;
      normalize out
    end
  end

let succ a = add a one
let pred a = sub a one

(* Division by a single limb; returns quotient and remainder. *)
let divmod_small (a : t) (d : int) : t * int =
  assert (d > 0 && d < base);
  let la = Array.length a in
  let out = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    out.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize out, !r)

(* Knuth Algorithm D (TAOCP vol. 2, 4.3.1). *)
let divmod_knuth (u : t) (v : t) : t * t =
  let n = Array.length v in
  (* Normalise so the divisor's top limb has its high bit set. *)
  let shift = limb_bits - bits_of_limb v.(n - 1) in
  let u' = shift_left u shift and v' = shift_left v shift in
  let v' = (v' : int array) in
  let m = Array.length u' - n in
  (* Working copy of the dividend with one extra high limb. *)
  let w = Array.make (Array.length u' + 1) 0 in
  Array.blit u' 0 w 0 (Array.length u');
  let q = Array.make (max (m + 1) 1) 0 in
  let vn1 = v'.(n - 1) in
  let vn2 = if n >= 2 then v'.(n - 2) else 0 in
  for j = m downto 0 do
    let top = (w.(j + n) lsl limb_bits) lor w.(j + n - 1) in
    let qhat = ref (top / vn1) and rhat = ref (top mod vn1) in
    if !qhat >= base then begin
      qhat := base - 1;
      rhat := top - (!qhat * vn1)
    end;
    let continue = ref true in
    while !continue && !rhat < base do
      let lhs = !qhat * vn2 in
      let rhs = (!rhat lsl limb_bits) lor (if n >= 2 then w.(j + n - 2) else 0) in
      if lhs > rhs then begin
        decr qhat;
        rhat := !rhat + vn1
      end
      else continue := false
    done;
    (* Multiply-and-subtract. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v'.(i)) + !carry in
      carry := p lsr limb_bits;
      let d = w.(i + j) - (p land limb_mask) - !borrow in
      if d < 0 then begin
        w.(i + j) <- d + base;
        borrow := 1
      end
      else begin
        w.(i + j) <- d;
        borrow := 0
      end
    done;
    let d = w.(j + n) - !carry - !borrow in
    if d < 0 then begin
      (* qhat was one too large: add the divisor back. *)
      w.(j + n) <- d + base;
      decr qhat;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let s = w.(i + j) + v'.(i) + !c in
        w.(i + j) <- s land limb_mask;
        c := s lsr limb_bits
      done;
      w.(j + n) <- (w.(j + n) + !c) land limb_mask
    end
    else w.(j + n) <- d;
    q.(j) <- !qhat
  done;
  let r = normalize (Array.sub w 0 n) in
  (normalize q, shift_right r shift)

let divmod (a : t) (b : t) : t * t =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_small a b.(0) in
    (q, of_int r)
  end
  else divmod_knuth a b

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let modpow b e m =
  if is_zero m then raise Division_by_zero;
  if equal m one then zero
  else begin
    let b = rem b m in
    let result = ref one and acc = ref b in
    let nbits = num_bits e in
    for i = 0 to nbits - 1 do
      if testbit e i then result := rem (mul !result !acc) m;
      if i < nbits - 1 then acc := rem (mul !acc !acc) m
    done;
    !result
  end

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

(* Signed values for the extended Euclid walk: (negative?, magnitude). *)
let signed_sub (sa, ma) (sb, mb) =
  (* (sa,ma) - (sb,mb) *)
  if sa = sb then
    if compare ma mb >= 0 then (sa, sub ma mb) else (not sa, sub mb ma)
  else (sa, add ma mb)

let signed_mul_nat (s, m) n = (s, mul m n)

let modinv a m =
  if is_zero m then raise Division_by_zero;
  let a = rem a m in
  (* Invariants: r = x*a + y*m for each (r, x) pair tracked. *)
  let rec go r0 x0 r1 x1 =
    if is_zero r1 then
      if equal r0 one then
        let s, mag = x0 in
        let v = rem mag m in
        Some (if s && not (is_zero v) then sub m v else v)
      else None
    else begin
      let q, r2 = divmod r0 r1 in
      let x2 = signed_sub x0 (signed_mul_nat x1 q) in
      go r1 x1 r2 x2
    end
  in
  if is_zero a then None else go m (false, zero) a (false, one)

(* Conversions ------------------------------------------------------- *)

let of_bytes_be s =
  let v = ref zero in
  String.iter (fun c -> v := add (shift_left !v 8) (of_int (Char.code c))) s;
  !v

let to_bytes_be a =
  if is_zero a then ""
  else begin
    let nbytes = (num_bits a + 7) / 8 in
    String.init nbytes (fun i ->
        let bit = 8 * (nbytes - 1 - i) in
        let limb = bit / limb_bits and off = bit mod limb_bits in
        let lo = a.(limb) lsr off in
        let hi =
          if off > limb_bits - 8 && limb + 1 < Array.length a then a.(limb + 1) lsl (limb_bits - off)
          else 0
        in
        Char.chr ((lo lor hi) land 0xFF))
  end

let to_bytes_be_padded a width =
  let s = to_bytes_be a in
  let n = String.length s in
  if n > width then invalid_arg "Bignum.to_bytes_be_padded: value too large";
  String.make (width - n) '\x00' ^ s

let of_hex s =
  let s = if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then String.sub s 2 (String.length s - 2) else s in
  let s = if String.length s mod 2 = 1 then "0" ^ s else s in
  of_bytes_be (Encoding.hex_decode s)

let to_hex a = if is_zero a then "0" else Encoding.hex_encode (to_bytes_be a)

let of_decimal s =
  if s = "" then invalid_arg "Bignum.of_decimal: empty";
  let v = ref zero in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' -> v := add (mul !v (of_int 10)) (of_int (Char.code c - Char.code '0'))
      | _ -> invalid_arg "Bignum.of_decimal: non-digit")
    s;
  !v

let to_decimal a =
  if is_zero a then "0"
  else begin
    (* Peel 7 decimal digits at a time (10^7 < 2^26). *)
    let chunk = 10_000_000 in
    let rec go a acc =
      if is_zero a then acc
      else begin
        let q, r = divmod_small a chunk in
        if is_zero q then string_of_int r :: acc
        else go q (Printf.sprintf "%07d" r :: acc)
      end
    in
    String.concat "" (go a [])
  end

let pp fmt a = Format.pp_print_string fmt (to_decimal a)

let random_bits rng n =
  if n < 0 then invalid_arg "Bignum.random_bits";
  if n = 0 then zero
  else begin
    let nbytes = (n + 7) / 8 in
    let s = Rng.bytes rng nbytes in
    let v = of_bytes_be s in
    (* Mask down to exactly n bits. *)
    if nbytes * 8 > n then rem v (shift_left one n) else v
  end

let random_below rng bound =
  if is_zero bound then invalid_arg "Bignum.random_below: zero bound";
  let n = num_bits bound in
  let rec draw () =
    let v = random_bits rng n in
    if compare v bound < 0 then v else draw ()
  in
  draw ()
