(* dacs: command-line front end for the DACS policy engine.

     dacs validate  POLICY.xml              check a policy document
     dacs evaluate  POLICY.xml REQUEST.xml  decide one request
     dacs conflicts POLICY.xml...           static conflict analysis
     dacs demo                              run a built-in end-to-end scenario
     dacs chaos                             replay the demo under a fault schedule
     dacs trace                             render the span tree of one pull-flow request
     dacs metrics                           dump the metrics registry after one request *)

module Policy = Dacs_policy.Policy
module Decision = Dacs_policy.Decision
module Combine = Dacs_policy.Combine
module Xacml = Dacs_policy.Xacml_xml
module Validate = Dacs_policy.Validate
open Dacs_core

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Ok s
  with Sys_error e -> Error e

let load_policy path =
  match read_file path with
  | Error e -> Error e
  | Ok content -> Xacml.child_of_string content

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* --- validate ---------------------------------------------------------- *)

let validate_cmd path =
  match load_policy path with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | Ok child -> (
    (* Non-blocking lint: unreachable rules under first-applicable. *)
    (match child with
    | Policy.Inline_policy p ->
      List.iter
        (fun (by, dead) ->
          Printf.printf "%s: warning: rule %s is unreachable (shadowed by %s)\n" path dead by)
        (Validate.shadowed_rules p)
    | Policy.Inline_set _ | Policy.Policy_ref _ -> ());
    match Validate.check_child child with
    | [] ->
      Printf.printf "%s: OK (%s)\n" path (Policy.child_id child);
      0
    | problems ->
      List.iter (fun p -> Printf.printf "%s: %s\n" path (Validate.problem_to_string p)) problems;
      1)

(* --- evaluate ------------------------------------------------------------ *)

let evaluate_cmd policy_path request_path explain =
  match (load_policy policy_path, Result.bind (read_file request_path) Xacml.request_of_string) with
  | Error e, _ | _, Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | Ok child, Ok ctx ->
    let result =
      if explain then begin
        let tree, result = Dacs_policy.Explain.explain ctx child in
        print_string (Dacs_policy.Explain.to_string tree);
        print_newline ();
        result
      end
      else Policy.evaluate_child ctx child
    in
    Printf.printf "decision: %s\n" (Decision.decision_to_string result.Decision.decision);
    (match result.Decision.decision with
    | Decision.Indeterminate m -> Printf.printf "status:   %s\n" m
    | _ -> ());
    List.iter
      (fun o -> Printf.printf "obligation: %s\n" (Format.asprintf "%a" Dacs_policy.Obligation.pp o))
      result.Decision.obligations;
    (match result.Decision.decision with Decision.Permit -> 0 | _ -> 1)

(* --- conflicts ------------------------------------------------------------- *)

let conflicts_cmd paths =
  let children =
    List.filter_map
      (fun path ->
        match load_policy path with
        | Ok c -> Some c
        | Error e ->
          Printf.eprintf "warning: skipping %s: %s\n" path e;
          None)
      paths
  in
  if children = [] then begin
    Printf.eprintf "error: no loadable policies\n";
    2
  end
  else begin
    let set = Policy.make_set ~id:"cli" children in
    match Conflict.find_in_set set with
    | [] ->
      print_endline "no modality conflicts found";
      0
    | conflicts ->
      List.iter
        (fun c ->
          Printf.printf "conflict%s: %s/%s (Permit) vs %s/%s (Deny) on %s\n"
            (if c.Conflict.cross_authority then " [cross-authority]" else "")
            c.Conflict.permit.Conflict.policy_id c.Conflict.permit.Conflict.rule_id
            c.Conflict.deny.Conflict.policy_id c.Conflict.deny.Conflict.rule_id c.Conflict.witness;
          List.iter
            (fun a ->
              Printf.printf "    %-26s -> %s\n" (Combine.name a)
                (Decision.decision_to_string (Conflict.resolution a c)))
            Combine.[ Deny_overrides; Permit_overrides; First_applicable ])
        conflicts;
      Printf.printf "%d conflict(s)\n" (List.length conflicts);
      1
  end

(* --- rbac-compile ------------------------------------------------------------ *)

let rbac_compile_cmd path identity =
  match read_file path with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | Ok text -> (
    match Dacs_rbac.Textual.parse text with
    | Error e ->
      Printf.eprintf "%s: %s\n" path e;
      1
    | Ok model ->
      let policy =
        if identity then Dacs_rbac.Compile.to_identity_policy model
        else Dacs_rbac.Compile.to_policy model
      in
      print_string
        (Dacs_xml.Xml.to_pretty_string (Xacml.policy_to_xml policy));
      0)

(* --- demo ------------------------------------------------------------------- *)

let demo_cmd () =
  let module Net = Dacs_net.Net in
  let module Value = Dacs_policy.Value in
  let net = Net.create () in
  let services = Dacs_ws.Service.create (Dacs_net.Rpc.create net) in
  let domain = Domain.create services ~name:"demo" () in
  Domain.set_local_policy domain
    (Policy.Inline_policy
       (Policy.make ~id:"demo-policy" ~rule_combining:Combine.First_applicable
          [
            Dacs_policy.Rule.permit
              ~target:
                Dacs_policy.Target.(
                  any |> subject_is "role" "admin" |> action_is "action-id" "read")
              "admins-read";
            Dacs_policy.Rule.deny "default-deny";
          ]));
  let pep = Domain.expose_resource domain ~resource:"demo-resource" ~content:"42" () in
  Net.add_node net "cli";
  let admin =
    Client.create services ~node:"cli"
      ~subject:[ ("subject-id", Value.String "admin1"); ("role", Value.String "admin") ]
  in
  let outcome = ref "" in
  Client.request admin ~pep:(Pep.node pep) ~action:"read" (fun r ->
      outcome :=
        (match r with
        | Ok (Wire.Granted { content; _ }) -> "GRANTED: " ^ content
        | Ok (Wire.Denied reason) -> "DENIED: " ^ reason
        | Error e -> "ERROR: " ^ Dacs_ws.Service.error_to_string e));
  Net.run net;
  Printf.printf "demo request as role=admin -> %s\n" !outcome;
  let sent = Net.total_sent net in
  Printf.printf "(%d messages, %d bytes over the simulated network)\n" sent.Net.count sent.Net.bytes;
  0

(* --- trace / metrics ------------------------------------------------------------ *)

(* One pull-flow request (Fig. 3) through a full domain: the client sends
   only its subject-id, so the PDP must fetch the role attribute from the
   PIP, and (refreshing on every query) the policy from the PAP — giving
   the trace its PEP -> PDP -> PIP/PAP shape. *)
let observability_scenario ~seed ~tracing =
  let module Net = Dacs_net.Net in
  let module Rpc = Dacs_net.Rpc in
  let module Value = Dacs_policy.Value in
  let net = Net.create ~seed:(Int64.of_int seed) () in
  let rpc = Rpc.create net in
  let services = Dacs_ws.Service.create rpc in
  if tracing then Rpc.set_tracing rpc true;
  let domain = Domain.create services ~name:"demo" () in
  Domain.set_local_policy domain
    (Policy.Inline_policy
       (Policy.make ~id:"demo-policy" ~rule_combining:Combine.First_applicable
          [
            Dacs_policy.Rule.permit
              ~target:
                Dacs_policy.Target.(
                  any |> subject_is "role" "admin" |> action_is "action-id" "read")
              "admins-read";
            Dacs_policy.Rule.deny "default-deny";
          ]));
  let cache =
    Decision_cache.create ~metrics:(Rpc.metrics rpc) ~owner:"demo-resource" ~ttl:2.0 ()
  in
  let pep = Domain.expose_resource domain ~resource:"demo-resource" ~content:"42" ~cache () in
  Domain.register_user domain ~user:"admin1" [ ("role", Value.String "admin") ];
  Net.add_node net "cli";
  let client =
    Client.create services ~node:"cli" ~subject:[ ("subject-id", Value.String "admin1") ]
  in
  let outcome = ref None in
  Client.request client ~pep:(Pep.node pep) ~action:"read" (fun r -> outcome := Some r);
  Net.run net;
  (rpc, !outcome)

let outcome_to_string = function
  | None -> "NO ANSWER"
  | Some (Ok (Wire.Granted { content; _ })) -> "GRANTED: " ^ content
  | Some (Ok (Wire.Denied reason)) -> "DENIED: " ^ reason
  | Some (Error e) -> "ERROR: " ^ Dacs_ws.Service.error_to_string e

let trace_cmd seed =
  let module Rpc = Dacs_net.Rpc in
  let module Trace = Dacs_telemetry.Trace in
  let rpc, outcome = observability_scenario ~seed ~tracing:true in
  Printf.printf "one pull-flow request (seed %d) -> %s\n\n" seed (outcome_to_string outcome);
  print_string (Trace.render_tree (Rpc.tracer rpc));
  match outcome with Some (Ok (Wire.Granted _)) -> 0 | _ -> 1

let metrics_cmd seed json =
  let module Rpc = Dacs_net.Rpc in
  let module Metrics = Dacs_telemetry.Metrics in
  let rpc, outcome = observability_scenario ~seed ~tracing:false in
  let m = Rpc.metrics rpc in
  if json then print_endline (Metrics.render_json m) else print_string (Metrics.render m);
  match outcome with Some (Ok (Wire.Granted _)) -> 0 | _ -> 1

(* --- chaos ------------------------------------------------------------------- *)

let chaos_cmd seed json =
  let module Net = Dacs_net.Net in
  let module Engine = Dacs_net.Engine in
  let module Rpc = Dacs_net.Rpc in
  let module Faults = Dacs_net.Faults in
  let module Value = Dacs_policy.Value in
  let net = Net.create ~seed:(Int64.of_int seed) () in
  let rpc = Rpc.create net in
  let services = Dacs_ws.Service.create rpc in
  List.iter (Net.add_node net) [ "pep"; "pdp0"; "pdp1"; "cli" ];
  let policy =
    Policy.Inline_policy
      (Policy.make ~id:"chaos-policy" ~rule_combining:Combine.First_applicable
         [
           Dacs_policy.Rule.permit
             ~target:
               Dacs_policy.Target.(any |> subject_is "role" "admin" |> action_is "action-id" "read")
             "admins-read";
           Dacs_policy.Rule.deny "default-deny";
         ])
  in
  List.iter
    (fun node -> ignore (Pdp_service.create services ~node ~name:node ~root:policy ()))
    [ "pdp0"; "pdp1" ];
  let cache = Decision_cache.create ~ttl:2.0 () in
  let pep =
    Pep.create services ~node:"pep" ~domain:"demo" ~resource:"demo-resource" ~content:"42"
      (Pep.Pull { pdps = [ "pdp0"; "pdp1" ]; cache = Some cache; call_timeout = 0.4 })
  in
  Pep.set_retry_policy pep (Some Rpc.default_retry);
  Pep.set_stale_window pep 10.0;
  Rpc.set_breaker rpc (Some Rpc.default_breaker);
  let rng = Dacs_crypto.Rng.create (Int64.of_int (seed + 1)) in
  let horizon = 8.0 in
  let schedule = Faults.random_schedule ~rng ~nodes:[ "pep"; "pdp0"; "pdp1" ] ~horizon in
  if not json then begin
    Printf.printf "fault schedule (seed %d):\n" seed;
    List.iter (fun s -> Printf.printf "  %s\n" (Faults.describe s)) schedule
  end;
  Faults.apply net schedule;
  let admin =
    Client.create services ~node:"cli"
      ~subject:[ ("subject-id", Value.String "admin1"); ("role", Value.String "admin") ]
  in
  let outcomes = ref [] in
  List.iter
    (fun at ->
      Engine.schedule_at (Net.engine net) ~at (fun () ->
          Client.request admin ~pep:"pep" ~action:"read" ~timeout:20.0 ~retry:Rpc.default_retry
            (fun r -> outcomes := (at, Net.now net, r) :: !outcomes)))
    [ 1.0; 3.0; 5.0; 7.0; horizon +. 2.0 ];
  Net.run net;
  let sorted = List.sort compare !outcomes in
  let describe_outcome r =
    match r with
    | Ok (Wire.Granted { content; _ }) -> "GRANTED: " ^ content
    | Ok (Wire.Denied reason) -> "DENIED: " ^ reason
    | Error e -> "ERROR: " ^ Dacs_ws.Service.error_to_string e
  in
  let s = Pep.stats pep in
  let last_granted =
    match sorted with
    | [] -> false
    | l -> ( match List.nth l (List.length l - 1) with _, _, Ok (Wire.Granted _) -> true | _ -> false)
  in
  if json then begin
    let schedule_json =
      String.concat ","
        (List.map (fun sp -> Printf.sprintf "%S" (json_escape (Faults.describe sp))) schedule)
    in
    let requests_json =
      String.concat ","
        (List.map
           (fun (at, finished, r) ->
             Printf.sprintf "{\"at\":%g,\"answered_at\":%g,\"outcome\":%S}" at finished
               (json_escape (describe_outcome r)))
           sorted)
    in
    Printf.printf
      "{\"seed\":%d,\"schedule\":[%s],\"requests\":[%s],\"pep\":{\"requests\":%d,\"granted\":%d,\"denied\":%d,\"retries\":%d,\"breaker_trips\":%d,\"breaker_rejections\":%d,\"stale_serves\":%d,\"failovers\":%d},\"liveness\":%b}\n"
      seed schedule_json requests_json s.Pep.requests s.Pep.granted s.Pep.denied s.Pep.retries
      s.Pep.breaker_trips s.Pep.breaker_rejections s.Pep.stale_serves s.Pep.failovers last_granted
  end
  else begin
    Printf.printf "\nrequests (role=admin, read):\n";
    List.iter
      (fun (at, finished, r) ->
        Printf.printf "  t=%5.1f  ->  %-30s (answered at %.2fs)\n" at (describe_outcome r) finished)
      sorted;
    Printf.printf
      "\nPEP stats: %d requests, %d granted, %d denied; %d retries, %d breaker trips, %d shed, %d stale serves, %d failovers\n"
      s.Pep.requests s.Pep.granted s.Pep.denied s.Pep.retries s.Pep.breaker_trips
      s.Pep.breaker_rejections s.Pep.stale_serves s.Pep.failovers;
    if last_granted then Printf.printf "liveness: request after the schedule cleared was granted\n"
    else Printf.printf "liveness: FAILED - post-schedule request was not granted\n"
  end;
  if last_granted then 0 else 1

(* --- tier -------------------------------------------------------------------- *)

(* Stand up a sharded, batched PDP tier behind one enforcement point,
   push a burst of distinct-user requests through it (so the requests
   hash across the ring and coalesce into batches), then crash a shard
   and push the same burst again to show failure remapping. *)
let tier_cmd shards batch seed requests json =
  let module Net = Dacs_net.Net in
  let module Engine = Dacs_net.Engine in
  let module Rpc = Dacs_net.Rpc in
  let module Metrics = Dacs_telemetry.Metrics in
  let module Value = Dacs_policy.Value in
  if shards < 1 then begin
    prerr_endline "tier: --shards must be >= 1";
    exit 2
  end;
  if batch < 1 then begin
    prerr_endline "tier: --batch must be >= 1";
    exit 2
  end;
  let net = Net.create ~seed:(Int64.of_int seed) () in
  let rpc = Rpc.create net in
  let services = Dacs_ws.Service.create rpc in
  let metrics = Rpc.metrics rpc in
  let policy =
    Policy.Inline_policy
      (Policy.make ~id:"tier-policy" ~rule_combining:Combine.First_applicable
         [
           Dacs_policy.Rule.permit
             ~target:
               Dacs_policy.Target.(any |> subject_is "role" "admin" |> action_is "action-id" "read")
             "admins-read";
           Dacs_policy.Rule.deny "default-deny";
         ])
  in
  let shard_nodes =
    List.init shards (fun i ->
        let node = Printf.sprintf "pdp.%d" i in
        Net.add_node net node;
        ignore (Pdp_service.create services ~node ~name:node ~root:policy ());
        node)
  in
  Net.add_node net "pep";
  let tier = Pdp_tier.create services ~node:"pep" ~shards:shard_nodes ~batch () in
  let pep =
    Pep.create services ~node:"pep" ~domain:"demo" ~resource:"demo-resource" ~content:"42"
      (Pep.Sharded { tier; cache = None })
  in
  let granted = ref 0 and answered = ref 0 in
  let burst at =
    List.iter
      (fun i ->
        Engine.schedule_at (Net.engine net) ~at (fun () ->
            let node = Printf.sprintf "cli.%d.%g" i at in
            Net.add_node net node;
            let user = Printf.sprintf "user%d" i in
            let client =
              Client.create services ~node
                ~subject:[ ("subject-id", Value.String user); ("role", Value.String "admin") ]
            in
            Client.request client ~pep:(Pep.node pep) ~action:"read" ~timeout:10.0 (fun r ->
                incr answered;
                match r with Ok (Wire.Granted _) -> incr granted | _ -> ())))
      (List.init requests (fun i -> i))
  in
  burst 0.5;
  Engine.schedule_at (Net.engine net) ~at:2.0 (fun () -> Net.crash net (List.hd shard_nodes));
  burst 3.0;
  Net.run net;
  let per_shard name shard =
    Metrics.counter_value (Metrics.counter metrics ~labels:[ ("node", shard) ] name)
  in
  let dispatched shard =
    Metrics.counter_value
      (Metrics.counter metrics ~labels:[ ("node", "pep"); ("shard", shard) ]
         "pdp_tier_dispatch_total")
  in
  let s = Pdp_tier.stats tier in
  let total = 2 * requests in
  if json then begin
    let shard_json =
      String.concat ","
        (List.map
           (fun shard ->
             Printf.sprintf "{\"shard\":%S,\"dispatched\":%d,\"evaluated\":%d}" shard
               (dispatched shard) (per_shard "pdp_queries_total" shard))
           shard_nodes)
    in
    Printf.printf
      "{\"seed\":%d,\"shards\":%d,\"batch\":%d,\"requests\":%d,\"answered\":%d,\"granted\":%d,\"shard_load\":[%s],\"tier\":{\"dispatched\":%d,\"batches\":%d,\"failovers\":%d,\"exhausted\":%d}}\n"
      seed shards batch total !answered !granted shard_json s.Pdp_tier.dispatched
      s.Pdp_tier.batches s.Pdp_tier.failovers s.Pdp_tier.exhausted
  end
  else begin
    Printf.printf
      "sharded PDP tier: %d shards, batch limit %d, %d requests (burst of %d before and after \
       crashing %s)\n\n"
      shards batch total requests (List.hd shard_nodes);
    Printf.printf "%-10s %12s %12s\n" "shard" "dispatched" "evaluated";
    List.iter
      (fun shard ->
        Printf.printf "%-10s %12d %12d%s\n" shard (dispatched shard)
          (per_shard "pdp_queries_total" shard)
          (if shard = List.hd shard_nodes then "   (crashed at t=2)" else ""))
      shard_nodes;
    Printf.printf
      "\ntier: %d dispatched, %d batches, %d failovers after the crash, %d failed closed\n"
      s.Pdp_tier.dispatched s.Pdp_tier.batches s.Pdp_tier.failovers s.Pdp_tier.exhausted;
    Printf.printf "outcome: %d/%d answered, %d granted\n" !answered total !granted
  end;
  let ok = !granted = total in
  if not json then
    Printf.printf "\nTIER CHECK all-requests-granted: %s (%d/%d)\n"
      (if ok then "PASS" else "FAIL")
      !granted total;
  if ok then 0 else 1

(* --- cache ------------------------------------------------------------------- *)

(* Walk one workload down the full decision-cache ladder: cold requests
   that fill the caches (with the PDP batching its PIP fetches), a
   replica pass answered by the shared L2, a warm pass answered by L1,
   a concurrent duplicate pass absorbed by single-flight coalescing —
   then an invalidation round that empties every level. *)
let cache_cmd seed json =
  let module Net = Dacs_net.Net in
  let module Engine = Dacs_net.Engine in
  let module Rpc = Dacs_net.Rpc in
  let module Value = Dacs_policy.Value in
  let module Expr = Dacs_policy.Expr in
  let module Rule = Dacs_policy.Rule in
  let net = Net.create ~seed:(Int64.of_int seed) () in
  let services = Dacs_ws.Service.create (Rpc.create net) in
  let add id =
    Net.add_node net id;
    id
  in
  let policy =
    Policy.Inline_policy
      (Policy.make ~id:"attr-heavy" ~rule_combining:Combine.Deny_overrides
         [
           Rule.permit ~condition:(Expr.one_of (Expr.subject_attr "role") [ "doctor" ]) "by-role";
           Rule.permit
             ~condition:(Expr.one_of (Expr.subject_attr "clearance") [ "secret" ])
             "by-clearance";
         ])
  in
  let pip = Pip.create services ~node:(add "pip") ~name:"pip" in
  let pdp =
    Pdp_service.create services ~node:(add "pdp") ~name:"pdp" ~root:policy ~pips:[ "pip" ]
      ~attr_cache_ttl:3600.0 ()
  in
  let l2 = Cache_hierarchy.L2.create services ~node:(add "l2") ~ttl:3600.0 () in
  let peps =
    List.init 2 (fun i ->
        let pep =
          Pep.create services
            ~node:(add (Printf.sprintf "pep%d" i))
            ~domain:"demo" ~resource:"demo-resource" ~content:"42"
            (Pep.Pull
               {
                 pdps = [ "pdp" ];
                 cache = Some (Decision_cache.create ~ttl:3600.0 ());
                 call_timeout = 5.0;
               })
        in
        Pep.set_l2 pep (Some (Cache_hierarchy.L2.node l2));
        pep)
  in
  Cache_hierarchy.L2.set_on_invalidate l2 (fun key ->
      List.iter
        (fun pep ->
          match key with
          | None -> Pep.invalidate_cache pep
          | Some key -> Pep.invalidate_key pep ~key)
        peps);
  let pep0 = List.nth peps 0 and pep1 = List.nth peps 1 in
  let users = 4 in
  let clients =
    List.init users (fun i ->
        let user = Printf.sprintf "user%d" i in
        List.iter
          (fun (id, v) -> Pip.add_subject_attribute pip ~subject:user ~id (Value.String v))
          [ ("role", "doctor"); ("clearance", "secret") ];
        Client.create services
          ~node:(add ("cli." ^ user))
          ~subject:[ ("subject-id", Value.String user) ])
  in
  let granted = ref 0 and total = ref 0 in
  let issue client pep ~at =
    incr total;
    Engine.schedule_at (Net.engine net) ~at (fun () ->
        Client.request client ~pep:(Pep.node pep) ~action:"read" ~timeout:5.0 (fun r ->
            match r with Ok (Wire.Granted _) -> incr granted | _ -> ()))
  in
  let phase f =
    let t0 = Net.now net +. 1.0 in
    List.iteri (fun i client -> f client (t0 +. float_of_int i)) clients;
    Net.run net
  in
  (* cold at replica 0, with a same-instant duplicate for the coalescer *)
  phase (fun c at ->
      issue c pep0 ~at;
      issue c pep0 ~at);
  (* replica pass: pep1 answers from the shared L2 *)
  phase (fun c at -> issue c pep1 ~at);
  (* warm pass: both replicas answer from L1 *)
  Net.reset_stats net;
  let warm_start = !total in
  phase (fun c at ->
      issue c pep0 ~at;
      issue c pep1 ~at);
  let warm_requests = !total - warm_start in
  let warm_mpr = float_of_int (Net.total_sent net).Net.count /. float_of_int warm_requests in
  (* revocation-style invalidation round empties every level *)
  Cache_hierarchy.L2.invalidate_all l2;
  Net.run net;
  let l2_size = Cache_hierarchy.L2.size l2 in
  let stat f = List.fold_left (fun acc pep -> acc + f (Pep.stats pep)) 0 peps in
  let l1_hits = stat (fun s -> s.Pep.cache_hits) in
  let l2_hits = stat (fun s -> s.Pep.l2_hits) in
  let coalesced = stat (fun s -> s.Pep.coalesced) in
  let attr_frames = (Pdp_service.stats pdp).Pdp_service.pip_fetches in
  let attr_served = Pip.lookups_served pip in
  if json then
    Printf.printf
      "{\"seed\":%d,\"requests\":%d,\"granted\":%d,\"warm_msgs_per_req\":%.2f,\"attr_frames\":%d,\"attrs_served\":%d,\"l1_hits\":%d,\"l2_hits\":%d,\"coalesced\":%d,\"l2_size_after_invalidation\":%d}\n"
      seed !total !granted warm_mpr attr_frames attr_served l1_hits l2_hits coalesced l2_size
  else begin
    Printf.printf
      "cache hierarchy: %d users, 2 PEP replicas over one shared L2, attribute-caching PDP\n\n"
      users;
    Printf.printf "%-44s %8d\n" "requests granted" !granted;
    Printf.printf "%-44s %8d\n" "requests issued" !total;
    Printf.printf "%-44s %8.2f\n" "warm-path messages per request" warm_mpr;
    Printf.printf "%-44s %8d\n" "attribute fetch frames (batched)" attr_frames;
    Printf.printf "%-44s %8d\n" "attributes served by the PIP" attr_served;
    Printf.printf "%-44s %8d\n" "L1 hits" l1_hits;
    Printf.printf "%-44s %8d\n" "shared L2 hits" l2_hits;
    Printf.printf "%-44s %8d\n" "coalesced (single-flight)" coalesced;
    Printf.printf "%-44s %8d\n" "L2 entries after invalidation round" l2_size
  end;
  let checks =
    [
      ("all-requests-granted", !granted = !total, Printf.sprintf "%d/%d" !granted !total);
      ("warm-path-msgs-per-req", warm_mpr < 2.2, Printf.sprintf "%.2f < 2.2" warm_mpr);
      ("invalidation-empties-l2", l2_size = 0, Printf.sprintf "size %d" l2_size);
    ]
  in
  if not json then begin
    print_newline ();
    List.iter
      (fun (name, ok, detail) ->
        Printf.printf "CACHE CHECK %s: %s (%s)\n" name (if ok then "PASS" else "FAIL") detail)
      checks
  end;
  if List.for_all (fun (_, ok, _) -> ok) checks then 0 else 1

(* --- explain ------------------------------------------------------------------ *)

(* Walk one request population down every rung of the decision ladder —
   cold (live), a same-instant duplicate (coalesced), a replica pass
   (shared L2), a warm pass (L1), then crash the decision tier for a
   bounded-stale serve and a fail-closed miss — and answer "who decided
   this and how" from the audit log: one provenance record per decision,
   plus the latency attribution and critical path of the run. *)
let explain_cmd seed json =
  let module Net = Dacs_net.Net in
  let module Engine = Dacs_net.Engine in
  let module Rpc = Dacs_net.Rpc in
  let module Value = Dacs_policy.Value in
  let net = Net.create ~seed:(Int64.of_int seed) () in
  let rpc = Rpc.create net in
  let services = Dacs_ws.Service.create rpc in
  Rpc.set_tracing rpc true;
  let add id =
    Net.add_node net id;
    id
  in
  let policy =
    Policy.Inline_policy
      (Policy.make ~id:"explain-policy" ~rule_combining:Combine.First_applicable
         [
           Dacs_policy.Rule.permit
             ~target:
               Dacs_policy.Target.(any |> subject_is "role" "admin" |> action_is "action-id" "read")
             "admins-read";
           Dacs_policy.Rule.deny "default-deny";
         ])
  in
  ignore (Pdp_service.create services ~node:(add "pdp") ~name:"pdp" ~root:policy ());
  let l2 = Cache_hierarchy.L2.create services ~node:(add "l2") ~ttl:3600.0 () in
  let audit = Audit.create () in
  let peps =
    List.init 2 (fun i ->
        let pep =
          Pep.create services
            ~node:(add (Printf.sprintf "pep%d" i))
            ~domain:"demo" ~resource:"demo-resource" ~content:"42" ~audit
            (Pep.Pull
               {
                 pdps = [ "pdp" ];
                 cache = Some (Decision_cache.create ~ttl:3.0 ());
                 call_timeout = 0.4;
               })
        in
        Pep.set_l2 pep (Some (Cache_hierarchy.L2.node l2));
        Pep.set_stale_window pep 30.0;
        pep)
  in
  let pep0 = List.nth peps 0 and pep1 = List.nth peps 1 in
  let client user node =
    Client.create services ~node:(add node)
      ~subject:[ ("subject-id", Value.String user); ("role", Value.String "admin") ]
  in
  let alice = client "alice" "cli0"
  and alice_dup = client "alice" "cli0b"
  and alice_replica = client "alice" "cli1"
  and bob = client "bob" "cli2" in
  let req client pep ~at =
    Engine.schedule_at (Net.engine net) ~at (fun () ->
        Client.request client ~pep:(Pep.node pep) ~action:"read" ~timeout:10.0 (fun _ -> ()))
  in
  (* cold + same-instant duplicate: live leader, coalesced waiter *)
  req alice pep0 ~at:1.0;
  req alice_dup pep0 ~at:1.0;
  (* replica pass answered by the shared L2 *)
  req alice_replica pep1 ~at:2.0;
  (* warm pass answered fresh from L1 *)
  req alice pep0 ~at:2.5;
  (* kill the decision tier and the shared cache *)
  Engine.schedule_at (Net.engine net) ~at:4.0 (fun () ->
      Net.crash net "pdp";
      Net.crash net "l2");
  (* expired L1 entry, everything else dark: bounded-stale serve *)
  req alice pep0 ~at:8.0;
  (* never-cached subject, everything dark: fail closed *)
  req bob pep0 ~at:9.0;
  Net.run net;
  let entries = Audit.entries audit in
  let stages =
    List.filter_map
      (fun e -> Option.map (fun p -> Provenance.stage_name p.Provenance.stage) e.Audit.provenance)
      entries
  in
  let has stage = List.mem stage stages in
  let coalesced_seen =
    List.exists
      (fun e -> match e.Audit.provenance with Some p -> p.Provenance.coalesced | None -> false)
      entries
  in
  let checks =
    [
      ( "every-decision-has-provenance",
        entries <> [] && List.for_all (fun e -> e.Audit.provenance <> None) entries,
        Printf.sprintf "%d audit entries" (List.length entries) );
      ("stage-live", has "live", "cold descent reached a live PDP");
      ("stage-l2", has "l2", "replica pass served by the shared cache");
      ("stage-l1", has "l1", "warm pass served from the local cache");
      ("stage-stale", has "stale", "degraded serve from an expired entry");
      ("stage-fail-closed", has "fail-closed", "unservable request denied");
      ("coalesced-flagged", coalesced_seen, "duplicate folded onto the leader's descent");
    ]
  in
  if json then begin
    let entries_json =
      String.concat ","
        (List.map
           (fun e ->
             Printf.sprintf "{\"at\":%.6f,\"subject\":%S,\"action\":%S,\"decision\":%S,\"provenance\":%s}"
               e.Audit.at (json_escape e.Audit.subject) (json_escape e.Audit.action)
               (json_escape (Decision.decision_to_string e.Audit.decision))
               (match e.Audit.provenance with
               | Some p -> Provenance.to_json p
               | None -> "null"))
           entries)
    in
    Printf.printf "{\"seed\":%d,\"decisions\":[%s]}\n" seed entries_json
  end
  else begin
    Printf.printf "decision provenance (seed %d, %d decisions):\n" seed (List.length entries);
    List.iter
      (fun e ->
        Printf.printf "  t=%6.3f  %-6s %-5s -> %-14s %s\n" e.Audit.at e.Audit.subject
          e.Audit.action
          (Decision.decision_to_string e.Audit.decision)
          (match e.Audit.provenance with
          | Some p -> Provenance.to_string p
          | None -> "(no provenance)"))
      entries;
    print_newline ();
    print_string (Report.attribution services);
    print_newline ();
    print_string (Report.critical_path services);
    print_newline ();
    List.iter
      (fun (name, ok, detail) ->
        Printf.printf "EXPLAIN CHECK %s: %s (%s)\n" name (if ok then "PASS" else "FAIL") detail)
      checks
  end;
  if List.for_all (fun (_, ok, _) -> ok) checks then 0 else 1

(* --- slo ---------------------------------------------------------------------- *)

(* The SLO monitor over two workload runs off the same knobs: one inside
   the serving capacity (objectives met, burn under 1) and one offered
   far beyond it (admission control sheds, the availability budget
   burns).  The checks prove the monitor separates the two regimes. *)
let slo_cmd seed json =
  let module W = Dacs_workload.Workload in
  let module Slo = Dacs_telemetry.Slo in
  let healthy = W.run { W.default with seed } in
  let overloaded =
    W.run { W.default with seed; arrivals = W.Open_loop { rate = 2000.0 }; duration = 2.0 }
  in
  let checks =
    [
      ( "healthy-objectives-met",
        healthy.W.slo.Slo.availability_met && healthy.W.slo.Slo.latency_met,
        Printf.sprintf "availability %.3f%%, latency compliance %.3f%%"
          (healthy.W.slo.Slo.availability *. 100.0)
          (healthy.W.slo.Slo.latency_compliance *. 100.0) );
      ( "overload-violates-availability",
        not overloaded.W.slo.Slo.availability_met,
        Printf.sprintf "availability %.3f%% with %d shed"
          (overloaded.W.slo.Slo.availability *. 100.0)
          overloaded.W.shed );
      ( "overload-burns-budget",
        overloaded.W.slo.Slo.availability_burn > 1.0
        && overloaded.W.slo.Slo.availability_burn > healthy.W.slo.Slo.availability_burn,
        Printf.sprintf "burn %.1fx vs %.1fx" overloaded.W.slo.Slo.availability_burn
          healthy.W.slo.Slo.availability_burn );
    ]
  in
  if json then
    Printf.printf "{\"seed\":%d,\"healthy\":%s,\"overloaded\":%s}\n" seed (W.render_json healthy)
      (W.render_json overloaded)
  else begin
    Printf.printf "slo monitor (seed %d, objective: %.1f%% served, %.0f%% within %gs, %gs window)\n\n"
      seed
      (Slo.default_objective.Slo.availability_target *. 100.0)
      (Slo.default_objective.Slo.latency_target *. 100.0)
      Slo.default_objective.Slo.latency_threshold Slo.default_objective.Slo.window;
    Printf.printf "within capacity (%d decisions):\n" healthy.W.slo.Slo.total;
    print_string (W.render healthy);
    Printf.printf "\noffered 10x capacity (%d decisions):\n" overloaded.W.slo.Slo.total;
    print_string (W.render overloaded);
    print_newline ();
    List.iter
      (fun (name, ok, detail) ->
        Printf.printf "SLO CHECK %s: %s (%s)\n" name (if ok then "PASS" else "FAIL") detail)
      checks
  end;
  if List.for_all (fun (_, ok, _) -> ok) checks then 0 else 1

(* --- offline ------------------------------------------------------------------ *)

(* The offline-mode smoke: the same partitioned workload run with and
   without offline replicas (fail-closed vs served-from-log), then the
   replica-level story end to end — diverge under partition, reject a
   tampered segment, heal, deny-wins replay with conflict surfacing and
   retroactive invalidation.  Exits non-zero when an OFFLINE CHECK
   fails. *)
let offline_cmd seed json =
  let module W = Dacs_workload.Workload in
  let module O = Offline in
  let partition = Some { W.from = 1.0; until = 3.0 } in
  let base = W.run { W.default with W.seed; partition } in
  let off = W.run { W.default with W.seed; partition; offline = true } in
  (* Replica-level: two domains, a shared history, then a partition-era
     race — alpha grants carol and serves an offline Permit from that
     grant while beta, unaware, revokes her. *)
  let now = ref 0.0 in
  let tick () = now := !now +. 1.0 in
  let mk name = O.create ~now:(fun () -> !now) ~key:"dacs-offline-smoke-key" ~author:name () in
  let a = mk "alpha" and b = mk "beta" in
  let pol =
    Policy.make ~id:"offline-demo" ~rule_combining:Combine.First_applicable
      [
        Dacs_policy.Rule.permit
          ~condition:
            (Dacs_policy.Expr.one_of (Dacs_policy.Expr.subject_attr "role") [ "doctor" ])
          "doctors";
        Dacs_policy.Rule.deny "default-deny";
      ]
  in
  tick ();
  O.publish a (Policy.Inline_policy pol);
  tick ();
  O.grant a ~subject:"alice" ~attr:"role" ~value:"doctor";
  let shared_sync = match O.sync_pair a b with Ok _ -> true | Error _ -> false in
  tick ();
  O.grant a ~subject:"carol" ~attr:"role" ~value:"doctor";
  let ctx_carol =
    Dacs_policy.Context.make
      ~subject:[ ("subject-id", Dacs_policy.Value.String "carol") ]
      ~resource:[ ("resource-id", Dacs_policy.Value.String "chart") ]
      ~action:[ ("action-id", Dacs_policy.Value.String "read") ]
      ()
  in
  tick ();
  let offline_permit =
    match O.decide a ctx_carol with
    | Some (r, _) -> r.Decision.decision = Decision.Permit
    | None -> false
  in
  tick ();
  O.revoke b ~subject:"carol" ~attr:"role";
  (* A mutated copy of beta's suffix must be refused outright... *)
  let tampered =
    List.map (fun ev -> { ev with O.at = ev.O.at +. 0.5 }) (O.missing_for b ~frontier:(O.frontier a))
  in
  let known_before = (O.stats a).O.events_known in
  let tamper_rejected, tamper_error =
    match O.admit a tampered with
    | Error e -> ((O.stats a).O.events_known = known_before, O.sync_error_to_string e)
    | Ok n -> (false, Printf.sprintf "admitted %d tampered events" n)
  in
  (* ... while the honest exchange converges both replicas. *)
  let healed = match O.sync_pair a b with Ok _ -> true | Error _ -> false in
  let converged = healed && O.state_digest a = O.state_digest b in
  let deny_wins = not (List.mem ("carol", "role", "doctor") (O.surviving_grants a)) in
  let conflict_surfaced = List.exists (fun c -> c.O.c_subject = "carol") (O.conflicts a) in
  let invalidated = (O.stats a).O.invalidations >= 1 in
  let checks =
    [
      ( "partition-fails-closed-without-offline",
        base.W.errors > 0 && base.W.offline_serves = 0,
        Printf.sprintf "%d fail-closed answers during the partition window" base.W.errors );
      ( "offline-serves-during-partition",
        off.W.offline_serves > 0,
        Printf.sprintf "%d decisions served from the signed log" off.W.offline_serves );
      ( "offline-reduces-fail-closed",
        off.W.errors < base.W.errors,
        Printf.sprintf "errors %d -> %d" base.W.errors off.W.errors );
      ( "conservation",
        W.conservation_ok base && W.conservation_ok off,
        "every offered request answered exactly once in both runs" );
      ( "tampered-segment-rejected",
        tamper_rejected,
        Printf.sprintf "whole segment refused, log untouched (%s)" tamper_error );
      ( "post-heal-convergence",
        shared_sync && converged,
        Printf.sprintf "state digests byte-identical (%s)"
          (String.sub (O.state_digest a) 0 12) );
      ( "deny-wins-retroactively",
        offline_permit && deny_wins && conflict_surfaced && invalidated,
        "offline grant defeated, conflict surfaced, offline Permit invalidated" );
    ]
  in
  if json then
    Printf.printf "{\"seed\":%d,\"baseline\":%s,\"offline\":%s}\n" seed (W.render_json base)
      (W.render_json off)
  else begin
    Printf.printf "offline mode (seed %d): partition window [1s, 3s) of a %.0fs run\n\n" seed
      W.default.W.duration;
    Printf.printf "without offline replicas (fail closed):\n";
    print_string (W.render base);
    Printf.printf "\nwith offline replicas (served from the signed log):\n";
    print_string (W.render off);
    print_newline ();
    List.iter
      (fun (name, ok, detail) ->
        Printf.printf "OFFLINE CHECK %s: %s (%s)\n" name (if ok then "PASS" else "FAIL") detail)
      checks
  end;
  if List.for_all (fun (_, ok, _) -> ok) checks then 0 else 1

(* --- load -------------------------------------------------------------------- *)

(* Drive the deterministic workload engine from the command line: the
   same scenario (same seed) always prints a byte-identical report, so
   two invocations can be compared with cmp(1) — the determinism gate CI
   relies on.  Exits non-zero when a LOAD CHECK fails. *)
let load_cmd seed rate clients think duration peps shards users domains zipf cache_ttl
    cache_entries service_time batch max_inflight queue pdp_max_inflight rule_cost compiled
    churn_period churn_flush json =
  let module W = Dacs_workload.Workload in
  let arrivals =
    if clients > 0 then W.Closed_loop { clients; think_time = think } else W.Open_loop { rate }
  in
  let scenario =
    {
      W.seed;
      domains;
      peps;
      shards;
      users;
      zipf;
      arrivals;
      duration;
      cache_ttl;
      cache_capacity = cache_entries;
      service_time;
      batch;
      admission =
        (if max_inflight > 0 then Some { Pep.max_inflight; max_queue = queue } else None);
      pdp_max_inflight = (if pdp_max_inflight > 0 then Some pdp_max_inflight else None);
      rule_cost;
      compiled;
      partition = None;
      offline = false;
      churn =
        (if churn_period > 0.0 then
           Some { W.churn_period; churn_targeted = not churn_flush }
         else None);
    }
  in
  match W.run scenario with
  | exception Invalid_argument m ->
    prerr_endline ("load: " ^ m);
    2
  | report ->
    let checks =
      [
        ( "conservation",
          W.conservation_ok report,
          Printf.sprintf "completed %d of offered %d; %d+%d+%d+%d accounted" report.W.completed
            report.W.offered report.W.granted report.W.denied report.W.errors report.W.shed );
        ("answered", report.W.completed > 0, Printf.sprintf "%d completions" report.W.completed);
      ]
    in
    if json then print_endline (W.render_json report)
    else begin
      (match arrivals with
      | W.Open_loop { rate } ->
        Printf.printf
          "workload (seed %d): open-loop %.0f req/s for %.1f s, %d PEPs x %d shards, %d users, \
           zipf %.2f, cache ttl %.1f\n\n"
          seed rate duration peps shards users zipf cache_ttl
      | W.Closed_loop { clients; think_time } ->
        Printf.printf
          "workload (seed %d): closed-loop %d clients (think %.3f s) for %.1f s, %d PEPs x %d \
           shards, %d users, zipf %.2f, cache ttl %.1f\n\n"
          seed clients think_time duration peps shards users zipf cache_ttl);
      print_string (W.render report);
      print_newline ();
      List.iter
        (fun (name, ok, detail) ->
          Printf.printf "LOAD CHECK %s: %s (%s)\n" name (if ok then "PASS" else "FAIL") detail)
        checks
    end;
    if List.for_all (fun (_, ok, _) -> ok) checks then 0 else 1

(* --- delta ------------------------------------------------------------------- *)

(* Walk the change-impact analysis over the workload churn family: print
   each publish's region, spot-check its soundness against direct
   evaluation, and show what a targeted invalidation saves an L1 cache
   over the classic full flush.  Exits non-zero when a DELTA CHECK
   fails. *)
let delta_cmd json =
  let module W = Dacs_workload.Workload in
  let module Delta = Dacs_policy.Delta in
  let module Context = Dacs_policy.Context in
  let module Value = Dacs_policy.Value in
  let resources = 4 in
  let root gen = Policy.Inline_policy (W.churned_policy ~resources ~gen) in
  let ctx ~role ~res ~act =
    Context.make
      ~subject:[ ("subject-id", Value.String ("u-" ^ role)); ("role", Value.String role) ]
      ~resource:[ ("resource-id", Value.String res) ]
      ~action:[ ("action-id", Value.String act) ]
      ()
  in
  let ctxs =
    List.concat_map
      (fun role ->
        List.concat_map
          (fun r ->
            List.map (fun act -> ctx ~role ~res:(Printf.sprintf "res%d" r) ~act) [ "read"; "write" ])
          (List.init resources Fun.id))
      [ "doctor"; "nurse"; "admin" ]
  in
  let region01 = Delta.between (Some (root 0)) (Some (root 1)) in
  let region12 = Delta.between (Some (root 1)) (Some (root 2)) in
  (* Soundness spot-check: every context the region does not cover must
     decide identically under both generations. *)
  let sound region old_root new_root =
    List.for_all
      (fun c ->
        Delta.covers region c
        || Policy.evaluate_child c old_root = Policy.evaluate_child c new_root)
      ctxs
  in
  (* Cache demo: warm an L1 over the population, then invalidate with
     the publish's region vs a full flush. *)
  let cache = Decision_cache.create ~max_entries:1024 ~ttl:3600.0 () in
  List.iter
    (fun c ->
      Decision_cache.put cache ~now:0.0 ~key:(Decision_cache.request_key c)
        (Policy.evaluate_child c (root 1)))
    ctxs;
  let warm = Decision_cache.size cache in
  let dropped = Decision_cache.invalidate_region cache region12 in
  let checks =
    [
      ("no-op-publish-empty", Delta.is_empty (Delta.between (Some (root 1)) (Some (root 1))),
        "publishing an identical policy yields the empty region");
      ( "first-publish-unbounded",
        Delta.is_unbounded (Delta.between None (Some (root 0))),
        "publishing over no previous policy degrades to the full flush" );
      ( "rule-add-covered",
        Delta.covers region01 (ctx ~role:"admin" ~res:"res1" ~act:"read"),
        "the added admins-read rule's requests fall inside the region" );
      ( "soundness-sample",
        sound region01 (root 0) (root 1) && sound region12 (root 1) (root 2),
        "every context outside the region decides identically pre/post publish" );
      ( "targeted-drops-fewer",
        dropped > 0 && dropped < warm,
        Printf.sprintf "region dropped %d of %d warm entries (full flush drops all)" dropped warm
      );
    ]
  in
  if json then begin
    let fields =
      List.map (fun (name, ok, _) -> Printf.sprintf "\"%s\":%b" (json_escape name) ok) checks
    in
    Printf.printf
      "{\"region_0_1\":\"%s\",\"region_1_2\":\"%s\",\"zones_1_2\":%d,\"warm\":%d,\"dropped\":%d,%s}\n"
      (json_escape (Delta.to_string region01))
      (json_escape (Delta.to_string region12))
      (Delta.zone_count region12) warm dropped (String.concat "," fields)
  end
  else begin
    Printf.printf "change-impact regions over the churn family (%d resources):\n\n" resources;
    Printf.printf "publish gen0 -> gen1 (adds admins-read-churn on res1):\n  %s\n\n"
      (Delta.to_string region01);
    Printf.printf "publish gen1 -> gen2 (retargets it to res2):\n  %s\n\n"
      (Delta.to_string region12);
    Printf.printf "targeted invalidation: dropped %d of %d warm L1 entries\n\n" dropped warm;
    List.iter
      (fun (name, ok, detail) ->
        Printf.printf "DELTA CHECK %s: %s (%s)\n" name (if ok then "PASS" else "FAIL") detail)
      checks
  end;
  if List.for_all (fun (_, ok, _) -> ok) checks then 0 else 1

(* --- cmdliner wiring ------------------------------------------------------------ *)

open Cmdliner

let policy_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"POLICY" ~doc:"Policy XML document.")

let request_arg =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"REQUEST" ~doc:"Request XML document.")

let policies_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"POLICY" ~doc:"Policy XML documents.")

let validate_t =
  Cmd.v
    (Cmd.info "validate" ~doc:"Statically validate a policy document")
    Term.(const validate_cmd $ policy_arg)

let explain_flag =
  Arg.(value & flag & info [ "explain" ] ~doc:"Print the full evaluation trace before the decision.")

let evaluate_t =
  Cmd.v
    (Cmd.info "evaluate" ~doc:"Evaluate a request against a policy")
    Term.(const evaluate_cmd $ policy_arg $ request_arg $ explain_flag)

let conflicts_t =
  Cmd.v
    (Cmd.info "conflicts" ~doc:"Find modality conflicts across policies")
    Term.(const conflicts_cmd $ policies_arg)

let identity_flag =
  Arg.(value & flag & info [ "identity" ] ~doc:"Emit the identity-based (ACL) encoding instead of the role-based one.")

let rbac_compile_t =
  Cmd.v
    (Cmd.info "rbac-compile" ~doc:"Compile a textual RBAC model into a policy document")
    Term.(const rbac_compile_cmd $ policy_arg $ identity_flag)

let demo_t =
  Cmd.v
    (Cmd.info "demo" ~doc:"Run a built-in end-to-end authorisation scenario")
    Term.(const demo_cmd $ const ())

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Fault-schedule seed (deterministic).")

let json_flag =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON instead of text.")

let chaos_t =
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Replay the demo scenario under a random fault schedule with resilient enforcement")
    Term.(const chaos_cmd $ seed_arg $ json_flag)

let sim_seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed (deterministic).")

let trace_t =
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one pull-flow authorisation request with tracing on and render its span tree \
          (PEP -> PDP -> PIP/PAP hops with virtual-time latencies)")
    Term.(const trace_cmd $ sim_seed_arg)

let metrics_t =
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run one pull-flow authorisation request and dump the metrics registry in Prometheus \
          text exposition format")
    Term.(const metrics_cmd $ sim_seed_arg $ json_flag)

let shards_arg =
  Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N" ~doc:"Number of PDP replicas in the tier.")

let batch_arg =
  Arg.(value & opt int 8 & info [ "batch" ] ~docv:"K" ~doc:"Maximum queries coalesced per RPC frame.")

let requests_arg =
  Arg.(value & opt int 24 & info [ "requests" ] ~docv:"R" ~doc:"Requests per burst (two bursts are sent).")

let tier_t =
  Cmd.v
    (Cmd.info "tier"
       ~doc:
         "Run a burst of authorisation requests through a sharded, batched PDP tier, crash a \
          shard, and run the burst again — printing per-shard load and failover counts")
    Term.(const tier_cmd $ shards_arg $ batch_arg $ sim_seed_arg $ requests_arg $ json_flag)

let cache_t =
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "Walk one workload down the decision-cache ladder (L1, shared L2, PDP attribute cache \
          with batched PIP fetches, single-flight coalescing), then run an invalidation round \
          and report per-level hit counts")
    Term.(const cache_cmd $ sim_seed_arg $ json_flag)

let rate_arg =
  Arg.(
    value
    & opt float 200.0
    & info [ "rate" ] ~docv:"R" ~doc:"Open-loop Poisson arrival rate (requests per virtual second).")

let clients_arg =
  Arg.(
    value
    & opt int 0
    & info [ "clients" ] ~docv:"N"
        ~doc:"Switch to closed-loop arrivals with N looping clients (0 = open loop).")

let think_arg =
  Arg.(
    value
    & opt float 0.01
    & info [ "think" ] ~docv:"S" ~doc:"Closed-loop think time between a reply and the next request.")

let duration_arg =
  Arg.(
    value
    & opt float 5.0
    & info [ "duration" ] ~docv:"S" ~doc:"Virtual seconds during which traffic is offered.")

let peps_arg =
  Arg.(value & opt int 4 & info [ "peps" ] ~docv:"N" ~doc:"Enforcement points (one resource each).")

let users_arg =
  Arg.(value & opt int 200 & info [ "users" ] ~docv:"N" ~doc:"Subject population size.")

let domains_arg =
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc:"Domains the PEPs are spread across.")

let zipf_arg =
  Arg.(
    value
    & opt float 1.1
    & info [ "zipf" ] ~docv:"S" ~doc:"Zipf skew for user and resource popularity (0 = uniform).")

let cache_ttl_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "cache-ttl" ] ~docv:"S" ~doc:"L1 decision-cache TTL in seconds (0 disables caching).")

let cache_entries_arg =
  Arg.(
    value
    & opt int 1024
    & info [ "cache-entries" ] ~docv:"N"
        ~doc:"L1 decision-cache capacity in entries (the warm working-set bound).")

let service_time_arg =
  Arg.(
    value
    & opt float 0.004
    & info [ "service-time" ] ~docv:"S" ~doc:"Virtual seconds each PDP evaluation occupies a shard.")

let max_inflight_arg =
  Arg.(
    value
    & opt int 32
    & info [ "max-inflight" ] ~docv:"N"
        ~doc:"PEP admission bound: concurrent decision descents (0 = unbounded).")

let queue_arg =
  Arg.(
    value
    & opt int 32
    & info [ "queue" ] ~docv:"N" ~doc:"PEP admission queue depth behind the in-flight bound.")

let pdp_inflight_arg =
  Arg.(
    value
    & opt int 64
    & info [ "pdp-max-inflight" ] ~docv:"N"
        ~doc:"Per-shard max-inflight bound on the PDP FIFO (0 = unbounded).")

let rule_cost_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "rule-cost" ] ~docv:"S"
        ~doc:
          "Extra virtual seconds of shard occupancy per rule the evaluation scans (0 keeps the \
           flat service-time model).")

let compiled_flag =
  Arg.(
    value
    & flag
    & info [ "compiled" ]
        ~doc:
          "Evaluate through the compiled (target-indexed) policy form instead of the interpreter; \
           decisions are identical, shard occupancy scales with dispatched candidates instead of \
           the whole rule list.")

let churn_period_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "churn-period" ] ~docv:"S"
        ~doc:
          "Publish a new policy generation every S virtual seconds (0 = static policy); each \
           publish runs a targeted invalidation round from its change-impact region.")

let churn_flush_flag =
  Arg.(
    value
    & flag
    & info [ "churn-flush" ]
        ~doc:
          "Ablation arm for --churn-period: invalidate with the unbounded region (the legacy \
           VO-wide full flush) instead of the computed change-impact region.")

let explain_t =
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Walk one request population down every rung of the decision ladder (live, coalesced, \
          shared L2, L1, bounded-stale, fail-closed) and print each decision's provenance record \
          from the audit log, the latency attribution, and the critical path")
    Term.(const explain_cmd $ sim_seed_arg $ json_flag)

let slo_t =
  Cmd.v
    (Cmd.info "slo"
       ~doc:
         "Run the workload engine inside and far beyond its serving capacity and report the SLO \
          monitor's availability/latency objectives and error-budget burn rates for both regimes")
    Term.(const slo_cmd $ sim_seed_arg $ json_flag)

let offline_t =
  Cmd.v
    (Cmd.info "offline"
       ~doc:
         "Run the partition-window workload with and without offline replicas, then the \
          replica-level diverge/tamper/heal story: signed-log serving under partition, \
          tampered-segment rejection, deny-wins convergence with conflict surfacing and \
          retroactive invalidation.  Exits non-zero when an OFFLINE CHECK fails")
    Term.(const offline_cmd $ sim_seed_arg $ json_flag)

let load_t =
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Drive the deterministic workload engine: Zipf-skewed traffic against a sharded, \
          admission-controlled serving path on the virtual clock.  Same seed, byte-identical \
          report.  Exits non-zero when a LOAD CHECK fails")
    Term.(
      const load_cmd $ sim_seed_arg $ rate_arg $ clients_arg $ think_arg $ duration_arg $ peps_arg
      $ shards_arg $ users_arg $ domains_arg $ zipf_arg $ cache_ttl_arg $ cache_entries_arg
      $ service_time_arg $ batch_arg $ max_inflight_arg $ queue_arg $ pdp_inflight_arg
      $ rule_cost_arg $ compiled_flag $ churn_period_arg $ churn_flush_flag $ json_flag)

let delta_t =
  Cmd.v
    (Cmd.info "delta"
       ~doc:
         "Analyse policy change impact: compute the region of decisions a publish can affect \
          (Delta.between over consecutive churn generations), spot-check its soundness against \
          direct evaluation, and show what targeted cache invalidation saves over a full flush. \
          Exits non-zero when a DELTA CHECK fails")
    Term.(const delta_cmd $ json_flag)

let main =
  Cmd.group
    (Cmd.info "dacs" ~version:"1.0.0"
       ~doc:"Dependable access control for multi-domain computing environments")
    [
      validate_t;
      evaluate_t;
      conflicts_t;
      rbac_compile_t;
      demo_t;
      chaos_t;
      trace_t;
      metrics_t;
      tier_t;
      cache_t;
      load_t;
      delta_t;
      explain_t;
      slo_t;
      offline_t;
    ]

let () = exit (Cmd.eval' main)
