lib/policy/value.ml: Format List Printf
