module Xml = Dacs_xml.Xml

let ( let* ) = Result.bind

let rec collect_results f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = collect_results f rest in
    Ok (y :: ys)

let attr_or_error node name =
  match Xml.attr node name with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "<%s> is missing attribute %s" (Xml.tag node) name)

let value_of ~data_type ~text =
  match Value.data_type_of_name data_type with
  | None -> Error (Printf.sprintf "unknown data type %s" data_type)
  | Some dt -> Value.of_string dt text

(* --- expressions ------------------------------------------------------- *)

let rec expr_to_xml = function
  | Expr.Const v ->
    Xml.element "AttributeValue"
      ~attrs:[ ("DataType", Value.type_name (Value.type_of v)) ]
      ~children:[ Xml.text (Value.to_string v) ]
  | Expr.Designator d ->
    Xml.element "AttributeDesignator"
      ~attrs:
        [
          ("Category", Context.category_name d.Expr.category);
          ("AttributeId", d.Expr.attribute_id);
          ("MustBePresent", string_of_bool d.Expr.must_be_present);
        ]
  | Expr.Function_ref f -> Xml.element "Function" ~attrs:[ ("FunctionId", f) ]
  | Expr.Variable_ref v -> Xml.element "VariableReference" ~attrs:[ ("VariableId", v) ]
  | Expr.Apply (name, args) ->
    Xml.element "Apply" ~attrs:[ ("FunctionId", name) ] ~children:(List.map expr_to_xml args)

let rec expr_of_xml node =
  match Xml.local_name (Xml.tag node) with
  | "AttributeValue" ->
    let* data_type = attr_or_error node "DataType" in
    let* v = value_of ~data_type ~text:(Xml.text_content node) in
    Ok (Expr.Const v)
  | "AttributeDesignator" ->
    let* category_name = attr_or_error node "Category" in
    let* attribute_id = attr_or_error node "AttributeId" in
    let must_be_present = Xml.attr node "MustBePresent" = Some "true" in
    (match Context.category_of_name category_name with
    | None -> Error (Printf.sprintf "unknown category %s" category_name)
    | Some category -> Ok (Expr.Designator { Expr.category; attribute_id; must_be_present }))
  | "Function" ->
    let* f = attr_or_error node "FunctionId" in
    Ok (Expr.Function_ref f)
  | "VariableReference" ->
    let* v = attr_or_error node "VariableId" in
    Ok (Expr.Variable_ref v)
  | "Apply" ->
    let* name = attr_or_error node "FunctionId" in
    let children = List.filter Xml.is_element (Xml.children node) in
    let* args = collect_results expr_of_xml children in
    Ok (Expr.Apply (name, args))
  | other -> Error (Printf.sprintf "unexpected expression element <%s>" other)

(* --- targets ------------------------------------------------------------- *)

let section_names =
  [
    (Context.Subject, ("Subjects", "Subject", "SubjectMatch"));
    (Context.Resource, ("Resources", "Resource", "ResourceMatch"));
    (Context.Action, ("Actions", "Action", "ActionMatch"));
    (Context.Environment, ("Environments", "Environment", "EnvironmentMatch"));
  ]

let match_to_xml m =
  let _, _, match_name = List.assoc m.Target.category section_names in
  Xml.element match_name
    ~attrs:
      [
        ("MatchId", m.Target.fn);
        ("AttributeId", m.Target.attribute_id);
        ("DataType", Value.type_name (Value.type_of m.Target.value));
      ]
    ~children:[ Xml.text (Value.to_string m.Target.value) ]

let section_to_xml category section =
  let plural, singular, _ = List.assoc category section_names in
  match section with
  | [] -> None
  | clauses ->
    Some
      (Xml.element plural
         ~children:
           (List.map
              (fun clause -> Xml.element singular ~children:(List.map match_to_xml clause))
              clauses))

let target_to_xml t =
  let sections =
    List.filter_map
      (fun (category, picker) -> section_to_xml category (picker t))
      [
        (Context.Subject, fun t -> t.Target.subjects);
        (Context.Resource, fun t -> t.Target.resources);
        (Context.Action, fun t -> t.Target.actions);
        (Context.Environment, fun t -> t.Target.environments);
      ]
  in
  Xml.element "Target" ~children:sections

let match_of_xml category node =
  let* fn = attr_or_error node "MatchId" in
  let* attribute_id = attr_or_error node "AttributeId" in
  let* data_type = attr_or_error node "DataType" in
  let* value = value_of ~data_type ~text:(Xml.text_content node) in
  Ok { Target.fn; value; category; attribute_id }

let section_of_xml category target_node =
  let plural, singular, _ = List.assoc category section_names in
  match Xml.find_child target_node plural with
  | None -> Ok []
  | Some section_node ->
    collect_results
      (fun clause_node ->
        collect_results (match_of_xml category) (List.filter Xml.is_element (Xml.children clause_node)))
      (Xml.find_children section_node singular)

let target_of_xml node =
  if Xml.local_name (Xml.tag node) <> "Target" then
    Error (Printf.sprintf "expected <Target>, got <%s>" (Xml.tag node))
  else begin
    let* subjects = section_of_xml Context.Subject node in
    let* resources = section_of_xml Context.Resource node in
    let* actions = section_of_xml Context.Action node in
    let* environments = section_of_xml Context.Environment node in
    Ok { Target.subjects; resources; actions; environments }
  end

let target_child node =
  match Xml.find_child node "Target" with
  | None -> Ok Target.any
  | Some t -> target_of_xml t

(* --- obligations ---------------------------------------------------------- *)

let effect_to_string = function Obligation.Permit -> "Permit" | Obligation.Deny -> "Deny"

let effect_of_string = function
  | "Permit" -> Ok Obligation.Permit
  | "Deny" -> Ok Obligation.Deny
  | other -> Error (Printf.sprintf "unknown effect %s" other)

let obligation_to_xml o =
  Xml.element "Obligation"
    ~attrs:[ ("ObligationId", o.Obligation.id); ("FulfillOn", effect_to_string o.Obligation.fulfill_on) ]
    ~children:
      (List.map
         (fun (k, v) ->
           Xml.element "AttributeAssignment"
             ~attrs:[ ("AttributeId", k); ("DataType", Value.type_name (Value.type_of v)) ]
             ~children:[ Xml.text (Value.to_string v) ])
         o.Obligation.parameters)

let obligation_of_xml node =
  let* id = attr_or_error node "ObligationId" in
  let* fulfill_on_s = attr_or_error node "FulfillOn" in
  let* fulfill_on = effect_of_string fulfill_on_s in
  let* parameters =
    collect_results
      (fun a ->
        let* k = attr_or_error a "AttributeId" in
        let* data_type = attr_or_error a "DataType" in
        let* v = value_of ~data_type ~text:(Xml.text_content a) in
        Ok (k, v))
      (Xml.find_children node "AttributeAssignment")
  in
  Ok { Obligation.id; fulfill_on; parameters }

let obligations_to_xml = function
  | [] -> None
  | obligations -> Some (Xml.element "Obligations" ~children:(List.map obligation_to_xml obligations))

let obligations_child node =
  match Xml.find_child node "Obligations" with
  | None -> Ok []
  | Some obs -> collect_results obligation_of_xml (Xml.find_children obs "Obligation")

(* --- rules ------------------------------------------------------------------ *)

let rule_to_xml (r : Rule.t) =
  let effect = match r.Rule.effect with Rule.Permit -> "Permit" | Rule.Deny -> "Deny" in
  let children =
    (if r.Rule.description = "" then []
     else [ Xml.element "Description" ~children:[ Xml.text r.Rule.description ] ])
    @ (if r.Rule.target = Target.any then [] else [ target_to_xml r.Rule.target ])
    @
    match r.Rule.condition with
    | None -> []
    | Some c -> [ Xml.element "Condition" ~children:[ expr_to_xml c ] ]
  in
  Xml.element "Rule" ~attrs:[ ("RuleId", r.Rule.id); ("Effect", effect) ] ~children

let rule_of_xml node =
  let* id = attr_or_error node "RuleId" in
  let* effect_s = attr_or_error node "Effect" in
  let* effect =
    match effect_s with
    | "Permit" -> Ok Rule.Permit
    | "Deny" -> Ok Rule.Deny
    | other -> Error (Printf.sprintf "unknown effect %s" other)
  in
  let description =
    Option.value (Option.map Xml.text_content (Xml.find_child node "Description")) ~default:""
  in
  let* target = target_child node in
  let* condition =
    match Xml.find_child node "Condition" with
    | None -> Ok None
    | Some c -> (
      match List.filter Xml.is_element (Xml.children c) with
      | [ e ] ->
        let* expr = expr_of_xml e in
        Ok (Some expr)
      | _ -> Error "Condition must contain exactly one expression")
  in
  Ok { Rule.id; description; effect; target; condition }

(* --- policies ---------------------------------------------------------------- *)

let combining_of node attr_name =
  let* s = attr_or_error node attr_name in
  match Combine.of_name s with
  | Some a -> Ok a
  | None -> Error (Printf.sprintf "unknown combining algorithm %s" s)

let policy_to_xml (p : Policy.t) =
  let children =
    (if p.Policy.description = "" then []
     else [ Xml.element "Description" ~children:[ Xml.text p.Policy.description ] ])
    @ (if p.Policy.target = Target.any then [] else [ target_to_xml p.Policy.target ])
    @ List.map
        (fun (name, e) ->
          Xml.element "VariableDefinition" ~attrs:[ ("VariableId", name) ]
            ~children:[ expr_to_xml e ])
        p.Policy.variables
    @ List.map rule_to_xml p.Policy.rules
    @ Option.to_list (obligations_to_xml p.Policy.obligations)
  in
  Xml.element "Policy"
    ~attrs:
      ([
         ("PolicyId", p.Policy.id);
         ("Version", string_of_int p.Policy.version);
         ("RuleCombiningAlgId", Combine.name p.Policy.rule_combining);
       ]
      @ if p.Policy.issuer = "" then [] else [ ("Issuer", p.Policy.issuer) ])
    ~children

let policy_of_xml node =
  let* id = attr_or_error node "PolicyId" in
  let version =
    Option.value (Option.bind (Xml.attr node "Version") int_of_string_opt) ~default:1
  in
  let issuer = Option.value (Xml.attr node "Issuer") ~default:"" in
  let* rule_combining = combining_of node "RuleCombiningAlgId" in
  let description =
    Option.value (Option.map Xml.text_content (Xml.find_child node "Description")) ~default:""
  in
  let* target = target_child node in
  let* variables =
    collect_results
      (fun v ->
        let* name = attr_or_error v "VariableId" in
        match List.filter Xml.is_element (Xml.children v) with
        | [ e ] ->
          let* expr = expr_of_xml e in
          Ok (name, expr)
        | _ -> Error "VariableDefinition must contain exactly one expression")
      (Xml.find_children node "VariableDefinition")
  in
  let* rules = collect_results rule_of_xml (Xml.find_children node "Rule") in
  let* obligations = obligations_child node in
  Ok
    { Policy.id; version; description; issuer; target; variables; rules; rule_combining; obligations }

let rec set_to_xml (s : Policy.set) =
  let children =
    (if s.Policy.set_description = "" then []
     else [ Xml.element "Description" ~children:[ Xml.text s.Policy.set_description ] ])
    @ (if s.Policy.set_target = Target.any then [] else [ target_to_xml s.Policy.set_target ])
    @ List.map child_to_xml s.Policy.children
    @ Option.to_list (obligations_to_xml s.Policy.set_obligations)
  in
  Xml.element "PolicySet"
    ~attrs:
      [
        ("PolicySetId", s.Policy.set_id);
        ("Version", string_of_int s.Policy.set_version);
        ("PolicyCombiningAlgId", Combine.name s.Policy.policy_combining);
      ]
    ~children

and child_to_xml = function
  | Policy.Inline_policy p -> policy_to_xml p
  | Policy.Inline_set s -> set_to_xml s
  | Policy.Policy_ref id -> Xml.element "PolicyIdReference" ~children:[ Xml.text id ]

let rec set_of_xml node =
  let* set_id = attr_or_error node "PolicySetId" in
  let set_version =
    Option.value (Option.bind (Xml.attr node "Version") int_of_string_opt) ~default:1
  in
  let* policy_combining = combining_of node "PolicyCombiningAlgId" in
  let set_description =
    Option.value (Option.map Xml.text_content (Xml.find_child node "Description")) ~default:""
  in
  let* set_target = target_child node in
  let child_nodes =
    List.filter
      (fun n ->
        match Xml.local_name (Xml.tag n) with
        | "Policy" | "PolicySet" | "PolicyIdReference" -> true
        | _ -> false)
      (List.filter Xml.is_element (Xml.children node))
  in
  let* children = collect_results child_of_xml child_nodes in
  let* set_obligations = obligations_child node in
  Ok
    {
      Policy.set_id;
      set_version;
      set_description;
      set_target;
      children;
      policy_combining;
      set_obligations;
    }

and child_of_xml node =
  match Xml.local_name (Xml.tag node) with
  | "Policy" ->
    let* p = policy_of_xml node in
    Ok (Policy.Inline_policy p)
  | "PolicySet" ->
    let* s = set_of_xml node in
    Ok (Policy.Inline_set s)
  | "PolicyIdReference" -> Ok (Policy.Policy_ref (Xml.text_content node))
  | other -> Error (Printf.sprintf "expected a policy element, got <%s>" other)

(* --- decisions ------------------------------------------------------------------ *)

let result_to_xml (r : Decision.result) =
  let status =
    match r.Decision.decision with
    | Decision.Indeterminate m ->
      [ Xml.element "Status" ~children:[ Xml.text m ] ]
    | Decision.Permit | Decision.Deny | Decision.Not_applicable -> []
  in
  Xml.element "Response"
    ~children:
      [
        Xml.element "Result"
          ~children:
            ([ Xml.element "Decision" ~children:[ Xml.text (Decision.decision_to_string r.Decision.decision) ] ]
            @ status
            @ Option.to_list (obligations_to_xml r.Decision.obligations));
      ]

let result_of_xml node =
  match Xml.find_child node "Result" with
  | None -> Error "Response has no Result"
  | Some result_node -> (
    match Xml.find_child result_node "Decision" with
    | None -> Error "Result has no Decision"
    | Some d -> (
      let* obligations = obligations_child result_node in
      match Decision.decision_of_string (Xml.text_content d) with
      | Some (Decision.Indeterminate _) ->
        let message =
          Option.value (Option.map Xml.text_content (Xml.find_child result_node "Status")) ~default:""
        in
        Ok { Decision.decision = Decision.Indeterminate message; obligations }
      | Some decision -> Ok { Decision.decision; obligations }
      | None -> Error (Printf.sprintf "unknown decision %s" (Xml.text_content d))))

(* --- string round-trips ------------------------------------------------------------ *)

let parse_then f s =
  match Xml.of_string_opt s with
  | None -> Error "malformed XML"
  | Some node -> f node

let child_to_string c = Xml.to_string (child_to_xml c)
let child_of_string = parse_then child_of_xml
let result_to_string r = Xml.to_string (result_to_xml r)
let result_of_string = parse_then result_of_xml
let request_to_string ctx = Xml.to_string (Context.to_xml ctx)
let request_of_string = parse_then Context.of_xml
