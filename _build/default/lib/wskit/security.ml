module Xml = Dacs_xml.Xml
module Cert = Dacs_crypto.Cert
module Rsa = Dacs_crypto.Rsa

type error =
  | Not_signed
  | Invalid_signature
  | Untrusted_signer of string
  | Not_encrypted
  | Decrypt_failed
  | Malformed of string

let error_to_string = function
  | Not_signed -> "envelope is not signed"
  | Invalid_signature -> "envelope signature does not verify"
  | Untrusted_signer s -> Printf.sprintf "signer %s is not trusted" s
  | Not_encrypted -> "envelope body is not encrypted"
  | Decrypt_failed -> "body decryption failed"
  | Malformed m -> Printf.sprintf "malformed security header: %s" m

let security_header = "wsse:Security"

let body_payload (e : Soap.envelope) = Xml.canonical_string e.Soap.body

let sign ~key ~cert (e : Soap.envelope) =
  let signature = Rsa.sign key (body_payload e) in
  let header =
    Xml.element security_header
      ~children:
        [
          Xml.element "BinarySecurityToken" ~children:[ Cert.to_xml cert ];
          Xml.element "SignatureValue"
            ~children:[ Xml.text (Dacs_crypto.Encoding.base64_encode signature) ];
        ]
  in
  (* Replace any existing security header. *)
  let others =
    List.filter (fun h -> Xml.local_name (Xml.tag h) <> "Security") e.Soap.headers
  in
  { e with Soap.headers = others @ [ header ] }

let find_security (e : Soap.envelope) =
  List.find_opt (fun h -> Xml.local_name (Xml.tag h) = "Security") e.Soap.headers

let is_signed e =
  match find_security e with
  | None -> false
  | Some h -> Xml.find_child h "SignatureValue" <> None

let trusted_signer ~trust ~now cert =
  if Cert.Trust_store.mem trust cert then Cert.valid_at cert now
  else begin
    (* One-level chain: the certificate's issuer must be a trusted root. *)
    let root =
      List.find_opt (fun r -> r.Cert.subject = cert.Cert.issuer) (Cert.Trust_store.roots trust)
    in
    match root with
    | None -> false
    | Some root -> Cert.Trust_store.verify_chain trust ~now [ cert; root ] = Ok ()
  end

let verify ~trust ~now (e : Soap.envelope) =
  match find_security e with
  | None -> Error Not_signed
  | Some h -> (
    match (Xml.find_child h "BinarySecurityToken", Xml.find_child h "SignatureValue") with
    | Some token, Some sig_node -> (
      match Option.bind (Xml.find_child token "Certificate") Cert.of_xml with
      | None -> Error (Malformed "security token does not contain a certificate")
      | Some cert -> (
        let signature =
          try Some (Dacs_crypto.Encoding.base64_decode (Xml.text_content sig_node))
          with Invalid_argument _ -> None
        in
        match signature with
        | None -> Error (Malformed "signature is not valid base64")
        | Some signature ->
          if not (trusted_signer ~trust ~now cert) then Error (Untrusted_signer cert.Cert.subject)
          else if Rsa.verify cert.Cert.public_key (body_payload e) ~signature then Ok cert
          else Error Invalid_signature))
    | _ -> Error (Malformed "security header lacks token or signature"))

let encrypt_body rng ~key (e : Soap.envelope) =
  let plain = Xml.to_string e.Soap.body in
  let cipher = Dacs_crypto.Stream_cipher.encrypt rng ~key plain in
  {
    e with
    Soap.body =
      Xml.element "EncryptedData"
        ~children:[ Xml.text (Dacs_crypto.Encoding.base64_encode cipher) ];
  }

let is_encrypted (e : Soap.envelope) = Xml.local_name (Xml.tag e.Soap.body) = "EncryptedData"

let decrypt_body ~key (e : Soap.envelope) =
  if not (is_encrypted e) then Error Not_encrypted
  else begin
    let cipher =
      try Some (Dacs_crypto.Encoding.base64_decode (Xml.text_content e.Soap.body))
      with Invalid_argument _ -> None
    in
    match Option.bind cipher (fun c -> Dacs_crypto.Stream_cipher.decrypt ~key c) with
    | None -> Error Decrypt_failed
    | Some plain -> (
      match Xml.of_string_opt plain with
      | Some body -> Ok { e with Soap.body = body }
      | None -> Error Decrypt_failed)
  end
