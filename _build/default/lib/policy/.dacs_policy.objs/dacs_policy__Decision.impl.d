lib/policy/decision.ml: Format Obligation
