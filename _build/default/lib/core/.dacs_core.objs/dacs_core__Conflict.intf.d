lib/core/conflict.mli: Dacs_policy
