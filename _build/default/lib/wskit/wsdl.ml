module Xml = Dacs_xml.Xml

type operation = {
  op_name : string;
  input : string;
  output : string;
}

type assertion =
  | Requires_subject_attribute of string
  | Requires_capability_from of string
  | Requires_signed_messages
  | Responses_encrypted

let assertion_to_string = function
  | Requires_subject_attribute a -> Printf.sprintf "requires subject attribute %s" a
  | Requires_capability_from i -> Printf.sprintf "requires a capability issued by %s" i
  | Requires_signed_messages -> "requires signed messages"
  | Responses_encrypted -> "responses are encrypted"

type t = {
  service : string;
  endpoint : Dacs_net.Net.node_id;
  operations : operation list;
  assertions : assertion list;
}

let assertion_to_xml = function
  | Requires_subject_attribute a ->
    Xml.element "RequiresSubjectAttribute" ~attrs:[ ("AttributeId", a) ]
  | Requires_capability_from i -> Xml.element "RequiresCapability" ~attrs:[ ("Issuer", i) ]
  | Requires_signed_messages -> Xml.element "RequiresSignedMessages"
  | Responses_encrypted -> Xml.element "ResponsesEncrypted"

let assertion_of_xml node =
  match Xml.local_name (Xml.tag node) with
  | "RequiresSubjectAttribute" -> (
    match Xml.attr node "AttributeId" with
    | Some a -> Ok (Requires_subject_attribute a)
    | None -> Error "RequiresSubjectAttribute lacks AttributeId")
  | "RequiresCapability" -> (
    match Xml.attr node "Issuer" with
    | Some i -> Ok (Requires_capability_from i)
    | None -> Error "RequiresCapability lacks Issuer")
  | "RequiresSignedMessages" -> Ok Requires_signed_messages
  | "ResponsesEncrypted" -> Ok Responses_encrypted
  | other -> Error (Printf.sprintf "unknown policy assertion <%s>" other)

let to_xml t =
  Xml.element "ServiceDescription"
    ~attrs:[ ("Service", t.service); ("Endpoint", t.endpoint) ]
    ~children:
      [
        Xml.element "Operations"
          ~children:
            (List.map
               (fun o ->
                 Xml.element "Operation"
                   ~attrs:[ ("Name", o.op_name); ("Input", o.input); ("Output", o.output) ])
               t.operations);
        Xml.element "PolicyAssertions" ~children:(List.map assertion_to_xml t.assertions);
      ]

let ( let* ) = Result.bind

let of_xml node =
  if Xml.local_name (Xml.tag node) <> "ServiceDescription" then
    Error "expected a ServiceDescription"
  else begin
    match (Xml.attr node "Service", Xml.attr node "Endpoint") with
    | Some service, Some endpoint ->
      let rec operations acc = function
        | [] -> Ok (List.rev acc)
        | o :: rest -> (
          match (Xml.attr o "Name", Xml.attr o "Input", Xml.attr o "Output") with
          | Some op_name, Some input, Some output ->
            operations ({ op_name; input; output } :: acc) rest
          | _ -> Error "Operation needs Name, Input and Output")
      in
      let* operations =
        match Xml.find_child node "Operations" with
        | None -> Ok []
        | Some ops -> operations [] (Xml.find_children ops "Operation")
      in
      let rec assertions acc = function
        | [] -> Ok (List.rev acc)
        | a :: rest ->
          let* parsed = assertion_of_xml a in
          assertions (parsed :: acc) rest
      in
      let* assertions =
        match Xml.find_child node "PolicyAssertions" with
        | None -> Ok []
        | Some pa -> assertions [] (List.filter Xml.is_element (Xml.children pa))
      in
      Ok { service; endpoint; operations; assertions }
    | _ -> Error "ServiceDescription needs Service and Endpoint"
  end

let unmet t ~subject_attributes ~capabilities_from ~will_sign =
  List.filter
    (fun a ->
      match a with
      | Requires_subject_attribute attr -> not (List.mem attr subject_attributes)
      | Requires_capability_from issuer -> not (List.mem issuer capabilities_from)
      | Requires_signed_messages -> not will_sign
      | Responses_encrypted -> false)
    t.assertions

(* --- registry ----------------------------------------------------------- *)

type registry = {
  node : Dacs_net.Net.node_id;
  descriptions : (string, t) Hashtbl.t;
}

let registry_node r = r.node

let lookup r ~service = Hashtbl.find_opt r.descriptions service

let publish_local r d = Hashtbl.replace r.descriptions d.service d

let create_registry services ~node =
  let r = { node; descriptions = Hashtbl.create 16 } in
  Service.serve services ~node ~service:"wsdl-publish" (fun ~caller ~headers:_ body reply ->
      match of_xml body with
      | Error e -> reply (Soap.fault_body { Soap.code = "soap:Sender"; reason = e })
      | Ok d ->
        if d.endpoint <> caller then
          reply
            (Soap.fault_body
               {
                 Soap.code = "soap:Sender";
                 reason = "services may only publish their own descriptions";
               })
        else begin
          publish_local r d;
          reply (Dacs_xml.Xml.element "PublishAck")
        end);
  Service.serve services ~node ~service:"wsdl-query" (fun ~caller:_ ~headers:_ body reply ->
      match Xml.attr body "Service" with
      | None ->
        reply (Soap.fault_body { Soap.code = "soap:Sender"; reason = "query names no service" })
      | Some service -> (
        match lookup r ~service with
        | Some d -> reply (to_xml d)
        | None ->
          reply
            (Soap.fault_body { Soap.code = "soap:Receiver"; reason = "unknown service" })));
  r

let fetch services ~registry ~caller ~service k =
  Service.call services ~src:caller ~dst:registry ~service:"wsdl-query"
    (Xml.element "DescriptionQuery" ~attrs:[ ("Service", service) ])
    (fun response ->
      match response with
      | Error e -> k (Error (Service.error_to_string e))
      | Ok body -> k (of_xml body))
