(** Identity Provider: issues signed attribute assertions for its domain's
    users (§3.1 — subject credentials come from IdPs in separate
    administrative domains). *)

type t

val create :
  Dacs_ws.Service.t ->
  node:Dacs_net.Net.node_id ->
  issuer:string ->
  keypair:Dacs_crypto.Rsa.keypair ->
  ?validity:float ->
  unit ->
  t
(** Registers ["attribute-assertion"]: body
    [<AttributeAssertionRequest Subject="u"/>] → signed assertion with the
    registered attributes. Unknown subjects earn a fault. *)

val node : t -> Dacs_net.Net.node_id
val issuer : t -> string
val public_key : t -> Dacs_crypto.Rsa.public_key

val register_user : t -> user:string -> (string * Dacs_policy.Value.t) list -> unit
val remove_user : t -> user:string -> unit
val knows : t -> user:string -> bool

val issue : t -> user:string -> Dacs_saml.Assertion.t option
(** Local issuing path; [None] for unknown users. *)

val issued_count : t -> int
