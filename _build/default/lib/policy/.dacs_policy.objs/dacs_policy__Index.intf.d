lib/policy/index.mli: Context Decision Expr Policy
