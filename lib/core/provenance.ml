type stage =
  | L1
  | L2
  | Live
  | Stale
  | Offline
  | Fail_closed
  | Shed
  | Local
  | Capability

type t = {
  stage : stage;
  shard : string option;
  batch : int;
  coalesced : bool;
  failovers : int;
  retried : bool;
  breaker_tripped : bool;
  stale_age : float;
  epoch : int;
  at : float;
  log_head : string option;
}

let make ?shard ?(batch = 0) ?(coalesced = false) ?(failovers = 0) ?(retried = false)
    ?(breaker_tripped = false) ?(stale_age = 0.0) ?(epoch = 0) ?log_head ~at stage =
  {
    stage;
    shard;
    batch;
    coalesced;
    failovers;
    retried;
    breaker_tripped;
    stale_age;
    epoch;
    at;
    log_head;
  }

let stage_count = 9

let stage_index = function
  | L1 -> 0
  | L2 -> 1
  | Live -> 2
  | Stale -> 3
  | Offline -> 4
  | Fail_closed -> 5
  | Shed -> 6
  | Local -> 7
  | Capability -> 8

let stage_name = function
  | L1 -> "l1"
  | L2 -> "l2"
  | Live -> "live"
  | Stale -> "stale"
  | Offline -> "offline"
  | Fail_closed -> "fail-closed"
  | Shed -> "shed"
  | Local -> "local"
  | Capability -> "capability"

let to_string p =
  let flags =
    List.filter_map
      (fun (on, name) -> if on then Some name else None)
      [
        (p.coalesced, "coalesced");
        (p.retried, "retried");
        (p.breaker_tripped, "breaker");
      ]
  in
  String.concat ""
    [
      "stage=" ^ stage_name p.stage;
      (match p.shard with None -> "" | Some s -> " shard=" ^ s);
      (if p.batch > 0 then Printf.sprintf " batch=%d" p.batch else "");
      (if p.failovers > 0 then Printf.sprintf " failovers=%d" p.failovers else "");
      (if p.stale_age > 0.0 then Printf.sprintf " stale_age=%.3fs" p.stale_age else "");
      (if p.epoch > 0 then Printf.sprintf " epoch=%d" p.epoch else "");
      (match p.log_head with None -> "" | Some h -> " log_head=" ^ h);
      (match flags with [] -> "" | fs -> " [" ^ String.concat "," fs ^ "]");
    ]

let to_json p =
  Printf.sprintf
    "{\"stage\":%S,\"shard\":%s,\"batch\":%d,\"coalesced\":%b,\"failovers\":%d,\"retried\":%b,\"breaker_tripped\":%b,\"stale_age\":%g,\"epoch\":%d,\"at\":%g,\"log_head\":%s}"
    (stage_name p.stage)
    (match p.shard with None -> "null" | Some s -> Printf.sprintf "%S" s)
    p.batch p.coalesced p.failovers p.retried p.breaker_tripped p.stale_age p.epoch p.at
    (match p.log_head with None -> "null" | Some h -> Printf.sprintf "%S" h)
