type t =
  | Permit
  | Deny
  | Not_applicable
  | Indeterminate of string

type result = {
  decision : t;
  obligations : Obligation.t list;
}

let permit = { decision = Permit; obligations = [] }
let deny = { decision = Deny; obligations = [] }
let not_applicable = { decision = Not_applicable; obligations = [] }
let indeterminate message = { decision = Indeterminate message; obligations = [] }

let with_obligations r obligations =
  let effect =
    match r.decision with
    | Permit -> Some Obligation.Permit
    | Deny -> Some Obligation.Deny
    | Not_applicable | Indeterminate _ -> None
  in
  match effect with
  | None -> r
  | Some effect -> { r with obligations = r.obligations @ Obligation.applicable obligations effect }

let is_permit r = r.decision = Permit
let is_deny r = r.decision = Deny

let decision_to_string = function
  | Permit -> "Permit"
  | Deny -> "Deny"
  | Not_applicable -> "NotApplicable"
  | Indeterminate _ -> "Indeterminate"

let decision_of_string = function
  | "Permit" -> Some Permit
  | "Deny" -> Some Deny
  | "NotApplicable" -> Some Not_applicable
  | "Indeterminate" -> Some (Indeterminate "")
  | _ -> None

let equal_decision a b =
  match (a, b) with
  | Permit, Permit | Deny, Deny | Not_applicable, Not_applicable -> true
  | Indeterminate _, Indeterminate _ -> true
  | (Permit | Deny | Not_applicable | Indeterminate _), _ -> false

let pp fmt r =
  Format.fprintf fmt "%s" (decision_to_string r.decision);
  (match r.decision with
  | Indeterminate m when m <> "" -> Format.fprintf fmt "(%s)" m
  | _ -> ());
  match r.obligations with
  | [] -> ()
  | obs ->
    Format.fprintf fmt " with %a"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") Obligation.pp)
      obs
