(** Iterative trust negotiation (Traust-style, §3.1).

    Two parties with no pre-established trust exchange credentials in
    rounds: each credential has a release policy naming what the
    counterparty must have disclosed first.  Negotiation succeeds when the
    resource's access requirement is met by disclosed client credentials,
    and fails when a full round makes no progress. *)

type requirement = string list list
(** Disjunction of conjunctions over counterparty credential names;
    [[]] (no alternatives) is unsatisfiable, [[[]]] is trivially met. *)

type credential = {
  name : string;
  release : requirement;  (** what the other side must show first *)
}

type party = {
  party_name : string;
  credentials : credential list;
}

val unprotected : string -> credential
(** A credential released freely. *)

val protected_by : string -> string list -> credential
(** [protected_by name needed]: released once the counterparty has shown
    all of [needed]. *)

type outcome = {
  success : bool;
  rounds : int;  (** full client+server rounds consumed *)
  messages : int;  (** credential-bearing messages exchanged *)
  disclosed_by_client : string list;
  disclosed_by_server : string list;
}

val negotiate : ?max_rounds:int -> client:party -> server:party -> target:requirement -> unit -> outcome
(** The client starts.  [max_rounds] (default 20) bounds pathological
    policies. *)

val satisfied : requirement -> string list -> bool
(** Is the requirement met by the given disclosed-credential names? *)
