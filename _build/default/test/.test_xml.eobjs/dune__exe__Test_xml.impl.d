test/test_xml.ml: Alcotest Dacs_xml Format List Option Printf QCheck QCheck_alcotest String
