lib/core/report.mli: Domain Vo
