(** Symmetric stream cipher built from HMAC-SHA256 in counter mode.

    Stands in for the AES-CBC suites of XML-Encryption: real keystream
    derivation and real ciphertext expansion (nonce prefix), with
    encrypt/decrypt symmetry.  [encrypt] and [decrypt] are the same XOR
    operation once the nonce is fixed. *)

val key_bytes : int
(** Required key length (32). *)

val nonce_bytes : int
(** Nonce length prepended to ciphertexts (16). *)

val encrypt : Rng.t -> key:string -> string -> string
(** [encrypt rng ~key plain] draws a fresh nonce and returns
    [nonce ^ ciphertext]. @raise Invalid_argument on a wrong-size key. *)

val decrypt : key:string -> string -> string option
(** [None] when the input is shorter than a nonce. *)

val derive_key : string -> string
(** Deterministically expand arbitrary secret material into a valid key. *)
