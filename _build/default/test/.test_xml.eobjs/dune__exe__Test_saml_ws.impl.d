test/test_saml_ws.ml: Alcotest Assertion Cert Dacs_crypto Dacs_net Dacs_policy Dacs_saml Dacs_ws Dacs_xml Lazy List Result Rng Rsa Security Service Soap Stream_cipher String Wsdl
