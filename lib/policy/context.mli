(** Request context: the attributes describing one access request.

    The XACML request context carries four attribute categories — subject,
    resource, action and environment — each a set of named attribute bags
    (Fig. 4 of the paper). *)

type category = Subject | Resource | Action | Environment

val category_name : category -> string
val category_of_name : string -> category option
val all_categories : category list

type t

val empty : t

val add : t -> category -> string -> Value.t -> t
(** Append one value to the bag of attribute [id] in [category]. *)

val add_bag : t -> category -> string -> Value.bag -> t

val bag : t -> category -> string -> Value.bag
(** The (possibly empty) bag bound to the attribute. *)

val attributes : t -> category -> (string * Value.bag) list
(** All attributes of a category, sorted by id. *)

val iter : t -> (category -> string -> Value.bag -> unit) -> unit
(** Visit every attribute bag in canonical (category, id) order without
    building the intermediate lists of {!attributes} — the traversal the
    hot request-key builder uses. *)

val merge : t -> t -> t
(** Union of attribute bags (right side appended). *)

(** {1 Convenience constructors} *)

val make :
  ?subject:(string * Value.t) list ->
  ?resource:(string * Value.t) list ->
  ?action:(string * Value.t) list ->
  ?environment:(string * Value.t) list ->
  unit ->
  t

val subject_id : t -> string option
(** The conventional ["subject-id"] attribute, when present. *)

val resource_id : t -> string option
val action_id : t -> string option

(** {1 XML encoding} *)

val to_xml : t -> Dacs_xml.Xml.t
val of_xml : Dacs_xml.Xml.t -> (t, string) result

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
