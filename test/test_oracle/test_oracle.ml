(* Differential-testing oracle for evaluator equivalence.

   Three evaluation paths now coexist: the reference tree walk
   (Policy.evaluate), the target-indexed evaluator (Index.evaluate), and
   the sharded PDP tier (Pdp_tier routing to Pdp_service replicas over
   the simulated network).  This oracle generates random policies and
   request contexts from seeded, shrinkable QCheck arbitraries and
   asserts all three return identical decisions — including obligations
   and Indeterminate propagation — for every combining algorithm,
   >= 1000 cases each.

   Policies are generated as integer-coded specs (built from int_bound /
   small lists), so QCheck's built-in shrinkers produce a minimal
   counterexample policy+request on failure. *)

module Policy = Dacs_policy.Policy
module Rule = Dacs_policy.Rule
module Target = Dacs_policy.Target
module Expr = Dacs_policy.Expr
module Combine = Dacs_policy.Combine
module Context = Dacs_policy.Context
module Decision = Dacs_policy.Decision
module Obligation = Dacs_policy.Obligation
module Value = Dacs_policy.Value
module Index = Dacs_policy.Index
module Net = Dacs_net.Net
module Service = Dacs_ws.Service
open Dacs_core

(* --- spec encoding ------------------------------------------------------ *)

(* Small closed vocabularies keep collision probability high: targets
   that sometimes match, conditions that sometimes error. *)
let roles = [| "doctor"; "nurse"; "admin" |]
let resources = [| "chart"; "lab"; "note" |]
let actions = [| "read"; "write" |]

type rule_spec = {
  effect_code : int;  (* 0 permit, 1 deny *)
  target_code : int;  (* 0 any; 1.. resource_is; then action_is; then subject_is *)
  condition_code : int;  (* 0 none; 1.. one_of role; last: missing-attr error *)
  obligation_code : int;  (* 0 none; 1 permit obligation; 2 deny obligation *)
}

let rule_of_spec i s =
  let effect = if s.effect_code = 0 then Rule.Permit else Rule.Deny in
  let target =
    match s.target_code with
    | 0 -> Target.any
    | c when c <= Array.length resources ->
      Target.(any |> resource_is "resource-id" resources.(c - 1))
    | c when c <= Array.length resources + Array.length actions ->
      Target.(any |> action_is "action-id" actions.(c - 1 - Array.length resources))
    | c -> Target.(any |> subject_is "role" roles.((c - 1 - Array.length resources - Array.length actions) mod Array.length roles))
  in
  let condition =
    match s.condition_code with
    | 0 -> None
    | c when c <= Array.length roles -> Some (Expr.one_of (Expr.subject_attr "role") [ roles.(c - 1) ])
    | _ ->
      (* The Indeterminate generator: a designator that must be present
         but never is. *)
      Some (Expr.one_of (Expr.subject_attr ~must_be_present:true "clearance") [ "secret" ])
  in
  Rule.make ~target ?condition effect (Printf.sprintf "r%d" i)

let target_code_max = Array.length resources + Array.length actions + Array.length roles
let condition_code_max = Array.length roles + 1

let obligations_of_spec i code =
  match code with
  | 0 -> []
  | 1 -> [ Obligation.make ~fulfill_on:Obligation.Permit (Printf.sprintf "urn:test:p%d" i) ]
  | _ -> [ Obligation.make ~fulfill_on:Obligation.Deny (Printf.sprintf "urn:test:d%d" i) ]

(* A policy is a list of rule specs plus its own obligations; rules keep
   per-rule obligations out (the engine attaches obligations at policy
   level), so the obligation spec rides on the policy. *)
let policy_of_spec alg (rule_specs, obligation_code) =
  let rules = List.mapi rule_of_spec rule_specs in
  let obligations =
    obligations_of_spec 0 (if obligation_code = 0 then 0 else 1)
    @ obligations_of_spec 1 (if obligation_code = 0 then 0 else 2)
  in
  Policy.make ~id:"oracle-policy" ~rule_combining:alg ~obligations rules

type ctx_spec = { role_code : int; resource_code : int; action_code : int }

let ctx_of_spec s =
  let subject =
    ("subject-id", Value.String "alice")
    ::
    (* role_code 0 omits the attribute entirely (absence paths). *)
    (if s.role_code = 0 then [] else [ ("role", Value.String roles.((s.role_code - 1) mod Array.length roles)) ])
  in
  Context.make ~subject
    ~resource:[ ("resource-id", Value.String resources.(s.resource_code mod Array.length resources)) ]
    ~action:[ ("action-id", Value.String actions.(s.action_code mod Array.length actions)) ]
    ()

let arb_case =
  let open QCheck in
  let arb_rule =
    map
      ~rev:(fun s -> (s.effect_code, s.target_code, s.condition_code, s.obligation_code))
      (fun (e, t, c, o) -> { effect_code = e; target_code = t; condition_code = c; obligation_code = o })
      (quad (int_bound 1) (int_bound target_code_max) (int_bound condition_code_max) (int_bound 2))
  in
  let arb_ctx =
    map
      ~rev:(fun s -> (s.role_code, s.resource_code, s.action_code))
      (fun (r, rs, a) -> { role_code = r; resource_code = rs; action_code = a })
      (triple (int_bound (Array.length roles)) (int_bound 2) (int_bound 1))
  in
  pair (pair (list_of_size (Gen.int_bound 6) arb_rule) (int_bound 1)) arb_ctx

let result_equal (a : Decision.result) (b : Decision.result) =
  Decision.equal_decision a.Decision.decision b.Decision.decision
  && List.length a.Decision.obligations = List.length b.Decision.obligations
  && List.for_all2 Obligation.equal a.Decision.obligations b.Decision.obligations

let show_result (r : Decision.result) =
  Printf.sprintf "%s [%s]"
    (Decision.decision_to_string r.Decision.decision)
    (String.concat "; " (List.map (fun o -> o.Obligation.id) r.Decision.obligations))

(* --- oracle 1: reference vs target index ------------------------------- *)

let index_oracle (name, alg) =
  QCheck.Test.make
    ~name:(Printf.sprintf "index == reference (%s)" name)
    ~count:1000 arb_case
    (fun (pspec, cspec) ->
      let policy = policy_of_spec alg pspec in
      let ctx = ctx_of_spec cspec in
      let reference = Policy.evaluate ctx policy in
      let indexed = Index.evaluate ctx (Index.build policy) in
      if result_equal reference indexed then true
      else
        QCheck.Test.fail_reportf "reference %s <> indexed %s" (show_result reference)
          (show_result indexed))

(* --- oracle 2: reference vs sharded tier ------------------------------- *)

(* One tier evaluation on a fresh simulated network: three replicas
   serving the generated policy, one batched query routed by the ring.
   The tier must agree with the in-process reference evaluation — wire
   encoding, batching and shard routing may not change any decision. *)
let tier_evaluate policy ctx =
  let net = Net.create ~seed:11L () in
  let services = Service.create (Dacs_net.Rpc.create net) in
  let shards =
    List.init 3 (fun i ->
        let node = Printf.sprintf "pdp%d" i in
        Net.add_node net node;
        ignore
          (Pdp_service.create services ~node ~name:node
             ~root:(Policy.Inline_policy policy) ());
        node)
  in
  Net.add_node net "dispatch";
  let tier = Pdp_tier.create services ~node:"dispatch" ~shards () in
  let answer = ref None in
  Pdp_tier.decide tier ctx (fun r -> answer := Some r);
  Net.run net;
  !answer

let tier_oracle (name, alg) =
  QCheck.Test.make
    ~name:(Printf.sprintf "sharded tier == reference (%s)" name)
    ~count:1000 arb_case
    (fun (pspec, cspec) ->
      let policy = policy_of_spec alg pspec in
      let ctx = ctx_of_spec cspec in
      let reference = Policy.evaluate ctx policy in
      match tier_evaluate policy ctx with
      | None -> QCheck.Test.fail_reportf "tier never answered"
      | Some (Error e) -> QCheck.Test.fail_reportf "tier failed closed: %s" e
      | Some (Ok tiered) ->
        if result_equal reference tiered then true
        else
          QCheck.Test.fail_reportf "reference %s <> tier %s" (show_result reference)
            (show_result tiered))

(* --- oracle 3: reference vs the full caching ladder -------------------- *)

(* One request replayed through every stage of the PEP's decision ladder
   (E17): a cold descent that fills the caches, a warm-L1 hit, an
   L2-only hit (L1 purged), a live re-evaluation that exercises the
   PDP's warmed attribute cache (both decision caches purged), and a
   coalesced pair (leader + single-flight waiter).  The client context
   deliberately withholds the role attribute so the PDP must resolve it
   from a PIP via the batched fetcher — the reference evaluation sees
   the same attributes inline.  No stage may change the decision or the
   obligations. *)
let cached_ladder_evaluate policy cspec =
  let net = Net.create ~seed:23L () in
  let services = Service.create (Dacs_net.Rpc.create net) in
  let add id =
    Net.add_node net id;
    id
  in
  let pip = Pip.create services ~node:(add "pip") ~name:"pip" in
  if cspec.role_code <> 0 then
    Pip.add_subject_attribute pip ~subject:"alice" ~id:"role"
      (Value.String roles.((cspec.role_code - 1) mod Array.length roles));
  ignore
    (Pdp_service.create services ~node:(add "pdp") ~name:"pdp"
       ~root:(Policy.Inline_policy policy) ~pips:[ "pip" ] ~attr_cache_ttl:600.0 ());
  let l2 = Cache_hierarchy.L2.create services ~node:(add "l2") ~ttl:600.0 () in
  let cache = Decision_cache.create ~ttl:600.0 () in
  let pep =
    Pep.create services ~node:(add "pep") ~domain:"d" ~resource:"r" ~content:"c"
      (Pep.Pull { pdps = [ "pdp" ]; cache = Some cache; call_timeout = 5.0 })
  in
  Pep.set_l2 pep (Some (Cache_hierarchy.L2.node l2));
  (* Lean context: role withheld, resolved at the PIP on the cached path. *)
  let ctx =
    Context.make
      ~subject:[ ("subject-id", Value.String "alice") ]
      ~resource:
        [ ("resource-id", Value.String resources.(cspec.resource_code mod Array.length resources)) ]
      ~action:[ ("action-id", Value.String actions.(cspec.action_code mod Array.length actions)) ]
      ()
  in
  let decide () =
    let answer = ref None in
    Pep.decide pep ctx (fun r -> answer := Some r);
    Net.run net;
    !answer
  in
  let purge_decision_caches () =
    Cache_hierarchy.L2.invalidate_all l2;
    Pep.invalidate_cache pep;
    Net.run net
  in
  let cold = decide () in
  let warm_l1 = decide () in
  Pep.invalidate_cache pep;
  let l2_only = decide () in
  purge_decision_caches ();
  let attr_cached = decide () in
  purge_decision_caches ();
  let leader = ref None and waiter = ref None in
  Pep.decide pep ctx (fun r -> leader := Some r);
  Pep.decide pep ctx (fun r -> waiter := Some r);
  Net.run net;
  [
    ("cold", cold);
    ("warm-l1", warm_l1);
    ("l2-only", l2_only);
    ("attr-cache", attr_cached);
    ("coalesced-leader", !leader);
    ("coalesced-waiter", !waiter);
  ]

let cached_oracle (name, alg) =
  QCheck.Test.make
    ~name:(Printf.sprintf "caching ladder == reference (%s)" name)
    ~count:300 arb_case
    (fun (pspec, cspec) ->
      let policy = policy_of_spec alg pspec in
      let reference = Policy.evaluate (ctx_of_spec cspec) policy in
      List.for_all
        (fun (stage, answer) ->
          match answer with
          | None -> QCheck.Test.fail_reportf "stage %s never answered" stage
          | Some cached ->
            if result_equal reference cached then true
            else
              QCheck.Test.fail_reportf "stage %s: reference %s <> cached %s" stage
                (show_result reference) (show_result cached))
        (cached_ladder_evaluate policy cspec))

let algorithms =
  [
    ("deny-overrides", Combine.Deny_overrides);
    ("permit-overrides", Combine.Permit_overrides);
    ("first-applicable", Combine.First_applicable);
    ("only-one-applicable", Combine.Only_one_applicable);
    ("ordered-deny-overrides", Combine.Ordered_deny_overrides);
    ("ordered-permit-overrides", Combine.Ordered_permit_overrides);
  ]

let () =
  Alcotest.run "dacs_oracle"
    [
      ("index-differential", List.map (fun a -> QCheck_alcotest.to_alcotest (index_oracle a)) algorithms);
      ("tier-differential", List.map (fun a -> QCheck_alcotest.to_alcotest (tier_oracle a)) algorithms);
      ( "cached-ladder-differential",
        List.map (fun a -> QCheck_alcotest.to_alcotest (cached_oracle a)) algorithms );
    ]
