examples/failover_demo.ml: Client Dacs_core Dacs_net Dacs_policy Dacs_ws List Pdp_service Pep Printf Wire
