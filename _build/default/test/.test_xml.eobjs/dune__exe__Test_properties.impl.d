test/test_properties.ml: Alcotest Conflict Dacs_core Dacs_crypto Dacs_net Dacs_policy Dacs_saml Decision_cache Delegation Gen Hashtbl Lazy List Negotiation Printf QCheck QCheck_alcotest Test
