lib/crypto/hmac.ml: Char Encoding Sha256 String
