lib/core/pdp_service.ml: Dacs_crypto Dacs_net Dacs_policy Dacs_ws Hashtbl List Option Wire
