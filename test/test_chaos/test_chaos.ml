(* Chaos suite: the paper's Fig. 2/Fig. 3 authorisation flows replayed
   under declarative fault schedules (Faults), exercising the resilient
   RPC layer (retry/backoff, circuit breaker) and the PEP's stale-cache
   degradation.

   Every scenario checks the same safety invariant — a subject the policy
   denies is never granted, no matter what the network does — and, once
   the schedule clears, liveness: an authorised subject gets through. *)

module Value = Dacs_policy.Value
module Policy = Dacs_policy.Policy
module Rule = Dacs_policy.Rule
module Target = Dacs_policy.Target
module Combine = Dacs_policy.Combine
module Engine = Dacs_net.Engine
module Net = Dacs_net.Net
module Rpc = Dacs_net.Rpc
module Faults = Dacs_net.Faults
module Service = Dacs_ws.Service
open Dacs_core

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

(* --- fixture ---------------------------------------------------------------- *)

let doctor_policy resource =
  Policy.Inline_policy
    (Policy.make ~id:"p" ~issuer:"domain-a" ~rule_combining:Combine.First_applicable
       [
         Rule.permit
           ~target:
             Target.(
               any |> subject_is "role" "doctor" |> resource_is "resource-id" resource
               |> action_is "action-id" "read")
           "permit-doctor-read";
         Rule.deny "default-deny";
       ])

let doctor_subject user = [ ("subject-id", Value.String user); ("role", Value.String "doctor") ]
let intern_subject user = [ ("subject-id", Value.String user); ("role", Value.String "intern") ]

type fixture = {
  net : Net.t;
  rpc : Rpc.t;
  pep : Pep.t;
  alice : Client.t;
  mallory : Client.t;
  pdp_nodes : Net.node_id list;
}

let setup ?(seed = 7L) ?(pdps = 1) ?cache ?(call_timeout = 0.5) () =
  let net = Net.create ~seed () in
  let rpc = Rpc.create net in
  let services = Service.create rpc in
  let add id =
    Net.add_node net id;
    id
  in
  let pdp_nodes =
    List.init pdps (fun i ->
        let node = add (Printf.sprintf "pdp%d" i) in
        ignore (Pdp_service.create services ~node ~name:node ~root:(doctor_policy "r") ());
        node)
  in
  let pep =
    Pep.create services ~node:(add "pep") ~domain:"a" ~resource:"r" ~content:"the-content"
      (Pep.Pull { pdps = pdp_nodes; cache; call_timeout })
  in
  let alice = Client.create services ~node:(add "alice") ~subject:(doctor_subject "alice") in
  let mallory = Client.create services ~node:(add "mallory") ~subject:(intern_subject "mallory") in
  { net; rpc; pep; alice; mallory; pdp_nodes }

(* Schedule a request at [at]; outcomes accumulate as (time, result). *)
let request_at fx client ~at ?(timeout = 30.0) ?retry ~action outcomes =
  Engine.schedule_at (Net.engine fx.net) ~at (fun () ->
      Client.request client ~pep:"pep" ~action ~timeout ?retry (fun r ->
          outcomes := (at, r) :: !outcomes))

let granted = function Ok (Wire.Granted _) -> true | _ -> false

let outcome_at outcomes at =
  match List.assoc_opt at !outcomes with
  | Some r -> r
  | None -> Alcotest.failf "no outcome recorded for request at t=%g" at

(* The safety invariant: none of these outcomes may be a grant. *)
let assert_never_granted name outcomes =
  List.iter
    (fun (at, r) ->
      if granted r then Alcotest.failf "%s: policy-denied subject granted at t=%g" name at)
    !outcomes

let steady_retry = { Rpc.attempts = 4; base_delay = 0.2; multiplier = 2.0; max_delay = 2.0; jitter = 0.0 }

(* --- scenario 1: latency spike --------------------------------------------- *)

let test_latency_spike () =
  let fx = setup () in
  Pep.set_retry_policy fx.pep (Some steady_retry);
  (* The pep<->pdp link runs at 2 s one-way while every call times out at
     0.5 s; only retries that land after the spike clears can succeed. *)
  Faults.apply fx.net
    [ Faults.Latency_spike { a = "pep"; b = "pdp0"; latency = 2.0; window = { from_ = 0.5; until_ = 3.0 } } ];
  let a = ref [] and m = ref [] in
  request_at fx fx.alice ~at:1.0 ~action:"read" a;
  request_at fx fx.mallory ~at:1.2 ~action:"read" m;
  Net.run fx.net;
  check bool_ "alice granted once spike cleared" true (granted (outcome_at a 1.0));
  (match outcome_at m 1.2 with
  | Ok (Wire.Denied _) -> ()
  | _ -> Alcotest.fail "mallory should be denied by policy");
  assert_never_granted "latency spike" m;
  let s = Pep.stats fx.pep in
  check bool_ "retries were needed" true (s.Pep.retries >= 2);
  check int_ "both requests served" 2 s.Pep.requests

(* --- scenario 2: drop burst ------------------------------------------------- *)

let test_drop_burst () =
  let fx = setup () in
  Pep.set_retry_policy fx.pep (Some steady_retry);
  (* Heavy loss for ~3 s; the client retries its own leg too, so the flow
     survives whichever hop the loss model hits. *)
  Faults.apply fx.net [ Faults.Drop_burst { rate = 0.8; window = { from_ = 0.1; until_ = 3.0 } } ];
  let client_retry =
    { Rpc.attempts = 8; base_delay = 0.3; multiplier = 2.0; max_delay = 2.0; jitter = 0.0 }
  in
  let a = ref [] and m = ref [] in
  request_at fx fx.alice ~at:0.3 ~timeout:5.0 ~retry:client_retry ~action:"read" a;
  request_at fx fx.mallory ~at:0.4 ~timeout:5.0 ~retry:client_retry ~action:"read" m;
  Net.run fx.net;
  check bool_ "alice granted after burst" true (granted (outcome_at a 0.3));
  assert_never_granted "drop burst" m;
  check bool_ "messages were dropped" true (Net.dropped_count fx.net > 0);
  check (Alcotest.float 1e-9) "drop rate restored after window" 0.0 (Net.drop_rate fx.net)

(* --- scenario 3: crash and restart ------------------------------------------ *)

let test_crash_restart () =
  let fx = setup () in
  Pep.set_retry_policy fx.pep
    (Some { Rpc.attempts = 6; base_delay = 0.3; multiplier = 2.0; max_delay = 2.0; jitter = 0.0 });
  let schedule = [ Faults.Crash_restart { node = "pdp0"; at = 0.5; restart = Some 4.0 } ] in
  check bool_ "schedule clears" true (Faults.clears_by schedule = Some 4.0);
  Faults.apply fx.net schedule;
  let a = ref [] and m = ref [] in
  request_at fx fx.alice ~at:1.0 ~action:"read" a;
  request_at fx fx.mallory ~at:1.1 ~action:"read" m;
  Net.run fx.net;
  check bool_ "alice granted after restart" true (granted (outcome_at a 1.0));
  assert_never_granted "crash/restart" m;
  check bool_ "pdp back up" true (not (Net.is_crashed fx.net "pdp0"));
  check bool_ "took several retries" true ((Pep.stats fx.pep).Pep.retries >= 3)

(* --- scenario 4: flapping partition ----------------------------------------- *)

let test_flapping_partition () =
  let fx = setup () in
  Pep.set_retry_policy fx.pep (Some steady_retry);
  Faults.apply fx.net
    [
      Faults.Flapping_partition
        {
          group_a = [ "pep" ];
          group_b = [ "pdp0" ];
          period = 0.4;
          window = { from_ = 0.5; until_ = 2.9 };
        };
    ];
  let a = ref [] and m = ref [] in
  (* Fired mid-cut: the first attempts keep landing in cut phases. *)
  request_at fx fx.alice ~at:0.6 ~action:"read" a;
  request_at fx fx.mallory ~at:0.7 ~action:"read" m;
  Net.run fx.net;
  check bool_ "alice granted despite flapping" true (granted (outcome_at a 0.6));
  assert_never_granted "flapping partition" m;
  check bool_ "retried through the flaps" true ((Pep.stats fx.pep).Pep.retries >= 1);
  (* The link must end healed: a fresh request goes straight through.
     (Scheduled after the first run, whose timeout bookkeeping has already
     advanced the clock past any fixed probe time.) *)
  let late_at = Net.now fx.net +. 1.0 in
  let late = ref [] in
  request_at fx fx.alice ~at:late_at ~action:"read" late;
  Net.run fx.net;
  check bool_ "healed at window end" true (granted (outcome_at late late_at))

(* --- scenario 5: slow PDP, ordered failover --------------------------------- *)

let test_slow_pdp_failover () =
  let fx = setup ~pdps:2 () in
  (* pdp0 is overloaded, not dead: +2 s on all its links while calls time
     out at 0.5 s.  The PEP must fail over to the healthy pdp1. *)
  Faults.apply fx.net
    [ Faults.Slow_node { node = "pdp0"; extra = 2.0; window = { from_ = 0.2; until_ = 5.0 } } ];
  let a = ref [] and m = ref [] in
  request_at fx fx.alice ~at:1.0 ~action:"read" a;
  request_at fx fx.mallory ~at:1.1 ~action:"read" m;
  Net.run fx.net;
  check bool_ "alice granted via replica" true (granted (outcome_at a 1.0));
  assert_never_granted "slow pdp" m;
  let s = Pep.stats fx.pep in
  check bool_ "failover happened" true (s.Pep.failovers >= 2);
  check int_ "no degraded serving involved" 0 s.Pep.stale_serves

(* --- scenario 6: total outage, stale-cache degradation ----------------------- *)

let test_stale_cache_degradation () =
  let cache = Decision_cache.create ~ttl:1.0 () in
  let fx = setup ~cache () in
  Pep.set_stale_window fx.pep 5.0;
  (* Warm the cache while the PDP is alive, then lose it for good. *)
  let warm_a = ref [] and warm_m = ref [] in
  request_at fx fx.alice ~at:0.2 ~action:"read" warm_a;
  request_at fx fx.mallory ~at:0.25 ~action:"read" warm_m;
  Faults.apply fx.net [ Faults.Crash_restart { node = "pdp0"; at = 1.0; restart = None } ];
  let a_stale = ref [] and m_stale = ref [] and a_late = ref [] in
  (* Expired (ttl 1 s) but within the 5 s stale window: degraded serve. *)
  request_at fx fx.alice ~at:3.0 ~action:"read" a_stale;
  request_at fx fx.mallory ~at:3.2 ~action:"read" m_stale;
  (* Beyond ttl + window: the PEP must fail closed. *)
  request_at fx fx.alice ~at:10.0 ~action:"read" a_late;
  Net.run fx.net;
  check bool_ "warm grant" true (granted (outcome_at warm_a 0.2));
  check bool_ "stale grant within window" true (granted (outcome_at a_stale 3.0));
  (match outcome_at m_stale 3.2 with
  | Ok (Wire.Denied _) -> ()
  | _ -> Alcotest.fail "mallory's stale answer must still be the cached deny");
  (match outcome_at a_late 10.0 with
  | Ok (Wire.Denied _) -> ()
  | _ -> Alcotest.fail "beyond the staleness bound the PEP must deny");
  assert_never_granted "stale cache" warm_m;
  assert_never_granted "stale cache" m_stale;
  let s = Pep.stats fx.pep in
  check bool_ "stale serves recorded" true (s.Pep.stale_serves >= 2);
  check bool_ "bounded: the late request was not stale-served" true (s.Pep.stale_serves <= 2)

(* --- scenario 7: circuit breaker lifecycle ----------------------------------- *)

let test_breaker_recovery () =
  let fx = setup () in
  Rpc.set_breaker fx.rpc (Some { Rpc.failure_threshold = 3; cooldown = 2.0 });
  Faults.apply fx.net [ Faults.Crash_restart { node = "pdp0"; at = 0.3; restart = Some 6.0 } ];
  let a = ref [] in
  (* Three timeouts trip the breaker... *)
  request_at fx fx.alice ~at:0.5 ~action:"read" a;
  request_at fx fx.alice ~at:1.2 ~action:"read" a;
  request_at fx fx.alice ~at:1.9 ~action:"read" a;
  (* ...this one is shed without touching the network... *)
  request_at fx fx.alice ~at:2.5 ~action:"read" a;
  (* ...the half-open probe fails (still down), re-opening... *)
  request_at fx fx.alice ~at:4.6 ~action:"read" a;
  (* ...and after the restart a probe succeeds and closes the breaker. *)
  request_at fx fx.alice ~at:7.5 ~action:"read" a;
  Net.run fx.net;
  List.iter
    (fun at ->
      match outcome_at a at with
      | Ok (Wire.Denied _) -> ()
      | _ -> Alcotest.failf "expected fail-closed denial at t=%g" at)
    [ 0.5; 1.2; 1.9; 2.5; 4.6 ];
  check bool_ "recovered through half-open" true (granted (outcome_at a 7.5));
  check bool_ "breaker closed again" true (Rpc.breaker_state fx.rpc "pdp0" = Rpc.Closed);
  let s = Pep.stats fx.pep in
  check bool_ "trips observed" true (s.Pep.breaker_trips >= 2);
  check int_ "exactly the shed call rejected" 1 s.Pep.breaker_rejections;
  check int_ "every request consulted its PDP (or its breaker)" 6 s.Pep.pdp_calls

(* --- scenario 8: total outage, offline event-log serving ---------------------- *)

let test_offline_log_serving () =
  let fx = setup () in
  let offline =
    Offline.create
      ~now:(fun () -> Engine.now (Net.engine fx.net))
      ~key:"chaos-mesh-key" ~author:"a" ()
  in
  Offline.publish offline (doctor_policy "r");
  Pep.set_offline_replica fx.pep (Some offline);
  (* The only PDP dies at 1 s and is restored at 6 s. *)
  Faults.apply fx.net [ Faults.Crash_restart { node = "pdp0"; at = 1.0; restart = Some 6.0 } ];
  let warm = ref [] and a = ref [] and m = ref [] and late = ref [] in
  request_at fx fx.alice ~at:0.2 ~action:"read" warm;
  (* During the outage the signed local log answers instead of failing closed. *)
  request_at fx fx.alice ~at:3.0 ~action:"read" a;
  request_at fx fx.mallory ~at:3.2 ~action:"read" m;
  (* After the restart the live tier takes over again. *)
  request_at fx fx.alice ~at:8.0 ~action:"read" late;
  Net.run fx.net;
  check bool_ "warm grant served live" true (granted (outcome_at warm 0.2));
  check bool_ "granted from the offline log during the outage" true (granted (outcome_at a 3.0));
  (match outcome_at m 3.2 with
  | Ok (Wire.Denied _) -> ()
  | _ -> Alcotest.fail "the offline rung must still deny the intern");
  assert_never_granted "offline log" m;
  check bool_ "healed: served live again after the restart" true (granted (outcome_at late 8.0));
  let s = Pep.stats fx.pep in
  check int_ "exactly the outage requests were served offline" 2 s.Pep.offline_serves;
  check bool_ "an offline episode was recorded" true (Offline.epoch offline >= 1);
  check bool_ "offline decisions entered the signed log" true
    ((Offline.stats offline).Offline.offline_decides >= 2)

(* --- scenario 9: random schedules (property) --------------------------------- *)

let random_schedule_safety =
  QCheck.Test.make ~name:"chaos: random schedules keep enforcement safe and live" ~count:25
    QCheck.(int_bound 10_000)
    (fun seed ->
      let fx = setup ~seed:(Int64.of_int (seed + 1)) ~pdps:2 () in
      Pep.set_retry_policy fx.pep (Some steady_retry);
      let rng = Dacs_crypto.Rng.create (Int64.of_int (seed * 31 + 7)) in
      let horizon = 6.0 in
      let schedule =
        Faults.random_schedule ~rng ~nodes:("pep" :: fx.pdp_nodes) ~horizon
      in
      Faults.apply fx.net schedule;
      (match Faults.clears_by schedule with
      | Some t when t <= horizon -> ()
      | _ -> QCheck.Test.fail_report "random schedule must clear by the horizon");
      let m = ref [] and live = ref [] in
      (* Hostile requests throughout the chaos... *)
      List.iter (fun at -> request_at fx fx.mallory ~at ~action:"read" m) [ 0.5; 2.0; 4.0; 5.5 ];
      (* ...and a liveness probe well after everything cleared (past the
         horizon plus the deepest retry tail and the client timeout). *)
      request_at fx fx.alice ~at:40.0 ~action:"read" live;
      Net.run fx.net;
      assert_never_granted "random schedule" m;
      if not (granted (outcome_at live 40.0)) then
        QCheck.Test.fail_report "liveness probe after the horizon was not granted";
      true)

(* --- determinism (satellite): same seed, same run ----------------------------- *)

let run_once seed =
  let fx = setup ~seed ~pdps:2 () in
  Pep.set_retry_policy fx.pep (Some steady_retry);
  Net.set_tracing fx.net true;
  Faults.apply fx.net
    [
      Faults.Drop_burst { rate = 0.5; window = { from_ = 0.1; until_ = 2.0 } };
      Faults.Crash_restart { node = "pdp0"; at = 0.5; restart = Some 3.0 };
      Faults.Latency_spike { a = "pep"; b = "pdp1"; latency = 0.8; window = { from_ = 1.0; until_ = 4.0 } };
    ];
  let a = ref [] and m = ref [] in
  List.iter (fun at -> request_at fx fx.alice ~at ~action:"read" a) [ 0.3; 1.5; 4.5 ];
  List.iter (fun at -> request_at fx fx.mallory ~at ~action:"read" m) [ 0.4; 2.5 ];
  Net.run fx.net;
  assert_never_granted "determinism run" m;
  let rendered =
    List.map
      (fun e -> Printf.sprintf "%.9f %s>%s %s" e.Net.t_time e.Net.t_src e.Net.t_dst e.Net.t_category)
      (Net.trace fx.net)
  in
  (rendered, Net.dropped_count fx.net, (Pep.stats fx.pep).Pep.retries)

let test_determinism () =
  let t1, d1, r1 = run_once 1234L in
  let t2, d2, r2 = run_once 1234L in
  check bool_ "non-trivial run" true (List.length t1 > 0 && d1 > 0);
  check (Alcotest.list Alcotest.string) "identical traces" t1 t2;
  check int_ "identical drop counts" d1 d2;
  check int_ "identical retry counts" r1 r2;
  (* Random schedules are equally reproducible. *)
  let sched s =
    List.map Faults.describe
      (Faults.random_schedule ~rng:(Dacs_crypto.Rng.create s) ~nodes:[ "a"; "b"; "c" ] ~horizon:5.0)
  in
  check (Alcotest.list Alcotest.string) "identical schedules from one seed" (sched 9L) (sched 9L)

(* --- schedule validation ------------------------------------------------------ *)

let test_schedule_validation () =
  let net = Net.create () in
  Net.add_node net "a";
  Net.add_node net "b";
  let rejects spec =
    try
      Faults.apply net [ spec ];
      Alcotest.failf "expected Invalid_argument for %s" (Faults.describe spec)
    with Invalid_argument _ -> ()
  in
  rejects (Faults.Drop_burst { rate = 1.5; window = { from_ = 0.0; until_ = 1.0 } });
  rejects (Faults.Drop_burst { rate = 0.5; window = { from_ = 2.0; until_ = 1.0 } });
  rejects
    (Faults.Flapping_partition
       { group_a = [ "a" ]; group_b = [ "b" ]; period = 0.0; window = { from_ = 0.0; until_ = 1.0 } });
  rejects (Faults.Crash_restart { node = "a"; at = 2.0; restart = Some 1.0 });
  rejects (Faults.Slow_node { node = "a"; extra = -0.1; window = { from_ = 0.0; until_ = 1.0 } })

let () =
  Alcotest.run "dacs_chaos"
    [
      ( "scenarios",
        [
          Alcotest.test_case "latency spike" `Quick test_latency_spike;
          Alcotest.test_case "drop burst" `Quick test_drop_burst;
          Alcotest.test_case "crash and restart" `Quick test_crash_restart;
          Alcotest.test_case "flapping partition" `Quick test_flapping_partition;
          Alcotest.test_case "slow pdp failover" `Quick test_slow_pdp_failover;
          Alcotest.test_case "total outage, stale-cache degradation" `Quick
            test_stale_cache_degradation;
          Alcotest.test_case "breaker open/half-open/recovery" `Quick test_breaker_recovery;
          Alcotest.test_case "total outage, offline-log serving" `Quick test_offline_log_serving;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest random_schedule_safety ]);
      ( "determinism",
        [
          Alcotest.test_case "identical seeds, identical runs" `Quick test_determinism;
          Alcotest.test_case "schedule validation" `Quick test_schedule_validation;
        ] );
    ]
