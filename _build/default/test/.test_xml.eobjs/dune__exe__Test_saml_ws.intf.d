test/test_saml_ws.mli:
