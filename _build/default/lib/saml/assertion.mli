(** SAML-style security assertions.

    Signed statements an authority makes about a subject: attribute
    statements (the IdP's job) and authorisation-decision statements (the
    capability service's job in the push model, Fig. 2).  Validity windows
    and issuer signatures give the PEP everything it needs to accept a
    capability without calling back. *)

type statement =
  | Attribute_statement of (string * Dacs_policy.Value.t) list
  | Authz_decision_statement of {
      resource : string;
      action : string;
      decision : Dacs_policy.Decision.t;
    }

type t = {
  id : string;
  issuer : string;
  subject : string;
  issued_at : float;
  not_before : float;
  not_on_or_after : float;
  statements : statement list;
  signature : string option;  (** over the canonical unsigned form *)
}

val make :
  id:string ->
  issuer:string ->
  subject:string ->
  issued_at:float ->
  ?validity:float ->
  statement list ->
  t
(** [validity] defaults to 300 s from [issued_at]. *)

(** {1 Signing} *)

val sign : Dacs_crypto.Rsa.private_key -> t -> t
val verify : Dacs_crypto.Rsa.public_key -> t -> bool
(** [false] when unsigned, tampered with, or signed by a different key. *)

val valid_at : t -> float -> bool

type failure =
  | Not_signed
  | Bad_signature
  | Expired
  | Not_yet_valid
  | Unknown_issuer of string

val failure_to_string : failure -> string

val validate :
  trusted_key:(string -> Dacs_crypto.Rsa.public_key option) ->
  now:float ->
  t ->
  (unit, failure) result
(** Full acceptance check: issuer known, signature valid, window open. *)

(** {1 Content access} *)

val attributes : t -> (string * Dacs_policy.Value.t) list
(** All attribute pairs across attribute statements. *)

val decisions : t -> (string * string * Dacs_policy.Decision.t) list
(** (resource, action, decision) triples. *)

val permits : t -> resource:string -> action:string -> bool
(** True when some decision statement permits the pair. *)

(** {1 XML} *)

val to_xml : t -> Dacs_xml.Xml.t
val of_xml : Dacs_xml.Xml.t -> (t, string) result
val to_string : t -> string
val of_string : string -> (t, string) result
