(** Simulated network: named nodes exchanging sized messages over links
    with latency, loss, partitions and crash faults.

    Message sizes are real byte counts of the payloads (XML envelopes in
    the upper layers), so the paper's §3.2 arguments about XML verbosity
    and WS-Security overhead are directly measurable. *)

type node_id = string

type message = {
  src : node_id;
  dst : node_id;
  category : string;  (** e.g. ["authz-query"], for traffic accounting *)
  payload : string;
  sent_at : float;
}

type t

val create : ?seed:int64 -> unit -> t
val engine : t -> Engine.t
val now : t -> float

(** {1 Topology} *)

val add_node : t -> node_id -> unit
(** Idempotent. *)

val has_node : t -> node_id -> bool
val nodes : t -> node_id list

val set_handler : t -> node_id -> (message -> unit) -> unit
(** Called on every message delivered to the node.
    @raise Invalid_argument for unknown nodes. *)

(** {1 Link model} *)

val set_default_latency : t -> float -> unit
(** One-way delay applied to every pair without an override (default
    0.005 s — a LAN).  Cross-domain links typically get overrides. *)

val set_latency : t -> node_id -> node_id -> float -> unit
(** Symmetric per-pair override. *)

val latency : t -> node_id -> node_id -> float

val latency_override : t -> node_id -> node_id -> float option
(** The per-pair override, if one is set ([latency] falls back to the
    default).  Lets fault injectors save and restore link state. *)

val clear_latency : t -> node_id -> node_id -> unit
(** Remove a per-pair override; the pair reverts to the default latency. *)

val set_bytes_per_second : t -> float option -> unit
(** When set, delivery delay additionally includes [size / rate] —
    makes big signed envelopes measurably slower. *)

val set_drop_rate : t -> float -> unit
(** Probability in [0,1] that any message is silently lost. *)

val drop_rate : t -> float
(** Current loss probability. *)

(** {1 Faults} *)

val crash : t -> node_id -> unit
(** A crashed node receives nothing and sends nothing. *)

val recover : t -> node_id -> unit
val is_crashed : t -> node_id -> bool

val partition : t -> node_id list -> node_id list -> unit
(** Messages between the two groups are dropped until {!heal} (or a
    matching {!unpartition}). *)

val unpartition : t -> node_id list -> node_id list -> unit
(** Remove the partition between exactly these two groups (in either
    order), leaving any other partitions in place — what a flapping-link
    fault needs that {!heal} cannot express. *)

val heal : t -> unit
(** Remove all partitions. *)

(** {1 Sending} *)

val send : t -> src:node_id -> dst:node_id -> category:string -> string -> unit
(** Queue a message for delivery after the link latency.  Silently dropped
    when either end is crashed, the pair is partitioned, or the loss model
    fires.  @raise Invalid_argument for unknown nodes. *)

(** {1 Statistics and tracing} *)

type stat = { count : int; bytes : int }

val stats_by_category : t -> (string * stat) list
(** Messages {e sent} per category (sorted by category). *)

val delivered_by_category : t -> (string * stat) list
val total_sent : t -> stat
val total_delivered : t -> stat
val dropped_count : t -> int
val reset_stats : t -> unit

val set_tracing : t -> bool -> unit
(** When on, delivered messages are recorded (category, src, dst, time). *)

type trace_entry = { t_src : node_id; t_dst : node_id; t_category : string; t_time : float }

val trace : t -> trace_entry list
(** Delivered messages in delivery order. *)

val clear_trace : t -> unit

(** {1 Running} *)

val run : ?until:float -> t -> unit
(** Drive the underlying engine. *)
