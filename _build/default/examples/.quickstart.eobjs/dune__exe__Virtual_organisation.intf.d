examples/virtual_organisation.mli:
