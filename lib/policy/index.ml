(* The index is a sound pre-filter: a rule is bucketed under resource-id
   value v only if *every* clause of its resource section requires
   resource-id = v' for some listed v'.  Such a rule cannot match a
   request whose resource-id differs from all its values, so skipping it
   is safe.  Everything else goes to the fallback bucket.  Document order
   is preserved when merging buckets, so combining semantics are exact. *)

type indexed_rule = {
  position : int;
  rule : Rule.t;  (* condition already substituted when [prep_error] is None *)
  prep_error : string option;  (* unresolvable policy variable *)
}

type t = {
  policy : Policy.t;
  by_resource : (string, indexed_rule list) Hashtbl.t;  (* newest first *)
  fallback : indexed_rule list;  (* document order *)
  all : indexed_rule list;  (* document order, for unprunable requests *)
  total : int;
  guards : (Context.category * string) list;
      (* attributes read by the subject sections of indexed rules — the
         section the interpreter evaluates before resources, whose error
         would short-circuit past the resource mismatch *)
}

(* The resource-id values a clause accepts, when it pins resource-id by
   string equality; None when the clause leaves resource-id free. *)
let clause_resource_values clause =
  let values =
    List.filter_map
      (fun m ->
        if m.Target.attribute_id = "resource-id" && m.Target.fn = "string-equal" then
          match m.Target.value with
          | Value.String s -> Some s
          | _ -> None
        else None)
      clause
  in
  match values with [] -> None | vs -> Some vs

(* A match that cannot error against a non-empty all-string bag. *)
let guardable_match m =
  m.Target.fn = "string-equal"
  && (match m.Target.value with Value.String _ -> true | _ -> false)

(* The attributes a rule's subject section reads, or None when some
   match could error — target sections evaluate subjects first, and an
   error there makes the whole target Indeterminate before the resource
   pin's mismatch is seen, so such a rule must not be pruned. *)
let rule_guards (rule : Rule.t) =
  let subjects = rule.Rule.target.Target.subjects in
  if List.for_all (List.for_all guardable_match) subjects then
    Some
      (List.concat_map
         (List.map (fun m -> (m.Target.category, m.Target.attribute_id)))
         subjects)
  else None

(* All resource-id values a rule can apply to (with the guard attributes
   its pruning depends on), or None when unconstrained or unguardable. *)
let rule_resource_values (rule : Rule.t) =
  match rule.Rule.target.Target.resources with
  | [] -> None
  | clauses -> (
    let per_clause = List.map clause_resource_values clauses in
    if List.exists (fun v -> v = None) per_clause then None
    else
      match rule_guards rule with
      | None -> None
      | Some guards ->
        Some (List.concat_map (fun v -> Option.value v ~default:[]) per_clause, guards))

(* Substitute policy variables into the condition at build time, the
   step {!Policy.evaluate} performs per evaluation; a broken reference
   is remembered and surfaces as that rule's Indeterminate. *)
let prepare policy position rule =
  match rule.Rule.condition with
  | None -> { position; rule; prep_error = None }
  | Some condition -> (
    let lookup name = List.assoc_opt name policy.Policy.variables in
    match Expr.substitute lookup condition with
    | Ok condition -> { position; rule = { rule with Rule.condition = Some condition }; prep_error = None }
    | Error e -> { position; rule; prep_error = Some e })

let build policy =
  let by_resource = Hashtbl.create 256 in
  let fallback = ref [] in
  let all = ref [] in
  let guards = ref [] in
  List.iteri
    (fun position rule ->
      let ir = prepare policy position rule in
      all := ir :: !all;
      match rule_resource_values rule with
      | None -> fallback := ir :: !fallback
      | Some (values, rule_guards) ->
        guards := rule_guards @ !guards;
        List.iter
          (fun v ->
            let prev = Option.value (Hashtbl.find_opt by_resource v) ~default:[] in
            Hashtbl.replace by_resource v (ir :: prev))
          (List.sort_uniq compare values))
    policy.Policy.rules;
  {
    policy;
    by_resource;
    fallback = List.rev !fallback;
    all = List.rev !all;
    total = List.length policy.Policy.rules;
    guards = List.sort_uniq compare !guards;
  }

(* Pruning is sound only against a non-empty, all-string resource-id
   bag: [string-equal] errors on any other value type (including Uri),
   so a pinned rule could then be Indeterminate rather than
   NotApplicable under reference evaluation and must not be skipped. *)
let request_resource_ids ctx =
  let bag = Context.bag ctx Context.Resource "resource-id" in
  if List.exists (function Value.String _ -> false | _ -> true) bag then []
  else List.filter_map (function Value.String s -> Some s | _ -> None) bag

(* Guard attributes must also carry non-empty all-string bags: then the
   subject sections of indexed rules resolve to Match or No_match and
   the resource pin's mismatch decides the target. *)
let guards_clean t ctx =
  List.for_all
    (fun (category, attr) ->
      match Context.bag ctx category attr with
      | [] -> false
      | bag -> List.for_all (function Value.String _ -> true | _ -> false) bag)
    t.guards

let candidates t ctx =
  if not (guards_clean t ctx) then t.all
  else
  match request_resource_ids ctx with
  | [] ->
    (* No resource-id in the request (or it may be supplied by a resolver
       later), or a non-string value in the bag: the pre-filter cannot
       prune soundly. *)
    t.all
  | ids ->
    let bucketed =
      List.concat_map
        (fun id -> Option.value (Hashtbl.find_opt t.by_resource id) ~default:[])
        ids
    in
    let merged = bucketed @ t.fallback in
    (* Dedup (a rule can hit via several ids) and restore document order. *)
    let seen = Hashtbl.create 16 in
    List.filter
      (fun ir ->
        if Hashtbl.mem seen ir.position then false
        else begin
          Hashtbl.add seen ir.position ();
          true
        end)
      (List.sort (fun a b -> compare a.position b.position) merged)

let candidate_count t ctx = List.length (candidates t ctx)

let rule_count t = t.total

let bucket_count t = Hashtbl.length t.by_resource

let evaluate ?resolve ctx t =
  let policy = t.policy in
  match Target.evaluate ?resolve ctx policy.Policy.target with
  | Target.No_match -> Decision.not_applicable
  | Target.Indeterminate_match e ->
    Decision.indeterminate (Printf.sprintf "policy %s target: %s" policy.Policy.id e)
  | Target.Match ->
    let children =
      List.map
        (fun ir ->
          {
            Combine.label = "rule " ^ ir.rule.Rule.id;
            applicability = (fun () -> Target.evaluate ?resolve ctx ir.rule.Rule.target);
            evaluate =
              (fun () ->
                match ir.prep_error with
                | None -> Rule.evaluate ?resolve ctx ir.rule
                | Some e ->
                  Decision.indeterminate (Printf.sprintf "rule %s: %s" ir.rule.Rule.id e));
          })
        (candidates t ctx)
    in
    let result = Combine.combine policy.Policy.rule_combining children in
    Decision.with_obligations result policy.Policy.obligations
