lib/rbac/compile.mli: Dacs_policy Rbac
