(** WS-Security-style message protection: envelope signatures and body
    encryption.

    Signing embeds the sender's certificate (a binary security token) and
    an RSA signature over the canonical body; encryption replaces the body
    element with an [EncryptedData] wrapper.  Both mirror what
    XML-DSig/XML-Enc do to SOAP messages — including the size overhead the
    paper calls out when comparing secured and plain Web-Service calls. *)

type error =
  | Not_signed
  | Invalid_signature
  | Untrusted_signer of string
  | Not_encrypted
  | Decrypt_failed
  | Malformed of string

val error_to_string : error -> string

(** {1 Signatures} *)

val sign :
  key:Dacs_crypto.Rsa.private_key ->
  cert:Dacs_crypto.Cert.t ->
  Soap.envelope ->
  Soap.envelope
(** Add a [Security] header carrying the certificate and a signature over
    the canonical body. *)

val verify :
  trust:Dacs_crypto.Cert.Trust_store.t ->
  now:float ->
  Soap.envelope ->
  (Dacs_crypto.Cert.t, error) result
(** Check the signature and that the embedded certificate chains to the
    trust store (direct trust or one-level issuer). Returns the signer. *)

val is_signed : Soap.envelope -> bool

(** {1 Body encryption} *)

val encrypt_body : Dacs_crypto.Rng.t -> key:string -> Soap.envelope -> Soap.envelope
(** Replace the body element with [EncryptedData] (base64 ciphertext).
    Sign-then-encrypt composes: encrypt after signing. *)

val decrypt_body : key:string -> Soap.envelope -> (Soap.envelope, error) result

val is_encrypted : Soap.envelope -> bool
