examples/quickstart.ml: Audit Client Dacs_core Dacs_net Dacs_policy Dacs_ws Domain List Pep Printf Wire
