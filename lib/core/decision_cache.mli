(** Decision cache for enforcement points (§3.2 communication
    performance).

    Caching authorisation decisions cuts PEP→PDP traffic at the price the
    paper warns about: entries may outlive the policy that produced them,
    yielding stale (false-positive or false-negative) decisions until the
    TTL lapses.  The experiments measure both sides of that trade.

    Beyond the TTL, an entry may linger for a bounded staleness window
    (see {!lookup}): when every decision point is unreachable, a pull
    PEP may choose degraded availability — serving the last known
    decision — over denying everything, as long as the decision is not
    older than [ttl + max_stale]. *)

type t

val create :
  ?metrics:Dacs_telemetry.Metrics.t -> ?owner:string -> ?max_entries:int -> ttl:float -> unit -> t
(** [max_entries] defaults to 1024; insertion past the limit evicts the
    entry whose latest insertion is oldest.  With [metrics], every stat
    is mirrored into [decision_cache_*_total{cache=owner}] series
    ([owner] defaults to ["default"]) in the given registry. *)

val ttl : t -> float

val get : t -> now:float -> key:string -> Dacs_policy.Decision.result option
(** [None] on miss or expiry (expired entries are dropped). *)

(** {1 Stale-tolerant lookup} *)

type lookup =
  | Fresh of Dacs_policy.Decision.result  (** within TTL *)
  | Stale of { result : Dacs_policy.Decision.result; age : float }
      (** expired by [age <= max_stale] seconds; the entry is retained *)
  | Absent  (** never cached, or expired beyond the window (dropped) *)

val lookup : t -> now:float -> max_stale:float -> key:string -> lookup
(** Like {!get} but distinguishing a bounded-stale entry from a true
    miss.  [get] is [lookup ~max_stale:0.0] collapsed to an option.
    [Fresh] counts as a hit, [Stale] and [Absent] as misses; entries
    expired beyond [max_stale] are removed and counted as expiries. *)

val put : t -> now:float -> key:string -> Dacs_policy.Decision.result -> unit
(** Permit, Deny and NotApplicable are all cached under the same TTL —
    negative caching: absorbing a hot denied request saves the same
    round trips as a hot granted one.  Indeterminate results are never
    stored: they describe a machinery fault at one instant, and caching
    one would keep failing requests after the fault clears. *)

val invalidate : t -> key:string -> unit
val invalidate_all : t -> unit
(** What a PEP does when told the policy changed and no change-impact
    region is available (or the region is unbounded). *)

val invalidate_region : t -> Dacs_policy.Delta.t -> int
(** Targeted invalidation: drop only the entries whose keys decode (via
    {!Intern} reverse lookup) to a context the region {!Delta.covers};
    returns the number dropped.  Conservative on both unreadable keys
    (Sha_hex digests drop — degrading to a per-entry full flush under
    the legacy scheme) and environment-guarded pins (keys carry no
    Environment atoms, so such pins never exclude).  [Unbounded] falls
    back to {!invalidate_all}; [Empty] drops nothing. *)

val size : t -> int

val key_bytes : t -> int
(** Total bytes of resident keys (live entries only) — the footprint the
    E22 scale ablation gates: packed integer-tuple keys must stay well
    under the 64-byte-per-entry hex digests they replaced. *)

type stats = {
  hits : int;
  misses : int;
  expiries : int;
  evictions : int;
  stale_hits : int;  (** lookups answered [Stale] *)
}

val stats : t -> stats

(** {1 Request keys}

    Two interchangeable key schemes over the same canonical content (the
    subject, resource and action attribute multisets).  Environment
    attributes (e.g. the request time) are deliberately excluded under
    both — they change on every request, and a cached decision is
    precisely one that skips re-evaluating them until the TTL lapses. *)

type key_scheme =
  | Packed  (** sorted interned atom ids, dot-separated (see {!Intern}) *)
  | Sha_hex  (** legacy sorted-string SHA-256 hex digest *)

val key_scheme : unit -> key_scheme
val set_key_scheme : key_scheme -> unit
(** Process-wide toggle, [Packed] by default.  Flipping it mid-run only
    costs cache misses (old-scheme entries stop being found); the E22
    ablation and the oracle equivalence suite switch it per arm. *)

val request_key : Dacs_policy.Context.t -> string
(** Canonical cache key under the current {!key_scheme}. *)

val sha_request_key : Dacs_policy.Context.t -> string
(** The legacy scheme, directly — the baseline arm of the E22 bench. *)
