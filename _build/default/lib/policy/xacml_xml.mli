(** XML encoding of the policy language — the interoperability surface.

    An XACML-like dialect (same structure, compact names): this is what
    travels between PAPs, PDPs and PEPs in the multi-domain architecture,
    and what the message-size experiments measure. *)

(** {1 Expressions} *)

val expr_to_xml : Expr.t -> Dacs_xml.Xml.t
val expr_of_xml : Dacs_xml.Xml.t -> (Expr.t, string) result

(** {1 Targets} *)

val target_to_xml : Target.t -> Dacs_xml.Xml.t
val target_of_xml : Dacs_xml.Xml.t -> (Target.t, string) result

(** {1 Rules, policies, policy sets} *)

val rule_to_xml : Rule.t -> Dacs_xml.Xml.t
val rule_of_xml : Dacs_xml.Xml.t -> (Rule.t, string) result

val policy_to_xml : Policy.t -> Dacs_xml.Xml.t
val policy_of_xml : Dacs_xml.Xml.t -> (Policy.t, string) result

val set_to_xml : Policy.set -> Dacs_xml.Xml.t
val set_of_xml : Dacs_xml.Xml.t -> (Policy.set, string) result

val child_to_xml : Policy.child -> Dacs_xml.Xml.t
val child_of_xml : Dacs_xml.Xml.t -> (Policy.child, string) result
(** Dispatches on the element name: [Policy], [PolicySet] or
    [PolicyIdReference]. *)

(** {1 Obligations} *)

val obligation_to_xml : Obligation.t -> Dacs_xml.Xml.t
val obligation_of_xml : Dacs_xml.Xml.t -> (Obligation.t, string) result

(** {1 Decisions} *)

val result_to_xml : Decision.result -> Dacs_xml.Xml.t
val result_of_xml : Dacs_xml.Xml.t -> (Decision.result, string) result

(** {1 Convenience round-trips through strings} *)

val child_to_string : Policy.child -> string
val child_of_string : string -> (Policy.child, string) result
val result_to_string : Decision.result -> string
val result_of_string : string -> (Decision.result, string) result
val request_to_string : Context.t -> string
val request_of_string : string -> (Context.t, string) result
