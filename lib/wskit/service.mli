(** SOAP services over the simulated network.

    Registers named endpoints on nodes; handlers receive the request body
    element and reply with a body element (or a fault).  All access-control
    components — PEP, PDP, PAP, PIP, capability service — are exposed this
    way, matching the paper's SOA deployment model. *)

type t

val create : Dacs_net.Rpc.t -> t
val rpc : t -> Dacs_net.Rpc.t
val net : t -> Dacs_net.Net.t

val metrics : t -> Dacs_telemetry.Metrics.t
(** The underlying bus's shared metrics registry (see {!Dacs_net.Rpc.metrics}). *)

val tracer : t -> Dacs_telemetry.Trace.t
(** The underlying bus's tracer. *)

type handler =
  caller:Dacs_net.Net.node_id ->
  headers:Dacs_xml.Xml.t list ->
  Dacs_xml.Xml.t ->
  (Dacs_xml.Xml.t -> unit) ->
  unit
(** [handler ~caller ~headers body reply]: call [reply] exactly once with
    the response body element. *)

val serve : t -> node:Dacs_net.Net.node_id -> service:string -> handler -> unit
(** Malformed request envelopes are answered with a SOAP fault without
    invoking the handler. *)

type error =
  | Transport of Dacs_net.Rpc.error
  | Fault of Soap.fault
  | Malformed of string

val error_to_string : error -> string

val call :
  t ->
  src:Dacs_net.Net.node_id ->
  dst:Dacs_net.Net.node_id ->
  service:string ->
  ?timeout:float ->
  ?headers:Dacs_xml.Xml.t list ->
  Dacs_xml.Xml.t ->
  ((Dacs_xml.Xml.t, error) result -> unit) ->
  unit
(** Send a body element, receive the response body element.  Faults and
    transport failures surface as [Error]. *)

val call_resilient :
  t ->
  src:Dacs_net.Net.node_id ->
  dst:Dacs_net.Net.node_id ->
  service:string ->
  ?timeout:float ->
  ?retry:Dacs_net.Rpc.retry_policy ->
  ?notify:(Dacs_net.Rpc.resilience_event -> unit) ->
  ?headers:Dacs_xml.Xml.t list ->
  Dacs_xml.Xml.t ->
  ((Dacs_xml.Xml.t, error) result -> unit) ->
  unit
(** Like {!call}, but transport failures go through the RPC resilience
    layer: retried per [retry] (default single attempt) and subject to
    the bus's circuit breaker when one is enabled.  SOAP faults are
    application answers, never retried. *)

val call_batch_resilient :
  t ->
  src:Dacs_net.Net.node_id ->
  dst:Dacs_net.Net.node_id ->
  service:string ->
  ?timeout:float ->
  ?retry:Dacs_net.Rpc.retry_policy ->
  ?notify:(Dacs_net.Rpc.resilience_event -> unit) ->
  ?headers:Dacs_xml.Xml.t list ->
  Dacs_xml.Xml.t list ->
  (((Dacs_xml.Xml.t, error) result list, error) result -> unit) ->
  unit
(** Several request bodies coalesced into one {!Dacs_net.Rpc.call_batch}
    round-trip with a single retry/breaker envelope.  On transport
    success the continuation receives one decoded result per request (a
    part may individually be a [Fault] or [Malformed]); on transport
    failure the whole batch fails with [Error (Transport _)] — there are
    no partial deliveries.  [headers] apply to every part. *)
