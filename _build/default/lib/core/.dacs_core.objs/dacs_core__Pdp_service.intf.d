lib/core/pdp_service.mli: Dacs_crypto Dacs_net Dacs_policy Dacs_ws
