(** Policy Enforcement Point: the barrier around one exposed resource.

    Supports the paper's three authorisation-decision query sequences
    (§2.2):

    - {b Pull} (policy-issuing, Fig. 3): the PEP turns each access request
      into an authorisation query to its PDP (with decision caching and
      ordered failover across PDP replicas — the dependability machinery).
    - {b Sharded}: pull semantics over a {!Pdp_tier} — queries are
      hash-partitioned and batched across PDP replicas, with the same
      caching, stale-degradation and fail-closed behaviour per shard.
    - {b Push} (capability-issuing, Fig. 2): the request must carry a
      signed capability assertion; the PEP verifies it locally, optionally
      checks revocation with the issuer, and can still consult a local PDP
      for the resource provider's final say.
    - {b Agent}: an embedded PDP decides locally from syndicated policies
      — no per-request network traffic at all.

    Every decision is enforced together with its obligations: audit
    obligations append to the domain audit log; encrypt-response
    obligations return the content encrypted. *)

type mode =
  | Pull of {
      pdps : Dacs_net.Net.node_id list;  (** failover order *)
      cache : Decision_cache.t option;
      call_timeout : float;
    }
  | Sharded of { tier : Pdp_tier.t; cache : Decision_cache.t option }
      (** Enforcement fans out through a sharded, batched PDP tier; the
          cache and {!set_stale_window} degradation apply exactly as in
          pull mode. *)
  | Push of {
      trusted_issuer : string -> Dacs_crypto.Rsa.public_key option;
      check_revocation : Dacs_net.Net.node_id option;
          (** capability service to ask before honouring an assertion *)
      local_pdp : Pdp_service.t option;  (** resource provider's own check *)
    }
  | Agent of Pdp_service.t

type t

val create :
  Dacs_ws.Service.t ->
  node:Dacs_net.Net.node_id ->
  domain:string ->
  resource:string ->
  ?content:string ->
  ?audit:Audit.t ->
  ?encryption_key:string ->
  mode ->
  t
(** Registers the ["access"] service on [node].  [content] is what a
    permitted requester receives; [encryption_key] (required for the
    encrypt-response obligation) protects it when obliged to. *)

val node : t -> Dacs_net.Net.node_id
val resource : t -> string
val audit : t -> Audit.t

val invalidate_cache : t -> unit
(** Called when the PEP learns its policy changed. *)

val invalidate_key : t -> key:string -> unit
(** Drop one L1 entry by request key — what a keyed L2 invalidation round
    applies at the leaves of the hierarchy. *)

val invalidate_region : t -> Dacs_policy.Delta.t -> int
(** Targeted L1 purge from a policy publish's change-impact region (see
    {!Decision_cache.invalidate_region}); returns the entries dropped. *)

val decide : t -> Dacs_policy.Context.t -> (Dacs_policy.Decision.result -> unit) -> unit
(** The decision ladder for a context without the inbound access RPC or
    enforcement: L1 fresh -> L2 fresh -> live tier -> bounded-stale L1 ->
    offline log -> fail closed, with identical concurrent queries
    coalesced.  This is
    what the differential oracle drives to prove that no cache level can
    change a decision.  In push mode (capabilities live on the wire)
    answers Indeterminate. *)

val decide_explained :
  t ->
  Dacs_policy.Context.t ->
  (Dacs_policy.Decision.result -> Provenance.t -> unit) ->
  unit
(** {!decide} plus the decision's provenance record: the ladder rung that
    answered (L1/L2/live/stale/offline/fail-closed/shed), the serving
    shard, batch size, failover count, resilience flags, staleness age,
    the deciding PDP's compilation epoch (or offline epoch) and, for
    offline serves, the log head.  Coalesced waiters receive the
    leader's record with the [coalesced] flag set and [at] re-stamped to
    their own delivery instant; since the leader mints at completion, a
    waiter parked across a partition transition observes the rung that
    actually answered.  The same record is
    attached to the audit entry by the wire handler, and the ladder
    latency is observed into [pep_decide_seconds{node,stage}] (with trace
    exemplars when tracing is on). *)

(** {1 Hierarchical caching} *)

val set_l2 : t -> Dacs_net.Net.node_id option -> unit
(** Attach (or detach) the domain's shared {!Cache_hierarchy.L2} service:
    pull and sharded modes consult it between an L1 miss and the live
    tier, warm L1 from its hits, and publish live decisions back to it.
    An unreachable L2 degrades to a miss, never a failure. *)

val l2 : t -> Dacs_net.Net.node_id option

val set_coalescing : t -> bool -> unit
(** Single-flight coalescing (default on): concurrent identical queries —
    same {!Decision_cache.request_key} — share one descent of the ladder
    instead of stampeding the decision tier.  [false] restores the
    one-descent-per-request shape (the e17 ablation baseline). *)

val coalescing : t -> bool

val require_signed_decisions : t -> Dacs_crypto.Cert.Trust_store.t -> unit
(** Pull mode only: from now on, accept only decision responses signed by
    a PDP whose certificate chains to the given trust store (mutual
    authentication of §3.2 — a forged or unsigned decision is treated as
    Indeterminate and therefore denied). *)

val set_pull_pdps : t -> Dacs_net.Net.node_id list -> unit
(** Replace the failover list of a pull-mode PEP — how a discovery
    service rebinds enforcement points to live decision points (§3.2
    "Location of Policy Decision Points").  In sharded mode this replaces
    the tier's shard set (rebuilding the ring), so discovery-driven
    rebinding works unchanged.  Ignored in push/agent modes. *)

val pull_pdps : t -> Dacs_net.Net.node_id list
(** Current failover list — the tier's shard set in sharded mode, [[]]
    in push/agent modes. *)

(** {1 Overload protection} *)

type admission = { max_inflight : int; max_queue : int }
(** At most [max_inflight] concurrent decision-ladder descents; at most
    [max_queue] further requests parked behind them in arrival order. *)

val set_admission : t -> admission option -> unit
(** Bound the admission queue (default: unbounded).  A request arriving
    with the queue full is {e shed}: it fails closed immediately with an
    Indeterminate carrying {!shed_reason} (the enforcement layer denies
    it) and increments [pep_shed_total{node}] — bounded backlog means the
    latency of admitted requests stays bounded too.  [None] removes the
    bound and admits everything currently waiting.  [max_inflight] must
    be positive and [max_queue] non-negative, else [Invalid_argument]. *)

val admission : t -> admission option
val admission_inflight : t -> int
val admission_queue_length : t -> int

val shed_reason : string
(** The Indeterminate message carried by shed requests, so load drivers
    can tell shedding apart from other authorisation errors. *)

(** {1 Resilience}

    Orthogonal to the mode: how hard this PEP fights to reach its
    decision (and revocation) authorities, and how far it degrades when
    it cannot.  Both default off, preserving one-shot ordered failover. *)

val set_retry_policy : t -> Dacs_net.Rpc.retry_policy option -> unit
(** Retry each PDP (pull) / revocation authority (push) call with
    backoff before giving up on that replica.  [None] (the default)
    restores single-attempt calls. *)

val retry_policy : t -> Dacs_net.Rpc.retry_policy option

val set_stale_window : t -> float -> unit
(** Pull mode with a cache only: when every PDP replica is unreachable,
    serve a cached decision expired by at most this many seconds instead
    of denying (recorded in [stale_serves]).  The safety bound: a served
    decision is never older than [cache ttl + window], and it is always
    a decision the policy really issued.  [0.0] (the default) disables
    degraded serving; negative windows raise [Invalid_argument]. *)

val stale_window : t -> float

val set_offline_replica : t -> Offline.t option -> unit
(** Attach the domain's offline replica: a new rung of the decision
    ladder, {e below} bounded-stale and {e above} fail-closed.  When the
    live tier is unreachable and no stale entry is servable, the PEP
    decides from the replica's signed event log ({!Offline.decide}),
    marks the replica offline (starting an offline epoch), and stamps
    the decision with [offline] provenance carrying the epoch and log
    head.  Offline answers are never written to L1/L2 — deny-wins replay
    on heal retroactively invalidates any the converged state
    contradicts.  An offline Indeterminate falls through to fail-closed
    and is never logged.  [None] (the default) removes the rung. *)

val offline_replica : t -> Offline.t option

(** {1 Statistics} *)

type stats = {
  requests : int;
  granted : int;
  denied : int;
  pdp_calls : int;
  failovers : int;  (** times a PDP endpoint was skipped after a failure *)
  retries : int;  (** resilient-call retry attempts issued *)
  breaker_trips : int;  (** circuit-breaker opens observed on our calls *)
  breaker_rejections : int;  (** calls shed without touching the network *)
  cache_hits : int;
  l2_hits : int;  (** decisions served fresh from the shared L2 cache *)
  coalesced : int;  (** queries folded onto an identical in-flight one *)
  stale_serves : int;  (** degraded answers served from expired cache *)
  offline_serves : int;  (** decisions served from the offline event log *)
  shed : int;  (** requests refused by the bounded admission queue *)
  assertion_rejections : int;
  revocation_checks : int;
  obligations_fulfilled : int;
}

val stats : t -> stats
(** A thin read over the bus-wide metrics registry: every field is a
    [pep_*_total{node}] counter, except the resilience trio which reads
    the very [rpc_*_total{src=node}] series the RPC layer increments. *)

val reset_stats : t -> unit
(** Zeros this PEP's series in the shared registry — including the
    resilience counters the RPC bus accumulates on this PEP's behalf, so
    [stats] and {!Dacs_net.Rpc.resilience_stats} stay consistent. *)
