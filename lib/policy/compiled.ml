(* Compilation partitions each leaf policy's rules into four classes by
   the string-equality pins of their targets: pinned on resource-id and
   action-id, pinned on one axis, or pinned on neither (fallback).
   Dispatch unions the buckets selected by the request's resource-id /
   action-id values with the fallback bucket and restores document
   order, so the combining algorithm sees exactly the interpreter's rule
   sequence minus rules whose targets provably cannot match.

   Pruning is attempted on an axis only when the request's bag for that
   attribute is non-empty and all-string: [string-equal] errors on any
   other value type, so a pinned rule could then be Indeterminate rather
   than NotApplicable and must not be skipped.

   Target sections evaluate in order (subjects, resources, actions,
   environments) and an error in an earlier section short-circuits the
   whole target to Indeterminate — before the pinned section's mismatch
   is ever seen.  A rule is therefore indexable on an axis only when
   every match in the sections evaluated before that axis is a
   [string-equal] on a string literal (the only shape that cannot error
   against an all-string bag), and those matches' attributes are
   recorded as the leaf's guard set for the axis: dispatch prunes only
   when every guard attribute's request bag is also non-empty and
   all-string (emptiness would hand the match to the resolver, whose
   answer we cannot see here).

   Rule conditions have policy variables substituted at compile time;
   an unresolvable variable is remembered as a per-rule error that
   evaluation reports exactly as the interpreter would. *)

type prepared = {
  prule : Rule.t;  (* condition already substituted when [prep_error] is None *)
  prep_error : string option;
}

type leaf = {
  lp : Policy.t;
  prules : prepared array;  (* document order *)
  by_pair : (string * string, int list) Hashtbl.t;  (* pinned on both axes *)
  by_res : (string, int list) Hashtbl.t;  (* resource-pinned, action-free *)
  by_act : (string, int list) Hashtbl.t;  (* action-pinned, resource-free *)
  res_pinned : (string, int list) Hashtbl.t;  (* resource-pinned, either way on action *)
  act_pinned : (string, int list) Hashtbl.t;  (* action-pinned, either way on resource *)
  res_free : int list;  (* no resource pin *)
  act_free : int list;  (* no action pin *)
  wild : int list;  (* fallback: pinned on neither axis *)
  all_pos : int list;  (* 0..n-1 *)
  res_guards : (Context.category * string) list;
      (* attributes read by sections evaluated before the resource
         section of any resource-indexed rule *)
  act_guards : (Context.category * string) list;  (* likewise for action *)
}

type node = Leaf_node of leaf | Set_node of cset | Ref_node of string

and cset = { cs : Policy.set; centries : (Policy.child * node) list }

type t = { root : Policy.child; node : node; epoch : int; reused : int }

(* --- leaf compilation --------------------------------------------------- *)

(* The axis values a clause accepts when it pins [attr] by string
   equality; None when the clause leaves the attribute free. *)
let clause_axis_values attr clause =
  let values =
    List.filter_map
      (fun m ->
        if m.Target.attribute_id = attr && m.Target.fn = "string-equal" then
          match m.Target.value with
          | Value.String s -> Some s
          | _ -> None
        else None)
      clause
  in
  match values with [] -> None | vs -> Some vs

(* All values of [attr] a rule's [section] can apply to, or None when
   unconstrained (some clause leaves the attribute free, or the section
   is empty and so matches everything). *)
let section_axis_values attr section =
  match section with
  | [] -> None
  | clauses ->
    let per_clause = List.map (clause_axis_values attr) clauses in
    if List.exists (fun v -> v = None) per_clause then None
    else
      Some
        (List.sort_uniq compare
           (List.concat_map (fun v -> Option.value v ~default:[]) per_clause))

(* A match that cannot evaluate to an error against a non-empty
   all-string bag: string equality between string operands always
   answers true or false. *)
let guardable_match m =
  m.Target.fn = "string-equal"
  && (match m.Target.value with Value.String _ -> true | _ -> false)

(* The (category, attribute) pairs a section's matches read, or None
   when some match could error in a way a bag-shape check at dispatch
   time cannot rule out. *)
let section_guards section =
  if List.for_all (List.for_all guardable_match) section then
    Some
      (List.concat_map
         (List.map (fun m -> (m.Target.category, m.Target.attribute_id)))
         section)
  else None

(* Axis pins are usable only when the sections the interpreter evaluates
   *before* the pinned one provably cannot short-circuit to
   Indeterminate: subjects come before resources, and subjects and
   resources both come before actions.  Eligible rules contribute their
   earlier sections' attributes to the leaf's guard set. *)
let rule_resource_values (rule : Rule.t) =
  match section_axis_values "resource-id" rule.Rule.target.Target.resources with
  | None -> None
  | Some rs -> (
    match section_guards rule.Rule.target.Target.subjects with
    | None -> None
    | Some guards -> Some (rs, guards))

let rule_action_values (rule : Rule.t) =
  match section_axis_values "action-id" rule.Rule.target.Target.actions with
  | None -> None
  | Some as_ -> (
    match
      ( section_guards rule.Rule.target.Target.subjects,
        section_guards rule.Rule.target.Target.resources )
    with
    | Some g1, Some g2 -> Some (as_, g1 @ g2)
    | _ -> None)

let tbl_add tbl key pos =
  let prev = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
  Hashtbl.replace tbl key (pos :: prev)

let tbl_freeze tbl = Hashtbl.iter (fun k v -> Hashtbl.replace tbl k (List.rev v)) tbl

let prepare_rule policy rule =
  match rule.Rule.condition with
  | None -> { prule = rule; prep_error = None }
  | Some condition -> (
    let lookup name = List.assoc_opt name policy.Policy.variables in
    match Expr.substitute lookup condition with
    | Ok condition -> { prule = { rule with Rule.condition = Some condition }; prep_error = None }
    | Error e -> { prule = rule; prep_error = Some e })

let compile_leaf policy =
  let by_pair = Hashtbl.create 16 in
  let by_res = Hashtbl.create 16 in
  let by_act = Hashtbl.create 16 in
  let res_pinned = Hashtbl.create 16 in
  let act_pinned = Hashtbl.create 16 in
  let res_free = ref [] in
  let act_free = ref [] in
  let wild = ref [] in
  let res_guards = ref [] in
  let act_guards = ref [] in
  List.iteri
    (fun pos rule ->
      let rvals = rule_resource_values rule in
      let avals = rule_action_values rule in
      (match rvals with
      | None -> res_free := pos :: !res_free
      | Some (rs, guards) ->
        res_guards := guards @ !res_guards;
        List.iter (fun r -> tbl_add res_pinned r pos) rs);
      (match avals with
      | None -> act_free := pos :: !act_free
      | Some (as_, guards) ->
        act_guards := guards @ !act_guards;
        List.iter (fun a -> tbl_add act_pinned a pos) as_);
      match (rvals, avals) with
      | None, None -> wild := pos :: !wild
      | Some (rs, _), None -> List.iter (fun r -> tbl_add by_res r pos) rs
      | None, Some (as_, _) -> List.iter (fun a -> tbl_add by_act a pos) as_
      | Some (rs, _), Some (as_, _) ->
        List.iter (fun r -> List.iter (fun a -> tbl_add by_pair (r, a) pos) as_) rs)
    policy.Policy.rules;
  tbl_freeze by_pair;
  tbl_freeze by_res;
  tbl_freeze by_act;
  tbl_freeze res_pinned;
  tbl_freeze act_pinned;
  {
    lp = policy;
    prules = Array.of_list (List.map (prepare_rule policy) policy.Policy.rules);
    by_pair;
    by_res;
    by_act;
    res_pinned;
    act_pinned;
    res_free = List.rev !res_free;
    act_free = List.rev !act_free;
    wild = List.rev !wild;
    all_pos = List.init (List.length policy.Policy.rules) Fun.id;
    res_guards = List.sort_uniq compare !res_guards;
    act_guards = List.sort_uniq compare !act_guards;
  }

(* --- dispatch ----------------------------------------------------------- *)

(* The request's values for one axis attribute, but only when pruning on
   it is sound: a non-empty bag of strings and nothing else.  An empty
   bag may be filled by a resolver later; a non-string value makes
   [string-equal] error instead of mismatch. *)
let clean_ids ctx category attr =
  match Context.bag ctx category attr with
  | [] -> None
  | bag ->
    let rec strings acc = function
      | [] -> Some (List.rev acc)
      | Value.String s :: rest -> strings (s :: acc) rest
      | _ -> None
    in
    strings [] bag

let find_list tbl key = Option.value (Hashtbl.find_opt tbl key) ~default:[]

(* Every guard attribute must carry a non-empty all-string bag, so the
   sections evaluated before a pinned one resolve to Match or No_match —
   never Indeterminate — and the pin's mismatch decides the target. *)
let guards_clean ctx guards =
  List.for_all
    (fun (category, attr) ->
      match Context.bag ctx category attr with
      | [] -> false
      | bag -> List.for_all (function Value.String _ -> true | _ -> false) bag)
    guards

(* Candidate positions in document order. *)
let dispatch leaf ctx =
  let rids =
    if guards_clean ctx leaf.res_guards then clean_ids ctx Context.Resource "resource-id"
    else None
  in
  let aids =
    if guards_clean ctx leaf.act_guards then clean_ids ctx Context.Action "action-id"
    else None
  in
  match (rids, aids) with
  | None, None -> leaf.all_pos
  | Some rs, None ->
    List.sort_uniq compare
      (List.concat (leaf.res_free :: List.map (find_list leaf.res_pinned) rs))
  | None, Some as_ ->
    List.sort_uniq compare
      (List.concat (leaf.act_free :: List.map (find_list leaf.act_pinned) as_))
  | Some rs, Some as_ ->
    let pairs =
      List.concat_map (fun r -> List.map (fun a -> find_list leaf.by_pair (r, a)) as_) rs
    in
    List.sort_uniq compare
      (List.concat
         ((leaf.wild :: List.map (find_list leaf.by_res) rs)
         @ List.map (find_list leaf.by_act) as_
         @ pairs))

(* --- evaluation --------------------------------------------------------- *)

let evaluate_leaf ?resolve ctx leaf =
  let policy = leaf.lp in
  match Target.evaluate ?resolve ctx policy.Policy.target with
  | Target.No_match -> Decision.not_applicable
  | Target.Indeterminate_match e ->
    Decision.indeterminate (Printf.sprintf "policy %s target: %s" policy.Policy.id e)
  | Target.Match ->
    let children =
      List.map
        (fun pos ->
          let p = leaf.prules.(pos) in
          {
            Combine.label = "rule " ^ p.prule.Rule.id;
            applicability = (fun () -> Target.evaluate ?resolve ctx p.prule.Rule.target);
            evaluate =
              (fun () ->
                match p.prep_error with
                | None -> Rule.evaluate ?resolve ctx p.prule
                | Some e ->
                  Decision.indeterminate (Printf.sprintf "rule %s: %s" p.prule.Rule.id e));
          })
        (dispatch leaf ctx)
    in
    let result = Combine.combine policy.Policy.rule_combining children in
    Decision.with_obligations result policy.Policy.obligations

let rec evaluate_node ?resolve ?resolve_ref ctx node =
  match node with
  | Leaf_node leaf -> evaluate_leaf ?resolve ctx leaf
  | Ref_node id -> (
    (* References stay dynamic: they resolve against the live PAP at
       evaluation time, exactly as the interpreter does. *)
    match resolve_ref with
    | None -> Decision.indeterminate (Printf.sprintf "unresolved policy reference %s" id)
    | Some r -> (
      match r id with
      | Some (Policy.Policy_ref _) | None ->
        Decision.indeterminate (Printf.sprintf "unresolved policy reference %s" id)
      | Some resolved -> Policy.evaluate_child ?resolve ?resolve_ref ctx resolved))
  | Set_node { cs; centries } -> (
    match Target.evaluate ?resolve ctx cs.Policy.set_target with
    | Target.No_match -> Decision.not_applicable
    | Target.Indeterminate_match e ->
      Decision.indeterminate (Printf.sprintf "policy set %s target: %s" cs.Policy.set_id e)
    | Target.Match ->
      let children =
        List.map
          (fun (child, cnode) ->
            {
              Combine.label = "policy " ^ Policy.child_id child;
              applicability = (fun () -> Policy.applicability ?resolve ?resolve_ref ctx child);
              evaluate = (fun () -> evaluate_node ?resolve ?resolve_ref ctx cnode);
            })
          centries
      in
      let result = Combine.combine cs.Policy.policy_combining children in
      Decision.with_obligations result cs.Policy.set_obligations)

let evaluate ?resolve ?resolve_ref ctx t = evaluate_node ?resolve ?resolve_ref ctx t.node

(* --- compilation and incremental recompilation -------------------------- *)

let rec compile_node ~reuse ~reused child =
  match child with
  | Policy.Policy_ref id -> Ref_node id
  | Policy.Inline_policy p -> (
    match Hashtbl.find_opt reuse p.Policy.id with
    | Some leaf when leaf.lp = p ->
      incr reused;
      Leaf_node leaf
    | _ -> Leaf_node (compile_leaf p))
  | Policy.Inline_set s ->
    Set_node
      { cs = s; centries = List.map (fun c -> (c, compile_node ~reuse ~reused c)) s.Policy.children }

let rec collect_leaves reuse node =
  match node with
  | Leaf_node leaf ->
    if not (Hashtbl.mem reuse leaf.lp.Policy.id) then Hashtbl.add reuse leaf.lp.Policy.id leaf
  | Ref_node _ -> ()
  | Set_node { centries; _ } -> List.iter (fun (_, n) -> collect_leaves reuse n) centries

let compile child =
  let reused = ref 0 in
  { root = child; node = compile_node ~reuse:(Hashtbl.create 1) ~reused child; epoch = 1; reused = 0 }

let recompile t child =
  if t.root = child then t
  else begin
    let reuse = Hashtbl.create 16 in
    collect_leaves reuse t.node;
    let reused = ref 0 in
    let node = compile_node ~reuse ~reused child in
    { root = child; node; epoch = t.epoch + 1; reused = !reused }
  end

let epoch t = t.epoch
let source t = t.root

(* --- inspection --------------------------------------------------------- *)

let fold_leaves f acc t =
  let rec go acc = function
    | Leaf_node leaf -> f acc leaf
    | Ref_node _ -> acc
    | Set_node { centries; _ } -> List.fold_left (fun acc (_, n) -> go acc n) acc centries
  in
  go acc t.node

let rule_count t = fold_leaves (fun acc leaf -> acc + Array.length leaf.prules) 0 t
let leaf_count t = fold_leaves (fun acc _ -> acc + 1) 0 t

let bucket_count t =
  fold_leaves
    (fun acc leaf ->
      acc + Hashtbl.length leaf.by_pair + Hashtbl.length leaf.by_res + Hashtbl.length leaf.by_act)
    0 t

let reused_leaves t = t.reused

let candidate_count t ctx =
  fold_leaves (fun acc leaf -> acc + List.length (dispatch leaf ctx)) 0 t

let pruned_rules t ctx =
  List.rev
    (fold_leaves
       (fun acc leaf ->
         let kept = dispatch leaf ctx in
         let acc = ref acc in
         Array.iteri
           (fun pos p -> if not (List.mem pos kept) then acc := p.prule :: !acc)
           leaf.prules;
         !acc)
       [] t)
