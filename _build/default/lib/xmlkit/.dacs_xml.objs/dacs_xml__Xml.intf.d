lib/xmlkit/xml.mli:
