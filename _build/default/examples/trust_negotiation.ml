(* Trust negotiation (§3.1, Traust-style): a stranger with no prior
   relationship negotiates credentials with a negotiation server, receives
   a signed capability, and uses it at a push-mode PEP.  The full message
   sequence is rendered at the end.

   Run with:  dune exec examples/trust_negotiation.exe *)

module Value = Dacs_policy.Value
module Net = Dacs_net.Net
module Service = Dacs_ws.Service
open Dacs_core

let () =
  let net = Net.create () in
  let services = Service.create (Dacs_net.Rpc.create net) in
  List.iter (Net.add_node net) [ "traust.example.org"; "archive.example.org"; "stranger" ];

  (* The archive's negotiation server: access to the dataset requires the
     client to show a project membership AND an ethics approval; the
     ethics board's approval is sensitive, so the client only reveals it
     after the server has proven its own accreditation; the server in turn
     reveals the accreditation only to enrolled members. *)
  let keys = Dacs_crypto.Rsa.generate (Dacs_crypto.Rng.create 8L) ~bits:512 in
  let server =
    Negotiation_service.create services ~node:"traust.example.org" ~issuer:"traust"
      ~keypair:keys
      ~credentials:[ Negotiation.protected_by "server-accreditation" [ "project-membership" ] ]
      ~requirement_for:(fun ~resource:_ ~action:_ ->
        [ [ "project-membership"; "ethics-approval" ] ])
      ()
  in

  ignore
    (Pep.create services ~node:"archive.example.org" ~domain:"archive" ~resource:"cohort-data"
       ~content:"anonymised cohort records"
       (Pep.Push
          {
            trusted_issuer =
              (fun i -> if i = "traust" then Some (Negotiation_service.public_key server) else None);
            check_revocation = None;
            local_pdp = None;
          }));

  let stranger_credentials =
    [
      Negotiation.unprotected "project-membership";
      Negotiation.protected_by "ethics-approval" [ "server-accreditation" ];
    ]
  in

  Net.set_tracing net true;
  Negotiation_service.negotiate server ~services ~client_node:"stranger"
    ~credentials:stranger_credentials
    ~subject:[ ("subject-id", Value.String "dr-visitor") ]
    ~resource:"cohort-data" ~action:"read"
    (fun outcome ->
      Printf.printf "negotiation: %s after %d round(s), %d message(s)\n"
        (if outcome.Negotiation_service.granted <> None then "GRANTED" else "FAILED")
        outcome.Negotiation_service.rounds outcome.Negotiation_service.messages;
      match outcome.Negotiation_service.granted with
      | None -> ()
      | Some capability ->
        (* Present the negotiated capability at the archive's PEP. *)
        Service.call services ~src:"stranger" ~dst:"archive.example.org" ~service:"access"
          ~headers:[ Dacs_saml.Assertion.to_xml capability ]
          (Wire.access_request
             ~subject:[ ("subject-id", Value.String "dr-visitor") ]
             ~action:"read")
          (fun r ->
            match Option.bind (Result.to_option r) (fun b -> Result.to_option (Wire.parse_access_outcome b)) with
            | Some (Wire.Granted { content; _ }) -> Printf.printf "archive access: GRANTED (%s)\n" content
            | Some (Wire.Denied reason) -> Printf.printf "archive access: DENIED (%s)\n" reason
            | None -> print_endline "archive access: error"));
  Net.run net;

  print_newline ();
  print_string (Dacs_net.Sequence.render (Net.trace net))
