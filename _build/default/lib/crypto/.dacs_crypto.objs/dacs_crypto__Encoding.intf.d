lib/crypto/encoding.mli:
