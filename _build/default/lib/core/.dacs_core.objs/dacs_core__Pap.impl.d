lib/core/pap.ml: Dacs_net Dacs_policy Dacs_ws Dacs_xml List Wire
