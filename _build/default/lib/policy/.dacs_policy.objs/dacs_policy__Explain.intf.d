lib/policy/explain.mli: Context Decision Expr Policy
