type role = string
type user = string

type permission = { action : string; resource : string }

module String_map = Map.Make (String)
module String_set = Set.Make (String)

type constraint_ = { name : string; c_roles : String_set.t; cardinality : int }

type t = {
  role_set : String_set.t;
  inherits : String_set.t String_map.t;  (* senior -> direct juniors *)
  user_roles : String_set.t String_map.t;
  role_perms : permission list String_map.t;
  ssd : constraint_ list;
  dsd : constraint_ list;
}

let empty =
  {
    role_set = String_set.empty;
    inherits = String_map.empty;
    user_roles = String_map.empty;
    role_perms = String_map.empty;
    ssd = [];
    dsd = [];
  }

let add_role t role = { t with role_set = String_set.add role t.role_set }

let roles t = String_set.elements t.role_set

let has_role t role = String_set.mem role t.role_set

let direct_juniors t role =
  Option.value (String_map.find_opt role t.inherits) ~default:String_set.empty

(* Transitive closure downward from [role], excluding the role itself. *)
let juniors_set t role =
  let rec go visited frontier =
    match frontier with
    | [] -> visited
    | r :: rest ->
      let next =
        String_set.diff (direct_juniors t r) visited |> String_set.elements
      in
      go (String_set.union visited (direct_juniors t r)) (next @ rest)
  in
  go String_set.empty [ role ]

let juniors t role = String_set.elements (juniors_set t role)

let direct_juniors_public t role = String_set.elements (direct_juniors t role)

let seniors t role =
  List.filter (fun r -> String_set.mem role (juniors_set t r)) (roles t)

let add_inheritance t ~senior ~junior =
  if not (has_role t senior) then Error (Printf.sprintf "unknown role %s" senior)
  else if not (has_role t junior) then Error (Printf.sprintf "unknown role %s" junior)
  else if senior = junior then Error "a role cannot inherit itself"
  else if String_set.mem senior (juniors_set t junior) then
    Error (Printf.sprintf "inheritance %s -> %s would create a cycle" senior junior)
  else
    Ok
      {
        t with
        inherits =
          String_map.add senior (String_set.add junior (direct_juniors t senior)) t.inherits;
      }

let assigned_set t user =
  Option.value (String_map.find_opt user t.user_roles) ~default:String_set.empty

let assigned_roles t user = String_set.elements (assigned_set t user)

let authorized_set t user =
  String_set.fold
    (fun role acc -> String_set.union acc (String_set.add role (juniors_set t role)))
    (assigned_set t user) String_set.empty

let authorized_roles t user = String_set.elements (authorized_set t user)

let constraint_violated c authorized =
  String_set.cardinal (String_set.inter c.c_roles authorized) >= c.cardinality

let ssd_violation t user role =
  let would_have = String_set.add role (String_set.union (juniors_set t role) (authorized_set t user)) in
  List.find_map
    (fun c -> if constraint_violated c would_have then Some c.name else None)
    t.ssd

let assign_user t user role =
  if not (has_role t role) then Error (Printf.sprintf "unknown role %s" role)
  else
    match ssd_violation t user role with
    | Some name -> Error (Printf.sprintf "assignment violates separation-of-duty constraint %s" name)
    | None ->
      Ok { t with user_roles = String_map.add user (String_set.add role (assigned_set t user)) t.user_roles }

let deassign_user t user role =
  { t with user_roles = String_map.add user (String_set.remove role (assigned_set t user)) t.user_roles }

let grant_permission t role perm =
  if not (has_role t role) then Error (Printf.sprintf "unknown role %s" role)
  else begin
    let current = Option.value (String_map.find_opt role t.role_perms) ~default:[] in
    let perms = if List.mem perm current then current else perm :: current in
    Ok { t with role_perms = String_map.add role perms t.role_perms }
  end

let revoke_permission t role perm =
  let current = Option.value (String_map.find_opt role t.role_perms) ~default:[] in
  { t with role_perms = String_map.add role (List.filter (fun p -> p <> perm) current) t.role_perms }

let direct_permissions t role = Option.value (String_map.find_opt role t.role_perms) ~default:[]

let role_permissions t role =
  let all = String_set.add role (juniors_set t role) in
  String_set.fold (fun r acc -> direct_permissions t r @ acc) all []
  |> List.sort_uniq compare

let user_permissions t user =
  String_set.fold (fun r acc -> role_permissions t r @ acc) (assigned_set t user) []
  |> List.sort_uniq compare

let check_access t user ~action ~resource =
  List.exists (fun p -> p.action = action && p.resource = resource) (user_permissions t user)

let users t = List.map fst (String_map.bindings t.user_roles)

let make_constraint t ~name ~roles:role_list ~cardinality =
  if cardinality < 2 then Error "cardinality must be at least 2"
  else if List.length role_list < cardinality then
    Error "constraint must name at least as many roles as its cardinality"
  else if List.exists (fun r -> not (has_role t r)) role_list then Error "constraint names an unknown role"
  else Ok { name; c_roles = String_set.of_list role_list; cardinality }

let add_ssd t ~name ~roles:role_list ~cardinality =
  match make_constraint t ~name ~roles:role_list ~cardinality with
  | Error e -> Error e
  | Ok c ->
    let offender =
      List.find_opt (fun user -> constraint_violated c (authorized_set t user)) (users t)
    in
    (match offender with
    | Some user -> Error (Printf.sprintf "existing assignment for %s already violates %s" user name)
    | None -> Ok { t with ssd = c :: t.ssd })

let add_dsd t ~name ~roles:role_list ~cardinality =
  match make_constraint t ~name ~roles:role_list ~cardinality with
  | Error e -> Error e
  | Ok c -> Ok { t with dsd = c :: t.dsd }

let dsd_constraints t =
  List.map (fun c -> (c.name, String_set.elements c.c_roles, c.cardinality)) t.dsd

let ssd_constraints t =
  List.map (fun c -> (c.name, String_set.elements c.c_roles, c.cardinality)) t.ssd

let pp fmt t =
  Format.fprintf fmt "rbac: %d roles, %d users, %d SSD, %d DSD"
    (String_set.cardinal t.role_set)
    (List.length (users t))
    (List.length t.ssd) (List.length t.dsd)

(* Public, list-returning views of the internal helpers (placed last so
   they shadow the set-returning internals only at the interface). *)
let direct_juniors = direct_juniors_public
