type pin = {
  pin_category : Context.category;
  pin_attribute : string;
  pin_values : string list;
  pin_guards : (Context.category * string) list;
}

type zone = pin list

type t = Empty | Zones of zone list | Unbounded

let empty = Empty
let unbounded = Unbounded
let max_zones = 64
let is_empty = function Empty -> true | _ -> false
let is_unbounded = function Unbounded -> true | _ -> false

let zone_count = function
  | Empty -> 0
  | Zones zs -> List.length zs
  | Unbounded -> max_int

let normalize = function
  | Zones [] -> Empty
  | Zones zs ->
    let zs = List.sort_uniq compare zs in
    if List.length zs > max_zones then Unbounded else Zones zs
  | t -> t

let union a b =
  match (a, b) with
  | Unbounded, _ | _, Unbounded -> Unbounded
  | Empty, t | t, Empty -> t
  | Zones xs, Zones ys -> normalize (Zones (xs @ ys))

(* --- pin harvesting ------------------------------------------------------ *)

(* The values a clause pins for (category, attr) via string-equal on a
   string literal; None when the clause leaves the position free.  Like
   Compiled.clause_axis_values but category-checked: exclusion must read
   the bag the match actually reads. *)
let clause_pin category attr clause =
  let values =
    List.filter_map
      (fun m ->
        if
          m.Target.category = category
          && m.Target.attribute_id = attr
          && m.Target.fn = "string-equal"
        then match m.Target.value with Value.String s -> Some s | _ -> None
        else None)
      clause
  in
  match values with [] -> None | vs -> Some vs

(* Pins a section contributes for its own category: every clause must
   pin the same (category, attr) position, mirroring
   Compiled.section_axis_values, so a disjoint clean bag makes every
   clause — hence the section — No_match. *)
let section_pins category section guards =
  match section with
  | [] -> []
  | first :: _ ->
    let candidates =
      List.sort_uniq compare
        (List.filter_map
           (fun m ->
             if m.Target.category = category && m.Target.fn = "string-equal" then
               match m.Target.value with
               | Value.String _ -> Some m.Target.attribute_id
               | _ -> None
             else None)
           first)
    in
    List.filter_map
      (fun attr ->
        let per_clause = List.map (clause_pin category attr) section in
        if List.exists (fun v -> v = None) per_clause then None
        else
          Some
            {
              pin_category = category;
              pin_attribute = attr;
              pin_values =
                List.sort_uniq compare
                  (List.concat_map (fun v -> Option.value v ~default:[]) per_clause);
              pin_guards = guards;
            })
      candidates

(* All pins of one target.  A section's pins are usable only when every
   section the interpreter evaluates before it is guardable (subjects,
   then resources, then actions, then environments) — the same
   eligibility rule as Compiled's axis indexing, generalised to every
   pinned attribute. *)
let target_pins (t : Target.t) =
  let subj = section_pins Context.Subject t.Target.subjects [] in
  let gs = Compiled.section_guards t.Target.subjects in
  let res =
    match gs with
    | None -> []
    | Some g -> section_pins Context.Resource t.Target.resources g
  in
  let gr = Compiled.section_guards t.Target.resources in
  let act =
    match (gs, gr) with
    | Some g1, Some g2 -> section_pins Context.Action t.Target.actions (g1 @ g2)
    | _ -> []
  in
  let ga = Compiled.section_guards t.Target.actions in
  let env =
    match (gs, gr, ga) with
    | Some g1, Some g2, Some g3 ->
      section_pins Context.Environment t.Target.environments (g1 @ g2 @ g3)
    | _ -> []
  in
  subj @ res @ act @ env

(* --- tree diff ----------------------------------------------------------- *)

let zone_of_child outer = function
  | Policy.Inline_policy p -> target_pins p.Policy.target @ outer
  | Policy.Inline_set s -> target_pins s.Policy.set_target @ outer
  | Policy.Policy_ref _ -> outer

(* Trim the structurally common prefix and suffix of two lists; edits
   localised to a slice leave only that slice on each side. *)
let trim_common olds news =
  let rec prefix a b =
    match (a, b) with x :: a', y :: b' when x = y -> prefix a' b' | _ -> (a, b)
  in
  let a, b = prefix olds news in
  let ra, rb = prefix (List.rev a) (List.rev b) in
  (List.rev ra, List.rev rb)

let rec diff_child outer o n =
  if o = n then Empty
  else
    match (o, n) with
    | Policy.Inline_policy po, Policy.Inline_policy pn when po.Policy.id = pn.Policy.id ->
      diff_policy outer po pn
    | Policy.Inline_set so, Policy.Inline_set sn when so.Policy.set_id = sn.Policy.set_id ->
      diff_set outer so sn
    | _ ->
      (* wholesale replacement: old and new applicability both affected *)
      normalize (Zones [ zone_of_child outer o; zone_of_child outer n ])

and diff_policy outer po pn =
  if po.Policy.target <> pn.Policy.target then
    normalize
      (Zones
         [
           target_pins po.Policy.target @ outer; target_pins pn.Policy.target @ outer;
         ])
  else
    let zouter = target_pins po.Policy.target @ outer in
    if
      po.Policy.rule_combining <> pn.Policy.rule_combining
      || po.Policy.obligations <> pn.Policy.obligations
      || po.Policy.variables <> pn.Policy.variables
      || po.Policy.issuer <> pn.Policy.issuer
    then normalize (Zones [ zouter ])
    else diff_rules zouter po.Policy.rules pn.Policy.rules

and diff_rules zouter olds news =
  match trim_common olds news with
  | [], [] -> Empty
  | [ ro ], [ rn ] when ro.Rule.id = rn.Rule.id ->
    (* in-place edit of one rule: condition/effect changes affect only
       where the (unchanged) target applies; a retarget affects the old
       and new applicability *)
    if ro.Rule.target = rn.Rule.target then
      normalize (Zones [ target_pins ro.Rule.target @ zouter ])
    else
      normalize
        (Zones
           [
             target_pins ro.Rule.target @ zouter; target_pins rn.Rule.target @ zouter;
           ])
  | a, b ->
    normalize (Zones (List.map (fun r -> target_pins r.Rule.target @ zouter) (a @ b)))

and diff_set outer so sn =
  if so.Policy.set_target <> sn.Policy.set_target then
    normalize
      (Zones
         [
           target_pins so.Policy.set_target @ outer;
           target_pins sn.Policy.set_target @ outer;
         ])
  else
    let zouter = target_pins so.Policy.set_target @ outer in
    if
      so.Policy.policy_combining <> sn.Policy.policy_combining
      || so.Policy.set_obligations <> sn.Policy.set_obligations
    then normalize (Zones [ zouter ])
    else diff_children zouter so.Policy.children sn.Policy.children

and diff_children zouter olds news =
  match trim_common olds news with
  | [], [] -> Empty
  | [ co ], [ cn ] -> diff_child zouter co cn
  | a, b -> normalize (Zones (List.map (zone_of_child zouter) (a @ b)))

let between before after =
  match (before, after) with
  | None, None -> Empty
  | None, Some _ | Some _, None ->
    (* even NotApplicable answers change when there was no policy *)
    Unbounded
  | Some o, Some n -> normalize (diff_child [] o n)

(* --- membership ---------------------------------------------------------- *)

let pin_excludes ctx pin =
  Compiled.guards_clean ctx pin.pin_guards
  &&
  match Compiled.clean_ids ctx pin.pin_category pin.pin_attribute with
  | None -> false
  | Some ids -> List.for_all (fun v -> not (List.mem v pin.pin_values)) ids

let zone_covers ctx zone = not (List.exists (pin_excludes ctx) zone)

let covers t ctx =
  match t with
  | Empty -> false
  | Unbounded -> true
  | Zones zs -> List.exists (zone_covers ctx) zs

let attributes t =
  match t with
  | Empty | Unbounded -> []
  | Zones zs ->
    List.sort_uniq compare
      (List.concat_map
         (fun zone ->
           List.concat_map
             (fun pin -> ((pin.pin_category, pin.pin_attribute) :: pin.pin_guards))
             zone)
         zs)

(* --- printing ------------------------------------------------------------ *)

let category_name = function
  | Context.Subject -> "subject"
  | Context.Resource -> "resource"
  | Context.Action -> "action"
  | Context.Environment -> "environment"

let pp fmt t =
  match t with
  | Empty -> Format.fprintf fmt "empty"
  | Unbounded -> Format.fprintf fmt "unbounded"
  | Zones zs ->
    Format.fprintf fmt "zones[%d]{" (List.length zs);
    List.iteri
      (fun i zone ->
        if i > 0 then Format.fprintf fmt " | ";
        if zone = [] then Format.fprintf fmt "*"
        else
          List.iteri
            (fun j pin ->
              if j > 0 then Format.fprintf fmt " & ";
              Format.fprintf fmt "%s:%s in {%s}" (category_name pin.pin_category)
                pin.pin_attribute
                (String.concat "," pin.pin_values))
            zone)
      zs;
    Format.fprintf fmt "}"

let to_string t = Format.asprintf "%a" pp t
