type effect = Permit | Deny

type t = {
  id : string;
  description : string;
  effect : effect;
  target : Target.t;
  condition : Expr.t option;
}

let make ?(description = "") ?(target = Target.any) ?condition effect id =
  { id; description; effect; target; condition }

let permit ?description ?target ?condition id = make ?description ?target ?condition Permit id
let deny ?description ?target ?condition id = make ?description ?target ?condition Deny id

let effect_decision = function
  | Permit -> Decision.Permit
  | Deny -> Decision.Deny

let evaluate ?resolve ctx rule =
  match Target.evaluate ?resolve ctx rule.target with
  | Target.No_match -> Decision.not_applicable
  | Target.Indeterminate_match e ->
    Decision.indeterminate (Printf.sprintf "rule %s target: %s" rule.id e)
  | Target.Match -> (
    match rule.condition with
    | None -> { Decision.decision = effect_decision rule.effect; obligations = [] }
    | Some condition -> (
      match Expr.eval_condition ?resolve ctx condition with
      | Ok true -> { Decision.decision = effect_decision rule.effect; obligations = [] }
      | Ok false -> Decision.not_applicable
      | Error e ->
        Decision.indeterminate
          (Printf.sprintf "rule %s condition: %s" rule.id (Expr.error_to_string e))))

let pp fmt rule =
  Format.fprintf fmt "rule %s -> %s" rule.id
    (match rule.effect with Permit -> "Permit" | Deny -> "Deny")
