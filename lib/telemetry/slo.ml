(* Rolling-window SLO accounting.  Decisions land in fixed-width time
   slices of the virtual clock; a status sums the slices inside the
   window, so old traffic ages out deterministically as time advances. *)

type objective = {
  availability_target : float;
  latency_threshold : float;
  latency_target : float;
  window : float;
}

let default_objective =
  { availability_target = 0.999; latency_threshold = 0.25; latency_target = 0.99; window = 60.0 }

let slices = 60

type slice = { mutable id : int; mutable total : int; mutable ok : int; mutable fast : int }

type t = {
  now : unit -> float;
  objective : objective;
  width : float;  (* seconds of virtual time per slice *)
  ring : slice array;
}

let create ?(objective = default_objective) ~now () =
  if objective.window <= 0.0 then invalid_arg "Slo.create: window must be positive";
  if objective.availability_target < 0.0 || objective.availability_target > 1.0 then
    invalid_arg "Slo.create: availability_target must be in [0, 1]";
  if objective.latency_target < 0.0 || objective.latency_target > 1.0 then
    invalid_arg "Slo.create: latency_target must be in [0, 1]";
  if objective.latency_threshold < 0.0 then
    invalid_arg "Slo.create: latency_threshold must be non-negative";
  {
    now;
    objective;
    width = objective.window /. float_of_int slices;
    ring = Array.init slices (fun _ -> { id = -1; total = 0; ok = 0; fast = 0 });
  }

let objective t = t.objective

let slice_id t at = int_of_float (Float.floor (at /. t.width))

let slice_at t at =
  let id = slice_id t at in
  let s = t.ring.(id mod slices) in
  if s.id <> id then begin
    s.id <- id;
    s.total <- 0;
    s.ok <- 0;
    s.fast <- 0
  end;
  s

let record t ~ok ~latency =
  let s = slice_at t (t.now ()) in
  s.total <- s.total + 1;
  if ok then s.ok <- s.ok + 1;
  if latency <= t.objective.latency_threshold then s.fast <- s.fast + 1

type status = {
  at : float;
  total : int;
  ok : int;
  fast : int;
  availability : float;
  latency_compliance : float;
  availability_burn : float;
  latency_burn : float;
  availability_met : bool;
  latency_met : bool;
}

(* Burn rate: error rate as a multiple of the error budget.  1.0 means
   errors arrive exactly as fast as the objective tolerates; above 1.0
   the budget is being exhausted.  A zero budget burns infinitely on the
   first error and not at all without one. *)
let burn ~rate ~target =
  let errors = 1.0 -. rate in
  let budget = 1.0 -. target in
  if budget <= 0.0 then if errors > 0.0 then infinity else 0.0 else errors /. budget

let status t =
  let at = t.now () in
  let newest = slice_id t at in
  let oldest = newest - slices + 1 in
  let total = ref 0 and ok = ref 0 and fast = ref 0 in
  Array.iter
    (fun s ->
      if s.id >= oldest && s.id <= newest then begin
        total := !total + s.total;
        ok := !ok + s.ok;
        fast := !fast + s.fast
      end)
    t.ring;
  let ratio num = if !total = 0 then 1.0 else float_of_int num /. float_of_int !total in
  let availability = ratio !ok in
  let latency_compliance = ratio !fast in
  {
    at;
    total = !total;
    ok = !ok;
    fast = !fast;
    availability;
    latency_compliance;
    availability_burn = burn ~rate:availability ~target:t.objective.availability_target;
    latency_burn = burn ~rate:latency_compliance ~target:t.objective.latency_target;
    availability_met = availability >= t.objective.availability_target;
    latency_met = latency_compliance >= t.objective.latency_target;
  }

let pct v = Printf.sprintf "%.3f%%" (v *. 100.0)

let burn_str v = if v = infinity then "inf" else Printf.sprintf "%.2fx" v

let render t =
  let s = status t in
  let o = t.objective in
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun str -> Buffer.add_string buf (str ^ "\n")) fmt in
  line "slo (window %.0fs, %d decisions):" o.window s.total;
  line "  availability: %s served (target %s)  burn %s  %s" (pct s.availability)
    (pct o.availability_target)
    (burn_str s.availability_burn)
    (if s.availability_met then "OK" else "VIOLATED");
  line "  latency <= %gs: %s (target %s)  burn %s  %s" o.latency_threshold
    (pct s.latency_compliance) (pct o.latency_target)
    (burn_str s.latency_burn)
    (if s.latency_met then "OK" else "VIOLATED");
  Buffer.contents buf
