lib/core/capability_service.mli: Dacs_crypto Dacs_net Dacs_policy Dacs_saml Dacs_ws
