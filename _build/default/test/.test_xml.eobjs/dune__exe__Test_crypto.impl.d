test/test_crypto.ml: Alcotest Array Bignum Bytes Cert Char Dacs_crypto Encoding Fun Hmac Lazy List Prime Printf QCheck QCheck_alcotest Rng Rsa Sha256 Stream_cipher String
