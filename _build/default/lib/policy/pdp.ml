type stats = {
  evaluations : int;
  permits : int;
  denies : int;
  not_applicables : int;
  indeterminates : int;
  pip_lookups : int;
}

let zero_stats =
  { evaluations = 0; permits = 0; denies = 0; not_applicables = 0; indeterminates = 0; pip_lookups = 0 }

type t = {
  mutable root : Policy.child;
  pip : (Context.category -> string -> Value.bag option) option;
  resolve_ref : Policy.ref_resolver option;
  mutable stats : stats;
}

let create ?pip ?resolve_ref root = { root; pip; resolve_ref; stats = zero_stats }

let root t = t.root
let set_root t root = t.root <- root

let evaluate t ctx =
  let resolve =
    Option.map
      (fun pip category id ->
        t.stats <- { t.stats with pip_lookups = t.stats.pip_lookups + 1 };
        pip category id)
      t.pip
  in
  let result = Policy.evaluate_child ?resolve ?resolve_ref:t.resolve_ref ctx t.root in
  let s = t.stats in
  t.stats <-
    (match result.Decision.decision with
    | Decision.Permit -> { s with evaluations = s.evaluations + 1; permits = s.permits + 1 }
    | Decision.Deny -> { s with evaluations = s.evaluations + 1; denies = s.denies + 1 }
    | Decision.Not_applicable ->
      { s with evaluations = s.evaluations + 1; not_applicables = s.not_applicables + 1 }
    | Decision.Indeterminate _ ->
      { s with evaluations = s.evaluations + 1; indeterminates = s.indeterminates + 1 });
  result

let stats t = t.stats
let reset_stats t = t.stats <- zero_stats
