(** Offline authorization replica: the eventually consistent mode.

    A partitioned domain should not have to choose between serving stale
    cache entries and failing closed (§3.2 autonomy vs. communication).
    This module gives each domain an ECAC-style replica: a hash-linked,
    HMAC-signed event log of grants, revocations, policy publications
    and offline decisions, from which a PEP can keep deciding while cut
    off — the new [offline] rung of the {!Pep} ladder, below
    bounded-stale and above fail-closed.

    {2 Log format}

    Events are per-author chains: author [d]'s event [seq = n] carries
    [digest_n = SHA-256(digest_{n-1} || canonical_bytes_n)] (from
    {!Dacs_crypto.Chain}) and an HMAC-SHA256 tag over the digest under
    the mesh key.  Canonical bytes are the {!Wire.log_event_unsigned}
    rendering, so every replica recomputes identical digests.  Each
    event also carries the author's vector-clock frontier (highest seq
    seen per author, self included) — the causality needed by deny-wins.

    {2 Replay order and deny-wins}

    Reconciliation merges logs and replays {e all} known events in the
    deterministic total order [(at, author, seq)].  A grant of
    [(subject, attr)] survives iff it causally follows every known
    revocation of that key — its frontier covers each revoke's
    [(author, seq)].  A revocation therefore retroactively defeats any
    grant made concurrently (in another partition component): deny wins
    whenever neither side knew of the other, and each such race is
    surfaced as a conflict record on the audit log.  Among surviving
    grants of one key, the latest in total order supplies the value; the
    latest publication in total order supplies the policy.  Offline
    [Decide] events contradicted by the converged state trigger the
    {!on_invalidate} hook (cache purge) and an audit record. *)

type kind =
  | Grant of { subject : string; attr : string; value : string }
  | Revoke of { subject : string; attr : string }
  | Publish of { policy : string }
      (** a {!Dacs_policy.Policy.child} via {!Dacs_policy.Xacml_xml.child_to_string} *)
  | Decide of { key : string; ctx : string; decision : string }
      (** [key] is the {!Decision_cache.request_key}; [ctx] the serialized
          request context, kept so replay can re-evaluate the exact
          request under the converged state *)

type event = {
  author : string;
  seq : int;  (** 1-based position in the author's chain *)
  at : float;
  epoch : int;  (** author's offline epoch when the event was appended *)
  frontier : (string * int) list;  (** sorted by author, self included *)
  kind : kind;
  digest : string;  (** chain digest (raw bytes) *)
  tag : string;  (** HMAC-SHA256 over [digest] (raw bytes) *)
}

(** Why a sync segment was rejected — each tamper class gets its own
    error, and a rejected segment is never partially admitted. *)
type sync_error =
  | Gap of { author : string; expected : int; got : int }
      (** non-contiguous seq: truncated or re-spliced log *)
  | Chain_mismatch of { author : string; seq : int }
      (** recomputed chain digest differs: mutation or reordering *)
  | Bad_signature of { author : string; seq : int }
      (** HMAC verification failed: wrong key or forged digest *)

val sync_error_to_string : sync_error -> string

type conflict = {
  c_subject : string;
  c_attr : string;
  c_grant_author : string;
  c_revoke_author : string;
  c_at : float;  (** the losing grant's timestamp *)
}

type stats = {
  events_logged : int;  (** events this replica authored *)
  events_known : int;  (** across all authors, after merges *)
  replays : int;  (** full deterministic replays performed *)
  replayed_events : int;  (** cumulative events folded by those replays *)
  invalidations : int;  (** Decide events contradicted by replay *)
  conflicts : int;  (** concurrent grant/revoke races, deny won *)
  sync_rejections : int;  (** segments refused (gap/chain/signature) *)
  offline_decides : int;  (** decisions served from the local log *)
}

type t

val create :
  ?metrics:Dacs_telemetry.Metrics.t ->
  ?audit:Audit.t ->
  ?now:(unit -> float) ->
  key:string ->
  author:string ->
  unit ->
  t
(** [key] is the mesh-wide HMAC key (shared by every replica that may
    sync); [author] names this replica's chain — use the domain name.
    [audit], when given, receives conflict and retroactive-invalidation
    records. *)

val author : t -> string

val epoch : t -> int
(** Offline episodes survived: bumped each time {!set_offline} turns the
    replica offline.  Stamped on events and offline provenance. *)

val head : t -> string
(** This replica's own chain head (raw bytes); {!Dacs_crypto.Chain.genesis}
    while the chain is empty. *)

val head_short : t -> string
(** Human-readable head ({!Dacs_crypto.Chain.short}) — the [log_head]
    carried in offline provenance records. *)

val set_offline : t -> bool -> unit
val is_offline : t -> bool

val frontier : t -> (string * int) list
(** Highest seq known per author, sorted by author. *)

val events : t -> event list
(** Every known event in the deterministic total order [(at, author, seq)]. *)

val stats : t -> stats

(** {1 Writing the log} *)

val grant : t -> subject:string -> attr:string -> value:string -> unit
val revoke : t -> subject:string -> attr:string -> unit

val publish : t -> Dacs_policy.Policy.child -> unit
(** Log (and adopt) a policy for offline evaluation. *)

(** {1 Offline decisions} *)

val decide : t -> Dacs_policy.Context.t -> (Dacs_policy.Decision.result * string) option
(** Decide from local knowledge: evaluate the latest locally known
    policy against the context, with surviving offline grants merged in
    for attribute bags the request left empty.  [None] when there is no
    local basis to answer — no policy published, or the evaluation is
    Indeterminate (an Indeterminate is {e never} logged, so it can never
    replay into a grant).  On [Some (result, head)] a [Decide] event has
    been appended and [head] is {!head_short} at decision time, for the
    provenance record. *)

(** {1 Sync and replay} *)

val missing_for : t -> frontier:(string * int) list -> event list
(** The suffix a peer with [frontier] lacks, oldest first per author. *)

val admit : t -> event list -> (int, sync_error) result
(** Verify and ingest a peer's segment: per-author contiguity (else
    {!Gap}), chain recomputation from the locally known head (else
    {!Chain_mismatch}), HMAC check (else {!Bad_signature}).  Any failure
    rejects the {e whole} segment — nothing is admitted, the local log
    is untouched, and the rejection metric increments.  On success all
    events are appended and a full deterministic replay reconverges the
    derived state; returns the number of newly admitted events. *)

val sync_pair : t -> t -> (int, sync_error) result
(** In-process bidirectional exchange (tests, bench): each side admits
    what the other has.  First error wins; [Ok n] is the total number of
    events that moved. *)

val state_digest : t -> string
(** Hex digest of the canonical rendering of the converged authorization
    state (surviving grants, adopted policy, conflicts).  Two replicas
    that know the same event set produce byte-identical digests — the
    convergence check the model suite gates on. *)

val surviving_grants : t -> (string * string * string) list
(** [(subject, attr, value)] after deny-wins replay, sorted. *)

val policy : t -> Dacs_policy.Policy.child option
(** The adopted (latest in total order) published policy. *)

val conflicts : t -> conflict list

val on_invalidate : t -> (string -> unit) -> unit
(** Register a hook called with the {!Decision_cache.request_key} of any
    logged decision the post-heal replay contradicts — wire it to L2/L1
    purges.  Hooks accumulate; each fires at most once per (author, seq). *)

(** {1 RPC sync (Wire log-sync frames)} *)

val service_name : string

val serve : t -> Dacs_ws.Service.t -> node:Dacs_net.Net.node_id -> unit
(** Answer {!Wire.log_sync_request} frames on [node] with the suffix the
    caller lacks.  Inbound frames never mutate this replica. *)

val sync_rpc :
  t ->
  Dacs_ws.Service.t ->
  src:Dacs_net.Net.node_id ->
  dst:Dacs_net.Net.node_id ->
  ((int, string) result -> unit) ->
  unit
(** One anti-entropy round against a peer's {!serve} endpoint: send our
    frontier, admit the returned suffix.  Transport failures and
    rejected segments surface as [Error]. *)
