lib/core/decision_cache.ml: Dacs_crypto Dacs_policy Hashtbl List Printf Queue String
