test/test_simnet.ml: Alcotest Dacs_crypto Dacs_net Engine List Net Rpc Sequence String
