lib/core/pep.ml: Audit Dacs_crypto Dacs_net Dacs_policy Dacs_saml Dacs_ws Dacs_xml Decision_cache List Pdp_service Printf Result String Wire
