lib/core/meta_policy.ml: Audit Dacs_policy List Printf
