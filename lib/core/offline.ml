module Xml = Dacs_xml.Xml
module Context = Dacs_policy.Context
module Decision = Dacs_policy.Decision
module Policy = Dacs_policy.Policy
module Value = Dacs_policy.Value
module Chain = Dacs_crypto.Chain
module Hmac = Dacs_crypto.Hmac
module Sha256 = Dacs_crypto.Sha256
module Metrics = Dacs_telemetry.Metrics
module Net = Dacs_net.Net
module Service = Dacs_ws.Service

type kind =
  | Grant of { subject : string; attr : string; value : string }
  | Revoke of { subject : string; attr : string }
  | Publish of { policy : string }
  | Decide of { key : string; ctx : string; decision : string }

type event = {
  author : string;
  seq : int;
  at : float;
  epoch : int;
  frontier : (string * int) list;
  kind : kind;
  digest : string;
  tag : string;
}

type sync_error =
  | Gap of { author : string; expected : int; got : int }
  | Chain_mismatch of { author : string; seq : int }
  | Bad_signature of { author : string; seq : int }

let sync_error_to_string = function
  | Gap { author; expected; got } ->
    Printf.sprintf "gap in %s's log: expected seq %d, got %d (truncated or spliced segment)"
      author expected got
  | Chain_mismatch { author; seq } ->
    Printf.sprintf "chain mismatch at %s #%d (mutated or reordered segment)" author seq
  | Bad_signature { author; seq } ->
    Printf.sprintf "bad signature at %s #%d (forged digest or wrong mesh key)" author seq

let sync_error_reason = function
  | Gap _ -> "gap"
  | Chain_mismatch _ -> "chain-mismatch"
  | Bad_signature _ -> "bad-signature"

type conflict = {
  c_subject : string;
  c_attr : string;
  c_grant_author : string;
  c_revoke_author : string;
  c_at : float;
}

type stats = {
  events_logged : int;
  events_known : int;
  replays : int;
  replayed_events : int;
  invalidations : int;
  conflicts : int;
  sync_rejections : int;
  offline_decides : int;
}

(* Derived (replayed) view of the merged log. *)
type state = {
  s_grants : (string * string * string) list;  (* surviving, sorted *)
  s_policy : Policy.child option;
  s_conflicts : conflict list;
}

type counters = {
  c_events : Metrics.counter option;
  c_rejections : string -> unit;  (* by reason *)
  c_replays : Metrics.counter option;
  c_invalidations : Metrics.counter option;
  c_conflicts : Metrics.counter option;
  c_decides : Metrics.counter option;
}

type t = {
  key : string;
  t_author : string;
  now : unit -> float;
  audit : Audit.t option;
  counters : counters;
  logs : (string, event list ref) Hashtbl.t;  (* per author, newest first *)
  heads : (string, string) Hashtbl.t;  (* per author chain head *)
  mutable offline : bool;
  mutable t_epoch : int;
  mutable state : state option;  (* None = dirty, recompute on demand *)
  mutable hooks : (string -> unit) list;
  mutable fired : (string * int) list;  (* Decide events already invalidated *)
  mutable known_conflicts : (string * int * string * int) list;
  mutable n_logged : int;
  mutable n_replays : int;
  mutable n_replayed : int;
  mutable n_invalidations : int;
  mutable n_conflicts : int;
  mutable n_rejections : int;
  mutable n_decides : int;
}

let create ?metrics ?audit ?(now = fun () -> 0.0) ~key ~author () =
  let counters =
    match metrics with
    | None ->
      {
        c_events = None;
        c_rejections = (fun _ -> ());
        c_replays = None;
        c_invalidations = None;
        c_conflicts = None;
        c_decides = None;
      }
    | Some m ->
      let own ?(labels = []) name help =
        Some (Metrics.counter m ~help ~labels:(("domain", author) :: labels) name)
      in
      {
        c_events = own "offline_events_total" "events appended to the local offline log";
        c_rejections =
          (fun reason ->
            Metrics.inc
              (Metrics.counter m ~help:"log-sync segments refused at verification"
                 ~labels:[ ("domain", author); ("reason", reason) ]
                 "offline_sync_rejections_total"));
        c_replays = own "offline_replays_total" "full deterministic replays of the merged log";
        c_invalidations =
          own "offline_retroactive_invalidations_total"
            "offline decisions contradicted by post-heal replay";
        c_conflicts = own "offline_conflicts_total" "concurrent grant/revoke races (deny won)";
        c_decides = own "offline_decides_total" "decisions served from the local log";
      }
  in
  {
    key;
    t_author = author;
    now;
    audit;
    counters;
    logs = Hashtbl.create 7;
    heads = Hashtbl.create 7;
    offline = false;
    t_epoch = 0;
    state = None;
    hooks = [];
    fired = [];
    known_conflicts = [];
    n_logged = 0;
    n_replays = 0;
    n_replayed = 0;
    n_invalidations = 0;
    n_conflicts = 0;
    n_rejections = 0;
    n_decides = 0;
  }

let author t = t.t_author
let epoch t = t.t_epoch
let is_offline t = t.offline

let set_offline t offline =
  if offline && not t.offline then t.t_epoch <- t.t_epoch + 1;
  t.offline <- offline

let head_of t author =
  match Hashtbl.find_opt t.heads author with Some h -> h | None -> Chain.genesis

let head t = head_of t t.t_author
let head_short t = Chain.short (head t)

let log_of t author =
  match Hashtbl.find_opt t.logs author with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.replace t.logs author l;
    l

let max_seq t author = match !(log_of t author) with [] -> 0 | ev :: _ -> ev.seq

let frontier t =
  Hashtbl.fold (fun author l acc -> match !l with [] -> acc | ev :: _ -> (author, ev.seq) :: acc)
    t.logs []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let total_order a b =
  match compare a.at b.at with
  | 0 -> ( match String.compare a.author b.author with 0 -> compare a.seq b.seq | c -> c)
  | c -> c

let events t =
  Hashtbl.fold (fun _ l acc -> List.rev_append !l acc) t.logs [] |> List.sort total_order

let on_invalidate t hook = t.hooks <- hook :: t.hooks

(* --- wire conversion and signing --------------------------------------- *)

let kind_to_wire = function
  | Grant { subject; attr; value } ->
    ("grant", [ ("subject", subject); ("attr", attr); ("value", value) ])
  | Revoke { subject; attr } -> ("revoke", [ ("subject", subject); ("attr", attr) ])
  | Publish { policy } -> ("publish", [ ("policy", policy) ])
  | Decide { key; ctx; decision } ->
    ("decide", [ ("key", key); ("ctx", ctx); ("decision", decision) ])

let kind_of_wire kind fields =
  let field name =
    match List.assoc_opt name fields with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "%s event is missing field %s" kind name)
  in
  let ( let* ) = Result.bind in
  match kind with
  | "grant" ->
    let* subject = field "subject" in
    let* attr = field "attr" in
    let* value = field "value" in
    Ok (Grant { subject; attr; value })
  | "revoke" ->
    let* subject = field "subject" in
    let* attr = field "attr" in
    Ok (Revoke { subject; attr })
  | "publish" ->
    let* policy = field "policy" in
    Ok (Publish { policy })
  | "decide" ->
    let* key = field "key" in
    let* ctx = field "ctx" in
    let* decision = field "decision" in
    Ok (Decide { key; ctx; decision })
  | other -> Error (Printf.sprintf "unknown log event kind %s" other)

let to_wire ev =
  let kind, fields = kind_to_wire ev.kind in
  {
    Wire.le_author = ev.author;
    le_seq = ev.seq;
    le_at = ev.at;
    le_epoch = ev.epoch;
    le_frontier = ev.frontier;
    le_kind = kind;
    le_fields = fields;
    le_digest = ev.digest;
    le_tag = ev.tag;
  }

let of_wire (le : Wire.log_event) =
  match kind_of_wire le.le_kind le.le_fields with
  | Error _ as e -> e
  | Ok kind ->
    Ok
      {
        author = le.le_author;
        seq = le.le_seq;
        at = le.le_at;
        epoch = le.le_epoch;
        frontier = le.le_frontier;
        kind;
        digest = le.le_digest;
        tag = le.le_tag;
      }

let canonical_bytes ev = Xml.to_string (Wire.log_event_unsigned (to_wire ev))

let append_own t kind =
  let seq = max_seq t t.t_author + 1 in
  let frontier =
    (t.t_author, seq)
    :: List.filter (fun (a, _) -> a <> t.t_author) (frontier t)
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let unsigned =
    {
      author = t.t_author;
      seq;
      at = t.now ();
      epoch = t.t_epoch;
      frontier;
      kind;
      digest = "";
      tag = "";
    }
  in
  let digest = Chain.extend ~prev:(head t) (canonical_bytes unsigned) in
  let tag = Hmac.sha256 ~key:t.key digest in
  let ev = { unsigned with digest; tag } in
  let l = log_of t t.t_author in
  l := ev :: !l;
  Hashtbl.replace t.heads t.t_author digest;
  t.n_logged <- t.n_logged + 1;
  Option.iter Metrics.inc t.counters.c_events;
  t.state <- None;
  ev

(* --- deny-wins replay --------------------------------------------------- *)

let covers frontier author seq =
  match List.assoc_opt author frontier with Some n -> n >= seq | None -> false

let grant_key = function
  | Grant { subject; attr; _ } | Revoke { subject; attr } -> Some (subject, attr)
  | _ -> None

(* Fill only the empty subject bags: local grants are fallback knowledge,
   never an override of attributes the request already carried. *)
let enrich_ctx grants ctx =
  match Context.subject_id ctx with
  | None -> ctx
  | Some subject ->
    List.fold_left
      (fun ctx (s, a, v) ->
        if s = subject && Context.bag ctx Context.Subject a = [] then
          Context.add ctx Context.Subject a (Value.String v)
        else ctx)
      ctx grants

let decision_name (result : Decision.result) = Decision.decision_to_string result.decision

let evaluate_logged state ctx_str =
  match Xml.of_string_opt ctx_str with
  | None -> None
  | Some node -> (
    match Context.of_xml node with
    | Error _ -> None
    | Ok ctx -> (
      match state.s_policy with
      | None -> None
      | Some child ->
        Some (Policy.evaluate_child (enrich_ctx state.s_grants ctx) child)))

let replay t =
  let all = events t in
  t.n_replays <- t.n_replays + 1;
  t.n_replayed <- t.n_replayed + List.length all;
  Option.iter Metrics.inc t.counters.c_replays;
  let revokes =
    List.filter_map
      (fun ev -> match ev.kind with Revoke _ -> Some ev | _ -> None)
      all
  in
  let revokes_of key = List.filter (fun r -> grant_key r.kind = Some key) revokes in
  (* A grant survives iff it causally follows every revocation of its key
     — deny wins over anything concurrent or earlier. *)
  let survives g rs = List.for_all (fun r -> covers g.frontier r.author r.seq) rs in
  let surviving, defeated =
    List.partition
      (fun g ->
        match grant_key g.kind with
        | Some key -> survives g (revokes_of key)
        | None -> false)
      (List.filter (fun ev -> match ev.kind with Grant _ -> true | _ -> false) all)
  in
  (* Later in total order wins the value for one key; [all] is sorted. *)
  let values = Hashtbl.create 16 in
  List.iter
    (fun g ->
      match g.kind with
      | Grant { subject; attr; value } -> Hashtbl.replace values (subject, attr) value
      | _ -> ())
    surviving;
  let s_grants =
    Hashtbl.fold (fun (s, a) v acc -> (s, a, v) :: acc) values [] |> List.sort compare
  in
  let s_policy =
    List.fold_left
      (fun acc ev ->
        match ev.kind with
        | Publish { policy } -> (
          match Dacs_policy.Xacml_xml.child_of_string policy with
          | Ok child -> Some child
          | Error _ -> acc)
        | _ -> acc)
      None all
  in
  (* A defeated grant is a conflict only when the race was concurrent:
     neither side causally knew the other.  A revoke that already saw the
     grant is a plain revocation. *)
  let s_conflicts =
    List.concat_map
      (fun g ->
        match g.kind with
        | Grant { subject; attr; _ } ->
          List.filter_map
            (fun r ->
              if
                grant_key r.kind = Some (subject, attr)
                && (not (covers g.frontier r.author r.seq))
                && not (covers r.frontier g.author g.seq)
              then
                Some
                  ( (g.author, g.seq, r.author, r.seq),
                    {
                      c_subject = subject;
                      c_attr = attr;
                      c_grant_author = g.author;
                      c_revoke_author = r.author;
                      c_at = g.at;
                    } )
              else None)
            revokes
        | _ -> [])
      defeated
  in
  List.iter
    (fun (id, c) ->
      if not (List.mem id t.known_conflicts) then begin
        t.known_conflicts <- id :: t.known_conflicts;
        t.n_conflicts <- t.n_conflicts + 1;
        Option.iter Metrics.inc t.counters.c_conflicts;
        Option.iter
          (fun audit ->
            Audit.record audit
              {
                Audit.at = t.now ();
                domain = t.t_author;
                subject = c.c_subject;
                resource = c.c_attr;
                action = "offline-conflict";
                decision = Decision.Deny;
                provenance = None;
              })
          t.audit
      end)
    s_conflicts;
  let state =
    { s_grants; s_policy; s_conflicts = List.map snd s_conflicts |> List.sort_uniq compare }
  in
  (* Retroactive invalidation: any logged offline decision the converged
     state now contradicts gets its cache key purged, once. *)
  List.iter
    (fun ev ->
      match ev.kind with
      | Decide { key; ctx; decision } ->
        if not (List.mem (ev.author, ev.seq) t.fired) then begin
          let converged = evaluate_logged state ctx in
          let contradicted =
            match converged with
            | None -> false
            | Some result -> decision_name result <> decision
          in
          if contradicted then begin
            t.fired <- (ev.author, ev.seq) :: t.fired;
            t.n_invalidations <- t.n_invalidations + 1;
            Option.iter Metrics.inc t.counters.c_invalidations;
            List.iter (fun hook -> hook key) t.hooks;
            Option.iter
              (fun audit ->
                Audit.record audit
                  {
                    Audit.at = t.now ();
                    domain = t.t_author;
                    subject = "";
                    resource = key;
                    action = "offline-invalidate";
                    decision =
                      (match converged with
                      | Some r -> r.Decision.decision
                      | None -> Decision.Indeterminate "unreplayable");
                    provenance = None;
                  })
              t.audit
          end
        end
      | _ -> ())
    all;
  t.state <- Some state;
  state

let force t = match t.state with Some s -> s | None -> replay t

(* --- log writers -------------------------------------------------------- *)

let grant t ~subject ~attr ~value = ignore (append_own t (Grant { subject; attr; value }))
let revoke t ~subject ~attr = ignore (append_own t (Revoke { subject; attr }))

let publish t child =
  ignore (append_own t (Publish { policy = Dacs_policy.Xacml_xml.child_to_string child }))

(* --- offline decisions -------------------------------------------------- *)

let decide t ctx =
  let state = force t in
  match state.s_policy with
  | None -> None
  | Some child -> (
    let result = Policy.evaluate_child (enrich_ctx state.s_grants ctx) child in
    match result.Decision.decision with
    | Decision.Indeterminate _ ->
      (* No local basis: never logged, so an Indeterminate can never be
         cached, replayed, or mistaken for a grant. *)
      None
    | _ ->
      let key = Decision_cache.request_key ctx in
      let ctx_str = Xml.to_string (Context.to_xml ctx) in
      ignore
        (append_own t (Decide { key; ctx = ctx_str; decision = decision_name result }));
      (* The Decide append itself never changes the derived state. *)
      t.state <- Some state;
      t.n_decides <- t.n_decides + 1;
      Option.iter Metrics.inc t.counters.c_decides;
      Some (result, head_short t))

(* --- derived views ------------------------------------------------------ *)

let surviving_grants t = (force t).s_grants
let policy t = (force t).s_policy
let conflicts t = (force t).s_conflicts

let state_digest t =
  let state = force t in
  let b = Buffer.create 256 in
  Buffer.add_string b "grants\n";
  List.iter
    (fun (s, a, v) -> Buffer.add_string b (Printf.sprintf "%s|%s|%s\n" s a v))
    state.s_grants;
  Buffer.add_string b "policy\n";
  Buffer.add_string b
    (match state.s_policy with
    | Some child -> Dacs_policy.Xacml_xml.child_to_string child
    | None -> "-");
  Buffer.add_string b "\nconflicts\n";
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf "%s|%s|%s|%s|%.17g\n" c.c_subject c.c_attr c.c_grant_author
           c.c_revoke_author c.c_at))
    state.s_conflicts;
  Sha256.hex_digest (Buffer.contents b)

let stats t =
  let events_known = Hashtbl.fold (fun _ l acc -> acc + List.length !l) t.logs 0 in
  {
    events_logged = t.n_logged;
    events_known;
    replays = t.n_replays;
    replayed_events = t.n_replayed;
    invalidations = t.n_invalidations;
    conflicts = t.n_conflicts;
    sync_rejections = t.n_rejections;
    offline_decides = t.n_decides;
  }

(* --- sync --------------------------------------------------------------- *)

let missing_for t ~frontier:peer =
  let missing_author author l =
    let known = match List.assoc_opt author peer with Some n -> n | None -> 0 in
    List.filter (fun ev -> ev.seq > known) (List.rev !l)
  in
  Hashtbl.fold (fun author l acc -> missing_author author l @ acc) t.logs []
  |> List.sort total_order

let verify_segment t incoming =
  (* Per-author, in seq order, from our locally known head: recompute the
     chain and check every signature before admitting anything. *)
  let by_author = Hashtbl.create 7 in
  List.iter
    (fun ev ->
      let l = match Hashtbl.find_opt by_author ev.author with Some l -> l | None -> [] in
      Hashtbl.replace by_author ev.author (ev :: l))
    incoming;
  let exception Reject of sync_error in
  try
    let verified =
      Hashtbl.fold
        (fun author l acc ->
          let l = List.sort (fun a b -> compare a.seq b.seq) l in
          let known = max_seq t author in
          let fresh = List.filter (fun ev -> ev.seq > known) l in
          let _ =
            List.fold_left
              (fun (expected, prev) ev ->
                if ev.seq <> expected then
                  raise (Reject (Gap { author; expected; got = ev.seq }));
                let digest = Chain.extend ~prev (canonical_bytes { ev with digest = ""; tag = "" }) in
                if not (String.equal digest ev.digest) then
                  raise (Reject (Chain_mismatch { author; seq = ev.seq }));
                if not (Hmac.verify ~key:t.key digest ~tag:ev.tag) then
                  raise (Reject (Bad_signature { author; seq = ev.seq }));
                (expected + 1, digest))
              (known + 1, head_of t author)
              fresh
          in
          (author, fresh) :: acc)
        by_author []
    in
    Ok verified
  with Reject e -> Error e

let admit t incoming =
  match verify_segment t incoming with
  | Error e ->
    t.n_rejections <- t.n_rejections + 1;
    t.counters.c_rejections (sync_error_reason e);
    Error e
  | Ok verified ->
    let admitted =
      List.fold_left
        (fun n (author, fresh) ->
          match fresh with
          | [] -> n
          | _ ->
            let l = log_of t author in
            List.iter (fun ev -> l := ev :: !l) fresh;
            Hashtbl.replace t.heads author (List.nth fresh (List.length fresh - 1)).digest;
            n + List.length fresh)
        0 verified
    in
    if admitted > 0 then ignore (replay t);
    Ok admitted

let sync_pair a b =
  match admit b (missing_for a ~frontier:(frontier b)) with
  | Error _ as e -> e
  | Ok n -> (
    match admit a (missing_for b ~frontier:(frontier a)) with
    | Error _ as e -> e
    | Ok m -> Ok (n + m))

(* --- RPC sync ----------------------------------------------------------- *)

let service_name = "log-sync"

let serve t services ~node =
  Service.serve services ~node ~service:service_name (fun ~caller:_ ~headers:_ body reply ->
      match Wire.parse_log_sync_request body with
      | Error reason -> reply (Dacs_ws.Soap.fault_body { Dacs_ws.Soap.code = "soap:Sender"; reason })
      | Ok peer_frontier ->
        let suffix = missing_for t ~frontier:peer_frontier in
        reply (Wire.log_sync_response ~head:(head t) (List.map to_wire suffix)))

let sync_rpc t services ~src ~dst k =
  Service.call services ~src ~dst ~service:service_name
    (Wire.log_sync_request ~frontier:(frontier t))
    (fun response ->
      match response with
      | Error e -> k (Error (Service.error_to_string e))
      | Ok body -> (
        match Wire.parse_log_sync_response body with
        | Error reason -> k (Error reason)
        | Ok (_head, wire_events) -> (
          let rec decode acc = function
            | [] -> Ok (List.rev acc)
            | le :: rest -> (
              match of_wire le with Ok ev -> decode (ev :: acc) rest | Error _ as e -> e)
          in
          match decode [] wire_events with
          | Error reason -> k (Error reason)
          | Ok evs -> (
            match admit t evs with
            | Ok n -> k (Ok n)
            | Error e -> k (Error (sync_error_to_string e))))))
