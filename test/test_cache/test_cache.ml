(* Hierarchical caching and batched attribute resolution (E17).

   Covers the three mechanisms of Cache_hierarchy — the PDP attribute
   cache with batched PIP round trips, single-flight coalescing at the
   PEP, and the domain-level shared L2 decision cache with
   revocation-driven invalidation along the syndication hierarchy — plus
   the Decision_cache negative-caching rules, ending with the
   whole-hierarchy revocation property: once an invalidation round
   completes, no cache level serves a grant the policy no longer gives. *)

module Value = Dacs_policy.Value
module Policy = Dacs_policy.Policy
module Rule = Dacs_policy.Rule
module Target = Dacs_policy.Target
module Expr = Dacs_policy.Expr
module Combine = Dacs_policy.Combine
module Decision = Dacs_policy.Decision
module Engine = Dacs_net.Engine
module Net = Dacs_net.Net
module Rpc = Dacs_net.Rpc
module Metrics = Dacs_telemetry.Metrics
module Service = Dacs_ws.Service
open Dacs_core

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  m > 0 && go 0

(* --- fixtures ---------------------------------------------------------- *)

(* Deny-overrides over independent permit rules: every rule's condition
   is evaluated on every pass, so one decision needs all three subject
   attributes — the attribute-heavy shape the batch resolver is for. *)
let attr_policy =
  Policy.Inline_policy
    (Policy.make ~id:"attr-heavy" ~issuer:"d" ~rule_combining:Combine.Deny_overrides
       [
         Rule.permit ~condition:(Expr.one_of (Expr.subject_attr "role") [ "doctor" ]) "by-role";
         Rule.permit
           ~condition:(Expr.one_of (Expr.subject_attr "clearance") [ "secret" ])
           "by-clearance";
         Rule.permit
           ~condition:(Expr.one_of (Expr.subject_attr "department") [ "cardio" ])
           "by-department";
       ])

(* Single-attribute policy for the L2 / coalescing tests: the subject
   carries its role inline, so no PIP traffic muddies the counts. *)
let doctor_policy =
  Policy.Inline_policy
    (Policy.make ~id:"doctor" ~issuer:"d" ~rule_combining:Combine.First_applicable
       [
         Rule.permit
           ~target:Target.(any |> subject_is "role" "doctor" |> action_is "action-id" "read")
           "permit-doctor-read";
         Rule.deny "default-deny";
       ])

type fx = {
  net : Net.t;
  services : Service.t;
  pip : Pip.t;
  pdp : Pdp_service.t;
  pep : Pep.t;
  alice : Client.t;
}

let setup ?(attr_batch = true) ?(attr_cache = true) ?cache () =
  let net = Net.create ~seed:3L () in
  let services = Service.create (Rpc.create net) in
  let add id =
    Net.add_node net id;
    id
  in
  let pip = Pip.create services ~node:(add "pip") ~name:"pip" in
  List.iter
    (fun (id, v) -> Pip.add_subject_attribute pip ~subject:"alice" ~id v)
    [
      ("role", Value.String "doctor");
      ("clearance", Value.String "secret");
      ("department", Value.String "cardio");
    ];
  let pdp =
    Pdp_service.create services ~node:(add "pdp") ~name:"pdp" ~root:attr_policy ~pips:[ "pip" ]
      ?attr_cache_ttl:(if attr_cache then Some 60.0 else None)
      ~attr_batch ()
  in
  let pep =
    Pep.create services ~node:(add "pep") ~domain:"d" ~resource:"r" ~content:"c"
      (Pep.Pull { pdps = [ "pdp" ]; cache; call_timeout = 5.0 })
  in
  let alice =
    Client.create services ~node:(add "alice") ~subject:[ ("subject-id", Value.String "alice") ]
  in
  { net; services; pip; pdp; pep; alice }

let request fx ?(client = fx.alice) ?(action = "read") ~at outcome =
  Engine.schedule_at (Net.engine fx.net) ~at (fun () ->
      Client.request client ~pep:"pep" ~action ~timeout:5.0 (fun r -> outcome := Some r))

let granted o = match !o with Some (Ok (Wire.Granted _)) -> true | _ -> false
let denied o = match !o with Some (Ok (Wire.Denied _)) -> true | _ -> false

(* --- batched attribute resolution -------------------------------------- *)

let test_batched_single_round_trip () =
  let fx = setup () in
  let o1 = ref None in
  request fx ~at:1.0 o1;
  Net.run fx.net;
  check bool_ "granted" true (granted o1);
  check int_ "three attributes resolved in one frame" 1
    (Pdp_service.stats fx.pdp).Pdp_service.pip_fetches;
  check int_ "the PIP served all three" 3 (Pip.lookups_served fx.pip);
  check int_ "PDP subscribed for invalidations" 1 (List.length (Pip.subscribers fx.pip));
  (* Second decision: the attribute cache is warm, no PIP traffic at all. *)
  let o2 = ref None in
  request fx ~at:10.0 o2;
  Net.run fx.net;
  check bool_ "granted again" true (granted o2);
  check int_ "no refetch" 1 (Pdp_service.stats fx.pdp).Pdp_service.pip_fetches;
  match Pdp_service.attr_cache fx.pdp with
  | None -> Alcotest.fail "attribute cache expected"
  | Some c ->
    check int_ "three bags cached" 3 (Cache_hierarchy.Attr_cache.size c);
    check bool_ "cache hits recorded" true (Cache_hierarchy.Attr_cache.hits c >= 3)

let test_sequential_ablation () =
  let fx = setup ~attr_batch:false () in
  let o1 = ref None in
  request fx ~at:1.0 o1;
  Net.run fx.net;
  check bool_ "granted" true (granted o1);
  check int_ "one RPC per missing attribute" 3 (Pdp_service.stats fx.pdp).Pdp_service.pip_fetches;
  check int_ "the PIP served the same three" 3 (Pip.lookups_served fx.pip)

let test_legacy_no_attr_cache () =
  let fx = setup ~attr_cache:false () in
  let o1 = ref None and o2 = ref None in
  request fx ~at:1.0 o1;
  Net.run fx.net;
  request fx ~at:10.0 o2;
  Net.run fx.net;
  check bool_ "granted" true (granted o1 && granted o2);
  (* Without the cache every decision resolves afresh (still batched). *)
  check int_ "one frame per decision" 2 (Pdp_service.stats fx.pdp).Pdp_service.pip_fetches;
  check int_ "six attribute serves" 6 (Pip.lookups_served fx.pip)

let test_attribute_invalidation_push () =
  let fx = setup () in
  let o1 = ref None in
  request fx ~at:1.0 o1;
  Net.run fx.net;
  check bool_ "granted" true (granted o1);
  (* Dropping one attribute pushes a targeted invalidation: only that
     attribute is refetched, and the decision still permits through the
     remaining rules. *)
  Pip.remove_subject_attribute fx.pip ~subject:"alice" ~id:"role";
  Net.run fx.net;
  let o2 = ref None in
  request fx ~at:10.0 o2;
  Net.run fx.net;
  check bool_ "still granted via clearance/department" true (granted o2);
  check int_ "one extra frame" 2 (Pdp_service.stats fx.pdp).Pdp_service.pip_fetches;
  check int_ "only the dropped attribute refetched" 4 (Pip.lookups_served fx.pip);
  (* Dropping the rest flips the decision on the very next request: no
     TTL wait, the pushes purge the cached bags immediately. *)
  Pip.remove_subject_attribute fx.pip ~subject:"alice" ~id:"clearance";
  Pip.remove_subject_attribute fx.pip ~subject:"alice" ~id:"department";
  Net.run fx.net;
  let o3 = ref None in
  request fx ~at:20.0 o3;
  Net.run fx.net;
  check bool_ "denied once every grant-carrying attribute is revoked" true (denied o3)

let test_negative_attribute_cache () =
  let fx = setup () in
  let bob =
    Client.create fx.services ~node:"bob" ~subject:[ ("subject-id", Value.String "bob") ]
  in
  Net.add_node fx.net "bob";
  let o1 = ref None and o2 = ref None in
  request fx ~client:bob ~at:1.0 o1;
  Net.run fx.net;
  request fx ~client:bob ~at:10.0 o2;
  Net.run fx.net;
  check bool_ "denied both times" true (denied o1 && denied o2);
  (* The empty bags are cached too: a subject with no attributes costs
     one PIP round trip, not one per decision. *)
  check int_ "one frame total" 1 (Pdp_service.stats fx.pdp).Pdp_service.pip_fetches

(* --- single-flight coalescing ------------------------------------------ *)

let test_coalescing () =
  let fx = setup () in
  let o1 = ref None and o2 = ref None in
  request fx ~at:1.0 o1;
  request fx ~at:1.0 o2;
  Net.run fx.net;
  check bool_ "both granted" true (granted o1 && granted o2);
  let s = Pep.stats fx.pep in
  check int_ "two requests" 2 s.Pep.requests;
  check int_ "one descent of the ladder" 1 s.Pep.pdp_calls;
  check int_ "the second was coalesced" 1 s.Pep.coalesced

let test_coalescing_distinct_keys () =
  let fx = setup () in
  let o1 = ref None and o2 = ref None in
  request fx ~at:1.0 ~action:"read" o1;
  request fx ~at:1.0 ~action:"write" o2;
  Net.run fx.net;
  let s = Pep.stats fx.pep in
  check int_ "different requests never coalesce" 0 s.Pep.coalesced;
  check int_ "two PDP calls" 2 s.Pep.pdp_calls

let test_coalescing_off () =
  let fx = setup () in
  Pep.set_coalescing fx.pep false;
  let o1 = ref None and o2 = ref None in
  request fx ~at:1.0 o1;
  request fx ~at:1.0 o2;
  Net.run fx.net;
  check bool_ "both granted" true (granted o1 && granted o2);
  let s = Pep.stats fx.pep in
  check int_ "no coalescing" 0 s.Pep.coalesced;
  check int_ "two PDP calls" 2 s.Pep.pdp_calls

(* --- decision-cache negative caching ----------------------------------- *)

let test_negative_caching_rules () =
  let c = Decision_cache.create ~ttl:60.0 () in
  Decision_cache.put c ~now:0.0 ~key:"k1" (Decision.indeterminate "pdp unreachable");
  check int_ "Indeterminate is never cached" 0 (Decision_cache.size c);
  Decision_cache.put c ~now:0.0 ~key:"k1" { Decision.decision = Decision.Deny; obligations = [] };
  Decision_cache.put c ~now:0.0 ~key:"k2" Decision.not_applicable;
  Decision_cache.put c ~now:0.0 ~key:"k3" Decision.permit;
  check int_ "Deny / NotApplicable / Permit all cache" 3 (Decision_cache.size c);
  check bool_ "deny served back" true (Decision_cache.get c ~now:30.0 ~key:"k1" <> None);
  check bool_ "expired past the shared TTL" true (Decision_cache.get c ~now:61.0 ~key:"k1" = None)

(* --- shared L2 decision cache ------------------------------------------ *)

type l2fx = {
  net : Net.t;
  services : Service.t;
  l2 : Cache_hierarchy.L2.t;
  pep1 : Pep.t;
  pep2 : Pep.t;
  alice : Client.t;
}

let setup_l2 () =
  let net = Net.create ~seed:9L () in
  let services = Service.create (Rpc.create net) in
  let add id =
    Net.add_node net id;
    id
  in
  ignore
    (Pdp_service.create services ~node:(add "pdp") ~name:"pdp" ~root:doctor_policy ());
  let l2 = Cache_hierarchy.L2.create services ~node:(add "l2") ~ttl:60.0 () in
  let mk node =
    Pep.create services ~node:(add node) ~domain:"d" ~resource:"r" ~content:"c"
      (Pep.Pull
         {
           pdps = [ "pdp" ];
           cache = Some (Decision_cache.create ~ttl:60.0 ());
           call_timeout = 5.0;
         })
  in
  let pep1 = mk "pep1" and pep2 = mk "pep2" in
  Pep.set_l2 pep1 (Some "l2");
  Pep.set_l2 pep2 (Some "l2");
  let alice =
    Client.create services ~node:(add "alice")
      ~subject:[ ("subject-id", Value.String "alice"); ("role", Value.String "doctor") ]
  in
  { net; services; l2; pep1; pep2; alice }

let l2_request fx ~pep ~at outcome =
  Engine.schedule_at (Net.engine fx.net) ~at (fun () ->
      Client.request fx.alice ~pep ~action:"read" ~timeout:5.0 (fun r -> outcome := Some r))

let test_l2_shared_between_peps () =
  let fx = setup_l2 () in
  let o1 = ref None in
  l2_request fx ~pep:"pep1" ~at:1.0 o1;
  Net.run fx.net;
  check bool_ "granted live" true (granted o1);
  check int_ "the decision was published to L2" 1 (Cache_hierarchy.L2.size fx.l2);
  (* A replica that never saw this request answers from the shared
     cache — and warms its own L1 doing so. *)
  let o2 = ref None in
  l2_request fx ~pep:"pep2" ~at:10.0 o2;
  Net.run fx.net;
  check bool_ "granted from L2" true (granted o2);
  let s2 = Pep.stats fx.pep2 in
  check int_ "L2 hit" 1 s2.Pep.l2_hits;
  check int_ "no PDP call" 0 s2.Pep.pdp_calls;
  let o3 = ref None in
  l2_request fx ~pep:"pep2" ~at:20.0 o3;
  Net.run fx.net;
  check int_ "L1 warmed by the L2 hit" 1 (Pep.stats fx.pep2).Pep.cache_hits;
  let st = Cache_hierarchy.L2.stats fx.l2 in
  check int_ "one L2 lookup hit" 1 st.Cache_hierarchy.L2.hits

let test_l2_unreachable_degrades_to_miss () =
  let fx = setup_l2 () in
  Net.add_node fx.net "ghost";
  Pep.set_l2 fx.pep1 (Some "ghost");
  let o1 = ref None in
  l2_request fx ~pep:"pep1" ~at:1.0 o1;
  Net.run fx.net;
  check bool_ "an unreachable L2 never fails a decision" true (granted o1);
  let s = Pep.stats fx.pep1 in
  check int_ "treated as a miss" 0 s.Pep.l2_hits;
  check int_ "live path taken" 1 s.Pep.pdp_calls

let test_deny_never_outlives_invalidation () =
  let fx = setup_l2 () in
  (* The revocation hook a domain installs: L2 rounds purge PEP L1s. *)
  Cache_hierarchy.L2.set_on_invalidate fx.l2 (fun key ->
      match key with
      | None -> List.iter Pep.invalidate_cache [ fx.pep1; fx.pep2 ]
      | Some key -> List.iter (fun p -> Pep.invalidate_key p ~key) [ fx.pep1; fx.pep2 ]);
  let mallory =
    Client.create fx.services ~node:"mallory"
      ~subject:[ ("subject-id", Value.String "mallory"); ("role", Value.String "intern") ]
  in
  Net.add_node fx.net "mallory";
  let ask at outcome =
    Engine.schedule_at (Net.engine fx.net) ~at (fun () ->
        Client.request mallory ~pep:"pep1" ~action:"read" ~timeout:5.0 (fun r ->
            outcome := Some r))
  in
  let o1 = ref None and o2 = ref None and o3 = ref None in
  ask 1.0 o1;
  Net.run fx.net;
  ask 10.0 o2;
  Net.run fx.net;
  check bool_ "denied both times" true (denied o1 && denied o2);
  let s = Pep.stats fx.pep1 in
  check int_ "the deny was served from L1" 1 s.Pep.cache_hits;
  check int_ "one live call so far" 1 s.Pep.pdp_calls;
  (* One invalidation round: the cached deny is gone from every level —
     negative entries obey revocation exactly like grants. *)
  Cache_hierarchy.L2.invalidate_all fx.l2;
  Net.run fx.net;
  check int_ "L2 purged" 0 (Cache_hierarchy.L2.size fx.l2);
  ask 20.0 o3;
  Net.run fx.net;
  check bool_ "still denied, freshly decided" true (denied o3);
  let s = Pep.stats fx.pep1 in
  check int_ "no stale cache answered" 1 s.Pep.cache_hits;
  check int_ "the third request went live" 2 s.Pep.pdp_calls

(* --- invalidation fan-out and anti-entropy ------------------------------ *)

let test_invalidation_fanout () =
  let net = Net.create ~seed:13L () in
  let services = Service.create (Rpc.create net) in
  let add id =
    Net.add_node net id;
    id
  in
  let root = Cache_hierarchy.L2.create services ~node:(add "root") ~ttl:60.0 () in
  let l2a = Cache_hierarchy.L2.create services ~node:(add "l2a") ~ttl:60.0 () in
  let l2b = Cache_hierarchy.L2.create services ~node:(add "l2b") ~ttl:60.0 () in
  Cache_hierarchy.L2.subscribe root ~child:"l2a";
  Cache_hierarchy.L2.subscribe root ~child:"l2b";
  let seeder = add "seeder" in
  Engine.schedule_at (Net.engine net) ~at:0.5 (fun () ->
      List.iter
        (fun l2 ->
          Cache_hierarchy.L2.remote_put services ~src:seeder ~l2 ~key:"k1" Decision.permit;
          Cache_hierarchy.L2.remote_put services ~src:seeder ~l2 ~key:"k2" Decision.permit)
        [ "l2a"; "l2b" ]);
  Net.run net;
  check int_ "children seeded" 4
    (Cache_hierarchy.L2.size l2a + Cache_hierarchy.L2.size l2b);
  (* Keyed drop: only k1 disappears, epochs untouched. *)
  Cache_hierarchy.L2.invalidate root ~key:"k1";
  Net.run net;
  check int_ "keyed drop reached both children" 2
    (Cache_hierarchy.L2.size l2a + Cache_hierarchy.L2.size l2b);
  check int_ "keyed drops do not bump epochs" 0 (Cache_hierarchy.L2.epoch l2a);
  (* Full purge: everything gone, epochs advance, latency observed. *)
  Cache_hierarchy.L2.invalidate_all root;
  Net.run net;
  check int_ "full purge reached both children" 0
    (Cache_hierarchy.L2.size l2a + Cache_hierarchy.L2.size l2b);
  check int_ "child epoch advanced" 1 (Cache_hierarchy.L2.epoch l2a);
  check int_ "root epoch advanced" 1 (Cache_hierarchy.L2.epoch root);
  let dump = Metrics.render (Service.metrics services) in
  check bool_ "invalidation latency histogram populated" true
    (contains dump "l2_invalidation_latency_seconds")

let test_anti_entropy_backstop () =
  let net = Net.create ~seed:17L () in
  let services = Service.create (Rpc.create net) in
  let add id =
    Net.add_node net id;
    id
  in
  let root = Cache_hierarchy.L2.create services ~node:(add "root") ~ttl:60.0 () in
  (* The child is NOT subscribed: the push is "lost".  Only the
     anti-entropy poll can tell it about the purge. *)
  let child = Cache_hierarchy.L2.create services ~node:(add "child") ~ttl:60.0 () in
  Cache_hierarchy.L2.enable_anti_entropy child ~parent:"root" ~period:2.0;
  let seeder = add "seeder" in
  Engine.schedule_at (Net.engine net) ~at:0.5 (fun () ->
      Cache_hierarchy.L2.remote_put services ~src:seeder ~l2:"child" ~key:"k" Decision.permit);
  Engine.schedule_at (Net.engine net) ~at:1.0 (fun () ->
      Cache_hierarchy.L2.invalidate_all root);
  Engine.run (Net.engine net) ~until:10.0;
  check int_ "the poll applied the missed purge" 0 (Cache_hierarchy.L2.size child);
  check bool_ "child epoch caught up" true (Cache_hierarchy.L2.epoch child >= 1)

(* --- targeted invalidation from change-impact regions ------------------- *)

module Delta = Dacs_policy.Delta
module Context = Dacs_policy.Context

(* A publish appending one rule confined to resource "lab": its
   change-impact region pins resource-id to {lab}, so entries for other
   resources are provably outside it and must survive a targeted round. *)
let region_rules extra =
  [ Rule.permit ~target:Target.(any |> subject_is "role" "doctor") "permit-doctor" ]
  @ extra
  @ [ Rule.deny "default-deny" ]

let lab_region =
  let mk rules = Policy.make ~id:"region-base" ~rule_combining:Combine.First_applicable rules in
  let base = mk (region_rules []) in
  let widened =
    mk (region_rules [ Rule.permit ~target:Target.(any |> resource_is "resource-id" "lab") "lab-bonus" ])
  in
  Delta.between (Some (Policy.Inline_policy base)) (Some (Policy.Inline_policy widened))

let rctx resource =
  Context.make
    ~subject:[ ("subject-id", Value.String "alice"); ("role", Value.String "doctor") ]
    ~resource:[ ("resource-id", Value.String resource) ]
    ~action:[ ("action-id", Value.String "read") ]
    ()

let rkey resource = Decision_cache.request_key (rctx resource)

let test_region_targeted_drops () =
  check bool_ "the rule-append region is bounded" true
    (not (Delta.is_unbounded lab_region) && not (Delta.is_empty lab_region));
  (* L1: only the key decoding into the region is dropped. *)
  let c = Decision_cache.create ~ttl:60.0 () in
  List.iter
    (fun r -> Decision_cache.put c ~now:0.0 ~key:(rkey r) Decision.permit)
    [ "chart"; "lab"; "note" ];
  check int_ "only the lab entry dropped" 1 (Decision_cache.invalidate_region c lab_region);
  check int_ "two entries retained" 2 (Decision_cache.size c);
  check bool_ "chart decision survives" true (Decision_cache.get c ~now:1.0 ~key:(rkey "chart") <> None);
  check bool_ "lab decision gone" true (Decision_cache.get c ~now:1.0 ~key:(rkey "lab") = None);
  check int_ "an empty region drops nothing" 0 (Decision_cache.invalidate_region c Delta.empty);
  (* Attribute cache: only the pinned position's bags drop. *)
  let m = Dacs_telemetry.Metrics.create () in
  let ac = Cache_hierarchy.Attr_cache.create m ~node:"pdp" ~ttl:60.0 () in
  Cache_hierarchy.Attr_cache.store ac ~now:0.0 ~category:Context.Resource ~id:"resource-id"
    ~subject:"alice" [ Value.String "lab" ];
  Cache_hierarchy.Attr_cache.store ac ~now:0.0 ~category:Context.Subject ~id:"role" ~subject:"alice"
    [ Value.String "doctor" ];
  check int_ "the pinned position's bag dropped" 1
    (Cache_hierarchy.Attr_cache.invalidate_region ac lab_region);
  check int_ "the role bag survives" 1 (Cache_hierarchy.Attr_cache.size ac)

let test_region_unbounded_flush () =
  (* A first publish (no previous tree) has no bound at all. *)
  let root = Policy.Inline_policy (Policy.make ~id:"p" (region_rules [])) in
  check bool_ "appearance of a policy is unbounded" true (Delta.is_unbounded (Delta.between None (Some root)));
  let c = Decision_cache.create ~ttl:60.0 () in
  List.iter
    (fun r -> Decision_cache.put c ~now:0.0 ~key:(rkey r) Decision.permit)
    [ "chart"; "lab" ];
  check int_ "unbounded drops everything" 2 (Decision_cache.invalidate_region c Delta.unbounded);
  check int_ "L1 emptied" 0 (Decision_cache.size c);
  let m = Dacs_telemetry.Metrics.create () in
  let ac = Cache_hierarchy.Attr_cache.create m ~node:"pdp" ~ttl:60.0 () in
  Cache_hierarchy.Attr_cache.store ac ~now:0.0 ~category:Context.Subject ~id:"role" ~subject:"alice"
    [ Value.String "doctor" ];
  check int_ "attribute cache flushed too" 1
    (Cache_hierarchy.Attr_cache.invalidate_region ac Delta.unbounded);
  check int_ "no bags left" 0 (Cache_hierarchy.Attr_cache.size ac)

(* A region push the child never hears (not subscribed) still bumps the
   root epoch, so the child's next anti-entropy poll repairs the loss —
   as a conservative full purge. *)
let test_region_anti_entropy_repair () =
  let net = Net.create ~seed:23L () in
  let services = Service.create (Rpc.create net) in
  let add id =
    Net.add_node net id;
    id
  in
  let root = Cache_hierarchy.L2.create services ~node:(add "root") ~ttl:60.0 () in
  let child = Cache_hierarchy.L2.create services ~node:(add "child") ~ttl:60.0 () in
  Cache_hierarchy.L2.enable_anti_entropy child ~parent:"root" ~period:2.0;
  let seeder = add "seeder" in
  Engine.schedule_at (Net.engine net) ~at:0.5 (fun () ->
      List.iter
        (fun r ->
          Cache_hierarchy.L2.remote_put services ~src:seeder ~l2:"child" ~key:(rkey r)
            Decision.permit)
        [ "chart"; "lab" ]);
  Engine.schedule_at (Net.engine net) ~at:1.0 (fun () ->
      Cache_hierarchy.L2.invalidate_region root lab_region);
  Engine.run (Net.engine net) ~until:10.0;
  check int_ "region purge bumped the root epoch" 1 (Cache_hierarchy.L2.epoch root);
  check int_ "the poll repaired the lost region push" 0 (Cache_hierarchy.L2.size child);
  check bool_ "child epoch caught up" true (Cache_hierarchy.L2.epoch child >= 1);
  (* An Empty region must NOT bump the epoch: no purge happened anywhere,
     so no poll-driven flush may be triggered. *)
  Cache_hierarchy.L2.invalidate_region root Delta.empty;
  check int_ "empty regions leave the epoch alone" 1 (Cache_hierarchy.L2.epoch root)

(* The put/region race: a fire-and-forget put composed before a targeted
   purge but delivered after it must not resurrect the entry the purge
   killed.  The put is stamped at send time; the L2 rejects any put
   stamped before its last purge. *)
let test_region_put_race () =
  let net = Net.create ~seed:27L () in
  let services = Service.create (Rpc.create net) in
  let add id =
    Net.add_node net id;
    id
  in
  let l2 = Cache_hierarchy.L2.create services ~node:(add "l2") ~ttl:60.0 () in
  let seeder = add "seeder" in
  (* A slow link: the put sent at t=1 lands at t=2, after the purge. *)
  Net.set_latency net "seeder" "l2" 1.0;
  Engine.schedule_at (Net.engine net) ~at:1.0 (fun () ->
      Cache_hierarchy.L2.remote_put services ~src:seeder ~l2:"l2" ~key:(rkey "lab") Decision.permit);
  Engine.schedule_at (Net.engine net) ~at:1.5 (fun () ->
      Cache_hierarchy.L2.invalidate_region l2 lab_region);
  Engine.run (Net.engine net) ~until:5.0;
  check int_ "the in-flight put was rejected" 1 (Cache_hierarchy.L2.rejected_puts l2);
  check int_ "the purged entry was not resurrected" 0 (Cache_hierarchy.L2.size l2);
  (* A put composed after the purge is accepted as usual. *)
  Engine.schedule_at (Net.engine net) ~at:6.0 (fun () ->
      Cache_hierarchy.L2.remote_put services ~src:seeder ~l2:"l2" ~key:(rkey "lab") Decision.permit);
  Engine.run (Net.engine net) ~until:10.0;
  check int_ "no further rejections" 1 (Cache_hierarchy.L2.rejected_puts l2);
  check int_ "post-purge put stored" 1 (Cache_hierarchy.L2.size l2)

(* --- the whole hierarchy under revocation ------------------------------- *)

let test_vo_revocation_round () =
  let net = Net.create ~seed:21L () in
  let services = Service.create (Rpc.create net) in
  let da = Domain.create services ~name:"hospital" ~attr_cache_ttl:60.0 () in
  let db = Domain.create services ~name:"lab" ~attr_cache_ttl:60.0 () in
  let vo = Vo.form services ~name:"vo" [ da; db ] in
  Vo.publish_policy vo doctor_policy;
  Net.run net;
  Domain.register_user da ~user:"alice"
    [ ("subject-id", Value.String "alice"); ("role", Value.String "doctor") ];
  let pep =
    Domain.expose_resource da ~resource:"chart" ~cache:(Decision_cache.create ~ttl:60.0 ()) ()
  in
  ignore (Vo.cache_hierarchy vo ~ttl:60.0 ());
  Net.add_node net "alice.pc";
  (* The client presents only its identity; the role lives at the PIP. *)
  let alice =
    Client.create services ~node:"alice.pc" ~subject:[ ("subject-id", Value.String "alice") ]
  in
  (* Syndication already advanced the virtual clock; schedule relative. *)
  let t0 = Net.now net in
  let ask at outcome =
    Engine.schedule_at (Net.engine net) ~at:(t0 +. at) (fun () ->
        Client.request alice ~pep:(Pep.node pep) ~action:"read" ~timeout:5.0 (fun r ->
            outcome := Some r))
  in
  let o1 = ref None and o2 = ref None and o3 = ref None in
  ask 1.0 o1;
  ask 10.0 o2;
  Engine.run (Net.engine net) ~until:(t0 +. 19.0);
  check bool_ "granted live, then from cache" true (granted o1 && granted o2);
  check bool_ "second answer came from a cache level" true
    (let s = Pep.stats pep in
     s.Pep.cache_hits + s.Pep.l2_hits >= 1);
  (* Revoke at t=10: the PIP drops the role (pushing an attribute
     invalidation to the PDP cache) and the capability revocation runs
     one decision-cache invalidation round from the VO root. *)
  Engine.schedule_at (Net.engine net) ~at:(t0 +. 20.0) (fun () ->
      Pip.remove_subject_attribute (Domain.pip da) ~subject:"alice" ~id:"role";
      Vo.revoke_capability vo ~assertion_id:"cap-1");
  (* Sample L2 occupancy after the invalidation round settles but before
     the next request re-populates the caches (with its deny). *)
  let l2_sizes_after_round = ref [] in
  Engine.schedule_at (Net.engine net) ~at:(t0 +. 25.0) (fun () ->
      l2_sizes_after_round :=
        List.map
          (fun d ->
            match Domain.l2 d with
            | None -> Alcotest.fail "domain should have an L2"
            | Some l2 -> Cache_hierarchy.L2.size l2)
          (Vo.domains vo));
  ask 30.0 o3;
  Engine.run (Net.engine net) ~until:(t0 +. 50.0);
  check bool_ "no cache level still serves the grant" true (denied o3);
  let s = Pep.stats pep in
  check int_ "exactly the two pre-revocation grants" 2 s.Pep.granted;
  (* L2s across the whole VO were purged by the round. *)
  List.iter
    (fun size -> check bool_ "member L2 emptied" true (size = 0))
    !l2_sizes_after_round

let () =
  Alcotest.run "dacs_cache"
    [
      ( "attr-batching",
        [
          Alcotest.test_case "all misses resolved in one PIP round trip" `Quick
            test_batched_single_round_trip;
          Alcotest.test_case "sequential ablation costs one RPC per attribute" `Quick
            test_sequential_ablation;
          Alcotest.test_case "without the cache every decision refetches" `Quick
            test_legacy_no_attr_cache;
          Alcotest.test_case "PIP pushes purge exactly the dropped attribute" `Quick
            test_attribute_invalidation_push;
          Alcotest.test_case "empty bags are negative-cached" `Quick test_negative_attribute_cache;
        ] );
      ( "single-flight",
        [
          Alcotest.test_case "identical concurrent queries share one descent" `Quick
            test_coalescing;
          Alcotest.test_case "distinct queries never coalesce" `Quick
            test_coalescing_distinct_keys;
          Alcotest.test_case "ablation switch restores per-request descents" `Quick
            test_coalescing_off;
        ] );
      ( "negative-caching",
        [
          Alcotest.test_case "deny and not-applicable cache; indeterminate never" `Quick
            test_negative_caching_rules;
          Alcotest.test_case "cached denies never outlive an invalidation round" `Quick
            test_deny_never_outlives_invalidation;
        ] );
      ( "l2",
        [
          Alcotest.test_case "replicas share decisions through the domain L2" `Quick
            test_l2_shared_between_peps;
          Alcotest.test_case "an unreachable L2 degrades to a miss" `Quick
            test_l2_unreachable_degrades_to_miss;
          Alcotest.test_case "invalidations fan out along the hierarchy" `Quick
            test_invalidation_fanout;
          Alcotest.test_case "anti-entropy applies a lost purge within one round" `Quick
            test_anti_entropy_backstop;
        ] );
      ( "region-invalidation",
        [
          Alcotest.test_case "a bounded region drops only matching entries" `Quick
            test_region_targeted_drops;
          Alcotest.test_case "an unbounded region degrades to the full flush" `Quick
            test_region_unbounded_flush;
          Alcotest.test_case "anti-entropy repairs a lost region push" `Quick
            test_region_anti_entropy_repair;
          Alcotest.test_case "an in-flight put cannot outlive a region purge" `Quick
            test_region_put_race;
        ] );
      ( "revocation",
        [
          Alcotest.test_case "after one round no cache level serves the grant" `Quick
            test_vo_revocation_round;
        ] );
    ]
