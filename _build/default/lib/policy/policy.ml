type t = {
  id : string;
  version : int;
  description : string;
  issuer : string;
  target : Target.t;
  variables : (string * Expr.t) list;
  rules : Rule.t list;
  rule_combining : Combine.algorithm;
  obligations : Obligation.t list;
}

type child =
  | Inline_policy of t
  | Inline_set of set
  | Policy_ref of string

and set = {
  set_id : string;
  set_version : int;
  set_description : string;
  set_target : Target.t;
  children : child list;
  policy_combining : Combine.algorithm;
  set_obligations : Obligation.t list;
}

let make ?(version = 1) ?(description = "") ?(issuer = "") ?(target = Target.any)
    ?(variables = []) ?(rule_combining = Combine.Deny_overrides) ?(obligations = []) ~id rules =
  { id; version; description; issuer; target; variables; rules; rule_combining; obligations }

let make_set ?(version = 1) ?(description = "") ?(target = Target.any)
    ?(policy_combining = Combine.Deny_overrides) ?(obligations = []) ~id children =
  {
    set_id = id;
    set_version = version;
    set_description = description;
    set_target = target;
    children;
    policy_combining;
    set_obligations = obligations;
  }

type ref_resolver = string -> child option

let child_id = function
  | Inline_policy p -> p.id
  | Inline_set s -> s.set_id
  | Policy_ref id -> id

let rec evaluate ?resolve ?resolve_ref ctx policy =
  ignore resolve_ref;
  match Target.evaluate ?resolve ctx policy.target with
  | Target.No_match -> Decision.not_applicable
  | Target.Indeterminate_match e ->
    Decision.indeterminate (Printf.sprintf "policy %s target: %s" policy.id e)
  | Target.Match ->
    let lookup name = List.assoc_opt name policy.variables in
    let resolved_rule rule =
      (* Inline variable definitions into the condition; a broken
         reference surfaces as Indeterminate for that rule only. *)
      match rule.Rule.condition with
      | None -> Ok rule
      | Some condition -> (
        match Expr.substitute lookup condition with
        | Ok condition -> Ok { rule with Rule.condition = Some condition }
        | Error e -> Error e)
    in
    let children =
      List.map
        (fun rule ->
          {
            Combine.label = "rule " ^ rule.Rule.id;
            applicability = (fun () -> Target.evaluate ?resolve ctx rule.Rule.target);
            evaluate =
              (fun () ->
                match resolved_rule rule with
                | Ok rule -> Rule.evaluate ?resolve ctx rule
                | Error e ->
                  Decision.indeterminate (Printf.sprintf "rule %s: %s" rule.Rule.id e));
          })
        policy.rules
    in
    let result = Combine.combine policy.rule_combining children in
    Decision.with_obligations result policy.obligations

and evaluate_set ?resolve ?resolve_ref ctx set =
  match Target.evaluate ?resolve ctx set.set_target with
  | Target.No_match -> Decision.not_applicable
  | Target.Indeterminate_match e ->
    Decision.indeterminate (Printf.sprintf "policy set %s target: %s" set.set_id e)
  | Target.Match ->
    let children =
      List.map
        (fun child ->
          {
            Combine.label = "policy " ^ child_id child;
            applicability = (fun () -> applicability ?resolve ?resolve_ref ctx child);
            evaluate = (fun () -> evaluate_child ?resolve ?resolve_ref ctx child);
          })
        set.children
    in
    let result = Combine.combine set.policy_combining children in
    Decision.with_obligations result set.set_obligations

and evaluate_child ?resolve ?resolve_ref ctx child =
  match child with
  | Inline_policy p -> evaluate ?resolve ?resolve_ref ctx p
  | Inline_set s -> evaluate_set ?resolve ?resolve_ref ctx s
  | Policy_ref id -> (
    (* Reference-to-reference chains are rejected to rule out resolver
       cycles. *)
    match resolve_ref with
    | None -> Decision.indeterminate (Printf.sprintf "unresolved policy reference %s" id)
    | Some r -> (
      match r id with
      | Some (Policy_ref _) | None ->
        Decision.indeterminate (Printf.sprintf "unresolved policy reference %s" id)
      | Some resolved -> evaluate_child ?resolve ?resolve_ref ctx resolved))

and applicability ?resolve ?resolve_ref ctx child =
  match child with
  | Inline_policy p -> Target.evaluate ?resolve ctx p.target
  | Inline_set s -> Target.evaluate ?resolve ctx s.set_target
  | Policy_ref id -> (
    match resolve_ref with
    | None -> Target.Indeterminate_match (Printf.sprintf "unresolved policy reference %s" id)
    | Some r -> (
      match r id with
      | Some (Policy_ref _) | None ->
        Target.Indeterminate_match (Printf.sprintf "unresolved policy reference %s" id)
      | Some resolved -> applicability ?resolve ?resolve_ref ctx resolved))

let rule_count p = List.length p.rules

let rec set_rule_count ?resolve_ref set =
  List.fold_left
    (fun acc child ->
      acc
      +
      match child with
      | Inline_policy p -> rule_count p
      | Inline_set s -> set_rule_count ?resolve_ref s
      | Policy_ref id -> (
        match resolve_ref with
        | None -> 0
        | Some r -> (
          match r id with
          | Some (Inline_policy p) -> rule_count p
          | Some (Inline_set s) -> set_rule_count ?resolve_ref s
          | Some (Policy_ref _) | None -> 0)))
    0 set.children

let pp fmt p =
  Format.fprintf fmt "policy %s v%d (%s, %d rules)" p.id p.version
    (Combine.name p.rule_combining) (List.length p.rules)
