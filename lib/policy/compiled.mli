(** Compiled policy evaluation: per-(resource, action) target-indexed
    dispatch over a whole policy tree.

    {!Policy.evaluate} walks every rule of every policy for every
    request.  Compilation partitions each leaf policy's rules by the
    [resource-id]/[action-id] string-equality pins in their targets —
    rules pinned on both axes, on one, or on neither (the fallback
    bucket) — and precomputes the variable-substituted form of every
    rule condition.  Dispatch then unions the buckets the request's
    resource-id/action-id select with the fallback bucket and restores
    document order, so the combining algorithm sees exactly the rule
    sequence the interpreter would, minus rules that provably cannot
    match.

    Soundness of pruning: a rule is indexed on an axis only when every
    clause of that target section pins the axis attribute with
    [string-equal] on a string literal, and pruning on an axis is
    attempted only when the request carries a non-empty, all-string bag
    for that attribute (a non-string value would make [string-equal]
    error — Indeterminate — rather than mismatch, so such requests take
    the full scan).  Under those two conditions a pruned rule's target
    is guaranteed [No_match], hence the rule is NotApplicable and
    contributes nothing to any combining algorithm.

    The compiled form is a pure value: compiling never changes
    decisions, obligations (and their document order), or Indeterminate
    messages relative to {!Policy.evaluate_child}. *)

type t

val compile : Policy.child -> t
(** Compile a policy tree from scratch.  The compilation epoch starts
    at 1. *)

val recompile : t -> Policy.child -> t
(** Incremental recompilation against a previous compile: leaf policies
    that are structurally unchanged reuse their compiled form.  If the
    whole tree is unchanged the previous value is returned as-is and the
    epoch is preserved; any structural change bumps the epoch by one
    (epochs are monotonic). *)

val epoch : t -> int
(** Compilation epoch: 1 for a fresh {!compile}, incremented by every
    {!recompile} that observed a change. *)

val source : t -> Policy.child
(** The policy tree this value was compiled from. *)

val evaluate :
  ?resolve:Expr.resolver -> ?resolve_ref:Policy.ref_resolver -> Context.t -> t -> Decision.result
(** Same result as {!Policy.evaluate_child} on {!source}, for any
    request, resolver and reference resolver. *)

(** {1 Inspection} *)

val rule_count : t -> int
(** Total rules across all compiled leaves ([Policy_ref] children count
    0 — they are resolved dynamically at evaluation time). *)

val leaf_count : t -> int
(** Inline leaf policies compiled. *)

val bucket_count : t -> int
(** Indexed buckets across all leaves (pair, resource-only and
    action-only buckets). *)

val reused_leaves : t -> int
(** Leaves carried over unchanged by the {!recompile} that produced this
    value; 0 after a fresh {!compile}. *)

val candidate_count : t -> Context.t -> int
(** Rules evaluation would consider for this request, summed over all
    leaves (the selectivity measure for the compiled-vs-interpreted
    ablation).  [Policy_ref] children are not counted. *)

val pruned_rules : t -> Context.t -> Rule.t list
(** The rules dispatch skips for this request (the complement of the
    candidate set).  Every pruned rule's target is [No_match] for the
    request — the property the equivalence suite checks directly. *)

(** {1 Guard discipline}

    The primitives the soundness argument above is built from, exported
    for {!Delta}'s change-impact analysis, which must exclude requests
    from an affected region under exactly the same conditions dispatch
    prunes rules. *)

val section_axis_values : string -> Target.section -> string list option
(** The values a target section accepts for an attribute, when every
    clause pins it with [string-equal] on a string literal; [None] when
    some clause leaves it free (or the section is empty). *)

val section_guards : Target.section -> (Context.category * string) list option
(** The (category, attribute) positions a section reads, when every
    match is a [string-equal] against a string literal (and so can never
    error on an all-string bag); [None] otherwise. *)

val guards_clean : Context.t -> (Context.category * string) list -> bool
(** Every guard position carries a non-empty all-string bag, so the
    guarded sections evaluate to Match or No_match — never
    Indeterminate. *)

val clean_ids : Context.t -> Context.category -> string -> string list option
(** The request's bag at one position when pruning on it is sound: a
    non-empty bag of strings and nothing else.  An empty bag may be
    filled by a resolver later; a non-string value makes [string-equal]
    error instead of mismatch. *)
