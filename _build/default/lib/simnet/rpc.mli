(** Request/response layer over {!Net} with correlation ids and timeouts.

    Components register named services on nodes; callers issue asynchronous
    calls and receive either the reply payload or a timeout.  This is the
    substrate the SOAP layer (and hence every PEP/PDP/PAP/PIP exchange)
    rides on; timeouts are what make PDP failover observable. *)

type t

type error =
  | Timeout
  | No_such_service of string

val error_to_string : error -> string

val create : Net.t -> t
val net : t -> Net.t

val serve :
  t ->
  node:Net.node_id ->
  service:string ->
  (caller:Net.node_id -> string -> (string -> unit) -> unit) ->
  unit
(** [serve t ~node ~service handler] registers a service.  The handler
    receives the request payload and a [reply] continuation it must call
    exactly once (possibly later, after its own nested calls complete). *)

val call :
  t ->
  src:Net.node_id ->
  dst:Net.node_id ->
  service:string ->
  ?timeout:float ->
  ?category:string ->
  string ->
  ((string, error) result -> unit) ->
  unit
(** Asynchronous call.  The continuation fires with [Ok reply], or with
    [Error Timeout] after [timeout] seconds (default 1.0) if no reply
    arrived — whether because of loss, crash, partition or a missing
    service.  [category] labels traffic for accounting (defaults to
    [service]). *)

val calls_in_flight : t -> int
