(* Figure 1 end-to-end: three organisations form a Virtual Organisation,
   share a VO-wide policy by syndication, and serve cross-domain requests
   while each domain keeps local autonomy.

   Run with:  dune exec examples/virtual_organisation.exe *)

module Value = Dacs_policy.Value
module Policy = Dacs_policy.Policy
module Rule = Dacs_policy.Rule
module Expr = Dacs_policy.Expr
module Target = Dacs_policy.Target
module Combine = Dacs_policy.Combine
module Obligation = Dacs_policy.Obligation
module Net = Dacs_net.Net
module Service = Dacs_ws.Service
open Dacs_core

let () =
  let net = Net.create () in
  (* Cross-domain links are slower than intra-domain ones. *)
  Net.set_default_latency net 0.002;
  let services = Service.create (Dacs_net.Rpc.create net) in

  (* Three collaborating organisations. *)
  let uni = Domain.create services ~name:"university" () in
  let lab = Domain.create services ~name:"research-lab" () in
  let firm = Domain.create services ~name:"pharma-firm" () in
  let vo = Vo.form services ~name:"genomics-vo" [ uni; lab; firm ] in
  Printf.printf "formed VO %s with %d member domains\n" (Vo.name vo) (List.length (Vo.domains vo));

  (* The VO-wide policy: researchers of any member may read the shared
     dataset; every permitted access carries an audit obligation. *)
  let vo_policy =
    Policy.Inline_policy
      (Policy.make ~id:"vo-sharing" ~issuer:"genomics-vo" ~rule_combining:Combine.First_applicable
         ~obligations:[ Obligation.audit ]
         [
           Rule.permit
             ~target:
               Target.(
                 any |> resource_is "resource-id" "genome-dataset" |> action_is "action-id" "read")
             ~condition:(Expr.one_of (Expr.subject_attr "role") [ "researcher"; "pi" ])
             "permit-researchers";
           Rule.deny "default-deny";
         ])
  in
  Vo.publish_policy vo vo_policy;
  Net.run net;
  List.iter
    (fun d ->
      Printf.printf "  %s PAP now at version %d\n" (Domain.name d) (Pap.version (Domain.pap d)))
    (Vo.domains vo);

  (* The lab hosts the dataset; the firm adds a local restriction: its
     competitors' consultants are blacklisted regardless of the VO grant. *)
  let pep = Domain.expose_resource lab ~resource:"genome-dataset" ~content:"ACGT..." () in
  Domain.set_local_policy lab
    (Policy.Inline_policy
       (Policy.make ~id:"lab-local" ~issuer:"research-lab"
          [
            Rule.deny
              ~target:Target.(any |> subject_is "affiliation" "rival-corp")
              "no-rivals";
          ]));
  Net.run net;

  (* Clients from different domains. *)
  let alice =
    Vo.client_for vo ~domain:uni ~user:"alice"
      [ ("subject-id", Value.String "alice"); ("role", Value.String "researcher") ]
  in
  let eve =
    Vo.client_for vo ~domain:firm ~user:"eve"
      [
        ("subject-id", Value.String "eve");
        ("role", Value.String "researcher");
        ("affiliation", Value.String "rival-corp");
      ]
  in
  let mallory =
    Vo.client_for vo ~domain:firm ~user:"mallory" [ ("subject-id", Value.String "mallory") ]
  in

  let show who = function
    | Ok (Wire.Granted _) -> Printf.printf "%-8s -> GRANTED\n" who
    | Ok (Wire.Denied reason) -> Printf.printf "%-8s -> DENIED (%s)\n" who reason
    | Error e -> Printf.printf "%-8s -> ERROR (%s)\n" who (Service.error_to_string e)
  in
  Client.request alice ~pep:(Pep.node pep) ~action:"read" (show "alice");
  Client.request eve ~pep:(Pep.node pep) ~action:"read" (show "eve");
  Client.request mallory ~pep:(Pep.node pep) ~action:"read" (show "mallory");
  Net.run net;

  (* Consolidated audit across the whole VO. *)
  Printf.printf "\nconsolidated VO audit:\n";
  List.iter
    (fun e ->
      Printf.printf "  [%s] %s %s %s -> %s\n" e.Audit.domain e.Audit.subject e.Audit.action
        e.Audit.resource
        (Dacs_policy.Decision.decision_to_string e.Audit.decision))
    (Audit.entries (Vo.merged_audit vo));

  Printf.printf "\ntraffic by category:\n";
  List.iter
    (fun (category, s) -> Printf.printf "  %-24s %4d msgs %8d bytes\n" category s.Net.count s.Net.bytes)
    (Net.stats_by_category net);

  (* The consolidated management view of §3.2. *)
  print_newline ();
  print_string (Report.vo vo)
