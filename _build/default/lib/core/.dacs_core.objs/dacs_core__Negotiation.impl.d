lib/core/negotiation.ml: List
