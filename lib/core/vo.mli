(** Virtual Organisation: domains collaborating under shared trust and a
    syndicated VO-wide policy (Fig. 1 + Fig. 5).

    Forming a VO wires the cross-domain trust fabric (every domain's PEPs
    can validate assertions from every member's IdP and the VO capability
    service), stands up a VO-level PAP at the top of the syndication
    hierarchy, and runs a VO capability service for push-model access. *)

type t

val form : Dacs_ws.Service.t -> name:string -> Domain.t list -> t
(** Creates nodes [<name>.pap] and [<name>.cas], subscribes every member
    PAP to the VO PAP, and authorises the VO PAP as a policy updater at
    each member. *)

val name : t -> string
val services : t -> Dacs_ws.Service.t
val domains : t -> Domain.t list
val find_domain : t -> string -> Domain.t option

val vo_pap : t -> Pap.t
val capability_service : t -> Capability_service.t

val publish_policy : t -> Dacs_policy.Policy.child -> unit
(** Publish at the VO PAP; syndication pushes it to every member, where it
    is combined with the member's local policy.  Also installs it as the
    capability service's decision basis, and — when {!cache_hierarchy}
    is attached — syndicates the publish's change-impact region down the
    L2 tree so only affected cached decisions are purged (an unbounded
    region degrades to the old VO-wide flush; the anti-entropy epoch
    poll backstops lost region pushes). *)

val issuer_key : t -> string -> Dacs_crypto.Rsa.public_key option
(** Trust lookup across the VO: IdP issuers of every member plus the VO
    capability service. *)

val merged_audit : t -> Audit.t
(** Consolidated, time-ordered audit view across all member domains
    (§3.2 management). *)

val pdp_tier :
  t ->
  node:Dacs_net.Net.node_id ->
  shards:int ->
  ?batch:int ->
  ?linger:float ->
  ?vnodes:int ->
  ?service_time:float ->
  ?rule_cost:float ->
  ?max_inflight:int ->
  ?refresh:Pdp_service.policy_refresh ->
  ?compiled:bool ->
  ?root:Dacs_policy.Policy.child ->
  unit ->
  Pdp_tier.t * Pdp_service.t list
(** Stand up [shards] PDP replicas ([<name>.pdp.0] …) bound to the VO
    PAP and a {!Pdp_tier} dispatching to them from [node] (typically the
    enforcement point's node).  [batch]/[linger]/[vnodes] configure the
    tier, [service_time]/[rule_cost]/[max_inflight]/[refresh]/[compiled]/[root]
    each replica (see {!Pdp_service.create}).  Returns the tier and the replicas so callers
    can install policies or crash individual shards. *)

(** {1 Hierarchical caching} *)

val cache_hierarchy :
  t -> ?max_entries:int -> ttl:float -> ?anti_entropy_period:float -> unit -> Cache_hierarchy.L2.t
(** The caching mirror of policy syndication (Fig. 5): stands up a
    VO-root cache node [<name>.l2], attaches every member domain's
    shared L2 (creating them as needed, see {!Domain.attach_l2}) as its
    children, and enables each domain's anti-entropy poll against the
    root every [anti_entropy_period] (default 5) virtual seconds.
    Invalidations push root → domain → PEP L1 along the same edges
    policy updates flow; the poll bounds a lost push's staleness by one
    period.  Idempotent. *)

val l2_root : t -> Cache_hierarchy.L2.t option

(** {1 Offline mode} *)

val offline_mesh : t -> ?key:string -> ?anti_entropy_period:float -> unit -> Offline.t list
(** The offline mirror of {!cache_hierarchy}: attaches an offline replica
    to every member domain (see {!Domain.attach_offline}) under one
    mesh-wide HMAC key (default: derived from the VO name) and schedules
    a full-mesh log anti-entropy — each replica pulls every peer's
    suffix over the {!Offline.service_name} service every
    [anti_entropy_period] (default 5) virtual seconds.  Rounds blocked
    by a partition fail harmlessly and reschedule; the first round after
    heal exchanges the diverged logs and deny-wins replay reconverges
    every replica (byte-identical {!Offline.state_digest}).  Idempotent;
    returns the replicas in member order. *)

val offline_replicas : t -> Offline.t list
(** Empty until {!offline_mesh} has run. *)

val revoke_capability : t -> assertion_id:string -> unit
(** Revoke at the capability service {e and} run one invalidation round
    from the cache-hierarchy root (when one exists), so no cache level in
    any member domain keeps serving decisions influenced by the revoked
    grant. *)

val client_for :
  t -> domain:Domain.t -> user:string -> (string * Dacs_policy.Value.t) list -> Client.t
(** Create a client node [<domain>.client.<user>] with the given subject
    attributes and register the user in its home domain. *)
