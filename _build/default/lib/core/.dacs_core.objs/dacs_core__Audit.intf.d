lib/core/audit.mli: Dacs_policy
