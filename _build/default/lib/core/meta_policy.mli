(** History-based meta-policies (§3.1): application-specific constraints
    that static conflict analysis cannot catch.

    Evaluated against the audit history {e after} the ordinary policy
    decision; a meta-policy can only tighten (downgrade Permit to Deny),
    never loosen. Includes the Brewer–Nash Chinese-Wall model the paper
    cites for VO-wide conflict-of-interest control. *)

type coi_class = {
  class_name : string;
  datasets : (string * string list) list;
      (** (dataset name, resources in it); a subject that has touched one
          dataset of a class is walled off from the class's others *)
}

type t =
  | Chinese_wall of coi_class list
  | Dynamic_resource_sod of { name : string; resources : string list; limit : int }
      (** no subject may (over its history) access [limit] or more of
          [resources] *)

val check :
  t -> history:Audit.t -> subject:string -> resource:string -> (unit, string) result
(** [Error reason] when the requested access would violate the
    meta-policy given the subject's permitted-access history. *)

val check_all :
  t list -> history:Audit.t -> subject:string -> resource:string -> (unit, string) result

val guard :
  t list ->
  history:Audit.t ->
  subject:string ->
  resource:string ->
  Dacs_policy.Decision.result ->
  Dacs_policy.Decision.result
(** Downgrade a Permit to Deny when a meta-policy objects; other decisions
    pass through unchanged. *)
