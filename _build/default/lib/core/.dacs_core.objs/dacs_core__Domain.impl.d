lib/core/domain.ml: Audit Char Dacs_crypto Dacs_net Dacs_policy Dacs_rbac Dacs_ws Idp Int64 List Option Pap Pdp_service Pep Pip Printf String
