(* Sharded PDP tier: routing, batching, failover and degradation.

   Covers the dispatcher itself (consistent-hash remapping, batch
   coalescing, shard-loss re-routing, fail-closed exhaustion), the PEP's
   Sharded mode (bounded-stale degradation per shard outage), and the
   determinism satellite: two Fig. 3 pull-flow runs under the same chaos
   schedule with the same seed must produce byte-identical management
   reports and metric dumps. *)

module Value = Dacs_policy.Value
module Policy = Dacs_policy.Policy
module Rule = Dacs_policy.Rule
module Target = Dacs_policy.Target
module Combine = Dacs_policy.Combine
module Context = Dacs_policy.Context
module Decision = Dacs_policy.Decision
module Engine = Dacs_net.Engine
module Net = Dacs_net.Net
module Rpc = Dacs_net.Rpc
module Faults = Dacs_net.Faults
module Metrics = Dacs_telemetry.Metrics
module Service = Dacs_ws.Service
open Dacs_core

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

(* --- fixture ---------------------------------------------------------------- *)

let doctor_policy resource =
  Policy.Inline_policy
    (Policy.make ~id:"p" ~issuer:"domain-a" ~rule_combining:Combine.First_applicable
       [
         Rule.permit
           ~target:
             Target.(
               any |> subject_is "role" "doctor" |> resource_is "resource-id" resource
               |> action_is "action-id" "read")
           "permit-doctor-read";
         Rule.deny "default-deny";
       ])

let doctor_subject user = [ ("subject-id", Value.String user); ("role", Value.String "doctor") ]
let intern_subject user = [ ("subject-id", Value.String user); ("role", Value.String "intern") ]

type fixture = {
  net : Net.t;
  services : Service.t;
  tier : Pdp_tier.t;
  pep : Pep.t;
  alice : Client.t;
  mallory : Client.t;
  shard_nodes : Net.node_id list;
}

let setup ?(seed = 7L) ?(shards = 4) ?batch ?cache () =
  let net = Net.create ~seed () in
  let services = Service.create (Rpc.create net) in
  let add id =
    Net.add_node net id;
    id
  in
  let shard_nodes =
    List.init shards (fun i ->
        let node = add (Printf.sprintf "shard%d" i) in
        ignore (Pdp_service.create services ~node ~name:node ~root:(doctor_policy "r") ());
        node)
  in
  let pep_node = add "pep" in
  let tier = Pdp_tier.create services ~node:pep_node ~shards:shard_nodes ?batch () in
  let pep =
    Pep.create services ~node:pep_node ~domain:"a" ~resource:"r" ~content:"the-content"
      (Pep.Sharded { tier; cache })
  in
  let alice = Client.create services ~node:(add "alice") ~subject:(doctor_subject "alice") in
  let mallory = Client.create services ~node:(add "mallory") ~subject:(intern_subject "mallory") in
  { net; services; tier; pep; alice; mallory; shard_nodes }

let request_at fx client ~at ?(timeout = 30.0) ~action outcomes =
  Engine.schedule_at (Net.engine fx.net) ~at (fun () ->
      Client.request client ~pep:"pep" ~action ~timeout (fun r ->
          outcomes := (at, r) :: !outcomes))

let granted = function Ok (Wire.Granted _) -> true | _ -> false

let outcome_at outcomes at =
  match List.assoc_opt at !outcomes with
  | Some r -> r
  | None -> Alcotest.failf "no outcome recorded for request at t=%g" at

let ctx_for user action =
  Context.make
    ~subject:[ ("subject-id", Value.String user); ("role", Value.String "doctor") ]
    ~resource:[ ("resource-id", Value.String "r") ]
    ~action:[ ("action-id", Value.String action) ]
    ()

(* --- consistent-hash remapping ---------------------------------------------- *)

(* Removing one shard may only remap the keys that shard owned; every
   other key keeps its assignment.  This is the property that makes
   shard loss a local event instead of a full cache/ring reshuffle. *)
let test_ring_remap () =
  let fx = setup () in
  let keys = List.init 200 (Printf.sprintf "key%d") in
  let owner k =
    match Pdp_tier.shard_for fx.tier k with
    | Some s -> s
    | None -> Alcotest.fail "tier unexpectedly empty"
  in
  let before = List.map (fun k -> (k, owner k)) keys in
  let dropped = List.nth fx.shard_nodes 2 in
  let survivors = List.filter (fun s -> s <> dropped) fx.shard_nodes in
  Pdp_tier.set_shards fx.tier survivors;
  let moved = ref 0 in
  List.iter
    (fun (k, was) ->
      let is = owner k in
      if was = dropped then begin
        incr moved;
        check bool_ "remapped key lands on a survivor" true (List.mem is survivors)
      end
      else check string_ (Printf.sprintf "stable key %s" k) was is)
    before;
  check bool_ "the dropped shard owned some keys" true (!moved > 0);
  check int_ "one ring rebuild" 1 (Pdp_tier.stats fx.tier).Pdp_tier.rebalances;
  (* Restoring the original set is a rebuild; re-setting it is a no-op. *)
  Pdp_tier.set_shards fx.tier fx.shard_nodes;
  Pdp_tier.set_shards fx.tier fx.shard_nodes;
  check int_ "no-op set_shards not counted" 2 (Pdp_tier.stats fx.tier).Pdp_tier.rebalances

(* --- batch coalescing -------------------------------------------------------- *)

let test_batching () =
  let fx = setup ~batch:4 () in
  let ctx = ctx_for "alice" "read" in
  let expected = Policy.evaluate_child ctx (doctor_policy "r") in
  let answers = ref [] in
  (* Ten same-key queries issued in one instant: same ring point, so one
     shard sees all ten as 4 + 4 + 2 frames. *)
  for _ = 1 to 10 do
    Pdp_tier.decide fx.tier ctx (fun r -> answers := r :: !answers)
  done;
  Net.run fx.net;
  check int_ "all continuations fired" 10 (List.length !answers);
  List.iter
    (function
      | Ok r ->
        check bool_ "tier decision matches local evaluation" true
          (Decision.equal_decision r.Decision.decision expected.Decision.decision)
      | Error e -> Alcotest.failf "tier failed: %s" e)
    !answers;
  let s = Pdp_tier.stats fx.tier in
  check int_ "ten queries dispatched" 10 s.Pdp_tier.dispatched;
  check int_ "coalesced into ceil(10/4) frames" 3 s.Pdp_tier.batches;
  check bool_ "batched frames on the wire" true
    (Metrics.sum_counter (Service.metrics fx.services) "rpc_batches_total" >= 3)

(* --- failover ----------------------------------------------------------------- *)

let test_failover () =
  let fx = setup () in
  (* Crash whichever shard owns alice's key, before any traffic. *)
  let key = Decision_cache.request_key (ctx_for "alice" "read") in
  let victim =
    match Pdp_tier.shard_for fx.tier key with
    | Some s -> s
    | None -> Alcotest.fail "tier unexpectedly empty"
  in
  Net.crash fx.net victim;
  let a = ref [] in
  request_at fx fx.alice ~at:0.5 ~action:"read" a;
  Net.run fx.net;
  check bool_ "granted despite the owning shard being down" true (granted (outcome_at a 0.5));
  let s = Pdp_tier.stats fx.tier in
  check bool_ "query re-routed to a successor" true (s.Pdp_tier.failovers >= 1);
  check int_ "nothing failed closed" 0 s.Pdp_tier.exhausted

(* --- stale-cache degradation and fail-closed ---------------------------------- *)

let test_stale_degradation () =
  let cache = Decision_cache.create ~ttl:1.0 () in
  let fx = setup ~cache () in
  Pep.set_stale_window fx.pep 10.0;
  let a = ref [] in
  (* Prime the cache while the tier is healthy, then lose every shard. *)
  request_at fx fx.alice ~at:0.5 ~action:"read" a;
  Engine.schedule_at (Net.engine fx.net) ~at:1.0 (fun () ->
      List.iter (Net.crash fx.net) fx.shard_nodes);
  (* TTL-expired but within the stale window: degraded serving. *)
  request_at fx fx.alice ~at:3.0 ~action:"read" a;
  (* Far past the window: the entry is gone — fail closed. *)
  request_at fx fx.alice ~at:30.0 ~action:"read" a;
  Net.run fx.net;
  check bool_ "fresh grant before the outage" true (granted (outcome_at a 0.5));
  check bool_ "stale-served during the outage" true (granted (outcome_at a 3.0));
  check bool_ "fails closed beyond the stale window" false (granted (outcome_at a 30.0));
  check bool_ "tier reported exhaustion" true ((Pdp_tier.stats fx.tier).Pdp_tier.exhausted >= 1)

let test_fail_closed_without_cache () =
  let fx = setup () in
  List.iter (Net.crash fx.net) fx.shard_nodes;
  let a = ref [] and m = ref [] in
  request_at fx fx.alice ~at:0.5 ~action:"read" a;
  request_at fx fx.mallory ~at:0.6 ~action:"read" m;
  Net.run fx.net;
  check bool_ "authorised subject still not granted" false (granted (outcome_at a 0.5));
  check bool_ "denied subject not granted" false (granted (outcome_at m 0.6));
  check bool_ "exhaustion counted" true ((Pdp_tier.stats fx.tier).Pdp_tier.exhausted >= 2)

let test_empty_tier_fails_closed () =
  let fx = setup ~shards:1 () in
  Pdp_tier.set_shards fx.tier [];
  let answer = ref None in
  Pdp_tier.decide fx.tier (ctx_for "alice" "read") (fun r -> answer := Some r);
  Net.run fx.net;
  match !answer with
  | Some (Error _) -> ()
  | Some (Ok _) -> Alcotest.fail "empty tier produced a decision"
  | None -> Alcotest.fail "empty tier never answered"

(* --- same-seed determinism ----------------------------------------------------- *)

(* One Fig. 3 pull-flow run through the sharded tier under a chaos
   schedule, returning the full management report and the raw metric
   exposition.  Identical seeds must reproduce both byte for byte:
   reports and dumps are derived entirely from virtual time and the
   seeded RNG, never from wall-clock state. *)
let chaos_run seed =
  let fx = setup ~seed () in
  Net.set_tracing fx.net true;
  Faults.apply fx.net
    [
      Faults.Drop_burst { rate = 0.4; window = { from_ = 0.1; until_ = 2.0 } };
      Faults.Crash_restart { node = "shard0"; at = 0.5; restart = Some 3.0 };
      Faults.Latency_spike
        { a = "pep"; b = "shard1"; latency = 0.8; window = { from_ = 1.0; until_ = 4.0 } };
    ];
  let a = ref [] and m = ref [] in
  List.iter (fun at -> request_at fx fx.alice ~at ~action:"read" a) [ 0.3; 1.5; 4.5 ];
  List.iter (fun at -> request_at fx fx.mallory ~at ~action:"read" m) [ 0.4; 2.5 ];
  Net.run fx.net;
  List.iter
    (fun (at, r) ->
      if granted r then Alcotest.failf "denied subject granted at t=%g under chaos" at)
    !m;
  (Report.telemetry fx.services, Metrics.render (Service.metrics fx.services))

let test_same_seed_identical_runs () =
  let report1, dump1 = chaos_run 1234L in
  let report2, dump2 = chaos_run 1234L in
  (* The runs must be non-trivial: the tier actually routed queries. *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m > 0 && go 0
  in
  check bool_ "tier series present in the dump" true (contains dump1 "pdp_tier_dispatch_total");
  check bool_ "batch series present in the dump" true (contains dump1 "rpc_batches_total");
  check string_ "byte-identical reports" report1 report2;
  check string_ "byte-identical metric dumps" dump1 dump2

let () =
  Alcotest.run "dacs_tier"
    [
      ( "routing",
        [
          Alcotest.test_case "shard loss only remaps its own keys" `Quick test_ring_remap;
          Alcotest.test_case "same-instant queries coalesce into frames" `Quick test_batching;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "crash of the owning shard fails over" `Quick test_failover;
          Alcotest.test_case "total outage degrades to bounded-stale serving" `Quick
            test_stale_degradation;
          Alcotest.test_case "total outage without cache fails closed" `Quick
            test_fail_closed_without_cache;
          Alcotest.test_case "empty tier fails closed" `Quick test_empty_tier_fails_closed;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, byte-identical report and metric dump" `Quick
            test_same_seed_identical_runs;
        ] );
    ]
