lib/core/delegation.mli: Dacs_policy
