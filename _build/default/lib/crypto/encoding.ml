let hex_chars = "0123456789abcdef"

let hex_encode s =
  let n = String.length s in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let b = Char.code s.[i] in
    Bytes.set out (2 * i) hex_chars.[b lsr 4];
    Bytes.set out ((2 * i) + 1) hex_chars.[b land 0xF]
  done;
  Bytes.to_string out

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Encoding.hex_decode: non-hex character"

let hex_decode s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Encoding.hex_decode: odd length";
  String.init (n / 2) (fun i ->
      Char.chr ((hex_digit s.[2 * i] lsl 4) lor hex_digit s.[(2 * i) + 1]))

let b64_alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let base64_encode s =
  let n = String.length s in
  let buf = Buffer.create (((n + 2) / 3) * 4) in
  let emit b0 b1 b2 count =
    let triple = (b0 lsl 16) lor (b1 lsl 8) lor b2 in
    Buffer.add_char buf b64_alphabet.[(triple lsr 18) land 0x3F];
    Buffer.add_char buf b64_alphabet.[(triple lsr 12) land 0x3F];
    if count > 1 then Buffer.add_char buf b64_alphabet.[(triple lsr 6) land 0x3F]
    else Buffer.add_char buf '=';
    if count > 2 then Buffer.add_char buf b64_alphabet.[triple land 0x3F]
    else Buffer.add_char buf '='
  in
  let i = ref 0 in
  while !i + 3 <= n do
    emit (Char.code s.[!i]) (Char.code s.[!i + 1]) (Char.code s.[!i + 2]) 3;
    i := !i + 3
  done;
  (match n - !i with
  | 1 -> emit (Char.code s.[!i]) 0 0 1
  | 2 -> emit (Char.code s.[!i]) (Char.code s.[!i + 1]) 0 2
  | _ -> ());
  Buffer.contents buf

let b64_value c =
  match c with
  | 'A' .. 'Z' -> Char.code c - Char.code 'A'
  | 'a' .. 'z' -> Char.code c - Char.code 'a' + 26
  | '0' .. '9' -> Char.code c - Char.code '0' + 52
  | '+' -> 62
  | '/' -> 63
  | _ -> invalid_arg "Encoding.base64_decode: bad character"

let base64_decode s =
  let cleaned = Buffer.create (String.length s) in
  String.iter
    (fun c -> match c with ' ' | '\t' | '\n' | '\r' -> () | c -> Buffer.add_char cleaned c)
    s;
  let s = Buffer.contents cleaned in
  let n = String.length s in
  if n mod 4 <> 0 then invalid_arg "Encoding.base64_decode: length not a multiple of 4";
  if n = 0 then ""
  else begin
    let out = Buffer.create (n / 4 * 3) in
    let i = ref 0 in
    while !i < n do
      let c0 = s.[!i] and c1 = s.[!i + 1] and c2 = s.[!i + 2] and c3 = s.[!i + 3] in
      if c0 = '=' || c1 = '=' then invalid_arg "Encoding.base64_decode: misplaced padding";
      let v0 = b64_value c0 and v1 = b64_value c1 in
      if c2 = '=' then begin
        if c3 <> '=' || !i + 4 <> n then invalid_arg "Encoding.base64_decode: misplaced padding";
        Buffer.add_char out (Char.chr ((v0 lsl 2) lor (v1 lsr 4)))
      end
      else begin
        let v2 = b64_value c2 in
        if c3 = '=' then begin
          if !i + 4 <> n then invalid_arg "Encoding.base64_decode: misplaced padding";
          Buffer.add_char out (Char.chr ((v0 lsl 2) lor (v1 lsr 4)));
          Buffer.add_char out (Char.chr (((v1 land 0xF) lsl 4) lor (v2 lsr 2)))
        end
        else begin
          let v3 = b64_value c3 in
          Buffer.add_char out (Char.chr ((v0 lsl 2) lor (v1 lsr 4)));
          Buffer.add_char out (Char.chr (((v1 land 0xF) lsl 4) lor (v2 lsr 2)));
          Buffer.add_char out (Char.chr (((v2 land 0x3) lsl 6) lor v3))
        end
      end;
      i := !i + 4
    done;
    Buffer.contents out
  end
