type node_id = string

type message = {
  src : node_id;
  dst : node_id;
  category : string;
  payload : string;
  sent_at : float;
}

type node_state = {
  mutable handler : message -> unit;
  mutable crashed : bool;
}

type stat = { count : int; bytes : int }

type trace_entry = { t_src : node_id; t_dst : node_id; t_category : string; t_time : float }

type t = {
  engine : Engine.t;
  nodes : (node_id, node_state) Hashtbl.t;
  latencies : (node_id * node_id, float) Hashtbl.t;
  mutable default_latency : float;
  mutable bytes_per_second : float option;
  mutable drop_rate : float;
  mutable partitions : (node_id list * node_id list) list;
  sent : (string, stat) Hashtbl.t;
  delivered : (string, stat) Hashtbl.t;
  mutable dropped : int;
  mutable tracing : bool;
  mutable trace_rev : trace_entry list;
}

let create ?seed () =
  {
    engine = Engine.create ?seed ();
    nodes = Hashtbl.create 64;
    latencies = Hashtbl.create 64;
    default_latency = 0.005;
    bytes_per_second = None;
    drop_rate = 0.0;
    partitions = [];
    sent = Hashtbl.create 16;
    delivered = Hashtbl.create 16;
    dropped = 0;
    tracing = false;
    trace_rev = [];
  }

let engine t = t.engine
let now t = Engine.now t.engine

let add_node t id =
  if not (Hashtbl.mem t.nodes id) then
    Hashtbl.add t.nodes id { handler = ignore; crashed = false }

let has_node t id = Hashtbl.mem t.nodes id

let nodes t = Hashtbl.fold (fun id _ acc -> id :: acc) t.nodes [] |> List.sort compare

let node_exn t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Net: unknown node %s" id)

let set_handler t id handler = (node_exn t id).handler <- handler

let set_default_latency t l = t.default_latency <- l

let pair_key a b = if a <= b then (a, b) else (b, a)

let set_latency t a b l = Hashtbl.replace t.latencies (pair_key a b) l

let latency t a b =
  match Hashtbl.find_opt t.latencies (pair_key a b) with
  | Some l -> l
  | None -> t.default_latency

let latency_override t a b = Hashtbl.find_opt t.latencies (pair_key a b)

let clear_latency t a b = Hashtbl.remove t.latencies (pair_key a b)

let set_bytes_per_second t rate = t.bytes_per_second <- rate

let set_drop_rate t rate =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Net.set_drop_rate";
  t.drop_rate <- rate

let drop_rate t = t.drop_rate

let crash t id = (node_exn t id).crashed <- true
let recover t id = (node_exn t id).crashed <- false
let is_crashed t id = (node_exn t id).crashed

let partition t group_a group_b = t.partitions <- (group_a, group_b) :: t.partitions

let unpartition t group_a group_b =
  t.partitions <-
    List.filter
      (fun (ga, gb) -> not ((ga = group_a && gb = group_b) || (ga = group_b && gb = group_a)))
      t.partitions

let heal t = t.partitions <- []

let partitioned t a b =
  List.exists
    (fun (ga, gb) -> (List.mem a ga && List.mem b gb) || (List.mem a gb && List.mem b ga))
    t.partitions

let bump table category size =
  let prev = Option.value (Hashtbl.find_opt table category) ~default:{ count = 0; bytes = 0 } in
  Hashtbl.replace table category { count = prev.count + 1; bytes = prev.bytes + size }

let send t ~src ~dst ~category payload =
  let src_node = node_exn t src in
  ignore (node_exn t dst);
  let size = String.length payload in
  if src_node.crashed then ()
  else begin
    bump t.sent category size;
    let lost =
      partitioned t src dst
      || (t.drop_rate > 0.0 && Dacs_crypto.Rng.float (Engine.rng t.engine) 1.0 < t.drop_rate)
    in
    if lost then t.dropped <- t.dropped + 1
    else begin
      let delay =
        latency t src dst
        +. (match t.bytes_per_second with None -> 0.0 | Some rate -> float_of_int size /. rate)
      in
      let msg = { src; dst; category; payload; sent_at = now t } in
      Engine.schedule t.engine ~delay (fun () ->
          let dst_node = node_exn t dst in
          if dst_node.crashed then t.dropped <- t.dropped + 1
          else begin
            bump t.delivered category size;
            if t.tracing then
              t.trace_rev <-
                { t_src = src; t_dst = dst; t_category = category; t_time = now t } :: t.trace_rev;
            dst_node.handler msg
          end)
    end
  end

let sorted_stats table =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] |> List.sort compare

let stats_by_category t = sorted_stats t.sent
let delivered_by_category t = sorted_stats t.delivered

let total table =
  Hashtbl.fold (fun _ s acc -> { count = acc.count + s.count; bytes = acc.bytes + s.bytes })
    table { count = 0; bytes = 0 }

let total_sent t = total t.sent
let total_delivered t = total t.delivered
let dropped_count t = t.dropped

let reset_stats t =
  Hashtbl.reset t.sent;
  Hashtbl.reset t.delivered;
  t.dropped <- 0

let set_tracing t on = t.tracing <- on
let trace t = List.rev t.trace_rev
let clear_trace t = t.trace_rev <- []

let run ?until t = Engine.run ?until t.engine
