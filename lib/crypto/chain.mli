(** Hash chain: tamper-evident linking of an append-only sequence.

    Each link's digest commits to the whole prefix —
    [digest_i = SHA-256(digest_{i-1} || payload_i)] — so mutating,
    reordering or dropping any earlier payload changes every later
    digest.  The offline event log chains its canonical event bytes this
    way and authenticates each digest with an HMAC, making a forged or
    rewritten log segment detectable at sync time rather than silently
    replayable. *)

val genesis : string
(** The 32-byte digest every chain starts from (a fixed domain-separated
    constant, not a secret). *)

val extend : prev:string -> string -> string
(** [extend ~prev payload] is the 32-byte digest of the chain ending in
    [payload], given the previous link's digest. *)

val chain : prev:string -> string list -> string list
(** Digest of every prefix: [chain ~prev [p1; p2; ...]] is
    [[d1; d2; ...]] with [d1 = extend ~prev p1],
    [d2 = extend ~prev:d1 p2], ... *)

val verify : prev:string -> (string * string) list -> (string, int) result
(** [verify ~prev segment] checks a [(payload, claimed_digest)] segment
    link by link.  [Ok head] is the digest of the last link; [Error i] is
    the 0-based index of the first link whose claimed digest does not
    equal the recomputation — which is where a mutation, reordering or
    splice becomes visible.  The empty segment verifies to [Ok prev]. *)

val short : string -> string
(** First 6 bytes of a digest, hex-encoded — the human-readable "log
    head" rendering carried in provenance records. *)
