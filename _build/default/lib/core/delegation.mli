(** Administrative delegation across domains (§3.2).

    A registry of delegation grants: authority X delegates policy-making
    over a resource scope to authority Y, optionally re-delegable and
    time-bounded.  Chain validation answers "may this issuer write policy
    for this resource?", and revocation cuts every chain through the
    revoked grant — the tracking problem the paper highlights in
    decentralised administration. *)

type grant = {
  id : string;
  delegator : string;
  delegate : string;
  scope : string;  (** resource-id prefix; [""] covers everything *)
  can_redelegate : bool;
  expires : float;
}

type t

val create : roots:string list -> t
(** [roots] are the authorities trusted unconditionally (e.g. each
    domain's own administrator for its own resources). *)

val roots : t -> string list

val grant :
  t ->
  ?can_redelegate:bool ->
  delegator:string ->
  delegate:string ->
  scope:string ->
  now:float ->
  expires:float ->
  unit ->
  (grant, string) result
(** Recorded only when, at time [now], the delegator is a root or holds a
    fully re-delegable chain over [scope]; [can_redelegate] defaults to
    false. *)

val revoke : t -> grant_id:string -> bool
(** [true] when the grant existed. Chains through it are immediately
    invalid. *)

val grants : t -> grant list

val authority_for : t -> issuer:string -> resource:string -> now:float -> bool
(** Root, or reachable from a root by a chain of unexpired, unrevoked
    grants whose scopes all cover [resource], where every link except the
    last allows re-delegation. *)

val chain_for : t -> issuer:string -> resource:string -> now:float -> grant list option
(** The shortest validating chain (root end first), when one exists. *)

val filter_authorized :
  t -> now:float -> Dacs_policy.Policy.set -> Dacs_policy.Policy.set * string list
(** Drop children whose issuer lacks authority over the resources their
    target names (children without resource targets need authority over
    everything).  Returns the filtered set and the dropped child ids. *)
