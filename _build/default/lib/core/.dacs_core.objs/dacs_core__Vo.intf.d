lib/core/vo.mli: Audit Capability_service Client Dacs_crypto Dacs_policy Dacs_ws Domain Pap
