lib/xmlkit/xml_path.ml: List Option String Xml
