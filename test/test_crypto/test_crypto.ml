(* Tests for dacs_crypto: RNG, encodings, SHA-256 vectors, HMAC vectors,
   bignum arithmetic laws, primality, RSA, stream cipher, certificates. *)

open Dacs_crypto

let check = Alcotest.check
let string_ = Alcotest.string
let bool_ = Alcotest.bool
let int_ = Alcotest.int

(* --- rng -------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    check bool_ "same stream" true (Rng.next_int64 a = Rng.next_int64 b)
  done

let test_rng_int_bounds () =
  let rng = Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    check bool_ "in range" true (v >= 0 && v < 10)
  done

let test_rng_int_covers_range () =
  let rng = Rng.create 9L in
  let seen = Array.make 8 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng 8) <- true
  done;
  check bool_ "all values hit" true (Array.for_all Fun.id seen)

let test_rng_float_bounds () =
  let rng = Rng.create 3L in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    check bool_ "in range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_bytes_length () =
  let rng = Rng.create 1L in
  check int_ "length" 17 (String.length (Rng.bytes rng 17))

let test_rng_shuffle_permutation () =
  let rng = Rng.create 5L in
  let xs = List.init 20 Fun.id in
  let ys = Rng.shuffle rng xs in
  check (Alcotest.list int_) "same multiset" xs (List.sort compare ys)

let test_rng_split_independent () =
  let rng = Rng.create 11L in
  let child = Rng.split rng in
  (* The child must not simply mirror the parent. *)
  let a = List.init 10 (fun _ -> Rng.next_int64 rng) in
  let b = List.init 10 (fun _ -> Rng.next_int64 child) in
  check bool_ "different streams" true (a <> b)

(* --- encodings --------------------------------------------------------- *)

let test_hex_roundtrip () =
  check string_ "encode" "00ff10ab" (Encoding.hex_encode "\x00\xff\x10\xab");
  check string_ "decode" "\x00\xff\x10\xab" (Encoding.hex_decode "00ff10ab");
  check string_ "decode uppercase" "\x00\xff" (Encoding.hex_decode "00FF")

let test_hex_errors () =
  let bad s =
    try
      ignore (Encoding.hex_decode s);
      Alcotest.fail "expected Invalid_argument"
    with Invalid_argument _ -> ()
  in
  bad "0";
  bad "zz"

let test_base64_vectors () =
  (* RFC 4648 test vectors. *)
  List.iter
    (fun (plain, enc) ->
      check string_ ("encode " ^ plain) enc (Encoding.base64_encode plain);
      check string_ ("decode " ^ enc) plain (Encoding.base64_decode enc))
    [
      ("", "");
      ("f", "Zg==");
      ("fo", "Zm8=");
      ("foo", "Zm9v");
      ("foob", "Zm9vYg==");
      ("fooba", "Zm9vYmE=");
      ("foobar", "Zm9vYmFy");
    ]

let test_base64_whitespace () =
  check string_ "ignores newlines" "foobar" (Encoding.base64_decode "Zm9v\nYmFy")

let test_base64_errors () =
  let bad s =
    try
      ignore (Encoding.base64_decode s);
      Alcotest.fail "expected Invalid_argument"
    with Invalid_argument _ -> ()
  in
  bad "Zg=";
  bad "Z===";
  bad "!!!!"

(* --- sha256 ------------------------------------------------------------- *)

let test_sha256_vectors () =
  List.iter
    (fun (msg, hex) -> check string_ ("sha256 of " ^ String.escaped msg) hex (Sha256.hex_digest msg))
    [
      ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
      ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
      ( "The quick brown fox jumps over the lazy dog",
        "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592" );
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ]

let test_sha256_million_a () =
  (* FIPS long-message vector. *)
  let ctx = Sha256.init () in
  let chunk = String.make 1000 'a' in
  for _ = 1 to 1000 do
    Sha256.update ctx chunk
  done;
  check string_ "million a" "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Encoding.hex_encode (Sha256.finalize ctx))

let test_sha256_incremental_matches_oneshot () =
  let msg = String.init 300 (fun i -> Char.chr (i mod 256)) in
  let ctx = Sha256.init () in
  (* Deliberately awkward split points around the 64-byte block size. *)
  Sha256.update ctx (String.sub msg 0 63);
  Sha256.update ctx (String.sub msg 63 2);
  Sha256.update ctx (String.sub msg 65 128);
  Sha256.update ctx (String.sub msg 193 107);
  check string_ "incremental" (Sha256.hex_digest msg) (Encoding.hex_encode (Sha256.finalize ctx))

let test_sha256_block_boundaries () =
  (* Lengths 55, 56, 63, 64, 65 hit all the padding branches. *)
  List.iter
    (fun n ->
      let msg = String.make n 'x' in
      let ctx = Sha256.init () in
      String.iter (fun c -> Sha256.update ctx (String.make 1 c)) msg;
      check string_
        (Printf.sprintf "length %d" n)
        (Sha256.hex_digest msg)
        (Encoding.hex_encode (Sha256.finalize ctx)))
    [ 0; 1; 55; 56; 57; 63; 64; 65; 127; 128; 129 ]

(* --- hmac ----------------------------------------------------------------- *)

let test_hmac_rfc4231 () =
  (* RFC 4231 test cases 1, 2 and the long-key case 6. *)
  check string_ "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.sha256_hex ~key:(String.make 20 '\x0b') "Hi There");
  check string_ "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.sha256_hex ~key:"Jefe" "what do ya want for nothing?");
  check string_ "case 6 (long key)"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hmac.sha256_hex ~key:(String.make 131 '\xaa') "Test Using Larger Than Block-Size Key - Hash Key First")

let test_hmac_verify () =
  let key = "secret" and msg = "payload" in
  let tag = Hmac.sha256 ~key msg in
  check bool_ "accepts" true (Hmac.verify ~key msg ~tag);
  check bool_ "rejects bad tag" false (Hmac.verify ~key msg ~tag:(String.make 32 '\x00'));
  check bool_ "rejects short tag" false (Hmac.verify ~key msg ~tag:"short");
  check bool_ "rejects wrong msg" false (Hmac.verify ~key "other" ~tag)

(* --- bignum ------------------------------------------------------------------ *)

let bn = Alcotest.testable Bignum.pp Bignum.equal

let test_bignum_of_to_int () =
  List.iter
    (fun i ->
      check (Alcotest.option int_) (string_of_int i) (Some i) (Bignum.to_int_opt (Bignum.of_int i)))
    [ 0; 1; 2; 1000; 67108863; 67108864; max_int ]

let test_bignum_decimal_roundtrip () =
  List.iter
    (fun s -> check string_ s s (Bignum.to_decimal (Bignum.of_decimal s)))
    [ "0"; "1"; "10000000"; "123456789012345678901234567890"; "99999999999999999999" ]

let test_bignum_hex_roundtrip () =
  let v = Bignum.of_decimal "123456789012345678901234567890" in
  check bn "hex roundtrip" v (Bignum.of_hex (Bignum.to_hex v))

let test_bignum_bytes_roundtrip () =
  let v = Bignum.of_decimal "987654321098765432109876543210" in
  check bn "bytes roundtrip" v (Bignum.of_bytes_be (Bignum.to_bytes_be v));
  check bn "leading zeros ok" v (Bignum.of_bytes_be ("\x00\x00" ^ Bignum.to_bytes_be v));
  let padded = Bignum.to_bytes_be_padded v 20 in
  check int_ "padded width" 20 (String.length padded);
  check bn "padded roundtrip" v (Bignum.of_bytes_be padded)

let test_bignum_known_arithmetic () =
  let a = Bignum.of_decimal "123456789123456789123456789" in
  let b = Bignum.of_decimal "987654321987654321" in
  check string_ "add" "123456790111111111111111110" (Bignum.to_decimal (Bignum.add a b));
  check string_ "sub" "123456788135802467135802468" (Bignum.to_decimal (Bignum.sub a b));
  (* mul is checked by the divmod reconstruction identity. *)
  let q, r = Bignum.divmod a b in
  check bn "divmod reconstructs" a (Bignum.add (Bignum.mul q b) r);
  check bool_ "remainder < divisor" true (Bignum.compare r b < 0)

let test_bignum_shift () =
  let v = Bignum.of_int 0b1011 in
  check bn "shl" (Bignum.of_int 0b1011000) (Bignum.shift_left v 3);
  check bn "shr" (Bignum.of_int 0b10) (Bignum.shift_right v 2);
  check bn "shr to zero" Bignum.zero (Bignum.shift_right v 10);
  let big = Bignum.of_decimal "123456789012345678901234567890" in
  check bn "shl/shr inverse" big (Bignum.shift_right (Bignum.shift_left big 137) 137)

let test_bignum_num_bits () =
  check int_ "zero" 0 (Bignum.num_bits Bignum.zero);
  check int_ "one" 1 (Bignum.num_bits Bignum.one);
  check int_ "255" 8 (Bignum.num_bits (Bignum.of_int 255));
  check int_ "256" 9 (Bignum.num_bits (Bignum.of_int 256));
  check int_ "2^100" 101 (Bignum.num_bits (Bignum.shift_left Bignum.one 100))

let test_bignum_sub_negative_raises () =
  try
    ignore (Bignum.sub Bignum.one Bignum.two);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_bignum_div_by_zero () =
  try
    ignore (Bignum.divmod Bignum.one Bignum.zero);
    Alcotest.fail "expected Division_by_zero"
  with Division_by_zero -> ()

let test_bignum_modpow_known () =
  (* 2^10 mod 1000 = 24; 3^100 mod 7: 3^6=1 (Fermat), 100 mod 6 = 4, 3^4=81, 81 mod 7 = 4. *)
  check bn "2^10 mod 1000" (Bignum.of_int 24)
    (Bignum.modpow Bignum.two (Bignum.of_int 10) (Bignum.of_int 1000));
  check bn "3^100 mod 7" (Bignum.of_int 4)
    (Bignum.modpow (Bignum.of_int 3) (Bignum.of_int 100) (Bignum.of_int 7));
  check bn "x^0 = 1" Bignum.one (Bignum.modpow (Bignum.of_int 5) Bignum.zero (Bignum.of_int 7));
  check bn "mod 1 = 0" Bignum.zero (Bignum.modpow (Bignum.of_int 5) (Bignum.of_int 3) Bignum.one)

let test_bignum_gcd () =
  check bn "gcd(12,18)" (Bignum.of_int 6) (Bignum.gcd (Bignum.of_int 12) (Bignum.of_int 18));
  check bn "gcd(17,5)" Bignum.one (Bignum.gcd (Bignum.of_int 17) (Bignum.of_int 5));
  check bn "gcd(0,x)" (Bignum.of_int 9) (Bignum.gcd Bignum.zero (Bignum.of_int 9))

let test_bignum_modinv () =
  (match Bignum.modinv (Bignum.of_int 3) (Bignum.of_int 11) with
  | Some v -> check bn "3^-1 mod 11 = 4" (Bignum.of_int 4) v
  | None -> Alcotest.fail "expected an inverse");
  check bool_ "no inverse when not coprime" true (Bignum.modinv (Bignum.of_int 6) (Bignum.of_int 9) = None);
  check bool_ "zero has no inverse" true (Bignum.modinv Bignum.zero (Bignum.of_int 9) = None)

(* qcheck generators for bignums *)

let gen_bignum =
  QCheck.make
    ~print:Bignum.to_decimal
    QCheck.Gen.(
      let digits = string_size ~gen:(map (fun i -> Char.chr (Char.code '0' + i)) (0 -- 9)) (1 -- 40) in
      map Bignum.of_decimal digits)

let prop_add_commutative =
  QCheck.Test.make ~name:"add commutative" ~count:300 (QCheck.pair gen_bignum gen_bignum)
    (fun (a, b) -> Bignum.equal (Bignum.add a b) (Bignum.add b a))

let prop_add_sub_inverse =
  QCheck.Test.make ~name:"(a+b)-b = a" ~count:300 (QCheck.pair gen_bignum gen_bignum) (fun (a, b) ->
      Bignum.equal (Bignum.sub (Bignum.add a b) b) a)

let prop_mul_commutative =
  QCheck.Test.make ~name:"mul commutative" ~count:300 (QCheck.pair gen_bignum gen_bignum)
    (fun (a, b) -> Bignum.equal (Bignum.mul a b) (Bignum.mul b a))

let prop_mul_distributive =
  QCheck.Test.make ~name:"a*(b+c) = a*b + a*c" ~count:200
    (QCheck.triple gen_bignum gen_bignum gen_bignum) (fun (a, b, c) ->
      Bignum.equal (Bignum.mul a (Bignum.add b c)) (Bignum.add (Bignum.mul a b) (Bignum.mul a c)))

let prop_divmod_reconstruction =
  QCheck.Test.make ~name:"a = q*b + r, r < b" ~count:500 (QCheck.pair gen_bignum gen_bignum)
    (fun (a, b) ->
      QCheck.assume (not (Bignum.is_zero b));
      let q, r = Bignum.divmod a b in
      Bignum.equal a (Bignum.add (Bignum.mul q b) r) && Bignum.compare r b < 0)

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"bytes roundtrip" ~count:300 gen_bignum (fun a ->
      Bignum.equal a (Bignum.of_bytes_be (Bignum.to_bytes_be a)))

let prop_decimal_roundtrip =
  QCheck.Test.make ~name:"decimal roundtrip" ~count:300 gen_bignum (fun a ->
      Bignum.equal a (Bignum.of_decimal (Bignum.to_decimal a)))

let prop_modpow_mul =
  (* a^(x+y) = a^x * a^y (mod m) *)
  QCheck.Test.make ~name:"modpow addition law" ~count:100
    (QCheck.triple gen_bignum (QCheck.pair QCheck.small_nat QCheck.small_nat) gen_bignum)
    (fun (a, (x, y), m) ->
      QCheck.assume (Bignum.compare m Bignum.one > 0);
      let x = Bignum.of_int x and y = Bignum.of_int y in
      let lhs = Bignum.modpow a (Bignum.add x y) m in
      let rhs = Bignum.rem (Bignum.mul (Bignum.modpow a x m) (Bignum.modpow a y m)) m in
      Bignum.equal lhs rhs)

(* --- primes -------------------------------------------------------------- *)

let test_small_primes_list () =
  check bool_ "2 listed" true (List.mem 2 Prime.small_primes);
  check bool_ "997 listed" true (List.mem 997 Prime.small_primes);
  check bool_ "1000 not listed" false (List.mem 1000 Prime.small_primes);
  check int_ "count below 1000" 168 (List.length Prime.small_primes)

let test_primality_small () =
  let rng = Rng.create 1L in
  List.iter
    (fun (n, expected) ->
      check bool_ (string_of_int n) expected (Prime.is_probably_prime rng (Bignum.of_int n)))
    [
      (2, true); (3, true); (4, false); (17, true); (561, false) (* Carmichael *); (997, true);
      (1009, true); (1001, false); (7919, true); (7917, false);
    ]

let test_primality_large_known () =
  let rng = Rng.create 2L in
  (* 2^89-1 is a Mersenne prime; 2^67-1 is famously composite. *)
  let mersenne p = Bignum.pred (Bignum.shift_left Bignum.one p) in
  check bool_ "2^89-1 prime" true (Prime.is_probably_prime rng (mersenne 89));
  check bool_ "2^67-1 composite" false (Prime.is_probably_prime rng (mersenne 67))

let test_prime_generation () =
  let rng = Rng.create 3L in
  let p = Prime.generate rng ~bits:64 in
  check int_ "exact width" 64 (Bignum.num_bits p);
  check bool_ "probably prime" true (Prime.is_probably_prime rng p);
  check bool_ "odd" true (not (Bignum.is_even p))

(* --- rsa --------------------------------------------------------------------- *)

(* A single 256-bit keypair shared across tests keeps the suite fast while
   exercising real multi-limb arithmetic. *)
let test_keypair = lazy (Rsa.generate (Rng.create 2024L) ~bits:512)

let test_rsa_keygen_shape () =
  let kp = Lazy.force test_keypair in
  check int_ "modulus width" 512 (Bignum.num_bits kp.Rsa.public.n);
  check int_ "key bytes" 64 (Rsa.key_bytes kp.Rsa.public);
  (* d*e = 1 mod (p-1)(q-1) *)
  let phi = Bignum.mul (Bignum.pred kp.Rsa.private_.p) (Bignum.pred kp.Rsa.private_.q) in
  check bn "d*e = 1 (mod phi)" Bignum.one
    (Bignum.rem (Bignum.mul kp.Rsa.private_.d kp.Rsa.public.e) phi)

let test_rsa_sign_verify () =
  let kp = Lazy.force test_keypair in
  let msg = "authorise: subject=alice action=read resource=wsA" in
  let signature = Rsa.sign kp.Rsa.private_ msg in
  check int_ "signature width" 64 (String.length signature);
  check bool_ "verifies" true (Rsa.verify kp.Rsa.public msg ~signature);
  check bool_ "rejects altered message" false (Rsa.verify kp.Rsa.public (msg ^ "!") ~signature);
  let tampered = Bytes.of_string signature in
  Bytes.set tampered 5 (Char.chr (Char.code (Bytes.get tampered 5) lxor 1));
  check bool_ "rejects altered signature" false
    (Rsa.verify kp.Rsa.public msg ~signature:(Bytes.to_string tampered));
  check bool_ "rejects wrong length" false (Rsa.verify kp.Rsa.public msg ~signature:"short")

let test_rsa_sign_wrong_key () =
  let kp = Lazy.force test_keypair in
  let other = Rsa.generate (Rng.create 99L) ~bits:512 in
  let signature = Rsa.sign kp.Rsa.private_ "msg" in
  check bool_ "other key rejects" false (Rsa.verify other.Rsa.public "msg" ~signature)

let test_rsa_encrypt_decrypt () =
  let kp = Lazy.force test_keypair in
  let rng = Rng.create 5L in
  let msg = "short secret" in
  let cipher = Rsa.encrypt rng kp.Rsa.public msg in
  check int_ "cipher width" 64 (String.length cipher);
  check (Alcotest.option string_) "roundtrip" (Some msg) (Rsa.decrypt kp.Rsa.private_ cipher);
  check bool_ "ciphertext differs from plaintext" true (cipher <> msg);
  (* Same message encrypts differently thanks to random padding. *)
  let cipher2 = Rsa.encrypt rng kp.Rsa.public msg in
  check bool_ "probabilistic" true (cipher <> cipher2)

let test_rsa_encrypt_too_long () =
  let kp = Lazy.force test_keypair in
  let rng = Rng.create 6L in
  let too_long = String.make (Rsa.max_plaintext kp.Rsa.public + 1) 'x' in
  try
    ignore (Rsa.encrypt rng kp.Rsa.public too_long);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_rsa_decrypt_garbage () =
  let kp = Lazy.force test_keypair in
  check bool_ "wrong length" true (Rsa.decrypt kp.Rsa.private_ "garbage" = None);
  check bool_ "random block" true (Rsa.decrypt kp.Rsa.private_ (String.make 64 '\x7f') = None)

let test_rsa_public_xml_roundtrip () =
  let kp = Lazy.force test_keypair in
  match Rsa.public_of_xml (Rsa.public_to_xml kp.Rsa.public) with
  | Some pub ->
    check bool_ "n" true (Bignum.equal pub.Rsa.n kp.Rsa.public.n);
    check bool_ "e" true (Bignum.equal pub.Rsa.e kp.Rsa.public.e);
    check string_ "fingerprint stable" (Rsa.fingerprint kp.Rsa.public) (Rsa.fingerprint pub)
  | None -> Alcotest.fail "expected key to parse back"

(* --- stream cipher -------------------------------------------------------------- *)

let test_stream_roundtrip () =
  let rng = Rng.create 10L in
  let key = Stream_cipher.derive_key "shared secret" in
  let plain = "the body of a SOAP message with sensitive content" in
  let cipher = Stream_cipher.encrypt rng ~key plain in
  check int_ "expansion = nonce" (String.length plain + Stream_cipher.nonce_bytes) (String.length cipher);
  check (Alcotest.option string_) "roundtrip" (Some plain) (Stream_cipher.decrypt ~key cipher)

let test_stream_wrong_key () =
  let rng = Rng.create 10L in
  let key = Stream_cipher.derive_key "a" and key' = Stream_cipher.derive_key "b" in
  let cipher = Stream_cipher.encrypt rng ~key "attack at dawn" in
  (match Stream_cipher.decrypt ~key:key' cipher with
  | Some other -> check bool_ "garbled" true (other <> "attack at dawn")
  | None -> Alcotest.fail "stream decrypt never fails on well-sized input");
  check bool_ "short input rejected" true (Stream_cipher.decrypt ~key "tiny" = None)

let test_stream_distinct_nonces () =
  let rng = Rng.create 11L in
  let key = Stream_cipher.derive_key "k" in
  let c1 = Stream_cipher.encrypt rng ~key "same" and c2 = Stream_cipher.encrypt rng ~key "same" in
  check bool_ "distinct ciphertexts" true (c1 <> c2)

let test_stream_empty () =
  let rng = Rng.create 12L in
  let key = Stream_cipher.derive_key "k" in
  check (Alcotest.option string_) "empty ok" (Some "") (Stream_cipher.decrypt ~key (Stream_cipher.encrypt rng ~key ""))

(* --- certificates ------------------------------------------------------------- *)

let ca_kp = lazy (Rsa.generate (Rng.create 77L) ~bits:512)
let leaf_kp = lazy (Rsa.generate (Rng.create 78L) ~bits:512)

let make_ca () =
  Cert.self_signed (Lazy.force ca_kp) ~subject:"cn=root-ca" ~serial:1 ~not_before:0.0
    ~not_after:1000.0

let test_cert_self_signed () =
  let ca = make_ca () in
  check string_ "issuer = subject" ca.Cert.subject ca.Cert.issuer;
  check bool_ "self-verifies" true (Cert.verify_signature ca ~issuer_key:ca.Cert.public_key);
  check bool_ "valid inside window" true (Cert.valid_at ca 500.0);
  check bool_ "invalid after" false (Cert.valid_at ca 1001.0);
  check bool_ "invalid before" false (Cert.valid_at ca (-1.0))

let test_cert_issue_and_verify () =
  let ca = make_ca () in
  let leaf =
    Cert.issue ~ca_key:(Lazy.force ca_kp).Rsa.private_ ~ca_cert:ca ~subject:"cn=pdp,o=domain-a"
      ~public_key:(Lazy.force leaf_kp).Rsa.public ~serial:2 ~not_before:0.0 ~not_after:500.0
  in
  check string_ "issuer" "cn=root-ca" leaf.Cert.issuer;
  check bool_ "signature by CA" true (Cert.verify_signature leaf ~issuer_key:ca.Cert.public_key);
  check bool_ "not by own key" false (Cert.verify_signature leaf ~issuer_key:leaf.Cert.public_key)

let test_cert_xml_roundtrip () =
  let ca = make_ca () in
  match Cert.of_xml (Cert.to_xml ca) with
  | Some c ->
    check string_ "subject" ca.Cert.subject c.Cert.subject;
    check string_ "fingerprint" (Cert.fingerprint ca) (Cert.fingerprint c);
    check bool_ "still verifies" true (Cert.verify_signature c ~issuer_key:c.Cert.public_key)
  | None -> Alcotest.fail "expected certificate to parse back"

let test_chain_verification () =
  let ca = make_ca () in
  let leaf =
    Cert.issue ~ca_key:(Lazy.force ca_kp).Rsa.private_ ~ca_cert:ca ~subject:"cn=svc"
      ~public_key:(Lazy.force leaf_kp).Rsa.public ~serial:3 ~not_before:0.0 ~not_after:500.0
  in
  let store = Cert.Trust_store.add Cert.Trust_store.empty ca in
  let ok = Cert.Trust_store.verify_chain store ~now:100.0 in
  check bool_ "good chain" true (ok [ leaf; ca ] = Ok ());
  check bool_ "root alone" true (ok [ ca ] = Ok ());
  check bool_ "empty chain" true (ok [] = Error Cert.Trust_store.Empty_chain);
  (match Cert.Trust_store.verify_chain store ~now:600.0 [ leaf; ca ] with
  | Error (Cert.Trust_store.Expired s) -> check string_ "expired leaf" "cn=svc" s
  | _ -> Alcotest.fail "expected Expired");
  (* Untrusted root. *)
  let other_ca =
    Cert.self_signed (Rsa.generate (Rng.create 80L) ~bits:512) ~subject:"cn=evil" ~serial:9
      ~not_before:0.0 ~not_after:1000.0
  in
  (match Cert.Trust_store.verify_chain store ~now:100.0 [ other_ca ] with
  | Error (Cert.Trust_store.Untrusted_root _) -> ()
  | _ -> Alcotest.fail "expected Untrusted_root");
  (* Broken chain: leaf claims a different issuer. *)
  match Cert.Trust_store.verify_chain store ~now:100.0 [ leaf; other_ca ] with
  | Error (Cert.Trust_store.Broken_chain _) -> ()
  | _ -> Alcotest.fail "expected Broken_chain"

let test_chain_tampered_signature () =
  let ca = make_ca () in
  let leaf =
    Cert.issue ~ca_key:(Lazy.force ca_kp).Rsa.private_ ~ca_cert:ca ~subject:"cn=svc"
      ~public_key:(Lazy.force leaf_kp).Rsa.public ~serial:4 ~not_before:0.0 ~not_after:500.0
  in
  let forged = { leaf with Cert.subject = "cn=admin" } in
  let store = Cert.Trust_store.add Cert.Trust_store.empty ca in
  match Cert.Trust_store.verify_chain store ~now:100.0 [ forged; ca ] with
  | Error (Cert.Trust_store.Bad_signature _) -> ()
  | _ -> Alcotest.fail "expected Bad_signature on a forged subject"

let test_trust_store_dedup () =
  let ca = make_ca () in
  let store = Cert.Trust_store.add (Cert.Trust_store.add Cert.Trust_store.empty ca) ca in
  check int_ "deduplicated" 1 (List.length (Cert.Trust_store.roots store));
  check bool_ "membership" true (Cert.Trust_store.mem store ca)

(* --- hash chain ----------------------------------------------------------- *)

let payloads = [ "grant:alice:doctor"; "revoke:bob"; "publish:p2"; "decide:chart" ]

let test_hashchain_deterministic () =
  let a = Chain.chain ~prev:Chain.genesis payloads in
  let b = Chain.chain ~prev:Chain.genesis payloads in
  check bool_ "same digests" true (a = b);
  check int_ "one digest per payload" (List.length payloads) (List.length a);
  (* chain = repeated extend *)
  let folded =
    List.rev
      (snd
         (List.fold_left
            (fun (prev, acc) p ->
              let d = Chain.extend ~prev p in
              (d, d :: acc))
            (Chain.genesis, []) payloads))
  in
  check bool_ "chain == iterated extend" true (a = folded)

let segment () = List.combine payloads (Chain.chain ~prev:Chain.genesis payloads)

let test_hashchain_verify_honest () =
  match Chain.verify ~prev:Chain.genesis (segment ()) with
  | Ok head ->
    check string_ "head is last digest" (List.nth (Chain.chain ~prev:Chain.genesis payloads) 3) head
  | Error i -> Alcotest.failf "honest segment rejected at %d" i

let test_hashchain_verify_empty () =
  match Chain.verify ~prev:Chain.genesis [] with
  | Ok head -> check string_ "empty verifies to prev" Chain.genesis head
  | Error i -> Alcotest.failf "empty segment rejected at %d" i

let test_hashchain_mutation_detected () =
  (* Flipping any payload is caught exactly at its index: the digest
     commits to the whole prefix. *)
  List.iteri
    (fun k _ ->
      let tampered =
        List.mapi (fun i (p, d) -> if i = k then (p ^ "!", d) else (p, d)) (segment ())
      in
      match Chain.verify ~prev:Chain.genesis tampered with
      | Error i -> check int_ "first bad link" k i
      | Ok _ -> Alcotest.failf "mutation at %d not detected" k)
    payloads

let test_hashchain_reorder_detected () =
  let seg = segment () in
  let swapped = [ List.nth seg 1; List.nth seg 0; List.nth seg 2; List.nth seg 3 ] in
  match Chain.verify ~prev:Chain.genesis swapped with
  | Error 0 -> ()
  | Error i -> Alcotest.failf "reorder detected at %d, expected 0" i
  | Ok _ -> Alcotest.fail "reordered segment verified"

let test_hashchain_splice_detected () =
  (* A truncated prefix (wrong prev) cannot be spliced onto: the first
     retained link no longer verifies. *)
  let seg = segment () in
  let tail = [ List.nth seg 2; List.nth seg 3 ] in
  (match Chain.verify ~prev:Chain.genesis tail with
  | Error 0 -> ()
  | Error i -> Alcotest.failf "splice detected at %d, expected 0" i
  | Ok _ -> Alcotest.fail "spliced tail verified");
  (* ... but verifies from its true predecessor. *)
  match Chain.verify ~prev:(snd (List.nth seg 1)) tail with
  | Ok _ -> ()
  | Error i -> Alcotest.failf "honest tail rejected at %d" i

let test_hashchain_short () =
  let d = Chain.extend ~prev:Chain.genesis "x" in
  check int_ "6 bytes hex" 12 (String.length (Chain.short d));
  check bool_ "hex alphabet" true
    (String.for_all (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) (Chain.short d))

(* --- suites -------------------------------------------------------------------- *)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_add_commutative;
      prop_add_sub_inverse;
      prop_mul_commutative;
      prop_mul_distributive;
      prop_divmod_reconstruction;
      prop_bytes_roundtrip;
      prop_decimal_roundtrip;
      prop_modpow_mul;
    ]

let () =
  Alcotest.run "dacs_crypto"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int covers range" `Quick test_rng_int_covers_range;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "bytes length" `Quick test_rng_bytes_length;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        ] );
      ( "encoding",
        [
          Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "hex errors" `Quick test_hex_errors;
          Alcotest.test_case "base64 RFC vectors" `Quick test_base64_vectors;
          Alcotest.test_case "base64 whitespace" `Quick test_base64_whitespace;
          Alcotest.test_case "base64 errors" `Quick test_base64_errors;
        ] );
      ( "sha256",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "million a" `Slow test_sha256_million_a;
          Alcotest.test_case "incremental = one-shot" `Quick test_sha256_incremental_matches_oneshot;
          Alcotest.test_case "block boundaries" `Quick test_sha256_block_boundaries;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "RFC 4231 vectors" `Quick test_hmac_rfc4231;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
        ] );
      ( "bignum",
        [
          Alcotest.test_case "of_int/to_int" `Quick test_bignum_of_to_int;
          Alcotest.test_case "decimal roundtrip" `Quick test_bignum_decimal_roundtrip;
          Alcotest.test_case "hex roundtrip" `Quick test_bignum_hex_roundtrip;
          Alcotest.test_case "bytes roundtrip" `Quick test_bignum_bytes_roundtrip;
          Alcotest.test_case "known arithmetic" `Quick test_bignum_known_arithmetic;
          Alcotest.test_case "shifts" `Quick test_bignum_shift;
          Alcotest.test_case "num_bits" `Quick test_bignum_num_bits;
          Alcotest.test_case "negative sub raises" `Quick test_bignum_sub_negative_raises;
          Alcotest.test_case "div by zero raises" `Quick test_bignum_div_by_zero;
          Alcotest.test_case "modpow known values" `Quick test_bignum_modpow_known;
          Alcotest.test_case "gcd" `Quick test_bignum_gcd;
          Alcotest.test_case "modinv" `Quick test_bignum_modinv;
        ]
        @ props );
      ( "prime",
        [
          Alcotest.test_case "small prime list" `Quick test_small_primes_list;
          Alcotest.test_case "small numbers" `Quick test_primality_small;
          Alcotest.test_case "large known primes" `Quick test_primality_large_known;
          Alcotest.test_case "generation" `Quick test_prime_generation;
        ] );
      ( "rsa",
        [
          Alcotest.test_case "keygen shape" `Quick test_rsa_keygen_shape;
          Alcotest.test_case "sign/verify" `Quick test_rsa_sign_verify;
          Alcotest.test_case "wrong key rejects" `Quick test_rsa_sign_wrong_key;
          Alcotest.test_case "encrypt/decrypt" `Quick test_rsa_encrypt_decrypt;
          Alcotest.test_case "encrypt too long" `Quick test_rsa_encrypt_too_long;
          Alcotest.test_case "decrypt garbage" `Quick test_rsa_decrypt_garbage;
          Alcotest.test_case "public key XML roundtrip" `Quick test_rsa_public_xml_roundtrip;
        ] );
      ( "stream_cipher",
        [
          Alcotest.test_case "roundtrip" `Quick test_stream_roundtrip;
          Alcotest.test_case "wrong key garbles" `Quick test_stream_wrong_key;
          Alcotest.test_case "distinct nonces" `Quick test_stream_distinct_nonces;
          Alcotest.test_case "empty message" `Quick test_stream_empty;
        ] );
      ( "cert",
        [
          Alcotest.test_case "self-signed" `Quick test_cert_self_signed;
          Alcotest.test_case "issue and verify" `Quick test_cert_issue_and_verify;
          Alcotest.test_case "XML roundtrip" `Quick test_cert_xml_roundtrip;
          Alcotest.test_case "chain verification" `Quick test_chain_verification;
          Alcotest.test_case "tampered certificate" `Quick test_chain_tampered_signature;
          Alcotest.test_case "trust store dedup" `Quick test_trust_store_dedup;
        ] );
      ( "hash_chain",
        [
          Alcotest.test_case "deterministic" `Quick test_hashchain_deterministic;
          Alcotest.test_case "honest segment verifies" `Quick test_hashchain_verify_honest;
          Alcotest.test_case "empty segment" `Quick test_hashchain_verify_empty;
          Alcotest.test_case "mutation detected at its index" `Quick test_hashchain_mutation_detected;
          Alcotest.test_case "reorder detected" `Quick test_hashchain_reorder_detected;
          Alcotest.test_case "splice/truncation detected" `Quick test_hashchain_splice_detected;
          Alcotest.test_case "short head rendering" `Quick test_hashchain_short;
        ] );
    ]
