(** SOAP 1.2-style envelopes.

    Every exchange between access-control components travels as one of
    these (the paper's Web-Service substrate), so envelope bytes are what
    the §3.2 message-size experiments measure. *)

type envelope = {
  headers : Dacs_xml.Xml.t list;
  body : Dacs_xml.Xml.t;  (** the single body element *)
}

val envelope : ?headers:Dacs_xml.Xml.t list -> Dacs_xml.Xml.t -> Dacs_xml.Xml.t
(** Wrap a body element into [<Envelope><Header>…</Header><Body>…</Body>]. *)

val to_string : envelope -> string

val parse : string -> (envelope, string) result
(** Parse and shape-check an envelope. *)

val of_xml : Dacs_xml.Xml.t -> (envelope, string) result

(** {1 Faults} *)

type fault = { code : string; reason : string }

val fault_body : fault -> Dacs_xml.Xml.t
(** A [<Fault>] body element. *)

val fault_of_body : Dacs_xml.Xml.t -> fault option
(** [Some f] when the body element is a fault. *)
