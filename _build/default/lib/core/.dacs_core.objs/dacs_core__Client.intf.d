lib/core/client.mli: Dacs_net Dacs_policy Dacs_ws Wire
