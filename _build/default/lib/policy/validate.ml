type problem = {
  location : string;
  message : string;
}

let problem_to_string p = Printf.sprintf "%s: %s" p.location p.message

let problem location message = { location; message }

let check_matches location target =
  let sections =
    [
      target.Target.subjects;
      target.Target.resources;
      target.Target.actions;
      target.Target.environments;
    ]
  in
  List.concat_map
    (fun section ->
      List.concat_map
        (fun clause ->
          List.filter_map
            (fun m ->
              if Expr.match_function m.Target.fn = None then
                Some (problem location (Printf.sprintf "unknown match function %s" m.Target.fn))
              else None)
            clause)
        section)
    sections

let check_rule policy_id (r : Rule.t) =
  let location = Printf.sprintf "policy %s / rule %s" policy_id r.Rule.id in
  check_matches location r.Rule.target
  @
  match r.Rule.condition with
  | None -> []
  | Some c -> List.map (problem location) (Expr.validate c)

let duplicates ids =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun id ->
      if Hashtbl.mem seen id then Some id
      else begin
        Hashtbl.add seen id ();
        None
      end)
    ids

(* Variable definitions must be resolvable and acyclic, and every
   reference in a condition must name a definition. *)
let check_variables (p : Policy.t) =
  let location = Printf.sprintf "policy %s" p.Policy.id in
  let defined = List.map fst p.Policy.variables in
  let dup_defs =
    List.map
      (fun name -> problem location (Printf.sprintf "duplicate variable definition %s" name))
      (duplicates defined)
  in
  (* Cycle detection: DFS over the reference graph of definitions. *)
  let rec reaches seen name =
    if List.mem name seen then true
    else
      match List.assoc_opt name p.Policy.variables with
      | None -> false
      | Some e -> List.exists (reaches (name :: seen)) (Expr.variable_refs e)
  in
  let cycles =
    List.filter_map
      (fun (name, e) ->
        if List.exists (reaches [ name ]) (Expr.variable_refs e) then
          Some (problem location (Printf.sprintf "variable %s participates in a reference cycle" name))
        else None)
      p.Policy.variables
  in
  let unresolved_in where e =
    List.filter_map
      (fun name ->
        if List.mem_assoc name p.Policy.variables then None
        else Some (problem where (Printf.sprintf "reference to undefined variable %s" name)))
      (Expr.variable_refs e)
  in
  let in_definitions =
    List.concat_map (fun (name, e) -> unresolved_in (location ^ " / variable " ^ name) e) p.Policy.variables
  in
  let in_conditions =
    List.concat_map
      (fun (r : Rule.t) ->
        match r.Rule.condition with
        | None -> []
        | Some c -> unresolved_in (Printf.sprintf "policy %s / rule %s" p.Policy.id r.Rule.id) c)
      p.Policy.rules
  in
  dup_defs @ cycles @ in_definitions @ in_conditions

let check_policy (p : Policy.t) =
  let location = Printf.sprintf "policy %s" p.Policy.id in
  let structural =
    (if p.Policy.rules = [] then [ problem location "policy has no rules" ] else [])
    @ (if p.Policy.rule_combining = Combine.Only_one_applicable then
         [ problem location "only-one-applicable is a policy-combining algorithm, not rule-combining" ]
       else [])
    @ List.map
        (fun id -> problem location (Printf.sprintf "duplicate rule id %s" id))
        (duplicates (List.map (fun r -> r.Rule.id) p.Policy.rules))
  in
  structural @ check_matches location p.Policy.target @ check_variables p
  @ List.concat_map (check_rule p.Policy.id) p.Policy.rules

let rec check_set (s : Policy.set) =
  let location = Printf.sprintf "policy set %s" s.Policy.set_id in
  let ids = List.map Policy.child_id s.Policy.children in
  (if s.Policy.children = [] then [ problem location "policy set has no children" ] else [])
  @ List.map
      (fun id -> problem location (Printf.sprintf "duplicate child id %s" id))
      (duplicates ids)
  @ check_matches location s.Policy.set_target
  @ List.concat_map check_child s.Policy.children

and check_child = function
  | Policy.Inline_policy p -> check_policy p
  | Policy.Inline_set s -> check_set s
  | Policy.Policy_ref _ -> []

let is_valid child = check_child child = []

let shadowed_rules (p : Policy.t) =
  if p.Policy.rule_combining <> Combine.First_applicable then []
  else begin
    (* A condition-free earlier rule shadows a later one when its target
       is at least as permissive.  We recognise two sound cases: the
       wildcard target, and exact target equality. *)
    let covers (a : Rule.t) (b : Rule.t) =
      a.Rule.condition = None
      && (a.Rule.target = Target.any || a.Rule.target = b.Rule.target)
    in
    let rec scan earlier acc = function
      | [] -> List.rev acc
      | rule :: rest ->
        let acc =
          match List.find_opt (fun a -> covers a rule) (List.rev earlier) with
          | Some a -> (a.Rule.id, rule.Rule.id) :: acc
          | None -> acc
        in
        scan (rule :: earlier) acc rest
    in
    scan [] [] p.Policy.rules
  end
