module Service = Dacs_ws.Service
module Assertion = Dacs_saml.Assertion

type t = {
  services : Service.t;
  node : Dacs_net.Net.node_id;
  issuer : string;
  keypair : Dacs_crypto.Rsa.keypair;
  validity : float;
  users : (string, (string * Dacs_policy.Value.t) list) Hashtbl.t;
  mutable issued : int;
}

let node t = t.node
let issuer t = t.issuer
let public_key t = t.keypair.Dacs_crypto.Rsa.public

let register_user t ~user attrs = Hashtbl.replace t.users user attrs
let remove_user t ~user = Hashtbl.remove t.users user
let knows t ~user = Hashtbl.mem t.users user

let issue t ~user =
  match Hashtbl.find_opt t.users user with
  | None -> None
  | Some attrs ->
    t.issued <- t.issued + 1;
    let unsigned =
      Assertion.make
        ~id:(Printf.sprintf "idp-%s-%d" t.issuer t.issued)
        ~issuer:t.issuer ~subject:user
        ~issued_at:(Dacs_net.Net.now (Service.net t.services))
        ~validity:t.validity
        [ Assertion.Attribute_statement attrs ]
    in
    Some (Assertion.sign t.keypair.Dacs_crypto.Rsa.private_ unsigned)

let issued_count t = t.issued

let create services ~node ~issuer ~keypair ?(validity = 300.0) () =
  let t = { services; node; issuer; keypair; validity; users = Hashtbl.create 64; issued = 0 } in
  Service.serve services ~node ~service:"attribute-assertion"
    (fun ~caller:_ ~headers:_ body reply ->
      match Dacs_xml.Xml.attr body "Subject" with
      | None ->
        reply
          (Dacs_ws.Soap.fault_body
             { Dacs_ws.Soap.code = "soap:Sender"; reason = "request names no subject" })
      | Some user -> (
        match issue t ~user with
        | Some assertion -> reply (Assertion.to_xml assertion)
        | None ->
          reply
            (Dacs_ws.Soap.fault_body
               { Dacs_ws.Soap.code = "soap:Receiver"; reason = "unknown subject" })));
  t
