lib/policy/xacml_xml.mli: Context Dacs_xml Decision Expr Obligation Policy Rule Target
