(* Telemetry suite: the metrics registry (bucket semantics, label-set
   identity, reset consistency with the RPC bus) and the tracing layer
   (context propagation through RPC frames, the golden Fig. 3 span tree).

   The golden-tree test is the paper's Fig. 3 pull flow made visible: one
   client request produces exactly one trace whose spans are the PEP ->
   PDP -> PIP/PAP hops, each with a non-zero virtual-time latency. *)

module Metrics = Dacs_telemetry.Metrics
module Trace = Dacs_telemetry.Trace
module Net = Dacs_net.Net
module Rpc = Dacs_net.Rpc
module Service = Dacs_ws.Service
module Value = Dacs_policy.Value
module Policy = Dacs_policy.Policy
module Rule = Dacs_policy.Rule
module Target = Dacs_policy.Target
module Combine = Dacs_policy.Combine
open Dacs_core

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

(* --- histogram bucket boundaries -------------------------------------------- *)

let test_histogram_buckets () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~buckets:[ 0.1; 0.5; 1.0 ] "lat_seconds" in
  (* Prometheus [le] semantics: a value lands in the first bucket whose
     upper bound is >= v, so an exact boundary stays in its own bucket. *)
  List.iter (Metrics.observe h) [ 0.05; 0.1; 0.100001; 0.5; 1.0; 2.5 ];
  (match Metrics.bucket_counts h with
  | [ (b1, c1); (b2, c2); (b3, c3); (binf, cinf) ] ->
    check (Alcotest.float 1e-9) "bound 1" 0.1 b1;
    check int_ "le 0.1 (0.05 and the exact boundary)" 2 c1;
    check (Alcotest.float 1e-9) "bound 2" 0.5 b2;
    check int_ "0.1 < v <= 0.5" 2 c2;
    check (Alcotest.float 1e-9) "bound 3" 1.0 b3;
    check int_ "0.5 < v <= 1.0" 1 c3;
    check bool_ "last bound is +Inf" true (binf = infinity);
    check int_ "overflow" 1 cinf
  | l -> Alcotest.failf "expected 4 buckets, got %d" (List.length l));
  check int_ "count" 6 (Metrics.histogram_count h);
  check bool_ "sum" true (abs_float (Metrics.histogram_sum h -. 4.250001) < 1e-9);
  Metrics.reset_histogram h;
  check int_ "count after reset" 0 (Metrics.histogram_count h);
  check bool_ "buckets survive reset" true
    (List.map fst (Metrics.bucket_counts h) = [ 0.1; 0.5; 1.0; infinity ])

(* --- quantile edge cases ------------------------------------------------- *)

let test_quantile_empty_histogram () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~buckets:[ 0.1; 1.0 ] "empty_seconds" in
  check bool_ "empty histogram quantile is nan" true (Float.is_nan (Metrics.quantile h 0.5));
  Alcotest.check_raises "q > 1 rejected"
    (Invalid_argument "Metrics.quantile: q must be in [0, 1]") (fun () ->
      ignore (Metrics.quantile h 1.5));
  Alcotest.check_raises "q < 0 rejected"
    (Invalid_argument "Metrics.quantile: q must be in [0, 1]") (fun () ->
      ignore (Metrics.quantile h (-0.1)))

let test_quantile_single_bucket () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~buckets:[ 1.0 ] "single_seconds" in
  (* Everything lands in the one finite bucket: interpolation runs from
     0 to its bound. *)
  List.iter (Metrics.observe h) [ 0.2; 0.4; 0.6; 0.8 ];
  check (Alcotest.float 1e-9) "p50 interpolates inside [0, 1]" 0.5 (Metrics.quantile h 0.5);
  check (Alcotest.float 1e-9) "p100 is the bound" 1.0 (Metrics.quantile h 1.0);
  (* An observation past every finite bound clamps the affected quantile
     to the highest finite bound rather than inventing a value. *)
  Metrics.observe h 5.0;
  check (Alcotest.float 1e-9) "overflow rank clamps to the finite bound" 1.0
    (Metrics.quantile h 0.99)

(* --- exemplar retention --------------------------------------------------- *)

let test_exemplar_retention () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~buckets:[ 0.1; 1.0 ] "ex_seconds" in
  (* Retention is bounded at one exemplar per bucket; the latest wins. *)
  Metrics.observe_exemplar h 0.05 ~trace:"aaaa" ~at:1.0;
  Metrics.observe_exemplar h 0.07 ~trace:"bbbb" ~at:2.0;
  Metrics.observe_exemplar h 0.5 ~trace:"cccc" ~at:3.0;
  Metrics.observe_exemplar h 7.0 ~trace:"dddd" ~at:4.0;
  (match Metrics.histogram_exemplars h with
  | [ (b1, e1); (b2, e2); (binf, einf) ] ->
    check (Alcotest.float 1e-9) "first bucket bound" 0.1 b1;
    check string_ "latest observation wins" "bbbb" e1.Metrics.e_trace;
    check (Alcotest.float 1e-9) "latest value kept" 0.07 e1.Metrics.e_value;
    check (Alcotest.float 1e-9) "second bucket bound" 1.0 b2;
    check string_ "second bucket exemplar" "cccc" e2.Metrics.e_trace;
    check bool_ "overflow bucket keeps one too" true (binf = infinity);
    check string_ "overflow exemplar" "dddd" einf.Metrics.e_trace;
    check (Alcotest.float 1e-9) "timestamp kept" 4.0 einf.Metrics.e_at
  | l -> Alcotest.failf "expected 3 exemplars, got %d" (List.length l));
  (* An empty trace tag (tracing off) still observes but retains nothing. *)
  let h2 = Metrics.histogram m ~buckets:[ 0.1 ] "ex2_seconds" in
  Metrics.observe_exemplar h2 0.05 ~trace:"" ~at:1.0;
  check int_ "observation counted" 1 (Metrics.histogram_count h2);
  check int_ "no exemplar without a trace" 0 (List.length (Metrics.histogram_exemplars h2));
  (* Reset clears exemplars along with the counts. *)
  Metrics.reset_histogram h;
  check int_ "reset clears counts" 0 (Metrics.histogram_count h);
  check int_ "reset clears exemplars" 0 (List.length (Metrics.histogram_exemplars h))

(* --- label-set identity across reset --------------------------------------- *)

let test_label_identity_after_reset () =
  let m = Metrics.create () in
  let a = Metrics.counter m ~labels:[ ("node", "pep"); ("reason", "overload") ] "shed_total" in
  Metrics.inc a;
  let h = Metrics.histogram m ~labels:[ ("node", "pep") ] ~buckets:[ 1.0 ] "lat_seconds" in
  Metrics.observe h 0.5;
  let series_before = Metrics.series_count m in
  Metrics.reset m;
  (* Reset zeroes values but keeps every registered series: the same
     (name, labels) in any order resolves to the same zeroed cell. *)
  check int_ "series survive reset" series_before (Metrics.series_count m);
  let a' = Metrics.counter m ~labels:[ ("reason", "overload"); ("node", "pep") ] "shed_total" in
  check int_ "same cell, zeroed" 0 (Metrics.counter_value a');
  Metrics.inc a';
  check int_ "original handle sees the increment" 1 (Metrics.counter_value a);
  check int_ "no duplicate series minted" series_before (Metrics.series_count m);
  let h' = Metrics.histogram m ~labels:[ ("node", "pep") ] ~buckets:[ 1.0 ] "lat_seconds" in
  Metrics.observe h' 0.25;
  check int_ "histogram cell identity survives too" 1 (Metrics.histogram_count h)

(* --- per-label counter breakdown ------------------------------------------- *)

let test_sum_counter_by () =
  let m = Metrics.create () in
  let c node reason = Metrics.counter m ~labels:[ ("node", node); ("reason", reason) ] "shed_total" in
  Metrics.inc ~by:3 (c "pep0" "overload");
  Metrics.inc ~by:2 (c "pep1" "overload");
  Metrics.inc (c "pep0" "breaker");
  ignore (Metrics.counter m ~labels:[ ("node", "pep2") ] "shed_total");
  check
    (Alcotest.list (Alcotest.pair string_ int_))
    "summed by reason, sorted, unlabelled series omitted"
    [ ("breaker", 1); ("overload", 5) ]
    (Metrics.sum_counter_by m "shed_total" ~label:"reason")

let test_histogram_validation () =
  let m = Metrics.create () in
  Alcotest.check_raises "non-increasing buckets"
    (Invalid_argument "Metrics: buckets of bad_hist must be strictly increasing")
    (fun () -> ignore (Metrics.histogram m ~buckets:[ 0.5; 0.5 ] "bad_hist"))

(* --- label-set identity -------------------------------------------------- *)

let test_label_identity () =
  let m = Metrics.create () in
  let a = Metrics.counter m ~labels:[ ("node", "pep"); ("kind", "pull") ] "requests_total" in
  (* Same label set in a different order: the very same cell. *)
  let b = Metrics.counter m ~labels:[ ("kind", "pull"); ("node", "pep") ] "requests_total" in
  Metrics.inc a;
  Metrics.inc b;
  check int_ "one shared cell" 2 (Metrics.counter_value a);
  (* A different label set is a different cell under the same name. *)
  let c = Metrics.counter m ~labels:[ ("node", "pep2"); ("kind", "pull") ] "requests_total" in
  check int_ "distinct cell" 0 (Metrics.counter_value c);
  Metrics.inc c;
  check int_ "sum across label sets" 3 (Metrics.sum_counter m "requests_total");
  check int_ "series count" 2 (Metrics.series_count m);
  (* One name, one instrument kind. *)
  check bool_ "kind conflict raises" true
    (try
       ignore (Metrics.gauge m "requests_total");
       false
     with Invalid_argument _ -> true)

let test_render_no_duplicate_names () =
  let m = Metrics.create ~now:(fun () -> 1.5) () in
  ignore (Metrics.counter m ~labels:[ ("node", "a") ] "x_total");
  ignore (Metrics.counter m ~labels:[ ("node", "b") ] "x_total");
  ignore (Metrics.gauge m "y");
  let rendered = Metrics.render m in
  let type_lines =
    List.filter (fun l -> String.length l >= 6 && String.sub l 0 6 = "# TYPE")
      (String.split_on_char '\n' rendered)
  in
  (* One TYPE header per metric name, even with several label sets. *)
  check int_ "one TYPE header per name" 2 (List.length type_lines);
  check int_ "no duplicate TYPE headers" 2
    (List.length (List.sort_uniq compare type_lines))

(* --- reset consistency across the bus (the satellite fix) ------------------- *)

let deny_all_policy =
  Policy.Inline_policy
    (Policy.make ~id:"p" ~rule_combining:Combine.First_applicable [ Rule.deny "deny-all" ])

let test_reset_consistency () =
  let net = Net.create ~seed:5L () in
  let rpc = Rpc.create net in
  let services = Service.create rpc in
  List.iter (Net.add_node net) [ "pep"; "pdp"; "cli" ];
  ignore (Pdp_service.create services ~node:"pdp" ~name:"pdp" ~root:deny_all_policy ());
  let pep =
    Pep.create services ~node:"pep" ~domain:"d" ~resource:"r"
      (Pep.Pull { pdps = [ "pdp" ]; cache = None; call_timeout = 0.2 })
  in
  Pep.set_retry_policy pep
    (Some { Rpc.attempts = 3; base_delay = 0.05; multiplier = 2.0; max_delay = 1.0; jitter = 0.0 });
  Net.crash net "pdp";
  let client =
    Client.create services ~node:"cli" ~subject:[ ("subject-id", Value.String "u") ]
  in
  Client.request client ~pep:"pep" ~action:"read" ~timeout:10.0 (fun _ -> ());
  Net.run net;
  (* The PEP's resilient call retried twice; both its own stats and the
     bus-wide aggregate see the same underlying counters. *)
  check int_ "pep saw retries" 2 (Pep.stats pep).Pep.retries;
  check int_ "bus saw the same retries" 2 (Rpc.resilience_stats rpc).Rpc.retries;
  Pep.reset_stats pep;
  check int_ "pep reset" 0 (Pep.stats pep).Pep.retries;
  (* Regression (PR 2 satellite): this used to stay at 2 because the bus
     kept its own mutable total that Pep.reset_stats never touched. *)
  check int_ "bus reset too" 0 (Rpc.resilience_stats rpc).Rpc.retries

(* --- trace context through an RPC frame (QCheck) ----------------------------- *)

let context_roundtrip =
  QCheck.Test.make ~count:200 ~name:"trace context survives the RPC frame"
    QCheck.(
      quad (map Int64.of_int int) (map Int64.of_int int) small_nat
        (pair printable_string printable_string))
    (fun (trace_id, span_id, id, (service, body)) ->
      let ctx = { Trace.trace_id; span_id } in
      let trace = Trace.context_to_string ctx in
      match Rpc.decode (Rpc.encode_traced_request id service ~trace body) with
      | Some (Rpc.Traced_request { id = id'; service = service'; trace = trace'; body = body' })
        ->
        id' = id && service' = service && body' = body
        && Trace.context_of_string trace' = Some ctx
      | _ -> false)

(* --- golden span tree: the Fig. 3 pull flow --------------------------------- *)

(* Mirror of the CLI's observability scenario (bin/dacs.ml): a full
   domain (PEP, PDP, PAP, PIP) where the client presents only its
   subject-id, forcing the PDP to fetch the role attribute from the PIP
   and the policy from the PAP. *)
let pull_flow_scenario ~seed =
  let net = Net.create ~seed () in
  let rpc = Rpc.create net in
  let services = Service.create rpc in
  Rpc.set_tracing rpc true;
  let domain = Domain.create services ~name:"demo" () in
  Domain.set_local_policy domain
    (Policy.Inline_policy
       (Policy.make ~id:"demo-policy" ~rule_combining:Combine.First_applicable
          [
            Rule.permit
              ~target:
                Target.(any |> subject_is "role" "admin" |> action_is "action-id" "read")
              "admins-read";
            Rule.deny "default-deny";
          ]));
  let cache =
    Decision_cache.create ~metrics:(Rpc.metrics rpc) ~owner:"demo-resource" ~ttl:2.0 ()
  in
  let pep = Domain.expose_resource domain ~resource:"demo-resource" ~content:"42" ~cache () in
  Domain.register_user domain ~user:"admin1" [ ("role", Value.String "admin") ];
  Net.add_node net "cli";
  let client =
    Client.create services ~node:"cli" ~subject:[ ("subject-id", Value.String "admin1") ]
  in
  let outcome = ref None in
  Client.request client ~pep:(Pep.node pep) ~action:"read" (fun r -> outcome := Some r);
  Net.run net;
  (rpc, !outcome)

let golden_tree =
  String.concat "\n"
    [
      "trace 63cbe1e459320dd7  (10 spans, 40.0ms)";
      "`- rpc:access  [+0.0ms 40.0ms]  src=cli dst=demo.pep.demo-resource";
      "   `- serve:access  [+5.0ms 30.0ms]  node=demo.pep.demo-resource caller=cli";
      "      `- pep:enforce  [+5.0ms 30.0ms]  node=demo.pep.demo-resource subject=admin1 \
       action=read decision=Permit stage=live";
      "         `- rpc:authz-query  [+5.0ms 30.0ms]  src=demo.pep.demo-resource dst=demo.pdp";
      "            `- serve:authz-query  [+10.0ms 20.0ms]  node=demo.pdp \
       caller=demo.pep.demo-resource";
      "               `- pdp:evaluate  [+10.0ms 20.0ms]  node=demo.pdp decision=Permit";
      "                  |- rpc:policy-query  [+10.0ms 10.0ms]  src=demo.pdp dst=demo.pap";
      "                  |  `- serve:policy-query  [+15.0ms 0.0ms]  node=demo.pap caller=demo.pdp";
      "                  `- rpc:attribute-query  [+20.0ms 10.0ms]  src=demo.pdp dst=demo.pip";
      "                     `- serve:attribute-query  [+25.0ms 0.0ms]  node=demo.pip \
       caller=demo.pdp";
      "";
    ]

let test_golden_pull_trace () =
  let rpc, outcome = pull_flow_scenario ~seed:7L in
  (match outcome with
  | Some (Ok (Wire.Granted { content; _ })) -> check string_ "granted" "42" content
  | _ -> Alcotest.fail "expected a granted pull request");
  let tr = Rpc.tracer rpc in
  check int_ "one trace" 1 (List.length (Trace.trace_ids tr));
  check string_ "golden span tree" golden_tree (Trace.render_tree tr)

let test_trace_determinism () =
  let render seed =
    let rpc, _ = pull_flow_scenario ~seed in
    Trace.render_tree (Rpc.tracer rpc)
  in
  check string_ "same seed, byte-identical tree" (render 7L) (render 7L);
  check bool_ "different seed, different ids" true (render 7L <> render 8L)

let test_tracing_off_is_free () =
  let net = Net.create ~seed:7L () in
  let rpc = Rpc.create net in
  let tr = Rpc.tracer rpc in
  check bool_ "off by default" false (Trace.enabled tr);
  (* While disabled, start_span mints no ids and records nothing, so the
     engine's RNG stream is exactly what an untraced run sees. *)
  let before = Dacs_crypto.Rng.next_int64 (Dacs_net.Engine.rng (Net.engine net)) in
  let span = Trace.start_span tr "noop" in
  Trace.annotate span "k" "v";
  Trace.finish tr span;
  check int_ "nothing recorded" 0 (Trace.span_count tr);
  let net2 = Net.create ~seed:7L () in
  let rng2 = Dacs_net.Engine.rng (Net.engine net2) in
  check bool_ "rng stream unperturbed" true
    (Dacs_crypto.Rng.next_int64 rng2 = before)

(* --- streaming log-bucket histograms ----------------------------------------- *)

module Loghist = Dacs_telemetry.Loghist

(* The frexp bucket index against the definitionally-correct linear scan:
   the first bucket whose upper bound [lo * 2^i] is >= the observation. *)
let prop_loghist_index_matches_linear_scan =
  let open QCheck in
  Test.make ~name:"loghist: frexp index == linear-scan index" ~count:1000
    (pair (float_range 0.000001 50.0) (int_range 1 24))
    (fun (v, buckets) ->
      let lo = 0.0005 in
      let h = Loghist.create ~lo ~buckets () in
      Loghist.observe h v;
      let expected =
        let rec scan i = if i >= buckets || v <= lo *. (2.0 ** float_of_int i) then i else scan (i + 1) in
        scan 0
      in
      let placed = ref (-1) in
      Array.iteri (fun i (_, c) -> if c = 1 then placed := i) (Loghist.bucket_counts h);
      !placed = expected)

(* Merging two histograms is indistinguishable from one histogram that
   saw both streams: same buckets, count, sum, max and quantiles. *)
let prop_loghist_merge_is_union =
  let open QCheck in
  Test.make ~name:"loghist: merge == combined stream" ~count:300
    (pair (list_of_size Gen.(0 -- 40) (float_range 0.0001 10.0))
       (list_of_size Gen.(0 -- 40) (float_range 0.0001 10.0)))
    (fun (xs, ys) ->
      let a = Loghist.create () and b = Loghist.create () and u = Loghist.create () in
      List.iter (fun v -> Loghist.observe a v; Loghist.observe u v) xs;
      List.iter (fun v -> Loghist.observe b v; Loghist.observe u v) ys;
      let m = Loghist.merge a b in
      Loghist.count m = Loghist.count u
      && Loghist.max_seen m = Loghist.max_seen u
      && Float.abs (Loghist.sum m -. Loghist.sum u) < 1e-9
      && Loghist.bucket_counts m = Loghist.bucket_counts u
      && List.for_all
           (fun q -> Loghist.quantile m q = Loghist.quantile u q)
           [ 0.5; 0.95; 0.99; 1.0 ])

let prop_loghist_quantile_monotone =
  let open QCheck in
  Test.make ~name:"loghist: quantiles monotone and bounded by max" ~count:300
    (list_of_size Gen.(1 -- 60) (float_range 0.0001 30.0))
    (fun xs ->
      let h = Loghist.create () in
      List.iter (Loghist.observe h) xs;
      let q50 = Loghist.quantile h 0.5
      and q95 = Loghist.quantile h 0.95
      and q99 = Loghist.quantile h 0.99 in
      q50 <= q95 && q95 <= q99 && q99 <= Loghist.max_seen h)

let test_loghist_edges () =
  let h = Loghist.create ~lo:0.001 ~buckets:4 () in
  check (Alcotest.float 0.0) "empty quantile" 0.0 (Loghist.quantile h 0.99);
  check (Alcotest.float 0.0) "empty max" 0.0 (Loghist.max_seen h);
  (* Non-positive and tiny values land in the first bucket. *)
  Loghist.observe h 0.0;
  Loghist.observe h (-1.0);
  Loghist.observe h 0.0005;
  check int_ "first bucket holds them" 3 (snd (Loghist.bucket_counts h).(0));
  (* Exact power-of-two bounds are inclusive upper bounds. *)
  let g = Loghist.create ~lo:0.001 ~buckets:4 () in
  Loghist.observe g 0.002;
  check int_ "2*lo sits in bucket 1" 1 (snd (Loghist.bucket_counts g).(1));
  (* Past the top bound: overflow bucket, quantile reports exact max. *)
  let o = Loghist.create ~lo:0.001 ~buckets:4 () in
  Loghist.observe o 1.0;
  check int_ "overflow bucket" 1 (snd (Loghist.bucket_counts o).(4));
  check (Alcotest.float 0.0) "overflow quantile is exact max" 1.0 (Loghist.quantile o 0.99);
  (* Shape mismatches refuse to merge. *)
  let mismatch () = ignore (Loghist.merge h (Loghist.create ~lo:0.001 ~buckets:5 ())) in
  Alcotest.check_raises "bucket-count mismatch"
    (Invalid_argument "Loghist.merge: shape mismatch") mismatch;
  let mismatch_lo () = ignore (Loghist.merge h (Loghist.create ~lo:0.002 ~buckets:4 ())) in
  Alcotest.check_raises "lo mismatch" (Invalid_argument "Loghist.merge: shape mismatch")
    mismatch_lo

(* --- suite ------------------------------------------------------------------- *)

let () =
  Alcotest.run "dacs_telemetry"
    [
      ( "metrics",
        [
          Alcotest.test_case "histogram bucket boundaries" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram validation" `Quick test_histogram_validation;
          Alcotest.test_case "quantile on an empty histogram" `Quick test_quantile_empty_histogram;
          Alcotest.test_case "quantile on a single-bucket histogram" `Quick
            test_quantile_single_bucket;
          Alcotest.test_case "exemplar retention bounds" `Quick test_exemplar_retention;
          Alcotest.test_case "label-set identity after reset" `Quick
            test_label_identity_after_reset;
          Alcotest.test_case "per-label counter breakdown" `Quick test_sum_counter_by;
          Alcotest.test_case "label-set identity" `Quick test_label_identity;
          Alcotest.test_case "exposition has no duplicate headers" `Quick
            test_render_no_duplicate_names;
          Alcotest.test_case "reset is consistent across the bus" `Quick test_reset_consistency;
        ] );
      ( "loghist",
        [
          QCheck_alcotest.to_alcotest prop_loghist_index_matches_linear_scan;
          QCheck_alcotest.to_alcotest prop_loghist_merge_is_union;
          QCheck_alcotest.to_alcotest prop_loghist_quantile_monotone;
          Alcotest.test_case "edge cases and shape guards" `Quick test_loghist_edges;
        ] );
      ( "tracing",
        [
          QCheck_alcotest.to_alcotest context_roundtrip;
          Alcotest.test_case "golden Fig. 3 pull-flow span tree" `Quick test_golden_pull_trace;
          Alcotest.test_case "trace output deterministic per seed" `Quick test_trace_determinism;
          Alcotest.test_case "disabled tracing mints no ids" `Quick test_tracing_off_is_free;
        ] );
    ]
