module Metrics = Dacs_telemetry.Metrics

type entry = { result : Dacs_policy.Decision.result; expires : float; stamp : int }

type stats = { hits : int; misses : int; expiries : int; evictions : int; stale_hits : int }

(* Optional mirror of the stats into a shared registry, one series set per
   cache (labelled by owner). *)
type mirror = {
  m_hits : Metrics.counter;
  m_misses : Metrics.counter;
  m_expiries : Metrics.counter;
  m_evictions : Metrics.counter;
  m_stale_hits : Metrics.counter;
}

type t = {
  ttl : float;
  max_entries : int;
  table : (string, entry) Hashtbl.t;
  (* Insertion order as (key, stamp) pairs; re-inserting a key leaves its
     older pairs behind as tombstones, skipped at eviction time. *)
  order : (string * int) Queue.t;
  mirror : mirror option;
  mutable next_stamp : int;
  mutable stats : stats;
}

let create ?metrics ?(owner = "default") ?(max_entries = 1024) ~ttl () =
  if ttl < 0.0 then invalid_arg "Decision_cache.create: negative ttl";
  let mirror =
    Option.map
      (fun m ->
        let c ?help n = Metrics.counter m ?help ~labels:[ ("cache", owner) ] n in
        {
          m_hits = c "decision_cache_hits_total" ~help:"Fresh cache hits";
          m_misses = c "decision_cache_misses_total" ~help:"Cache misses";
          m_expiries = c "decision_cache_expiries_total" ~help:"Entries dropped past staleness";
          m_evictions = c "decision_cache_evictions_total" ~help:"Capacity evictions";
          m_stale_hits = c "decision_cache_stale_hits_total" ~help:"Lookups answered stale";
        })
      metrics
  in
  {
    ttl;
    max_entries;
    (* Pre-size from capacity so a cache filled to max_entries never
       rehashes; capped so absurd limits don't allocate absurd tables. *)
    table = Hashtbl.create (max 64 (min max_entries (1 lsl 18)));
    order = Queue.create ();
    mirror;
    next_stamp = 0;
    stats = { hits = 0; misses = 0; expiries = 0; evictions = 0; stale_hits = 0 };
  }

let bump t sel = match t.mirror with None -> () | Some m -> Metrics.inc (sel m)

let ttl t = t.ttl

type lookup =
  | Fresh of Dacs_policy.Decision.result
  | Stale of { result : Dacs_policy.Decision.result; age : float }
  | Absent

let lookup t ~now ~max_stale ~key =
  match Hashtbl.find_opt t.table key with
  | None ->
    t.stats <- { t.stats with misses = t.stats.misses + 1 };
    bump t (fun m -> m.m_misses);
    Absent
  | Some e ->
    if now < e.expires then begin
      t.stats <- { t.stats with hits = t.stats.hits + 1 };
      bump t (fun m -> m.m_hits);
      Fresh e.result
    end
    else begin
      let age = now -. e.expires in
      if age <= max_stale then begin
        (* Kept for possible degraded serving; still a miss for the
           caller's fresh-path accounting. *)
        t.stats <- { t.stats with misses = t.stats.misses + 1; stale_hits = t.stats.stale_hits + 1 };
        bump t (fun m -> m.m_misses);
        bump t (fun m -> m.m_stale_hits);
        Stale { result = e.result; age }
      end
      else begin
        Hashtbl.remove t.table key;
        t.stats <- { t.stats with expiries = t.stats.expiries + 1; misses = t.stats.misses + 1 };
        bump t (fun m -> m.m_expiries);
        bump t (fun m -> m.m_misses);
        Absent
      end
    end

let get t ~now ~key =
  match lookup t ~now ~max_stale:0.0 ~key with
  | Fresh result -> Some result
  | Stale _ | Absent -> None

let evict_one t =
  (* Pop queue pairs until one still names the live insertion of its key:
     a (key, stamp) whose stamp is outdated means the key was re-inserted
     later and must not be evicted on the strength of its old position. *)
  let rec go () =
    match Queue.take_opt t.order with
    | None -> ()
    | Some (key, stamp) -> (
      match Hashtbl.find_opt t.table key with
      | Some e when e.stamp = stamp ->
        Hashtbl.remove t.table key;
        t.stats <- { t.stats with evictions = t.stats.evictions + 1 };
        bump t (fun m -> m.m_evictions)
      | Some _ | None -> go ())
  in
  go ()

let put t ~now ~key result =
  match result.Dacs_policy.Decision.decision with
  | Dacs_policy.Decision.Indeterminate _ ->
    (* Never cache errors: an Indeterminate is a statement about the
       authorisation machinery at one instant, not about the policy, and
       caching one would keep failing requests after the fault clears. *)
    ()
  | Dacs_policy.Decision.Permit | Dacs_policy.Decision.Deny | Dacs_policy.Decision.Not_applicable ->
    (* Negative caching: Deny and NotApplicable are cached under the same
       TTL as Permit — a hot mistaken request is as worth absorbing as a
       hot granted one, and invalidation rounds purge all three alike. *)
    if not (Hashtbl.mem t.table key) && Hashtbl.length t.table >= t.max_entries then evict_one t;
    let stamp = t.next_stamp in
    t.next_stamp <- t.next_stamp + 1;
    Hashtbl.replace t.table key { result; expires = now +. t.ttl; stamp };
    Queue.add (key, stamp) t.order

let invalidate t ~key = Hashtbl.remove t.table key

let invalidate_all t =
  Hashtbl.reset t.table;
  Queue.clear t.order

(* A key is droppable for a region when the context it decodes to lies
   inside it.  Undecodable keys (Sha_hex digests, vocabulary from
   another process) drop too: the region test needs the key's atoms, and
   a key we cannot read might belong to an affected request.  The
   decoded context carries no Environment bags, so environment-guarded
   pins can never exclude a key — also conservative. *)
let key_in_region region key =
  match Intern.decode_key key with
  | None -> true
  | Some ctx -> Dacs_policy.Delta.covers region ctx

let invalidate_region t region =
  match region with
  | Dacs_policy.Delta.Empty -> 0
  | Dacs_policy.Delta.Unbounded ->
    let n = Hashtbl.length t.table in
    invalidate_all t;
    n
  | Dacs_policy.Delta.Zones _ ->
    let doomed =
      Hashtbl.fold (fun key _ acc -> if key_in_region region key then key :: acc else acc) t.table []
    in
    List.iter (fun key -> Hashtbl.remove t.table key) doomed;
    List.length doomed

let size t = Hashtbl.length t.table

let key_bytes t = Hashtbl.fold (fun key _ acc -> acc + String.length key) t.table 0

let stats t = t.stats

let sha_request_key ctx =
  (* The original scheme: every attribute formatted, sorted, joined and
     SHA-256-hashed per request.  Kept as the baseline arm of the E22
     key-scheme ablation. *)
  let module Context = Dacs_policy.Context in
  let module Value = Dacs_policy.Value in
  let section category =
    List.concat_map
      (fun (id, bag) ->
        List.map (fun v -> Printf.sprintf "%s/%s=%s" (Context.category_name category) id (Value.describe v)) bag)
      (Context.attributes ctx category)
  in
  let parts = section Context.Subject @ section Context.Resource @ section Context.Action in
  Dacs_crypto.Sha256.hex_digest (String.concat "|" (List.sort compare parts))

type key_scheme = Packed | Sha_hex

let scheme = ref Packed

let key_scheme () = !scheme
let set_key_scheme s = scheme := s

let request_key ctx =
  (* Environment attributes (notably the current time) are excluded under
     both schemes: a key that changes every request would never hit.  The
     price is that a cached decision ignores environment-sensitive
     conditions for one TTL — part of the staleness trade the experiments
     measure. *)
  match !scheme with
  | Packed -> Intern.request_key ctx
  | Sha_hex -> sha_request_key ctx
