(** Deterministic VO-scale workload engine (the load side of §3's
    communication-performance challenge).

    Builds a synthetic virtual organisation on the simulated network —
    PDP shards behind per-PEP tiers, optional L1 decision caches, bounded
    admission queues — and drives {!Dacs_core.Pep.decide} with generated
    traffic: a Zipf-skewed population of users hitting Zipf-skewed
    enforcement points, arriving either open-loop (Poisson, a fixed
    offered rate that does not slow down when the system does — the
    regime where overload protection matters) or closed-loop (a fixed
    client population with think time).

    Everything is deterministic: arrivals, population sampling and the
    virtual clock all derive from the scenario seed, so the same scenario
    renders a byte-identical report every run — load tests are replayable
    evidence, not weather. *)

type arrivals =
  | Open_loop of { rate : float }
      (** Poisson arrivals at [rate] requests per virtual second;
          exponential inter-arrival times off the seeded RNG. *)
  | Closed_loop of { clients : int; think_time : float }
      (** [clients] loops, each issuing its next request [think_time]
          virtual seconds after its previous answer. *)

type partition = { from : float; until : float }
(** Virtual-second window during which every PEP node is cut off from
    every PDP shard ([Dacs_net.Net.partition] at [from], reconnect at
    [until]). *)

type churn = { churn_period : float; churn_targeted : bool }
(** Policy-churn schedule: every [churn_period] virtual seconds install
    the next policy generation on every shard (a single rotating
    admins-read rule spliced over the base serving policy) and
    invalidate PEP L1 caches — with the publish's
    {!Dacs_policy.Delta.between} change-impact region when
    [churn_targeted], or with {!Dacs_policy.Delta.unbounded} (the
    classic full flush) as the ablation baseline.  Both arms install
    identical policy sequences, so their decisions must agree. *)

type scenario = {
  seed : int;
  domains : int;  (** domains the PEPs are spread across (naming only) *)
  peps : int;  (** enforcement points, each guarding one resource *)
  shards : int;  (** PDP replicas behind every PEP's tier *)
  users : int;  (** subject population; roles assigned round-robin *)
  zipf : float;  (** skew for user and resource popularity; 0 = uniform *)
  arrivals : arrivals;
  duration : float;  (** virtual seconds during which traffic is offered *)
  cache_ttl : float;  (** L1 decision-cache TTL; <= 0 disables the cache *)
  cache_capacity : int;  (** L1 max entries (the E22 warm-working-set knob) *)
  service_time : float;  (** per-query PDP occupancy (the FIFO model) *)
  batch : int;  (** tier batch limit *)
  admission : Dacs_core.Pep.admission option;  (** per-PEP bound *)
  pdp_max_inflight : int option;  (** per-shard bound *)
  rule_cost : float;
      (** extra per-rule-scanned PDP occupancy (seconds); 0 keeps the
          flat [service_time] model *)
  compiled : bool;  (** evaluate shards through the compiled policy form *)
  partition : partition option;  (** cut PEPs off from the decision tier *)
  offline : bool;
      (** give every PEP an offline replica holding the serving policy,
          so partitioned requests are answered from the signed local log
          ([offline] provenance) instead of failing closed *)
  churn : churn option;  (** the E23 policy-churn schedule; [None] = static policy *)
}

val default : scenario
(** 1 domain, 4 PEPs, 2 shards, 200 users, zipf 1.1, open-loop 200 req/s
    for 5 s, cache off (capacity 1024 when enabled), 4 ms service time,
    admission (32, 32), per-shard bound 64, seed 42, no rule cost,
    interpreted evaluation, no partition, offline mode off.

    The serving policy guards each PEP's resource with its own
    doctor/nurse rule pair (all pinned by resource-id) over a final
    default-deny, so an interpreter scans ~2 rules per PEP while
    compiled dispatch considers only the requested resource's pair —
    with a positive [rule_cost], the [compiled] toggle becomes a
    capacity ablation. *)

val latency_buckets : float list
(** Log-spaced (powers of two from 0.5 ms) upper bounds of the latency
    accounting — the shape of the per-PEP streaming
    {!Dacs_telemetry.Loghist} histograms the report merges. *)

type percentiles = { p50 : float; p95 : float; p99 : float; max : float }
(** p50/p95/p99 are bucket upper bounds (Prometheus-style estimates from
    the log-bucketed histogram); [max] is exact. *)

type report = {
  offered : int;  (** requests issued *)
  completed : int;  (** continuations fired (includes shed) *)
  granted : int;
  denied : int;
  errors : int;  (** Indeterminate answers other than shedding *)
  offline_serves : int;
      (** decisions served from the offline log, [pep_offline_serves_total] *)
  shed : int;  (** refused by PEP admission queues, [pep_shed_total] *)
  pdp_overloads : int;  (** shard-level rejections, [pdp_overload_total] *)
  throughput : float;  (** admitted answers per second of makespan *)
  latency : percentiles;  (** over admitted (non-shed) requests *)
  mean_latency : float;
  makespan : float;  (** virtual time of the last completion *)
  messages : int;  (** network messages sent end-to-end *)
  active_users : int;
      (** distinct users that actually issued a request — the only users
          the engine materialises state for, so at 1M+ Zipf populations
          this stays far below [users] and so does scenario memory *)
  cache_hits : int;
      (** L1 decision-cache hits across all PEPs,
          [decision_cache_hits_total] — the E23 churn ablation's figure
          of merit: targeted invalidation retains warm entries a full
          flush discards *)
  publishes : int;  (** policy generations the churn schedule installed *)
  shed_reasons : (string * int) list;
      (** per-reason breakdown of [shed], from
          [pep_shed_reason_total{node,reason}], summed by reason *)
  slo : Dacs_telemetry.Slo.status;
      (** {!Dacs_telemetry.Slo.default_objective} over the run's virtual
          clock: every non-Indeterminate answer counts as served, shed
          and fail-closed answers burn the availability budget *)
}

val churned_policy : resources:int -> gen:int -> Dacs_policy.Policy.t
(** The churn schedule's generation [gen] policy over [resources]
    guarded resources: generation 0 is exactly the base serving policy;
    generation [g > 0] splices one fully pinned rule
    ([admins-read-churn], granting admins read on res[g mod resources])
    in front of the default-deny.  Consecutive generations therefore
    differ in one rule and {!Dacs_policy.Delta.between} yields a small
    bounded region — the corpus E23 and the delta test-suites churn
    over. *)

val run : scenario -> report
(** Stand the scenario up on a fresh seeded network, offer the traffic,
    run the simulation to quiescence and collect the report.  Raises
    [Invalid_argument] on nonsensical scenarios (no users, no shards,
    non-positive duration or rate...). *)

val conservation_ok : report -> bool
(** Every offered request was answered exactly once and every answer is
    accounted for: [completed = offered] and
    [granted + denied + errors + shed = completed]. *)

val render : report -> string
(** Fixed-format text report — byte-identical across runs of the same
    scenario (the determinism contract [dacs load] and E18 gate on). *)

val render_json : report -> string
