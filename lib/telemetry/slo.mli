(** SLO monitor: rolling-window availability and latency objectives with
    error-budget burn rates (§3 management challenge — the layer that
    turns per-decision telemetry into "are we keeping our promises").

    Two objectives per monitor:

    - {b availability}: the fraction of decisions that were {e served} —
      answered by policy (any cache tier, the live tier, or a
      bounded-stale serve) rather than failed closed.
    - {b latency}: the fraction of decisions answered within the
      threshold.

    Decisions are accounted into fixed-width slices of the virtual clock
    (window/60 each); a {!status} sums the slices inside the window, so
    traffic ages out deterministically as virtual time advances and a
    given seed always reproduces the same statuses. *)

type objective = {
  availability_target : float;  (** e.g. [0.999]: >= 99.9% of decisions served *)
  latency_threshold : float;  (** seconds; a decision this fast is compliant *)
  latency_target : float;  (** e.g. [0.99]: >= 99% within the threshold *)
  window : float;  (** rolling window, seconds of virtual time *)
}

val default_objective : objective
(** 99.9% availability, 99% of decisions within 250 ms, over 60 s. *)

type t

val create : ?objective:objective -> now:(unit -> float) -> unit -> t
(** [now] must be the virtual clock for deterministic windows.  Raises
    [Invalid_argument] on a non-positive window, targets outside [0, 1]
    or a negative threshold. *)

val objective : t -> objective

val record : t -> ok:bool -> latency:float -> unit
(** Account one decision at the current virtual time.  [ok] means the
    decision was served (not failed closed); [latency] is its end-to-end
    decision latency in seconds. *)

type status = {
  at : float;
  total : int;  (** decisions inside the window *)
  ok : int;
  fast : int;
  availability : float;  (** ok/total; 1.0 over an empty window *)
  latency_compliance : float;  (** fast/total; 1.0 over an empty window *)
  availability_burn : float;
      (** error rate as a multiple of the error budget: 1.0 burns the
          budget exactly at the sustainable rate, above 1.0 exhausts it *)
  latency_burn : float;
  availability_met : bool;
  latency_met : bool;
}

val status : t -> status
(** The window ending now. *)

val render : t -> string
(** Three-line human summary of {!status} — deterministic for a given
    seed. *)
