module Service = Dacs_ws.Service
module Value = Dacs_policy.Value
module Assertion = Dacs_saml.Assertion

type t = {
  services : Service.t;
  node : Dacs_net.Net.node_id;
  subject : (string * Value.t) list;
  (* (resource, action) -> parsed capability and its original wire form
     (the PEP must see the same encoding the issuer produced). *)
  capabilities : (string * string, Assertion.t * Dacs_xml.Xml.t) Hashtbl.t;
  mutable capability_requests : int;
}

let create services ~node ~subject =
  { services; node; subject; capabilities = Hashtbl.create 8; capability_requests = 0 }

let node t = t.node

let subject_id t =
  match List.assoc_opt "subject-id" t.subject with
  | Some v -> Value.to_string v
  | None -> "anonymous"

let now t = Dacs_net.Net.now (Service.net t.services)

let parse_outcome body =
  match Wire.parse_access_outcome body with
  | Ok outcome -> Ok outcome
  | Error e -> Error (Service.Malformed e)

let request t ~pep ~action ?timeout ?retry ?notify k =
  Service.call_resilient t.services ~src:t.node ~dst:pep ~service:"access" ?timeout ?retry ?notify
    (Wire.access_request ~subject:t.subject ~action)
    (fun response ->
      match response with
      | Ok body -> k (parse_outcome body)
      | Error e -> k (Error e))

let valid_capability t ~resource ~action =
  match Hashtbl.find_opt t.capabilities (resource, action) with
  | Some (a, wire) when Assertion.valid_at a (now t) -> Some wire
  | Some _ ->
    Hashtbl.remove t.capabilities (resource, action);
    None
  | None -> None

let drop_capabilities t = Hashtbl.reset t.capabilities

let capability_requests_made t = t.capability_requests

let call_with_capability t ~pep ~action ?timeout ?retry ?notify wire k =
  Service.call_resilient t.services ~src:t.node ~dst:pep ~service:"access" ?timeout ?retry ?notify
    ~headers:[ wire ]
    (Wire.access_request ~subject:t.subject ~action)
    (fun response ->
      match response with
      | Ok body -> k (parse_outcome body)
      | Error e -> k (Error e))

let parse_capability body =
  if Dacs_xml.Xml.local_name (Dacs_xml.Xml.tag body) = Dacs_saml.Attribute_cert.element_name then
    Dacs_saml.Attribute_cert.of_xml body
  else Assertion.of_xml body

let request_with_capability t ~capability_service ~pep ~resource ~action ?timeout ?retry ?notify k =
  match valid_capability t ~resource ~action with
  | Some wire -> call_with_capability t ~pep ~action ?timeout ?retry ?notify wire k
  | None ->
    t.capability_requests <- t.capability_requests + 1;
    Service.call_resilient t.services ~src:t.node ~dst:capability_service
      ~service:"capability-request" ?timeout ?retry ?notify
      (Wire.capability_request ~subject:t.subject ~pairs:[ (resource, action) ])
      (fun response ->
        match response with
        | Error e -> k (Error e)
        | Ok body -> (
          match parse_capability body with
          | Error e -> k (Error (Service.Malformed e))
          | Ok assertion ->
            Hashtbl.replace t.capabilities (resource, action) (assertion, body);
            call_with_capability t ~pep ~action ?timeout ?retry ?notify body k))
