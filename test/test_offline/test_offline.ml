(* The offline authorization replica: signed-log integrity at sync time,
   the offline rung of the PEP ladder, and the coalesced-waiter
   provenance regression.

   The convergence story (partition -> diverge -> heal -> deny-wins
   replay equals a flat reference) lives in test_model; this suite goes
   after the adversarial and integration edges:

   - a mutated, reordered, truncated or forged log segment is rejected
     at sync with the distinct error for its tamper class, the whole
     segment is refused (never partially or silently replayed), and the
     rejection metric increments under the matching reason label;
   - a partitioned PEP descends to the offline rung: decisions carry
     [offline] provenance with the replica's epoch and log head, are
     never written back to L1, and an offline Indeterminate falls
     through to fail-closed without ever being logged;
   - a coalesced waiter parked across the partition transition observes
     the rung that actually answered (offline), not the leader's
     pre-partition rung. *)

module Policy = Dacs_policy.Policy
module Rule = Dacs_policy.Rule
module Expr = Dacs_policy.Expr
module Combine = Dacs_policy.Combine
module Context = Dacs_policy.Context
module Decision = Dacs_policy.Decision
module Value = Dacs_policy.Value
module Net = Dacs_net.Net
module Service = Dacs_ws.Service
module Metrics = Dacs_telemetry.Metrics
module Chain = Dacs_crypto.Chain
open Dacs_core
module O = Offline

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string
let mesh_key = Dacs_crypto.Sha256.digest "test-offline-mesh"

let pol =
  Policy.make ~id:"offline-p" ~rule_combining:Combine.First_applicable
    [
      Rule.permit ~condition:(Expr.one_of (Expr.subject_attr "role") [ "doctor" ]) "doctors";
      Rule.deny "default-deny";
    ]

let ctx ?(subject = "alice") () =
  Context.make
    ~subject:[ ("subject-id", Value.String subject) ]
    ~resource:[ ("resource-id", Value.String "chart") ]
    ~action:[ ("action-id", Value.String "read") ]
    ()

let replica ?metrics name =
  O.create ?metrics ~now:(fun () -> 0.0) ~key:mesh_key ~author:name ()

(* A replica with a few events to sync: policy, a grant, a revoke. *)
let populated ?metrics name =
  let o = replica ?metrics name in
  O.publish o (Policy.Inline_policy pol);
  O.grant o ~subject:"alice" ~attr:"role" ~value:"doctor";
  O.revoke o ~subject:"bob" ~attr:"role";
  o

(* --- log basics ----------------------------------------------------------- *)

let test_log_basics () =
  let o = populated "alpha" in
  check int_ "three events logged" 3 (O.stats o).O.events_logged;
  check bool_ "head advanced" true (O.head o <> Chain.genesis);
  check string_ "head_short matches" (Chain.short (O.head o)) (O.head_short o);
  (match O.frontier o with
  | [ ("alpha", 3) ] -> ()
  | _ -> Alcotest.fail "frontier should be [alpha -> 3]");
  let seqs = List.map (fun e -> e.O.seq) (O.events o) in
  check bool_ "events in order" true (seqs = [ 1; 2; 3 ]);
  (* own chain verifies link by link *)
  match O.decide o (ctx ()) with
  | Some (r, head) ->
    check bool_ "granted from log" true (r.Decision.decision = Decision.Permit);
    check string_ "decision stamped with head" (O.head_short o) head;
    check int_ "decide logged" 4 (O.stats o).O.events_logged
  | None -> Alcotest.fail "no offline decision"

let test_sync_pair_converges () =
  let a = populated "alpha" and b = replica "beta" in
  O.grant b ~subject:"carol" ~attr:"role" ~value:"nurse";
  (match O.sync_pair a b with
  | Ok n -> check int_ "all events moved" 4 n
  | Error e -> Alcotest.failf "honest sync rejected: %s" (O.sync_error_to_string e));
  check string_ "digests converge" (O.state_digest a) (O.state_digest b);
  check bool_ "grants merged" true
    (List.mem ("carol", "role", "nurse") (O.surviving_grants a))

(* --- tamper rejection ------------------------------------------------------ *)

let reasons metrics =
  Metrics.sum_counter_by metrics "offline_sync_rejections_total" ~label:"reason"

let segment_for dst src = O.missing_for src ~frontier:(O.frontier dst)

(* Every tamper test asserts the same containment: admit returns the
   distinct error, and nothing of the segment — not even its honest
   prefix — reaches the local log. *)
let assert_rejected ~what ~reason metrics a seg expect =
  let before = (O.stats a).O.events_known in
  let digest = O.state_digest a in
  (match O.admit a seg with
  | Error e -> expect e
  | Ok n -> Alcotest.failf "%s admitted (%d events)" what n);
  check int_ (what ^ ": nothing admitted") before (O.stats a).O.events_known;
  check string_ (what ^ ": state untouched") digest (O.state_digest a);
  check bool_ (what ^ ": rejection metric") true
    (match List.assoc_opt reason (reasons metrics) with Some n -> n >= 1 | None -> false)

let test_mutated_segment_rejected () =
  let metrics = Metrics.create () in
  let a = replica ~metrics "alpha" and b = populated "beta" in
  let seg =
    List.map
      (fun ev ->
        if ev.O.seq = 2 then
          { ev with O.kind = O.Grant { subject = "mallory"; attr = "role"; value = "doctor" } }
        else ev)
      (segment_for a b)
  in
  assert_rejected ~what:"mutated event" ~reason:"chain-mismatch" metrics a seg (function
    | O.Chain_mismatch { author = "beta"; seq = 2 } -> ()
    | e -> Alcotest.failf "expected Chain_mismatch beta/2, got %s" (O.sync_error_to_string e));
  (* the honest segment still goes through afterwards *)
  match O.admit a (segment_for a b) with
  | Ok 3 -> check string_ "converged after honest resend" (O.state_digest b) (O.state_digest a)
  | Ok n -> Alcotest.failf "expected 3 events, got %d" n
  | Error e -> Alcotest.failf "honest resend rejected: %s" (O.sync_error_to_string e)

let test_reordered_segment_rejected () =
  (* Swap the payloads of two links but keep their claimed digests: the
     recomputation diverges at the first swapped link. *)
  let metrics = Metrics.create () in
  let a = replica ~metrics "alpha" and b = populated "beta" in
  let seg =
    match segment_for a b with
    | [ e1; e2; e3 ] ->
      [ { e1 with O.kind = e2.O.kind }; { e2 with O.kind = e1.O.kind }; e3 ]
    | _ -> Alcotest.fail "expected 3 events"
  in
  assert_rejected ~what:"reordered payloads" ~reason:"chain-mismatch" metrics a seg (function
    | O.Chain_mismatch { author = "beta"; seq = 1 } -> ()
    | e -> Alcotest.failf "expected Chain_mismatch beta/1, got %s" (O.sync_error_to_string e))

let test_truncated_segment_rejected () =
  (* Drop the head of the suffix: the remainder is non-contiguous with
     what we know. *)
  let metrics = Metrics.create () in
  let a = replica ~metrics "alpha" and b = populated "beta" in
  let seg = List.filter (fun ev -> ev.O.seq <> 1) (segment_for a b) in
  assert_rejected ~what:"truncated segment" ~reason:"gap" metrics a seg (function
    | O.Gap { author = "beta"; expected = 1; got = 2 } -> ()
    | e -> Alcotest.failf "expected Gap beta 1/2, got %s" (O.sync_error_to_string e))

let test_forged_tag_rejected () =
  let metrics = Metrics.create () in
  let a = replica ~metrics "alpha" and b = populated "beta" in
  let seg =
    List.map
      (fun ev -> if ev.O.seq = 3 then { ev with O.tag = String.make 32 '\000' } else ev)
      (segment_for a b)
  in
  assert_rejected ~what:"forged tag" ~reason:"bad-signature" metrics a seg (function
    | O.Bad_signature { author = "beta"; seq = 3 } -> ()
    | e -> Alcotest.failf "expected Bad_signature beta/3, got %s" (O.sync_error_to_string e))

let test_wrong_mesh_key_rejected () =
  (* A consistently re-chained forgery under the wrong key: the chain
     recomputes, but no valid HMAC can be produced without the mesh
     key. *)
  let metrics = Metrics.create () in
  let a = replica ~metrics "alpha" in
  let outsider =
    O.create ~now:(fun () -> 0.0) ~key:(Dacs_crypto.Sha256.digest "other-mesh") ~author:"beta" ()
  in
  O.publish outsider (Policy.Inline_policy pol);
  let seg = segment_for a outsider in
  assert_rejected ~what:"wrong mesh key" ~reason:"bad-signature" metrics a seg (function
    | O.Bad_signature { author = "beta"; seq = 1 } -> ()
    | e -> Alcotest.failf "expected Bad_signature beta/1, got %s" (O.sync_error_to_string e))

let test_partial_tamper_rejects_whole_segment () =
  (* First two links honest, third mutated: verify-then-commit means the
     honest prefix is not admitted either. *)
  let metrics = Metrics.create () in
  let a = replica ~metrics "alpha" and b = populated "beta" in
  let seg =
    List.map
      (fun ev ->
        if ev.O.seq = 3 then { ev with O.kind = O.Revoke { subject = "alice"; attr = "role" } }
        else ev)
      (segment_for a b)
  in
  assert_rejected ~what:"tampered tail" ~reason:"chain-mismatch" metrics a seg (function
    | O.Chain_mismatch { author = "beta"; seq = 3 } -> ()
    | e -> Alcotest.failf "expected Chain_mismatch beta/3, got %s" (O.sync_error_to_string e))

(* --- RPC sync over the simulated network ---------------------------------- *)

let test_sync_rpc_partition_heal () =
  let net = Net.create ~seed:5L () in
  let services = Service.create (Dacs_net.Rpc.create net) in
  let add id =
    Net.add_node net id;
    id
  in
  let an = add "a.offline" and bn = add "b.offline" in
  let a = replica "alpha" and b = populated "beta" in
  O.serve a services ~node:an;
  O.serve b services ~node:bn;
  (* partitioned: the round surfaces an error, admits nothing *)
  Net.partition net [ an ] [ bn ];
  let got = ref None in
  O.sync_rpc a services ~src:an ~dst:bn (fun r -> got := Some r);
  Net.run net;
  (match !got with
  | Some (Error _) -> ()
  | Some (Ok n) -> Alcotest.failf "partitioned sync admitted %d events" n
  | None -> Alcotest.fail "no sync outcome");
  check int_ "nothing crossed the cut" 0 (O.stats a).O.events_known;
  (* healed: the next round exchanges the suffix *)
  Net.unpartition net [ an ] [ bn ];
  got := None;
  O.sync_rpc a services ~src:an ~dst:bn (fun r -> got := Some r);
  Net.run net;
  (match !got with
  | Some (Ok 3) -> ()
  | Some (Ok n) -> Alcotest.failf "expected 3 events after heal, got %d" n
  | Some (Error e) -> Alcotest.failf "post-heal sync failed: %s" e
  | None -> Alcotest.fail "no sync outcome");
  check string_ "digests converge over RPC" (O.state_digest b) (O.state_digest a)

(* --- the PEP's offline rung ------------------------------------------------ *)

type stack = { net : Net.t; pep : Pep.t; offline : O.t }

let make_stack ?(attach = true) ?(with_policy = true) () =
  let net = Net.create ~seed:11L () in
  let services = Service.create (Dacs_net.Rpc.create net) in
  let add id =
    Net.add_node net id;
    id
  in
  let shards =
    List.init 2 (fun i ->
        let node = add (Printf.sprintf "pdp%d" i) in
        ignore
          (Pdp_service.create services ~node ~name:node ~root:(Policy.Inline_policy pol) ());
        node)
  in
  let tier = Pdp_tier.create services ~node:(add "pep") ~shards () in
  let pep =
    Pep.create services ~node:"pep" ~domain:"d" ~resource:"chart"
      (Pep.Sharded { tier; cache = Some (Decision_cache.create ~ttl:600.0 ()) })
  in
  let offline = replica ~metrics:(Service.metrics services) "d" in
  if with_policy then O.publish offline (Policy.Inline_policy pol);
  O.grant offline ~subject:"alice" ~attr:"role" ~value:"doctor";
  if attach then Pep.set_offline_replica pep (Some offline);
  Net.run net;
  { net; pep; offline }

let crash_tier s =
  Net.crash s.net "pdp0";
  Net.crash s.net "pdp1"

let decide_explained s c =
  let answer = ref None in
  Pep.decide_explained s.pep c (fun r p -> answer := Some (r, p));
  Net.run s.net;
  match !answer with None -> Alcotest.fail "no answer" | Some rp -> rp

let test_pep_offline_rung () =
  let s = make_stack () in
  crash_tier s;
  let r, p = decide_explained s (ctx ()) in
  check bool_ "permit from the log" true (r.Decision.decision = Decision.Permit);
  check string_ "offline stage" "offline" (Provenance.stage_name p.Provenance.stage);
  check int_ "offline epoch stamped" (O.epoch s.offline) p.Provenance.epoch;
  check bool_ "epoch started" true (O.epoch s.offline >= 1);
  (match p.Provenance.log_head with
  | Some h -> check bool_ "log head stamped" true (String.length h = 12)
  | None -> Alcotest.fail "offline provenance must carry the log head");
  check bool_ "replica marked offline" true (O.is_offline s.offline);
  (* offline answers are never cached: the identical repeat descends the
     ladder again and is served offline again *)
  let _, p2 = decide_explained s (ctx ()) in
  check string_ "second serve also offline" "offline" (Provenance.stage_name p2.Provenance.stage);
  let st = Pep.stats s.pep in
  check int_ "offline_serves counted" 2 st.Pep.offline_serves;
  check int_ "no cache hits" 0 st.Pep.cache_hits;
  check int_ "decides logged" 2 (O.stats s.offline).O.offline_decides

let test_pep_offline_deny () =
  let s = make_stack () in
  crash_tier s;
  let r, p = decide_explained s (ctx ~subject:"bob" ()) in
  check bool_ "deny from the log" true (r.Decision.decision = Decision.Deny);
  check string_ "offline stage" "offline" (Provenance.stage_name p.Provenance.stage)

let test_pep_offline_indeterminate_falls_through () =
  (* No policy in the log: Offline.decide has no basis, the ladder falls
     to fail-closed, and nothing is logged (an Indeterminate can never
     replay into a grant). *)
  let s = make_stack ~with_policy:false () in
  crash_tier s;
  let logged = (O.stats s.offline).O.events_logged in
  let r, p = decide_explained s (ctx ()) in
  (match r.Decision.decision with
  | Decision.Indeterminate _ -> ()
  | d -> Alcotest.failf "expected Indeterminate, got %s" (Decision.decision_to_string d));
  check string_ "fail-closed stage" "fail-closed" (Provenance.stage_name p.Provenance.stage);
  check int_ "nothing logged" logged (O.stats s.offline).O.events_logged;
  check int_ "no offline serve counted" 0 (Pep.stats s.pep).Pep.offline_serves

let test_pep_without_replica_fails_closed () =
  let s = make_stack ~attach:false () in
  crash_tier s;
  let r, p = decide_explained s (ctx ()) in
  (match r.Decision.decision with
  | Decision.Indeterminate _ -> ()
  | d -> Alcotest.failf "expected Indeterminate, got %s" (Decision.decision_to_string d));
  check string_ "fail-closed stage" "fail-closed" (Provenance.stage_name p.Provenance.stage)

(* The satellite regression: a waiter coalesced onto a leader whose
   descent was cut off mid-flight must observe the rung that actually
   answered (offline), with its own coalesced flag — not the leader's
   pre-partition rung. *)
let test_coalesced_waiter_across_partition () =
  let s = make_stack () in
  let leader = ref None and waiter = ref None in
  Pep.decide_explained s.pep (ctx ()) (fun r p -> leader := Some (r, p));
  Pep.decide_explained s.pep (ctx ()) (fun r p -> waiter := Some (r, p));
  (* the tier call is now in flight; the partition lands before it
     completes *)
  crash_tier s;
  Net.run s.net;
  match (!leader, !waiter) with
  | Some (lr, lp), Some (wr, wp) ->
    check string_ "leader answered offline" "offline" (Provenance.stage_name lp.Provenance.stage);
    check string_ "waiter observes the completion rung" "offline"
      (Provenance.stage_name wp.Provenance.stage);
    check bool_ "waiter flagged coalesced" true wp.Provenance.coalesced;
    check bool_ "leader not flagged" false lp.Provenance.coalesced;
    check bool_ "same decision" true (lr.Decision.decision = wr.Decision.decision);
    check int_ "one descent, one offline serve" 1 (Pep.stats s.pep).Pep.offline_serves;
    check int_ "waiter counted as coalesced" 1 (Pep.stats s.pep).Pep.coalesced
  | _ -> Alcotest.fail "both callbacks must fire"

let () =
  Alcotest.run "dacs_offline"
    [
      ( "log",
        [
          Alcotest.test_case "append, head, frontier, decide" `Quick test_log_basics;
          Alcotest.test_case "sync_pair converges" `Quick test_sync_pair_converges;
        ] );
      ( "tamper",
        [
          Alcotest.test_case "mutated event -> Chain_mismatch" `Quick test_mutated_segment_rejected;
          Alcotest.test_case "reordered payloads -> Chain_mismatch" `Quick
            test_reordered_segment_rejected;
          Alcotest.test_case "truncated segment -> Gap" `Quick test_truncated_segment_rejected;
          Alcotest.test_case "forged tag -> Bad_signature" `Quick test_forged_tag_rejected;
          Alcotest.test_case "wrong mesh key -> Bad_signature" `Quick test_wrong_mesh_key_rejected;
          Alcotest.test_case "tampered tail rejects honest prefix" `Quick
            test_partial_tamper_rejects_whole_segment;
        ] );
      ( "rpc",
        [ Alcotest.test_case "partition blocks, heal syncs" `Quick test_sync_rpc_partition_heal ] );
      ( "pep",
        [
          Alcotest.test_case "offline rung serves with provenance" `Quick test_pep_offline_rung;
          Alcotest.test_case "offline deny" `Quick test_pep_offline_deny;
          Alcotest.test_case "indeterminate falls through, never logged" `Quick
            test_pep_offline_indeterminate_falls_through;
          Alcotest.test_case "no replica -> fail-closed" `Quick test_pep_without_replica_fails_closed;
          Alcotest.test_case "coalesced waiter across partition transition" `Quick
            test_coalesced_waiter_across_partition;
        ] );
    ]
