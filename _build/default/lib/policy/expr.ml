type designator = {
  category : Context.category;
  attribute_id : string;
  must_be_present : bool;
}

type t =
  | Const of Value.t
  | Designator of designator
  | Apply of string * t list
  | Function_ref of string
  | Variable_ref of string

type error_code = Missing_attribute | Processing | Syntax

type error = { code : error_code; message : string }

let error_to_string e =
  let code =
    match e.code with
    | Missing_attribute -> "missing-attribute"
    | Processing -> "processing-error"
    | Syntax -> "syntax-error"
  in
  Printf.sprintf "%s: %s" code e.message

type resolver = Context.category -> string -> Value.bag option

(* ------------------------------------------------------------------ *)
(* Function registry                                                   *)
(* ------------------------------------------------------------------ *)

(* All implementations consume evaluated argument bags.  [arity None] is
   variadic.  Higher-order functions are dispatched in [eval] itself
   because they must apply a function reference over bag members. *)
type impl = { arity : int option; run : Value.bag list -> (Value.bag, string) result }

let registry : (string, impl) Hashtbl.t = Hashtbl.create 128

let register name arity run = Hashtbl.replace registry name { arity; run }

let singleton v = Ok [ v ]

(* Extract exactly one value from a bag argument. *)
let one = function
  | [ v ] -> Ok v
  | bag -> Error (Printf.sprintf "expected exactly one value, got a bag of %d" (List.length bag))

let atomic2 name check =
  register name (Some 2) (fun args ->
      match args with
      | [ a; b ] -> (
        match (one a, one b) with
        | Ok a, Ok b -> Result.bind (check a b) singleton
        | Error e, _ | _, Error e -> Error e)
      | _ -> Error "arity")

let atomic1 name check =
  register name (Some 1) (fun args ->
      match args with
      | [ a ] -> (
        match one a with
        | Ok a -> Result.bind (check a) singleton
        | Error e -> Error e)
      | _ -> Error "arity")

let type_error expected got =
  Error
    (Printf.sprintf "expected %s, got %s" expected (Value.type_name (Value.type_of got)))

let as_int = function Value.Int i -> Ok i | v -> type_error "integer" v
let as_bool = function Value.Bool b -> Ok b | v -> type_error "boolean" v
let as_string = function Value.String s -> Ok s | v -> type_error "string" v
let as_double = function Value.Double d -> Ok d | v -> type_error "double" v
let as_time = function Value.Time t -> Ok t | v -> type_error "time" v

let all_types = Value.[ String_t; Int_t; Bool_t; Double_t; Time_t; Uri_t ]

let check_type dt v =
  if Value.type_of v = dt then Ok v
  else type_error (Value.type_name dt) v

(* --- equality, per type --------------------------------------------- *)

let () =
  List.iter
    (fun dt ->
      let name = Value.type_name dt ^ "-equal" in
      atomic2 name (fun a b ->
          match (check_type dt a, check_type dt b) with
          | Ok _, Ok _ -> Ok (Value.Bool (Value.equal a b))
          | Error e, _ | _, Error e -> Error e))
    all_types

(* --- ordering --------------------------------------------------------- *)

let () =
  let ordered_types = Value.[ String_t; Int_t; Double_t; Time_t ] in
  let ops =
    [
      ("greater-than", fun c -> c > 0);
      ("greater-than-or-equal", fun c -> c >= 0);
      ("less-than", fun c -> c < 0);
      ("less-than-or-equal", fun c -> c <= 0);
    ]
  in
  List.iter
    (fun dt ->
      List.iter
        (fun (op_name, accept) ->
          let name = Value.type_name dt ^ "-" ^ op_name in
          atomic2 name (fun a b ->
              match (check_type dt a, check_type dt b) with
              | Ok _, Ok _ -> (
                match Value.compare_same_type a b with
                | Ok c -> Ok (Value.Bool (accept c))
                | Error e -> Error e)
              | Error e, _ | _, Error e -> Error e))
        ops)
    ordered_types

(* --- arithmetic --------------------------------------------------------- *)

let int_fold name op init =
  register name None (fun args ->
      if List.length args < 2 then Error (name ^ " needs at least two arguments")
      else begin
        let rec go acc = function
          | [] -> singleton (Value.Int acc)
          | bag :: rest -> (
            match Result.bind (one bag) as_int with
            | Ok i -> go (op acc i) rest
            | Error e -> Error e)
        in
        match args with
        | first :: rest -> (
          match Result.bind (one first) as_int with
          | Ok i -> go (op init i) rest
          | Error e -> Error e)
        | [] -> Error "unreachable"
      end)

let () =
  int_fold "integer-add" ( + ) 0;
  int_fold "integer-multiply" ( * ) 1;
  atomic2 "integer-subtract" (fun a b ->
      match (as_int a, as_int b) with
      | Ok a, Ok b -> Ok (Value.Int (a - b))
      | Error e, _ | _, Error e -> Error e);
  atomic2 "integer-divide" (fun a b ->
      match (as_int a, as_int b) with
      | Ok _, Ok 0 -> Error "division by zero"
      | Ok a, Ok b -> Ok (Value.Int (a / b))
      | Error e, _ | _, Error e -> Error e);
  atomic2 "integer-mod" (fun a b ->
      match (as_int a, as_int b) with
      | Ok _, Ok 0 -> Error "modulo by zero"
      | Ok a, Ok b -> Ok (Value.Int (a mod b))
      | Error e, _ | _, Error e -> Error e);
  atomic1 "integer-abs" (fun a -> Result.map (fun i -> Value.Int (abs i)) (as_int a));
  atomic1 "integer-to-double" (fun a -> Result.map (fun i -> Value.Double (float_of_int i)) (as_int a));
  atomic2 "double-add" (fun a b ->
      match (as_double a, as_double b) with
      | Ok a, Ok b -> Ok (Value.Double (a +. b))
      | Error e, _ | _, Error e -> Error e);
  atomic2 "double-subtract" (fun a b ->
      match (as_double a, as_double b) with
      | Ok a, Ok b -> Ok (Value.Double (a -. b))
      | Error e, _ | _, Error e -> Error e);
  atomic2 "double-multiply" (fun a b ->
      match (as_double a, as_double b) with
      | Ok a, Ok b -> Ok (Value.Double (a *. b))
      | Error e, _ | _, Error e -> Error e);
  atomic2 "double-divide" (fun a b ->
      match (as_double a, as_double b) with
      | Ok _, Ok 0.0 -> Error "division by zero"
      | Ok a, Ok b -> Ok (Value.Double (a /. b))
      | Error e, _ | _, Error e -> Error e)

(* --- logic ----------------------------------------------------------------- *)

let () =
  register "and" None (fun args ->
      let rec go = function
        | [] -> singleton (Value.Bool true)
        | bag :: rest -> (
          match Result.bind (one bag) as_bool with
          | Ok true -> go rest
          | Ok false -> singleton (Value.Bool false)
          | Error e -> Error e)
      in
      go args);
  register "or" None (fun args ->
      let rec go = function
        | [] -> singleton (Value.Bool false)
        | bag :: rest -> (
          match Result.bind (one bag) as_bool with
          | Ok false -> go rest
          | Ok true -> singleton (Value.Bool true)
          | Error e -> Error e)
      in
      go args);
  atomic1 "not" (fun a -> Result.map (fun b -> Value.Bool (not b)) (as_bool a));
  register "n-of" None (fun args ->
      match args with
      | [] -> Error "n-of needs the count argument"
      | n_bag :: rest -> (
        match Result.bind (one n_bag) as_int with
        | Error e -> Error e
        | Ok n ->
          if n > List.length rest then Error "n-of: fewer arguments than required truths"
          else begin
            let rec go needed = function
              | _ when needed = 0 -> singleton (Value.Bool true)
              | [] -> singleton (Value.Bool false)
              | bag :: rest -> (
                match Result.bind (one bag) as_bool with
                | Ok true -> go (needed - 1) rest
                | Ok false -> go needed rest
                | Error e -> Error e)
            in
            go n rest
          end))

(* --- strings ------------------------------------------------------------------ *)

let () =
  register "string-concatenate" None (fun args ->
      if List.length args < 2 then Error "string-concatenate needs at least two arguments"
      else begin
        let rec go acc = function
          | [] -> singleton (Value.String (String.concat "" (List.rev acc)))
          | bag :: rest -> (
            match Result.bind (one bag) as_string with
            | Ok s -> go (s :: acc) rest
            | Error e -> Error e)
        in
        go [] args
      end);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  atomic2 "string-contains" (fun a b ->
      match (as_string a, as_string b) with
      | Ok needle, Ok hay -> Ok (Value.Bool (contains hay needle))
      | Error e, _ | _, Error e -> Error e);
  atomic2 "string-starts-with" (fun a b ->
      match (as_string a, as_string b) with
      | Ok prefix, Ok s ->
        Ok
          (Value.Bool
             (String.length prefix <= String.length s
             && String.sub s 0 (String.length prefix) = prefix))
      | Error e, _ | _, Error e -> Error e);
  atomic2 "string-ends-with" (fun a b ->
      match (as_string a, as_string b) with
      | Ok suffix, Ok s ->
        let ls = String.length s and lx = String.length suffix in
        Ok (Value.Bool (lx <= ls && String.sub s (ls - lx) lx = suffix))
      | Error e, _ | _, Error e -> Error e);
  atomic1 "string-normalize-to-lower-case" (fun a ->
      Result.map (fun s -> Value.String (String.lowercase_ascii s)) (as_string a));
  atomic1 "string-normalize-space" (fun a ->
      Result.map (fun s -> Value.String (String.trim s)) (as_string a));
  atomic2 "regexp-string-match" (fun pattern s ->
      match (as_string pattern, as_string s) with
      | Ok pattern, Ok s -> (
        try Ok (Value.Bool (Re.execp (Re.Posix.compile_pat pattern) s))
        with Re.Posix.Parse_error | Re.Posix.Not_supported ->
          Error (Printf.sprintf "bad regular expression %S" pattern))
      | Error e, _ | _, Error e -> Error e);
  atomic1 "string-length" (fun a -> Result.map (fun s -> Value.Int (String.length s)) (as_string a));
  atomic1 "anyURI-to-string" (fun a ->
      match a with Value.Uri u -> Ok (Value.String u) | v -> type_error "anyURI" v);
  atomic1 "string-to-anyURI" (fun a -> Result.map (fun s -> Value.Uri s) (as_string a))

(* --- time ------------------------------------------------------------------------ *)

let () =
  register "time-in-range" (Some 3) (fun args ->
      match args with
      | [ t; lo; hi ] -> (
        match
          ( Result.bind (one t) as_time,
            Result.bind (one lo) as_time,
            Result.bind (one hi) as_time )
        with
        | Ok t, Ok lo, Ok hi -> singleton (Value.Bool (lo <= t && t <= hi))
        | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e)
      | _ -> Error "arity")

(* --- bag functions, per type --------------------------------------------------- *)

let () =
  List.iter
    (fun dt ->
      let tname = Value.type_name dt in
      register (tname ^ "-one-and-only") (Some 1) (fun args ->
          match args with
          | [ bag ] -> (
            match bag with
            | [ v ] -> Result.bind (check_type dt v) singleton
            | _ -> Error (Printf.sprintf "%s-one-and-only: bag of %d" tname (List.length bag)))
          | _ -> Error "arity");
      register (tname ^ "-bag-size") (Some 1) (fun args ->
          match args with
          | [ bag ] -> singleton (Value.Int (List.length bag))
          | _ -> Error "arity");
      register (tname ^ "-is-in") (Some 2) (fun args ->
          match args with
          | [ v; bag ] -> (
            match Result.bind (one v) (check_type dt) with
            | Ok v -> singleton (Value.Bool (Value.bag_contains bag v))
            | Error e -> Error e)
          | _ -> Error "arity");
      register (tname ^ "-bag") None (fun args ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | bag :: rest -> (
              match Result.bind (one bag) (check_type dt) with
              | Ok v -> go (v :: acc) rest
              | Error e -> Error e)
          in
          go [] args);
      register (tname ^ "-intersection") (Some 2) (fun args ->
          match args with
          | [ a; b ] -> Ok (Value.bag_intersection a b)
          | _ -> Error "arity");
      register (tname ^ "-union") (Some 2) (fun args ->
          match args with
          | [ a; b ] -> Ok (Value.bag_union a b)
          | _ -> Error "arity");
      register (tname ^ "-subset") (Some 2) (fun args ->
          match args with
          | [ a; b ] -> singleton (Value.Bool (Value.bag_subset a b))
          | _ -> Error "arity");
      register (tname ^ "-at-least-one-member-of") (Some 2) (fun args ->
          match args with
          | [ a; b ] -> singleton (Value.Bool (List.exists (Value.bag_contains b) a))
          | _ -> Error "arity");
      register (tname ^ "-set-equals") (Some 2) (fun args ->
          match args with
          | [ a; b ] ->
            singleton (Value.Bool (Value.bag_subset a b && Value.bag_subset b a))
          | _ -> Error "arity"))
    all_types

(* --- higher-order functions: names only; dispatched in eval ------------------- *)

let higher_order = [ "any-of"; "all-of"; "any-of-any"; "all-of-any"; "any-of-all"; "all-of-all"; "map" ]

let known_function name = Hashtbl.mem registry name || List.mem name higher_order

let function_names () =
  Hashtbl.fold (fun name _ acc -> name :: acc) registry higher_order |> List.sort compare

let function_arity name =
  match Hashtbl.find_opt registry name with
  | Some impl -> Some impl.arity
  | None -> if List.mem name higher_order then Some None else None

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let processing message = Error { code = Processing; message }

let apply_registered name (args : Value.bag list) =
  match Hashtbl.find_opt registry name with
  | None -> Error { code = Syntax; message = Printf.sprintf "unknown function %s" name }
  | Some impl -> (
    (match impl.arity with
    | Some n when n <> List.length args ->
      processing (Printf.sprintf "%s expects %d arguments, got %d" name n (List.length args))
    | _ -> Ok ())
    |> function
    | Error e -> Error e
    | Ok () -> (
      match impl.run args with
      | Ok bag -> Ok bag
      | Error message -> processing (Printf.sprintf "%s: %s" name message)))

(* Apply a named binary boolean function to two atomic values. *)
let apply_bool2 name a b =
  match apply_registered name [ [ a ]; [ b ] ] with
  | Ok [ Value.Bool r ] -> Ok r
  | Ok _ -> processing (Printf.sprintf "%s did not produce a single boolean" name)
  | Error e -> Error e

let match_function name =
  if Hashtbl.mem registry name then Some (fun value attr -> apply_bool2 name value attr)
  else None

let rec eval ?resolve ctx expr =
  match expr with
  | Const v -> Ok [ v ]
  | Function_ref name ->
    Error
      { code = Syntax; message = Printf.sprintf "function reference %s outside higher-order apply" name }
  | Variable_ref name ->
    Error { code = Syntax; message = Printf.sprintf "unresolved variable reference %s" name }
  | Designator d -> (
    let bag = Context.bag ctx d.category d.attribute_id in
    let bag =
      if bag = [] then
        match resolve with
        | Some r -> Option.value (r d.category d.attribute_id) ~default:[]
        | None -> []
      else bag
    in
    match bag with
    | [] when d.must_be_present ->
      Error
        {
          code = Missing_attribute;
          message =
            Printf.sprintf "attribute %s/%s is absent"
              (Context.category_name d.category)
              d.attribute_id;
        }
    | bag -> Ok bag)
  | Apply ("and", args) ->
    (* Lazy, left-to-right: arguments after the deciding one are never
       evaluated (XACML specifies short-circuit evaluation). *)
    let rec go = function
      | [] -> Ok [ Value.Bool true ]
      | arg :: rest -> (
        match eval ?resolve ctx arg with
        | Ok [ Value.Bool true ] -> go rest
        | Ok [ Value.Bool false ] -> Ok [ Value.Bool false ]
        | Ok _ -> processing "and: argument is not a single boolean"
        | Error e -> Error e)
    in
    go args
  | Apply ("or", args) ->
    let rec go = function
      | [] -> Ok [ Value.Bool false ]
      | arg :: rest -> (
        match eval ?resolve ctx arg with
        | Ok [ Value.Bool false ] -> go rest
        | Ok [ Value.Bool true ] -> Ok [ Value.Bool true ]
        | Ok _ -> processing "or: argument is not a single boolean"
        | Error e -> Error e)
    in
    go args
  | Apply (name, args) ->
    if List.mem name higher_order then eval_higher_order ?resolve ctx name args
    else begin
      (* Evaluate arguments left to right, failing fast. *)
      let rec eval_args acc = function
        | [] -> Ok (List.rev acc)
        | arg :: rest -> (
          match eval ?resolve ctx arg with
          | Ok bag -> eval_args (bag :: acc) rest
          | Error e -> Error e)
      in
      match eval_args [] args with
      | Ok bags -> apply_registered name bags
      | Error e -> Error e
    end

and eval_higher_order ?resolve ctx name args =
  let func_and_rest () =
    match args with
    | Function_ref f :: rest ->
      if Hashtbl.mem registry f then Ok (f, rest)
      else Error { code = Syntax; message = Printf.sprintf "unknown function %s" f }
    | _ ->
      Error
        { code = Syntax; message = name ^ " requires a function reference as its first argument" }
  in
  match func_and_rest () with
  | Error e -> Error e
  | Ok (f, rest) -> (
    let eval_arg e = eval ?resolve ctx e in
    (* Fold a boolean combinator over pairs, short-circuiting. *)
    let exists_pair pairs =
      let rec go = function
        | [] -> Ok false
        | (a, b) :: rest -> (
          match apply_bool2 f a b with
          | Ok true -> Ok true
          | Ok false -> go rest
          | Error e -> Error e)
      in
      go pairs
    in
    let forall_pair pairs =
      let rec go = function
        | [] -> Ok true
        | (a, b) :: rest -> (
          match apply_bool2 f a b with
          | Ok false -> Ok false
          | Ok true -> go rest
          | Error e -> Error e)
      in
      go pairs
    in
    let bool_result r = Result.map (fun b -> [ Value.Bool b ]) r in
    match (name, rest) with
    | "any-of", [ value_expr; bag_expr ] -> (
      match (eval_arg value_expr, eval_arg bag_expr) with
      | Ok value_bag, Ok bag -> (
        match value_bag with
        | [ v ] -> bool_result (exists_pair (List.map (fun b -> (v, b)) bag))
        | _ -> processing "any-of: first value argument must be a single value")
      | Error e, _ | _, Error e -> Error e)
    | "all-of", [ value_expr; bag_expr ] -> (
      match (eval_arg value_expr, eval_arg bag_expr) with
      | Ok value_bag, Ok bag -> (
        match value_bag with
        | [ v ] -> bool_result (forall_pair (List.map (fun b -> (v, b)) bag))
        | _ -> processing "all-of: first value argument must be a single value")
      | Error e, _ | _, Error e -> Error e)
    | "any-of-any", [ ea; eb ] -> (
      match (eval_arg ea, eval_arg eb) with
      | Ok ba, Ok bb ->
        bool_result (exists_pair (List.concat_map (fun a -> List.map (fun b -> (a, b)) bb) ba))
      | Error e, _ | _, Error e -> Error e)
    | "all-of-all", [ ea; eb ] -> (
      match (eval_arg ea, eval_arg eb) with
      | Ok ba, Ok bb ->
        bool_result (forall_pair (List.concat_map (fun a -> List.map (fun b -> (a, b)) bb) ba))
      | Error e, _ | _, Error e -> Error e)
    | "any-of-all", [ ea; eb ] -> (
      (* Some a such that f(a, b) holds for all b. *)
      match (eval_arg ea, eval_arg eb) with
      | Ok ba, Ok bb ->
        let rec go = function
          | [] -> Ok false
          | a :: rest -> (
            match forall_pair (List.map (fun b -> (a, b)) bb) with
            | Ok true -> Ok true
            | Ok false -> go rest
            | Error e -> Error e)
        in
        bool_result (go ba)
      | Error e, _ | _, Error e -> Error e)
    | "all-of-any", [ ea; eb ] -> (
      (* For every a there is some b with f(a, b). *)
      match (eval_arg ea, eval_arg eb) with
      | Ok ba, Ok bb ->
        let rec go = function
          | [] -> Ok true
          | a :: rest -> (
            match exists_pair (List.map (fun b -> (a, b)) bb) with
            | Ok true -> go rest
            | Ok false -> Ok false
            | Error e -> Error e)
        in
        bool_result (go ba)
      | Error e, _ | _, Error e -> Error e)
    | "map", [ bag_expr ] -> (
      match eval_arg bag_expr with
      | Ok bag ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | v :: rest -> (
            match apply_registered f [ [ v ] ] with
            | Ok [ r ] -> go (r :: acc) rest
            | Ok _ -> processing "map: function must return a single value"
            | Error e -> Error e)
        in
        go [] bag
      | Error e -> Error e)
    | _, _ ->
      processing (Printf.sprintf "%s applied to %d arguments" name (List.length rest)))

let eval_condition ?resolve ctx expr =
  match eval ?resolve ctx expr with
  | Ok [ Value.Bool b ] -> Ok b
  | Ok bag ->
    Error
      {
        code = Processing;
        message =
          Printf.sprintf "condition must produce one boolean, got %d value(s)" (List.length bag);
      }
  | Error e -> Error e

(* ------------------------------------------------------------------ *)
(* Variables                                                           *)
(* ------------------------------------------------------------------ *)

let substitute lookup expr =
  (* [depth] bounds pathological reference chains; genuine cycles are
     rejected by policy validation before evaluation. *)
  let rec go depth expr =
    if depth > 64 then Error "variable substitution too deep (cycle?)"
    else
      match expr with
      | Const _ | Designator _ | Function_ref _ -> Ok expr
      | Variable_ref name -> (
        match lookup name with
        | None -> Error (Printf.sprintf "undefined variable %s" name)
        | Some definition -> go (depth + 1) definition)
      | Apply (name, args) ->
        let rec go_args acc = function
          | [] -> Ok (Apply (name, List.rev acc))
          | arg :: rest -> (
            match go depth arg with
            | Ok arg -> go_args (arg :: acc) rest
            | Error e -> Error e)
        in
        go_args [] args
  in
  go 0 expr

let variable_refs expr =
  let rec go acc = function
    | Const _ | Designator _ | Function_ref _ -> acc
    | Variable_ref name -> if List.mem name acc then acc else name :: acc
    | Apply (_, args) -> List.fold_left go acc args
  in
  List.rev (go [] expr)

(* ------------------------------------------------------------------ *)
(* Static validation                                                   *)
(* ------------------------------------------------------------------ *)

let validate expr =
  let problems = ref [] in
  let report p = problems := p :: !problems in
  let rec go in_higher_order expr =
    match expr with
    | Const _ | Designator _ | Variable_ref _ -> ()
    | Function_ref f ->
      if not in_higher_order then report (Printf.sprintf "function reference %s outside a higher-order apply" f)
      else if not (Hashtbl.mem registry f) then report (Printf.sprintf "unknown function %s" f)
    | Apply (name, args) ->
      let ho = List.mem name higher_order in
      if not (known_function name) then report (Printf.sprintf "unknown function %s" name)
      else begin
        match function_arity name with
        | Some (Some n) when n <> List.length args ->
          report (Printf.sprintf "%s expects %d arguments, got %d" name n (List.length args))
        | _ -> ()
      end;
      List.iteri (fun i arg -> go (ho && i = 0) arg) args
  in
  go false expr;
  List.rev !problems

(* ------------------------------------------------------------------ *)
(* Constructors and printing                                           *)
(* ------------------------------------------------------------------ *)

let str s = Const (Value.String s)
let int i = Const (Value.Int i)
let bool b = Const (Value.Bool b)
let time t = Const (Value.Time t)
let uri u = Const (Value.Uri u)

let attr category ?(must_be_present = false) attribute_id =
  Designator { category; attribute_id; must_be_present }

let subject_attr ?must_be_present id = attr Context.Subject ?must_be_present id
let resource_attr ?must_be_present id = attr Context.Resource ?must_be_present id
let action_attr ?must_be_present id = attr Context.Action ?must_be_present id
let environment_attr ?must_be_present id = attr Context.Environment ?must_be_present id

let one_of designator values =
  Apply
    ( "or",
      List.map
        (fun v -> Apply ("any-of", [ Function_ref "string-equal"; str v; designator ]))
        values )

let rec pp fmt = function
  | Const v -> Value.pp fmt v
  | Designator d ->
    Format.fprintf fmt "%s/%s%s"
      (Context.category_name d.category)
      d.attribute_id
      (if d.must_be_present then "!" else "")
  | Function_ref f -> Format.fprintf fmt "&%s" f
  | Variable_ref v -> Format.fprintf fmt "$%s" v
  | Apply (name, args) ->
    Format.fprintf fmt "%s(%a)" name
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp)
      args
