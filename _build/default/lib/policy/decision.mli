(** Authorisation decisions and evaluation results. *)

type t =
  | Permit
  | Deny
  | Not_applicable
  | Indeterminate of string  (** carries the underlying error message *)

type result = {
  decision : t;
  obligations : Obligation.t list;
      (** to be fulfilled by the PEP, already filtered by effect *)
}

val permit : result
val deny : result
val not_applicable : result
val indeterminate : string -> result

val with_obligations : result -> Obligation.t list -> result
(** Append obligations applicable to the result's decision. *)

val is_permit : result -> bool
val is_deny : result -> bool

val decision_to_string : t -> string
val decision_of_string : string -> t option
(** Inverse of {!decision_to_string} on the four decision words
    (Indeterminate parses with an empty message). *)

val equal_decision : t -> t -> bool
(** Indeterminate compares equal regardless of message. *)

val pp : Format.formatter -> result -> unit
