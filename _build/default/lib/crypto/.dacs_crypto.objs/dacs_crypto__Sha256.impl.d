lib/crypto/sha256.ml: Array Bytes Char Encoding Int64 String
