(** Component discovery (§3.2 "Location of Policy Decision Points").

    The paper argues static PEP→PDP binding "does not fit into large
    computing environments": components fail, move and multiply, so "a
    discovery mechanism needs to be employed".  This registry lets
    components advertise themselves under a kind (e.g. ["pdp"]) with a
    lease; advertisements expire unless renewed (the heartbeat), so a
    crashed component disappears from lookups after at most one lease.
    Enforcement points refresh their failover lists from the registry,
    turning timeout-driven failover into proactive rebinding.

    {b Note:} {!advertise} and {!auto_rebind} schedule themselves forever,
    as heartbeats do — drive such simulations with
    [Net.run ~until:…], not the run-to-quiescence form. *)

type t

val create : Dacs_ws.Service.t -> node:Dacs_net.Net.node_id -> ?lease:float -> unit -> t
(** Registry on [node] with services ["register"] and ["discover"].
    [lease] (default 10 s) is how long an advertisement lives without
    renewal. *)

val node : t -> Dacs_net.Net.node_id
val lease : t -> float

val lookup : t -> kind:string -> Dacs_net.Net.node_id list
(** Live advertisements of a kind, oldest registration first (local
    read; remote parties use the ["discover"] service). *)

val registrations : t -> int
(** Total register calls served (a read of
    [discovery_registrations_total{node}] in the bus registry). *)

val lookups_served : t -> int
(** Total discover calls served ([discovery_lookups_total{node}]). *)

(** {1 Client-side helpers} *)

val advertise :
  t ->
  services:Dacs_ws.Service.t ->
  node:Dacs_net.Net.node_id ->
  kind:string ->
  ?retry:Dacs_net.Rpc.retry_policy ->
  unit ->
  unit
(** Register [node] under [kind] and keep renewing at half the lease
    period.  Renewals stop automatically while the node is crashed (a
    crashed node cannot send), so its advertisement lapses — and resume
    if it recovers.  [retry] (default: single attempt) re-sends lost
    renewals within a period, keeping leases alive over lossy links. *)

val auto_rebind :
  t ->
  pep:Pep.t ->
  kind:string ->
  ?period:float ->
  ?retry:Dacs_net.Rpc.retry_policy ->
  unit ->
  unit
(** Poll the registry every [period] seconds (default: the lease) and
    install the discovered endpoints as the PEP's pull-mode failover
    list.  While the registry is unreachable the PEP keeps its last
    known list.  [retry] (default: single attempt) hardens the discover
    call itself. *)

(** {1 Wire helpers (exposed for tests)} *)

val register_body : kind:string -> node:Dacs_net.Net.node_id -> Dacs_xml.Xml.t
val discover_body : kind:string -> Dacs_xml.Xml.t
val parse_endpoints : Dacs_xml.Xml.t -> (Dacs_net.Net.node_id list, string) result
