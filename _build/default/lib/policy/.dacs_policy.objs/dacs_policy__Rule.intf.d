lib/policy/rule.mli: Context Decision Expr Format Target
