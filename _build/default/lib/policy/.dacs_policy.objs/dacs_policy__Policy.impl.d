lib/policy/policy.ml: Combine Decision Expr Format List Obligation Printf Rule Target
