let participants_of trace =
  List.fold_left
    (fun acc e ->
      let add acc n = if List.mem n acc then acc else acc @ [ n ] in
      add (add acc e.Net.t_src) e.Net.t_dst)
    [] trace

let render ?participants trace =
  let fixed = Option.value participants ~default:[] in
  let discovered = participants_of trace in
  let columns = fixed @ List.filter (fun n -> not (List.mem n fixed)) discovered in
  match columns with
  | [] -> "(no messages)\n"
  | _ ->
    let width = List.fold_left (fun w n -> max w (String.length n)) 8 columns + 2 in
    let buf = Buffer.create 1024 in
    let pos name =
      let rec go i = function
        | [] -> 0
        | n :: rest -> if n = name then i else go (i + 1) rest
      in
      go 0 columns
    in
    (* Header row. *)
    List.iter
      (fun n -> Buffer.add_string buf (Printf.sprintf "%-*s" width n))
      columns;
    Buffer.add_char buf '\n';
    List.iter
      (fun e ->
        let a = pos e.Net.t_src and b = pos e.Net.t_dst in
        let lo = min a b and hi = max a b in
        let line = Bytes.make (width * List.length columns) ' ' in
        List.iteri (fun i _ -> Bytes.set line (i * width) '|') columns;
        (* Arrow body between the two lifelines. *)
        if lo <> hi then begin
          for x = (lo * width) + 1 to (hi * width) - 1 do
            Bytes.set line x '-'
          done;
          if a < b then Bytes.set line ((hi * width) - 1) '>'
          else Bytes.set line ((lo * width) + 1) '<'
        end;
        Buffer.add_string buf (Bytes.to_string line);
        Buffer.add_string buf (Printf.sprintf "  %-24s t=%.3f\n" e.Net.t_category e.Net.t_time))
      trace;
    Buffer.contents buf
