lib/saml/attribute_cert.mli: Assertion Dacs_xml
