type error =
  | Timeout
  | No_such_service of string

let error_to_string = function
  | Timeout -> "timeout"
  | No_such_service s -> Printf.sprintf "no such service: %s" s

type pending = { k : (string, error) result -> unit }

type t = {
  net : Net.t;
  services : (Net.node_id * string, caller:Net.node_id -> string -> (string -> unit) -> unit) Hashtbl.t;
  pending : (int, pending) Hashtbl.t;
  mutable next_id : int;
}

(* Wire format: kind '|' id '|' service '|' body.  The few header bytes
   model transport framing; the body carries the real (XML) payload whose
   size dominates. *)

let encode_request id service body = Printf.sprintf "Q|%d|%s|%s" id service body
let encode_reply id body = Printf.sprintf "A|%d||%s" id body
let encode_error id msg = Printf.sprintf "E|%d||%s" id msg

type frame =
  | Request of int * string * string
  | Reply of int * string
  | Error_frame of int * string

let decode payload =
  match String.index_opt payload '|' with
  | None -> None
  | Some first -> (
    let kind = String.sub payload 0 first in
    match String.index_from_opt payload (first + 1) '|' with
    | None -> None
    | Some second -> (
      let id = int_of_string_opt (String.sub payload (first + 1) (second - first - 1)) in
      match (id, String.index_from_opt payload (second + 1) '|') with
      | Some id, Some third ->
        let service = String.sub payload (second + 1) (third - second - 1) in
        let body = String.sub payload (third + 1) (String.length payload - third - 1) in
        (match kind with
        | "Q" -> Some (Request (id, service, body))
        | "A" -> Some (Reply (id, body))
        | "E" -> Some (Error_frame (id, body))
        | _ -> None)
      | _ -> None))
  [@@warning "-4"]

let handle_message t (msg : Net.message) =
  match decode msg.Net.payload with
  | None -> ()
  | Some (Request (id, service, body)) -> (
    match Hashtbl.find_opt t.services (msg.Net.dst, service) with
    | None ->
      Net.send t.net ~src:msg.Net.dst ~dst:msg.Net.src ~category:"rpc-error"
        (encode_error id ("no-such-service:" ^ service))
    | Some handler ->
      let reply body =
        Net.send t.net ~src:msg.Net.dst ~dst:msg.Net.src ~category:(msg.Net.category ^ "-reply")
          (encode_reply id body)
      in
      handler ~caller:msg.Net.src body reply)
  | Some (Reply (id, body)) -> (
    match Hashtbl.find_opt t.pending id with
    | None -> () (* reply after timeout: drop *)
    | Some p ->
      Hashtbl.remove t.pending id;
      p.k (Ok body))
  | Some (Error_frame (id, msg_body)) -> (
    match Hashtbl.find_opt t.pending id with
    | None -> ()
    | Some p ->
      Hashtbl.remove t.pending id;
      let err =
        match String.index_opt msg_body ':' with
        | Some i when String.sub msg_body 0 i = "no-such-service" ->
          No_such_service (String.sub msg_body (i + 1) (String.length msg_body - i - 1))
        | _ -> Timeout
      in
      p.k (Error err))

let create net =
  let t = { net; services = Hashtbl.create 64; pending = Hashtbl.create 64; next_id = 0 } in
  t

let net t = t.net

let ensure_dispatch t node =
  Net.add_node t.net node;
  Net.set_handler t.net node (handle_message t)

let serve t ~node ~service handler =
  ensure_dispatch t node;
  Hashtbl.replace t.services (node, service) handler

let call t ~src ~dst ~service ?(timeout = 1.0) ?category body k =
  ensure_dispatch t src;
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.pending id { k };
  let category = Option.value category ~default:service in
  Net.send t.net ~src ~dst ~category (encode_request id service body);
  Engine.schedule (Net.engine t.net) ~delay:timeout (fun () ->
      match Hashtbl.find_opt t.pending id with
      | None -> ()
      | Some p ->
        Hashtbl.remove t.pending id;
        p.k (Error Timeout))

let calls_in_flight t = Hashtbl.length t.pending
