(** Policy Administration Point: versioned policy store, administrative
    access control, and syndication to subordinate PAPs (Fig. 5).

    Exposes three services on its node:
    - ["policy-query"]: PDPs (and child PAPs) fetch the current policy,
      version-gated so an up-to-date caller gets a small "current" reply;
    - ["policy-update"]: remote administration, allowed only when the
      PAP's own admin policy permits the caller — the paper's "protect the
      authorisation system with its own mechanisms" (§3.2);
    - ["subscribe"]: a child PAP registers for syndication pushes.

    On every accepted change the PAP bumps its version and pushes the new
    policy to subscribers, which accept it subject to their local filter
    (domain autonomy) and cascade to their own subscribers. *)

type t

val create :
  Dacs_ws.Service.t ->
  node:Dacs_net.Net.node_id ->
  name:string ->
  ?admin_policy:Dacs_policy.Policy.child ->
  ?root:Dacs_policy.Policy.child ->
  unit ->
  t
(** Without [admin_policy], remote updates are refused (local publishing
    only). *)

val node : t -> Dacs_net.Net.node_id
val name : t -> string
val version : t -> int
val current : t -> Dacs_policy.Policy.child option

val compiled : t -> Dacs_policy.Compiled.t option
(** The compiled form of {!current}, maintained incrementally across
    publishes: an accepted update recompiles only the leaf policies that
    actually changed (see {!Dacs_policy.Compiled.recompile}). *)

val compilation_epoch : t -> int
(** Epoch of {!compiled}; 0 when no policy is stored.  Bumped by every
    accepted update that changed the tree, preserved by no-op
    publishes. *)

val publish : t -> Dacs_policy.Policy.child -> unit
(** Local administrative action: replace the policy, bump the version,
    push to subscribers.  Also computes the change-impact region of the
    publish (see {!Delta.between}) — available as {!last_region} and
    delivered to the {!on_publish_region} hook — so the invalidation
    plane can purge only affected cache entries. *)

val last_region : t -> Dacs_policy.Delta.t
(** The change-impact region of the most recent accepted update
    (local {!publish}, remote [policy-update], or anti-entropy pull);
    {!Delta.empty} before the first one. *)

val on_publish_region : t -> (Dacs_policy.Delta.t -> unit) -> unit
(** Hook run after every accepted update with its change-impact region —
    where a VO or domain wires region syndication into its cache
    hierarchy. *)

val lookup : t -> string -> Dacs_policy.Policy.child option
(** Resolve a policy id inside the stored tree (for policy references):
    the root itself or a direct child of a root set. *)

val set_admin_policy : t -> Dacs_policy.Policy.child -> unit
(** Replace the PAP's administrative policy — the policy that itself
    controls who may update this PAP's policies. *)

val set_update_filter : t -> (Dacs_policy.Policy.child -> bool) -> unit
(** Local-autonomy constraint: syndicated updates failing the filter are
    ignored (and not cascaded). *)

val set_update_transform : t -> (Dacs_policy.Policy.child -> Dacs_policy.Policy.child) -> unit
(** Local-autonomy merge: how an accepted remote update becomes this PAP's
    stored policy — e.g. wrap the incoming VO-wide policy together with
    the domain's own rules so local restrictions always apply (§3.2). The
    default is identity. *)

val subscribe_local : t -> child:Dacs_net.Net.node_id -> unit
(** Wire a child PAP for pushes without the network subscribe call. *)

val enable_anti_entropy : t -> parent:Dacs_net.Net.node_id -> period:float -> unit
(** Dependability for syndication: a push lost to the network would
    otherwise leave this PAP stale forever.  Enabling anti-entropy makes
    it poll the parent's ["policy-query"] every [period] seconds and adopt
    any newer version (through the local filter and transform, as a push
    would).  Schedules itself forever — drive such simulations with
    [Net.run ~until:…]. *)

val subscribers : t -> Dacs_net.Net.node_id list

(** {1 Statistics} *)

val queries_served : t -> int
val updates_accepted : t -> int
val updates_rejected : t -> int
