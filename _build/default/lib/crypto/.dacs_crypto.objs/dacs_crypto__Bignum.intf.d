lib/crypto/bignum.mli: Format Rng
