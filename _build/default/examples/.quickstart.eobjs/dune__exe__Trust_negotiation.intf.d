examples/trust_negotiation.mli:
