(* Policy administration (§3.2 management): a draft travels through
   review → cryptographic approval → issue, and the issued policy reaches
   the decision points by syndication.  A sloppy draft is caught by the
   review step; a forged approval is caught by signature verification.

   Run with:  dune exec examples/policy_administration.exe *)

module Value = Dacs_policy.Value
module Policy = Dacs_policy.Policy
module Rule = Dacs_policy.Rule
module Expr = Dacs_policy.Expr
module Target = Dacs_policy.Target
module Combine = Dacs_policy.Combine
module Decision = Dacs_policy.Decision
module Net = Dacs_net.Net
module Service = Dacs_ws.Service
module Rsa = Dacs_crypto.Rsa
open Dacs_core

let () =
  let net = Net.create () in
  let services = Service.create (Dacs_net.Rpc.create net) in
  Net.add_node net "pap";
  let pap = Pap.create services ~node:"pap" ~name:"corporate-pap" () in

  (* Two security officers whose signatures gate issuing. *)
  let rng = Dacs_crypto.Rng.create 17L in
  let alice = Rsa.generate rng ~bits:512 in
  let bob = Rsa.generate rng ~bits:512 in
  let lifecycle =
    Lifecycle.create ~pap
      ~approvers:[ ("alice", alice.Rsa.public); ("bob", bob.Rsa.public) ]
      ~required_approvals:2
      ~now:(fun () -> Net.now net)
      ()
  in

  (* --- a sloppy draft: duplicate rule ids ------------------------------ *)
  let sloppy =
    Policy.Inline_policy
      (Policy.make ~id:"hasty" [ Rule.permit "r"; Rule.deny "r" ])
  in
  let d1 = Lifecycle.submit lifecycle ~author:"carol" sloppy in
  (match Lifecycle.review lifecycle ~draft:d1 () with
  | Ok report ->
    Printf.printf "draft %s: review found %d problem(s):\n" d1
      (List.length report.Lifecycle.problems);
    List.iter
      (fun p -> Printf.printf "  - %s\n" (Dacs_policy.Validate.problem_to_string p))
      report.Lifecycle.problems
  | Error e -> print_endline e);
  Printf.printf "draft %s state: %s\n\n" d1
    (match Lifecycle.state_of lifecycle ~draft:d1 with
    | Some s -> Lifecycle.state_to_string s
    | None -> "?");

  (* --- a good draft with test expectations ----------------------------- *)
  let good =
    Policy.Inline_policy
      (Policy.make ~id:"contractor-access" ~issuer:"corporate"
         ~rule_combining:Combine.First_applicable
         [
           Rule.permit
             ~target:Target.(any |> resource_is "resource-id" "wiki" |> action_is "action-id" "read")
             ~condition:(Expr.one_of (Expr.subject_attr "role") [ "employee"; "contractor" ])
             "staff-read-wiki";
           Rule.deny "default-deny";
         ])
  in
  let d2 = Lifecycle.submit lifecycle ~author:"carol" good in
  let request role =
    Dacs_policy.Context.make
      ~subject:[ ("subject-id", Value.String "u"); ("role", Value.String role) ]
      ~resource:[ ("resource-id", Value.String "wiki") ]
      ~action:[ ("action-id", Value.String "read") ]
      ()
  in
  (match
     Lifecycle.review lifecycle ~draft:d2
       ~expectations:
         [ (request "contractor", Decision.Permit); (request "visitor", Decision.Deny) ]
       ()
   with
  | Ok report ->
    Printf.printf "draft %s: review passed (%d conflicts with current policy noted)\n" d2
      (List.length report.Lifecycle.conflicts_with_current)
  | Error e -> print_endline e);

  (* A forged approval: mallory signs with her own key under bob's name. *)
  let mallory = Rsa.generate rng ~bits:512 in
  let payload = Option.get (Lifecycle.signing_payload lifecycle ~draft:d2) in
  (match
     Lifecycle.approve lifecycle ~draft:d2 ~approver:"bob"
       ~signature:(Rsa.sign mallory.Rsa.private_ payload)
   with
  | Error e -> Printf.printf "forged approval rejected: %s\n" e
  | Ok _ -> print_endline "BUG: forged approval accepted");

  (* Genuine approvals. *)
  ignore (Lifecycle.approve lifecycle ~draft:d2 ~approver:"alice" ~signature:(Rsa.sign alice.Rsa.private_ payload));
  ignore (Lifecycle.approve lifecycle ~draft:d2 ~approver:"bob" ~signature:(Rsa.sign bob.Rsa.private_ payload));
  (match Lifecycle.issue lifecycle ~draft:d2 with
  | Ok version -> Printf.printf "draft %s issued as PAP version %d\n" d2 version
  | Error e -> print_endline e);

  (* --- the issued policy reaches a PDP and decides requests ------------- *)
  Net.add_node net "pdp";
  ignore (Pdp_service.create services ~node:"pdp" ~name:"pdp" ~pap:"pap" ());
  Net.add_node net "pep";
  ignore
    (Pep.create services ~node:"pep" ~domain:"corp" ~resource:"wiki"
       (Pep.Pull { pdps = [ "pdp" ]; cache = None; call_timeout = 1.0 }));
  Net.add_node net "c";
  let contractor =
    Client.create services ~node:"c"
      ~subject:[ ("subject-id", Value.String "dan"); ("role", Value.String "contractor") ]
  in
  Client.request contractor ~pep:"pep" ~action:"read" (fun r ->
      Printf.printf "contractor request after issue -> %s\n"
        (match r with
        | Ok (Wire.Granted _) -> "GRANTED"
        | Ok (Wire.Denied reason) -> "DENIED (" ^ reason ^ ")"
        | Error e -> "ERROR (" ^ Service.error_to_string e ^ ")"));
  Net.run net;

  print_newline ();
  print_endline "audit trail of the issued draft:";
  List.iter
    (fun (at, event) -> Printf.printf "  t=%.3f %s\n" at event)
    (Lifecycle.history lifecycle ~draft:d2)
