(** Hex and Base64 codecs for digests, signatures and key material. *)

val hex_encode : string -> string
(** Lowercase hexadecimal rendering of a byte string. *)

val hex_decode : string -> string
(** Inverse of {!hex_encode}; accepts upper and lower case.
    @raise Invalid_argument on odd length or non-hex characters. *)

val base64_encode : string -> string
(** Standard alphabet with ['='] padding (RFC 4648). *)

val base64_decode : string -> string
(** Inverse of {!base64_encode}; ignores ASCII whitespace.
    @raise Invalid_argument on malformed input. *)
