lib/core/discovery.ml: Dacs_net Dacs_ws Dacs_xml Hashtbl List Option Pep
