(** HMAC-SHA256 (RFC 2104). *)

val sha256 : key:string -> string -> string
(** [sha256 ~key msg] is the 32-byte authentication tag. *)

val sha256_hex : key:string -> string -> string

val verify : key:string -> string -> tag:string -> bool
(** Constant-time comparison of the expected tag against [tag]. *)
