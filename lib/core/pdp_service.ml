module Service = Dacs_ws.Service
module Engine = Dacs_net.Engine
module Context = Dacs_policy.Context
module Decision = Dacs_policy.Decision
module Policy = Dacs_policy.Policy
module Compiled = Dacs_policy.Compiled
module Value = Dacs_policy.Value
module Metrics = Dacs_telemetry.Metrics
module Trace = Dacs_telemetry.Trace

type policy_refresh =
  | Never
  | Every_query
  | Ttl of float

type stats = {
  queries : int;
  permits : int;
  denies : int;
  pip_fetches : int;
  pap_fetches : int;
  pap_refresh_hits : int;
  overloads : int;
}

(* Like the PEP, all stats live in the bus-wide registry under this PDP's
   node label; the old record is a thin read over them. *)
type counters = {
  c_queries : Metrics.counter;
  c_permits : Metrics.counter;
  c_denies : Metrics.counter;
  c_pip_fetches : Metrics.counter;
  c_pap_fetches : Metrics.counter;
  c_pap_refresh_hits : Metrics.counter;
  c_overloads : Metrics.counter;
}

let make_counters metrics ~node =
  let own ?help name = Metrics.counter metrics ?help ~labels:[ ("node", node) ] name in
  {
    c_queries = own "pdp_queries_total" ~help:"Authorisation queries evaluated";
    c_permits = own "pdp_permits_total" ~help:"Queries decided Permit";
    c_denies = own "pdp_denies_total" ~help:"Queries decided Deny";
    c_pip_fetches = own "pdp_pip_fetches_total" ~help:"Attribute queries issued to PIPs";
    c_pap_fetches = own "pdp_pap_fetches_total" ~help:"Policy queries issued to the PAP";
    c_pap_refresh_hits = own "pdp_pap_refresh_hits_total" ~help:"PAP refreshes answered 'current'";
    c_overloads = own "pdp_overload_total" ~help:"Queries rejected by the max-inflight bound";
  }

type t = {
  services : Service.t;
  node : Dacs_net.Net.node_id;
  pap : Dacs_net.Net.node_id option;
  refresh : policy_refresh;
  pips : Dacs_net.Net.node_id list;
  signer : (Dacs_crypto.Rsa.private_key * Dacs_crypto.Cert.t) option;
  retry : Dacs_net.Rpc.retry_policy option;
  counters : counters;
  service_time : float;
  rule_cost : float;
  max_inflight : int option;
  attr_cache : Cache_hierarchy.Attr_cache.t option;
  attr_batch : bool;
  h_attr_batch : Metrics.histogram;
  h_eval : Metrics.histogram;
  h_pip_fetch : Metrics.histogram;
  mutable busy_until : float;
  mutable inflight : int;
  mutable root : Policy.child option;
  mutable compiled_root : Compiled.t option;  (* in step with [root] when [use_compiled] *)
  mutable use_compiled : bool;
  mutable version : int;
  mutable fetched_at : float;
}

let node t = t.node
let attr_cache t = t.attr_cache
let tracer t = Service.tracer t.services

let now t = Dacs_net.Net.now (Service.net t.services)

(* Keep the compiled form in step with the interpreted root whenever
   compiled evaluation is on; recompilation is incremental, so policy
   refreshes that only touch part of the tree stay cheap. *)
let sync_compiled t =
  if t.use_compiled then
    t.compiled_root <-
      (match t.root with
      | None -> None
      | Some root ->
        Some
          (match t.compiled_root with
          | None -> Compiled.compile root
          | Some prev -> Compiled.recompile prev root))

let install_policy t root =
  t.root <- Some root;
  sync_compiled t;
  t.fetched_at <- now t

let set_compiled t on =
  t.use_compiled <- on;
  if on then sync_compiled t else t.compiled_root <- None

let compiled_enabled t = t.use_compiled

let compilation_epoch t =
  match t.compiled_root with None -> 0 | Some c -> Compiled.epoch c

let policy_version t = t.version

let stats t =
  let v = Metrics.counter_value in
  let c = t.counters in
  {
    queries = v c.c_queries;
    permits = v c.c_permits;
    denies = v c.c_denies;
    pip_fetches = v c.c_pip_fetches;
    pap_fetches = v c.c_pap_fetches;
    pap_refresh_hits = v c.c_pap_refresh_hits;
    overloads = v c.c_overloads;
  }

let reset_stats t =
  let c = t.counters in
  List.iter Metrics.reset_counter
    [
      c.c_queries;
      c.c_permits;
      c.c_denies;
      c.c_pip_fetches;
      c.c_pap_fetches;
      c.c_pap_refresh_hits;
      c.c_overloads;
    ]

(* Resolve a policy reference against the locally cached tree: a direct
   child of the cached root set. *)
let local_ref_resolver t id =
  match t.root with
  | Some (Policy.Inline_set s) ->
    List.find_opt (fun c -> Policy.child_id c = id) s.Policy.children
  | Some _ | None -> None

(* --- policy freshness -------------------------------------------------- *)

let needs_refresh t =
  match (t.pap, t.root, t.refresh) with
  | None, _, _ -> false
  | Some _, None, _ -> true
  | Some _, Some _, Never -> false
  | Some _, Some _, Every_query -> true
  | Some _, Some _, Ttl ttl -> now t -. t.fetched_at >= ttl

let ensure_policy t k =
  if not (needs_refresh t) then k ()
  else begin
    match t.pap with
    | None -> k ()
    | Some pap ->
      Metrics.inc t.counters.c_pap_fetches;
      Service.call_resilient t.services ~src:t.node ~dst:pap ?retry:t.retry ~service:"policy-query"
        (Wire.policy_query ~scope:"" ~known_version:t.version)
        (fun result ->
          (match result with
          | Ok body -> (
            match Wire.parse_policy_response body with
            | Ok (version, Some child) ->
              t.root <- Some child;
              sync_compiled t;
              t.version <- version;
              t.fetched_at <- now t
            | Ok (_, None) ->
              Metrics.inc t.counters.c_pap_refresh_hits;
              t.fetched_at <- now t
            | Error _ -> ())
          | Error _ -> () (* keep whatever we have; staleness over unavailability *));
          k ())
  end

(* --- attribute gathering -------------------------------------------------- *)

let store_attr t ~subject (category, id) bag =
  match t.attr_cache with
  | None -> ()
  | Some ac -> Cache_hierarchy.Attr_cache.store ac ~now:(now t) ~category ~id ~subject bag

(* One evaluation pass, recording the designator lookups that found
   nothing.  The attribute cache answers first — including negatively: a
   cached empty bag means no PIP had the attribute recently, so it is
   neither resolved nor refetched.  [attempted] prevents refetching
   attributes a PIP already said it does not have within this
   evaluation. *)
let evaluate_pass t ~subject_sym ctx attempted =
  let misses = ref [] in
  let resolve category id =
    let cached =
      match t.attr_cache with
      | None -> None
      | Some ac ->
        (* The subject was interned once per evaluation; the (category,
           id) position interns to a dense pair sym (a string-table hit),
           so the probe hashes one packed word. *)
        Cache_hierarchy.Attr_cache.find_sym ac ~now:(now t)
          ~pair:(Cache_hierarchy.Attr_cache.pair_sym category id)
          ~subject_sym
    in
    match cached with
    | Some [] -> None
    | Some bag -> Some bag
    | None ->
      if not (Hashtbl.mem attempted (category, id)) then misses := (category, id) :: !misses;
      None
  in
  let resolve_ref = local_ref_resolver t in
  let result =
    match t.root with
    | None -> Decision.indeterminate "no policy installed"
    | Some root -> (
      match t.compiled_root with
      | Some c when t.use_compiled && Compiled.source c == root ->
        Compiled.evaluate ~resolve ~resolve_ref ctx c
      | _ -> Policy.evaluate_child ~resolve ~resolve_ref ctx root)
  in
  (result, List.sort_uniq compare !misses)

(* Legacy sequential fetch: one RPC per (attribute, PIP) attempt, first
   non-empty answer wins.  Kept behind [attr_batch = false] so the e17
   ablation can price the batching alone. *)
let rec fetch_attribute t ~subject (category, id) pips k =
  match pips with
  | [] -> k []
  | pip :: rest ->
    Metrics.inc t.counters.c_pip_fetches;
    Service.call_resilient t.services ~src:t.node ~dst:pip ?retry:t.retry ~service:"attribute-query"
      (Wire.attribute_query ~category ~attribute_id:id ~subject)
      (fun result ->
        match result with
        | Ok body -> (
          match Wire.parse_attribute_result body with
          | Ok [] | Error _ -> fetch_attribute t ~subject (category, id) rest k
          | Ok bag -> k bag)
        | Error _ -> fetch_attribute t ~subject (category, id) rest k)

let rec fetch_sequential t ~subject misses ctx k =
  match misses with
  | [] -> k ctx
  | ((category, id) as miss) :: rest ->
    fetch_attribute t ~subject miss t.pips (fun bag ->
        store_attr t ~subject miss bag;
        let ctx = if bag = [] then ctx else Context.add_bag ctx category id bag in
        fetch_sequential t ~subject rest ctx k)

(* Batched fetch: every outstanding miss rides one multi-part frame to
   the PIP — one correlation id, one timeout, one retry/breaker envelope
   for the whole attribute round (the B/BT envelope of the tier).  Only
   attributes the first PIP answered empty (or a failed frame) move on
   to the next PIP, preserving the first-non-empty-wins semantics of the
   sequential path. *)
let fetch_batched t ~subject misses ctx k =
  let rec go misses ctx pips =
    match (misses, pips) with
    | [], _ -> k ctx
    | misses, [] ->
      (* No PIP holds these: negative-cache the absence so the next
         decision skips the round trip entirely. *)
      List.iter (fun miss -> store_attr t ~subject miss []) misses;
      k ctx
    | misses, pip :: rest ->
      let handle parts =
        let ctx, unresolved =
          List.fold_left2
            (fun (ctx, unresolved) ((category, id) as miss) part ->
              match part with
              | Ok body -> (
                match Wire.parse_attribute_result body with
                | Ok [] | Error _ -> (ctx, miss :: unresolved)
                | Ok bag ->
                  store_attr t ~subject miss bag;
                  (Context.add_bag ctx category id bag, unresolved))
              | Error _ -> (ctx, miss :: unresolved))
            (ctx, []) misses parts
        in
        go (List.rev unresolved) ctx rest
      in
      Metrics.inc t.counters.c_pip_fetches;
      Metrics.observe t.h_attr_batch (float_of_int (List.length misses));
      let bodies =
        List.map
          (fun (category, id) -> Wire.attribute_query ~category ~attribute_id:id ~subject)
          misses
      in
      (match bodies with
      | [ single ] ->
        (* A batch of one needs no envelope. *)
        Service.call_resilient t.services ~src:t.node ~dst:pip ?retry:t.retry
          ~service:"attribute-query" single (fun result -> handle [ result ])
      | _ ->
        Service.call_batch_resilient t.services ~src:t.node ~dst:pip ?retry:t.retry
          ~service:"attribute-query" bodies (fun result ->
            match result with
            | Ok parts -> handle parts
            | Error e -> handle (List.map (fun _ -> Error e) misses)))
  in
  go misses ctx t.pips

(* The trace id the ambient context belongs to, as the exemplar tag for
   latency histograms — "" (no exemplar) when tracing is off. *)
let trace_tag tr =
  match Trace.current tr with
  | Some ctx -> Printf.sprintf "%Lx" ctx.Trace.trace_id
  | None -> ""

let fetch_all t ~subject misses attempted ctx k =
  List.iter (fun miss -> Hashtbl.replace attempted miss ()) misses;
  let started = now t in
  let tag = trace_tag (tracer t) in
  let k ctx =
    Metrics.observe_exemplar t.h_pip_fetch (now t -. started) ~trace:tag ~at:(now t);
    k ctx
  in
  if t.attr_batch then fetch_batched t ~subject misses ctx k
  else fetch_sequential t ~subject misses ctx k

let evaluate_local t ctx k =
  (* One span per evaluation, covering the PAP refresh and every PIP
     round of the context-handler loop — all nested client spans parent
     onto it through the ambient context. *)
  let tr = tracer t in
  let span = Trace.start_span tr "pdp:evaluate" in
  Trace.annotate span "node" t.node;
  let started = now t in
  let tag =
    if Trace.enabled tr then Printf.sprintf "%Lx" (Trace.context span).Trace.trace_id else ""
  in
  let saved = Trace.current tr in
  if Trace.enabled tr then Trace.set_current tr (Some (Trace.context span));
  ensure_policy t (fun () ->
      let subject = Option.value (Context.subject_id ctx) ~default:"" in
      let subject_sym = Cache_hierarchy.Attr_cache.subject_sym subject in
      let attempted = Hashtbl.create 8 in
      (* The context-handler loop: evaluate, fetch what was missing,
         re-evaluate; bounded to keep pathological policies finite. *)
      let rec loop ctx rounds =
        let result, misses = evaluate_pass t ~subject_sym ctx attempted in
        if misses = [] || t.pips = [] || rounds >= 4 then begin
          Metrics.inc t.counters.c_queries;
          if Decision.is_permit result then Metrics.inc t.counters.c_permits;
          if Decision.is_deny result then Metrics.inc t.counters.c_denies;
          Metrics.observe_exemplar t.h_eval (now t -. started) ~trace:tag ~at:(now t);
          Trace.annotate span "decision" (Decision.decision_to_string result.Decision.decision);
          Trace.finish tr span;
          k result
        end
        else fetch_all t ~subject misses attempted ctx (fun ctx -> loop ctx (rounds + 1))
      in
      loop ctx 0);
  Trace.set_current tr saved

(* With a positive [rule_cost] the occupancy grows with the number of
   rules evaluation actually scans: the whole tree when interpreting,
   only the dispatched candidates when compiled — which is what lets the
   e18 ablation show compiled evaluation as shard capacity, not just as
   lower wall-clock per call. *)
let scan_occupancy t ctx =
  if t.rule_cost <= 0.0 then 0.0
  else
    let scanned =
      match t.root with
      | None -> 0
      | Some root -> (
        match t.compiled_root with
        | Some c when t.use_compiled && Compiled.source c == root ->
          Compiled.candidate_count c ctx
        | _ -> (
          match root with
          | Policy.Inline_policy p -> Policy.rule_count p
          | Policy.Inline_set s -> Policy.set_rule_count ~resolve_ref:(local_ref_resolver t) s
          | Policy.Policy_ref _ -> 0))
    in
    t.rule_cost *. float_of_int scanned

(* Capacity model: with a positive [service_time] each evaluation occupies
   the PDP for that long in virtual time, queueing FIFO behind whatever is
   already in progress — which is what makes a single decision point a
   measurable bottleneck and a sharded tier a measurable win (E16).  The
   default of 0 keeps the historical instantaneous-evaluation behaviour
   with no extra engine events, so seeded runs stay byte-identical. *)
let when_capacity_free t ~occupancy f =
  if occupancy <= 0.0 then f ()
  else begin
    let now = now t in
    let start = Float.max now t.busy_until in
    let finish = start +. occupancy in
    t.busy_until <- finish;
    let tr = tracer t in
    let ambient = Trace.current tr in
    Engine.schedule
      (Dacs_net.Net.engine (Service.net t.services))
      ~delay:(finish -. now)
      (fun () ->
        let saved = Trace.current tr in
        Trace.set_current tr ambient;
        f ();
        Trace.set_current tr saved)
  end

(* The max-inflight bound on top of the FIFO capacity model: [inflight]
   counts queries accepted off the wire but not yet answered — the FIFO
   backlog plus whatever is mid-evaluation (PIP rounds included).  Past
   the bound the query is rejected {e now}, with an Indeterminate the
   requester can only treat as a deny: a saturated decision point sheds
   load instead of growing an unbounded queue of doomed work. *)
let overloaded t =
  match t.max_inflight with Some m -> t.inflight >= m | None -> false

let overload_reason = "pdp overloaded"

let create services ~node ~name:_ ?root ?pap ?refresh ?(pips = []) ?signer ?retry
    ?(service_time = 0.0) ?(rule_cost = 0.0) ?max_inflight ?attr_cache_ttl ?(attr_batch = true)
    ?(compiled = false) () =
  let refresh =
    match refresh with
    | Some r -> r
    | None -> (match pap with Some _ -> Every_query | None -> Never)
  in
  let metrics = Service.metrics services in
  let attr_cache =
    Option.map (fun ttl -> Cache_hierarchy.Attr_cache.create metrics ~node ~ttl ()) attr_cache_ttl
  in
  let t =
    {
      services;
      node;
      pap;
      refresh;
      pips;
      signer;
      retry;
      counters = make_counters metrics ~node;
      service_time;
      rule_cost;
      max_inflight;
      attr_cache;
      attr_batch;
      h_attr_batch =
        Metrics.histogram metrics ~help:"Missing attributes fetched per PIP round trip"
          ~buckets:[ 1.0; 2.0; 4.0; 8.0; 16.0 ]
          ~labels:[ ("node", node) ] "pdp_attr_batch_size";
      h_eval =
        Metrics.histogram metrics ~help:"Policy evaluation latency (PAP/PIP rounds included)"
          ~labels:[ ("node", node) ] "pdp_eval_seconds";
      h_pip_fetch =
        Metrics.histogram metrics ~help:"PIP attribute fetch round latency"
          ~labels:[ ("node", node) ] "pdp_pip_fetch_seconds";
      busy_until = 0.0;
      inflight = 0;
      root;
      compiled_root = None;
      use_compiled = compiled;
      version = 0;
      fetched_at = -.infinity;
    }
  in
  sync_compiled t;
  (match attr_cache with
  | None -> ()
  | Some ac ->
    (* Explicit invalidation path: the PIP pushes when an attribute is
       removed, so revocation never waits out the cache TTL. *)
    Service.serve services ~node ~service:"attribute-invalidate"
      (fun ~caller:_ ~headers:_ body reply ->
        match Wire.parse_attribute_invalidate body with
        | Error e ->
          reply (Dacs_ws.Soap.fault_body { Dacs_ws.Soap.code = "soap:Sender"; reason = e })
        | Ok (subject, id) ->
          Cache_hierarchy.Attr_cache.invalidate_subject ac ~subject ~id;
          reply (Dacs_xml.Xml.element "InvalidateAck"));
    List.iter
      (fun pip ->
        Service.call services ~src:node ~dst:pip ~service:"attribute-subscribe"
          (Wire.attribute_subscribe ())
          (fun _ -> ()))
      pips);
  Service.serve services ~node ~service:"authz-query" (fun ~caller:_ ~headers:_ body reply ->
      match Wire.parse_authz_query body with
      | Error e -> reply (Dacs_ws.Soap.fault_body { Dacs_ws.Soap.code = "soap:Sender"; reason = e })
      | Ok ctx ->
        if overloaded t then begin
          Metrics.inc t.counters.c_overloads;
          reply (Wire.authz_response (Decision.indeterminate overload_reason))
        end
        else begin
          t.inflight <- t.inflight + 1;
          when_capacity_free t ~occupancy:(t.service_time +. scan_occupancy t ctx) (fun () ->
              evaluate_local t ctx (fun result ->
                  t.inflight <- t.inflight - 1;
                  let epoch = compilation_epoch t in
                  match t.signer with
                  | None -> reply (Wire.authz_response ~epoch result)
                  | Some (key, cert) ->
                    reply (Wire.signed_authz_response ~epoch ~key ~cert result)))
        end);
  t
