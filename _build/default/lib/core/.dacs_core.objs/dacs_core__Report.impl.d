lib/core/report.ml: Audit Buffer Capability_service Dacs_policy Domain Idp List Pap Pdp_service Pep Pip Printf Vo
