examples/healthcare_federation.mli:
