lib/wskit/soap.ml: Dacs_xml List Option
