(** Networked Policy Decision Point.

    Serves ["authz-query"] on its node: fetches/refreshes its policy from
    a PAP (version-gated, TTL-cached), gathers missing attributes from
    PIPs (the context-handler loop of Fig. 4), evaluates, and replies with
    a decision plus obligations. *)

type policy_refresh =
  | Never  (** use the locally installed policy only *)
  | Every_query  (** revalidate against the PAP before each decision *)
  | Ttl of float  (** revalidate when the cached copy is older than this *)

type t

val create :
  Dacs_ws.Service.t ->
  node:Dacs_net.Net.node_id ->
  name:string ->
  ?root:Dacs_policy.Policy.child ->
  ?pap:Dacs_net.Net.node_id ->
  ?refresh:policy_refresh ->
  ?pips:Dacs_net.Net.node_id list ->
  ?signer:Dacs_crypto.Rsa.private_key * Dacs_crypto.Cert.t ->
  ?retry:Dacs_net.Rpc.retry_policy ->
  ?service_time:float ->
  ?rule_cost:float ->
  ?max_inflight:int ->
  ?attr_cache_ttl:float ->
  ?attr_batch:bool ->
  ?compiled:bool ->
  unit ->
  t
(** [refresh] defaults to [Every_query] when a PAP is given, else
    [Never].  With [signer], every decision response is signed and carries
    the PDP's certificate (see {!Wire.signed_authz_response}) so PEPs can
    authenticate their decision point (§3.2).  [retry] (default: single
    attempt) hardens the PDP's own upstream calls — PAP policy fetches
    and PIP attribute queries — with backoff through the RPC resilience
    layer.  [service_time] (seconds of virtual time, default 0) models
    evaluation capacity: each query occupies the PDP for that long and
    queues FIFO behind in-progress work, which is what makes single-PDP
    saturation — and the sharded tier's speedup — measurable (E16).  0
    preserves the historical instantaneous behaviour exactly.

    [max_inflight] (default: unbounded) caps that FIFO: at most this many
    queries accepted off the wire but not yet answered.  A query arriving
    past the bound is rejected immediately with an Indeterminate
    ("pdp overloaded") response and counted in [pdp_overload_total{node}]
    — the shard sheds load instead of queueing doomed work, which is what
    keeps admitted-request latency bounded under saturation (E18).

    [attr_cache_ttl] (default: no cache) enables a PDP-side attribute
    cache: fetched bags (including empty ones — negative entries) are
    reused across decisions for that long, the PDP subscribes to its
    PIPs for explicit invalidation pushes ([remove_subject_attribute]
    purges subscribed caches immediately), and serves
    ["attribute-invalidate"].  [attr_batch] (default true) resolves all
    attributes missing from a context-handler round in one multi-part
    frame per PIP — the B/BT batch envelope — instead of one RPC per
    attribute; [false] restores the sequential shape (the e17 ablation
    baseline).

    [rule_cost] (seconds of virtual time per rule scanned, default 0)
    extends the capacity model: each query additionally occupies the PDP
    for [rule_cost] times the number of rules evaluation considers — the
    whole tree when interpreting, only the dispatched candidates when
    compiled — so compiled evaluation shows up as shard capacity in
    saturation experiments.  [compiled] (default false) starts the PDP
    with compiled evaluation on (see {!set_compiled}). *)

val node : t -> Dacs_net.Net.node_id

val attr_cache : t -> Cache_hierarchy.Attr_cache.t option
(** The attribute cache, when [attr_cache_ttl] was given. *)

val install_policy : t -> Dacs_policy.Policy.child -> unit
(** Local installation (also what a PAP fetch does internally). *)

val policy_version : t -> int
(** Last version seen from the PAP (0 when none). *)

val set_compiled : t -> bool -> unit
(** Toggle compiled evaluation.  Turning it on compiles the currently
    installed policy (and every subsequently installed or fetched one,
    incrementally); turning it off drops the compiled form and reverts
    to the interpreter.  Decisions are identical either way — the
    equivalence is enforced by the differential oracle suite. *)

val compiled_enabled : t -> bool

val compilation_epoch : t -> int
(** Epoch of the current compiled form (0 when compiled evaluation is
    off or no policy is installed).  Bumped whenever an installed or
    fetched policy actually changed the tree. *)

val evaluate_local :
  t -> Dacs_policy.Context.t -> (Dacs_policy.Decision.result -> unit) -> unit
(** The full decision pipeline without the inbound network hop (used by
    agent-mode PEPs that embed their PDP). *)

(** {1 Statistics} *)

type stats = {
  queries : int;
  permits : int;
  denies : int;
  pip_fetches : int;  (** attribute-query RPC frames issued (a batched
                          multi-attribute round trip counts once) *)
  pap_fetches : int;  (** policy-query calls issued *)
  pap_refresh_hits : int;  (** PAP said "current" *)
  overloads : int;  (** queries rejected by the max-inflight bound *)
}

val stats : t -> stats
(** A thin read over the bus-wide metrics registry's [pdp_*_total{node}]
    counters. *)

val reset_stats : t -> unit
(** Zeros this PDP's series in the shared registry. *)
