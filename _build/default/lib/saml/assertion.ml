module Xml = Dacs_xml.Xml
module Value = Dacs_policy.Value
module Decision = Dacs_policy.Decision

type statement =
  | Attribute_statement of (string * Value.t) list
  | Authz_decision_statement of {
      resource : string;
      action : string;
      decision : Decision.t;
    }

type t = {
  id : string;
  issuer : string;
  subject : string;
  issued_at : float;
  not_before : float;
  not_on_or_after : float;
  statements : statement list;
  signature : string option;
}

let make ~id ~issuer ~subject ~issued_at ?(validity = 300.0) statements =
  {
    id;
    issuer;
    subject;
    issued_at;
    not_before = issued_at;
    not_on_or_after = issued_at +. validity;
    statements;
    signature = None;
  }

let statement_to_xml = function
  | Attribute_statement attrs ->
    Xml.element "AttributeStatement"
      ~children:
        (List.map
           (fun (name, v) ->
             Xml.element "Attribute"
               ~attrs:[ ("Name", name); ("DataType", Value.type_name (Value.type_of v)) ]
               ~children:[ Xml.text (Value.to_string v) ])
           attrs)
  | Authz_decision_statement { resource; action; decision } ->
    Xml.element "AuthzDecisionStatement"
      ~attrs:
        [
          ("Resource", resource);
          ("Action", action);
          ("Decision", Decision.decision_to_string decision);
        ]

let unsigned_xml a =
  Xml.element "Assertion"
    ~attrs:
      [
        ("ID", a.id);
        ("Issuer", a.issuer);
        ("Subject", a.subject);
        ("IssueInstant", Printf.sprintf "%.6f" a.issued_at);
        ("NotBefore", Printf.sprintf "%.6f" a.not_before);
        ("NotOnOrAfter", Printf.sprintf "%.6f" a.not_on_or_after);
      ]
    ~children:(List.map statement_to_xml a.statements)

let signing_payload a = Xml.canonical_string (unsigned_xml a)

let sign key a = { a with signature = Some (Dacs_crypto.Rsa.sign key (signing_payload a)) }

let verify pub a =
  match a.signature with
  | None -> false
  | Some signature -> Dacs_crypto.Rsa.verify pub (signing_payload a) ~signature

let valid_at a now = a.not_before <= now && now < a.not_on_or_after

type failure =
  | Not_signed
  | Bad_signature
  | Expired
  | Not_yet_valid
  | Unknown_issuer of string

let failure_to_string = function
  | Not_signed -> "assertion is not signed"
  | Bad_signature -> "assertion signature does not verify"
  | Expired -> "assertion has expired"
  | Not_yet_valid -> "assertion is not yet valid"
  | Unknown_issuer issuer -> Printf.sprintf "issuer %s is not trusted" issuer

let validate ~trusted_key ~now a =
  match a.signature with
  | None -> Error Not_signed
  | Some _ -> (
    match trusted_key a.issuer with
    | None -> Error (Unknown_issuer a.issuer)
    | Some key ->
      if not (verify key a) then Error Bad_signature
      else if now < a.not_before then Error Not_yet_valid
      else if now >= a.not_on_or_after then Error Expired
      else Ok ())

let attributes a =
  List.concat_map
    (function Attribute_statement attrs -> attrs | Authz_decision_statement _ -> [])
    a.statements

let decisions a =
  List.filter_map
    (function
      | Authz_decision_statement { resource; action; decision } -> Some (resource, action, decision)
      | Attribute_statement _ -> None)
    a.statements

let permits a ~resource ~action =
  List.exists
    (fun (r, act, d) -> r = resource && act = action && d = Decision.Permit)
    (decisions a)

let to_xml a =
  let base = unsigned_xml a in
  match a.signature with
  | None -> base
  | Some s ->
    (match base with
    | Xml.Element e ->
      Xml.Element
        {
          e with
          Xml.children =
            e.Xml.children
            @ [
                Xml.element "SignatureValue"
                  ~children:[ Xml.text (Dacs_crypto.Encoding.base64_encode s) ];
              ];
        }
    | Xml.Text _ -> base)

let ( let* ) = Result.bind

let statement_of_xml node =
  match Xml.local_name (Xml.tag node) with
  | "AttributeStatement" ->
    let rec attrs_of acc = function
      | [] -> Ok (List.rev acc)
      | attr_node :: rest -> (
        match (Xml.attr attr_node "Name", Xml.attr attr_node "DataType") with
        | Some name, Some dt_name -> (
          match Value.data_type_of_name dt_name with
          | None -> Error (Printf.sprintf "unknown data type %s" dt_name)
          | Some dt -> (
            match Value.of_string dt (Xml.text_content attr_node) with
            | Ok v -> attrs_of ((name, v) :: acc) rest
            | Error e -> Error e))
        | _ -> Error "Attribute needs Name and DataType")
    in
    let* attrs = attrs_of [] (Xml.find_children node "Attribute") in
    Ok (Some (Attribute_statement attrs))
  | "AuthzDecisionStatement" -> (
    match (Xml.attr node "Resource", Xml.attr node "Action", Xml.attr node "Decision") with
    | Some resource, Some action, Some d -> (
      match Decision.decision_of_string d with
      | Some decision -> Ok (Some (Authz_decision_statement { resource; action; decision }))
      | None -> Error (Printf.sprintf "unknown decision %s" d))
    | _ -> Error "AuthzDecisionStatement needs Resource, Action and Decision")
  | "SignatureValue" -> Ok None
  | other -> Error (Printf.sprintf "unexpected assertion child <%s>" other)

let of_xml node =
  if Xml.local_name (Xml.tag node) <> "Assertion" then Error "expected an Assertion element"
  else begin
    let attr name =
      match Xml.attr node name with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "Assertion is missing %s" name)
    in
    let* id = attr "ID" in
    let* issuer = attr "Issuer" in
    let* subject = attr "Subject" in
    let* issued_s = attr "IssueInstant" in
    let* nb_s = attr "NotBefore" in
    let* na_s = attr "NotOnOrAfter" in
    match (float_of_string_opt issued_s, float_of_string_opt nb_s, float_of_string_opt na_s) with
    | Some issued_at, Some not_before, Some not_on_or_after ->
      let rec statements_of acc = function
        | [] -> Ok (List.rev acc)
        | child :: rest -> (
          match statement_of_xml child with
          | Ok (Some s) -> statements_of (s :: acc) rest
          | Ok None -> statements_of acc rest
          | Error e -> Error e)
      in
      let children = List.filter Xml.is_element (Xml.children node) in
      let* statements = statements_of [] children in
      let signature =
        Option.map
          (fun n -> Dacs_crypto.Encoding.base64_decode (Xml.text_content n))
          (Xml.find_child node "SignatureValue")
      in
      Ok { id; issuer; subject; issued_at; not_before; not_on_or_after; statements; signature }
    | _ -> Error "Assertion has malformed timestamps"
  end

let to_string a = Xml.to_string (to_xml a)

let of_string s =
  match Xml.of_string_opt s with
  | None -> Error "malformed XML"
  | Some node -> of_xml node
