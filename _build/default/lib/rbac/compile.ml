open Dacs_policy

(* Roles that grant a permission = roles holding it directly, plus all
   their seniors (who inherit it). *)
let granting_roles model perm =
  List.filter
    (fun role -> List.mem perm (Rbac.role_permissions model role))
    (Rbac.roles model)

let all_permissions model =
  List.concat_map (fun role -> Rbac.role_permissions model role) (Rbac.roles model)
  |> List.sort_uniq compare

let perm_target (perm : Rbac.permission) =
  Target.(any |> resource_is "resource-id" perm.Rbac.resource |> action_is "action-id" perm.Rbac.action)

let to_policy ?(id = "rbac") model =
  let rules =
    List.concat_map
      (fun perm ->
        match granting_roles model perm with
        | [] -> []
        | roles ->
          [
            Rule.permit
              ~description:
                (Printf.sprintf "roles may %s %s" perm.Rbac.action perm.Rbac.resource)
              ~target:(perm_target perm)
              ~condition:(Expr.one_of (Expr.subject_attr "role") roles)
              (Printf.sprintf "permit-%s-%s" perm.Rbac.action perm.Rbac.resource);
          ])
      (all_permissions model)
  in
  Policy.make ~id ~description:"compiled from RBAC (role-based)"
    ~rule_combining:Combine.First_applicable
    (rules @ [ Rule.deny "default-deny" ])

let to_identity_policy ?(id = "rbac-acl") model =
  let rules =
    List.concat_map
      (fun user ->
        List.map
          (fun (perm : Rbac.permission) ->
            Rule.permit
              ~target:
                Target.(
                  any
                  |> subject_is "subject-id" user
                  |> resource_is "resource-id" perm.Rbac.resource
                  |> action_is "action-id" perm.Rbac.action)
              (Printf.sprintf "permit-%s-%s-%s" user perm.Rbac.action perm.Rbac.resource))
          (Rbac.user_permissions model user))
      (Rbac.users model)
  in
  Policy.make ~id ~description:"compiled from RBAC (identity-based ACL)"
    ~rule_combining:Combine.First_applicable
    (rules @ [ Rule.deny "default-deny" ])

let subject_for_user model user =
  ("subject-id", Value.String user)
  :: List.map (fun role -> ("role", Value.String role)) (Rbac.authorized_roles model user)
