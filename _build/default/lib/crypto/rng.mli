(** Deterministic pseudo-random generator (splitmix64).

    Every stochastic choice in the DACS libraries — key generation,
    simulated message loss, workload generation — draws from an explicit
    [Rng.t] so that experiments and tests are reproducible bit-for-bit. *)

type t

val create : int64 -> t
(** Generator seeded with the given value. *)

val copy : t -> t
(** Independent clone with the same current state. *)

val next_int64 : t -> int64
(** Uniform over all 2{^64} values. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bits : t -> int -> int
(** [bits t n] is an [n]-bit non-negative integer, [1 <= n <= 62]. *)

val bytes : t -> int -> string
(** [bytes t n] is an [n]-byte random string. *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. @raise Invalid_argument on []. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher–Yates shuffle. *)

val split : t -> t
(** Derive an independent generator (for isolating subsystems). *)
