lib/core/delegation.ml: Dacs_policy List Printf String
