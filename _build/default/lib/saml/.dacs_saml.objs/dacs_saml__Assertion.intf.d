lib/saml/assertion.mli: Dacs_crypto Dacs_policy Dacs_xml
