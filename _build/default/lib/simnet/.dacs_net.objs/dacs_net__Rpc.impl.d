lib/simnet/rpc.ml: Engine Hashtbl Net Option Printf String
