examples/virtual_organisation.ml: Audit Client Dacs_core Dacs_net Dacs_policy Dacs_ws Domain List Pap Pep Printf Report Vo Wire
