lib/xmlkit/xml_path.mli: Xml
