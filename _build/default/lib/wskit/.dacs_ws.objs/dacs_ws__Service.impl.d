lib/wskit/service.ml: Dacs_net Dacs_xml Option Printf Soap
