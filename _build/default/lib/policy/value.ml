type t =
  | String of string
  | Int of int
  | Bool of bool
  | Double of float
  | Time of float
  | Uri of string

type bag = t list

type data_type = String_t | Int_t | Bool_t | Double_t | Time_t | Uri_t

let type_of = function
  | String _ -> String_t
  | Int _ -> Int_t
  | Bool _ -> Bool_t
  | Double _ -> Double_t
  | Time _ -> Time_t
  | Uri _ -> Uri_t

let type_name = function
  | String_t -> "string"
  | Int_t -> "integer"
  | Bool_t -> "boolean"
  | Double_t -> "double"
  | Time_t -> "time"
  | Uri_t -> "anyURI"

let data_type_of_name = function
  | "string" -> Some String_t
  | "integer" -> Some Int_t
  | "boolean" -> Some Bool_t
  | "double" -> Some Double_t
  | "time" -> Some Time_t
  | "anyURI" -> Some Uri_t
  | _ -> None

let equal a b =
  match (a, b) with
  | String x, String y -> x = y
  | Int x, Int y -> x = y
  | Bool x, Bool y -> x = y
  | Double x, Double y -> x = y
  | Time x, Time y -> x = y
  | Uri x, Uri y -> x = y
  | (String _ | Int _ | Bool _ | Double _ | Time _ | Uri _), _ -> false

let compare_same_type a b =
  match (a, b) with
  | String x, String y -> Ok (compare x y)
  | Int x, Int y -> Ok (compare x y)
  | Double x, Double y -> Ok (compare x y)
  | Time x, Time y -> Ok (compare x y)
  | Uri x, Uri y -> Ok (compare x y)
  | Bool _, Bool _ -> Error "booleans are not ordered"
  | a, b ->
    Error
      (Printf.sprintf "type mismatch: %s vs %s" (type_name (type_of a)) (type_name (type_of b)))

let to_string = function
  | String s -> s
  | Int i -> string_of_int i
  | Bool b -> string_of_bool b
  | Double f -> Printf.sprintf "%g" f
  | Time f -> Printf.sprintf "%g" f
  | Uri u -> u

let of_string dt s =
  match dt with
  | String_t -> Ok (String s)
  | Uri_t -> Ok (Uri s)
  | Int_t -> (
    match int_of_string_opt s with
    | Some i -> Ok (Int i)
    | None -> Error (Printf.sprintf "%S is not an integer" s))
  | Bool_t -> (
    match s with
    | "true" | "1" -> Ok (Bool true)
    | "false" | "0" -> Ok (Bool false)
    | _ -> Error (Printf.sprintf "%S is not a boolean" s))
  | Double_t -> (
    match float_of_string_opt s with
    | Some f -> Ok (Double f)
    | None -> Error (Printf.sprintf "%S is not a double" s))
  | Time_t -> (
    match float_of_string_opt s with
    | Some f -> Ok (Time f)
    | None -> Error (Printf.sprintf "%S is not a time" s))

let describe v = Printf.sprintf "%s:%s" (type_name (type_of v)) (to_string v)

let pp fmt v = Format.pp_print_string fmt (describe v)

let bag_contains bag v = List.exists (equal v) bag

let bag_equal a b =
  let remove_one v l =
    let rec go acc = function
      | [] -> None
      | x :: rest -> if equal x v then Some (List.rev_append acc rest) else go (x :: acc) rest
    in
    go [] l
  in
  let rec go a b =
    match a with
    | [] -> b = []
    | v :: rest -> (
      match remove_one v b with
      | Some b' -> go rest b'
      | None -> false)
  in
  go a b

let bag_intersection a b = List.filter (fun v -> bag_contains b v) a

let bag_union a b =
  let add acc v = if bag_contains acc v then acc else v :: acc in
  List.rev (List.fold_left add (List.fold_left add [] a) b)

let bag_subset a b = List.for_all (fun v -> bag_contains b v) a

let pp_bag fmt bag =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp)
    bag
