lib/saml/assertion.ml: Dacs_crypto Dacs_policy Dacs_xml List Option Printf Result
