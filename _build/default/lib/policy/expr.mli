(** Policy expression language: the XACML condition/apply subset.

    Expressions evaluate to attribute bags.  Functions follow the XACML
    core function set: per-type equality, ordering, arithmetic, logic,
    string operations (including regular-expression match), bag and set
    functions, and the higher-order combinators ([any-of], [all-of],
    [map], …).  Atomic functions require singleton bags, as in the
    standard — reduce designator bags with [<type>-one-and-only] first. *)

type designator = {
  category : Context.category;
  attribute_id : string;
  must_be_present : bool;
      (** When true, an empty bag is a [`Missing_attribute] error (maps to
          Indeterminate); when false it is simply an empty bag. *)
}

type t =
  | Const of Value.t
  | Designator of designator
  | Apply of string * t list  (** function name, arguments *)
  | Function_ref of string
      (** A function passed as an argument to a higher-order function. *)
  | Variable_ref of string
      (** Reference to a policy-level variable definition; must be
          substituted (see {!substitute}) before evaluation. *)

(** {1 Errors} *)

type error_code = Missing_attribute | Processing | Syntax

type error = { code : error_code; message : string }

val error_to_string : error -> string

(** {1 Evaluation} *)

type resolver = Context.category -> string -> Value.bag option
(** PIP hook: consulted when the request context has no values for a
    designator.  [None] means the resolver cannot supply the attribute
    either. *)

val eval : ?resolve:resolver -> Context.t -> t -> (Value.bag, error) result

val eval_condition : ?resolve:resolver -> Context.t -> t -> (bool, error) result
(** The expression must produce exactly one boolean. *)

(** {1 The function registry} *)

val known_function : string -> bool
val function_names : unit -> string list
val function_arity : string -> int option option
(** [None] if unknown; [Some None] if variadic; [Some (Some n)] fixed. *)

val match_function : string -> (Value.t -> Value.t -> (bool, error) result) option
(** Binary boolean functions usable in target matches ([f value attr]). *)

(** {1 Variables} *)

val substitute : (string -> t option) -> t -> (t, string) result
(** Replace every {!Variable_ref} using the lookup; [Error] names the
    first unresolvable variable.  The lookup's results are substituted
    recursively, so definitions may reference other variables (cycles are
    the caller's responsibility — see {!Validate.check_policy}). *)

val variable_refs : t -> string list
(** Distinct referenced variable names. *)

(** {1 Static validation} *)

val validate : t -> string list
(** Structural problems: unknown function names, wrong arities, misplaced
    function references.  Empty list = clean. *)

(** {1 Convenience constructors} *)

val str : string -> t
val int : int -> t
val bool : bool -> t
val time : float -> t
val uri : string -> t
val subject_attr : ?must_be_present:bool -> string -> t
val resource_attr : ?must_be_present:bool -> string -> t
val action_attr : ?must_be_present:bool -> string -> t
val environment_attr : ?must_be_present:bool -> string -> t

val one_of : t -> string list -> t
(** [one_of designator values]: true when some attribute value equals one
    of the given strings ([any-of] over [string-equal]). *)

val pp : Format.formatter -> t -> unit
