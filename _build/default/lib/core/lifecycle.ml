module Policy = Dacs_policy.Policy
module Decision = Dacs_policy.Decision
module Context = Dacs_policy.Context
module Validate = Dacs_policy.Validate
module Xacml = Dacs_policy.Xacml_xml

type state =
  | Draft
  | Reviewed
  | Approved
  | Issued
  | Rejected of string

let state_to_string = function
  | Draft -> "draft"
  | Reviewed -> "reviewed"
  | Approved -> "approved"
  | Issued -> "issued"
  | Rejected reason -> Printf.sprintf "rejected (%s)" reason

type review_report = {
  problems : Validate.problem list;
  conflicts_with_current : Conflict.conflict list;
  test_failures : string list;
}

type entry = {
  policy : Policy.child;
  author : string;
  mutable state : state;
  mutable approvals : string list;
  mutable history : (float * string) list;  (* newest first *)
}

type t = {
  pap : Pap.t;
  approvers : (string * Dacs_crypto.Rsa.public_key) list;
  required_approvals : int;
  now : unit -> float;
  entries : (string, entry) Hashtbl.t;
  mutable next_id : int;
}

let create ~pap ~approvers ?(required_approvals = 1) ~now () =
  if required_approvals < 1 then invalid_arg "Lifecycle.create: required_approvals";
  { pap; approvers; required_approvals; now; entries = Hashtbl.create 16; next_id = 0 }

let log t entry event = entry.history <- (t.now (), event) :: entry.history

let submit t ~author policy =
  let id = Printf.sprintf "draft-%d" t.next_id in
  t.next_id <- t.next_id + 1;
  let entry = { policy; author; state = Draft; approvals = []; history = [] } in
  log t entry (Printf.sprintf "submitted by %s" author);
  Hashtbl.replace t.entries id entry;
  id

let find t draft = Hashtbl.find_opt t.entries draft

let state_of t ~draft = Option.map (fun e -> e.state) (find t draft)

(* Conflicts between the draft and the currently issued policy. *)
let conflicts_with_current t policy =
  match Pap.current t.pap with
  | None -> []
  | Some current ->
    let as_children c =
      match c with
      | Policy.Inline_set s -> s.Policy.children
      | Policy.Inline_policy _ | Policy.Policy_ref _ -> [ c ]
    in
    let set =
      Policy.make_set ~id:"lifecycle-check" (as_children current @ as_children policy)
    in
    (* Keep only conflicts that straddle the draft and the current tree. *)
    let draft_policy_ids =
      let rec ids c =
        match c with
        | Policy.Inline_policy p -> [ p.Policy.id ]
        | Policy.Inline_set s -> List.concat_map ids s.Policy.children
        | Policy.Policy_ref _ -> []
      in
      ids policy
    in
    List.filter
      (fun c ->
        List.mem c.Conflict.permit.Conflict.policy_id draft_policy_ids
        <> List.mem c.Conflict.deny.Conflict.policy_id draft_policy_ids)
      (Conflict.find_in_set set)

let review t ~draft ?(expectations = []) () =
  match find t draft with
  | None -> Error "unknown draft"
  | Some entry -> (
    match entry.state with
    | Issued -> Error "draft is already issued"
    | Draft | Reviewed | Approved | Rejected _ ->
      let problems = Validate.check_child entry.policy in
      let test_failures =
        List.filter_map
          (fun (ctx, expected) ->
            let actual = (Policy.evaluate_child ctx entry.policy).Decision.decision in
            if Decision.equal_decision actual expected then None
            else
              Some
                (Printf.sprintf "expected %s, got %s"
                   (Decision.decision_to_string expected)
                   (Decision.decision_to_string actual)))
          expectations
      in
      let conflicts = conflicts_with_current t entry.policy in
      let report = { problems; conflicts_with_current = conflicts; test_failures } in
      if problems <> [] then begin
        entry.state <- Rejected "validation problems";
        log t entry (Printf.sprintf "review rejected: %d validation problem(s)" (List.length problems))
      end
      else if test_failures <> [] then begin
        entry.state <- Rejected "test expectations failed";
        log t entry (Printf.sprintf "review rejected: %d test failure(s)" (List.length test_failures))
      end
      else begin
        entry.state <- Reviewed;
        entry.approvals <- [];
        log t entry
          (Printf.sprintf "review passed (%d conflict(s) with the current policy noted)"
             (List.length conflicts))
      end;
      Ok report)

let signing_payload t ~draft =
  Option.map
    (fun e -> Dacs_xml.Xml.canonical_string (Xacml.child_to_xml e.policy))
    (find t draft)

let approve t ~draft ~approver ~signature =
  match find t draft with
  | None -> Error "unknown draft"
  | Some entry -> (
    match entry.state with
    | Draft -> Error "draft has not been reviewed"
    | Rejected reason -> Error (Printf.sprintf "draft was rejected: %s" reason)
    | Issued -> Error "draft is already issued"
    | Reviewed | Approved -> (
      match List.assoc_opt approver t.approvers with
      | None -> Error (Printf.sprintf "%s is not a registered approver" approver)
      | Some key ->
        if List.mem approver entry.approvals then Error "already approved by this approver"
        else begin
          let payload = Dacs_xml.Xml.canonical_string (Xacml.child_to_xml entry.policy) in
          if not (Dacs_crypto.Rsa.verify key payload ~signature) then
            Error "approval signature does not verify"
          else begin
            entry.approvals <- approver :: entry.approvals;
            log t entry (Printf.sprintf "approved by %s" approver);
            if List.length entry.approvals >= t.required_approvals then begin
              entry.state <- Approved;
              log t entry "fully approved"
            end;
            Ok (List.length entry.approvals)
          end
        end))

let issue t ~draft =
  match find t draft with
  | None -> Error "unknown draft"
  | Some entry -> (
    match entry.state with
    | Approved ->
      Pap.publish t.pap entry.policy;
      entry.state <- Issued;
      log t entry (Printf.sprintf "issued as PAP version %d" (Pap.version t.pap));
      Ok (Pap.version t.pap)
    | Draft | Reviewed -> Error "draft lacks the required approvals"
    | Rejected reason -> Error (Printf.sprintf "draft was rejected: %s" reason)
    | Issued -> Error "draft is already issued")

let history t ~draft =
  match find t draft with None -> [] | Some e -> List.rev e.history

let drafts t =
  Hashtbl.fold (fun id e acc -> (id, e.state) :: acc) t.entries [] |> List.sort compare
