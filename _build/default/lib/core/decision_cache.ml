type entry = { result : Dacs_policy.Decision.result; expires : float }

type stats = { hits : int; misses : int; expiries : int; evictions : int }

type t = {
  ttl : float;
  max_entries : int;
  table : (string, entry) Hashtbl.t;
  order : string Queue.t;  (* insertion order; may contain superseded keys *)
  mutable stats : stats;
}

let create ?(max_entries = 1024) ~ttl () =
  if ttl < 0.0 then invalid_arg "Decision_cache.create: negative ttl";
  {
    ttl;
    max_entries;
    table = Hashtbl.create 64;
    order = Queue.create ();
    stats = { hits = 0; misses = 0; expiries = 0; evictions = 0 };
  }

let ttl t = t.ttl

let get t ~now ~key =
  match Hashtbl.find_opt t.table key with
  | None ->
    t.stats <- { t.stats with misses = t.stats.misses + 1 };
    None
  | Some e ->
    if now < e.expires then begin
      t.stats <- { t.stats with hits = t.stats.hits + 1 };
      Some e.result
    end
    else begin
      Hashtbl.remove t.table key;
      t.stats <- { t.stats with expiries = t.stats.expiries + 1; misses = t.stats.misses + 1 };
      None
    end

let evict_one t =
  (* Pop queue entries until one still maps to a live table entry. *)
  let rec go () =
    match Queue.take_opt t.order with
    | None -> ()
    | Some key ->
      if Hashtbl.mem t.table key then begin
        Hashtbl.remove t.table key;
        t.stats <- { t.stats with evictions = t.stats.evictions + 1 }
      end
      else go ()
  in
  go ()

let put t ~now ~key result =
  if not (Hashtbl.mem t.table key) && Hashtbl.length t.table >= t.max_entries then evict_one t;
  Hashtbl.replace t.table key { result; expires = now +. t.ttl };
  Queue.add key t.order

let invalidate t ~key = Hashtbl.remove t.table key

let invalidate_all t =
  Hashtbl.reset t.table;
  Queue.clear t.order

let size t = Hashtbl.length t.table

let stats t = t.stats

let request_key ctx =
  (* Environment attributes (notably the current time) are excluded: a
     key that changes every request would never hit.  The price is that a
     cached decision ignores environment-sensitive conditions for one TTL
     — part of the staleness trade the experiments measure. *)
  let module Context = Dacs_policy.Context in
  let module Value = Dacs_policy.Value in
  let section category =
    List.concat_map
      (fun (id, bag) ->
        List.map (fun v -> Printf.sprintf "%s/%s=%s" (Context.category_name category) id (Value.describe v)) bag)
      (Context.attributes ctx category)
  in
  let parts = section Context.Subject @ section Context.Resource @ section Context.Action in
  Dacs_crypto.Sha256.hex_digest (String.concat "|" (List.sort compare parts))
