(** Consolidated management view (§3.2).

    The paper: "it is virtually impossible to obtain a consolidated view
    of the safeguards and security controls that are deployed within the
    entire enterprise ... security systems need a way of providing a
    consolidated view of the access control policy that is enforced."

    These functions gather the live state of every component — PAP
    versions, PDP statistics, per-PEP enforcement counters, audit volumes
    — into one human-readable report for a domain or a whole VO. *)

val domain : Domain.t -> string
val vo : Vo.t -> string
(** The VO report includes every member domain, the consolidated audit
    summary (grants/denies per domain) and the telemetry section. *)

val telemetry : Dacs_ws.Service.t -> string
(** Bus-wide telemetry summary: registry series count, aggregate RPC and
    resilience counters, and tracing volume when tracing is on. *)

val attribution : Dacs_ws.Service.t -> string
(** Latency attribution across the serving path: one line per populated
    stage histogram (ladder by stage, queue wait, L2 round trip, live
    tier call, policy evaluation, PIP fetch) with count, interpolated
    p50/p99, and the exemplars linking buckets back to trace ids. *)

val critical_path : ?trace_id:int64 -> Dacs_ws.Service.t -> string
(** The {!Dacs_telemetry.Trace.critical_path} of [trace_id] (default: the
    first recorded trace) rendered with per-span offsets and durations. *)
