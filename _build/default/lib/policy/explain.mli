(** Decision explanation: why did a request get this answer?

    Multi-domain policy stores are authored by many hands (§3.2
    management), and "poor understanding of how a security policy is being
    enforced" is exactly what the paper warns about.  [explain] evaluates
    a request the same way the engine does while recording, per policy set
    / policy / rule, what its target said, what its condition evaluated
    to, and how the combining algorithm settled the outcome. *)

type node = {
  label : string;  (** e.g. ["policy doctor-read"], ["rule default-deny"] *)
  outcome : string;  (** rendered decision or applicability *)
  detail : string;  (** target/condition/combining specifics; may be [""] *)
  children : node list;
}

val explain :
  ?resolve:Expr.resolver ->
  ?resolve_ref:Policy.ref_resolver ->
  Context.t ->
  Policy.child ->
  node * Decision.result
(** The returned result is exactly what {!Policy.evaluate_child} returns
    for the same inputs (property-tested). *)

val to_string : node -> string
(** Indented tree rendering. *)
