examples/healthcare_federation.ml: Audit Client Conflict Dacs_core Dacs_net Dacs_policy Dacs_rbac Dacs_ws Domain List Meta_policy Pep Printf Vo Wire
