lib/core/vo.ml: Audit Capability_service Client Dacs_crypto Dacs_net Dacs_policy Dacs_ws Domain Idp List Pap Printf
