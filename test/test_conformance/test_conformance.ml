(* Golden conformance corpus for the combining algorithms.

   Each case pins the implemented semantics of one edge interaction —
   empty sets, all-NotApplicable children, Indeterminate propagation,
   obligation merge order — as a (policy, request, expected) triple.

   Note on Indeterminate: XACML 3.0 refines Indeterminate into
   Indeterminate{D}, {P} and {DP} and lets e.g. deny-overrides turn
   Indeterminate{D} + Deny into Deny.  This engine carries a single
   Indeterminate (with the error message), i.e. it conservatively treats
   every evaluation error as a potential decision of either effect.  The
   cases below pin that coarsening explicitly wherever the two semantics
   diverge, so any future refinement has to revisit them deliberately. *)

module Policy = Dacs_policy.Policy
module Rule = Dacs_policy.Rule
module Target = Dacs_policy.Target
module Expr = Dacs_policy.Expr
module Combine = Dacs_policy.Combine
module Context = Dacs_policy.Context
module Decision = Dacs_policy.Decision
module Obligation = Dacs_policy.Obligation
module Value = Dacs_policy.Value

let ctx =
  Context.make
    ~subject:[ ("subject-id", Value.String "alice"); ("role", Value.String "user") ]
    ~resource:[ ("resource-id", Value.String "doc") ]
    ~action:[ ("action-id", Value.String "read") ]
    ()

(* Building blocks: one rule per behaviour, wrapped one-per-policy so a
   child policy's decision is exactly its rule's. *)
let permit_rule id = Rule.permit id
let deny_rule id = Rule.deny id

let na_rule id = Rule.permit ~target:Target.(any |> subject_is "role" "nobody") id

let indet_rule id =
  (* A condition over a designator that must be present but is not: the
     canonical missing-attribute evaluation error. *)
  Rule.permit ~condition:(Expr.one_of (Expr.subject_attr ~must_be_present:true "clearance") [ "x" ]) id

let policy_of ?obligations id rule =
  Policy.Inline_policy (Policy.make ?obligations ~id ~rule_combining:Combine.First_applicable [ rule ])

(* NotApplicable by *policy target* — what only-one-applicable's
   applicability test inspects (a child whose target matches but whose
   rules all fall through is still "applicable" to that algorithm). *)
let na_policy id =
  Policy.Inline_policy
    (Policy.make ~id ~target:Target.(any |> subject_is "role" "nobody") [ Rule.permit "r" ])

let set alg ?obligations children =
  Policy.make_set ~id:"set" ~policy_combining:alg ?obligations children

let eval_set s = Policy.evaluate_set ctx s

let decision = Alcotest.testable Decision.pp (fun a b ->
    Decision.equal_decision a.Decision.decision b.Decision.decision
    && List.length a.Decision.obligations = List.length b.Decision.obligations
    && List.for_all2 Obligation.equal a.Decision.obligations b.Decision.obligations)

let check name expected actual () = Alcotest.check decision name expected actual

let indet = Decision.indeterminate "any message"

let ob id = Obligation.make ~fulfill_on:Obligation.Permit ("urn:test:" ^ id)
let ob_deny id = Obligation.make ~fulfill_on:Obligation.Deny ("urn:test:" ^ id)

let with_obs decision obs = { decision with Decision.obligations = obs }

let all_algorithms =
  [
    ("deny-overrides", Combine.Deny_overrides);
    ("permit-overrides", Combine.Permit_overrides);
    ("first-applicable", Combine.First_applicable);
    ("only-one-applicable", Combine.Only_one_applicable);
    ("ordered-deny-overrides", Combine.Ordered_deny_overrides);
    ("ordered-permit-overrides", Combine.Ordered_permit_overrides);
  ]

(* --- empty and all-NotApplicable sets ---------------------------------- *)

let empty_set_cases =
  List.map
    (fun (name, alg) ->
      Alcotest.test_case (name ^ ": empty policy set -> NotApplicable") `Quick
        (check "empty set" Decision.not_applicable (eval_set (set alg []))))
    all_algorithms

let all_na_cases =
  List.map
    (fun (name, alg) ->
      Alcotest.test_case (name ^ ": all children NotApplicable -> NotApplicable") `Quick
        (check "all NA" Decision.not_applicable
           (eval_set (set alg [ na_policy "na1"; na_policy "na2" ]))))
    all_algorithms

(* --- Indeterminate interactions ---------------------------------------- *)

let indeterminate_cases =
  [
    (* deny-overrides: an Indeterminate is a potential Deny and decides
       immediately — even when an actual Deny follows.  (XACML 3.0
       deny-overrides would refine Indeterminate{D} + Deny to Deny; the
       single-Indeterminate coarsening reports the error instead.) *)
    Alcotest.test_case "deny-overrides: Permit + Indeterminate -> Indeterminate" `Quick
      (check "potential deny" indet
         (eval_set
            (set Combine.Deny_overrides
               [ policy_of "p" (permit_rule "r1"); policy_of "i" (indet_rule "r2") ])));
    Alcotest.test_case "deny-overrides: Indeterminate short-circuits before a later Deny" `Quick
      (check "coarsened Indeterminate{D}+D" indet
         (eval_set
            (set Combine.Deny_overrides
               [ policy_of "i" (indet_rule "r1"); policy_of "d" (deny_rule "r2") ])));
    Alcotest.test_case "deny-overrides: Deny wins over earlier Permit" `Quick
      (check "deny wins" Decision.deny
         (eval_set
            (set Combine.Deny_overrides
               [ policy_of "p" (permit_rule "r1"); policy_of "d" (deny_rule "r2") ])));
    (* permit-overrides: a Permit still wins over an earlier error, but an
       unresolved error outweighs Deny — the potential Permit cannot be
       ruled out.  (Coarsening of XACML's Indeterminate{P} vs {DP}.) *)
    Alcotest.test_case "permit-overrides: Indeterminate then Permit -> Permit" `Quick
      (check "permit wins" Decision.permit
         (eval_set
            (set Combine.Permit_overrides
               [ policy_of "i" (indet_rule "r1"); policy_of "p" (permit_rule "r2") ])));
    Alcotest.test_case "permit-overrides: Deny + Indeterminate -> Indeterminate" `Quick
      (check "potential permit" indet
         (eval_set
            (set Combine.Permit_overrides
               [ policy_of "d" (deny_rule "r1"); policy_of "i" (indet_rule "r2") ])));
    Alcotest.test_case "first-applicable: Indeterminate stops the scan" `Quick
      (check "error propagates" indet
         (eval_set
            (set Combine.First_applicable
               [ policy_of "i" (indet_rule "r1"); policy_of "p" (permit_rule "r2") ])));
    Alcotest.test_case "first-applicable: NotApplicable children are skipped" `Quick
      (check "first applicable decides" Decision.deny
         (eval_set
            (set Combine.First_applicable
               [ policy_of "na" (na_rule "r1"); policy_of "d" (deny_rule "r2");
                 policy_of "p" (permit_rule "r3") ])));
    Alcotest.test_case "only-one-applicable: exactly one applicable -> its decision" `Quick
      (check "sole applicable" Decision.permit
         (eval_set
            (set Combine.Only_one_applicable
               [ na_policy "na"; policy_of "p" (permit_rule "r2") ])));
    Alcotest.test_case "only-one-applicable: two applicable -> Indeterminate" `Quick
      (check "ambiguous" indet
         (eval_set
            (set Combine.Only_one_applicable
               [ policy_of "p1" (permit_rule "r1"); policy_of "p2" (permit_rule "r2") ])));
    (* Applicability means *target* applicability: children whose targets
       match are "applicable" even if every rule inside falls through. *)
    Alcotest.test_case "only-one-applicable: applicability is target match, not rule outcome" `Quick
      (check "two matching targets" indet
         (eval_set
            (set Combine.Only_one_applicable
               [ policy_of "na1" (na_rule "r1"); policy_of "na2" (na_rule "r2") ])));
  ]

(* --- obligation merge order -------------------------------------------- *)

let obligation_cases =
  [
    (* deny-overrides evaluates every non-deciding child: both permits
       contribute, in document order, then the set's own obligations. *)
    Alcotest.test_case "obligations merge in document order (children then set)" `Quick
      (check "document order"
         (with_obs Decision.permit [ ob "a"; ob "b"; ob "set" ])
         (eval_set
            (set Combine.Deny_overrides
               ~obligations:[ ob "set"; ob_deny "set-d" ]
               [
                 policy_of ~obligations:[ ob "a" ] "pa" (permit_rule "r1");
                 policy_of ~obligations:[ ob "b" ] "pb" (permit_rule "r2");
               ])));
    (* A deciding Deny collects only deny-matching obligations. *)
    Alcotest.test_case "deny collects only the denying child's obligations" `Quick
      (check "deny obligations"
         (with_obs Decision.deny [ ob_deny "d"; ob_deny "set-d" ])
         (eval_set
            (set Combine.Deny_overrides
               ~obligations:[ ob "set"; ob_deny "set-d" ]
               [
                 policy_of ~obligations:[ ob "a" ] "pa" (permit_rule "r1");
                 policy_of ~obligations:[ ob_deny "d" ] "pd" (deny_rule "r2");
               ])));
    (* permit-overrides short-circuits on the first Permit: later permits
       never evaluate, so only the deciding child's obligations attach. *)
    Alcotest.test_case "permit-overrides short-circuit keeps only the deciding permit's obligations"
      `Quick
      (check "short-circuit"
         (with_obs Decision.permit [ ob "a" ])
         (eval_set
            (set Combine.Permit_overrides
               [
                 policy_of ~obligations:[ ob "a" ] "pa" (permit_rule "r1");
                 policy_of ~obligations:[ ob "b" ] "pb" (permit_rule "r2");
               ])));
    (* Obligations on the losing effect never leak into the decision. *)
    Alcotest.test_case "obligations filter by effect" `Quick
      (check "effect filter"
         (with_obs Decision.permit [ ob "a" ])
         (eval_set
            (set Combine.Deny_overrides
               [ policy_of ~obligations:[ ob "a"; ob_deny "never" ] "pa" (permit_rule "r1") ])));
  ]

let () =
  Alcotest.run "dacs_conformance"
    [
      ("empty-sets", empty_set_cases);
      ("all-not-applicable", all_na_cases);
      ("indeterminate", indeterminate_cases);
      ("obligations", obligation_cases);
    ]
