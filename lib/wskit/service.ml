module Xml = Dacs_xml.Xml
module Rpc = Dacs_net.Rpc

type t = { rpc : Rpc.t }

let create rpc = { rpc }

let rpc t = t.rpc
let net t = Rpc.net t.rpc
let metrics t = Rpc.metrics t.rpc
let tracer t = Rpc.tracer t.rpc

type handler =
  caller:Dacs_net.Net.node_id ->
  headers:Xml.t list ->
  Xml.t ->
  (Xml.t -> unit) ->
  unit

let serve t ~node ~service (handler : handler) =
  Rpc.serve t.rpc ~node ~service (fun ~caller payload reply ->
      let reply_body ?headers body = reply (Soap.to_string { Soap.headers = Option.value headers ~default:[]; body }) in
      match Soap.parse payload with
      | Error e -> reply_body (Soap.fault_body { Soap.code = "soap:Sender"; reason = e })
      | Ok envelope ->
        handler ~caller ~headers:envelope.Soap.headers envelope.Soap.body (fun body ->
            reply_body body))

type error =
  | Transport of Rpc.error
  | Fault of Soap.fault
  | Malformed of string

let error_to_string = function
  | Transport e -> Rpc.error_to_string e
  | Fault f -> Printf.sprintf "fault %s: %s" f.Soap.code f.Soap.reason
  | Malformed m -> Printf.sprintf "malformed response: %s" m

let decode_response k result =
  match result with
  | Error e -> k (Error (Transport e))
  | Ok response -> (
    match Soap.parse response with
    | Error e -> k (Error (Malformed e))
    | Ok envelope -> (
      match Soap.fault_of_body envelope.Soap.body with
      | Some f -> k (Error (Fault f))
      | None -> k (Ok envelope.Soap.body)))

let call t ~src ~dst ~service ?timeout ?headers body k =
  let payload = Soap.to_string { Soap.headers = Option.value headers ~default:[]; body } in
  Rpc.call t.rpc ~src ~dst ~service ?timeout payload (decode_response k)

let call_resilient t ~src ~dst ~service ?timeout ?retry ?notify ?headers body k =
  let payload = Soap.to_string { Soap.headers = Option.value headers ~default:[]; body } in
  Rpc.call_resilient t.rpc ~src ~dst ~service ?timeout ?retry ?notify payload (decode_response k)

let decode_one response =
  match Soap.parse response with
  | Error e -> Error (Malformed e)
  | Ok envelope -> (
    match Soap.fault_of_body envelope.Soap.body with
    | Some f -> Error (Fault f)
    | None -> Ok envelope.Soap.body)

let call_batch_resilient t ~src ~dst ~service ?timeout ?retry ?notify ?headers bodies k =
  let headers = Option.value headers ~default:[] in
  let payloads = List.map (fun body -> Soap.to_string { Soap.headers = headers; body }) bodies in
  Rpc.call_batch_resilient t.rpc ~src ~dst ~service ?timeout ?retry ?notify payloads
    (fun result ->
      match result with
      | Error e -> k (Error (Transport e))
      | Ok replies -> k (Ok (List.map decode_one replies)))
