examples/quickstart.mli:
