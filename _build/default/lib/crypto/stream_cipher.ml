let key_bytes = 32
let nonce_bytes = 16

let keystream ~key ~nonce len =
  let buf = Buffer.create (len + 32) in
  let counter = ref 0 in
  while Buffer.length buf < len do
    Buffer.add_string buf (Hmac.sha256 ~key (nonce ^ string_of_int !counter));
    incr counter
  done;
  Buffer.sub buf 0 len

let xor_with ~key ~nonce data =
  let ks = keystream ~key ~nonce (String.length data) in
  String.init (String.length data) (fun i -> Char.chr (Char.code data.[i] lxor Char.code ks.[i]))

let encrypt rng ~key plain =
  if String.length key <> key_bytes then invalid_arg "Stream_cipher.encrypt: bad key size";
  let nonce = Rng.bytes rng nonce_bytes in
  nonce ^ xor_with ~key ~nonce plain

let decrypt ~key data =
  if String.length key <> key_bytes then invalid_arg "Stream_cipher.decrypt: bad key size";
  if String.length data < nonce_bytes then None
  else begin
    let nonce = String.sub data 0 nonce_bytes in
    let cipher = String.sub data nonce_bytes (String.length data - nonce_bytes) in
    Some (xor_with ~key ~nonce cipher)
  end

let derive_key material = Sha256.digest ("dacs-key-derivation:" ^ material)
