type window = { from_ : float; until_ : float }

type spec =
  | Latency_spike of { a : Net.node_id; b : Net.node_id; latency : float; window : window }
  | Drop_burst of { rate : float; window : window }
  | Crash_restart of { node : Net.node_id; at : float; restart : float option }
  | Flapping_partition of {
      group_a : Net.node_id list;
      group_b : Net.node_id list;
      period : float;
      window : window;
    }
  | Slow_node of { node : Net.node_id; extra : float; window : window }

let describe = function
  | Latency_spike { a; b; latency; window } ->
    Printf.sprintf "latency-spike %s<->%s to %.3fs during [%.2f,%.2f]" a b latency window.from_
      window.until_
  | Drop_burst { rate; window } ->
    Printf.sprintf "drop-burst p=%.2f during [%.2f,%.2f]" rate window.from_ window.until_
  | Crash_restart { node; at; restart } ->
    Printf.sprintf "crash %s at %.2f%s" node at
      (match restart with None -> " (no restart)" | Some r -> Printf.sprintf ", restart at %.2f" r)
  | Flapping_partition { group_a; group_b; period; window } ->
    Printf.sprintf "flapping-partition {%s}|{%s} period %.2fs during [%.2f,%.2f]"
      (String.concat "," group_a) (String.concat "," group_b) period window.from_ window.until_
  | Slow_node { node; extra; window } ->
    Printf.sprintf "slow-node %s +%.3fs during [%.2f,%.2f]" node extra window.from_ window.until_

let validate spec =
  let bad fmt = Printf.ksprintf invalid_arg fmt in
  let check_window w ctx =
    if w.until_ <= w.from_ || w.from_ < 0.0 then
      bad "Faults: %s window [%.2f,%.2f] is empty or negative" ctx w.from_ w.until_
  in
  match spec with
  | Latency_spike { latency; window; _ } ->
    check_window window "latency-spike";
    if latency < 0.0 then bad "Faults: negative spike latency"
  | Drop_burst { rate; window } ->
    check_window window "drop-burst";
    if rate < 0.0 || rate > 1.0 then bad "Faults: drop rate %.2f outside [0,1]" rate
  | Crash_restart { at; restart; _ } ->
    if at < 0.0 then bad "Faults: crash time is negative";
    (match restart with
    | Some r when r <= at -> bad "Faults: restart %.2f not after crash %.2f" r at
    | Some _ | None -> ())
  | Flapping_partition { period; window; _ } ->
    check_window window "flapping-partition";
    if period <= 0.0 then bad "Faults: flap period must be positive"
  | Slow_node { extra; window; _ } ->
    check_window window "slow-node";
    if extra < 0.0 then bad "Faults: negative slow-node delay"

(* Fire [f] at absolute time [at], immediately if [at] is already past —
   lets a schedule be applied to a network whose clock has advanced. *)
let at_time net ~at f =
  let engine = Net.engine net in
  if at <= Engine.now engine then f () else Engine.schedule_at engine ~at f

(* Overlapping windows of one fault class must compose, not fight: a naive
   save-at-open/restore-at-close leaves the *first* fault's value behind
   forever when windows interleave (open A, open B, close A, close B
   restores B's snapshot of A's fault).  So [apply] keeps one composition
   state per resource — link, global drop rate, node liveness — capturing
   the pre-fault baseline the first time a fault touches it and
   recomputing the effective value at every window edge.  With all
   windows closed, every resource is provably back at its baseline. *)

type link_comp = {
  lc_base : float option;  (* override in place before any fault *)
  lc_base_latency : float;  (* effective latency before any fault *)
  mutable lc_spikes : float list;
  mutable lc_extras : float list;
}

let remove_one x xs =
  let rec go = function [] -> [] | y :: rest -> if y = x then rest else y :: go rest in
  go xs

let apply ?tracer net specs =
  List.iter validate specs;
  (* Window edges as trace events, scheduled before the state mutations so
     the note fires first at equal timestamps. *)
  (match tracer with
  | None -> ()
  | Some tr ->
    let note at msg = at_time net ~at (fun () -> Dacs_telemetry.Trace.record tr msg) in
    List.iter
      (fun spec ->
        let from_, until_ =
          match spec with
          | Latency_spike { window; _ }
          | Drop_burst { window; _ }
          | Flapping_partition { window; _ }
          | Slow_node { window; _ } -> (window.from_, Some window.until_)
          | Crash_restart { at; restart; _ } -> (at, restart)
        in
        note from_ ("fault-open: " ^ describe spec);
        Option.iter (fun u -> note u ("fault-cleared: " ^ describe spec)) until_)
      specs);
  (* Per-link state: a spike pins the latency (highest active spike wins),
     slow-node extras add on top, and an untouched link shows its
     baseline. *)
  let links = Hashtbl.create 8 in
  let link a b =
    let key = if a <= b then (a, b) else (b, a) in
    match Hashtbl.find_opt links key with
    | Some c -> c
    | None ->
      let c =
        {
          lc_base = Net.latency_override net a b;
          lc_base_latency = Net.latency net a b;
          lc_spikes = [];
          lc_extras = [];
        }
      in
      Hashtbl.replace links key c;
      c
  in
  let recompute_link a b =
    let c = link a b in
    match (c.lc_spikes, c.lc_extras) with
    | [], [] -> (
      match c.lc_base with
      | Some l -> Net.set_latency net a b l
      | None -> Net.clear_latency net a b)
    | spikes, extras ->
      let pinned =
        match spikes with
        | [] -> c.lc_base_latency
        | s :: rest -> List.fold_left Float.max s rest
      in
      Net.set_latency net a b (pinned +. List.fold_left ( +. ) 0.0 extras)
  in
  (* Global drop rate: the harshest active burst wins. *)
  let base_drop = ref None in
  let bursts = ref [] in
  let recompute_drop () =
    match !bursts with
    | [] -> Net.set_drop_rate net (Option.value !base_drop ~default:0.0)
    | rs -> Net.set_drop_rate net (List.fold_left Float.max 0.0 rs)
  in
  (* Node liveness: recover only once every crash window has closed. *)
  let crash_depth = Hashtbl.create 4 in
  let apply_one spec =
    match spec with
    | Latency_spike { a; b; latency; window } ->
      at_time net ~at:window.from_ (fun () ->
          let c = link a b in
          c.lc_spikes <- latency :: c.lc_spikes;
          recompute_link a b);
      at_time net ~at:window.until_ (fun () ->
          let c = link a b in
          c.lc_spikes <- remove_one latency c.lc_spikes;
          recompute_link a b)
    | Drop_burst { rate; window } ->
      at_time net ~at:window.from_ (fun () ->
          if !base_drop = None then base_drop := Some (Net.drop_rate net);
          bursts := rate :: !bursts;
          recompute_drop ());
      at_time net ~at:window.until_ (fun () ->
          bursts := remove_one rate !bursts;
          recompute_drop ())
    | Crash_restart { node; at; restart } ->
      at_time net ~at (fun () ->
          if Net.has_node net node then begin
            let depth = Option.value (Hashtbl.find_opt crash_depth node) ~default:0 in
            Hashtbl.replace crash_depth node (depth + 1);
            Net.crash net node
          end);
      Option.iter
        (fun r ->
          at_time net ~at:r (fun () ->
              if Net.has_node net node then begin
                let depth = Option.value (Hashtbl.find_opt crash_depth node) ~default:1 in
                Hashtbl.replace crash_depth node (depth - 1);
                if depth <= 1 then Net.recover net node
              end))
        restart
    | Flapping_partition { group_a; group_b; period; window } ->
      let rec flip cut at =
        if at < window.until_ then
          at_time net ~at (fun () ->
              if cut then Net.partition net group_a group_b
              else Net.unpartition net group_a group_b;
              flip (not cut) (at +. period))
      in
      flip true window.from_;
      at_time net ~at:window.until_ (fun () -> Net.unpartition net group_a group_b)
    | Slow_node { node; extra; window } ->
      (* Peers resolved at window open so late-added nodes are covered. *)
      at_time net ~at:window.from_ (fun () ->
          List.iter
            (fun p ->
              if p <> node then begin
                let c = link node p in
                c.lc_extras <- extra :: c.lc_extras;
                recompute_link node p
              end)
            (Net.nodes net));
      at_time net ~at:window.until_ (fun () ->
          List.iter
            (fun p ->
              if p <> node then begin
                let c = link node p in
                if List.mem extra c.lc_extras then begin
                  c.lc_extras <- remove_one extra c.lc_extras;
                  recompute_link node p
                end
              end)
            (Net.nodes net))
  in
  List.iter apply_one specs

let clears_by specs =
  List.fold_left
    (fun acc spec ->
      let upper =
        match spec with
        | Latency_spike { window; _ }
        | Drop_burst { window; _ }
        | Flapping_partition { window; _ }
        | Slow_node { window; _ } -> Some window.until_
        | Crash_restart { restart; _ } -> restart
      in
      match (acc, upper) with
      | None, _ | _, None -> None
      | Some a, Some u -> Some (Float.max a u))
    (Some 0.0) specs

let random_schedule ~rng ~nodes ~horizon =
  if nodes = [] then invalid_arg "Faults.random_schedule: no nodes";
  if horizon <= 0.0 then invalid_arg "Faults.random_schedule: horizon must be positive";
  let module Rng = Dacs_crypto.Rng in
  let pick () = Rng.pick rng nodes in
  let window () =
    let from_ = Rng.float rng (horizon *. 0.6) in
    let until_ = from_ +. 0.05 +. Rng.float rng (horizon *. 0.3) in
    { from_; until_ }
  in
  let n = 1 + Rng.int rng 5 in
  List.init n (fun _ ->
      match Rng.int rng 5 with
      | 0 -> Latency_spike { a = pick (); b = pick (); latency = Rng.float rng 3.0; window = window () }
      | 1 -> Drop_burst { rate = 0.2 +. Rng.float rng 0.7; window = window () }
      | 2 ->
        let at = Rng.float rng (horizon *. 0.6) in
        Crash_restart { node = pick (); at; restart = Some (at +. 0.05 +. Rng.float rng (horizon *. 0.3)) }
      | 3 ->
        Flapping_partition
          {
            group_a = [ pick () ];
            group_b = [ pick () ];
            period = 0.1 +. Rng.float rng 0.5;
            window = window ();
          }
      | _ -> Slow_node { node = pick (); extra = 0.2 +. Rng.float rng 2.0; window = window () })
