(* Tests for dacs_saml (assertions) and dacs_ws (SOAP, WS-Security,
   services over the simulated network). *)

module Xml = Dacs_xml.Xml
module Value = Dacs_policy.Value
module Decision = Dacs_policy.Decision
open Dacs_crypto
open Dacs_saml
open Dacs_ws

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let idp_kp = lazy (Rsa.generate (Rng.create 100L) ~bits:512)
let other_kp = lazy (Rsa.generate (Rng.create 101L) ~bits:512)

let sample_assertion () =
  Assertion.make ~id:"a1" ~issuer:"idp.domain-a" ~subject:"alice" ~issued_at:100.0 ~validity:50.0
    [
      Assertion.Attribute_statement [ ("role", Value.String "doctor"); ("clearance", Value.Int 3) ];
      Assertion.Authz_decision_statement
        { resource = "charts"; action = "read"; decision = Decision.Permit };
    ]

(* --- assertions ----------------------------------------------------------- *)

let test_assertion_sign_verify () =
  let a = Assertion.sign (Lazy.force idp_kp).Rsa.private_ (sample_assertion ()) in
  check bool_ "verifies" true (Assertion.verify (Lazy.force idp_kp).Rsa.public a);
  check bool_ "wrong key" false (Assertion.verify (Lazy.force other_kp).Rsa.public a);
  check bool_ "unsigned fails" false (Assertion.verify (Lazy.force idp_kp).Rsa.public (sample_assertion ()));
  (* Tampering with content invalidates the signature. *)
  let tampered = { a with Assertion.subject = "mallory" } in
  check bool_ "tamper detected" false (Assertion.verify (Lazy.force idp_kp).Rsa.public tampered)

let test_assertion_validity_window () =
  let a = sample_assertion () in
  check bool_ "inside" true (Assertion.valid_at a 120.0);
  check bool_ "start inclusive" true (Assertion.valid_at a 100.0);
  check bool_ "end exclusive" false (Assertion.valid_at a 150.0);
  check bool_ "before" false (Assertion.valid_at a 99.0)

let test_assertion_validate () =
  let a = Assertion.sign (Lazy.force idp_kp).Rsa.private_ (sample_assertion ()) in
  let trusted_key = function
    | "idp.domain-a" -> Some (Lazy.force idp_kp).Rsa.public
    | _ -> None
  in
  check bool_ "accepted" true (Assertion.validate ~trusted_key ~now:120.0 a = Ok ());
  check bool_ "expired" true (Assertion.validate ~trusted_key ~now:200.0 a = Error Assertion.Expired);
  check bool_ "not yet valid" true
    (Assertion.validate ~trusted_key ~now:50.0 a = Error Assertion.Not_yet_valid);
  check bool_ "unknown issuer" true
    (Assertion.validate ~trusted_key:(fun _ -> None) ~now:120.0 a
    = Error (Assertion.Unknown_issuer "idp.domain-a"));
  check bool_ "unsigned" true
    (Assertion.validate ~trusted_key ~now:120.0 (sample_assertion ()) = Error Assertion.Not_signed);
  let forged =
    Assertion.sign (Lazy.force other_kp).Rsa.private_ (sample_assertion ())
  in
  check bool_ "bad signature" true
    (Assertion.validate ~trusted_key ~now:120.0 forged = Error Assertion.Bad_signature)

let test_assertion_content () =
  let a = sample_assertion () in
  check int_ "attributes" 2 (List.length (Assertion.attributes a));
  check int_ "decisions" 1 (List.length (Assertion.decisions a));
  check bool_ "permits" true (Assertion.permits a ~resource:"charts" ~action:"read");
  check bool_ "no permit for write" false (Assertion.permits a ~resource:"charts" ~action:"write")

let test_assertion_xml_roundtrip () =
  let a = Assertion.sign (Lazy.force idp_kp).Rsa.private_ (sample_assertion ()) in
  match Assertion.of_string (Assertion.to_string a) with
  | Error e -> Alcotest.fail e
  | Ok a' ->
    check string_ "id" a.Assertion.id a'.Assertion.id;
    check string_ "issuer" a.Assertion.issuer a'.Assertion.issuer;
    check int_ "statements" 2 (List.length a'.Assertion.statements);
    (* Signature survives the round-trip and still verifies. *)
    check bool_ "still verifies" true (Assertion.verify (Lazy.force idp_kp).Rsa.public a');
    check bool_ "permits preserved" true (Assertion.permits a' ~resource:"charts" ~action:"read")

let test_assertion_xml_errors () =
  check bool_ "not xml" true (Result.is_error (Assertion.of_string "junk"));
  check bool_ "wrong element" true (Result.is_error (Assertion.of_string "<Wat/>"));
  check bool_ "missing fields" true (Result.is_error (Assertion.of_string "<Assertion ID=\"a\"/>"))

(* --- soap ---------------------------------------------------------------------- *)

let test_soap_roundtrip () =
  let body = Xml.element "Query" ~attrs:[ ("kind", "decision") ] ~children:[ Xml.text "payload" ] in
  let headers = [ Xml.element "Routing" ~attrs:[ ("to", "pdp") ] ] in
  let s = Soap.to_string { Soap.headers; body } in
  match Soap.parse s with
  | Error e -> Alcotest.fail e
  | Ok env ->
    check int_ "headers" 1 (List.length env.Soap.headers);
    check string_ "body tag" "Query" (Xml.tag env.Soap.body);
    check string_ "body text" "payload" (Xml.text_content env.Soap.body)

let test_soap_no_header_section () =
  let s = Soap.to_string { Soap.headers = []; body = Xml.element "X" } in
  (* No empty <Header> element is emitted. *)
  check bool_ "no header element" false
    (Xml.find_child (Xml.of_string s) "Header" <> None);
  match Soap.parse s with
  | Ok env -> check int_ "parses with zero headers" 0 (List.length env.Soap.headers)
  | Error e -> Alcotest.fail e

let test_soap_errors () =
  check bool_ "not xml" true (Result.is_error (Soap.parse "junk"));
  check bool_ "no envelope" true (Result.is_error (Soap.parse "<X/>"));
  check bool_ "no body" true (Result.is_error (Soap.parse "<soap:Envelope/>"));
  check bool_ "empty body" true (Result.is_error (Soap.parse "<soap:Envelope><soap:Body/></soap:Envelope>"));
  check bool_ "two body elements" true
    (Result.is_error (Soap.parse "<soap:Envelope><soap:Body><A/><B/></soap:Body></soap:Envelope>"))

let test_soap_fault () =
  let f = { Soap.code = "soap:Sender"; reason = "bad request" } in
  match Soap.fault_of_body (Soap.fault_body f) with
  | Some f' ->
    check string_ "code" "soap:Sender" f'.Soap.code;
    check string_ "reason" "bad request" f'.Soap.reason;
    check bool_ "non-fault" true (Soap.fault_of_body (Xml.element "X") = None)
  | None -> Alcotest.fail "expected a fault"

(* --- ws-security -------------------------------------------------------------------- *)

let ca_kp = lazy (Rsa.generate (Rng.create 102L) ~bits:512)
let svc_kp = lazy (Rsa.generate (Rng.create 103L) ~bits:512)

let ca_cert () =
  Cert.self_signed (Lazy.force ca_kp) ~subject:"cn=dacs-ca" ~serial:1 ~not_before:0.0 ~not_after:1e9

let svc_cert ca =
  Cert.issue ~ca_key:(Lazy.force ca_kp).Rsa.private_ ~ca_cert:ca ~subject:"cn=pdp.domain-a"
    ~public_key:(Lazy.force svc_kp).Rsa.public ~serial:2 ~not_before:0.0 ~not_after:1e9

let test_security_sign_verify () =
  let ca = ca_cert () in
  let cert = svc_cert ca in
  let trust = Cert.Trust_store.add Cert.Trust_store.empty ca in
  let env = { Soap.headers = []; body = Xml.element "Decision" ~children:[ Xml.text "Permit" ] } in
  let signed = Security.sign ~key:(Lazy.force svc_kp).Rsa.private_ ~cert env in
  check bool_ "is_signed" true (Security.is_signed signed);
  check bool_ "plain is not" false (Security.is_signed env);
  (match Security.verify ~trust ~now:100.0 signed with
  | Ok signer -> check string_ "signer" "cn=pdp.domain-a" signer.Cert.subject
  | Error e -> Alcotest.fail (Security.error_to_string e));
  (* Tampered body fails. *)
  let tampered = { signed with Soap.body = Xml.element "Decision" ~children:[ Xml.text "Deny" ] } in
  check bool_ "tamper detected" true
    (Security.verify ~trust ~now:100.0 tampered = Error Security.Invalid_signature);
  check bool_ "unsigned rejected" true
    (Security.verify ~trust ~now:100.0 env = Error Security.Not_signed)

let test_security_untrusted_signer () =
  let ca = ca_cert () in
  let trust = Cert.Trust_store.add Cert.Trust_store.empty ca in
  (* Self-signed cert not in the store. *)
  let rogue_kp = Rsa.generate (Rng.create 104L) ~bits:512 in
  let rogue = Cert.self_signed rogue_kp ~subject:"cn=rogue" ~serial:9 ~not_before:0.0 ~not_after:1e9 in
  let env = { Soap.headers = []; body = Xml.element "X" } in
  let signed = Security.sign ~key:rogue_kp.Rsa.private_ ~cert:rogue env in
  match Security.verify ~trust ~now:100.0 signed with
  | Error (Security.Untrusted_signer s) -> check string_ "named" "cn=rogue" s
  | _ -> Alcotest.fail "expected Untrusted_signer"

let test_security_expired_cert () =
  let ca = ca_cert () in
  let trust = Cert.Trust_store.add Cert.Trust_store.empty ca in
  let short_lived =
    Cert.issue ~ca_key:(Lazy.force ca_kp).Rsa.private_ ~ca_cert:ca ~subject:"cn=brief"
      ~public_key:(Lazy.force svc_kp).Rsa.public ~serial:3 ~not_before:0.0 ~not_after:10.0
  in
  let env = { Soap.headers = []; body = Xml.element "X" } in
  let signed = Security.sign ~key:(Lazy.force svc_kp).Rsa.private_ ~cert:short_lived env in
  check bool_ "valid before expiry" true (Result.is_ok (Security.verify ~trust ~now:5.0 signed));
  check bool_ "rejected after expiry" true (Result.is_error (Security.verify ~trust ~now:20.0 signed))

let test_security_size_overhead () =
  (* Signed envelopes are measurably bigger — the §3.2 claim. *)
  let ca = ca_cert () in
  let cert = svc_cert ca in
  let env = { Soap.headers = []; body = Xml.element "Q" ~children:[ Xml.text "tiny" ] } in
  let plain_size = String.length (Soap.to_string env) in
  let signed = Security.sign ~key:(Lazy.force svc_kp).Rsa.private_ ~cert env in
  let signed_size = String.length (Soap.to_string signed) in
  check bool_ "signed larger" true (signed_size > plain_size + 200)

let test_encrypt_decrypt_body () =
  let rng = Rng.create 105L in
  let key = Stream_cipher.derive_key "session" in
  let env = { Soap.headers = []; body = Xml.element "Secret" ~children:[ Xml.text "classified" ] } in
  let enc = Security.encrypt_body rng ~key env in
  check bool_ "encrypted" true (Security.is_encrypted enc);
  check bool_ "plain not" false (Security.is_encrypted env);
  (* Ciphertext does not contain the plaintext. *)
  let enc_str = Soap.to_string enc in
  check bool_ "content hidden" false
    (let rec contains i =
       i + 10 <= String.length enc_str && (String.sub enc_str i 10 = "classified" || contains (i + 1))
     in
     contains 0);
  (match Security.decrypt_body ~key enc with
  | Ok dec -> check string_ "roundtrip" "classified" (Xml.text_content dec.Soap.body)
  | Error e -> Alcotest.fail (Security.error_to_string e));
  check bool_ "wrong key fails" true (Result.is_error (Security.decrypt_body ~key:(Stream_cipher.derive_key "other") enc));
  check bool_ "not encrypted error" true
    (Security.decrypt_body ~key env = Error Security.Not_encrypted)

let test_sign_then_encrypt () =
  let rng = Rng.create 106L in
  let ca = ca_cert () in
  let cert = svc_cert ca in
  let trust = Cert.Trust_store.add Cert.Trust_store.empty ca in
  let key = Stream_cipher.derive_key "chan" in
  let env = { Soap.headers = []; body = Xml.element "Payload" ~children:[ Xml.text "x" ] } in
  let protected_env =
    Security.encrypt_body rng ~key (Security.sign ~key:(Lazy.force svc_kp).Rsa.private_ ~cert env)
  in
  (* Decrypt, then the signature still verifies over the restored body. *)
  match Security.decrypt_body ~key protected_env with
  | Error e -> Alcotest.fail (Security.error_to_string e)
  | Ok restored -> check bool_ "signature intact" true (Result.is_ok (Security.verify ~trust ~now:1.0 restored))

(* --- services -------------------------------------------------------------------------- *)

let make_services () =
  let net = Dacs_net.Net.create () in
  Dacs_net.Net.add_node net "client";
  Dacs_net.Net.add_node net "server";
  let svc = Service.create (Dacs_net.Rpc.create net) in
  (net, svc)

let test_service_roundtrip () =
  let net, svc = make_services () in
  Service.serve svc ~node:"server" ~service:"echo" (fun ~caller:_ ~headers:_ body reply ->
      reply (Xml.element "EchoResponse" ~children:[ Xml.text (Xml.text_content body) ]));
  let result = ref None in
  Service.call svc ~src:"client" ~dst:"server" ~service:"echo"
    (Xml.element "Echo" ~children:[ Xml.text "hello" ])
    (fun r -> result := Some r);
  Dacs_net.Net.run net;
  match !result with
  | Some (Ok body) ->
    check string_ "tag" "EchoResponse" (Xml.tag body);
    check string_ "content" "hello" (Xml.text_content body)
  | Some (Error e) -> Alcotest.fail (Service.error_to_string e)
  | None -> Alcotest.fail "no reply"

let test_service_headers_delivered () =
  let net, svc = make_services () in
  let seen = ref [] in
  Service.serve svc ~node:"server" ~service:"s" (fun ~caller ~headers body reply ->
      seen := (caller, List.map Xml.tag headers) :: !seen;
      reply body);
  let result = ref None in
  Service.call svc ~src:"client" ~dst:"server" ~service:"s"
    ~headers:[ Xml.element "Security"; Xml.element "Routing" ]
    (Xml.element "Q")
    (fun r -> result := Some r);
  Dacs_net.Net.run net;
  check bool_ "replied" true (match !result with Some (Ok _) -> true | _ -> false);
  match !seen with
  | [ (caller, tags) ] ->
    check string_ "caller" "client" caller;
    check (Alcotest.list string_) "headers" [ "Security"; "Routing" ] tags
  | _ -> Alcotest.fail "handler not invoked exactly once"

let test_service_fault_propagation () =
  let net, svc = make_services () in
  Service.serve svc ~node:"server" ~service:"s" (fun ~caller:_ ~headers:_ _ reply ->
      reply (Soap.fault_body { Soap.code = "soap:Receiver"; reason = "not authorised" }));
  let result = ref None in
  Service.call svc ~src:"client" ~dst:"server" ~service:"s" (Xml.element "Q") (fun r -> result := Some r);
  Dacs_net.Net.run net;
  match !result with
  | Some (Error (Service.Fault f)) -> check string_ "reason" "not authorised" f.Soap.reason
  | _ -> Alcotest.fail "expected a fault"

let test_service_transport_error () =
  let net, svc = make_services () in
  Service.serve svc ~node:"server" ~service:"s" (fun ~caller:_ ~headers:_ body reply -> reply body);
  Dacs_net.Net.crash net "server";
  let result = ref None in
  Service.call svc ~src:"client" ~dst:"server" ~service:"s" ~timeout:0.5 (Xml.element "Q") (fun r ->
      result := Some r);
  Dacs_net.Net.run net;
  match !result with
  | Some (Error (Service.Transport Dacs_net.Rpc.Timeout)) -> ()
  | _ -> Alcotest.fail "expected a transport timeout"

let test_service_malformed_request_faults () =
  (* A raw RPC payload that is not a SOAP envelope earns a fault, not a
     handler invocation. *)
  let net, svc = make_services () in
  let invoked = ref false in
  Service.serve svc ~node:"server" ~service:"s" (fun ~caller:_ ~headers:_ _ reply ->
      invoked := true;
      reply (Xml.element "R"));
  let result = ref None in
  Dacs_net.Rpc.call (Service.rpc svc) ~src:"client" ~dst:"server" ~service:"s" "not soap" (fun r ->
      result := Some r);
  Dacs_net.Net.run net;
  check bool_ "handler skipped" false !invoked;
  match !result with
  | Some (Ok reply) -> (
    match Soap.parse reply with
    | Ok env -> check bool_ "fault body" true (Soap.fault_of_body env.Soap.body <> None)
    | Error e -> Alcotest.fail e)
  | _ -> Alcotest.fail "expected a reply"


(* --- wsdl / ws-policy ------------------------------------------------------------ *)

let sample_description =
  {
    Wsdl.service = "patient-records";
    endpoint = "hospital.pep.records";
    operations =
      [ { Wsdl.op_name = "access"; input = "AccessRequest"; output = "AccessGranted" } ];
    assertions =
      [
        Wsdl.Requires_subject_attribute "role";
        Wsdl.Requires_capability_from "health-cas";
        Wsdl.Requires_signed_messages;
        Wsdl.Responses_encrypted;
      ];
  }

let test_wsdl_roundtrip () =
  match Wsdl.of_xml (Wsdl.to_xml sample_description) with
  | Error e -> Alcotest.fail e
  | Ok d ->
    check string_ "service" "patient-records" d.Wsdl.service;
    check string_ "endpoint" "hospital.pep.records" d.Wsdl.endpoint;
    check int_ "operations" 1 (List.length d.Wsdl.operations);
    check int_ "assertions" 4 (List.length d.Wsdl.assertions)

let test_wsdl_unmet () =
  let unmet = Wsdl.unmet sample_description in
  check int_ "fully equipped caller" 0
    (List.length
       (unmet ~subject_attributes:[ "role"; "org" ] ~capabilities_from:[ "health-cas" ]
          ~will_sign:true));
  let missing =
    unmet ~subject_attributes:[] ~capabilities_from:[] ~will_sign:false
  in
  (* Responses_encrypted is informational, so 3 of 4 are unmet. *)
  check int_ "bare caller misses three" 3 (List.length missing);
  check bool_ "names the attribute" true
    (List.mem (Wsdl.Requires_subject_attribute "role") missing)

let test_wsdl_registry () =
  let net, svc = make_services () in
  Dacs_net.Net.add_node net "registry";
  Dacs_net.Net.add_node net "hospital.pep.records";
  let reg = Wsdl.create_registry svc ~node:"registry" in
  (* Publishing someone else's endpoint is refused. *)
  let refused = ref None in
  Service.call svc ~src:"client" ~dst:"registry" ~service:"wsdl-publish"
    (Wsdl.to_xml sample_description)
    (fun r -> refused := Some r);
  Dacs_net.Net.run net;
  (match !refused with
  | Some (Error (Service.Fault _)) -> ()
  | _ -> Alcotest.fail "expected third-party publish to be refused");
  (* The owner publishes successfully. *)
  Service.call svc ~src:"hospital.pep.records" ~dst:"registry" ~service:"wsdl-publish"
    (Wsdl.to_xml sample_description)
    (fun _ -> ());
  Dacs_net.Net.run net;
  check bool_ "stored" true (Wsdl.lookup reg ~service:"patient-records" <> None);
  (* A client fetches and pre-checks its own readiness. *)
  let fetched = ref None in
  Wsdl.fetch svc ~registry:"registry" ~caller:"client" ~service:"patient-records" (fun r ->
      fetched := Some r);
  Dacs_net.Net.run net;
  (match !fetched with
  | Some (Ok d) ->
    check int_ "client pre-check finds gaps" 2
      (List.length
         (Wsdl.unmet d ~subject_attributes:[ "role" ] ~capabilities_from:[] ~will_sign:false))
  | _ -> Alcotest.fail "expected a description");
  (* Unknown services fault. *)
  let missing = ref None in
  Wsdl.fetch svc ~registry:"registry" ~caller:"client" ~service:"nope" (fun r -> missing := Some r);
  Dacs_net.Net.run net;
  match !missing with
  | Some (Error _) -> ()
  | _ -> Alcotest.fail "expected an error for an unknown service"

let () =
  Alcotest.run "dacs_saml_ws"
    [
      ( "assertion",
        [
          Alcotest.test_case "sign/verify" `Quick test_assertion_sign_verify;
          Alcotest.test_case "validity window" `Quick test_assertion_validity_window;
          Alcotest.test_case "validate" `Quick test_assertion_validate;
          Alcotest.test_case "content access" `Quick test_assertion_content;
          Alcotest.test_case "XML roundtrip" `Quick test_assertion_xml_roundtrip;
          Alcotest.test_case "XML errors" `Quick test_assertion_xml_errors;
        ] );
      ( "soap",
        [
          Alcotest.test_case "roundtrip" `Quick test_soap_roundtrip;
          Alcotest.test_case "no header section" `Quick test_soap_no_header_section;
          Alcotest.test_case "errors" `Quick test_soap_errors;
          Alcotest.test_case "faults" `Quick test_soap_fault;
        ] );
      ( "security",
        [
          Alcotest.test_case "sign/verify" `Quick test_security_sign_verify;
          Alcotest.test_case "untrusted signer" `Quick test_security_untrusted_signer;
          Alcotest.test_case "expired certificate" `Quick test_security_expired_cert;
          Alcotest.test_case "size overhead" `Quick test_security_size_overhead;
          Alcotest.test_case "encrypt/decrypt body" `Quick test_encrypt_decrypt_body;
          Alcotest.test_case "sign then encrypt" `Quick test_sign_then_encrypt;
        ] );
      ( "wsdl",
        [
          Alcotest.test_case "roundtrip" `Quick test_wsdl_roundtrip;
          Alcotest.test_case "unmet requirements" `Quick test_wsdl_unmet;
          Alcotest.test_case "registry" `Quick test_wsdl_registry;
        ] );
      ( "service",
        [
          Alcotest.test_case "roundtrip" `Quick test_service_roundtrip;
          Alcotest.test_case "headers delivered" `Quick test_service_headers_delivered;
          Alcotest.test_case "fault propagation" `Quick test_service_fault_propagation;
          Alcotest.test_case "transport error" `Quick test_service_transport_error;
          Alcotest.test_case "malformed request faults" `Quick test_service_malformed_request_faults;
        ] );
    ]
