type t =
  | Element of element
  | Text of string

and element = {
  tag : string;
  attrs : (string * string) list;
  children : t list;
}

let element ?(attrs = []) ?(children = []) tag = Element { tag; attrs; children }
let text s = Text s
let cdata_text s = Text s

let tag = function Element e -> e.tag | Text _ -> ""

let local_name name =
  match String.index_opt name ':' with
  | None -> name
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)

let prefix name =
  match String.index_opt name ':' with
  | None -> None
  | Some i -> Some (String.sub name 0 i)

let attr node name =
  match node with
  | Text _ -> None
  | Element e -> List.assoc_opt name e.attrs

let attr_exn node name =
  match attr node name with Some v -> v | None -> raise Not_found

let set_attr node name value =
  match node with
  | Text _ -> node
  | Element e ->
    let attrs = List.remove_assoc name e.attrs @ [ (name, value) ] in
    Element { e with attrs }

let children = function Element e -> e.children | Text _ -> []

let child_elements node =
  List.filter_map (function Element e -> Some e | Text _ -> None) (children node)

let find_children node name =
  let want = local_name name in
  List.filter
    (function Element e -> local_name e.tag = want | Text _ -> false)
    (children node)

let find_child node name =
  match find_children node name with [] -> None | n :: _ -> Some n

let rec text_content node =
  match node with
  | Text s -> s
  | Element e -> String.concat "" (List.map text_content e.children)

let is_element = function Element _ -> true | Text _ -> false

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let print_attrs buf attrs =
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (escape v);
      Buffer.add_char buf '"')
    attrs

let rec print_compact buf node =
  match node with
  | Text s -> Buffer.add_string buf (escape s)
  | Element e ->
    Buffer.add_char buf '<';
    Buffer.add_string buf e.tag;
    print_attrs buf e.attrs;
    if e.children = [] then Buffer.add_string buf "/>"
    else begin
      Buffer.add_char buf '>';
      List.iter (print_compact buf) e.children;
      Buffer.add_string buf "</";
      Buffer.add_string buf e.tag;
      Buffer.add_char buf '>'
    end

let to_string node =
  let buf = Buffer.create 256 in
  print_compact buf node;
  Buffer.contents buf

let to_pretty_string ?(indent = 2) node =
  let buf = Buffer.create 256 in
  let pad level = Buffer.add_string buf (String.make (level * indent) ' ') in
  let rec go level node =
    match node with
    | Text s ->
      pad level;
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '\n'
    | Element e ->
      pad level;
      Buffer.add_char buf '<';
      Buffer.add_string buf e.tag;
      print_attrs buf e.attrs;
      (match e.children with
      | [] -> Buffer.add_string buf "/>\n"
      | [ Text s ] ->
        Buffer.add_char buf '>';
        Buffer.add_string buf (escape s);
        Buffer.add_string buf "</";
        Buffer.add_string buf e.tag;
        Buffer.add_string buf ">\n"
      | kids ->
        Buffer.add_string buf ">\n";
        List.iter (go (level + 1)) kids;
        pad level;
        Buffer.add_string buf "</";
        Buffer.add_string buf e.tag;
        Buffer.add_string buf ">\n")
  in
  go 0 node;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Canonical form                                                      *)
(* ------------------------------------------------------------------ *)

let is_blank s =
  let n = String.length s in
  let rec go i = i >= n || ((s.[i] = ' ' || s.[i] = '\t' || s.[i] = '\n' || s.[i] = '\r') && go (i + 1)) in
  go 0

let rec canonical node =
  match node with
  | Text s -> Text s
  | Element e ->
    let attrs = List.sort (fun (a, _) (b, _) -> compare a b) e.attrs in
    let kids = List.map canonical e.children in
    (* Merge adjacent text nodes, drop whitespace-only ones. *)
    let merged =
      List.fold_left
        (fun acc k ->
          match (k, acc) with
          | Text s, _ when is_blank s -> acc
          | Text s, Text p :: rest -> Text (p ^ s) :: rest
          | k, acc -> k :: acc)
        [] kids
      |> List.rev
    in
    Element { e with attrs; children = merged }

let canonical_string node = to_string (canonical node)

let equal a b = canonical a = canonical b

let rec size = function
  | Text _ -> 1
  | Element e -> 1 + List.fold_left (fun acc k -> acc + size k) 0 e.children

let rec depth = function
  | Text _ -> 0
  | Element e -> 1 + List.fold_left (fun acc k -> max acc (depth k)) 0 e.children

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of { line : int; column : int; message : string }

type parser_state = { src : string; mutable pos : int; mutable line : int; mutable bol : int }

let fail st message =
  raise (Parse_error { line = st.line; column = st.pos - st.bol + 1; message })

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st =
  (if st.pos < String.length st.src then
     match st.src.[st.pos] with
     | '\n' ->
       st.line <- st.line + 1;
       st.bol <- st.pos + 1
     | _ -> ());
  st.pos <- st.pos + 1

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let expect st s =
  if looking_at st s then
    for _ = 1 to String.length s do
      advance st
    done
  else fail st (Printf.sprintf "expected %S" s)

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      go ()
    | _ -> ()
  in
  go ()

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

let parse_name st =
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some c when is_name_char c ->
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  if st.pos = start then fail st "expected a name";
  String.sub st.src start (st.pos - start)

let utf8_of_code buf code =
  (* Encode a Unicode scalar value as UTF-8. *)
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_entity st buf =
  (* Called with st.pos on '&'. *)
  advance st;
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some ';' -> ()
    | Some _ ->
      advance st;
      go ()
    | None -> fail st "unterminated entity reference"
  in
  go ();
  let name = String.sub st.src start (st.pos - start) in
  advance st;
  match name with
  | "lt" -> Buffer.add_char buf '<'
  | "gt" -> Buffer.add_char buf '>'
  | "amp" -> Buffer.add_char buf '&'
  | "quot" -> Buffer.add_char buf '"'
  | "apos" -> Buffer.add_char buf '\''
  | _ ->
    if String.length name > 1 && name.[0] = '#' then begin
      let code =
        try
          if name.[1] = 'x' || name.[1] = 'X' then
            int_of_string ("0x" ^ String.sub name 2 (String.length name - 2))
          else int_of_string (String.sub name 1 (String.length name - 1))
        with _ -> fail st (Printf.sprintf "bad character reference &%s;" name)
      in
      if code < 0 || code > 0x10FFFF then fail st "character reference out of range";
      utf8_of_code buf code
    end
    else fail st (Printf.sprintf "unknown entity &%s;" name)

let parse_attr_value st =
  let quote =
    match peek st with
    | Some (('"' | '\'') as q) ->
      advance st;
      q
    | _ -> fail st "expected a quoted attribute value"
  in
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated attribute value"
    | Some c when c = quote -> advance st
    | Some '&' ->
      parse_entity st buf;
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let skip_until st closing =
  let rec go () =
    if looking_at st closing then expect st closing
    else if peek st = None then fail st (Printf.sprintf "unterminated construct, expected %S" closing)
    else begin
      advance st;
      go ()
    end
  in
  go ()

let rec skip_misc st =
  skip_ws st;
  if looking_at st "<?" then begin
    skip_until st "?>";
    skip_misc st
  end
  else if looking_at st "<!--" then begin
    skip_until st "-->";
    skip_misc st
  end
  else if looking_at st "<!DOCTYPE" then begin
    (* Skip to the matching '>' (internal subsets with nested brackets are
       out of scope for this subset). *)
    skip_until st ">";
    skip_misc st
  end

let rec parse_element st =
  expect st "<";
  let tag = parse_name st in
  let rec attrs_loop acc =
    skip_ws st;
    match peek st with
    | Some '/' ->
      advance st;
      expect st ">";
      Element { tag; attrs = List.rev acc; children = [] }
    | Some '>' ->
      advance st;
      let children = parse_content st tag in
      Element { tag; attrs = List.rev acc; children }
    | Some c when is_name_char c ->
      let name = parse_name st in
      skip_ws st;
      expect st "=";
      skip_ws st;
      let value = parse_attr_value st in
      if List.mem_assoc name acc then fail st (Printf.sprintf "duplicate attribute %s" name);
      attrs_loop ((name, value) :: acc)
    | _ -> fail st "malformed start tag"
  in
  attrs_loop []

and parse_content st tag =
  let buf = Buffer.create 16 in
  let flush_text acc =
    if Buffer.length buf = 0 then acc
    else begin
      let s = Buffer.contents buf in
      Buffer.clear buf;
      Text s :: acc
    end
  in
  let rec go acc =
    if looking_at st "</" then begin
      let acc = flush_text acc in
      expect st "</";
      let closing = parse_name st in
      if closing <> tag then
        fail st (Printf.sprintf "mismatched closing tag </%s> (expected </%s>)" closing tag);
      skip_ws st;
      expect st ">";
      List.rev acc
    end
    else if looking_at st "<!--" then begin
      skip_until st "-->";
      go acc
    end
    else if looking_at st "<![CDATA[" then begin
      expect st "<![CDATA[";
      let start = st.pos in
      let rec find () =
        if looking_at st "]]>" then begin
          Buffer.add_string buf (String.sub st.src start (st.pos - start));
          expect st "]]>"
        end
        else if peek st = None then fail st "unterminated CDATA section"
        else begin
          advance st;
          find ()
        end
      in
      find ();
      go acc
    end
    else if looking_at st "<?" then begin
      skip_until st "?>";
      go acc
    end
    else
      match peek st with
      | None -> fail st (Printf.sprintf "unterminated element <%s>" tag)
      | Some '<' ->
        let acc = flush_text acc in
        let child = parse_element st in
        go (child :: acc)
      | Some '&' ->
        parse_entity st buf;
        go acc
      | Some c ->
        Buffer.add_char buf c;
        advance st;
        go acc
  in
  go []

let of_string src =
  let st = { src; pos = 0; line = 1; bol = 0 } in
  skip_misc st;
  if peek st <> Some '<' then fail st "expected a root element";
  let root = parse_element st in
  skip_misc st;
  if peek st <> None then fail st "trailing content after the root element";
  root

let of_string_opt src = try Some (of_string src) with Parse_error _ -> None

let parse_error_to_string = function
  | Parse_error { line; column; message } ->
    Some (Printf.sprintf "XML parse error at line %d, column %d: %s" line column message)
  | _ -> None
