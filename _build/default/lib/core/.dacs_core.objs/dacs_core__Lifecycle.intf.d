lib/core/lifecycle.mli: Conflict Dacs_crypto Dacs_policy Pap
