lib/core/audit.ml: Dacs_policy List
