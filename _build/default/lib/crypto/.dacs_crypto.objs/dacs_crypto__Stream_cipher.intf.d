lib/crypto/stream_cipher.mli: Rng
