(** Request/response layer over {!Net} with correlation ids, timeouts and
    a resilience layer (retry with exponential backoff and deterministic
    jitter, per-target circuit breakers).

    Components register named services on nodes; callers issue asynchronous
    calls and receive either the reply payload or an error.  This is the
    substrate the SOAP layer (and hence every PEP/PDP/PAP/PIP exchange)
    rides on; timeouts are what make PDP failover observable, and the
    resilience layer is what keeps authorisation flowing through the fault
    schedules of {!Faults}. *)

type t

type error =
  | Timeout
  | No_such_service of string
  | Circuit_open of Net.node_id
      (** The per-target circuit breaker rejected the call without
          touching the network. *)

val error_to_string : error -> string

val create : Net.t -> t
val net : t -> Net.t

(** {1 Telemetry}

    Every bus carries a metrics registry (always on, clocked by the
    network's virtual time) and a tracer (off by default).  The RPC layer
    instruments itself: per-service call/error counters and latency
    histograms, per-caller resilience counters, and — when tracing is
    enabled — one client span per call attempt plus one server span per
    dispatched request, stitched together by the trace context each
    request frame carries. *)

val metrics : t -> Dacs_telemetry.Metrics.t
(** The shared registry.  Components living on this bus register their
    own series here, which is what makes resets consistent everywhere. *)

val tracer : t -> Dacs_telemetry.Trace.t

val set_tracing : t -> bool -> unit
(** Enable/disable span recording.  While disabled no RNG draws are made
    for ids, so an untraced run's random sequence is unperturbed. *)

val serve :
  t ->
  node:Net.node_id ->
  service:string ->
  (caller:Net.node_id -> string -> (string -> unit) -> unit) ->
  unit
(** [serve t ~node ~service handler] registers a service.  The handler
    receives the request payload and a [reply] continuation it must call
    exactly once (possibly later, after its own nested calls complete). *)

val call :
  t ->
  src:Net.node_id ->
  dst:Net.node_id ->
  service:string ->
  ?timeout:float ->
  ?category:string ->
  string ->
  ((string, error) result -> unit) ->
  unit
(** Asynchronous call.  The continuation fires with [Ok reply], or with
    [Error Timeout] after [timeout] seconds (default 1.0) if no reply
    arrived — whether because of loss, crash, partition or a missing
    service.  [category] labels traffic for accounting (defaults to
    [service]). *)

val call_batch :
  t ->
  src:Net.node_id ->
  dst:Net.node_id ->
  service:string ->
  ?timeout:float ->
  ?category:string ->
  string list ->
  ((string list, error) result -> unit) ->
  unit
(** Coalesce several queries to the same service into one round-trip.
    The server dispatches each part to the registered handler and gathers
    the replies into a single frame, preserving order; the continuation
    receives exactly one reply per query.  The whole batch shares one
    correlation id, one timeout and (under {!call_batch_resilient}) one
    retry/breaker envelope — partial results are never delivered.
    Raises [Invalid_argument] on an empty batch. *)

val calls_in_flight : t -> int

(** {1 Retry with backoff}

    A retry policy bounds the total number of attempts; between attempts
    the caller waits [base_delay * multiplier^(n-1)] capped at
    [max_delay], multiplied by a jitter factor drawn uniformly from
    [1 ± jitter] using the engine's seeded RNG — so backoff sequences are
    deterministic for a given seed. *)

type retry_policy = {
  attempts : int;  (** total attempts including the first; >= 1 *)
  base_delay : float;  (** wait after the first failure (seconds) *)
  multiplier : float;  (** backoff growth per failure *)
  max_delay : float;  (** backoff ceiling (seconds) *)
  jitter : float;  (** fraction in [0,1]; 0 disables jitter *)
}

val no_retry : retry_policy
(** Exactly one attempt — [call_resilient] then behaves like {!call}. *)

val default_retry : retry_policy
(** 3 attempts, 50 ms base, doubling, 2 s cap, 20% jitter. *)

(** {1 Circuit breaker}

    One breaker per target node, shared by all callers on this RPC bus.
    [failure_threshold] consecutive timeouts trip it open; while open,
    resilient calls to that target fail immediately with {!Circuit_open}
    (shedding load from a struggling replica).  After [cooldown] seconds
    the next call is admitted as a half-open probe: success closes the
    breaker, failure re-opens it for another cooldown. *)

type breaker_config = { failure_threshold : int; cooldown : float }

val default_breaker : breaker_config
(** 5 consecutive failures; 2 s cooldown. *)

type breaker_state = Closed | Open | Half_open

val breaker_state_to_string : breaker_state -> string

val set_breaker : t -> breaker_config option -> unit
(** Enable ([Some cfg]) or disable ([None], the default) circuit breaking
    for resilient calls on this bus. *)

val breaker_state : t -> Net.node_id -> breaker_state
(** Current state towards a target ([Closed] when breaking is disabled or
    the target has never failed).  An open breaker whose cooldown has
    lapsed reports [Half_open]. *)

(** {1 Resilient calls} *)

type resilience_event =
  | Attempt_failed of { target : Net.node_id; attempt : int; error : error }
  | Retrying of { target : Net.node_id; attempt : int; delay : float }
      (** [attempt] is the upcoming attempt number; [delay] the backoff. *)
  | Breaker_opened of Net.node_id
  | Breaker_half_opened of Net.node_id
  | Breaker_closed of Net.node_id
  | Breaker_rejected of Net.node_id

type resilience_stats = { retries : int; breaker_trips : int; breaker_rejections : int }

val resilience_stats : t -> resilience_stats
(** Bus-wide counters across all resilient calls — a thin read summing
    the per-caller [rpc_retries_total]/[rpc_breaker_trips_total]/
    [rpc_breaker_rejections_total{src}] series in {!metrics}, so a
    component resetting its own series is immediately reflected here. *)

val call_resilient :
  t ->
  src:Net.node_id ->
  dst:Net.node_id ->
  service:string ->
  ?timeout:float ->
  ?category:string ->
  ?retry:retry_policy ->
  ?notify:(resilience_event -> unit) ->
  string ->
  ((string, error) result -> unit) ->
  unit
(** Like {!call} but routed through the per-target circuit breaker (when
    enabled) and retried per [retry] (default {!no_retry}).  Timeouts and
    breaker rejections are retried with backoff; [No_such_service] is
    returned immediately (the target is alive, retrying cannot help).
    [notify] observes every retry and breaker transition — callers use it
    to keep their own counters (e.g. {!section-stats} on a PEP). *)

val call_batch_resilient :
  t ->
  src:Net.node_id ->
  dst:Net.node_id ->
  service:string ->
  ?timeout:float ->
  ?category:string ->
  ?retry:retry_policy ->
  ?notify:(resilience_event -> unit) ->
  string list ->
  ((string list, error) result -> unit) ->
  unit
(** {!call_batch} wrapped in the same retry/breaker envelope as
    {!call_resilient}: the batch is one fault unit — a timeout retries
    the whole frame, and results are all-or-nothing. *)

(** {1 Wire format}

    Exposed for property testing: [decode] must invert every [encode_*]
    for arbitrary ids, service names (including ['|'] and ['%']) and
    bodies. *)

type frame =
  | Request of int * string * string  (** id, service, body *)
  | Traced_request of { id : int; service : string; trace : string; body : string }
      (** A request carrying a trace context (see
          {!Dacs_telemetry.Trace.context_to_string}) — what propagates a
          span tree across PEP → PDP → PIP/PAP hops. *)
  | Batch_request of int * string * string list  (** id, service, parts *)
  | Traced_batch_request of { id : int; service : string; trace : string; parts : string list }
  | Reply of int * string
  | Error_frame of int * string

val encode_request : int -> string -> string -> string
val encode_traced_request : int -> string -> trace:string -> string -> string
val encode_reply : int -> string -> string
val encode_error : int -> string -> string
val encode_batch_request : int -> string -> string list -> string
val encode_traced_batch_request : int -> string -> trace:string -> string list -> string
val decode : string -> frame option

val encode_parts : string list -> string
(** Length-prefixed concatenation ([<len>:<bytes>...]) — how batch frames
    carry arbitrary bodies (including ['|']) and how a batch reply packs
    one answer per query. *)

val decode_parts : string -> string list option
