let ( let* ) = Result.bind

let parse_line model line_no line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let words =
    String.split_on_char ' ' (String.trim line) |> List.filter (fun w -> w <> "")
  in
  let fail msg = Error (Printf.sprintf "line %d: %s" line_no msg) in
  let lift = function Ok m -> Ok m | Error e -> fail e in
  match words with
  | [] -> Ok model
  | [ "role"; name ] -> Ok (Rbac.add_role model name)
  | [ "inherit"; senior; junior ] -> lift (Rbac.add_inheritance model ~senior ~junior)
  | [ "grant"; role; action; resource ] ->
    lift (Rbac.grant_permission model role { Rbac.action; resource })
  | [ "user"; user; role ] -> lift (Rbac.assign_user model user role)
  | "ssd" :: name :: cardinality :: roles when roles <> [] -> (
    match int_of_string_opt cardinality with
    | Some cardinality -> lift (Rbac.add_ssd model ~name ~roles ~cardinality)
    | None -> fail "ssd cardinality is not an integer")
  | "dsd" :: name :: cardinality :: roles when roles <> [] -> (
    match int_of_string_opt cardinality with
    | Some cardinality -> lift (Rbac.add_dsd model ~name ~roles ~cardinality)
    | None -> fail "dsd cardinality is not an integer")
  | directive :: _ -> fail (Printf.sprintf "unknown or malformed directive %S" directive)

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go model line_no = function
    | [] -> Ok model
    | line :: rest ->
      let* model = parse_line model line_no line in
      go model (line_no + 1) rest
  in
  go Rbac.empty 1 lines

let to_string model =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter (fun r -> line "role %s" r) (Rbac.roles model);
  List.iter
    (fun senior ->
      List.iter (fun junior -> line "inherit %s %s" senior junior) (Rbac.direct_juniors model senior))
    (Rbac.roles model);
  List.iter
    (fun role ->
      List.iter
        (fun (p : Rbac.permission) -> line "grant %s %s %s" role p.Rbac.action p.Rbac.resource)
        (List.sort compare (Rbac.direct_permissions model role)))
    (Rbac.roles model);
  List.iter
    (fun user ->
      List.iter (fun role -> line "user %s %s" user role) (Rbac.assigned_roles model user))
    (Rbac.users model);
  List.iter
    (fun (name, roles, cardinality) ->
      line "ssd %s %d %s" name cardinality (String.concat " " roles))
    (Rbac.ssd_constraints model);
  List.iter
    (fun (name, roles, cardinality) ->
      line "dsd %s %d %s" name cardinality (String.concat " " roles))
    (Rbac.dsd_constraints model);
  Buffer.contents buf
