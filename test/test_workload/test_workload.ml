(* Workload engine + overload protection: determinism, conservation,
   shedding behaviour, and the admission/max-inflight primitives the
   engine drives (E18's unit-level counterpart). *)

module W = Dacs_workload.Workload
module Net = Dacs_net.Net
module Service = Dacs_ws.Service
module Policy = Dacs_policy.Policy
module Rule = Dacs_policy.Rule
module Expr = Dacs_policy.Expr
module Value = Dacs_policy.Value
module Context = Dacs_policy.Context
module Decision = Dacs_policy.Decision
open Dacs_core

let open_loop ?(seed = 7) ?(shards = 2) ?(cache_ttl = 0.0) ?(duration = 1.5) rate =
  {
    W.default with
    W.seed;
    shards;
    cache_ttl;
    duration;
    arrivals = W.Open_loop { rate };
  }

let check_conserved r = Alcotest.(check bool) "conservation" true (W.conservation_ok r)

(* -------------------------------------------------------------------- *)
(* Engine-level properties                                              *)
(* -------------------------------------------------------------------- *)

let test_determinism () =
  let s = open_loop ~shards:1 800.0 in
  let a = W.run s and b = W.run s in
  Alcotest.(check string) "same seed renders byte-identical" (W.render a) (W.render b);
  Alcotest.(check string) "json render too" (W.render_json a) (W.render_json b)

(* The O(active) scale contract (E22's unit-level counterpart): a
   100k-user Zipf population runs to completion materialising state only
   for users that actually issued a request, same-seed reports stay
   byte-identical at that scale, and a million-user population is
   admissible without a million-entry table. *)
let test_scale_lazy_users () =
  let s =
    {
      (open_loop ~shards:2 ~cache_ttl:30.0 ~duration:1.5 600.0) with
      W.users = 100_000;
      cache_capacity = 4096;
    }
  in
  let a = W.run s and b = W.run s in
  Alcotest.(check string) "100k-user same-seed render byte-identical" (W.render a) (W.render b);
  Alcotest.(check string) "100k-user json render too" (W.render_json a) (W.render_json b);
  check_conserved a;
  Alcotest.(check bool) "only active users materialised" true (a.W.active_users < s.W.users);
  Alcotest.(check bool) "active bounded by offered" true (a.W.active_users <= a.W.offered);
  Alcotest.(check bool) "someone was active" true (a.W.active_users > 0);
  (* A 1M-user population must be admissible — lazy state means the user
     count prices the sampler, not the table. *)
  let big = W.run { s with W.users = 1_000_000; duration = 0.5 } in
  check_conserved big;
  Alcotest.(check bool) "1M users stay O(active)" true (big.W.active_users < 10_000)

let test_seed_sensitivity () =
  let a = W.run (open_loop ~seed:7 400.0) and b = W.run (open_loop ~seed:8 400.0) in
  Alcotest.(check bool) "different seeds differ" false (W.render a = W.render b)

let test_conservation () =
  List.iter
    (fun s -> check_conserved (W.run s))
    [
      open_loop 50.0;
      open_loop ~shards:1 1600.0;
      open_loop ~cache_ttl:30.0 ~shards:1 1600.0;
      { W.default with W.duration = 1.0; arrivals = W.Closed_loop { clients = 8; think_time = 0.02 } };
    ]

let test_no_shed_below_saturation () =
  let r = W.run (open_loop 50.0) in
  Alcotest.(check int) "nothing shed" 0 r.W.shed;
  Alcotest.(check int) "no shard overloads" 0 r.W.pdp_overloads;
  Alcotest.(check bool) "traffic flowed" true (r.W.offered > 0);
  Alcotest.(check bool) "some grants" true (r.W.granted > 0)

let test_shedding_engages () =
  let r = W.run (open_loop ~shards:1 1600.0) in
  Alcotest.(check bool) "shed > 0 past saturation" true (r.W.shed > 0);
  Alcotest.(check bool) "shed < offered (not everything refused)" true (r.W.shed < r.W.offered);
  check_conserved r

let test_cache_relieves_shedding () =
  let uncached = W.run (open_loop ~shards:1 1600.0) in
  let cached = W.run (open_loop ~shards:1 ~cache_ttl:30.0 1600.0) in
  Alcotest.(check bool)
    (Printf.sprintf "cache sheds less (%d < %d)" cached.W.shed uncached.W.shed)
    true
    (cached.W.shed < uncached.W.shed)

let test_latency_monotone () =
  let r = W.run (open_loop ~shards:1 1600.0) in
  let l = r.W.latency in
  Alcotest.(check bool) "p50 <= p95" true (l.W.p50 <= l.W.p95);
  Alcotest.(check bool) "p95 <= p99" true (l.W.p95 <= l.W.p99);
  Alcotest.(check bool) "p99 <= max" true (l.W.p99 <= l.W.max);
  Alcotest.(check bool) "max positive under load" true (l.W.max > 0.0)

let test_closed_loop () =
  let s =
    { W.default with W.duration = 1.0; arrivals = W.Closed_loop { clients = 8; think_time = 0.02 } }
  in
  let r = W.run s in
  check_conserved r;
  Alcotest.(check bool) "offered > clients" true (r.W.offered > 8);
  Alcotest.(check int) "closed loop never sheds with default bounds" 0 r.W.shed;
  Alcotest.(check string) "closed loop deterministic too" (W.render r) (W.render (W.run s))

let test_invalid_scenarios () =
  let raises s =
    match W.run s with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "zero users" true (raises { W.default with W.users = 0 });
  Alcotest.(check bool) "zero shards" true (raises { W.default with W.shards = 0 });
  Alcotest.(check bool) "zero peps" true (raises { W.default with W.peps = 0 });
  Alcotest.(check bool) "non-positive duration" true (raises { W.default with W.duration = 0.0 });
  Alcotest.(check bool) "non-positive rate" true
    (raises { W.default with W.arrivals = W.Open_loop { rate = 0.0 } });
  Alcotest.(check bool) "no clients" true
    (raises { W.default with W.arrivals = W.Closed_loop { clients = 0; think_time = 0.01 } })

(* -------------------------------------------------------------------- *)
(* Policy churn (E23's unit-level counterpart)                          *)
(* -------------------------------------------------------------------- *)

let churn_scenario ~targeted =
  {
    (open_loop ~seed:11 ~shards:2 ~cache_ttl:30.0 ~duration:2.0 600.0) with
    W.churn = Some { W.churn_period = 0.5; churn_targeted = targeted };
  }

let test_churn_determinism () =
  let s = churn_scenario ~targeted:true in
  let a = W.run s and b = W.run s in
  Alcotest.(check string) "churning run renders byte-identical" (W.render a) (W.render b);
  Alcotest.(check string) "json render too" (W.render_json a) (W.render_json b);
  check_conserved a;
  Alcotest.(check bool) "the schedule really published" true (a.W.publishes > 0)

let test_churn_conservation_both_arms () =
  let t = W.run (churn_scenario ~targeted:true) in
  let f = W.run (churn_scenario ~targeted:false) in
  check_conserved t;
  check_conserved f;
  Alcotest.(check int) "same publish schedule in both arms" t.W.publishes f.W.publishes

let test_churn_targeted_retains_hits () =
  let t = W.run (churn_scenario ~targeted:true) in
  let f = W.run (churn_scenario ~targeted:false) in
  Alcotest.(check bool)
    (Printf.sprintf "targeted invalidation retains more cache hits (%d > %d)" t.W.cache_hits
       f.W.cache_hits)
    true
    (t.W.cache_hits > f.W.cache_hits)

let test_churn_validation () =
  match W.run { W.default with W.churn = Some { W.churn_period = 0.0; churn_targeted = true } } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-positive churn period must be rejected"

(* -------------------------------------------------------------------- *)
(* The primitives the engine drives, in isolation                       *)
(* -------------------------------------------------------------------- *)

let permit_all = Policy.Inline_policy (Policy.make ~id:"p" [ Rule.permit "all" ])

let ctx_for user =
  Context.make
    ~subject:[ ("subject-id", Value.String user) ]
    ~resource:[ ("resource-id", Value.String "r") ]
    ~action:[ ("action-id", Value.String "read") ]
    ()

(* One PEP in sharded mode over a single slow shard; admission bound
   (1 in flight, 1 queued) so the third concurrent request must shed. *)
let rig ?admission ?max_inflight () =
  let net = Net.create ~seed:3L () in
  let services = Service.create (Dacs_net.Rpc.create net) in
  Net.add_node net "pdp.0";
  Net.add_node net "pep";
  let _pdp =
    Pdp_service.create services ~node:"pdp.0" ~name:"pdp.0" ~root:permit_all ~service_time:0.05
      ?max_inflight ()
  in
  let tier = Pdp_tier.create services ~node:"pep" ~shards:[ "pdp.0" ] ~batch:1 () in
  let pep =
    Pep.create services ~node:"pep" ~domain:"d" ~resource:"r"
      (Pep.Sharded { tier; cache = None })
  in
  Pep.set_admission pep admission;
  (net, pep)

let test_admission_sheds_third () =
  let net, pep = rig ~admission:{ Pep.max_inflight = 1; max_queue = 1 } () in
  let results = ref [] in
  let issue tag = Pep.decide pep (ctx_for tag) (fun r -> results := (tag, r) :: !results) in
  issue "a";
  issue "b";
  issue "c";
  (* The third was refused synchronously, before the network even ran. *)
  Alcotest.(check int) "one shed before run" 1 (List.length !results);
  (match !results with
  | [ ("c", r) ] -> (
    match r.Decision.decision with
    | Decision.Indeterminate m -> Alcotest.(check string) "shed reason" Pep.shed_reason m
    | _ -> Alcotest.fail "shed request must fail closed with Indeterminate")
  | _ -> Alcotest.fail "expected exactly the third request shed");
  Net.run net;
  Alcotest.(check int) "all three answered" 3 (List.length !results);
  let stats = Pep.stats pep in
  Alcotest.(check int) "pep_shed_total" 1 stats.Pep.shed;
  List.iter
    (fun tag ->
      match List.assoc tag !results with
      | r -> Alcotest.(check bool) (tag ^ " admitted and granted") true (r.Decision.decision = Decision.Permit))
    [ "a"; "b" ];
  Alcotest.(check int) "queue drained" 0 (Pep.admission_queue_length pep);
  Alcotest.(check int) "no inflight left" 0 (Pep.admission_inflight pep)

let test_admission_lift_drains_queue () =
  let net, pep = rig ~admission:{ Pep.max_inflight = 1; max_queue = 2 } () in
  let results = ref [] in
  let issue tag = Pep.decide pep (ctx_for tag) (fun r -> results := (tag, r) :: !results) in
  issue "a";
  issue "b";
  issue "c";
  Alcotest.(check int) "two parked" 2 (Pep.admission_queue_length pep);
  (* Lifting the bound admits the parked requests instead of dropping them. *)
  Pep.set_admission pep None;
  Alcotest.(check int) "queue empty after lift" 0 (Pep.admission_queue_length pep);
  Net.run net;
  Alcotest.(check int) "all answered" 3 (List.length !results);
  Alcotest.(check int) "nothing shed" 0 (Pep.stats pep).Pep.shed;
  List.iter
    (fun (tag, r) ->
      Alcotest.(check bool) (tag ^ " granted") true (r.Decision.decision = Decision.Permit))
    !results

let test_admission_validation () =
  let _, pep = rig () in
  let invalid a =
    match Pep.set_admission pep (Some a) with
    | exception Invalid_argument _ -> true
    | () -> false
  in
  Alcotest.(check bool) "max_inflight 0 rejected" true
    (invalid { Pep.max_inflight = 0; max_queue = 1 });
  Alcotest.(check bool) "negative queue rejected" true
    (invalid { Pep.max_inflight = 1; max_queue = -1 })

let test_pdp_max_inflight () =
  let net = Net.create ~seed:4L () in
  let services = Service.create (Dacs_net.Rpc.create net) in
  Net.add_node net "pdp.0";
  Net.add_node net "client";
  let pdp =
    Pdp_service.create services ~node:"pdp.0" ~name:"pdp.0" ~root:permit_all ~service_time:0.05
      ~max_inflight:1 ()
  in
  let answers = ref [] in
  let ask tag =
    Service.call services ~src:"client" ~dst:"pdp.0" ~service:"authz-query"
      (Wire.authz_query (ctx_for tag)) (fun reply ->
        match reply with
        | Ok body -> (
          match Wire.parse_authz_response body with
          | Ok r -> answers := (tag, r) :: !answers
          | Error e -> Alcotest.fail e)
        | Error _ -> Alcotest.fail "transport error")
  in
  ask "a";
  ask "b";
  ask "c";
  Net.run net;
  Alcotest.(check int) "all answered" 3 (List.length !answers);
  let overloaded =
    List.filter
      (fun (_, r) ->
        match r.Decision.decision with Decision.Indeterminate _ -> true | _ -> false)
      !answers
  in
  let admitted = List.filter (fun (_, r) -> r.Decision.decision = Decision.Permit) !answers in
  Alcotest.(check int) "one admitted under max_inflight 1" 1 (List.length admitted);
  Alcotest.(check int) "two rejected" 2 (List.length overloaded);
  List.iter
    (fun (_, r) ->
      match r.Decision.decision with
      | Decision.Indeterminate m -> Alcotest.(check string) "overload reason" "pdp overloaded" m
      | _ -> ())
    overloaded;
  Alcotest.(check int) "pdp_overload_total" 2 (Pdp_service.stats pdp).Pdp_service.overloads

let () =
  Alcotest.run "workload"
    [
      ( "engine",
        [
          Alcotest.test_case "same-seed determinism" `Quick test_determinism;
          Alcotest.test_case "100k users: byte-identical and O(active)" `Quick
            test_scale_lazy_users;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "conservation" `Quick test_conservation;
          Alcotest.test_case "no shed below saturation" `Quick test_no_shed_below_saturation;
          Alcotest.test_case "shedding engages past saturation" `Quick test_shedding_engages;
          Alcotest.test_case "cache relieves shedding" `Quick test_cache_relieves_shedding;
          Alcotest.test_case "latency percentiles monotone" `Quick test_latency_monotone;
          Alcotest.test_case "closed loop" `Quick test_closed_loop;
          Alcotest.test_case "invalid scenarios rejected" `Quick test_invalid_scenarios;
        ] );
      ( "policy-churn",
        [
          Alcotest.test_case "churning runs stay deterministic" `Quick test_churn_determinism;
          Alcotest.test_case "conservation under churn, both arms" `Quick
            test_churn_conservation_both_arms;
          Alcotest.test_case "targeted invalidation retains more hits" `Quick
            test_churn_targeted_retains_hits;
          Alcotest.test_case "churn validation" `Quick test_churn_validation;
        ] );
      ( "admission",
        [
          Alcotest.test_case "bounded queue sheds the third request" `Quick test_admission_sheds_third;
          Alcotest.test_case "lifting the bound drains the queue" `Quick test_admission_lift_drains_queue;
          Alcotest.test_case "admission validation" `Quick test_admission_validation;
          Alcotest.test_case "pdp max-inflight rejects excess" `Quick test_pdp_max_inflight;
        ] );
    ]
