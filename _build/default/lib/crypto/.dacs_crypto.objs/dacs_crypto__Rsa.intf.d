lib/crypto/rsa.mli: Bignum Dacs_xml Rng
