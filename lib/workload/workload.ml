module Net = Dacs_net.Net
module Engine = Dacs_net.Engine
module Rng = Dacs_crypto.Rng
module Service = Dacs_ws.Service
module Metrics = Dacs_telemetry.Metrics
module Slo = Dacs_telemetry.Slo
module Context = Dacs_policy.Context
module Value = Dacs_policy.Value
module Decision = Dacs_policy.Decision
module Policy = Dacs_policy.Policy
module Rule = Dacs_policy.Rule
module Target = Dacs_policy.Target
open Dacs_core

type arrivals =
  | Open_loop of { rate : float }
  | Closed_loop of { clients : int; think_time : float }

type partition = { from : float; until : float }

type churn = { churn_period : float; churn_targeted : bool }

type scenario = {
  seed : int;
  domains : int;
  peps : int;
  shards : int;
  users : int;
  zipf : float;
  arrivals : arrivals;
  duration : float;
  cache_ttl : float;
  cache_capacity : int;
  service_time : float;
  batch : int;
  admission : Pep.admission option;
  pdp_max_inflight : int option;
  rule_cost : float;
  compiled : bool;
  partition : partition option;
  offline : bool;
  churn : churn option;
}

let default =
  {
    seed = 42;
    domains = 1;
    peps = 4;
    shards = 2;
    users = 200;
    zipf = 1.1;
    arrivals = Open_loop { rate = 200.0 };
    duration = 5.0;
    cache_ttl = 0.0;
    cache_capacity = 1024;
    service_time = 0.004;
    batch = 8;
    admission = Some { Pep.max_inflight = 32; max_queue = 32 };
    pdp_max_inflight = Some 64;
    rule_cost = 0.0;
    compiled = false;
    partition = None;
    offline = false;
    churn = None;
  }

(* Powers of two from 0.5 ms to ~4 min: wide enough that a saturated
   FIFO's queueing delay still lands in a finite bucket. *)
let latency_buckets = List.init 20 (fun i -> 0.0005 *. (2.0 ** float_of_int i))

type percentiles = { p50 : float; p95 : float; p99 : float; max : float }

type report = {
  offered : int;
  completed : int;
  granted : int;
  denied : int;
  errors : int;
  offline_serves : int;
  shed : int;
  pdp_overloads : int;
  throughput : float;
  latency : percentiles;
  mean_latency : float;
  makespan : float;
  messages : int;
  active_users : int;
  cache_hits : int;
  publishes : int;
  shed_reasons : (string * int) list;
  slo : Slo.status;
}

let validate s =
  let bad fmt = Printf.ksprintf invalid_arg ("Workload.run: " ^^ fmt) in
  if s.domains < 1 then bad "domains must be >= 1";
  if s.peps < 1 then bad "peps must be >= 1";
  if s.shards < 1 then bad "shards must be >= 1";
  if s.users < 1 then bad "users must be >= 1";
  if s.zipf < 0.0 then bad "zipf skew must be non-negative";
  if s.duration <= 0.0 then bad "duration must be positive";
  if s.cache_capacity < 1 then bad "cache_capacity must be >= 1";
  if s.batch < 1 then bad "batch must be >= 1";
  if s.rule_cost < 0.0 then bad "rule_cost must be non-negative";
  (match s.partition with
  | Some { from; until } ->
    if from < 0.0 || until <= from then bad "partition window must satisfy 0 <= from < until"
  | None -> ());
  (match s.churn with
  | Some { churn_period; _ } ->
    if churn_period <= 0.0 then bad "churn period must be positive"
  | None -> ());
  match s.arrivals with
  | Open_loop { rate } -> if rate <= 0.0 then bad "open-loop rate must be positive"
  | Closed_loop { clients; think_time } ->
    if clients < 1 then bad "closed-loop clients must be >= 1";
    if think_time < 0.0 then bad "think_time must be non-negative"

(* --- population sampling ------------------------------------------------ *)

(* Zipf(skew) over [0, n): weight 1/(i+1)^skew, sampled by Walker's
   alias method — an O(n) one-time setup (two arrays of n words) and
   O(1) per sample (one uniform draw, one table probe), replacing the
   old O(n)-float cumulative table with its O(log n) binary search per
   draw.  At n = 10^6 that is the difference between sampling being free
   and sampling being the workload.  skew 0 degenerates to uniform. *)
let zipf_sampler rng ~n ~skew =
  if skew <= 0.0 then fun () -> Rng.int rng n
  else begin
    let scaled = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** skew)) in
    let total = Array.fold_left ( +. ) 0.0 scaled in
    let norm = float_of_int n /. total in
    for i = 0 to n - 1 do
      scaled.(i) <- scaled.(i) *. norm
    done;
    let prob = Array.make n 1.0 in
    let alias = Array.init n Fun.id in
    (* Pair each under-full column with an over-full donor; the leftover
       mass of the donor re-enters whichever worklist it now belongs to.
       Every column ends holding its own probability plus one alias. *)
    let small = ref [] and large = ref [] in
    for i = n - 1 downto 0 do
      if scaled.(i) < 1.0 then small := i :: !small else large := i :: !large
    done;
    let rec pair () =
      match (!small, !large) with
      | s :: ss, l :: ls ->
        prob.(s) <- scaled.(s);
        alias.(s) <- l;
        scaled.(l) <- scaled.(l) -. (1.0 -. scaled.(s));
        small := ss;
        large := ls;
        if scaled.(l) < 1.0 then small := l :: !small else large := l :: !large;
        pair ()
      | _, _ -> ()
    in
    pair ();
    fun () ->
      let u = Rng.float rng (float_of_int n) in
      let i = min (int_of_float u) (n - 1) in
      if u -. float_of_int i < prob.(i) then i else alias.(i)
  end

let roles = [| "doctor"; "nurse"; "admin" |]
let actions = [| "read"; "write" |]
let role_of u = roles.(u mod Array.length roles)

(* The serving policy: doctors do anything, nurses read, everyone else is
   denied — a deterministic grant/deny mix over the population.  The
   doctor/nurse rules are written out once per guarded resource (each
   pinned to its resource-id, the nurse rule also to the read action), so
   the policy grows with the deployment the way a real multi-resource
   store does: decisions are identical to the three-rule form, but an
   interpreter scans ~2 rules per resource while compiled dispatch jumps
   straight to the guarded resource's pair — the compiled-vs-interpreted
   ablation's lever. *)
let serving_policy ~resources =
  let per_resource i =
    let res = Printf.sprintf "res%d" i in
    [
      Rule.make
        ~target:Target.(any |> subject_is "role" "doctor" |> resource_is "resource-id" res)
        Rule.Permit
        (Printf.sprintf "doctors-%d" i);
      Rule.make
        ~target:
          Target.(
            any
            |> subject_is "role" "nurse"
            |> resource_is "resource-id" res
            |> action_is "action-id" "read")
        Rule.Permit
        (Printf.sprintf "nurses-read-%d" i);
    ]
  in
  Policy.make ~id:"workload-policy" ~rule_combining:Dacs_policy.Combine.First_applicable
    (List.concat_map per_resource (List.init resources Fun.id)
    @ [ Rule.make Rule.Deny "default-deny" ])

(* The policy-churn lever: generation [gen] grants admins read access to
   one rotating resource (res[gen mod resources]) via a single rule
   spliced in front of the default-deny.  Generation 0 is exactly
   {!serving_policy}, so churn-free scenarios are byte-compatible with
   the pre-churn engine.  Consecutive generations differ in one fully
   pinned rule, so {!Dacs_policy.Delta.between} yields a tight region
   (admin ∧ read ∧ the two rotating resources) — the targeted-
   invalidation arm keeps every other cached decision warm. *)
let churned_policy ~resources ~gen =
  let base = serving_policy ~resources in
  if gen <= 0 then base
  else begin
    let res = Printf.sprintf "res%d" (gen mod resources) in
    let extra =
      Rule.make
        ~target:
          Target.(
            any
            |> subject_is "role" "admin"
            |> resource_is "resource-id" res
            |> action_is "action-id" "read")
        Rule.Permit "admins-read-churn"
    in
    let rec splice = function
      | [ deny ] -> [ extra; deny ]
      | r :: rest -> r :: splice rest
      | [] -> [ extra ]
    in
    { base with Policy.rules = splice base.Policy.rules }
  end

(* --- the engine --------------------------------------------------------- *)

let run s =
  validate s;
  let net = Net.create ~seed:(Int64.of_int s.seed) () in
  let engine = Net.engine net in
  let services = Service.create (Dacs_net.Rpc.create net) in
  let metrics = Service.metrics services in
  (* Two independent seeded streams: one for the arrival process, one for
     request content (user/PEP/action draws).  Arrivals are scheduled
     lazily — each event draws its successor's gap — so without the split
     the draw order would depend on event interleaving; with it, both
     streams are deterministic however the engine orders work. *)
  let rng = Rng.create (Int64.of_int (s.seed + 0x5eed)) in
  let rng_req = Rng.create (Int64.of_int (s.seed + 0xca11)) in
  (* Decision tier: [shards] replicas sharing the FIFO capacity model. *)
  let shards =
    List.init s.shards (fun i ->
        let node = Printf.sprintf "pdp.%d" i in
        Net.add_node net node;
        Pdp_service.create services ~node ~name:node
          ~root:(Policy.Inline_policy (serving_policy ~resources:s.peps))
          ~service_time:s.service_time ~rule_cost:s.rule_cost ~compiled:s.compiled
          ?max_inflight:s.pdp_max_inflight ())
  in
  let shard_nodes = List.map Pdp_service.node shards in
  (* Enforcement points: one resource each, spread across the domains,
     each dispatching through its own tier client over the same shards. *)
  let peps =
    Array.init s.peps (fun i ->
        let node = Printf.sprintf "dom%d.pep%d" (i mod s.domains) i in
        Net.add_node net node;
        let tier = Pdp_tier.create services ~node ~shards:shard_nodes ~batch:s.batch () in
        let cache =
          if s.cache_ttl > 0.0 then
            Some
              (Decision_cache.create ~metrics ~owner:node ~max_entries:s.cache_capacity
                 ~ttl:s.cache_ttl ())
          else None
        in
        let pep =
          Pep.create services ~node ~domain:(Printf.sprintf "dom%d" (i mod s.domains))
            ~resource:(Printf.sprintf "res%d" i)
            (Pep.Sharded { tier; cache })
        in
        Pep.set_admission pep s.admission;
        pep)
  in
  (* Offline mode: one shared replica holding the serving policy, wired
     to every PEP — partitioned enforcement points descend to the
     [offline] rung instead of failing closed.  The replica decides from
     the context's own attributes (the request carries its role), so its
     answers match what the live tier would have said. *)
  let offline_replica =
    if not s.offline then None
    else begin
      let o =
        Offline.create ~metrics
          ~now:(fun () -> Net.now net)
          ~key:(Dacs_crypto.Sha256.digest "workload-offline-mesh")
          ~author:"workload" ()
      in
      Offline.publish o (Policy.Inline_policy (serving_policy ~resources:s.peps));
      Array.iter (fun pep -> Pep.set_offline_replica pep (Some o)) peps;
      Some o
    end
  in
  (* Partition schedule: cut every PEP node off from every shard at
     [from], reconnect at [until].  Reconnection also ends the offline
     episode, so later windows get their own epoch. *)
  (match s.partition with
  | None -> ()
  | Some { from; until } ->
    let pep_nodes = Array.to_list (Array.map Pep.node peps) in
    Engine.schedule_at engine ~at:from (fun () -> Net.partition net pep_nodes shard_nodes);
    Engine.schedule_at engine ~at:until (fun () ->
        Net.unpartition net pep_nodes shard_nodes;
        Option.iter (fun o -> Offline.set_offline o false) offline_replica));
  (* Policy churn: every period, install the next generation on every
     shard and invalidate PEP L1s — either with the publish's
     change-impact region ([Delta.between] over the two roots; targeted
     arm) or with the unbounded region, which degrades to the classic
     full flush (ablation baseline).  Both arms see identical policy
     sequences, so any decision divergence is an invalidation bug. *)
  let c_publishes =
    Metrics.counter metrics ~help:"Policy generations installed by the churn schedule"
      "workload_publishes_total"
  in
  (match s.churn with
  | None -> ()
  | Some { churn_period; churn_targeted } ->
    let gen = ref 0 in
    let current = ref (Policy.Inline_policy (serving_policy ~resources:s.peps)) in
    let rec tick at =
      if at <= s.duration then
        Engine.schedule_at engine ~at (fun () ->
            incr gen;
            let root = Policy.Inline_policy (churned_policy ~resources:s.peps ~gen:!gen) in
            let region =
              if churn_targeted then Dacs_policy.Delta.between (Some !current) (Some root)
              else Dacs_policy.Delta.unbounded
            in
            current := root;
            List.iter (fun svc -> Pdp_service.install_policy svc root) shards;
            Array.iter (fun pep -> ignore (Pep.invalidate_region pep region)) peps;
            Option.iter (fun o -> Offline.publish o root) offline_replica;
            Metrics.inc c_publishes;
            tick (at +. churn_period))
    in
    tick churn_period);
  (* Latency accounting: one streaming log-bucket histogram per PEP
     (same bounds as [latency_buckets]), merged at report time — O(1)
     per observation and O(PEPs) memory however many requests run. *)
  let lhists = Array.init s.peps (fun _ -> Dacs_telemetry.Loghist.create ()) in
  let c_offered = Metrics.counter metrics ~help:"Requests issued by the generator" "workload_offered_total" in
  let c_completed = Metrics.counter metrics ~help:"Continuations fired" "workload_completed_total" in
  let c_granted = Metrics.counter metrics ~help:"Permit answers" "workload_granted_total" in
  let c_denied = Metrics.counter metrics ~help:"Deny/NotApplicable answers" "workload_denied_total" in
  let c_errors =
    Metrics.counter metrics ~help:"Indeterminate answers other than shedding" "workload_error_total"
  in
  (* SLO accounting rides the same virtual clock: availability counts
     every non-Indeterminate answer as served (shed and fail-closed both
     burn the budget), latency is end-to-end decision latency. *)
  let slo = Slo.create ~now:(fun () -> Net.now net) () in
  let last_completion = ref 0.0 in
  let sample_user = zipf_sampler rng_req ~n:s.users ~skew:s.zipf in
  let sample_pep = zipf_sampler rng_req ~n:s.peps ~skew:s.zipf in
  (* Per-user state is materialised lazily, on a user's first request:
     with a Zipf population most of a million users never arrive, and the
     engine must not pay memory for the ones that don't.  The state is
     just the subject attribute list (built once, reused every request),
     and the table's population is the report's [active_users]. *)
  let user_states = Hashtbl.create (max 64 (min s.users 65536)) in
  let subject_of u =
    match Hashtbl.find_opt user_states u with
    | Some attrs -> attrs
    | None ->
      let attrs =
        [
          ("subject-id", Value.String (Printf.sprintf "user%d" u));
          ("role", Value.String (role_of u));
        ]
      in
      Hashtbl.add user_states u attrs;
      attrs
  in
  let resource_attrs =
    Array.map (fun pep -> [ ("resource-id", Value.String (Pep.resource pep)) ]) peps
  in
  let action_attrs = Array.map (fun a -> [ ("action-id", Value.String a) ]) actions in
  let issue on_done =
    let u = sample_user () in
    let p = sample_pep () in
    let a = Rng.int rng_req (Array.length actions) in
    let pep = peps.(p) in
    let ctx =
      Context.make ~subject:(subject_of u) ~resource:resource_attrs.(p)
        ~action:action_attrs.(a) ()
    in
    let t0 = Net.now net in
    Metrics.inc c_offered;
    Pep.decide pep ctx (fun result ->
        Metrics.inc c_completed;
        last_completion := Net.now net;
        let dt = Net.now net -. t0 in
        let shed, served =
          match result.Decision.decision with
          | Decision.Permit ->
            Metrics.inc c_granted;
            (false, true)
          | Decision.Deny | Decision.Not_applicable ->
            Metrics.inc c_denied;
            (false, true)
          | Decision.Indeterminate m when m = Pep.shed_reason -> (true, false)
          | Decision.Indeterminate _ ->
            Metrics.inc c_errors;
            (false, false)
        in
        Slo.record slo ~ok:served ~latency:dt;
        if not shed then Dacs_telemetry.Loghist.observe lhists.(p) dt;
        on_done ())
  in
  (match s.arrivals with
  | Open_loop { rate } ->
    (* Streaming Poisson arrivals: each arrival event draws and schedules
       its own successor, so the engine holds one pending arrival at a
       time instead of the whole schedule — multi-million-request runs
       keep O(inflight) event-queue memory.  The gap draws come from the
       arrival stream [rng], the per-request draws inside [issue] from
       [rng_req], so laziness changes no sample. *)
    let next_gap () = -.log (1.0 -. Rng.float rng 1.0) /. rate in
    let rec arrive at =
      if at <= s.duration then
        Engine.schedule_at engine ~at (fun () ->
            issue (fun () -> ());
            arrive (at +. next_gap ()))
    in
    arrive (next_gap ())
  | Closed_loop { clients; think_time } ->
    for c = 0 to clients - 1 do
      let rec loop () =
        if Net.now net <= s.duration then
          issue (fun () -> Engine.schedule engine ~delay:think_time loop)
      in
      Engine.schedule_at engine ~at:(float_of_int (c + 1) *. 0.001) loop
    done);
  Net.run net;
  (* Collect: counters and the histogram are read back from the registry;
     shed/overload totals come from the serving-side series the PEPs and
     shards incremented. *)
  let offered = Metrics.counter_value c_offered in
  let completed = Metrics.counter_value c_completed in
  let shed = Metrics.sum_counter metrics "pep_shed_total" in
  let answered = completed - shed in
  let merged =
    Array.fold_left Dacs_telemetry.Loghist.merge (Dacs_telemetry.Loghist.create ()) lhists
  in
  let total = Dacs_telemetry.Loghist.count merged in
  let q = Dacs_telemetry.Loghist.quantile merged in
  let makespan = !last_completion in
  {
    offered;
    completed;
    granted = Metrics.counter_value c_granted;
    denied = Metrics.counter_value c_denied;
    errors = Metrics.counter_value c_errors;
    offline_serves = Metrics.sum_counter metrics "pep_offline_serves_total";
    shed;
    pdp_overloads = Metrics.sum_counter metrics "pdp_overload_total";
    throughput = (if makespan > 0.0 then float_of_int answered /. makespan else 0.0);
    latency =
      {
        p50 = q 0.50;
        p95 = q 0.95;
        p99 = q 0.99;
        max = Dacs_telemetry.Loghist.max_seen merged;
      };
    mean_latency =
      (if total > 0 then Dacs_telemetry.Loghist.sum merged /. float_of_int total else 0.0);
    makespan;
    messages = (Net.total_sent net).Net.count;
    active_users = Hashtbl.length user_states;
    cache_hits = Metrics.sum_counter metrics "decision_cache_hits_total";
    publishes = Metrics.counter_value c_publishes;
    shed_reasons = Metrics.sum_counter_by metrics "pep_shed_reason_total" ~label:"reason";
    slo = Slo.status slo;
  }

let conservation_ok r =
  r.completed = r.offered && r.granted + r.denied + r.errors + r.shed = r.completed

let burn_str v = if v = infinity then "inf" else Printf.sprintf "%.2fx" v

let render r =
  let reasons =
    if r.shed_reasons = [] then "none"
    else String.concat "  " (List.map (fun (why, n) -> Printf.sprintf "%s=%d" why n) r.shed_reasons)
  in
  String.concat "\n"
    [
      Printf.sprintf "offered %d  completed %d  shed %d  pdp-overloads %d" r.offered r.completed
        r.shed r.pdp_overloads;
      Printf.sprintf "granted %d  denied %d  errors %d  offline-serves %d  active-users %d"
        r.granted r.denied r.errors r.offline_serves r.active_users;
      Printf.sprintf "cache-hits %d  publishes %d" r.cache_hits r.publishes;
      Printf.sprintf "shed reasons: %s" reasons;
      Printf.sprintf "throughput %.2f req/s over %.6f s makespan  (%d messages)" r.throughput
        r.makespan r.messages;
      Printf.sprintf "latency p50 %.6f  p95 %.6f  p99 %.6f  max %.6f  mean %.6f" r.latency.p50
        r.latency.p95 r.latency.p99 r.latency.max r.mean_latency;
      Printf.sprintf "slo availability %.3f%% (burn %s) %s  latency %.3f%% (burn %s) %s"
        (r.slo.Slo.availability *. 100.0)
        (burn_str r.slo.Slo.availability_burn)
        (if r.slo.Slo.availability_met then "OK" else "VIOLATED")
        (r.slo.Slo.latency_compliance *. 100.0)
        (burn_str r.slo.Slo.latency_burn)
        (if r.slo.Slo.latency_met then "OK" else "VIOLATED");
      "";
    ]

(* Burn rates can be infinite (zero error budget); keep the JSON valid by
   quoting that case. *)
let json_burn v = if v = infinity then "\"inf\"" else Printf.sprintf "%.4f" v

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_json r =
  let shed_reasons =
    String.concat ","
      (List.map (fun (why, n) -> Printf.sprintf "\"%s\":%d" (json_escape why) n) r.shed_reasons)
  in
  let slo =
    Printf.sprintf
      "{\"total\":%d,\"availability\":%.6f,\"latency_compliance\":%.6f,\"availability_burn\":%s,\"latency_burn\":%s,\"availability_met\":%b,\"latency_met\":%b}"
      r.slo.Slo.total r.slo.Slo.availability r.slo.Slo.latency_compliance
      (json_burn r.slo.Slo.availability_burn)
      (json_burn r.slo.Slo.latency_burn)
      r.slo.Slo.availability_met r.slo.Slo.latency_met
  in
  Printf.sprintf
    "{\"offered\":%d,\"completed\":%d,\"shed\":%d,\"shed_reasons\":{%s},\"pdp_overloads\":%d,\"granted\":%d,\"denied\":%d,\"errors\":%d,\"offline_serves\":%d,\"active_users\":%d,\"cache_hits\":%d,\"publishes\":%d,\"throughput\":%.2f,\"makespan\":%.6f,\"messages\":%d,\"latency\":{\"p50\":%.6f,\"p95\":%.6f,\"p99\":%.6f,\"max\":%.6f,\"mean\":%.6f},\"slo\":%s}"
    r.offered r.completed r.shed shed_reasons r.pdp_overloads r.granted r.denied r.errors
    r.offline_serves r.active_users r.cache_hits r.publishes r.throughput r.makespan r.messages
    r.latency.p50 r.latency.p95 r.latency.p99 r.latency.max r.mean_latency slo
