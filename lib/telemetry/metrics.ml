type counter = { mutable c : int }
type gauge = { mutable g : float }

type exemplar = { e_value : float; e_trace : string; e_at : float }

type histogram = {
  bounds : float array;  (* strictly increasing upper bounds, no +Inf *)
  counts : int array;  (* length = Array.length bounds + 1 (overflow) *)
  exemplars : exemplar option array;  (* one per bucket: latest observation *)
  mutable sum : float;
  mutable count : int;
}

type instrument = I_counter of counter | I_gauge of gauge | I_histogram of histogram

type kind = K_counter | K_gauge | K_histogram

let kind_name = function
  | K_counter -> "counter"
  | K_gauge -> "gauge"
  | K_histogram -> "histogram"

type t = {
  now : unit -> float;
  series : (string * (string * string) list, instrument) Hashtbl.t;
  meta : (string, kind * string) Hashtbl.t;  (* name -> kind, help *)
}

let create ?(now = fun () -> 0.0) () = { now; series = Hashtbl.create 64; meta = Hashtbl.create 32 }

let now t = t.now ()

let valid_name name =
  name <> ""
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       name

let canonical_labels name labels =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  let rec dup = function
    | (a, _) :: ((b, _) :: _ as rest) -> if a = b then Some a else dup rest
    | _ -> None
  in
  (match dup sorted with
  | Some k -> invalid_arg (Printf.sprintf "Metrics: duplicate label %S on %s" k name)
  | None -> ());
  sorted

let register t ~name ~labels ~kind ~help ~make ~cast =
  if not (valid_name name) then invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
  let labels = canonical_labels name labels in
  (match Hashtbl.find_opt t.meta name with
  | Some (k, _) when k <> kind ->
    invalid_arg
      (Printf.sprintf "Metrics: %s already registered as a %s, not a %s" name (kind_name k)
         (kind_name kind))
  | Some _ -> ()
  | None -> Hashtbl.replace t.meta name (kind, help));
  match Hashtbl.find_opt t.series (name, labels) with
  | Some i -> cast i
  | None ->
    let i = make () in
    Hashtbl.replace t.series (name, labels) i;
    cast i

let counter t ?(help = "") ?(labels = []) name =
  register t ~name ~labels ~kind:K_counter ~help
    ~make:(fun () -> I_counter { c = 0 })
    ~cast:(function I_counter c -> c | I_gauge _ | I_histogram _ -> assert false)

let inc ?(by = 1) counter =
  if by < 0 then invalid_arg "Metrics.inc: counters only go up";
  counter.c <- counter.c + by

let counter_value counter = counter.c

let gauge t ?(help = "") ?(labels = []) name =
  register t ~name ~labels ~kind:K_gauge ~help
    ~make:(fun () -> I_gauge { g = 0.0 })
    ~cast:(function I_gauge g -> g | I_counter _ | I_histogram _ -> assert false)

let set_gauge gauge v = gauge.g <- v
let add_gauge gauge v = gauge.g <- gauge.g +. v
let gauge_value gauge = gauge.g

let default_latency_buckets =
  [ 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0 ]

let histogram t ?(help = "") ?(labels = []) ?(buckets = default_latency_buckets) name =
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | [ _ ] | [] -> true
  in
  if buckets = [] || not (increasing buckets) then
    invalid_arg (Printf.sprintf "Metrics: buckets of %s must be strictly increasing" name);
  register t ~name ~labels ~kind:K_histogram ~help
    ~make:(fun () ->
      let bounds = Array.of_list buckets in
      I_histogram
        {
          bounds;
          counts = Array.make (Array.length bounds + 1) 0;
          exemplars = Array.make (Array.length bounds + 1) None;
          sum = 0.0;
          count = 0;
        })
    ~cast:(function I_histogram h -> h | I_counter _ | I_gauge _ -> assert false)

let bucket_slot h v =
  let n = Array.length h.bounds in
  let rec slot i = if i >= n then n else if v <= h.bounds.(i) then i else slot (i + 1) in
  slot 0

let observe h v =
  let i = bucket_slot h v in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.count <- h.count + 1

let observe_exemplar h v ~trace ~at =
  let i = bucket_slot h v in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.count <- h.count + 1;
  if trace <> "" then h.exemplars.(i) <- Some { e_value = v; e_trace = trace; e_at = at }

let histogram_count h = h.count
let histogram_sum h = h.sum

let bucket_counts h =
  List.init
    (Array.length h.counts)
    (fun i ->
      ((if i < Array.length h.bounds then h.bounds.(i) else infinity), h.counts.(i)))

let histogram_exemplars h =
  List.concat
    (List.init (Array.length h.counts) (fun i ->
         match h.exemplars.(i) with
         | None -> []
         | Some e ->
           let le = if i < Array.length h.bounds then h.bounds.(i) else infinity in
           [ (le, e) ]))

(* Prometheus histogram_quantile over the fixed buckets: find the bucket
   holding rank [q * count], interpolate linearly inside it.  An empty
   histogram has no quantiles (nan); a rank landing in the overflow bucket
   clamps to the highest finite bound — the estimate cannot exceed what
   the buckets can resolve. *)
let quantile h q =
  if q < 0.0 || q > 1.0 then invalid_arg "Metrics.quantile: q must be in [0, 1]";
  if h.count = 0 then Float.nan
  else begin
    let rank = q *. float_of_int h.count in
    let n = Array.length h.bounds in
    let rec go i cumulative =
      if i >= n then h.bounds.(n - 1)
      else
        let cumulative' = cumulative + h.counts.(i) in
        if float_of_int cumulative' >= rank then begin
          let lo = if i = 0 then 0.0 else h.bounds.(i - 1) in
          let hi = h.bounds.(i) in
          let in_bucket = h.counts.(i) in
          if in_bucket = 0 then hi
          else lo +. ((hi -. lo) *. (rank -. float_of_int cumulative) /. float_of_int in_bucket)
        end
        else go (i + 1) cumulative'
    in
    if n = 0 then Float.nan else go 0 0
  end

let reset_counter counter = counter.c <- 0
let reset_gauge gauge = gauge.g <- 0.0

let reset_histogram h =
  Array.fill h.counts 0 (Array.length h.counts) 0;
  Array.fill h.exemplars 0 (Array.length h.exemplars) None;
  h.sum <- 0.0;
  h.count <- 0

let reset t =
  Hashtbl.iter
    (fun _ i ->
      match i with
      | I_counter c -> reset_counter c
      | I_gauge g -> reset_gauge g
      | I_histogram h -> reset_histogram h)
    t.series

(* --- snapshot ----------------------------------------------------------- *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { buckets : (float * int) list; sum : float; count : int }

type sample = { name : string; labels : (string * string) list; value : value }

let snapshot t =
  let all =
    Hashtbl.fold
      (fun (name, labels) i acc ->
        let value =
          match i with
          | I_counter c -> Counter c.c
          | I_gauge g -> Gauge g.g
          | I_histogram h -> Histogram { buckets = bucket_counts h; sum = h.sum; count = h.count }
        in
        { name; labels; value } :: acc)
      t.series []
  in
  List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels)) all

let sum_counter t name =
  Hashtbl.fold
    (fun (n, _) i acc -> match i with I_counter c when n = name -> acc + c.c | _ -> acc)
    t.series 0

let sum_counter_by t name ~label =
  let tally = Hashtbl.create 8 in
  Hashtbl.iter
    (fun (n, labels) i ->
      match i with
      | I_counter c when n = name -> (
        match List.assoc_opt label labels with
        | Some v ->
          let prev = Option.value (Hashtbl.find_opt tally v) ~default:0 in
          Hashtbl.replace tally v (prev + c.c)
        | None -> ())
      | _ -> ())
    t.series;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let series_count t = Hashtbl.length t.series

(* --- exposition --------------------------------------------------------- *)

(* %.12g keeps exact small decimals (0.005 renders as "0.005") while
   staying byte-stable for a given value. *)
let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let label_str labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
    ^ "}"

let render t =
  let stamp = Printf.sprintf " %.0f" (t.now () *. 1000.0) in
  let buf = Buffer.create 1024 in
  let seen_header = Hashtbl.create 16 in
  let header name =
    if not (Hashtbl.mem seen_header name) then begin
      Hashtbl.replace seen_header name ();
      let kind, help = try Hashtbl.find t.meta name with Not_found -> (K_gauge, "") in
      if help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name (kind_name kind))
    end
  in
  List.iter
    (fun s ->
      header s.name;
      match s.value with
      | Counter c ->
        Buffer.add_string buf (Printf.sprintf "%s%s %d%s\n" s.name (label_str s.labels) c stamp)
      | Gauge g ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s%s\n" s.name (label_str s.labels) (float_str g) stamp)
      | Histogram { buckets; sum; count } ->
        let cumulative = ref 0 in
        List.iter
          (fun (le, n) ->
            cumulative := !cumulative + n;
            let le_str = if le = infinity then "+Inf" else float_str le in
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d%s\n" s.name
                 (label_str (s.labels @ [ ("le", le_str) ]))
                 !cumulative stamp))
          buckets;
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s%s\n" s.name (label_str s.labels) (float_str sum) stamp);
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d%s\n" s.name (label_str s.labels) count stamp))
    (snapshot t);
  Buffer.contents buf

(* --- JSON --------------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_json t =
  let labels_json labels =
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%S:%S" (json_escape k) (json_escape v)) labels)
    ^ "}"
  in
  let sample_json s =
    let common = Printf.sprintf "\"name\":%S,\"labels\":%s" (json_escape s.name) (labels_json s.labels) in
    match s.value with
    | Counter c -> Printf.sprintf "{%s,\"type\":\"counter\",\"value\":%d}" common c
    | Gauge g -> Printf.sprintf "{%s,\"type\":\"gauge\",\"value\":%s}" common (float_str g)
    | Histogram { buckets; sum; count } ->
      Printf.sprintf "{%s,\"type\":\"histogram\",\"buckets\":[%s],\"sum\":%s,\"count\":%d}" common
        (String.concat ","
           (List.map
              (fun (le, n) ->
                Printf.sprintf "[%s,%d]" (if le = infinity then "\"+Inf\"" else float_str le) n)
              buckets))
        (float_str sum) count
  in
  Printf.sprintf "{\"at\":%s,\"metrics\":[%s]}" (float_str (t.now ()))
    (String.concat "," (List.map sample_json (snapshot t)))
