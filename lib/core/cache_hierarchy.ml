module Service = Dacs_ws.Service
module Engine = Dacs_net.Engine
module Context = Dacs_policy.Context
module Decision = Dacs_policy.Decision
module Value = Dacs_policy.Value
module Metrics = Dacs_telemetry.Metrics
module Trace = Dacs_telemetry.Trace

(* ===================================================================== *)
(* PDP-side attribute cache                                              *)
(* ===================================================================== *)

module Attr_cache = struct
  type entry = { bag : Value.bag; expires : float }

  type t = {
    ttl : float;
    (* Packed (pair sym, subject sym) word — see Intern.pack2.  An
       int-keyed table hashes one machine word per probe instead of a
       three-string tuple. *)
    table : (int, entry) Hashtbl.t;
    c_hits : Metrics.counter;
    c_misses : Metrics.counter;
    c_invalidations : Metrics.counter;
  }

  let create metrics ~node ?(expected = 1024) ~ttl () =
    if ttl <= 0.0 then invalid_arg "Attr_cache.create: ttl must be positive";
    let own ?help name = Metrics.counter metrics ?help ~labels:[ ("node", node) ] name in
    {
      ttl;
      table = Hashtbl.create (max 64 (min expected (1 lsl 18)));
      c_hits = own "pdp_attr_cache_hits_total" ~help:"Attribute bags served from the PDP cache";
      c_misses = own "pdp_attr_cache_misses_total" ~help:"Attribute-cache lookups that missed";
      c_invalidations =
        own "pdp_attr_cache_invalidations_total"
          ~help:"Cached attribute bags dropped on PIP invalidation";
    }

  let pair_sym category id = Intern.pair Intern.global category id
  let subject_sym subject = Intern.string Intern.global subject
  let key ~pair ~subject_sym = Intern.pack2 pair subject_sym

  let find_key t ~now k =
    match Hashtbl.find_opt t.table k with
    | Some e when now < e.expires ->
      Metrics.inc t.c_hits;
      Some e.bag
    | Some _ ->
      Hashtbl.remove t.table k;
      Metrics.inc t.c_misses;
      None
    | None ->
      Metrics.inc t.c_misses;
      None

  let find_sym t ~now ~pair ~subject_sym = find_key t ~now (key ~pair ~subject_sym)

  let find t ~now ~category ~id ~subject =
    find_sym t ~now ~pair:(pair_sym category id) ~subject_sym:(subject_sym subject)

  let store_sym t ~now ~pair ~subject_sym bag =
    Hashtbl.replace t.table (key ~pair ~subject_sym) { bag; expires = now +. t.ttl }

  let store t ~now ~category ~id ~subject bag =
    store_sym t ~now ~pair:(pair_sym category id) ~subject_sym:(subject_sym subject) bag

  let invalidate_subject t ~subject ~id =
    let k = key ~pair:(pair_sym Context.Subject id) ~subject_sym:(subject_sym subject) in
    if Hashtbl.mem t.table k then begin
      Hashtbl.remove t.table k;
      Metrics.inc t.c_invalidations
    end

  let clear t = Hashtbl.reset t.table
  let size t = Hashtbl.length t.table
  let hits t = Metrics.counter_value t.c_hits
  let misses t = Metrics.counter_value t.c_misses

  (* Drop the bags a change-impact region's pins and guards read: the
     attribute data itself is still valid (policy churn does not change
     PIP facts), but dropping forces a refetch on the next decision
     inside the region, which keeps the attribute tier's behaviour
     aligned with the decision caches it feeds.  Entries whose pair sym
     cannot be decoded drop conservatively. *)
  let invalidate_region t region =
    match region with
    | Dacs_policy.Delta.Empty -> 0
    | Dacs_policy.Delta.Unbounded ->
      let n = size t in
      clear t;
      n
    | Dacs_policy.Delta.Zones _ ->
      let positions = Dacs_policy.Delta.attributes region in
      let doomed =
        Hashtbl.fold
          (fun k _ acc ->
            let pair = k lsr 31 in
            match Intern.pair_info Intern.global pair with
            | info -> if List.mem info positions then k :: acc else acc
            | exception Invalid_argument _ -> k :: acc)
          t.table []
      in
      List.iter
        (fun k ->
          Hashtbl.remove t.table k;
          Metrics.inc t.c_invalidations)
        doomed;
      List.length doomed
end

(* ===================================================================== *)
(* Single-flight coalescing                                              *)
(* ===================================================================== *)

module Single_flight = struct
  type 'a t = {
    inflight : (string, ('a -> unit) list ref) Hashtbl.t;
    c_coalesced : Metrics.counter;
  }

  type 'a join =
    | Leader of ('a -> unit)
    | Coalesced

  let create metrics ~node =
    {
      inflight = Hashtbl.create 16;
      c_coalesced =
        Metrics.counter metrics ~labels:[ ("node", node) ]
          ~help:"Identical in-flight queries folded onto one upstream call" "coalesced_total";
    }

  let join t ~key k =
    match Hashtbl.find_opt t.inflight key with
    | Some waiters ->
      waiters := k :: !waiters;
      Metrics.inc t.c_coalesced;
      Coalesced
    | None ->
      let waiters = ref [] in
      Hashtbl.replace t.inflight key waiters;
      Leader
        (fun result ->
          (* Unregister before delivering: a continuation issuing the same
             query again must start a new flight, not join a finished one. *)
          Hashtbl.remove t.inflight key;
          k result;
          List.iter (fun w -> w result) (List.rev !waiters))

  let inflight t = Hashtbl.length t.inflight
  let coalesced t = Metrics.counter_value t.c_coalesced
  let counter t = t.c_coalesced
end

(* ===================================================================== *)
(* Domain-level shared L2 decision cache                                 *)
(* ===================================================================== *)

module L2 = struct
  type t = {
    services : Service.t;
    node : Dacs_net.Net.node_id;
    cache : Decision_cache.t;
    mutable children : Dacs_net.Net.node_id list;
    mutable epoch : int;  (** full and region purges applied here *)
    mutable parent_epoch : int;  (** parent's epoch as last pushed/polled *)
    mutable purged_at : float;
        (** when the last full/region purge was applied — puts sent
            before it are rejected rather than resurrected *)
    mutable on_invalidate : string option -> unit;
    mutable on_region : Dacs_policy.Delta.t -> unit;
    c_lookups : Metrics.counter;
    c_hits : Metrics.counter;
    c_puts : Metrics.counter;
    c_invalidations : Metrics.counter;
    c_rejected_puts : Metrics.counter;
    h_latency : Metrics.histogram;
  }

  type stats = { lookups : int; hits : int; puts : int; invalidations : int; size : int; epoch : int }

  let node t = t.node
  let epoch (t : t) = t.epoch
  let size t = Decision_cache.size t.cache
  let set_on_invalidate t f = t.on_invalidate <- f
  let set_on_region t f = t.on_region <- f
  let rejected_puts t = Metrics.counter_value t.c_rejected_puts
  let now t = Dacs_net.Net.now (Service.net t.services)
  let tracer t = Service.tracer t.services

  let stats t =
    {
      lookups = Metrics.counter_value t.c_lookups;
      hits = Metrics.counter_value t.c_hits;
      puts = Metrics.counter_value t.c_puts;
      invalidations = Metrics.counter_value t.c_invalidations;
      size = Decision_cache.size t.cache;
      epoch = t.epoch;
    }

  let subscribe t ~child =
    if not (List.mem child t.children) then t.children <- child :: t.children

  (* Fan an invalidation down the syndication hierarchy (Fig. 5 in
     reverse: purges flow parent -> child, the same edges policy updates
     flow).  Each child ack is a sample of the invalidation latency —
     how long a revoked grant can still be served from that child. *)
  let fan_out t key =
    let started = now t in
    List.iter
      (fun child ->
        Service.call t.services ~src:t.node ~dst:child ~service:"cache-invalidate"
          (Wire.cache_invalidate ~epoch:t.epoch key)
          (fun reply ->
            match reply with
            | Ok _ -> Metrics.observe t.h_latency (now t -. started)
            | Error _ -> ()))
      t.children

  (* Region purges fan down their own service so a receiver can apply
     the same targeted drop; the frame carries the sender's post-purge
     epoch, so a delivered push satisfies the next anti-entropy poll and
     a lost one is repaired by it (as a conservative full purge). *)
  let fan_out_region t region =
    let started = now t in
    List.iter
      (fun child ->
        Service.call t.services ~src:t.node ~dst:child ~service:"cache-region"
          (Wire.cache_region ~epoch:t.epoch region)
          (fun reply ->
            match reply with
            | Ok _ -> Metrics.observe t.h_latency (now t -. started)
            | Error _ -> ()))
      t.children

  let apply_invalidation t key =
    (match key with
    | None ->
      Decision_cache.invalidate_all t.cache;
      t.purged_at <- now t;
      t.epoch <- t.epoch + 1
    | Some k -> Decision_cache.invalidate t.cache ~key:k);
    Metrics.inc t.c_invalidations;
    t.on_invalidate key;
    fan_out t key

  let apply_region t region =
    ignore (Decision_cache.invalidate_region t.cache region);
    t.purged_at <- now t;
    t.epoch <- t.epoch + 1;
    Metrics.inc t.c_invalidations;
    t.on_region region;
    fan_out_region t region

  let invalidate_all t =
    Trace.record (tracer t) ("l2:invalidate-all " ^ t.node);
    apply_invalidation t None

  let invalidate t ~key = apply_invalidation t (Some key)

  let invalidate_region t region =
    match region with
    | Dacs_policy.Delta.Empty -> ()
    | Dacs_policy.Delta.Unbounded -> invalidate_all t
    | Dacs_policy.Delta.Zones _ ->
      Trace.record (tracer t) ("l2:invalidate-region " ^ t.node);
      apply_region t region

  (* Anti-entropy backstop: poll the parent's epoch; any full purge we
     missed (down at push time, partitioned, ...) is applied within one
     round, so a revocation bounds every descendant's staleness by the
     polling period. *)
  let enable_anti_entropy t ~parent ~period =
    if period <= 0.0 then invalid_arg "L2.enable_anti_entropy: period must be positive";
    let engine = Dacs_net.Net.engine (Service.net t.services) in
    let rec poll () =
      Service.call t.services ~src:t.node ~dst:parent ~service:"cache-sync"
        (Wire.cache_sync ~known_epoch:t.parent_epoch)
        (fun reply ->
          (match reply with
          | Ok body -> (
            match Wire.parse_cache_epoch body with
            | Ok epoch when epoch > t.parent_epoch ->
              t.parent_epoch <- epoch;
              apply_invalidation t None
            | Ok _ | Error _ -> ())
          | Error _ -> ());
          Engine.schedule engine ~delay:period poll)
    in
    poll ()

  let create services ~node ?metrics ?(max_entries = 4096) ~ttl () =
    let registry = match metrics with Some m -> m | None -> Service.metrics services in
    let own ?help name = Metrics.counter registry ?help ~labels:[ ("node", node) ] name in
    let t =
      {
        services;
        node;
        cache = Decision_cache.create ~metrics:registry ~owner:node ~max_entries ~ttl ();
        children = [];
        epoch = 0;
        parent_epoch = 0;
        purged_at = neg_infinity;
        on_invalidate = (fun _ -> ());
        on_region = (fun _ -> ());
        c_lookups = own "l2_lookups_total" ~help:"Shared-cache lookups served";
        c_hits = own "l2_hits_total" ~help:"Shared-cache lookups answered with a fresh decision";
        c_puts = own "l2_puts_total" ~help:"Decisions stored into the shared cache";
        c_invalidations = own "l2_invalidations_total" ~help:"Invalidation rounds applied";
        c_rejected_puts =
          own "l2_rejected_puts_total"
            ~help:"Puts sent before the last purge, dropped instead of resurrected";
        h_latency =
          Metrics.histogram registry
            ~help:"Virtual seconds from an invalidation to each child's ack"
            ~buckets:[ 0.001; 0.005; 0.01; 0.05; 0.1; 0.5; 1.0; 5.0 ]
            ~labels:[ ("node", node) ] "l2_invalidation_latency_seconds";
      }
    in
    let fault reason = Dacs_ws.Soap.fault_body { Dacs_ws.Soap.code = "soap:Sender"; reason } in
    Service.serve services ~node ~service:"cache-lookup" (fun ~caller:_ ~headers:_ body reply ->
        Metrics.inc t.c_lookups;
        match Wire.parse_cache_lookup body with
        | Error e -> reply (fault e)
        | Ok key ->
          let answer = Decision_cache.get t.cache ~now:(now t) ~key in
          if answer <> None then Metrics.inc t.c_hits;
          reply (Wire.cache_answer answer));
    Service.serve services ~node ~service:"cache-put" (fun ~caller:_ ~headers:_ body reply ->
        match Wire.parse_cache_put body with
        | Error e -> reply (fault e)
        | Ok (key, result, sent_at) -> (
          (* The put/invalidate race: a fire-and-forget put composed
             before a purge must not land after it and resurrect the
             entry it carried.  Unstamped puts are accepted (legacy
             frames cannot be ordered against purges). *)
          match sent_at with
          | Some s when s < t.purged_at -> Metrics.inc t.c_rejected_puts; reply (Dacs_xml.Xml.element "CachePutAck")
          | Some _ | None ->
            Metrics.inc t.c_puts;
            Decision_cache.put t.cache ~now:(now t) ~key result;
            reply (Dacs_xml.Xml.element "CachePutAck")));
    Service.serve services ~node ~service:"cache-invalidate" (fun ~caller:_ ~headers:_ body reply ->
        match Wire.parse_cache_invalidate body with
        | Error e -> reply (fault e)
        | Ok (sender_epoch, key) ->
          if key = None then t.parent_epoch <- max t.parent_epoch sender_epoch;
          apply_invalidation t key;
          reply (Wire.cache_epoch ~epoch:t.epoch));
    Service.serve services ~node ~service:"cache-region" (fun ~caller:_ ~headers:_ body reply ->
        match Wire.parse_cache_region body with
        | Error e -> reply (fault e)
        | Ok (sender_epoch, region) ->
          t.parent_epoch <- max t.parent_epoch sender_epoch;
          (match region with
          | Dacs_policy.Delta.Empty -> ()
          | Dacs_policy.Delta.Unbounded -> apply_invalidation t None
          | Dacs_policy.Delta.Zones _ -> apply_region t region);
          reply (Wire.cache_epoch ~epoch:t.epoch));
    Service.serve services ~node ~service:"cache-sync" (fun ~caller:_ ~headers:_ body reply ->
        match Wire.parse_cache_sync body with
        | Error e -> reply (fault e)
        | Ok _known -> reply (Wire.cache_epoch ~epoch:t.epoch));
    t

  (* --- client side (what a PEP calls) ---------------------------------- *)

  let remote_lookup services ~src ~l2 ?(timeout = 1.0) ~key k =
    Service.call services ~src ~dst:l2 ~service:"cache-lookup" ~timeout (Wire.cache_lookup ~key)
      (fun reply ->
        match reply with
        | Ok body -> (
          match Wire.parse_cache_answer body with
          | Ok answer -> k answer
          | Error _ -> k None)
        | Error _ ->
          (* An unreachable shared cache is a miss, never a failure: the
             caller continues down the ladder to the live tier. *)
          k None)

  let remote_put services ~src ~l2 ~key result =
    let sent_at = Dacs_net.Net.now (Service.net services) in
    Service.call services ~src ~dst:l2 ~service:"cache-put"
      (Wire.cache_put ~sent_at ~key result)
      (fun _ -> ())

  let remote_invalidate services ~src ~l2 ?key ?(k = fun () -> ()) () =
    Service.call services ~src ~dst:l2 ~service:"cache-invalidate"
      (Wire.cache_invalidate ~epoch:0 key)
      (fun _ -> k ())
end
