module Xml = Dacs_xml.Xml

type t = {
  serial : int;
  subject : string;
  issuer : string;
  public_key : Rsa.public_key;
  not_before : float;
  not_after : float;
  signature : string;
}

let tbs_xml c =
  Xml.element "TBSCertificate"
    ~attrs:
      [
        ("Serial", string_of_int c.serial);
        ("Subject", c.subject);
        ("Issuer", c.issuer);
        ("NotBefore", Printf.sprintf "%.6f" c.not_before);
        ("NotAfter", Printf.sprintf "%.6f" c.not_after);
      ]
    ~children:[ Rsa.public_to_xml c.public_key ]

let tbs_string c = Xml.canonical_string (tbs_xml c)

let to_xml c =
  Xml.element "Certificate"
    ~children:
      [
        tbs_xml c;
        Xml.element "SignatureValue" ~children:[ Xml.text (Encoding.base64_encode c.signature) ];
      ]

let of_xml node =
  match (Xml.find_child node "TBSCertificate", Xml.find_child node "SignatureValue") with
  | Some tbs, Some sigval -> (
    let attr name = Xml.attr tbs name in
    match
      ( attr "Serial",
        attr "Subject",
        attr "Issuer",
        attr "NotBefore",
        attr "NotAfter",
        Xml.find_child tbs "RSAPublicKey" )
    with
    | Some serial, Some subject, Some issuer, Some nb, Some na, Some key_xml -> (
      match
        ( int_of_string_opt serial,
          float_of_string_opt nb,
          float_of_string_opt na,
          Rsa.public_of_xml key_xml )
      with
      | Some serial, Some not_before, Some not_after, Some public_key -> (
        try
          Some
            {
              serial;
              subject;
              issuer;
              public_key;
              not_before;
              not_after;
              signature = Encoding.base64_decode (Xml.text_content sigval);
            }
        with Invalid_argument _ -> None)
      | _ -> None)
    | _ -> None)
  | _ -> None

let fingerprint c = Sha256.hex_digest (Xml.canonical_string (to_xml c))

let sign_tbs key c = { c with signature = Rsa.sign key (tbs_string c) }

let self_signed (kp : Rsa.keypair) ~subject ~serial ~not_before ~not_after =
  let c =
    {
      serial;
      subject;
      issuer = subject;
      public_key = kp.public;
      not_before;
      not_after;
      signature = "";
    }
  in
  sign_tbs kp.private_ c

let issue ~ca_key ~ca_cert ~subject ~public_key ~serial ~not_before ~not_after =
  let c =
    {
      serial;
      subject;
      issuer = ca_cert.subject;
      public_key;
      not_before;
      not_after;
      signature = "";
    }
  in
  sign_tbs ca_key c

let verify_signature c ~issuer_key = Rsa.verify issuer_key (tbs_string c) ~signature:c.signature

let valid_at c now = c.not_before <= now && now <= c.not_after

module Trust_store = struct
  type cert = t

  module Fingerprints = Set.Make (String)

  type nonrec t = { fingerprints : Fingerprints.t; certs : cert list }

  let empty = { fingerprints = Fingerprints.empty; certs = [] }

  let add store cert =
    let fp = fingerprint cert in
    if Fingerprints.mem fp store.fingerprints then store
    else { fingerprints = Fingerprints.add fp store.fingerprints; certs = cert :: store.certs }

  let mem store cert = Fingerprints.mem (fingerprint cert) store.fingerprints

  let roots store = store.certs

  type failure =
    | Empty_chain
    | Expired of string
    | Bad_signature of string
    | Untrusted_root of string
    | Broken_chain of string * string

  let failure_to_string = function
    | Empty_chain -> "empty certificate chain"
    | Expired s -> Printf.sprintf "certificate for %s is outside its validity window" s
    | Bad_signature s -> Printf.sprintf "signature on certificate for %s does not verify" s
    | Untrusted_root s -> Printf.sprintf "chain root %s is not in the trust store" s
    | Broken_chain (issuer, subject) ->
      Printf.sprintf "certificate issued by %s does not chain to %s" issuer subject

  let verify_chain store ~now chain =
    match chain with
    | [] -> Error Empty_chain
    | _ ->
      let rec walk = function
        | [] -> Ok ()
        | [ root ] ->
          if not (valid_at root now) then Error (Expired root.subject)
          else if root.issuer <> root.subject then Error (Broken_chain (root.issuer, root.subject))
          else if not (verify_signature root ~issuer_key:root.public_key) then
            Error (Bad_signature root.subject)
          else if not (mem store root) then Error (Untrusted_root root.subject)
          else Ok ()
        | cert :: (parent :: _ as rest) ->
          if not (valid_at cert now) then Error (Expired cert.subject)
          else if cert.issuer <> parent.subject then Error (Broken_chain (cert.issuer, parent.subject))
          else if not (verify_signature cert ~issuer_key:parent.public_key) then
            Error (Bad_signature cert.subject)
          else walk rest
      in
      walk chain
end
