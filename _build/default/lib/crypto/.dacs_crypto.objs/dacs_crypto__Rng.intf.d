lib/crypto/rng.mli:
