lib/policy/combine.ml: Decision List Option Printf String Target
