module Service = Dacs_ws.Service
module Rsa = Dacs_crypto.Rsa
module Value = Dacs_policy.Value
module Engine = Dacs_net.Engine

type t = {
  name : string;
  services : Service.t;
  domains : Domain.t list;
  vo_pap : Pap.t;
  cas : Capability_service.t;
  mutable l2_root : Cache_hierarchy.L2.t option;
  mutable offline : Offline.t list;
}

let name t = t.name
let services t = t.services
let domains t = t.domains
let find_domain t name = List.find_opt (fun d -> Domain.name d = name) t.domains
let vo_pap t = t.vo_pap
let capability_service t = t.cas

let form services ~name domains =
  let net = Service.net services in
  let node suffix =
    let id = name ^ "." ^ suffix in
    Dacs_net.Net.add_node net id;
    id
  in
  let vo_pap = Pap.create services ~node:(node "pap") ~name:(name ^ "-pap") () in
  let cas_keys = Rsa.generate (Dacs_crypto.Rng.create 424242L) ~bits:512 in
  let cas =
    Capability_service.create services ~node:(node "cas") ~issuer:("cas." ^ name)
      ~keypair:cas_keys ()
  in
  List.iter
    (fun domain ->
      Pap.subscribe_local vo_pap ~child:(Domain.pap_node domain);
      Domain.allow_policy_updates_from domain [ Pap.node vo_pap ])
    domains;
  { name; services; domains; vo_pap; cas; l2_root = None; offline = [] }

let publish_policy t child =
  Capability_service.set_policy t.cas child;
  Pap.publish t.vo_pap child;
  (* Syndicate the publish's change-impact region down the Fig. 5 cache
     hierarchy: the root L2 purges only matching entries and fans the
     region to every domain L2 (and from there to PEP L1s).  The
     anti-entropy epoch poll is unchanged — a domain that misses the
     push repairs itself with a conservative full purge one round
     later. *)
  Option.iter
    (fun root -> Cache_hierarchy.L2.invalidate_region root (Pap.last_region t.vo_pap))
    t.l2_root

let issuer_key t issuer =
  if issuer = Capability_service.issuer t.cas then Some (Capability_service.public_key t.cas)
  else
    List.find_map
      (fun d ->
        let idp = Domain.idp d in
        if Idp.issuer idp = issuer then Some (Idp.public_key idp) else None)
      t.domains

let merged_audit t = Audit.merge (List.map Domain.audit t.domains)

let pdp_tier t ~node ~shards ?batch ?linger ?vnodes ?service_time ?rule_cost ?max_inflight
    ?refresh ?compiled ?root () =
  if shards < 1 then invalid_arg "Vo.pdp_tier: shards must be >= 1";
  let net = Service.net t.services in
  let replicas =
    List.init shards (fun i ->
        let id = Printf.sprintf "%s.pdp.%d" t.name i in
        Dacs_net.Net.add_node net id;
        Pdp_service.create t.services ~node:id
          ~name:(Printf.sprintf "%s-pdp-%d" t.name i)
          ?root ~pap:(Pap.node t.vo_pap) ?refresh ?service_time ?rule_cost ?max_inflight
          ?compiled ())
  in
  let tier =
    Pdp_tier.create t.services ~node ~shards:(List.map Pdp_service.node replicas) ?batch ?linger
      ?vnodes ()
  in
  (tier, replicas)

(* The caching mirror of policy syndication (Fig. 5): a VO-root cache
   node with every domain's shared L2 subscribed under it.  Invalidations
   push root -> domain -> PEP L1 along the same edges policy updates
   flow, and each domain polls the root's epoch as the anti-entropy
   backstop, so a revocation purges every member within one round even if
   a push was lost. *)
let cache_hierarchy t ?max_entries ~ttl ?(anti_entropy_period = 5.0) () =
  match t.l2_root with
  | Some root -> root
  | None ->
    let net = Service.net t.services in
    let node = t.name ^ ".l2" in
    Dacs_net.Net.add_node net node;
    let root = Cache_hierarchy.L2.create t.services ~node ?max_entries ~ttl () in
    List.iter
      (fun domain ->
        let l2 = Domain.attach_l2 domain ?max_entries ~ttl () in
        Cache_hierarchy.L2.subscribe root ~child:(Cache_hierarchy.L2.node l2);
        Cache_hierarchy.L2.enable_anti_entropy l2 ~parent:node ~period:anti_entropy_period)
      t.domains;
    t.l2_root <- Some root;
    root

let l2_root t = t.l2_root

(* The offline mirror of the cache hierarchy: one signed-log replica per
   member domain, kept convergent by the same schedule-driven anti-
   entropy pattern the L2 hierarchy uses — each replica periodically
   pulls every peer's suffix over the log-sync service.  Rounds that hit
   a partition simply fail and reschedule; the first round after heal
   exchanges the diverged suffixes and deny-wins replay reconverges. *)
let offline_mesh t ?key ?(anti_entropy_period = 5.0) () =
  match t.offline with
  | _ :: _ -> t.offline
  | [] ->
    if anti_entropy_period <= 0.0 then
      invalid_arg "Vo.offline_mesh: anti_entropy_period must be positive";
    let key =
      match key with
      | Some k -> k
      | None -> Dacs_crypto.Sha256.digest (t.name ^ ":offline-mesh-key")
    in
    let replicas = List.map (fun d -> Domain.attach_offline d ~key ()) t.domains in
    let engine = Dacs_net.Net.engine (Service.net t.services) in
    List.iter
      (fun d ->
        let o =
          match Domain.offline d with Some o -> o | None -> assert false
        in
        let src =
          match Domain.offline_node d with Some n -> n | None -> assert false
        in
        List.iter
          (fun peer ->
            match Domain.offline_node peer with
            | Some dst when dst <> src ->
              let rec round () =
                Offline.sync_rpc o t.services ~src ~dst (fun _ ->
                    Engine.schedule engine ~delay:anti_entropy_period round)
              in
              round ()
            | Some _ | None -> ())
          t.domains)
      t.domains;
    t.offline <- replicas;
    replicas

let offline_replicas t = t.offline

let revoke_capability t ~assertion_id =
  Capability_service.revoke t.cas ~assertion_id;
  (* Decisions influenced by the revoked grant may sit in any cache
     level; one invalidation round from the root purges them all. *)
  Option.iter Cache_hierarchy.L2.invalidate_all t.l2_root

let client_for t ~domain ~user subject =
  let net = Service.net t.services in
  let node = Printf.sprintf "%s.client.%s" (Domain.name domain) user in
  Dacs_net.Net.add_node net node;
  Domain.register_user domain ~user subject;
  Client.create t.services ~node ~subject
