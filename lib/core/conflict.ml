module Policy = Dacs_policy.Policy
module Rule = Dacs_policy.Rule
module Target = Dacs_policy.Target
module Value = Dacs_policy.Value
module Combine = Dacs_policy.Combine
module Decision = Dacs_policy.Decision

type rule_ref = {
  policy_id : string;
  policy_issuer : string;
  rule_id : string;
  effect : Rule.effect;
}

type conflict = {
  permit : rule_ref;
  deny : rule_ref;
  permit_first : bool;
  cross_policy : bool;
  cross_authority : bool;
  witness : string;
}

(* A clause's constraint on one section: attribute -> required value.
   Under the single-valued-attribute assumption a clause demanding two
   values for one attribute is unsatisfiable. *)
type clause_constraint = (string * string) list option
(* None = unsatisfiable clause; Some bindings otherwise *)

let clause_constraint clause : clause_constraint =
  let rec go acc = function
    | [] -> Some acc
    | m :: rest -> (
      match m.Target.value with
      | Value.String v | Value.Uri v -> (
        match List.assoc_opt m.Target.attribute_id acc with
        | Some v' when v' <> v -> None
        | Some _ -> go acc rest
        | None -> go ((m.Target.attribute_id, v) :: acc) rest)
      (* Non-string matches (ranges etc.) are conservatively treated as
         always satisfiable alongside anything. *)
      | Value.Int _ | Value.Bool _ | Value.Double _ | Value.Time _ -> go acc rest)
  in
  go [] clause

(* Two clause constraints are compatible when they do not demand
   different values for the same attribute. *)
let compatible (a : (string * string) list) (b : (string * string) list) =
  List.for_all
    (fun (attr, v) ->
      match List.assoc_opt attr b with
      | Some v' -> v = v'
      | None -> true)
    a

(* Section overlap: empty section = matches anything. *)
let sections_overlap sa sb =
  match (sa, sb) with
  | [], _ | _, [] ->
    let any_satisfiable s = s = [] || List.exists (fun c -> clause_constraint c <> None) s in
    if sa = [] then any_satisfiable sb else any_satisfiable sa
  | _ ->
    List.exists
      (fun ca ->
        match clause_constraint ca with
        | None -> false
        | Some ba ->
          List.exists
            (fun cb ->
              match clause_constraint cb with
              | None -> false
              | Some bb -> compatible ba bb)
            sb)
      sa

(* Effective target of a rule inside a policy: both targets constrain the
   request, so overlap must hold for the pair (policy ∧ rule) on each
   side.  We approximate the conjunction by checking both. *)
let targets_overlap (pa, ra) (pb, rb) =
  let sections t = [ t.Target.subjects; t.Target.resources; t.Target.actions; t.Target.environments ] in
  let overlap ta tb = List.for_all2 sections_overlap (sections ta) (sections tb) in
  (* Overlap of the combined constraints: every one of the four targets
     involved must pairwise overlap on each section. *)
  overlap ra.Rule.target rb.Rule.target
  && overlap pa.Policy.target pb.Policy.target
  && overlap pa.Policy.target rb.Rule.target
  && overlap pb.Policy.target ra.Rule.target

let witness_for (p, r) =
  let describe t =
    let part name section =
      match section with
      | [] -> []
      | clause :: _ ->
        List.filter_map
          (fun m ->
            match clause_constraint [ m ] with
            | Some [ (attr, v) ] -> Some (Printf.sprintf "%s %s=%s" name attr v)
            | _ -> None)
          clause
    in
    part "subject" t.Target.subjects
    @ part "resource" t.Target.resources
    @ part "action" t.Target.actions
  in
  let all = describe p.Policy.target @ describe r.Rule.target in
  if all = [] then "any request" else String.concat ", " all

(* Gather (policy, rule, document position) triples from a set. *)
let rec rules_of_set pos set =
  List.concat_map
    (fun child ->
      match child with
      | Policy.Inline_policy p -> rules_of_policy pos p
      | Policy.Inline_set s -> rules_of_set pos s
      | Policy.Policy_ref _ -> [])
    set.Policy.children

and rules_of_policy pos (p : Policy.t) =
  (* Explicit fold: document positions must follow rule order. *)
  List.rev
    (List.fold_left
       (fun acc r ->
         incr pos;
         (p, r, !pos) :: acc)
       [] p.Policy.rules)

let make_ref (p : Policy.t) (r : Rule.t) =
  { policy_id = p.Policy.id; policy_issuer = p.Policy.issuer; rule_id = r.Rule.id; effect = r.Rule.effect }

let conflicts_among triples =
  let rec pairs acc = function
    | [] -> List.rev acc
    | (pa, ra, posa) :: rest ->
      let found =
        List.filter_map
          (fun (pb, rb, posb) ->
            if ra.Rule.effect = rb.Rule.effect then None
            else if not (targets_overlap (pa, ra) (pb, rb)) then None
            else begin
              let (pp, pr, ppos), (dp, dr, dpos) =
                if ra.Rule.effect = Rule.Permit then ((pa, ra, posa), (pb, rb, posb))
                else ((pb, rb, posb), (pa, ra, posa))
              in
              Some
                {
                  permit = make_ref pp pr;
                  deny = make_ref dp dr;
                  permit_first = ppos < dpos;
                  cross_policy = pp.Policy.id <> dp.Policy.id;
                  cross_authority = pp.Policy.issuer <> dp.Policy.issuer;
                  witness = witness_for (pp, pr);
                }
            end)
          rest
      in
      pairs (List.rev_append found acc) rest
  in
  pairs [] triples

let find_in_set set = conflicts_among (rules_of_set (ref 0) set)

let find_between a b =
  let pos = ref 0 in
  let from_a = rules_of_policy pos a in
  let from_b = rules_of_policy pos b in
  conflicts_among (from_a @ from_b)

(* --- change-impact region overlap ---------------------------------------- *)

module Delta = Dacs_policy.Delta

(* Two pins can constrain one and the same request only when they bind
   different positions, or the same position to intersecting value sets
   — the same single-valued-attribute reading as clause_constraint. *)
let pins_compatible (a : Delta.pin) (b : Delta.pin) =
  a.Delta.pin_category <> b.Delta.pin_category
  || a.Delta.pin_attribute <> b.Delta.pin_attribute
  || List.exists (fun v -> List.mem v b.Delta.pin_values) a.Delta.pin_values

let zones_overlap (za : Delta.zone) (zb : Delta.zone) =
  List.for_all (fun pa -> List.for_all (fun pb -> pins_compatible pa pb) zb) za

let regions_overlap (a : Delta.t) (b : Delta.t) =
  match (a, b) with
  | Delta.Empty, _ | _, Delta.Empty -> false
  | Delta.Unbounded, _ | _, Delta.Unbounded -> true
  | Delta.Zones za, Delta.Zones zb ->
    List.exists (fun x -> List.exists (fun y -> zones_overlap x y) zb) za

let resolution algorithm c =
  match algorithm with
  | Combine.Deny_overrides | Combine.Ordered_deny_overrides -> Decision.Deny
  | Combine.Permit_overrides | Combine.Ordered_permit_overrides -> Decision.Permit
  | Combine.First_applicable -> if c.permit_first then Decision.Permit else Decision.Deny
  | Combine.Only_one_applicable -> Decision.Indeterminate "more than one applicable policy"
