(* Golden conformance corpus for the combining algorithms.

   Each case pins the implemented semantics of one edge interaction —
   empty sets, all-NotApplicable children, Indeterminate propagation,
   obligation merge order — as a (policy, request, expected) triple.
   The corpus is data, not test closures: every entry is evaluated twice,
   through the interpreter (Policy.evaluate_set) and through the compiled
   form (Compiled.compile + evaluate), and both passes must produce
   byte-identical decisions and obligation order.

   Note on Indeterminate: XACML 3.0 refines Indeterminate into
   Indeterminate{D}, {P} and {DP} and lets e.g. deny-overrides turn
   Indeterminate{D} + Deny into Deny.  This engine carries a single
   Indeterminate (with the error message), i.e. it conservatively treats
   every evaluation error as a potential decision of either effect.  The
   cases below pin that coarsening explicitly wherever the two semantics
   diverge, so any future refinement has to revisit them deliberately. *)

module Policy = Dacs_policy.Policy
module Rule = Dacs_policy.Rule
module Target = Dacs_policy.Target
module Expr = Dacs_policy.Expr
module Combine = Dacs_policy.Combine
module Compiled = Dacs_policy.Compiled
module Context = Dacs_policy.Context
module Decision = Dacs_policy.Decision
module Obligation = Dacs_policy.Obligation
module Value = Dacs_policy.Value

let ctx =
  Context.make
    ~subject:[ ("subject-id", Value.String "alice"); ("role", Value.String "user") ]
    ~resource:[ ("resource-id", Value.String "doc") ]
    ~action:[ ("action-id", Value.String "read") ]
    ()

(* Building blocks: one rule per behaviour, wrapped one-per-policy so a
   child policy's decision is exactly its rule's. *)
let permit_rule id = Rule.permit id
let deny_rule id = Rule.deny id

let na_rule id = Rule.permit ~target:Target.(any |> subject_is "role" "nobody") id

let indet_rule id =
  (* A condition over a designator that must be present but is not: the
     canonical missing-attribute evaluation error. *)
  Rule.permit ~condition:(Expr.one_of (Expr.subject_attr ~must_be_present:true "clearance") [ "x" ]) id

let policy_of ?obligations id rule =
  Policy.Inline_policy (Policy.make ?obligations ~id ~rule_combining:Combine.First_applicable [ rule ])

(* NotApplicable by *policy target* — what only-one-applicable's
   applicability test inspects (a child whose target matches but whose
   rules all fall through is still "applicable" to that algorithm). *)
let na_policy id =
  Policy.Inline_policy
    (Policy.make ~id ~target:Target.(any |> subject_is "role" "nobody") [ Rule.permit "r" ])

let set alg ?obligations children =
  Policy.make_set ~id:"set" ~policy_combining:alg ?obligations children

let decision = Alcotest.testable Decision.pp (fun a b ->
    Decision.equal_decision a.Decision.decision b.Decision.decision
    && List.length a.Decision.obligations = List.length b.Decision.obligations
    && List.for_all2 Obligation.equal a.Decision.obligations b.Decision.obligations)

let indet = Decision.indeterminate "any message"

let ob id = Obligation.make ~fulfill_on:Obligation.Permit ("urn:test:" ^ id)
let ob_deny id = Obligation.make ~fulfill_on:Obligation.Deny ("urn:test:" ^ id)

let with_obs decision obs = { decision with Decision.obligations = obs }

let all_algorithms =
  [
    ("deny-overrides", Combine.Deny_overrides);
    ("permit-overrides", Combine.Permit_overrides);
    ("first-applicable", Combine.First_applicable);
    ("only-one-applicable", Combine.Only_one_applicable);
    ("ordered-deny-overrides", Combine.Ordered_deny_overrides);
    ("ordered-permit-overrides", Combine.Ordered_permit_overrides);
  ]

(* --- the corpus: (name, group, set, expected) entries ------------------- *)

type entry = { name : string; group : string; s : Policy.set; expected : Decision.result }

let entry group name s expected = { name; group; s; expected }

(* --- empty and all-NotApplicable sets ---------------------------------- *)

let empty_set_entries =
  List.map
    (fun (name, alg) ->
      entry "empty-sets" (name ^ ": empty policy set -> NotApplicable") (set alg [])
        Decision.not_applicable)
    all_algorithms

let all_na_entries =
  List.map
    (fun (name, alg) ->
      entry "all-not-applicable" (name ^ ": all children NotApplicable -> NotApplicable")
        (set alg [ na_policy "na1"; na_policy "na2" ])
        Decision.not_applicable)
    all_algorithms

(* --- Indeterminate interactions ---------------------------------------- *)

let indeterminate_entries =
  let e = entry "indeterminate" in
  [
    (* deny-overrides: an Indeterminate is a potential Deny and decides
       immediately — even when an actual Deny follows.  (XACML 3.0
       deny-overrides would refine Indeterminate{D} + Deny to Deny; the
       single-Indeterminate coarsening reports the error instead.) *)
    e "deny-overrides: Permit + Indeterminate -> Indeterminate"
      (set Combine.Deny_overrides
         [ policy_of "p" (permit_rule "r1"); policy_of "i" (indet_rule "r2") ])
      indet;
    e "deny-overrides: Indeterminate short-circuits before a later Deny"
      (set Combine.Deny_overrides
         [ policy_of "i" (indet_rule "r1"); policy_of "d" (deny_rule "r2") ])
      indet;
    e "deny-overrides: Deny wins over earlier Permit"
      (set Combine.Deny_overrides
         [ policy_of "p" (permit_rule "r1"); policy_of "d" (deny_rule "r2") ])
      Decision.deny;
    (* permit-overrides: a Permit still wins over an earlier error, but an
       unresolved error outweighs Deny — the potential Permit cannot be
       ruled out.  (Coarsening of XACML's Indeterminate{P} vs {DP}.) *)
    e "permit-overrides: Indeterminate then Permit -> Permit"
      (set Combine.Permit_overrides
         [ policy_of "i" (indet_rule "r1"); policy_of "p" (permit_rule "r2") ])
      Decision.permit;
    e "permit-overrides: Deny + Indeterminate -> Indeterminate"
      (set Combine.Permit_overrides
         [ policy_of "d" (deny_rule "r1"); policy_of "i" (indet_rule "r2") ])
      indet;
    e "first-applicable: Indeterminate stops the scan"
      (set Combine.First_applicable
         [ policy_of "i" (indet_rule "r1"); policy_of "p" (permit_rule "r2") ])
      indet;
    e "first-applicable: NotApplicable children are skipped"
      (set Combine.First_applicable
         [ policy_of "na" (na_rule "r1"); policy_of "d" (deny_rule "r2");
           policy_of "p" (permit_rule "r3") ])
      Decision.deny;
    e "only-one-applicable: exactly one applicable -> its decision"
      (set Combine.Only_one_applicable [ na_policy "na"; policy_of "p" (permit_rule "r2") ])
      Decision.permit;
    e "only-one-applicable: two applicable -> Indeterminate"
      (set Combine.Only_one_applicable
         [ policy_of "p1" (permit_rule "r1"); policy_of "p2" (permit_rule "r2") ])
      indet;
    (* Applicability means *target* applicability: children whose targets
       match are "applicable" even if every rule inside falls through. *)
    e "only-one-applicable: applicability is target match, not rule outcome"
      (set Combine.Only_one_applicable
         [ policy_of "na1" (na_rule "r1"); policy_of "na2" (na_rule "r2") ])
      indet;
  ]

(* --- obligation merge order -------------------------------------------- *)

let obligation_entries =
  let e = entry "obligations" in
  [
    (* deny-overrides evaluates every non-deciding child: both permits
       contribute, in document order, then the set's own obligations. *)
    e "obligations merge in document order (children then set)"
      (set Combine.Deny_overrides
         ~obligations:[ ob "set"; ob_deny "set-d" ]
         [
           policy_of ~obligations:[ ob "a" ] "pa" (permit_rule "r1");
           policy_of ~obligations:[ ob "b" ] "pb" (permit_rule "r2");
         ])
      (with_obs Decision.permit [ ob "a"; ob "b"; ob "set" ]);
    (* A deciding Deny collects only deny-matching obligations. *)
    e "deny collects only the denying child's obligations"
      (set Combine.Deny_overrides
         ~obligations:[ ob "set"; ob_deny "set-d" ]
         [
           policy_of ~obligations:[ ob "a" ] "pa" (permit_rule "r1");
           policy_of ~obligations:[ ob_deny "d" ] "pd" (deny_rule "r2");
         ])
      (with_obs Decision.deny [ ob_deny "d"; ob_deny "set-d" ]);
    (* permit-overrides short-circuits on the first Permit: later permits
       never evaluate, so only the deciding child's obligations attach. *)
    e "permit-overrides short-circuit keeps only the deciding permit's obligations"
      (set Combine.Permit_overrides
         [
           policy_of ~obligations:[ ob "a" ] "pa" (permit_rule "r1");
           policy_of ~obligations:[ ob "b" ] "pb" (permit_rule "r2");
         ])
      (with_obs Decision.permit [ ob "a" ]);
    (* Obligations on the losing effect never leak into the decision. *)
    e "obligations filter by effect"
      (set Combine.Deny_overrides
         [ policy_of ~obligations:[ ob "a"; ob_deny "never" ] "pa" (permit_rule "r1") ])
      (with_obs Decision.permit [ ob "a" ]);
  ]

let corpus = empty_set_entries @ all_na_entries @ indeterminate_entries @ obligation_entries

(* --- the two evaluator passes ------------------------------------------ *)

let interpreted_case e =
  Alcotest.test_case e.name `Quick (fun () ->
      Alcotest.check decision e.name e.expected (Policy.evaluate_set ctx e.s))

(* The compiled pass: same corpus, same expectations, byte-identical
   obligation order — the golden cases double as the compiled evaluator's
   conformance gate. *)
let compiled_case e =
  Alcotest.test_case e.name `Quick (fun () ->
      Alcotest.check decision e.name e.expected
        (Compiled.evaluate ctx (Compiled.compile (Policy.Inline_set e.s))))

let groups = [ "empty-sets"; "all-not-applicable"; "indeterminate"; "obligations" ]

let suite_of make tag =
  List.map
    (fun g -> (g ^ tag, List.filter_map (fun e -> if e.group = g then Some (make e) else None) corpus))
    groups

let () =
  Alcotest.run "dacs_conformance" (suite_of interpreted_case "" @ suite_of compiled_case "-compiled")
