(** Policy administration lifecycle (§3.2 "Management of Access Control
    Systems").

    The paper: "policy management involves many different steps including
    writing, reviewing, testing, approving, issuing ... Providing means of
    securing all those steps should be considered mandatory."

    This module drives a draft through that pipeline:

    {v  Draft --review--> Reviewed --approve(×k)--> Approved --issue--> Issued
          \__________________ rejected review findings ______________/      v}

    - {b review} runs the static validator, test-evaluates the draft
      against sample requests, and checks for modality conflicts with the
      currently issued policy; blocking findings reject the draft.
    - {b approve} requires a signature over the draft's canonical form by
      a registered approver — approvals are cryptographically bound to the
      exact text that was reviewed.
    - {b issue} publishes to the PAP only after the configured number of
      approvals; any edit restarts the pipeline. *)

type state =
  | Draft
  | Reviewed
  | Approved
  | Issued
  | Rejected of string

val state_to_string : state -> string

type review_report = {
  problems : Dacs_policy.Validate.problem list;
  conflicts_with_current : Conflict.conflict list;
  test_failures : string list;
      (** sample requests whose decision differed from the expectation *)
}

type t

val create :
  pap:Pap.t ->
  approvers:(string * Dacs_crypto.Rsa.public_key) list ->
  ?required_approvals:int ->
  now:(unit -> float) ->
  unit ->
  t
(** [required_approvals] defaults to 1.  [now] stamps the audit trail
    (pass the simulation clock). *)

val submit : t -> author:string -> Dacs_policy.Policy.child -> string
(** Register a draft; returns its draft id. *)

val state_of : t -> draft:string -> state option

val review :
  t ->
  draft:string ->
  ?expectations:(Dacs_policy.Context.t * Dacs_policy.Decision.t) list ->
  unit ->
  (review_report, string) result
(** Validation + conflict analysis + test evaluation.  Validation
    problems or failed expectations reject the draft (conflicts with the
    current policy are reported but do not block — the combining
    algorithm resolves them, and the report says how many there are). *)

val signing_payload : t -> draft:string -> string option
(** What an approver must sign (the draft's canonical XML). *)

val approve :
  t -> draft:string -> approver:string -> signature:string -> (int, string) result
(** Verify the signature and record the approval; returns how many
    approvals the draft now has.  Fails for unknown approvers, bad
    signatures, double approval, or drafts not yet reviewed. *)

val issue : t -> draft:string -> (int, string) result
(** Publish to the PAP; returns the PAP's new version.  Only approved
    drafts can be issued. *)

val history : t -> draft:string -> (float * string) list
(** Timestamped transitions, oldest first. *)

val drafts : t -> (string * state) list
