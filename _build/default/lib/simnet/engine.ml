type event = { time : float; seq : int; action : unit -> unit }

(* Binary min-heap ordered by (time, seq). *)
module Heap = struct
  type t = { mutable data : event array; mutable size : int }

  let dummy = { time = 0.0; seq = 0; action = ignore }

  let create () = { data = Array.make 64 dummy; size = 0 }

  let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let push h e =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) dummy in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    let i = ref h.size in
    h.size <- h.size + 1;
    h.data.(!i) <- e;
    (* Sift up. *)
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      if lt h.data.(!i) h.data.(parent) then begin
        let tmp = h.data.(parent) in
        h.data.(parent) <- h.data.(!i);
        h.data.(!i) <- tmp;
        i := parent
      end
      else continue := false
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      h.data.(h.size) <- dummy;
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && lt h.data.(l) h.data.(!smallest) then smallest := l;
        if r < h.size && lt h.data.(r) h.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.data.(!smallest) in
          h.data.(!smallest) <- h.data.(!i);
          h.data.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end

  let peek h = if h.size = 0 then None else Some h.data.(0)
end

type t = { mutable clock : float; mutable next_seq : int; heap : Heap.t; rng : Dacs_crypto.Rng.t }

let create ?(seed = 1L) () =
  { clock = 0.0; next_seq = 0; heap = Heap.create (); rng = Dacs_crypto.Rng.create seed }

let now t = t.clock
let rng t = t.rng

let schedule_at t ~at action =
  if at < t.clock then invalid_arg "Engine.schedule_at: time is in the past";
  let e = { time = at; seq = t.next_seq; action } in
  t.next_seq <- t.next_seq + 1;
  Heap.push t.heap e

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(t.clock +. delay) action

let step t =
  match Heap.pop t.heap with
  | None -> false
  | Some e ->
    t.clock <- e.time;
    e.action ();
    true

let run ?until t =
  let continue = ref true in
  while !continue do
    match (Heap.peek t.heap, until) with
    | None, _ -> continue := false
    | Some e, Some limit when e.time > limit ->
      t.clock <- limit;
      continue := false
    | Some _, _ -> ignore (step t)
  done

let pending t = t.heap.Heap.size
