(** Symbol interning for the serving path.

    At millions of users the per-request cost of building cache keys —
    formatting every attribute into a sorted string and hashing it with
    SHA-256 (the original {!Decision_cache.sha_request_key}) — dominates
    the warm path.  Crampton & Morisset's formal framing (PAPERS.md)
    licenses the fix: policy evaluation is independent of identifier
    representation, so subjects, resources, actions, attribute
    (category, id) pairs and attribute values can all be interned to
    dense integer ids once and compared/packed as machine words ever
    after.  The oracle suite proves the swap changes no decision.

    Three nested namespaces, all backed by pre-sized hash tables:

    - {b strings} — raw identifier text (subject ids, attribute ids, …);
    - {b pairs} — an attribute position [(category, id)];
    - {b atoms} — one attribute binding [(pair, value)].

    A request key is the sorted atom multiset of the Subject, Resource
    and Action sections, encoded as dot-separated decimal atom ids — a
    short ASCII string (XML-safe, so L2 wire sync keeps working) instead
    of a 64-byte hex digest.  Ids are dense and deterministic within a
    process: the same first-encounter order yields the same ids, and the
    whole simulation shares one process, so keys are comparable across
    every simulated node via {!global}. *)

type t
(** One interning universe (string, pair and atom tables). *)

type sym = int
(** A dense id, unique within its namespace of one {!t}. *)

val create : ?expected:int -> unit -> t
(** Fresh universe; tables are pre-sized for [expected] distinct strings
    (default 1024) to avoid rehash churn while the vocabulary grows. *)

val global : t
(** The process-wide universe used by the serving path.  Pre-sized for a
    million-user vocabulary's first growth doublings. *)

val string : t -> string -> sym
(** Intern raw identifier text. *)

val name : t -> sym -> string
(** Reverse lookup; raises [Invalid_argument] on an unknown sym. *)

val value : t -> Dacs_policy.Value.t -> sym
(** Intern a typed attribute value.  Distinct types never share a sym
    (structural interning), mirroring the type-annotated
    [Value.describe] used by the legacy string keys.  Caveat: a NaN
    [Double] never equals itself and so never re-interns to the same
    sym — callers must not feed NaN attribute values. *)

val pair : t -> Dacs_policy.Context.category -> string -> sym
(** Intern an attribute position [(category, id)]. *)

val atom : t -> pair:sym -> value:sym -> sym
(** Intern one attribute binding.  Equal bindings get equal syms, so a
    sorted atom sequence is a canonical form of an attribute multiset. *)

val pack2 : int -> int -> int
(** [pack2 a b] packs two dense syms into one word ([a lsl 31 lor b]) —
    the int-keyed form used by the attribute cache.  Both arguments must
    be dense table syms (far below [2^31]). *)

val request_key : ?table:t -> Dacs_policy.Context.t -> string
(** Packed request key over the Subject, Resource and Action sections —
    Environment is excluded exactly as in the legacy scheme (a key that
    changes every request would never hit).  Two contexts produce the
    same key iff their (category, id, value) multisets over those three
    sections are equal; bag and insertion order never matter. *)

(** {1 Reverse lookups}

    Dense per-sym reverse tables, populated as syms are minted, so the
    invalidation plane can decode a packed cache key back into the
    attribute bags it was built from and test it against a {!Delta}
    region. *)

val pair_info : t -> sym -> Dacs_policy.Context.category * string
(** The attribute position a pair sym was minted for; raises
    [Invalid_argument] on an unknown sym. *)

val value_of : t -> sym -> Dacs_policy.Value.t
(** The typed value a value sym was minted for; raises
    [Invalid_argument] on an unknown sym. *)

val atom_info : t -> sym -> sym * sym
(** [(pair, value)] syms of one atom; raises [Invalid_argument] on an
    unknown sym. *)

val decode_key : ?table:t -> string -> Dacs_policy.Context.t option
(** Decode a {!request_key} back into a context carrying the Subject,
    Resource and Action bags the key canonicalised (Environment is
    never in a key, so the result carries none).  [None] on anything
    that is not a dot-separated sequence of known atom syms — notably
    SHA-256 hex digests from the legacy scheme, which region
    invalidation must treat as matching (drop) to stay conservative. *)

type stats = { strings : int; pairs : int; values : int; atoms : int }

val stats : t -> stats
(** Table populations, for capacity reporting in benches. *)
