lib/core/conflict.ml: Dacs_policy List Printf String
