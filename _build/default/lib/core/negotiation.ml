type requirement = string list list

type credential = {
  name : string;
  release : requirement;
}

type party = {
  party_name : string;
  credentials : credential list;
}

let unprotected name = { name; release = [ [] ] }

let protected_by name needed = { name; release = [ needed ] }

type outcome = {
  success : bool;
  rounds : int;
  messages : int;
  disclosed_by_client : string list;
  disclosed_by_server : string list;
}

let satisfied requirement disclosed =
  List.exists (fun conj -> List.for_all (fun c -> List.mem c disclosed) conj) requirement

(* One turn: disclose every not-yet-disclosed credential whose release
   policy is met by what the counterparty has shown. *)
let disclose_turn party ~already ~seen =
  List.filter_map
    (fun c ->
      if List.mem c.name already then None
      else if satisfied c.release seen then Some c.name
      else None)
    party.credentials

let negotiate ?(max_rounds = 20) ~client ~server ~target () =
  let rec go ~round ~messages ~from_client ~from_server =
    if satisfied target from_client then
      {
        success = true;
        rounds = round;
        messages;
        disclosed_by_client = List.rev from_client;
        disclosed_by_server = List.rev from_server;
      }
    else if round >= max_rounds then
      {
        success = false;
        rounds = round;
        messages;
        disclosed_by_client = List.rev from_client;
        disclosed_by_server = List.rev from_server;
      }
    else begin
      let new_client = disclose_turn client ~already:from_client ~seen:from_server in
      let from_client = new_client @ from_client in
      (* The client's turn may already satisfy the target; the server
         replies with what it can now release (enabling the next client
         turn). *)
      let new_server =
        if satisfied target from_client then []
        else disclose_turn server ~already:from_server ~seen:from_client
      in
      let from_server = new_server @ from_server in
      let sent = (if new_client = [] then 0 else 1) + if new_server = [] then 0 else 1 in
      if sent = 0 && not (satisfied target from_client) then
        {
          success = false;
          rounds = round + 1;
          messages;
          disclosed_by_client = List.rev from_client;
          disclosed_by_server = List.rev from_server;
        }
      else
        go ~round:(round + 1) ~messages:(messages + sent) ~from_client ~from_server
    end
  in
  go ~round:0 ~messages:0 ~from_client:[] ~from_server:[]
