(* Tests for dacs_rbac: hierarchy, assignment, SoD, sessions, compilation. *)

open Dacs_rbac

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_list = Alcotest.(list string)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let expect_error = function
  | Ok _ -> Alcotest.fail "expected an error"
  | Error (_ : string) -> ()

(* A small hospital model used across tests:
   physician > doctor > clinician (seniority), pharmacist separate. *)
let hospital () =
  let m = Rbac.empty in
  let m = List.fold_left Rbac.add_role m [ "clinician"; "doctor"; "physician"; "pharmacist"; "auditor" ] in
  let m = ok (Rbac.add_inheritance m ~senior:"doctor" ~junior:"clinician") in
  let m = ok (Rbac.add_inheritance m ~senior:"physician" ~junior:"doctor") in
  let m = ok (Rbac.grant_permission m "clinician" { Rbac.action = "read"; resource = "charts" }) in
  let m = ok (Rbac.grant_permission m "doctor" { Rbac.action = "write"; resource = "charts" }) in
  let m = ok (Rbac.grant_permission m "physician" { Rbac.action = "sign"; resource = "orders" }) in
  let m = ok (Rbac.grant_permission m "pharmacist" { Rbac.action = "dispense"; resource = "drugs" }) in
  m

let test_roles_basic () =
  let m = hospital () in
  check int_ "role count" 5 (List.length (Rbac.roles m));
  check bool_ "has role" true (Rbac.has_role m "doctor");
  check bool_ "idempotent add" true (List.length (Rbac.roles (Rbac.add_role m "doctor")) = 5)

let test_hierarchy () =
  let m = hospital () in
  check string_list "physician juniors" [ "clinician"; "doctor" ] (List.sort compare (Rbac.juniors m "physician"));
  check string_list "clinician seniors" [ "doctor"; "physician" ] (List.sort compare (Rbac.seniors m "clinician"));
  check string_list "leaf juniors" [] (Rbac.juniors m "pharmacist")

let test_hierarchy_errors () =
  let m = hospital () in
  expect_error (Rbac.add_inheritance m ~senior:"nope" ~junior:"doctor");
  expect_error (Rbac.add_inheritance m ~senior:"doctor" ~junior:"doctor");
  (* clinician -> physician would close a cycle *)
  expect_error (Rbac.add_inheritance m ~senior:"clinician" ~junior:"physician")

let test_assignment_and_permissions () =
  let m = hospital () in
  let m = ok (Rbac.assign_user m "alice" "physician") in
  let m = ok (Rbac.assign_user m "bob" "clinician") in
  check string_list "alice authorized" [ "clinician"; "doctor"; "physician" ]
    (Rbac.authorized_roles m "alice");
  check bool_ "alice inherits read" true (Rbac.check_access m "alice" ~action:"read" ~resource:"charts");
  check bool_ "alice signs" true (Rbac.check_access m "alice" ~action:"sign" ~resource:"orders");
  check bool_ "bob reads" true (Rbac.check_access m "bob" ~action:"read" ~resource:"charts");
  check bool_ "bob cannot write" false (Rbac.check_access m "bob" ~action:"write" ~resource:"charts");
  check int_ "alice permission count" 3 (List.length (Rbac.user_permissions m "alice"));
  let m = Rbac.deassign_user m "alice" "physician" in
  check bool_ "deassigned" false (Rbac.check_access m "alice" ~action:"sign" ~resource:"orders")

let test_permission_revocation () =
  let m = hospital () in
  let m = ok (Rbac.assign_user m "bob" "clinician") in
  let m = Rbac.revoke_permission m "clinician" { Rbac.action = "read"; resource = "charts" } in
  check bool_ "revoked" false (Rbac.check_access m "bob" ~action:"read" ~resource:"charts")

let test_ssd () =
  let m = hospital () in
  let m = ok (Rbac.add_ssd m ~name:"prescriber-dispenser" ~roles:[ "doctor"; "pharmacist" ] ~cardinality:2) in
  let m = ok (Rbac.assign_user m "carol" "doctor") in
  (* Direct conflict *)
  expect_error (Rbac.assign_user m "carol" "pharmacist");
  check bool_ "violation named" true (Rbac.ssd_violation m "carol" "pharmacist" = Some "prescriber-dispenser");
  (* Inherited conflict: physician inherits doctor. *)
  let m2 = ok (Rbac.assign_user m "dave" "pharmacist") in
  expect_error (Rbac.assign_user m2 "dave" "physician");
  (* Unrelated role fine. *)
  ignore (ok (Rbac.assign_user m "carol" "auditor"))

let test_ssd_retroactive () =
  let m = hospital () in
  let m = ok (Rbac.assign_user m "eve" "doctor") in
  let m = ok (Rbac.assign_user m "eve" "pharmacist") in
  (* Constraint creation must fail because eve already violates it. *)
  expect_error (Rbac.add_ssd m ~name:"c" ~roles:[ "doctor"; "pharmacist" ] ~cardinality:2)

let test_ssd_parameter_validation () =
  let m = hospital () in
  expect_error (Rbac.add_ssd m ~name:"c" ~roles:[ "doctor"; "pharmacist" ] ~cardinality:1);
  expect_error (Rbac.add_ssd m ~name:"c" ~roles:[ "doctor" ] ~cardinality:2);
  expect_error (Rbac.add_ssd m ~name:"c" ~roles:[ "doctor"; "ghost" ] ~cardinality:2)

let test_unknown_role_errors () =
  let m = hospital () in
  expect_error (Rbac.assign_user m "x" "ghost");
  expect_error (Rbac.grant_permission m "ghost" { Rbac.action = "a"; resource = "r" })

(* --- sessions ---------------------------------------------------------- *)

let test_session_activation () =
  let m = hospital () in
  let m = ok (Rbac.assign_user m "alice" "physician") in
  let s = Session.create m "alice" in
  check int_ "starts empty" 0 (List.length (Session.active_roles s));
  check bool_ "no access yet" false (Session.check_access m s ~action:"read" ~resource:"charts");
  let s = ok (Session.activate m s "doctor") in
  check bool_ "doctor writes" true (Session.check_access m s ~action:"write" ~resource:"charts");
  check bool_ "inherited read" true (Session.check_access m s ~action:"read" ~resource:"charts");
  check bool_ "not activated sign" false (Session.check_access m s ~action:"sign" ~resource:"orders");
  let s = Session.deactivate s "doctor" in
  check bool_ "deactivated" false (Session.check_access m s ~action:"write" ~resource:"charts")

let test_session_unauthorized () =
  let m = hospital () in
  let m = ok (Rbac.assign_user m "bob" "clinician") in
  let s = Session.create m "bob" in
  expect_error (Session.activate m s "doctor")

let test_session_dsd () =
  let m = hospital () in
  let m = ok (Rbac.add_dsd m ~name:"no-dual-hats" ~roles:[ "doctor"; "auditor" ] ~cardinality:2) in
  let m = ok (Rbac.assign_user m "alice" "doctor") in
  let m = ok (Rbac.assign_user m "alice" "auditor") in
  (* Static assignment of both is fine (DSD, not SSD)... *)
  let s = Session.create m "alice" in
  let s = ok (Session.activate m s "doctor") in
  (* ...but activating both at once is not. *)
  expect_error (Session.activate m s "auditor");
  (* After deactivating doctor, auditor activates fine. *)
  let s = Session.deactivate s "doctor" in
  ignore (ok (Session.activate m s "auditor"))

let test_session_dsd_inherited () =
  let m = hospital () in
  let m = ok (Rbac.add_dsd m ~name:"c" ~roles:[ "clinician"; "auditor" ] ~cardinality:2) in
  let m = ok (Rbac.assign_user m "alice" "physician") in
  let m = ok (Rbac.assign_user m "alice" "auditor") in
  let s = Session.create m "alice" in
  let s = ok (Session.activate m s "auditor") in
  (* physician inherits clinician, so activating it trips the constraint. *)
  expect_error (Session.activate m s "physician")

(* --- compilation -------------------------------------------------------- *)

let eval_as model user action resource policy =
  let ctx =
    Dacs_policy.Context.make
      ~subject:(Compile.subject_for_user model user)
      ~resource:[ ("resource-id", Dacs_policy.Value.String resource) ]
      ~action:[ ("action-id", Dacs_policy.Value.String action) ]
      ()
  in
  (Dacs_policy.Policy.evaluate ctx policy).Dacs_policy.Decision.decision

let test_compile_role_based () =
  let m = hospital () in
  let m = ok (Rbac.assign_user m "alice" "physician") in
  let m = ok (Rbac.assign_user m "bob" "clinician") in
  let policy = Compile.to_policy m in
  check bool_ "validates" true (Dacs_policy.Validate.check_policy policy = []);
  check bool_ "alice writes" true (eval_as m "alice" "write" "charts" policy = Dacs_policy.Decision.Permit);
  check bool_ "bob denied write" true (eval_as m "bob" "write" "charts" policy = Dacs_policy.Decision.Deny);
  check bool_ "bob reads" true (eval_as m "bob" "read" "charts" policy = Dacs_policy.Decision.Permit);
  check bool_ "unknown denied" true (eval_as m "mallory" "read" "charts" policy = Dacs_policy.Decision.Deny)

let test_compile_identity_based () =
  let m = hospital () in
  let m = ok (Rbac.assign_user m "alice" "physician") in
  let m = ok (Rbac.assign_user m "bob" "clinician") in
  let policy = Compile.to_identity_policy m in
  check bool_ "alice writes" true (eval_as m "alice" "write" "charts" policy = Dacs_policy.Decision.Permit);
  check bool_ "bob denied write" true (eval_as m "bob" "write" "charts" policy = Dacs_policy.Decision.Deny);
  check bool_ "agrees with model" true
    (List.for_all
       (fun (user, action, resource) ->
         let model_says = Rbac.check_access m user ~action ~resource in
         let policy_says = eval_as m user action resource policy = Dacs_policy.Decision.Permit in
         model_says = policy_says)
       [
         ("alice", "read", "charts"); ("alice", "sign", "orders"); ("bob", "read", "charts");
         ("bob", "sign", "orders"); ("mallory", "read", "charts");
       ])

let test_compile_scaling_shape () =
  (* Identity-based policies grow with users; role-based stay fixed. *)
  let base = hospital () in
  let with_users n =
    let rec go m i =
      if i >= n then m else go (ok (Rbac.assign_user m (Printf.sprintf "u%d" i) "clinician")) (i + 1)
    in
    go base 0
  in
  let small = with_users 5 and large = with_users 50 in
  check bool_ "role-based size constant" true
    (Dacs_policy.Policy.rule_count (Compile.to_policy small)
    = Dacs_policy.Policy.rule_count (Compile.to_policy large));
  check bool_ "identity-based grows" true
    (Dacs_policy.Policy.rule_count (Compile.to_identity_policy large)
    > 5 * Dacs_policy.Policy.rule_count (Compile.to_identity_policy small) / 2)

(* --- property tests -------------------------------------------------------- *)

(* Generate random models and check model/compiled-policy agreement. *)
let gen_model =
  QCheck.Gen.(
    let role_names = [ "r0"; "r1"; "r2"; "r3"; "r4" ] in
    let user_names = [ "u0"; "u1"; "u2" ] in
    let perm = map2 (fun a r -> { Rbac.action = Printf.sprintf "a%d" a; resource = Printf.sprintf "res%d" r }) (0 -- 2) (0 -- 2) in
    let m0 = List.fold_left Rbac.add_role Rbac.empty role_names in
    list_size (0 -- 6) (pair (oneofl role_names) (oneofl role_names)) >>= fun edges ->
    list_size (0 -- 8) (pair (oneofl role_names) perm) >>= fun grants ->
    list_size (0 -- 5) (pair (oneofl user_names) (oneofl role_names)) >>= fun assigns ->
    let m =
      List.fold_left
        (fun m (senior, junior) ->
          match Rbac.add_inheritance m ~senior ~junior with Ok m -> m | Error _ -> m)
        m0 edges
    in
    let m =
      List.fold_left
        (fun m (role, p) -> match Rbac.grant_permission m role p with Ok m -> m | Error _ -> m)
        m grants
    in
    let m =
      List.fold_left
        (fun m (u, r) -> match Rbac.assign_user m u r with Ok m -> m | Error _ -> m)
        m assigns
    in
    return m)

let arb_model = QCheck.make ~print:(fun m -> Format.asprintf "%a" Rbac.pp m) gen_model

let prop_compiled_agrees =
  QCheck.Test.make ~name:"compiled policy agrees with the model" ~count:100 arb_model (fun m ->
      let policy = Compile.to_policy m in
      List.for_all
        (fun user ->
          List.for_all
            (fun a ->
              List.for_all
                (fun r ->
                  let action = Printf.sprintf "a%d" a and resource = Printf.sprintf "res%d" r in
                  let model_says = Rbac.check_access m user ~action ~resource in
                  let policy_says =
                    eval_as m user action resource policy = Dacs_policy.Decision.Permit
                  in
                  model_says = policy_says)
                [ 0; 1; 2 ])
            [ 0; 1; 2 ])
        (Rbac.users m))

let prop_hierarchy_acyclic =
  QCheck.Test.make ~name:"no role is its own junior" ~count:100 arb_model (fun m ->
      List.for_all (fun r -> not (List.mem r (Rbac.juniors m r))) (Rbac.roles m))

let prop_seniors_juniors_dual =
  QCheck.Test.make ~name:"seniors/juniors are dual" ~count:100 arb_model (fun m ->
      List.for_all
        (fun r -> List.for_all (fun j -> List.mem r (Rbac.seniors m j)) (Rbac.juniors m r))
        (Rbac.roles m))


(* --- textual format ----------------------------------------------------------- *)

let sample_text =
  "# hospital\n\
   role nurse\n\
   role doctor\n\
   role billing\n\
   inherit doctor nurse\n\
   grant nurse read vitals\n\
   grant doctor write charts\n\
   user alice doctor   # chief\n\
   user bob billing\n\
   ssd care-vs-billing 2 doctor billing\n\
   dsd no-dual 2 doctor billing\n"

let test_textual_parse () =
  match Textual.parse sample_text with
  | Error e -> Alcotest.fail e
  | Ok m ->
    check int_ "roles" 3 (List.length (Rbac.roles m));
    check bool_ "inheritance" true (List.mem "nurse" (Rbac.juniors m "doctor"));
    check bool_ "alice inherits read" true (Rbac.check_access m "alice" ~action:"read" ~resource:"vitals");
    check bool_ "ssd enforced" true (Result.is_error (Rbac.assign_user m "alice" "billing"));
    check int_ "dsd stored" 1 (List.length (Rbac.dsd_constraints m))

let test_textual_errors () =
  let bad text expected_line =
    match Textual.parse text with
    | Ok _ -> Alcotest.fail "expected a parse error"
    | Error e ->
      check bool_ "line number in message" true
        (let prefix = Printf.sprintf "line %d:" expected_line in
         String.length e >= String.length prefix && String.sub e 0 (String.length prefix) = prefix)
  in
  bad "role a\nfrobnicate b\n" 2;
  bad "inherit a b\n" 1;              (* unknown roles *)
  bad "role a\nssd c x a\n" 2;       (* non-integer cardinality *)
  bad "grant ghost read r\n" 1

let test_textual_roundtrip () =
  match Textual.parse sample_text with
  | Error e -> Alcotest.fail e
  | Ok m -> (
    match Textual.parse (Textual.to_string m) with
    | Error e -> Alcotest.fail e
    | Ok m' ->
      check (Alcotest.list string_list) "roles equal" [ Rbac.roles m ] [ Rbac.roles m' ];
      check bool_ "permissions equal" true
        (List.for_all
           (fun r -> Rbac.role_permissions m r = Rbac.role_permissions m' r)
           (Rbac.roles m));
      check bool_ "assignments equal" true
        (List.for_all (fun u -> Rbac.assigned_roles m u = Rbac.assigned_roles m' u) (Rbac.users m));
      check bool_ "constraints preserved" true
        (Rbac.ssd_constraints m = Rbac.ssd_constraints m'
        && Rbac.dsd_constraints m = Rbac.dsd_constraints m'))

let prop_textual_roundtrip =
  QCheck.Test.make ~name:"textual roundtrip preserves access decisions" ~count:100 arb_model
    (fun m ->
      match Textual.parse (Textual.to_string m) with
      | Error _ -> false
      | Ok m' ->
        List.for_all
          (fun user ->
            List.for_all
              (fun a ->
                List.for_all
                  (fun r ->
                    let action = Printf.sprintf "a%d" a and resource = Printf.sprintf "res%d" r in
                    Rbac.check_access m user ~action ~resource
                    = Rbac.check_access m' user ~action ~resource)
                  [ 0; 1; 2 ])
              [ 0; 1; 2 ])
          (Rbac.users m))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_compiled_agrees; prop_hierarchy_acyclic; prop_seniors_juniors_dual; prop_textual_roundtrip ]

let () =
  Alcotest.run "dacs_rbac"
    [
      ( "model",
        [
          Alcotest.test_case "roles" `Quick test_roles_basic;
          Alcotest.test_case "hierarchy" `Quick test_hierarchy;
          Alcotest.test_case "hierarchy errors" `Quick test_hierarchy_errors;
          Alcotest.test_case "assignment and permissions" `Quick test_assignment_and_permissions;
          Alcotest.test_case "revocation" `Quick test_permission_revocation;
          Alcotest.test_case "unknown roles" `Quick test_unknown_role_errors;
        ] );
      ( "sod",
        [
          Alcotest.test_case "static SoD" `Quick test_ssd;
          Alcotest.test_case "retroactive SSD rejected" `Quick test_ssd_retroactive;
          Alcotest.test_case "constraint validation" `Quick test_ssd_parameter_validation;
        ] );
      ( "session",
        [
          Alcotest.test_case "activation" `Quick test_session_activation;
          Alcotest.test_case "unauthorized role" `Quick test_session_unauthorized;
          Alcotest.test_case "dynamic SoD" `Quick test_session_dsd;
          Alcotest.test_case "DSD counts inherited roles" `Quick test_session_dsd_inherited;
        ] );
      ( "textual",
        [
          Alcotest.test_case "parse" `Quick test_textual_parse;
          Alcotest.test_case "errors carry line numbers" `Quick test_textual_errors;
          Alcotest.test_case "roundtrip" `Quick test_textual_roundtrip;
        ] );
      ( "compile",
        [
          Alcotest.test_case "role-based" `Quick test_compile_role_based;
          Alcotest.test_case "identity-based" `Quick test_compile_identity_based;
          Alcotest.test_case "scaling shape" `Quick test_compile_scaling_shape;
        ]
        @ props );
    ]
