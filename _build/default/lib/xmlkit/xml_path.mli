(** Small path-query language over {!Xml.t}.

    Grammar (slash-separated steps, evaluated from the given node's
    children):

    {v
      path  ::= step ('/' step)*
      step  ::= name pred?  |  '*' pred?  |  '..'
      pred  ::= '[@' attr '=' value ']'  |  '[' index ']'
    v}

    Names match on local names, so ["Policy/Rule"] finds
    [<xacml:Rule>] children of [<xacml:Policy>].  Indexes are 1-based,
    as in XPath. *)

exception Bad_path of string

val select : Xml.t -> string -> Xml.t list
(** All nodes reached by the path, in document order.
    @raise Bad_path when the path does not parse. *)

val select_one : Xml.t -> string -> Xml.t option
(** First match, if any. *)

val select_text : Xml.t -> string -> string option
(** Text content of the first match. *)

val select_attr : Xml.t -> string -> string -> string option
(** [select_attr node path name] is attribute [name] of the first match. *)

val exists : Xml.t -> string -> bool
