module Xml = Dacs_xml.Xml
module Service = Dacs_ws.Service
module Context = Dacs_policy.Context
module Value = Dacs_policy.Value
module Decision = Dacs_policy.Decision
module Obligation = Dacs_policy.Obligation
module Assertion = Dacs_saml.Assertion

type mode =
  | Pull of {
      pdps : Dacs_net.Net.node_id list;
      cache : Decision_cache.t option;
      call_timeout : float;
    }
  | Push of {
      trusted_issuer : string -> Dacs_crypto.Rsa.public_key option;
      check_revocation : Dacs_net.Net.node_id option;
      local_pdp : Pdp_service.t option;
    }
  | Agent of Pdp_service.t

type stats = {
  requests : int;
  granted : int;
  denied : int;
  pdp_calls : int;
  failovers : int;
  retries : int;
  breaker_trips : int;
  breaker_rejections : int;
  cache_hits : int;
  stale_serves : int;
  assertion_rejections : int;
  revocation_checks : int;
  obligations_fulfilled : int;
}

let zero_stats =
  {
    requests = 0;
    granted = 0;
    denied = 0;
    pdp_calls = 0;
    failovers = 0;
    retries = 0;
    breaker_trips = 0;
    breaker_rejections = 0;
    cache_hits = 0;
    stale_serves = 0;
    assertion_rejections = 0;
    revocation_checks = 0;
    obligations_fulfilled = 0;
  }

type t = {
  services : Service.t;
  node : Dacs_net.Net.node_id;
  domain : string;
  resource : string;
  content : string;
  audit : Audit.t;
  encryption_key : string option;
  mutable mode : mode;
  mutable decision_trust : Dacs_crypto.Cert.Trust_store.t option;
  mutable retry : Dacs_net.Rpc.retry_policy option;
  mutable stale_window : float;
  mutable stats : stats;
}

let node t = t.node
let resource t = t.resource
let audit t = t.audit

let stats t = t.stats
let reset_stats t = t.stats <- zero_stats

let now t = Dacs_net.Net.now (Service.net t.services)

let invalidate_cache t =
  match t.mode with
  | Pull { cache = Some cache; _ } -> Decision_cache.invalidate_all cache
  | Pull _ | Push _ | Agent _ -> ()

let require_signed_decisions t trust = t.decision_trust <- Some trust

let set_retry_policy t retry = t.retry <- retry
let retry_policy t = t.retry

let set_stale_window t window =
  if window < 0.0 then invalid_arg "Pep.set_stale_window: negative window";
  t.stale_window <- window

let stale_window t = t.stale_window

(* Resilience events from the RPC layer, folded into this PEP's stats so
   retry/breaker behaviour is observable per enforcement point. *)
let count_resilience t = function
  | Dacs_net.Rpc.Retrying _ -> t.stats <- { t.stats with retries = t.stats.retries + 1 }
  | Dacs_net.Rpc.Breaker_opened _ ->
    t.stats <- { t.stats with breaker_trips = t.stats.breaker_trips + 1 }
  | Dacs_net.Rpc.Breaker_rejected _ ->
    t.stats <- { t.stats with breaker_rejections = t.stats.breaker_rejections + 1 }
  | Dacs_net.Rpc.Attempt_failed _ | Dacs_net.Rpc.Breaker_half_opened _
  | Dacs_net.Rpc.Breaker_closed _ -> ()

let set_pull_pdps t pdps =
  match t.mode with
  | Pull p -> t.mode <- Pull { p with pdps }
  | Push _ | Agent _ -> ()

let pull_pdps t = match t.mode with Pull p -> p.pdps | Push _ | Agent _ -> []

(* --- enforcement -------------------------------------------------------- *)

let fulfil_obligations t (result : Decision.result) =
  (* Returns the content (possibly encrypted) and whether encryption was
     applied.  Unknown obligations are a PEP error in XACML; here they
     deny (the PEP "must understand" its obligations, §2.3). *)
  let rec go content encrypted fulfilled = function
    | [] -> Ok (content, encrypted, fulfilled)
    | (o : Obligation.t) :: rest -> (
      match o.Obligation.id with
      | "urn:dacs:obligation:audit" -> go content encrypted (fulfilled + 1) rest
      | "urn:dacs:obligation:content-filter" -> (
        (* Content-based access (§3.1): inspect the representation that
           would be provisioned; refuse when the forbidden marker occurs. *)
        match List.assoc_opt "forbidden" o.Obligation.parameters with
        | Some (Value.String forbidden) ->
          let contains hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
            nn = 0 || go 0
          in
          (* Always inspect the original representation, even if an
             earlier obligation already encrypted the response. *)
          if contains t.content forbidden then
            Error (Printf.sprintf "content filter matched %S" forbidden)
          else go content encrypted (fulfilled + 1) rest
        | _ -> Error "content-filter obligation lacks its forbidden parameter")
      | "urn:dacs:obligation:encrypt-response" -> (
        match t.encryption_key with
        | None -> Error "obligation to encrypt, but the PEP has no key"
        | Some key ->
          let rng = Dacs_crypto.Rng.create 7L in
          let cipher = Dacs_crypto.Stream_cipher.encrypt rng ~key content in
          go (Dacs_crypto.Encoding.base64_encode cipher) true (fulfilled + 1) rest)
      | _ -> Error (Printf.sprintf "unknown obligation %s" o.Obligation.id))
  in
  go t.content false 0 result.Decision.obligations

let enforce t ~subject ~action (result : Decision.result) reply =
  let record decision =
    Audit.record t.audit
      { Audit.at = now t; domain = t.domain; subject; resource = t.resource; action; decision }
  in
  match result.Decision.decision with
  | Decision.Permit -> (
    match fulfil_obligations t result with
    | Ok (content, encrypted, fulfilled) ->
      record Decision.Permit;
      t.stats <-
        {
          t.stats with
          granted = t.stats.granted + 1;
          obligations_fulfilled = t.stats.obligations_fulfilled + fulfilled;
        };
      reply (Wire.access_granted ~content ~encrypted ())
    | Error reason ->
      (* An unfulfillable obligation forbids granting access. *)
      record Decision.Deny;
      t.stats <- { t.stats with denied = t.stats.denied + 1 };
      reply (Wire.access_denied ~reason))
  | Decision.Deny ->
    record Decision.Deny;
    t.stats <- { t.stats with denied = t.stats.denied + 1 };
    reply (Wire.access_denied ~reason:"denied by policy")
  | Decision.Not_applicable ->
    (* Deny-biased PEP: no applicable policy means no access. *)
    record Decision.Deny;
    t.stats <- { t.stats with denied = t.stats.denied + 1 };
    reply (Wire.access_denied ~reason:"no applicable policy")
  | Decision.Indeterminate m ->
    record (Decision.Indeterminate m);
    t.stats <- { t.stats with denied = t.stats.denied + 1 };
    reply (Wire.access_denied ~reason:(Printf.sprintf "authorisation error: %s" m))

(* --- pull mode ------------------------------------------------------------ *)

let build_context t ~subject_attrs ~action =
  Context.make ~subject:subject_attrs
    ~resource:[ ("resource-id", Value.String t.resource) ]
    ~action:[ ("action-id", Value.String action) ]
    ~environment:[ ("time", Value.Time (now t)) ]
    ()

let pull_decide t ~pdps ~cache ~call_timeout ctx k =
  let key = Decision_cache.request_key ctx in
  let found =
    match cache with
    | None -> Decision_cache.Absent
    | Some cache -> Decision_cache.lookup cache ~now:(now t) ~max_stale:t.stale_window ~key
  in
  match found with
  | Decision_cache.Fresh result ->
    t.stats <- { t.stats with cache_hits = t.stats.cache_hits + 1 };
    k result
  | Decision_cache.Stale _ | Decision_cache.Absent ->
    (* Degraded availability (§ dependability): with every replica down, a
       decision expired by at most [stale_window] seconds is still served
       — the last answer the policy actually gave — in preference to
       denying all access.  Beyond the bound we fail closed. *)
    let degrade () =
      match found with
      | Decision_cache.Stale { result; _ } when t.stale_window > 0.0 ->
        t.stats <- { t.stats with stale_serves = t.stats.stale_serves + 1 };
        k result
      | _ -> k (Decision.indeterminate "no decision point reachable")
    in
    let rec try_pdps = function
      | [] -> degrade ()
      | pdp :: rest ->
        t.stats <- { t.stats with pdp_calls = t.stats.pdp_calls + 1 };
        Service.call_resilient t.services ~src:t.node ~dst:pdp ~service:"authz-query"
          ~timeout:call_timeout ?retry:t.retry ~notify:(count_resilience t) (Wire.authz_query ctx)
          (fun response ->
            match response with
            | Ok body -> (
              let parsed =
                match t.decision_trust with
                | None -> Wire.parse_authz_response body
                | Some trust ->
                  (* Only authenticated decisions are enforceable. *)
                  Result.map fst (Wire.verify_signed_authz_response ~trust ~now:(now t) body)
              in
              match parsed with
              | Ok result ->
                (match cache with
                | Some cache -> Decision_cache.put cache ~now:(now t) ~key result
                | None -> ());
                k result
              | Error e -> k (Decision.indeterminate ("unacceptable PDP response: " ^ e)))
            | Error _ ->
              (* Failover to the next replica (§ dependability). *)
              if rest <> [] then t.stats <- { t.stats with failovers = t.stats.failovers + 1 };
              try_pdps rest)
    in
    try_pdps pdps

(* --- push mode --------------------------------------------------------------- *)

let find_assertion headers =
  (* Capabilities arrive either as SAML assertions (CAS style) or X.509
     attribute certificates (VOMS style); both decode to the same logical
     capability. *)
  List.find_map
    (fun h ->
      match Xml.local_name (Xml.tag h) with
      | "Assertion" -> (
        match Assertion.of_xml h with Ok a -> Some a | Error _ -> None)
      | name when name = Dacs_saml.Attribute_cert.element_name -> (
        match Dacs_saml.Attribute_cert.of_xml h with Ok a -> Some a | Error _ -> None)
      | _ -> None)
    headers

let push_decide t ~trusted_issuer ~check_revocation ~local_pdp ~headers ~action ctx k =
  let deny_with reason =
    t.stats <- { t.stats with assertion_rejections = t.stats.assertion_rejections + 1 };
    k { Decision.decision = Decision.Indeterminate reason; obligations = [] }
  in
  match find_assertion headers with
  | None -> deny_with "no capability assertion presented"
  | Some assertion -> (
    match Assertion.validate ~trusted_key:trusted_issuer ~now:(now t) assertion with
    | Error failure -> deny_with (Assertion.failure_to_string failure)
    | Ok () ->
      if not (Assertion.permits assertion ~resource:t.resource ~action) then
        deny_with "capability does not cover this access"
      else begin
        let continue_after_revocation () =
          (* The resource provider may still impose its own restrictions
             (the paper: the capability service only pre-screens). *)
          match local_pdp with
          | None -> k Decision.permit
          | Some pdp -> Pdp_service.evaluate_local pdp ctx k
        in
        match check_revocation with
        | None -> continue_after_revocation ()
        | Some authority ->
          t.stats <- { t.stats with revocation_checks = t.stats.revocation_checks + 1 };
          Service.call_resilient t.services ~src:t.node ~dst:authority ~service:"revocation-check"
            ?retry:t.retry ~notify:(count_resilience t)
            (Wire.revocation_check ~assertion_id:assertion.Assertion.id) (fun response ->
              match response with
              | Ok body -> (
                match Wire.parse_revocation_status body with
                | Ok true -> deny_with "capability has been revoked"
                | Ok false -> continue_after_revocation ()
                | Error e -> deny_with ("malformed revocation status: " ^ e))
              | Error _ ->
                (* Fail closed: cannot check revocation, do not honour. *)
                deny_with "revocation authority unreachable")
      end)

(* --- service wiring --------------------------------------------------------------- *)

let create services ~node ~domain ~resource ?(content = "resource-content") ?audit
    ?encryption_key mode =
  let t =
    {
      services;
      node;
      domain;
      resource;
      content;
      audit = (match audit with Some a -> a | None -> Audit.create ());
      encryption_key;
      mode;
      decision_trust = None;
      retry = None;
      stale_window = 0.0;
      stats = zero_stats;
    }
  in
  Service.serve services ~node ~service:"access" (fun ~caller:_ ~headers body reply ->
      t.stats <- { t.stats with requests = t.stats.requests + 1 };
      match Wire.parse_access_request body with
      | Error e -> reply (Dacs_ws.Soap.fault_body { Dacs_ws.Soap.code = "soap:Sender"; reason = e })
      | Ok (subject_attrs, action) ->
        let subject =
          match List.assoc_opt "subject-id" subject_attrs with
          | Some v -> Value.to_string v
          | None -> "anonymous"
        in
        let ctx = build_context t ~subject_attrs ~action in
        let finish result = enforce t ~subject ~action result reply in
        (match t.mode with
        | Pull { pdps; cache; call_timeout } -> pull_decide t ~pdps ~cache ~call_timeout ctx finish
        | Push { trusted_issuer; check_revocation; local_pdp } ->
          push_decide t ~trusted_issuer ~check_revocation ~local_pdp ~headers ~action ctx finish
        | Agent pdp -> Pdp_service.evaluate_local pdp ctx finish));
  t
