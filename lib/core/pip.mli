(** Policy Information Point: attribute authority for a domain.

    Stores subject attributes (roles, clearances, organisational data) and
    computes environment attributes on demand; PDPs query it over the
    network when the request context lacks an attribute (Fig. 4). *)

type t

val create : Dacs_ws.Service.t -> node:Dacs_net.Net.node_id -> name:string -> t
(** Registers the ["attribute-query"] service (single queries and the
    parts of batched B/BT frames dispatch to the same handler) and
    ["attribute-subscribe"], through which PDP attribute caches register
    for invalidation pushes. *)

val node : t -> Dacs_net.Net.node_id

val subscribers : t -> Dacs_net.Net.node_id list
(** Nodes subscribed for attribute-invalidation pushes. *)

val set_subject_attribute : t -> subject:string -> id:string -> Dacs_policy.Value.bag -> unit
(** Replace the bag for (subject, attribute id). *)

val add_subject_attribute : t -> subject:string -> id:string -> Dacs_policy.Value.t -> unit

val remove_subject_attribute : t -> subject:string -> id:string -> unit
(** Revocation: subsequent queries return an empty bag, and every
    subscribed PDP attribute cache is pushed an explicit invalidation so
    the drop does not wait out a cache TTL. *)

val set_environment : t -> id:string -> (unit -> Dacs_policy.Value.bag) -> unit
(** Computed environment attribute, e.g. the current simulation time. *)

val lookup :
  t -> category:Dacs_policy.Context.category -> id:string -> subject:string -> Dacs_policy.Value.bag
(** Local lookup (also used by the service handler). *)

val lookups_served : t -> int
