(* SLO monitor suite: rolling-window accounting on a controllable clock
   (availability and latency objectives, window aging, burn rates), and
   the workload engine's integration — the report's SLO status reflects
   what the run actually served, deterministically per seed. *)

module Slo = Dacs_telemetry.Slo
module W = Dacs_workload.Workload

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let float_ = Alcotest.float 1e-9

(* A monitor on a hand-cranked clock. *)
let monitor ?objective () =
  let now = ref 0.0 in
  let t = Slo.create ?objective ~now:(fun () -> !now) () in
  (t, now)

let default_with ?availability_target ?latency_threshold ?latency_target ?window () =
  let d = Slo.default_objective in
  {
    Slo.availability_target = Option.value availability_target ~default:d.Slo.availability_target;
    latency_threshold = Option.value latency_threshold ~default:d.Slo.latency_threshold;
    latency_target = Option.value latency_target ~default:d.Slo.latency_target;
    window = Option.value window ~default:d.Slo.window;
  }

let test_empty_window () =
  let t, _ = monitor () in
  let s = Slo.status t in
  check int_ "no decisions" 0 s.Slo.total;
  check float_ "vacuous availability" 1.0 s.Slo.availability;
  check float_ "vacuous latency compliance" 1.0 s.Slo.latency_compliance;
  check float_ "no burn" 0.0 s.Slo.availability_burn;
  check bool_ "objectives met" true (s.Slo.availability_met && s.Slo.latency_met)

let test_accounting () =
  let t, now = monitor ~objective:(default_with ~latency_threshold:0.1 ()) () in
  now := 1.0;
  Slo.record t ~ok:true ~latency:0.05;
  Slo.record t ~ok:true ~latency:0.25;
  Slo.record t ~ok:false ~latency:0.05;
  let s = Slo.status t in
  check int_ "three decisions" 3 s.Slo.total;
  check int_ "two served" 2 s.Slo.ok;
  check int_ "two fast" 2 s.Slo.fast;
  check float_ "availability 2/3" (2.0 /. 3.0) s.Slo.availability;
  check float_ "compliance 2/3" (2.0 /. 3.0) s.Slo.latency_compliance;
  check bool_ "availability violated" false s.Slo.availability_met

let test_window_aging () =
  let objective = default_with ~window:60.0 () in
  let t, now = monitor ~objective () in
  now := 1.0;
  Slo.record t ~ok:false ~latency:10.0;
  let s = Slo.status t in
  check int_ "failure visible inside the window" 1 s.Slo.total;
  check bool_ "objective violated while visible" false s.Slo.availability_met;
  (* Advance past the rolling window: the old slice ages out and the
     monitor recovers on its own. *)
  now := 1.0 +. 61.0;
  let s = Slo.status t in
  check int_ "aged out" 0 s.Slo.total;
  check bool_ "objective recovers" true s.Slo.availability_met;
  (* New traffic after the gap starts a fresh account. *)
  Slo.record t ~ok:true ~latency:0.01;
  let s = Slo.status t in
  check int_ "fresh slice" 1 s.Slo.total;
  check float_ "clean availability" 1.0 s.Slo.availability

let test_burn_rates () =
  (* 10% error budget: a 20% error rate burns at exactly 2x. *)
  let objective = default_with ~availability_target:0.9 () in
  let t, now = monitor ~objective () in
  now := 1.0;
  for _ = 1 to 8 do
    Slo.record t ~ok:true ~latency:0.01
  done;
  Slo.record t ~ok:false ~latency:0.01;
  Slo.record t ~ok:false ~latency:0.01;
  let s = Slo.status t in
  check float_ "availability 80%" 0.8 s.Slo.availability;
  check float_ "burn 2x" 2.0 s.Slo.availability_burn;
  (* Errors at exactly the budget rate burn at 1x — sustainable. *)
  let t2, now2 = monitor ~objective () in
  now2 := 1.0;
  for _ = 1 to 9 do
    Slo.record t2 ~ok:true ~latency:0.01
  done;
  Slo.record t2 ~ok:false ~latency:0.01;
  let s2 = Slo.status t2 in
  check float_ "burn exactly 1x at the budget rate" 1.0 s2.Slo.availability_burn;
  check bool_ "still met at the boundary" true s2.Slo.availability_met;
  (* A zero budget burns infinitely on the first error. *)
  let t3, now3 = monitor ~objective:(default_with ~availability_target:1.0 ()) () in
  now3 := 1.0;
  Slo.record t3 ~ok:false ~latency:0.01;
  check bool_ "zero budget burns infinitely" true
    ((Slo.status t3).Slo.availability_burn = infinity)

let test_validation () =
  let now () = 0.0 in
  Alcotest.check_raises "non-positive window"
    (Invalid_argument "Slo.create: window must be positive") (fun () ->
      ignore (Slo.create ~objective:(default_with ~window:0.0 ()) ~now ()));
  Alcotest.check_raises "target above 1"
    (Invalid_argument "Slo.create: availability_target must be in [0, 1]") (fun () ->
      ignore (Slo.create ~objective:(default_with ~availability_target:1.5 ()) ~now ()));
  Alcotest.check_raises "negative threshold"
    (Invalid_argument "Slo.create: latency_threshold must be non-negative") (fun () ->
      ignore (Slo.create ~objective:(default_with ~latency_threshold:(-1.0) ()) ~now ()))

(* --- workload integration ----------------------------------------------- *)

let test_workload_within_capacity () =
  let r = W.run W.default in
  let s = r.W.slo in
  check int_ "every completion accounted" r.W.completed s.Slo.total;
  check bool_ "availability met within capacity" true s.Slo.availability_met;
  check bool_ "latency met within capacity" true s.Slo.latency_met;
  (* served = granted + denied: Indeterminate answers (shed or error)
     burn the budget. *)
  check int_ "served = non-Indeterminate answers" (r.W.granted + r.W.denied) s.Slo.ok

let test_workload_overload_violates () =
  let r =
    W.run { W.default with W.arrivals = W.Open_loop { rate = 2000.0 }; duration = 2.0 }
  in
  let s = r.W.slo in
  check bool_ "sheds under overload" true (r.W.shed > 0);
  check bool_ "availability violated" false s.Slo.availability_met;
  check bool_ "budget burning above 1x" true (s.Slo.availability_burn > 1.0);
  (* The shed breakdown accounts for every shed answer by reason. *)
  check int_ "shed reasons sum to the aggregate" r.W.shed
    (List.fold_left (fun acc (_, n) -> acc + n) 0 r.W.shed_reasons)

let test_workload_deterministic () =
  let render () = W.render (W.run { W.default with W.seed = 97 }) in
  check Alcotest.string "same seed renders byte-identical (SLO lines included)" (render ())
    (render ())

let () =
  Alcotest.run "dacs_slo"
    [
      ( "monitor",
        [
          Alcotest.test_case "empty window is vacuously met" `Quick test_empty_window;
          Alcotest.test_case "availability and latency accounting" `Quick test_accounting;
          Alcotest.test_case "rolling window ages traffic out" `Quick test_window_aging;
          Alcotest.test_case "error-budget burn rates" `Quick test_burn_rates;
          Alcotest.test_case "objective validation" `Quick test_validation;
        ] );
      ( "workload",
        [
          Alcotest.test_case "objectives met within capacity" `Quick
            test_workload_within_capacity;
          Alcotest.test_case "overload violates availability" `Quick
            test_workload_overload_violates;
          Alcotest.test_case "report deterministic per seed" `Quick test_workload_deterministic;
        ] );
    ]
