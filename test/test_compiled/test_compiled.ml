(* The compiler's own test suite: recompilation wiring through PAP
   publish and PDP fetch, epoch semantics, obligation order through
   mixed dispatch buckets, Indeterminate-coarsening parity on the
   pruning guards, and QCheck properties over the compiler itself —
   idempotence, no-op epoch preservation, leaf reuse, and soundness of
   the fallback bucket (every pruned rule's target is No_match).

   The cross-evaluator decision equivalence lives in test_oracle; this
   suite pins the properties of compilation as an operation. *)

module Policy = Dacs_policy.Policy
module Rule = Dacs_policy.Rule
module Target = Dacs_policy.Target
module Expr = Dacs_policy.Expr
module Combine = Dacs_policy.Combine
module Context = Dacs_policy.Context
module Decision = Dacs_policy.Decision
module Obligation = Dacs_policy.Obligation
module Value = Dacs_policy.Value
module Index = Dacs_policy.Index
module Compiled = Dacs_policy.Compiled
module Net = Dacs_net.Net
module Service = Dacs_ws.Service
open Dacs_core

let result_equal (a : Decision.result) (b : Decision.result) =
  Decision.equal_decision a.Decision.decision b.Decision.decision
  && List.length a.Decision.obligations = List.length b.Decision.obligations
  && List.for_all2 Obligation.equal a.Decision.obligations b.Decision.obligations

let show_result (r : Decision.result) =
  Printf.sprintf "%s [%s]"
    (Decision.decision_to_string r.Decision.decision)
    (String.concat "; " (List.map (fun o -> o.Obligation.id) r.Decision.obligations))

let check_result name expected got =
  if not (result_equal expected got) then
    Alcotest.failf "%s: expected %s, got %s" name (show_result expected) (show_result got)

let ctx =
  Context.make
    ~subject:[ ("subject-id", Value.String "alice"); ("role", Value.String "doctor") ]
    ~resource:[ ("resource-id", Value.String "chart") ]
    ~action:[ ("action-id", Value.String "read") ]
    ()

(* --- recompilation on publish ------------------------------------------- *)

let inline_policy ?obligations ?target id rules =
  Policy.Inline_policy
    (Policy.make ?obligations ?target ~id ~rule_combining:Combine.First_applicable rules)

let permit_policy id = inline_policy id [ Rule.permit "r" ]
let deny_policy id = inline_policy id [ Rule.deny "r" ]

(* A PDP on Every_query refresh must pick up a published policy on its
   next decision — and recompile, bumping its epoch — without being
   told. *)
let test_recompile_on_publish () =
  let net = Net.create ~seed:3L () in
  let services = Service.create (Dacs_net.Rpc.create net) in
  Net.add_node net "pap";
  Net.add_node net "pdp";
  let pap = Pap.create services ~node:"pap" ~name:"pap" ~root:(permit_policy "a") () in
  let pdp =
    Pdp_service.create services ~node:"pdp" ~name:"pdp" ~pap:"pap"
      ~refresh:Pdp_service.Every_query ~compiled:true ()
  in
  let decide () =
    let answer = ref None in
    Pdp_service.evaluate_local pdp ctx (fun r -> answer := Some r);
    Net.run net;
    Option.get !answer
  in
  check_result "before publish" Decision.permit (decide ());
  let epoch_before = Pdp_service.compilation_epoch pdp in
  Alcotest.(check bool) "compiled on" true (Pdp_service.compiled_enabled pdp);
  Pap.publish pap (deny_policy "a");
  check_result "after publish" Decision.deny (decide ());
  Alcotest.(check bool) "pdp epoch bumped" true (Pdp_service.compilation_epoch pdp > epoch_before);
  Alcotest.(check int) "pap epoch" 2 (Pap.compilation_epoch pap)

(* Epochs count *semantic* changes: a no-op publish bumps the version
   (it is still an administrative action) but leaves the compiled epoch
   alone, so downstream consumers can use the epoch as a cheap "did the
   tree really change" signal. *)
let test_epoch_monotonic () =
  let net = Net.create ~seed:5L () in
  let services = Service.create (Dacs_net.Rpc.create net) in
  Net.add_node net "pap";
  let pap = Pap.create services ~node:"pap" ~name:"pap" ~root:(permit_policy "a") () in
  Alcotest.(check int) "initial epoch" 1 (Pap.compilation_epoch pap);
  let v0 = Pap.version pap in
  Pap.publish pap (permit_policy "a");
  Alcotest.(check int) "no-op publish preserves epoch" 1 (Pap.compilation_epoch pap);
  Alcotest.(check bool) "no-op publish still bumps version" true (Pap.version pap > v0);
  Pap.publish pap (deny_policy "a");
  Alcotest.(check int) "change bumps epoch" 2 (Pap.compilation_epoch pap);
  Pap.publish pap (deny_policy "a");
  Alcotest.(check int) "repeat publish preserves epoch" 2 (Pap.compilation_epoch pap);
  Pap.publish pap (permit_policy "a");
  Alcotest.(check int) "revert bumps epoch again" 3 (Pap.compilation_epoch pap)

(* --- obligation order through mixed dispatch buckets -------------------- *)

let ob id = Obligation.make ~fulfill_on:Obligation.Permit ("urn:test:" ^ id)

(* Three children landing in different buckets of their leaves — pair-
   pinned (matches), resource-pinned (matches), action-pinned
   (mismatches, pruned) — under deny-overrides, which evaluates every
   non-deciding child and merges obligations in document order.  The
   compiled form must reproduce the interpreter's exact order. *)
let test_obligation_order () =
  let pair_pinned =
    inline_policy ~obligations:[ ob "pair" ] "p-pair"
      [ Rule.permit ~target:Target.(any |> resource_is "resource-id" "chart" |> action_is "action-id" "read") "r" ]
  in
  let res_pinned =
    inline_policy ~obligations:[ ob "res" ] "p-res"
      [ Rule.permit ~target:Target.(any |> resource_is "resource-id" "chart") "r" ]
  in
  let act_pruned =
    inline_policy ~obligations:[ ob "never" ] "p-act"
      [ Rule.permit ~target:Target.(any |> action_is "action-id" "write") "r" ]
  in
  let s =
    Policy.Inline_set
      (Policy.make_set ~id:"s" ~policy_combining:Combine.Deny_overrides
         ~obligations:[ ob "set" ]
         [ pair_pinned; res_pinned; act_pruned ])
  in
  let interpreted = Policy.evaluate_child ctx s in
  let compiled = Compiled.evaluate ctx (Compiled.compile s) in
  check_result "compiled == interpreted" interpreted compiled;
  Alcotest.(check (list string)) "document order" [ "urn:test:pair"; "urn:test:res"; "urn:test:set" ]
    (List.map (fun o -> o.Obligation.id) compiled.Decision.obligations)

(* --- Indeterminate coarsening parity on the pruning guards -------------- *)

(* A non-string resource-id makes string-equal error, so a pinned rule
   is Indeterminate under the interpreter; the compiled form must
   decline to prune (full scan) rather than answer NotApplicable. *)
let test_non_string_axis_disables_pruning () =
  let p = inline_policy "p" [ Rule.permit ~target:Target.(any |> resource_is "resource-id" "chart") "r" ] in
  let uri_ctx =
    Context.make
      ~subject:[ ("subject-id", Value.String "alice") ]
      ~resource:[ ("resource-id", Value.Uri "urn:lab") ]
      ~action:[ ("action-id", Value.String "read") ]
      ()
  in
  let c = Compiled.compile p in
  let reference = Policy.evaluate_child uri_ctx p in
  check_result "compiled == reference" reference (Compiled.evaluate uri_ctx c);
  (match reference.Decision.decision with
  | Decision.Indeterminate _ -> ()
  | d -> Alcotest.failf "expected Indeterminate, got %s" (Decision.decision_to_string d));
  Alcotest.(check int) "no pruning" (Compiled.rule_count c) (Compiled.candidate_count c uri_ctx);
  (* The target index declines identically. *)
  check_result "indexed == reference" reference (Index.evaluate uri_ctx (Index.build (Policy.make ~id:"p" [ Rule.permit ~target:Target.(any |> resource_is "resource-id" "chart") "r" ])))

(* Subject sections evaluate before resource sections, and an error
   there short-circuits the whole target to Indeterminate — even when
   the resource pin mismatches.  A non-string value under a guard
   attribute must therefore disable pruning. *)
let test_guard_attribute_disables_pruning () =
  let p =
    inline_policy "p"
      [ Rule.permit ~target:Target.(any |> subject_is "role" "doctor" |> resource_is "resource-id" "chart") "r" ]
  in
  let c = Compiled.compile p in
  let int_role_ctx =
    Context.make
      ~subject:[ ("subject-id", Value.String "alice"); ("role", Value.Int 3) ]
      ~resource:[ ("resource-id", Value.String "lab") ]
      ~action:[ ("action-id", Value.String "read") ]
      ()
  in
  let reference = Policy.evaluate_child int_role_ctx p in
  (match reference.Decision.decision with
  | Decision.Indeterminate _ -> ()
  | d -> Alcotest.failf "expected Indeterminate, got %s" (Decision.decision_to_string d));
  check_result "compiled == reference" reference (Compiled.evaluate int_role_ctx c);
  Alcotest.(check int) "guard blocks pruning" (Compiled.rule_count c)
    (Compiled.candidate_count c int_role_ctx);
  (* With a clean guard bag the same rule prunes — and both evaluators
     answer NotApplicable. *)
  let clean_ctx =
    Context.make
      ~subject:[ ("subject-id", Value.String "alice"); ("role", Value.String "doctor") ]
      ~resource:[ ("resource-id", Value.String "lab") ]
      ~action:[ ("action-id", Value.String "read") ]
      ()
  in
  Alcotest.(check int) "clean guard prunes" 0 (Compiled.candidate_count c clean_ctx);
  check_result "pruned == reference" (Policy.evaluate_child clean_ctx p)
    (Compiled.evaluate clean_ctx c);
  (* An absent guard attribute could be supplied by a resolver later:
     pruning must be declined then too. *)
  let no_role_ctx =
    Context.make
      ~subject:[ ("subject-id", Value.String "alice") ]
      ~resource:[ ("resource-id", Value.String "lab") ]
      ~action:[ ("action-id", Value.String "read") ]
      ()
  in
  Alcotest.(check int) "absent guard blocks pruning" (Compiled.rule_count c)
    (Compiled.candidate_count c no_role_ctx);
  check_result "absent guard == reference" (Policy.evaluate_child no_role_ctx p)
    (Compiled.evaluate no_role_ctx c)

(* A guard match that is not string-equal-on-a-string-literal makes the
   rule ineligible for indexing entirely: it is always scanned. *)
let test_unguardable_rule_never_indexed () =
  let target =
    Target.make
      ~subjects:[ [ { Target.fn = "string-equal"; value = Value.Int 1; category = Context.Subject; attribute_id = "level" } ] ]
      ~resources:[ [ Target.match_string Context.Resource "resource-id" "chart" ] ]
      ()
  in
  let p = inline_policy "p" [ Rule.permit ~target "r" ] in
  let c = Compiled.compile p in
  Alcotest.(check int) "always scanned" (Compiled.rule_count c) (Compiled.candidate_count c ctx);
  check_result "compiled == reference" (Policy.evaluate_child ctx p) (Compiled.evaluate ctx c)

(* --- QCheck: the compiler as an operation ------------------------------- *)

(* Spec vocabulary mirrors test_oracle's, extended with combined
   subject+resource targets so the guard machinery is exercised. *)
let roles = [| "doctor"; "nurse"; "admin" |]
let resources = [| "chart"; "lab"; "note" |]
let actions = [| "read"; "write" |]

type rule_spec = {
  effect_code : int;
  target_code : int;  (* 0 any; then resource_is; action_is; subject_is; then combined *)
  condition_code : int;
  obligation_code : int;
}

let combined_base = 1 + Array.length resources + Array.length actions + Array.length roles

let rule_of_spec i s =
  let effect = if s.effect_code = 0 then Rule.Permit else Rule.Deny in
  let target =
    match s.target_code with
    | 0 -> Target.any
    | c when c <= Array.length resources ->
      Target.(any |> resource_is "resource-id" resources.(c - 1))
    | c when c <= Array.length resources + Array.length actions ->
      Target.(any |> action_is "action-id" actions.(c - 1 - Array.length resources))
    | c when c < combined_base ->
      Target.(any |> subject_is "role" roles.(c - 1 - Array.length resources - Array.length actions))
    | c ->
      (* Combined role + resource pins: the resource pin only prunes
         when the role guard bag is clean. *)
      let k = c - combined_base in
      Target.(
        any
        |> subject_is "role" roles.(k mod Array.length roles)
        |> resource_is "resource-id" resources.(k / Array.length roles mod Array.length resources))
  in
  let condition =
    match s.condition_code with
    | 0 -> None
    | c when c <= Array.length roles -> Some (Expr.one_of (Expr.subject_attr "role") [ roles.(c - 1) ])
    | _ -> Some (Expr.one_of (Expr.subject_attr ~must_be_present:true "clearance") [ "secret" ])
  in
  Rule.make ~target ?condition effect (Printf.sprintf "r%d" i)

let target_code_max = combined_base + (Array.length roles * Array.length resources) - 1
let condition_code_max = Array.length roles + 1

let policy_of_spec id (rule_specs, obligation_code) =
  let rules = List.mapi rule_of_spec rule_specs in
  let obligations =
    if obligation_code = 0 then []
    else [ Obligation.make ~fulfill_on:Obligation.Permit (Printf.sprintf "urn:test:%s" id) ]
  in
  Policy.make ~id ~rule_combining:Combine.Deny_overrides ~obligations rules

type ctx_spec = { role_code : int; resource_code : int; action_code : int }

let ctx_of_spec s =
  let subject =
    ("subject-id", Value.String "alice")
    :: (if s.role_code = 0 then []
        else [ ("role", Value.String roles.((s.role_code - 1) mod Array.length roles)) ])
  in
  Context.make ~subject
    ~resource:[ ("resource-id", Value.String resources.(s.resource_code mod Array.length resources)) ]
    ~action:[ ("action-id", Value.String actions.(s.action_code mod Array.length actions)) ]
    ()

let arb_rule =
  let open QCheck in
  map
    ~rev:(fun s -> (s.effect_code, s.target_code, s.condition_code, s.obligation_code))
    (fun (e, t, c, o) -> { effect_code = e; target_code = t; condition_code = c; obligation_code = o })
    (quad (int_bound 1) (int_bound target_code_max) (int_bound condition_code_max) (int_bound 2))

let arb_pspec =
  QCheck.(pair (list_of_size (Gen.int_bound 6) arb_rule) (int_bound 1))

let arb_ctx =
  let open QCheck in
  map
    ~rev:(fun s -> (s.role_code, s.resource_code, s.action_code))
    (fun (r, rs, a) -> { role_code = r; resource_code = rs; action_code = a })
    (triple (int_bound (Array.length roles)) (int_bound 2) (int_bound 1))

let arb_case = QCheck.pair arb_pspec arb_ctx

let seed_hint () =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> Printf.sprintf "QCHECK_SEED=%s" s
  | None -> "rerun with QCHECK_SEED=<'qcheck random seed' printed above> to reproduce"

(* Compiling is a pure function of the tree: compiling twice yields
   equal decisions and the same fresh epoch, and recompiling a compiled
   form against its own source is the identity. *)
let compile_idempotent =
  QCheck.Test.make ~name:"compile is idempotent" ~count:500 arb_case
    (fun (pspec, cspec) ->
      let child = Policy.Inline_policy (policy_of_spec "p" pspec) in
      let ctx = ctx_of_spec cspec in
      let c1 = Compiled.compile child in
      let c2 = Compiled.compile child in
      if Compiled.epoch c1 <> 1 || Compiled.epoch c2 <> 1 then
        QCheck.Test.fail_reportf "fresh compiles must have epoch 1 (%s)" (seed_hint ());
      if not (result_equal (Compiled.evaluate ctx c1) (Compiled.evaluate ctx c2)) then
        QCheck.Test.fail_reportf "two compiles of one tree diverged (%s)" (seed_hint ());
      let c3 = Compiled.recompile c1 (Compiled.source c1) in
      if Compiled.epoch c3 <> Compiled.epoch c1 then
        QCheck.Test.fail_reportf "self-recompile changed the epoch (%s)" (seed_hint ());
      true)

(* Epoch and reuse across publishes of multi-policy sets: a no-op
   preserves the epoch; changing one of two leaves bumps it and reuses
   the untouched leaf's compiled form. *)
let recompile_epochs =
  QCheck.Test.make ~name:"recompile: no-op preserves epoch, change reuses leaves" ~count:500
    QCheck.(pair arb_pspec arb_pspec)
    (fun (spec_a, spec_b) ->
      let set_of pa pb =
        Policy.Inline_set
          (Policy.make_set ~id:"s" ~policy_combining:Combine.Deny_overrides
             [ Policy.Inline_policy pa; Policy.Inline_policy pb ])
      in
      let a = policy_of_spec "a" spec_a in
      let b = policy_of_spec "b" spec_b in
      let c1 = Compiled.compile (set_of a b) in
      (* No-op recompile: same tree, same epoch. *)
      let c2 = Compiled.recompile c1 (set_of a b) in
      if Compiled.epoch c2 <> Compiled.epoch c1 then
        QCheck.Test.fail_reportf "no-op recompile bumped the epoch (%s)" (seed_hint ());
      (* Change leaf b only: epoch bumps, leaf a is reused. *)
      let b' = { b with Policy.rules = b.Policy.rules @ [ Rule.deny "extra" ] } in
      let c3 = Compiled.recompile c1 (set_of a b') in
      if Compiled.epoch c3 <> Compiled.epoch c1 + 1 then
        QCheck.Test.fail_reportf "changed tree did not bump the epoch (%s)" (seed_hint ());
      if Compiled.reused_leaves c3 < 1 then
        QCheck.Test.fail_reportf "unchanged leaf was recompiled (%s)" (seed_hint ());
      true)

(* Fallback-bucket soundness: dispatch may only drop rules whose targets
   cannot match, so every pruned rule's target must evaluate to
   No_match, and kept + pruned must account for every rule. *)
let pruning_sound =
  QCheck.Test.make ~name:"every pruned rule's target is No_match" ~count:1000 arb_case
    (fun (pspec, cspec) ->
      let policy = policy_of_spec "p" pspec in
      let ctx = ctx_of_spec cspec in
      let c = Compiled.compile (Policy.Inline_policy policy) in
      let pruned = Compiled.pruned_rules c ctx in
      if Compiled.candidate_count c ctx + List.length pruned <> Compiled.rule_count c then
        QCheck.Test.fail_reportf "kept + pruned <> total (%s)" (seed_hint ());
      List.iter
        (fun rule ->
          match Target.evaluate ctx rule.Rule.target with
          | Target.No_match -> ()
          | Target.Match ->
            QCheck.Test.fail_reportf "pruned rule %s actually matches (%s)" rule.Rule.id
              (seed_hint ())
          | Target.Indeterminate_match e ->
            QCheck.Test.fail_reportf "pruned rule %s is indeterminate: %s (%s)" rule.Rule.id e
              (seed_hint ()))
        pruned;
      true)

let () =
  Alcotest.run "dacs_compiled"
    [
      ( "recompilation",
        [
          Alcotest.test_case "PDP picks up a publish and recompiles" `Quick test_recompile_on_publish;
          Alcotest.test_case "epoch counts semantic changes only" `Quick test_epoch_monotonic;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "obligation document order across buckets" `Quick test_obligation_order;
          Alcotest.test_case "non-string axis value disables pruning" `Quick
            test_non_string_axis_disables_pruning;
          Alcotest.test_case "dirty guard attribute disables pruning" `Quick
            test_guard_attribute_disables_pruning;
          Alcotest.test_case "unguardable rule is never indexed" `Quick
            test_unguardable_rule_never_indexed;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ compile_idempotent; recompile_epochs; pruning_sound ]
      );
    ]
