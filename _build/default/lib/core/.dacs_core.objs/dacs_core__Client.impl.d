lib/core/client.ml: Dacs_net Dacs_policy Dacs_saml Dacs_ws Dacs_xml Hashtbl List Wire
