lib/rbac/textual.mli: Rbac
