type node = {
  label : string;
  outcome : string;
  detail : string;
  children : node list;
}

let target_outcome = function
  | Target.Match -> "match"
  | Target.No_match -> "no match"
  | Target.Indeterminate_match e -> Printf.sprintf "indeterminate (%s)" e

let decision_outcome (r : Decision.result) =
  let base = Decision.decision_to_string r.Decision.decision in
  match r.Decision.decision with
  | Decision.Indeterminate m when m <> "" -> Printf.sprintf "%s (%s)" base m
  | _ -> base

let describe_target t =
  (* Target.pp uses format breaks; flatten to one line for the detail. *)
  String.trim (String.map (fun c -> if c = '\n' then ' ' else c) (Format.asprintf "target %a" Target.pp t))

let explain_rule ?resolve ctx variables (rule : Rule.t) =
  let target = Target.evaluate ?resolve ctx rule.Rule.target in
  let result = Rule.evaluate ?resolve ctx rule in
  let condition_detail =
    match (target, rule.Rule.condition) with
    | Target.Match, Some c -> (
      let resolved =
        Expr.substitute (fun name -> List.assoc_opt name variables) c
      in
      match resolved with
      | Error e -> Printf.sprintf "condition unresolved: %s" e
      | Ok c -> (
        match Expr.eval_condition ?resolve ctx c with
        | Ok b -> Printf.sprintf "condition = %b" b
        | Error e -> Printf.sprintf "condition error: %s" (Expr.error_to_string e)))
    | _, None -> "no condition"
    | (Target.No_match | Target.Indeterminate_match _), Some _ -> "condition not reached"
  in
  {
    label = Printf.sprintf "rule %s" rule.Rule.id;
    outcome = decision_outcome result;
    detail =
      Printf.sprintf "%s: %s; %s" (describe_target rule.Rule.target) (target_outcome target)
        condition_detail;
    children = [];
  }

(* Rule evaluation ignores policy variables in its own path: conditions
   are substituted before this is reached in Policy.evaluate.  For the
   explanation we redo the substitution explicitly so the condition line
   reflects what the engine actually evaluated. *)

let rec explain ?resolve ?resolve_ref ctx child =
  let result = Policy.evaluate_child ?resolve ?resolve_ref ctx child in
  let node =
    match child with
    | Policy.Policy_ref id -> (
      match Option.bind resolve_ref (fun r -> r id) with
      | Some (Policy.Policy_ref _) | None ->
        {
          label = Printf.sprintf "policy reference %s" id;
          outcome = decision_outcome result;
          detail = "unresolvable reference";
          children = [];
        }
      | Some resolved ->
        let inner, _ = explain ?resolve ?resolve_ref ctx resolved in
        {
          label = Printf.sprintf "policy reference %s" id;
          outcome = decision_outcome result;
          detail = "resolved";
          children = [ inner ];
        })
    | Policy.Inline_policy p ->
      let target = Target.evaluate ?resolve ctx p.Policy.target in
      let children =
        match target with
        | Target.Match ->
          List.map (explain_rule ?resolve ctx p.Policy.variables) p.Policy.rules
        | Target.No_match | Target.Indeterminate_match _ -> []
      in
      {
        label = Printf.sprintf "policy %s" p.Policy.id;
        outcome = decision_outcome result;
        detail =
          Printf.sprintf "%s: %s; combining: %s" (describe_target p.Policy.target)
            (target_outcome target)
            (Combine.name p.Policy.rule_combining);
        children;
      }
    | Policy.Inline_set s ->
      let target = Target.evaluate ?resolve ctx s.Policy.set_target in
      let children =
        match target with
        | Target.Match ->
          List.map
            (fun c -> fst (explain ?resolve ?resolve_ref ctx c))
            s.Policy.children
        | Target.No_match | Target.Indeterminate_match _ -> []
      in
      {
        label = Printf.sprintf "policy set %s" s.Policy.set_id;
        outcome = decision_outcome result;
        detail =
          Printf.sprintf "%s: %s; combining: %s"
            (describe_target s.Policy.set_target)
            (target_outcome target)
            (Combine.name s.Policy.policy_combining);
        children;
      }
  in
  (node, result)

let to_string node =
  let buf = Buffer.create 256 in
  let rec go indent node =
    Buffer.add_string buf
      (Printf.sprintf "%s%s -> %s\n" (String.make indent ' ') node.label node.outcome);
    if node.detail <> "" then
      Buffer.add_string buf (Printf.sprintf "%s  [%s]\n" (String.make indent ' ') node.detail);
    List.iter (go (indent + 4)) node.children
  in
  go 0 node;
  Buffer.contents buf
