(** Virtual Organisation: domains collaborating under shared trust and a
    syndicated VO-wide policy (Fig. 1 + Fig. 5).

    Forming a VO wires the cross-domain trust fabric (every domain's PEPs
    can validate assertions from every member's IdP and the VO capability
    service), stands up a VO-level PAP at the top of the syndication
    hierarchy, and runs a VO capability service for push-model access. *)

type t

val form : Dacs_ws.Service.t -> name:string -> Domain.t list -> t
(** Creates nodes [<name>.pap] and [<name>.cas], subscribes every member
    PAP to the VO PAP, and authorises the VO PAP as a policy updater at
    each member. *)

val name : t -> string
val services : t -> Dacs_ws.Service.t
val domains : t -> Domain.t list
val find_domain : t -> string -> Domain.t option

val vo_pap : t -> Pap.t
val capability_service : t -> Capability_service.t

val publish_policy : t -> Dacs_policy.Policy.child -> unit
(** Publish at the VO PAP; syndication pushes it to every member, where it
    is combined with the member's local policy.  Also installs it as the
    capability service's decision basis. *)

val issuer_key : t -> string -> Dacs_crypto.Rsa.public_key option
(** Trust lookup across the VO: IdP issuers of every member plus the VO
    capability service. *)

val merged_audit : t -> Audit.t
(** Consolidated, time-ordered audit view across all member domains
    (§3.2 management). *)

val pdp_tier :
  t ->
  node:Dacs_net.Net.node_id ->
  shards:int ->
  ?batch:int ->
  ?linger:float ->
  ?vnodes:int ->
  ?service_time:float ->
  ?refresh:Pdp_service.policy_refresh ->
  ?root:Dacs_policy.Policy.child ->
  unit ->
  Pdp_tier.t * Pdp_service.t list
(** Stand up [shards] PDP replicas ([<name>.pdp.0] …) bound to the VO
    PAP and a {!Pdp_tier} dispatching to them from [node] (typically the
    enforcement point's node).  [batch]/[linger]/[vnodes] configure the
    tier, [service_time]/[refresh]/[root] each replica (see
    {!Pdp_service.create}).  Returns the tier and the replicas so callers
    can install policies or crash individual shards. *)

val client_for :
  t -> domain:Domain.t -> user:string -> (string * Dacs_policy.Value.t) list -> Client.t
(** Create a client node [<domain>.client.<user>] with the given subject
    attributes and register the user in its home domain. *)
