(** Audit log: the uniform accounting function externalised authorisation
    enables (§2.2), and the history that history-based meta-policies
    (Chinese Wall, dynamic SoD) consult. *)

type entry = {
  at : float;
  domain : string;
  subject : string;
  resource : string;
  action : string;
  decision : Dacs_policy.Decision.t;
  provenance : Provenance.t option;
      (** how the decision was served — present on every entry a PEP
          records; [None] for history entries minted outside the serving
          path (meta-policy bookkeeping, tests) *)
}

type t

val create : unit -> t

val record : t -> entry -> unit

val entries : t -> entry list
(** Oldest first. *)

val size : t -> int

val permitted_resources : t -> subject:string -> string list
(** Distinct resources the subject has been {e permitted} to access. *)

val by_subject : t -> string -> entry list

val find : t -> ?subject:string -> ?resource:string -> ?decision:Dacs_policy.Decision.t -> unit -> entry list
(** Filtered view; unspecified fields match anything. *)

val merge : t list -> t
(** Consolidated, time-ordered view across domains (§3.2 management). *)

val clear : t -> unit
