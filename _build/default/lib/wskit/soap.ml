module Xml = Dacs_xml.Xml

type envelope = {
  headers : Xml.t list;
  body : Xml.t;
}

let envelope ?(headers = []) body =
  Xml.element "soap:Envelope"
    ~attrs:[ ("xmlns:soap", "http://www.w3.org/2003/05/soap-envelope") ]
    ~children:
      ((if headers = [] then [] else [ Xml.element "soap:Header" ~children:headers ])
      @ [ Xml.element "soap:Body" ~children:[ body ] ])

let of_xml node =
  if Xml.local_name (Xml.tag node) <> "Envelope" then Error "expected a SOAP Envelope"
  else begin
    let headers =
      match Xml.find_child node "Header" with
      | None -> []
      | Some h -> List.filter Xml.is_element (Xml.children h)
    in
    match Xml.find_child node "Body" with
    | None -> Error "SOAP Envelope has no Body"
    | Some b -> (
      match List.filter Xml.is_element (Xml.children b) with
      | [ body ] -> Ok { headers; body }
      | [] -> Error "SOAP Body is empty"
      | _ -> Error "SOAP Body must contain a single element")
  end

let parse s =
  match Xml.of_string_opt s with
  | None -> Error "malformed XML"
  | Some node -> of_xml node

let to_string e = Xml.to_string (envelope ~headers:e.headers e.body)

type fault = { code : string; reason : string }

let fault_body f =
  Xml.element "soap:Fault"
    ~children:
      [
        Xml.element "Code" ~children:[ Xml.text f.code ];
        Xml.element "Reason" ~children:[ Xml.text f.reason ];
      ]

let fault_of_body node =
  if Xml.local_name (Xml.tag node) <> "Fault" then None
  else
    Some
      {
        code = Option.value (Option.map Xml.text_content (Xml.find_child node "Code")) ~default:"";
        reason = Option.value (Option.map Xml.text_content (Xml.find_child node "Reason")) ~default:"";
      }
