(* The index is a sound pre-filter: a rule is bucketed under resource-id
   value v only if *every* clause of its resource section requires
   resource-id = v' for some listed v'.  Such a rule cannot match a
   request whose resource-id differs from all its values, so skipping it
   is safe.  Everything else goes to the fallback bucket.  Document order
   is preserved when merging buckets, so combining semantics are exact. *)

type indexed_rule = { position : int; rule : Rule.t }

type t = {
  policy : Policy.t;
  by_resource : (string, indexed_rule list) Hashtbl.t;  (* newest first *)
  fallback : indexed_rule list;  (* document order *)
  total : int;
}

(* The resource-id values a clause accepts, when it pins resource-id by
   string equality; None when the clause leaves resource-id free. *)
let clause_resource_values clause =
  let values =
    List.filter_map
      (fun m ->
        if m.Target.attribute_id = "resource-id" && m.Target.fn = "string-equal" then
          match m.Target.value with
          | Value.String s -> Some s
          | _ -> None
        else None)
      clause
  in
  match values with [] -> None | vs -> Some vs

(* All resource-id values a rule can apply to, or None when unconstrained. *)
let rule_resource_values (rule : Rule.t) =
  match rule.Rule.target.Target.resources with
  | [] -> None
  | clauses ->
    let per_clause = List.map clause_resource_values clauses in
    if List.exists (fun v -> v = None) per_clause then None
    else Some (List.concat_map (fun v -> Option.value v ~default:[]) per_clause)

let build policy =
  let by_resource = Hashtbl.create 256 in
  let fallback = ref [] in
  List.iteri
    (fun position rule ->
      let ir = { position; rule } in
      match rule_resource_values rule with
      | None -> fallback := ir :: !fallback
      | Some values ->
        List.iter
          (fun v ->
            let prev = Option.value (Hashtbl.find_opt by_resource v) ~default:[] in
            Hashtbl.replace by_resource v (ir :: prev))
          (List.sort_uniq compare values))
    policy.Policy.rules;
  {
    policy;
    by_resource;
    fallback = List.rev !fallback;
    total = List.length policy.Policy.rules;
  }

let request_resource_ids ctx =
  List.filter_map
    (function Value.String s | Value.Uri s -> Some s | _ -> None)
    (Context.bag ctx Context.Resource "resource-id")

let candidates t ctx =
  match request_resource_ids ctx with
  | [] ->
    (* No resource-id in the request (or it may be supplied by a resolver
       later): the pre-filter cannot prune soundly. *)
    List.mapi (fun position rule -> { position; rule }) t.policy.Policy.rules
  | ids ->
    let bucketed =
      List.concat_map
        (fun id -> Option.value (Hashtbl.find_opt t.by_resource id) ~default:[])
        ids
    in
    let merged = bucketed @ t.fallback in
    (* Dedup (a rule can hit via several ids) and restore document order. *)
    let seen = Hashtbl.create 16 in
    List.filter
      (fun ir ->
        if Hashtbl.mem seen ir.position then false
        else begin
          Hashtbl.add seen ir.position ();
          true
        end)
      (List.sort (fun a b -> compare a.position b.position) merged)

let candidate_count t ctx = List.length (candidates t ctx)

let rule_count t = t.total

let bucket_count t = Hashtbl.length t.by_resource

let evaluate ?resolve ctx t =
  let policy = t.policy in
  match Target.evaluate ?resolve ctx policy.Policy.target with
  | Target.No_match -> Decision.not_applicable
  | Target.Indeterminate_match e ->
    Decision.indeterminate (Printf.sprintf "policy %s target: %s" policy.Policy.id e)
  | Target.Match ->
    let children =
      List.map
        (fun ir ->
          {
            Combine.label = "rule " ^ ir.rule.Rule.id;
            applicability = (fun () -> Target.evaluate ?resolve ctx ir.rule.Rule.target);
            evaluate = (fun () -> Rule.evaluate ?resolve ctx ir.rule);
          })
        (candidates t ctx)
    in
    let result = Combine.combine policy.Policy.rule_combining children in
    Decision.with_obligations result policy.Policy.obligations
