lib/rbac/textual.ml: Buffer List Printf Rbac Result String
