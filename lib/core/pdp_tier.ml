module Service = Dacs_ws.Service
module Engine = Dacs_net.Engine
module Xml = Dacs_xml.Xml
module Context = Dacs_policy.Context
module Decision = Dacs_policy.Decision
module Metrics = Dacs_telemetry.Metrics
module Trace = Dacs_telemetry.Trace
module Sha256 = Dacs_crypto.Sha256

type stats = {
  dispatched : int;
  batches : int;
  failovers : int;
  rebalances : int;
  exhausted : int;
}

(* Serving metadata delivered with each answer: which shard decided,
   how big the frame was, how many shards were skipped first, and the
   deciding PDP's compilation epoch — the raw material of a provenance
   record. *)
type meta = {
  shard : Dacs_net.Net.node_id option;
  batch : int;
  failovers : int;
  epoch : int;
}

(* One queued authorisation query: its routing key survives re-routing,
   and [excluded] accumulates the shards that already failed it so a
   remap never bounces back to a dead replica. *)
type item = {
  key : string;
  body : Xml.t;
  deliver : (Decision.result, string) result -> meta -> unit;
  excluded : Dacs_net.Net.node_id list;
}

type shard_state = {
  mutable queue : item list;  (** newest first *)
  mutable queued : int;
  mutable flush_pending : bool;
  (* Per-shard counter handles, resolved once per shard instead of
     re-registering (label sort + table lookup) on every dispatch. *)
  sc_batches : Metrics.counter;
  sc_dispatch : Metrics.counter;
}

type t = {
  services : Service.t;
  node : Dacs_net.Net.node_id;
  batch : int;
  linger : float;
  vnodes : int;
  call_timeout : float;
  retry : Dacs_net.Rpc.retry_policy option;
  verify : t -> Xml.t -> (Decision.result, string) result;
  c_batches : Dacs_net.Net.node_id -> Metrics.counter;
  c_dispatch : Dacs_net.Net.node_id -> Metrics.counter;
  c_failovers : Metrics.counter;
  c_rebalances : Metrics.counter;
  c_exhausted : Metrics.counter;
  h_batch_size : Metrics.histogram;
  mutable shards : Dacs_net.Net.node_id list;
  mutable ring : (string * Dacs_net.Net.node_id) array;  (** sorted by point *)
  states : (Dacs_net.Net.node_id, shard_state) Hashtbl.t;
}

let node t = t.node
let shards t = t.shards
let batch_limit t = t.batch
let tracer t = Service.tracer t.services

(* --- consistent hashing ------------------------------------------------- *)

(* Each shard owns [vnodes] points on a hash ring; a key routes to the
   shard owning the first point at or after the key's own hash.  Removing
   a shard only remaps keys that hashed to its points — every other
   key keeps its shard, which is what keeps decision caches and policy
   working sets warm across membership changes (§3.1 scale). *)
let build_ring ~vnodes shards =
  let points =
    List.concat_map
      (fun shard ->
        List.init vnodes (fun v ->
            (Sha256.hex_digest (Printf.sprintf "%s#%d" shard v), shard)))
      shards
  in
  let arr = Array.of_list points in
  Array.sort compare arr;
  arr

(* First ring point at or after [point], wrapping; skip shards in
   [excluded].  [None] when every live shard is excluded. *)
let successor t ~excluded point =
  let n = Array.length t.ring in
  if n = 0 then None
  else begin
    (* Binary search for the first index with point >= key hash. *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst t.ring.(mid) < point then lo := mid + 1 else hi := mid
    done;
    let start = if !lo = n then 0 else !lo in
    let rec probe step =
      if step >= n then None
      else
        let _, shard = t.ring.((start + step) mod n) in
        if List.mem shard excluded then probe (step + 1) else Some shard
    in
    (* Probing every point visits every shard (each owns >= 1 point). *)
    probe 0
  end

let shard_for t key = successor t ~excluded:[] (Sha256.hex_digest key)

let set_shards t shards =
  if shards <> t.shards then begin
    t.shards <- shards;
    t.ring <- build_ring ~vnodes:t.vnodes shards;
    Metrics.inc t.c_rebalances;
    Trace.record (tracer t)
      (Printf.sprintf "tier:rebalance to %d shards" (List.length shards))
  end

(* --- batching and dispatch ---------------------------------------------- *)

let state_of t shard =
  match Hashtbl.find_opt t.states shard with
  | Some s -> s
  | None ->
    let s =
      {
        queue = [];
        queued = 0;
        flush_pending = false;
        sc_batches = t.c_batches shard;
        sc_dispatch = t.c_dispatch shard;
      }
    in
    Hashtbl.replace t.states shard s;
    s

let fail_closed t item reason =
  Metrics.inc t.c_exhausted;
  item.deliver (Error reason)
    { shard = None; batch = 0; failovers = List.length item.excluded; epoch = 0 }

let rec enqueue t shard item =
  let s = state_of t shard in
  s.queue <- item :: s.queue;
  s.queued <- s.queued + 1;
  Metrics.inc s.sc_dispatch;
  if s.queued >= t.batch then flush t shard
  else if not s.flush_pending then begin
    (* Even a 0-second linger coalesces: the flush runs after the current
       event cascade, so every query issued at this virtual instant rides
       the same frame. *)
    s.flush_pending <- true;
    Engine.schedule
      (Dacs_net.Net.engine (Service.net t.services))
      ~delay:t.linger
      (fun () -> flush t shard)
  end

and flush t shard =
  let s = state_of t shard in
  s.flush_pending <- false;
  if s.queued > 0 then begin
    let items = List.rev s.queue in
    s.queue <- [];
    s.queued <- 0;
    let n = List.length items in
    Metrics.inc s.sc_batches;
    Metrics.observe t.h_batch_size (float_of_int n);
    Service.call_batch_resilient t.services ~src:t.node ~dst:shard ~service:"authz-query"
      ~timeout:t.call_timeout ?retry:t.retry
      (List.map (fun i -> i.body) items)
      (fun result ->
        match result with
        | Ok parts ->
          List.iter2
            (fun item part ->
              let meta ~epoch =
                { shard = Some shard; batch = n; failovers = List.length item.excluded; epoch }
              in
              match part with
              | Ok body -> (
                match t.verify t body with
                | Ok decision ->
                  item.deliver (Ok decision) (meta ~epoch:(Wire.authz_response_epoch body))
                | Error e ->
                  item.deliver
                    (Ok (Decision.indeterminate ("unacceptable PDP response: " ^ e)))
                    (meta ~epoch:0))
              | Error e ->
                (* The shard answered: an application-level fault, not a
                   health failure — no remap. *)
                item.deliver
                  (Ok (Decision.indeterminate ("PDP fault: " ^ Service.error_to_string e)))
                  (meta ~epoch:0))
            items parts
        | Error _ ->
          (* The whole frame failed: the shard is unreachable (or its
             breaker is open).  Re-route every query to the ring successor
             of its own key — replica loss only remaps its own keys. *)
          Trace.record (tracer t) ("tier:failover from " ^ shard);
          List.iter
            (fun item ->
              let excluded = shard :: item.excluded in
              match successor t ~excluded (Sha256.hex_digest item.key) with
              | Some next ->
                Metrics.inc t.c_failovers;
                enqueue t next { item with excluded }
              | None -> fail_closed t item "pdp tier exhausted: no shard reachable")
            items)
  end

let decide_meta ?key t ctx deliver =
  (* A PEP that already built the request key for its own caches passes
     it down; only key-less callers pay the build here. *)
  let key = match key with Some k -> k | None -> Decision_cache.request_key ctx in
  match shard_for t key with
  | None ->
    Metrics.inc t.c_exhausted;
    deliver (Error "pdp tier is empty") { shard = None; batch = 0; failovers = 0; epoch = 0 }
  | Some shard -> enqueue t shard { key; body = Wire.authz_query ctx; deliver; excluded = [] }

let decide t ctx deliver = decide_meta t ctx (fun outcome _meta -> deliver outcome)

(* --- construction ------------------------------------------------------- *)

let default_verify _t body = Wire.parse_authz_response body

let create services ~node ~shards:initial ?(batch = 8) ?(linger = 0.0) ?(vnodes = 16)
    ?(call_timeout = 1.0) ?retry ?verify () =
  if batch < 1 then invalid_arg "Pdp_tier.create: batch must be >= 1";
  if vnodes < 1 then invalid_arg "Pdp_tier.create: vnodes must be >= 1";
  if linger < 0.0 then invalid_arg "Pdp_tier.create: negative linger";
  let metrics = Service.metrics services in
  let own ?help name = Metrics.counter metrics ?help ~labels:[ ("node", node) ] name in
  let per_shard ?help name shard =
    Metrics.counter metrics ?help ~labels:[ ("node", node); ("shard", shard) ] name
  in
  {
    services;
    node;
    batch;
    linger;
    vnodes;
    call_timeout;
    retry;
    verify = (match verify with Some f -> fun _t body -> f body | None -> default_verify);
    c_batches =
      per_shard "pdp_tier_batches_total" ~help:"Batched frames flushed to this shard";
    c_dispatch =
      per_shard "pdp_tier_dispatch_total" ~help:"Authorisation queries routed to this shard";
    c_failovers = own "pdp_tier_failovers_total" ~help:"Queries re-routed after a shard failure";
    c_rebalances = own "pdp_tier_rebalance_total" ~help:"Ring rebuilds from membership changes";
    c_exhausted =
      own "pdp_tier_exhausted_total" ~help:"Queries failed closed with every shard excluded";
    h_batch_size =
      Metrics.histogram metrics ~help:"Queries per flushed tier batch"
        ~buckets:[ 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0 ]
        ~labels:[ ("node", node) ] "pdp_tier_batch_size";
    shards = initial;
    ring = build_ring ~vnodes initial;
    states = Hashtbl.create 8;
  }

let stats t =
  let metrics = Service.metrics t.services in
  let sum name =
    (* Sum over this tier's shard-labelled series only. *)
    List.fold_left
      (fun acc shard ->
        acc
        + Metrics.counter_value
            (Metrics.counter metrics ~labels:[ ("node", t.node); ("shard", shard) ] name))
      0 t.shards
  in
  {
    dispatched = sum "pdp_tier_dispatch_total";
    batches = sum "pdp_tier_batches_total";
    failovers = Metrics.counter_value t.c_failovers;
    rebalances = Metrics.counter_value t.c_rebalances;
    exhausted = Metrics.counter_value t.c_exhausted;
  }
