lib/saml/attribute_cert.ml: Assertion Dacs_crypto Dacs_policy Dacs_xml List Option Printf Result
