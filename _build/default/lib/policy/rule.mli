(** Rules: the smallest evaluatable policy element. *)

type effect = Permit | Deny

type t = {
  id : string;
  description : string;
  effect : effect;
  target : Target.t;  (** {!Target.any} when the rule applies wherever its policy does *)
  condition : Expr.t option;
}

val make : ?description:string -> ?target:Target.t -> ?condition:Expr.t -> effect -> string -> t
(** [make effect id]. *)

val permit : ?description:string -> ?target:Target.t -> ?condition:Expr.t -> string -> t
val deny : ?description:string -> ?target:Target.t -> ?condition:Expr.t -> string -> t

val evaluate : ?resolve:Expr.resolver -> Context.t -> t -> Decision.result
(** Target then condition, per the XACML rule-evaluation table:
    no target match → NotApplicable; condition false → NotApplicable;
    errors → Indeterminate; otherwise the rule's effect. *)

val effect_decision : effect -> Decision.t
val pp : Format.formatter -> t -> unit
