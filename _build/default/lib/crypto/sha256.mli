(** SHA-256 (FIPS 180-4).

    A complete, from-scratch implementation: the DACS signature layer,
    certificate fingerprints and HMACs are all computed over real SHA-256
    digests so that message sizes and verification costs are realistic. *)

type ctx
(** Incremental hashing context. *)

val init : unit -> ctx

val update : ctx -> string -> unit
(** Absorb more input. May be called any number of times. *)

val finalize : ctx -> string
(** The 32-byte digest. The context must not be used afterwards. *)

val digest : string -> string
(** One-shot digest of a full message (32 raw bytes). *)

val hex_digest : string -> string
(** [Encoding.hex_encode (digest s)]. *)
