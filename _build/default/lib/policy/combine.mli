(** Rule- and policy-combining algorithms.

    The conflict-resolution machinery the paper leans on (§3.1): when
    several rules or policies apply to one request with contradicting
    outcomes, the combining algorithm decides.  The six standard XACML
    algorithms are provided. *)

type algorithm =
  | Deny_overrides
  | Permit_overrides
  | First_applicable
  | Only_one_applicable  (** policy combining only *)
  | Ordered_deny_overrides
  | Ordered_permit_overrides

val name : algorithm -> string
val of_name : string -> algorithm option
val all : algorithm list

type child = {
  label : string;  (** rule or policy id, for error messages *)
  applicability : unit -> Target.outcome;
      (** target-only check, used by [Only_one_applicable] *)
  evaluate : unit -> Decision.result;
}

val combine : algorithm -> child list -> Decision.result
(** Children are evaluated lazily, in order, with short-circuiting where
    the algorithm allows it.  Obligations of children whose decision
    matches the combined decision are propagated upward.

    Semantics (XACML 2.0):
    - deny-overrides: any Deny wins; an Indeterminate is treated as a
      potential Deny; otherwise any Permit wins.
    - permit-overrides: any Permit wins; otherwise Indeterminate
      propagates; otherwise any Deny wins.
    - first-applicable: the first child that is not NotApplicable decides.
    - only-one-applicable: more than one applicable child is an error.
    - ordered-* : identical to the unordered forms here, since children
      are always evaluated in document order. *)
