(** XML document model for the DACS libraries.

    A deliberately small XML 1.0 subset: elements, attributes, character
    data, comments and CDATA on input (both normalised away), the five
    predefined entities and numeric character references.  This is the
    carrier for XACML policies, SAML assertions and SOAP envelopes, so it
    favours a predictable canonical form over full spec coverage. *)

type t =
  | Element of element
  | Text of string

and element = {
  tag : string;  (** possibly prefixed, e.g. ["xacml:Policy"] *)
  attrs : (string * string) list;
  children : t list;
}

(** {1 Construction} *)

val element : ?attrs:(string * string) list -> ?children:t list -> string -> t
(** [element tag] builds an element node. *)

val text : string -> t

val cdata_text : string -> t
(** Same as {!text}; CDATA sections are represented as plain text. *)

(** {1 Accessors} *)

val tag : t -> string
(** [tag node] is the element tag, or [""] for text nodes. *)

val local_name : string -> string
(** [local_name "saml:Assertion"] is ["Assertion"]. *)

val prefix : string -> string option
(** [prefix "saml:Assertion"] is [Some "saml"]. *)

val attr : t -> string -> string option
(** [attr node name] is the value of attribute [name], if present. *)

val attr_exn : t -> string -> string
(** @raise Not_found when the attribute is missing or [node] is text. *)

val set_attr : t -> string -> string -> t
(** Functional attribute update (replaces an existing binding). *)

val children : t -> t list

val child_elements : t -> element list

val find_child : t -> string -> t option
(** First child element whose local name matches. *)

val find_children : t -> string -> t list
(** All child elements whose local name matches, in document order. *)

val text_content : t -> string
(** Concatenation of all text descendants. *)

val is_element : t -> bool

(** {1 Printing} *)

val to_string : t -> string
(** Compact single-line serialisation. *)

val to_pretty_string : ?indent:int -> t -> string
(** Indented serialisation for human consumption. *)

val canonical : t -> t
(** Canonical form: attributes sorted by name, whitespace-only text dropped,
    adjacent text merged, comments already absent.  [canonical] is
    idempotent and two semantically equal documents share one canonical
    serialisation — the form that signatures are computed over. *)

val canonical_string : t -> string
(** [to_string (canonical t)]. *)

val escape : string -> string
(** Escape the five XML-special characters for use in attribute values
    and character data. *)

(** {1 Parsing} *)

exception Parse_error of { line : int; column : int; message : string }

val of_string : string -> t
(** Parse a complete document (prolog and doctype are skipped).
    @raise Parse_error on malformed input. *)

val of_string_opt : string -> t option

val parse_error_to_string : exn -> string option
(** Human-readable rendering of {!Parse_error}; [None] on other exceptions. *)

(** {1 Comparison} *)

val equal : t -> t -> bool
(** Structural equality on canonical forms. *)

val size : t -> int
(** Number of nodes (elements plus text nodes). *)

val depth : t -> int
(** Longest element nesting chain; a leaf element has depth 1. *)
