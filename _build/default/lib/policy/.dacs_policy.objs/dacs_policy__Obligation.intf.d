lib/policy/obligation.mli: Format Value
