lib/policy/context.mli: Dacs_xml Format Value
