module Xml = Dacs_xml.Xml
module Service = Dacs_ws.Service
module Assertion = Dacs_saml.Assertion
module Value = Dacs_policy.Value
module Decision = Dacs_policy.Decision

type session = { mutable from_client : string list; mutable from_server : string list }

type t = {
  services : Service.t;
  node : Dacs_net.Net.node_id;
  issuer : string;
  keypair : Dacs_crypto.Rsa.keypair;
  credentials : Negotiation.credential list;
  requirement_for : resource:string -> action:string -> Negotiation.requirement;
  validity : float;
  sessions : (Dacs_net.Net.node_id * string * string, session) Hashtbl.t;
  mutable issued : int;
}

let node t = t.node
let issuer t = t.issuer
let public_key t = t.keypair.Dacs_crypto.Rsa.public
let sessions t = Hashtbl.length t.sessions

let now t = Dacs_net.Net.now (Service.net t.services)

let credential_elements names =
  List.map (fun n -> Xml.element "Credential" ~attrs:[ ("Name", n) ]) names

let credential_names body =
  List.filter_map (fun c -> Xml.attr c "Name") (Xml.find_children body "Credential")

let issue_capability t ~subject ~subject_name ~resource ~action =
  t.issued <- t.issued + 1;
  let unsigned =
    Assertion.make
      ~id:(Printf.sprintf "tn-%s-%d" t.issuer t.issued)
      ~issuer:t.issuer ~subject:subject_name ~issued_at:(now t) ~validity:t.validity
      [
        Assertion.Attribute_statement subject;
        Assertion.Authz_decision_statement { resource; action; decision = Decision.Permit };
      ]
  in
  Assertion.sign t.keypair.Dacs_crypto.Rsa.private_ unsigned

let create services ~node ~issuer ~keypair ~credentials ~requirement_for ?(validity = 300.0) () =
  let t =
    {
      services;
      node;
      issuer;
      keypair;
      credentials;
      requirement_for;
      validity;
      sessions = Hashtbl.create 16;
      issued = 0;
    }
  in
  Service.serve services ~node ~service:"negotiate" (fun ~caller ~headers:_ body reply ->
      match (Xml.attr body "Resource", Xml.attr body "Action") with
      | Some resource, Some action ->
        let key = (caller, resource, action) in
        let session =
          match Hashtbl.find_opt t.sessions key with
          | Some s -> s
          | None ->
            let s = { from_client = []; from_server = [] } in
            Hashtbl.add t.sessions key s;
            s
        in
        (* Absorb the client's newly disclosed credentials. *)
        List.iter
          (fun name ->
            if not (List.mem name session.from_client) then
              session.from_client <- name :: session.from_client)
          (credential_names body);
        let requirement = t.requirement_for ~resource ~action in
        if Negotiation.satisfied requirement session.from_client then begin
          Hashtbl.remove t.sessions key;
          let subject_name =
            Option.value (Xml.attr body "Subject") ~default:caller
          in
          let subject = [ ("subject-id", Value.String subject_name) ] in
          let assertion = issue_capability t ~subject ~subject_name ~resource ~action in
          reply
            (Xml.element "NegotiateResponse"
               ~attrs:[ ("Status", "granted") ]
               ~children:[ Assertion.to_xml assertion ])
        end
        else begin
          (* Disclose whatever the client's credentials now unlock. *)
          let party = { Negotiation.party_name = t.issuer; credentials = t.credentials } in
          let unlocked =
            List.filter_map
              (fun (c : Negotiation.credential) ->
                if List.mem c.Negotiation.name session.from_server then None
                else if Negotiation.satisfied c.Negotiation.release session.from_client then
                  Some c.Negotiation.name
                else None)
              party.Negotiation.credentials
          in
          session.from_server <- unlocked @ session.from_server;
          reply
            (Xml.element "NegotiateResponse"
               ~attrs:[ ("Status", "continue") ]
               ~children:(credential_elements unlocked))
        end
      | _ ->
        reply
          (Dacs_ws.Soap.fault_body
             { Dacs_ws.Soap.code = "soap:Sender"; reason = "Negotiate needs Resource and Action" }))
  ;
  t

type outcome = {
  granted : Assertion.t option;
  rounds : int;
  messages : int;
}

let negotiate t ~services ~client_node ~credentials ~subject ~resource ~action
    ?(max_rounds = 20) k =
  let subject_name =
    match List.assoc_opt "subject-id" subject with
    | Some v -> Value.to_string v
    | None -> client_node
  in
  let disclosed = ref [] and seen_from_server = ref [] in
  let rec round n messages =
    (* Disclose everything the server's prior disclosures unlock. *)
    let unlocked =
      List.filter_map
        (fun (c : Negotiation.credential) ->
          if List.mem c.Negotiation.name !disclosed then None
          else if Negotiation.satisfied c.Negotiation.release !seen_from_server then
            Some c.Negotiation.name
          else None)
        credentials
    in
    disclosed := unlocked @ !disclosed;
    let body =
      Xml.element "Negotiate"
        ~attrs:[ ("Resource", resource); ("Action", action); ("Subject", subject_name) ]
        ~children:(credential_elements unlocked)
    in
    Service.call services ~src:client_node ~dst:t.node ~service:"negotiate" body (fun response ->
        let messages = messages + 2 in
        match response with
        | Error _ -> k { granted = None; rounds = n; messages }
        | Ok reply_body -> (
          match Xml.attr reply_body "Status" with
          | Some "granted" -> (
            match Option.map Assertion.of_xml (Xml.find_child reply_body "Assertion") with
            | Some (Ok assertion) -> k { granted = Some assertion; rounds = n; messages }
            | _ -> k { granted = None; rounds = n; messages })
          | Some "continue" ->
            let fresh = credential_names reply_body in
            let progressed = unlocked <> [] || fresh <> [] in
            seen_from_server := fresh @ !seen_from_server;
            if (not progressed) || n >= max_rounds then
              k { granted = None; rounds = n; messages }
            else round (n + 1) messages
          | _ -> k { granted = None; rounds = n; messages }))
  in
  round 1 0
