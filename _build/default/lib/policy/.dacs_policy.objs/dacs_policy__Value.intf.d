lib/policy/value.mli: Format
