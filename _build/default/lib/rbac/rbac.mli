(** Role-based access control (ANSI INCITS 359 flavoured).

    Roles, a role hierarchy (seniors inherit junior permissions),
    user-role and permission-role assignment, and static
    separation-of-duty constraints.  The paper singles out RBAC as the
    model that scales to large multi-domain user bases (§2.2); the
    [Compile] module turns an RBAC state into policies for the engine. *)

type role = string
type user = string

type permission = { action : string; resource : string }

type t

val empty : t

(** {1 Roles and hierarchy} *)

val add_role : t -> role -> t
(** Idempotent. *)

val roles : t -> role list
val has_role : t -> role -> bool

val add_inheritance : t -> senior:role -> junior:role -> (t, string) result
(** The senior role inherits all the junior's permissions.  Fails on
    unknown roles, self-inheritance, or a cycle. *)

val juniors : t -> role -> role list
(** Transitive juniors (the role itself excluded). *)

val direct_juniors : t -> role -> role list
(** Immediate inheritance edges only. *)

val seniors : t -> role -> role list

(** {1 Assignment} *)

val assign_user : t -> user -> role -> (t, string) result
(** Fails on unknown role or a static separation-of-duty violation. *)

val deassign_user : t -> user -> role -> t
val assigned_roles : t -> user -> role list
(** Directly assigned roles. *)

val authorized_roles : t -> user -> role list
(** Assigned roles plus everything they inherit. *)

val grant_permission : t -> role -> permission -> (t, string) result
val revoke_permission : t -> role -> permission -> t
val role_permissions : t -> role -> permission list
(** Direct plus inherited permissions. *)

val direct_permissions : t -> role -> permission list
(** Permissions granted to the role itself, inheritance excluded. *)

val user_permissions : t -> user -> permission list

val check_access : t -> user -> action:string -> resource:string -> bool

val users : t -> user list

(** {1 Static separation of duty} *)

val add_ssd : t -> name:string -> roles:role list -> cardinality:int -> (t, string) result
(** No user may be authorised for [cardinality] or more of [roles]
    simultaneously.  Fails if an existing assignment already violates the
    new constraint, if [cardinality < 2], or if the constraint names
    fewer roles than its cardinality. *)

val ssd_constraints : t -> (string * role list * int) list

val ssd_violation : t -> user -> role -> string option
(** The constraint that assigning [role] to [user] would violate, if any
    (checked on authorised roles, so inheritance counts). *)

(** {1 Dynamic separation of duty (checked by {!Session})} *)

val add_dsd : t -> name:string -> roles:role list -> cardinality:int -> (t, string) result
val dsd_constraints : t -> (string * role list * int) list

val pp : Format.formatter -> t -> unit
